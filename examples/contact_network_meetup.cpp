// Scenario: two couriers in a dense urban contact network must meet at a
// shared location, knowing only their own neighborhoods.
//
// The network is a hub-augmented random graph: a few "depot" locations are
// connected to everything (Δ = n-1) while ordinary locations maintain a
// bounded contact list (δ ≪ Δ). This is exactly the regime where the naive
// "check every neighbor" plan costs Θ(Δ) and the paper's algorithm pays
// only in terms of δ. The example also shows the doubling variant (§4.1)
// for couriers that do not know the network's minimum degree.
//
//   ./contact_network_meetup [--n=4096] [--contacts=96] [--seed=3]
#include <iostream>

#include "baselines/wait_and_sweep.hpp"
#include "core/rendezvous.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fnr;
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 4096));
  const auto contacts = static_cast<std::size_t>(cli.get_int("contacts", 96));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 3));
  cli.reject_unknown();

  Rng rng(seed);
  const auto g = graph::make_hub_augmented(n, contacts, /*num_hubs=*/2, rng);
  std::cout << "contact network: " << g.describe() << "\n";

  // Both couriers are at the two depots (worst case for the naive plan:
  // the depot's contact list is the whole city).
  const sim::Placement placement{static_cast<graph::VertexIndex>(n - 2),
                                 static_cast<graph::VertexIndex>(n - 1)};

  // Plan A: the naive sweep — check every contact of the depot in turn.
  {
    sim::Scheduler scheduler(g, sim::Model::port_only());
    baselines::SweepAgent sweeper;
    baselines::WaitingAgent waiter;
    const auto nbrs = g.neighbors(placement.a_start);
    // Adversarial: the partner is behind the last port.
    const auto worst = scheduler.run(
        sweeper, waiter,
        sim::Placement{placement.a_start, nbrs[nbrs.size() - 1]},
        4 * g.max_degree() + 8);
    std::cout << "naive sweep, partner behind the last port: "
              << worst.meeting_round << " rounds (Θ(Δ))\n";
  }

  // Plan B: the paper's algorithm, couriers know δ.
  {
    core::RendezvousOptions options;
    options.strategy = core::Strategy::Whiteboard;
    options.seed = seed;
    const auto report = core::run_rendezvous(g, placement, options);
    std::cout << "Theorem 1 algorithm (known delta):   "
              << report.run.meeting_round << " rounds — "
              << report.describe() << "\n";
  }

  // Plan C: couriers do not know δ — doubling estimation (§4.1).
  {
    core::RendezvousOptions options;
    options.strategy = core::Strategy::WhiteboardDoubling;
    options.seed = seed;
    const auto report = core::run_rendezvous(g, placement, options);
    std::cout << "Theorem 1 + doubling (unknown delta): "
              << report.run.meeting_round << " rounds, "
              << report.agent_a.doubling_restarts
              << " restart(s), final estimate delta' = "
              << report.delta_used << "\n";
  }
  return 0;
}
