// Side-by-side of every strategy and baseline on one instance — a compact
// "which tool when" table for library users.
//
//   ./model_comparison [--n=2048] [--seed=11]
#include <iostream>

#include "baselines/anderson_weber.hpp"
#include "baselines/random_walk.hpp"
#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "core/rendezvous.hpp"
#include "graph/generators.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fnr;
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 2048));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 11));
  cli.reject_unknown();

  Rng rng(seed);
  const auto g = graph::make_near_regular(n, n / 8, rng);
  const auto placement = sim::random_adjacent_placement(g, rng);
  std::cout << "instance: " << g.describe() << ", adjacent start\n\n";

  Table table({"algorithm", "model needs", "rounds", "moves a", "moves b"});

  auto add_core = [&](core::Strategy strategy, const char* needs) {
    core::RendezvousOptions options;
    options.strategy = strategy;
    options.seed = seed;
    const auto report = core::run_rendezvous(g, placement, options);
    table.add_row(RowBuilder()
                      .add(core::to_string(strategy))
                      .add(needs)
                      .add(std::uint64_t{report.run.meeting_round})
                      .add(report.run.metrics.moves[0])
                      .add(report.run.metrics.moves[1])
                      .build());
  };
  add_core(core::Strategy::Whiteboard, "KT1+whiteboards+delta");
  add_core(core::Strategy::WhiteboardDoubling, "KT1+whiteboards");
  add_core(core::Strategy::NoWhiteboard, "KT1+tight IDs+delta");

  auto add_baseline = [&](const char* name, const char* needs,
                          sim::Model model, auto&& make_a, auto&& make_b) {
    sim::Scheduler scheduler(g, model);
    auto agent_a = make_a();
    auto agent_b = make_b();
    const auto result =
        scheduler.run(agent_a, agent_b, placement, 400 * n);
    table.add_row(
        RowBuilder()
            .add(name)
            .add(needs)
            .add(result.met ? std::to_string(result.meeting_round) : ">cap")
            .add(result.metrics.moves[0])
            .add(result.metrics.moves[1])
            .build());
  };
  add_baseline(
      "wait+sweep", "ports only", sim::Model{false, false},
      [] { return baselines::SweepAgent(); },
      [] { return baselines::WaitingAgent(); });
  add_baseline(
      "wait+explore", "KT1", sim::Model::no_whiteboards(),
      [] { return baselines::ExploreAgent(); },
      [] { return baselines::WaitingAgent(); });
  add_baseline(
      "random walks", "ports only", sim::Model{false, false},
      [&] { return baselines::RandomWalkAgent(Rng(seed, 1)); },
      [&] { return baselines::RandomWalkAgent(Rng(seed, 2)); });

  table.print(std::cout);
  std::cout << "(complete-graph specialist Anderson-Weber [6] omitted: this "
               "instance is not complete)\n";
  return 0;
}
