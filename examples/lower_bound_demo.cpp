// Why the paper's assumptions are all necessary: build each of the four
// lower-bound worlds (Theorems 3-6) and watch algorithms struggle.
//
//   ./lower_bound_demo [--n=512]
#include <iostream>

#include "baselines/random_walk.hpp"
#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "core/rendezvous.hpp"
#include "lower_bounds/adversary.hpp"
#include "lower_bounds/instances.hpp"
#include "util/cli.hpp"

using namespace fnr;

namespace {

void banner(const std::string& text) {
  std::cout << "\n=== " << text << " ===\n";
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  auto n = static_cast<std::size_t>(cli.get_int("n", 512));
  cli.reject_unknown();
  n = (n / 32) * 32;  // Theorem 6 wants n ≡ 0 (mod 32)

  banner("Theorem 3 / Figure 1: minimum degree matters (glued stars)");
  {
    const auto inst = lower_bounds::theorem3_instance(n / 2);
    Rng rng(1, 21);
    auto permuted = graph::permute_indices(inst.graph, rng);
    sim::Placement placement{permuted.mapping[inst.placement.a_start],
                             permuted.mapping[inst.placement.b_start]};
    sim::Scheduler scheduler(permuted.graph, sim::Model::full());
    baselines::ExploreAgent a;
    baselines::WaitingAgent b;
    const auto result = scheduler.run(a, b, placement,
                                      100 * permuted.graph.num_vertices());
    std::cout << "delta = 1, Delta = " << permuted.graph.max_degree()
              << ": exhaustive exploration needed " << result.meeting_round
              << " rounds — Omega(Delta), as Theorem 3 predicts.\n";
  }

  banner("Theorem 4 / Figure 2: neighborhood IDs matter (bridged cliques)");
  {
    const auto inst = lower_bounds::theorem4_instance(n / 2);
    sim::Scheduler blind(inst.graph, inst.model);  // port-only
    baselines::SweepAgent sweep;
    baselines::WaitingAgent waiter;
    const auto blind_run =
        blind.run(sweep, waiter, inst.placement,
                  100 * inst.graph.num_vertices());
    core::RendezvousOptions options;
    options.seed = 2;
    const auto sighted =
        core::run_rendezvous(inst.graph, inst.placement, options);
    std::cout << "port-only sweep: " << blind_run.meeting_round
              << " rounds; the same graph with KT1 restored: "
              << sighted.run.meeting_round << " rounds.\n";
  }

  banner("Theorem 5 / Figure 3: distance 1 matters (shared-vertex cliques)");
  {
    const auto inst = lower_bounds::theorem5_instance(n / 2);
    try {
      (void)core::run_rendezvous(inst.graph, inst.placement, {});
    } catch (const CheckError& e) {
      std::cout << "core algorithm rejects the distance-2 start:\n  "
                << e.what() << "\n";
    }
    sim::Scheduler scheduler(inst.graph, inst.model);
    baselines::RandomWalkAgent a(Rng(3, 1));
    baselines::RandomWalkAgent b(Rng(3, 2));
    const auto result = scheduler.run(a, b, inst.placement,
                                      200 * inst.graph.num_vertices());
    std::cout << "random walks from distance 2 needed "
              << (result.met ? std::to_string(result.meeting_round)
                             : "more than the cap of")
              << " rounds on " << inst.graph.num_vertices()
              << " vertices.\n";
  }

  banner("Theorem 6: randomization matters (adaptive adversary)");
  {
    const auto inst = lower_bounds::build_theorem6_instance(
        &lower_bounds::make_lex_dfs, &lower_bounds::make_lex_dfs, n);
    std::cout << "the adversary stranded " << inst.w_a << " + " << inst.w_b
              << " of " << n << " vertices away from two deterministic "
              << "DFS agents;\n";
    sim::Scheduler scheduler(inst.graph, sim::Model::full());
    lower_bounds::DetAgentAdapter agent_a(lower_bounds::make_lex_dfs());
    lower_bounds::DetAgentAdapter agent_b(lower_bounds::make_lex_dfs());
    const auto result = scheduler.run(agent_a, agent_b, inst.placement,
                                      32 * n);
    std::cout << "on the glued instance the deterministic pair "
              << (result.met ? "met only at round " +
                                   std::to_string(result.meeting_round)
                             : "never met within " +
                                   std::to_string(32 * n) + " rounds")
              << " (bound: n/32 = " << n / 32 << ").\n";
    core::RendezvousOptions options;
    options.seed = 4;
    const auto randomized =
        core::run_rendezvous(inst.graph, inst.placement, options);
    std::cout << "the randomized algorithm on the same instance: "
              << randomized.run.meeting_round << " rounds.\n";
  }
  return 0;
}
