// Quickstart: run the paper's whiteboard algorithm (Theorem 1) on a random
// dense graph and print what happened.
//
//   ./quickstart [--n=1024] [--seed=7]
#include <cmath>
#include <iostream>

#include "core/rendezvous.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace fnr;
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  cli.reject_unknown();

  // 1. A graph with a healthy minimum degree (Theorem 1 wants δ >= √n).
  Rng rng(seed);
  const auto g = graph::make_near_regular(n, /*out_degree=*/n / 8, rng);
  std::cout << "graph: " << g.describe() << "\n";

  // 2. Two agents on adjacent vertices — the neighborhood-rendezvous
  //    instance class I₁ of the paper.
  const auto placement = sim::random_adjacent_placement(g, rng);
  std::cout << "agent a starts at vertex " << g.id_of(placement.a_start)
            << ", agent b at adjacent vertex " << g.id_of(placement.b_start)
            << "\n";

  // 3. Run Construct + Main-Rendezvous (Algorithm 1 + 3).
  core::RendezvousOptions options;
  options.strategy = core::Strategy::Whiteboard;
  options.seed = seed;
  const auto report = core::run_rendezvous(g, placement, options);

  std::cout << "outcome: " << report.describe() << "\n";
  const double bound = core::theorem1_bound(
      n, static_cast<double>(g.min_degree()),
      static_cast<double>(g.max_degree()));
  std::cout << "Theorem 1 bound shape for this graph: ~" << std::llround(bound)
            << " rounds; measured " << report.run.meeting_round << "\n";
  return report.run.met ? 0 : 1;
}
