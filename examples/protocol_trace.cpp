// Protocol anatomy: dissect Theorem 1's algorithm on a small graph.
//
// Part 1 runs Construct (Algorithm 3) alone — agent a builds its
// (a, δ/8, 2)-dense set T^a with nobody to bump into, so every counter is
// meaningful. Part 2 runs the full two-agent protocol; on dense graphs the
// agents frequently collide while a is still constructing (the paper counts
// any co-location as rendezvous), which the output calls out.
//
//   ./protocol_trace [--n=64] [--seed=5] [--verbose]
#include <iostream>
#include <memory>

#include "core/construct.hpp"
#include "core/rendezvous.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sim/scripted_agent.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace fnr;

namespace {

/// Minimal lone-agent driver for ConstructRun (mirrors WhiteboardAgentA's
/// construct phase; see also tests/test_construct.cpp).
class ConstructTracer final : public sim::ScriptedAgent {
 public:
  ConstructTracer(const core::Params& params, double delta, Rng rng)
      : params_(params), delta_(delta), rng_(rng) {}

  [[nodiscard]] bool halted() const override { return done_; }
  std::vector<graph::VertexId> t_set;
  core::ConstructStats stats;

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      run_ = std::make_unique<core::ConstructRun>(knowledge_, params_, delta_,
                                                  view.num_vertices());
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->on_arrival(view);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    t_set = run_->t_set();
    stats = run_->stats();
    done_ = true;
  }

 private:
  core::Params params_;
  double delta_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  core::Knowledge knowledge_;
  std::unique_ptr<core::ConstructRun> run_;
};

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  const auto n = static_cast<std::size_t>(cli.get_int("n", 64));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 5));
  const bool verbose = cli.get_flag("verbose");
  cli.reject_unknown();
  if (verbose) set_log_level(LogLevel::Debug);

  Rng rng(seed);
  const auto g = graph::make_near_regular(n, n / 4, rng);
  const auto placement = sim::random_adjacent_placement(g, rng);
  std::cout << "graph: " << g.describe() << "\n"
            << "a at " << g.id_of(placement.a_start) << " (degree "
            << g.degree(placement.a_start) << "), b at "
            << g.id_of(placement.b_start) << " (degree "
            << g.degree(placement.b_start) << ")\n\n";

  // --- Part 1: Construct, alone -------------------------------------------
  const auto params = core::Params::practical();
  const double delta = static_cast<double>(g.min_degree());
  sim::Scheduler solo(g, sim::Model::full());
  ConstructTracer tracer(params, delta, Rng(seed, 42));
  const auto solo_run = solo.run_single(
      tracer, placement.a_start, params.construct_round_budget(n, delta) * 4);

  std::cout << "Construct (Algorithm 3), agent a alone:\n"
            << "  adopted x_i vertices (iterations): "
            << tracer.stats.iterations << "\n"
            << "  optimistic Sample runs:            "
            << tracer.stats.optimistic_runs << "\n"
            << "  strict Sample runs:                "
            << tracer.stats.strict_runs << "\n"
            << "  Sample target visits:              "
            << tracer.stats.sample_visits << "\n"
            << "  direct lightness probes:           "
            << tracer.stats.probe_visits << "\n"
            << "  rounds until T^a ready:            "
            << solo_run.metrics.rounds << "\n"
            << "  |T^a| = " << tracer.t_set.size() << " of n = " << n << "\n";
  std::vector<graph::VertexIndex> t_idx;
  for (const auto id : tracer.t_set) t_idx.push_back(g.index_of(id));
  std::cout << "  (a, delta/8, 2)-dense condition verified: "
            << (graph::is_dense_set(g, placement.a_start, t_idx, delta / 8.0,
                                    2)
                    ? "yes"
                    : "NO")
            << "\n\n";

  // --- Part 2: the full two-agent protocol --------------------------------
  core::RendezvousOptions options;
  options.strategy = core::Strategy::Whiteboard;
  options.seed = seed;
  const auto report = core::run_rendezvous(g, placement, options);

  std::cout << "Full protocol (Algorithm 1):\n"
            << "  outcome: " << report.run.describe() << "\n";
  if (report.agent_a.t_set_size == 0) {
    std::cout << "  the agents collided while a was still constructing T^a\n"
              << "  (dense graphs: both roam the same two-hop ball; the\n"
              << "  paper counts any co-location as rendezvous)\n";
  } else {
    std::cout << "  T^a completed with " << report.agent_a.t_set_size
              << " vertices; a probed it " << report.agent_a.main_probes
              << " times; b wrote " << report.agent_b_marks << " marks; "
              << (report.agent_a.found_mark
                      ? "a read a mark and walked to b's start"
                      : "the agents met by collision")
              << "\n";
  }
  std::cout << "\n(re-run with --verbose for per-phase debug logging)\n";
  return report.run.met ? 0 : 1;
}
