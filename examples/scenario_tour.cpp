// Tour of the scenario and program registries: list every registered
// scenario and program, then run each scenario once on a small-world graph
// and narrate the outcome. Also shows how to register a custom scenario
// next to the built-ins and how `?key=value` suffixes parameterize a
// registered program.
#include <iostream>

#include "graph/generators.hpp"
#include "scenario/run.hpp"

using namespace fnr;

int main() {
  // A custom scenario slots into the same registry the benches sweep.
  if (!scenario::has_scenario("ambush-trio")) {
    scenario::Scenario custom;
    custom.name = "ambush-trio";
    custom.summary = "3 agents in one neighborhood, partners sleep 64 rounds";
    custom.num_agents = 3;
    custom.placement = scenario::PlacementModel::NeighborhoodCluster;
    custom.delay = scenario::DelayModel::Adversarial;
    custom.max_delay = 64;
    custom.gathering = sim::Gathering::AnyPair;
    scenario::register_scenario(custom);
  }

  std::cout << "## Registered scenarios\n\n";
  scenario::print_scenario_listing(std::cout);

  std::cout << "## Registered programs\n\n";
  scenario::print_program_listing(std::cout);

  Rng graph_rng(7, 1);
  const auto g = graph::make_watts_strogatz(256, 6, 0.1, graph_rng);
  std::cout << "Running each scenario once on " << g.describe() << "\n\n";

  for (const auto& s : scenario::all_scenarios()) {
    // The paper's strategies need a shared neighborhood; dropped-anywhere
    // agents fall back to a sluggish random walk (a `?laziness` override on
    // the registered program), and all-meet gathering needs the coordinated
    // rally (k-way walker co-location is a lottery).
    const auto program =
        s.gathering == sim::Gathering::All
            ? scenario::find_program("explore-rally")
            : s.placement == scenario::PlacementModel::RandomDistinct
                  ? scenario::find_program("random-walk?laziness=0.25")
                  : scenario::find_program("whiteboard");
    Rng instance_rng(99, 2);
    const auto placement = scenario::draw_instance(s, g, instance_rng);
    scenario::ScenarioOptions options;
    options.seed = 424242;
    const auto report =
        scenario::run_scenario(s, program, g, placement, options);
    std::cout << "- " << s.name << " [" << scenario::to_string(program)
              << "]: " << report.run.describe() << "\n";
  }
  std::cout << "\nA k=2 scenario with zero delay is exactly the paper's "
               "synchronous model; see tests/test_scenario_engine.cpp for "
               "the bit-for-bit guarantee.\n";
  return 0;
}
