// Unit tests for the simulator: round semantics, rendezvous detection,
// whiteboards, model enforcement, metrics, and placements.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace fnr::sim {
namespace {

/// Replays a fixed list of actions, then stays.
class ReplayAgent final : public Agent {
 public:
  explicit ReplayAgent(std::vector<Action> script)
      : script_(std::move(script)) {}
  Action step(const View&) override {
    if (next_ >= script_.size()) return Action::stay();
    return script_[next_++];
  }

 private:
  std::vector<Action> script_;
  std::size_t next_ = 0;
};

/// Records what it observes each round.
class ObserverAgent final : public Agent {
 public:
  Action step(const View& view) override {
    heres.push_back(view.here());
    degrees.push_back(view.degree());
    arrival_ports.push_back(view.arrival_port());
    return Action::stay();
  }
  std::vector<graph::VertexId> heres;
  std::vector<std::size_t> degrees;
  std::vector<std::optional<std::size_t>> arrival_ports;
};

TEST(Scheduler, AdjacentAgentsMeetWhenOneWalksOver) {
  const auto g = graph::make_path(2);  // 0 - 1
  Scheduler scheduler(g, Model::full());
  ReplayAgent a({Action::move(0)});  // 0 -> 1
  ReplayAgent b({});                 // stays at 1
  const auto result = scheduler.run(a, b, Placement{0, 1}, 100);
  ASSERT_TRUE(result.met);
  EXPECT_EQ(result.meeting_round, 1u);  // co-located at the start of round 1
  EXPECT_EQ(result.meeting_vertex, 1u);
  EXPECT_EQ(result.metrics.moves[0], 1u);
  EXPECT_EQ(result.metrics.moves[1], 0u);
}

TEST(Scheduler, CrossingAgentsDoNotMeet) {
  // Paper convention: swapping along one edge is not rendezvous.
  const auto g = graph::make_path(2);
  Scheduler scheduler(g, Model::full());
  ReplayAgent a({Action::move(0)});  // 0 -> 1
  ReplayAgent b({Action::move(0)});  // 1 -> 0
  const auto result = scheduler.run(a, b, Placement{0, 1}, 8);
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.metrics.rounds, 8u);
}

TEST(Scheduler, MeetingInTheMiddle) {
  const auto g = graph::make_path(3);  // 0 - 1 - 2
  Scheduler scheduler(g, Model::full());
  ReplayAgent a({Action::move(0)});  // 0 -> 1
  ReplayAgent b({Action::move(0)});  // 2 -> 1
  const auto result = scheduler.run(a, b, Placement{0, 2}, 8);
  ASSERT_TRUE(result.met);
  EXPECT_EQ(result.meeting_vertex, 1u);
  EXPECT_EQ(result.meeting_round, 1u);
}

TEST(Scheduler, RejectsIdenticalStarts) {
  const auto g = graph::make_path(3);
  Scheduler scheduler(g, Model::full());
  ReplayAgent a({}), b({});
  EXPECT_THROW((void)scheduler.run(a, b, Placement{1, 1}, 5), CheckError);
}

TEST(Scheduler, WhiteboardWriteThenReadAcrossAgents) {
  const auto g = graph::make_path(3);  // 0 - 1 - 2
  Scheduler scheduler(g, Model::full());
  // a writes 77 at vertex 0 in round 0, then walks right; b reads vertex 2
  // then walks left; they cross. Finally b lands on 0 and reads 77.
  Action write77 = Action::stay();
  write77.whiteboard_write = 77;
  ReplayAgent a({write77, Action::move(0), Action::move(1)});  // 0,0->1,1->2

  class ReaderAgent final : public Agent {
   public:
    Action step(const View& view) override {
      reads.push_back(view.whiteboard());
      // walk towards smaller IDs: port 0 is the smallest-index neighbor
      return Action::move(0);
    }
    std::vector<std::optional<std::uint64_t>> reads;
  };
  ReaderAgent b;
  const auto result = scheduler.run(a, b, Placement{0, 2}, 3);
  (void)result;
  ASSERT_GE(b.reads.size(), 3u);
  EXPECT_FALSE(b.reads[0].has_value());  // at 2: empty
  EXPECT_FALSE(b.reads[1].has_value());  // at 1: empty
  ASSERT_TRUE(b.reads[2].has_value());   // at 0: a's mark
  EXPECT_EQ(*b.reads[2], 77u);
}

TEST(Scheduler, WhiteboardForbiddenWithoutModel) {
  const auto g = graph::make_path(2);
  Scheduler scheduler(g, Model::no_whiteboards());
  Action write = Action::stay();
  write.whiteboard_write = 1;
  ReplayAgent a({write});
  ReplayAgent b({});
  EXPECT_THROW((void)scheduler.run(a, b, Placement{0, 1}, 4), CheckError);
}

TEST(View, NeighborIdsRequireKt1) {
  const auto g = graph::make_path(3);
  Scheduler scheduler(g, Model::port_only());

  class PeekAgent final : public Agent {
   public:
    Action step(const View& view) override {
      EXPECT_FALSE(view.has_neighborhood_ids());
      EXPECT_THROW((void)view.neighbor_ids(), CheckError);
      EXPECT_THROW((void)view.port_of(1), CheckError);
      return Action::stay();
    }
  };
  PeekAgent a;
  ReplayAgent b({});
  (void)scheduler.run(a, b, Placement{0, 2}, 1);
}

TEST(View, NeighborIdsMatchPortsUnderKt1) {
  const auto g = graph::make_star(3);  // center 0, leaves 1..3
  Scheduler scheduler(g, Model::full());

  class PeekAgent final : public Agent {
   public:
    Action step(const View& view) override {
      const auto& ids = view.neighbor_ids();
      EXPECT_EQ(ids.size(), view.degree());
      for (std::size_t p = 0; p < ids.size(); ++p)
        EXPECT_EQ(view.port_of(ids[p]), p);
      return Action::stay();
    }
  };
  PeekAgent a;
  ReplayAgent b({});
  (void)scheduler.run(a, b, Placement{0, 1}, 1);
}

TEST(View, ArrivalPortReportsBacktrackEdge) {
  const auto g = graph::make_path(3);
  Scheduler scheduler(g, Model::full());
  ObserverAgent a;  // stays: arrival port must stay empty
  ReplayAgent walker({Action::move(0), Action::move(1)});
  const auto result = scheduler.run(a, walker, Placement{0, 2}, 2);
  (void)result;
  EXPECT_FALSE(a.arrival_ports[0].has_value());
  EXPECT_FALSE(a.arrival_ports[1].has_value());

  // Now the walker observes its own arrival ports.
  ObserverAgent b;
  ReplayAgent mover({Action::move(0)});  // 2 -> 1 (vertex 2's only port)
  Scheduler scheduler2(g, Model::full());
  (void)scheduler2.run(mover, b, Placement{2, 0}, 2);
  // Move only; the moving agent is 'mover' which records nothing. Use a
  // combined agent instead:
  class MoveOnce final : public Agent {
   public:
    Action step(const View& view) override {
      ports.push_back(view.arrival_port());
      if (!moved_) {
        moved_ = true;
        return Action::move(0);
      }
      return Action::stay();
    }
    std::vector<std::optional<std::size_t>> ports;

   private:
    bool moved_ = false;
  };
  MoveOnce walker2;
  ReplayAgent still({});
  Scheduler scheduler3(g, Model::full());
  (void)scheduler3.run(walker2, still, Placement{2, 0}, 3);
  ASSERT_GE(walker2.ports.size(), 2u);
  EXPECT_FALSE(walker2.ports[0].has_value());
  ASSERT_TRUE(walker2.ports[1].has_value());
  // Arrived at vertex 1 from vertex 2: vertex 1's neighbors are {0, 2}, so
  // the port back to 2 is 1.
  EXPECT_EQ(*walker2.ports[1], 1u);
}

TEST(Scheduler, RunSingleStopsAtHalt) {
  const auto g = graph::make_ring(6);

  class HaltAfter final : public Agent {
   public:
    explicit HaltAfter(int steps) : remaining_(steps) {}
    Action step(const View&) override {
      --remaining_;
      return Action::move(0);
    }
    [[nodiscard]] bool halted() const override { return remaining_ <= 0; }

   private:
    int remaining_;
  };
  Scheduler scheduler(g, Model::full());
  HaltAfter agent(4);
  const auto result = scheduler.run_single(agent, 0, 100);
  EXPECT_EQ(result.metrics.rounds, 4u);
  EXPECT_EQ(result.metrics.moves[0], 4u);
}

TEST(Scheduler, MetricsCountWhiteboardTraffic) {
  const auto g = graph::make_path(2);
  Scheduler scheduler(g, Model::full());
  Action write = Action::stay();
  write.whiteboard_write = 5;
  ReplayAgent a({write, write});

  class Reader final : public Agent {
   public:
    Action step(const View& view) override {
      (void)view.whiteboard();
      return Action::stay();
    }
  };
  Reader b;
  const auto result = scheduler.run(a, b, Placement{0, 1}, 2);
  EXPECT_EQ(result.metrics.whiteboard_writes, 2u);
  EXPECT_EQ(result.metrics.whiteboard_reads, 2u);
  EXPECT_EQ(result.metrics.whiteboards_used, 1u);
}

TEST(Placement, RandomAdjacentPairsAreEdges) {
  Rng rng(4);
  const auto g = graph::make_near_regular(64, 4, rng);
  for (int i = 0; i < 200; ++i) {
    const auto p = random_adjacent_placement(g, rng);
    EXPECT_TRUE(g.has_edge(p.a_start, p.b_start));
  }
}

TEST(Placement, OrientationIsSampled) {
  Rng rng(4);
  const auto g = graph::make_path(2);
  bool saw_01 = false, saw_10 = false;
  for (int i = 0; i < 100; ++i) {
    const auto p = random_adjacent_placement(g, rng);
    saw_01 |= (p.a_start == 0);
    saw_10 |= (p.a_start == 1);
  }
  EXPECT_TRUE(saw_01);
  EXPECT_TRUE(saw_10);
}

}  // namespace
}  // namespace fnr::sim
