// Differential battery for the swarm meeting engine: occupancy-count
// detection must be byte-identical to the pairwise oracle — per-trial
// outcomes AND merged aggregates — for every builtin scenario at
// k ∈ {2, 3, 5, 17}, on 1 and 4 runner threads, and on fault-active cells.
// The pairwise scan is the reference implementation the paper's semantics
// are written against; occupancy counting is the O(moves) production path
// above the Auto cutover, so any divergence here is a correctness bug, not
// noise.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "runner/trial_runner.hpp"
#include "scenario/program_registry.hpp"
#include "scenario/run.hpp"
#include "scenario/scenario.hpp"
#include "sim/scheduler.hpp"
#include "test_support.hpp"
#include "util/check.hpp"

namespace fnr {
namespace {

bool outcomes_equal(const runner::TrialOutcome& x,
                    const runner::TrialOutcome& y) {
  return x.trial == y.trial && x.seed == y.seed && x.met == y.met &&
         x.meeting_round == y.meeting_round &&
         x.gathered_count == y.gathered_count && x.rounds == y.rounds &&
         x.moves_a == y.moves_a && x.moves_b == y.moves_b &&
         x.whiteboard_marks == y.whiteboard_marks &&
         std::memcmp(&x.faults, &y.faults, sizeof x.faults) == 0;
}

/// Runs one (scenario, program) cell and returns the accumulator.
runner::TrialAccumulator run_cell(const scenario::Scenario& scen,
                                  const scenario::Program& program,
                                  const graph::Graph& g,
                                  sim::MeetingDetection detection,
                                  unsigned threads,
                                  const fault::FaultPlan& fault = {}) {
  scenario::ScenarioOptions options;
  options.seed = 4711;
  options.detection = detection;
  options.fault = fault;
  const runner::TrialRunner trial_runner(runner::RunnerOptions{threads});
  return scenario::run_scenario_trials(scen, program, g, options,
                                       /*n_trials=*/3, trial_runner);
}

/// Asserts `cell` is byte-identical to the reference accumulator: same
/// per-trial outcomes (field-for-field) and a bit-identical aggregate.
void expect_identical(const runner::TrialAccumulator& reference,
                      const runner::TrialAccumulator& cell,
                      const std::string& label) {
  const auto want = reference.sorted_outcomes();
  const auto got = cell.sorted_outcomes();
  ASSERT_EQ(want.size(), got.size()) << label;
  for (std::size_t t = 0; t < want.size(); ++t) {
    EXPECT_TRUE(outcomes_equal(want[t], got[t]))
        << label << ": trial " << t << " diverged (met " << want[t].met
        << " vs " << got[t].met << ", meeting_round "
        << want[t].meeting_round << " vs " << got[t].meeting_round
        << ", gathered " << want[t].gathered_count << " vs "
        << got[t].gathered_count << ")";
  }
  EXPECT_TRUE(test::bits_equal(reference.aggregate(), cell.aggregate()))
      << label << ": merged aggregates diverged";
}

/// First registry program the capability masks accept for `scen`; null
/// handle never escapes (the registry always has a universally-compatible
/// program — explore-rally supports every gathering predicate).
scenario::Program program_for(const scenario::Scenario& scen) {
  for (const auto& def : scenario::all_program_defs()) {
    const auto program = scenario::find_program(def.label);
    if (scenario::compatible(program, scen)) return program;
  }
  FNR_CHECK_MSG(false,
                "no registered program is compatible with scenario '"
                    << scen.name << "'");
  throw std::logic_error("unreachable");
}

TEST(SwarmDifferential, OccupancyMatchesPairwiseForEveryBuiltinScenario) {
  // Degree 20 so NeighborhoodCluster placements can host k = 17 (needs a
  // closed neighborhood of size >= k).
  const auto g = test::dense_graph(48, 12, 20);
  std::size_t cells = 0;
  for (const auto& builtin : scenario::all_scenarios()) {
    for (const std::size_t k : {std::size_t{2}, std::size_t{3},
                                std::size_t{5}, std::size_t{17}}) {
      scenario::Scenario scen = builtin;
      scen.num_agents = k;
      try {
        scen.validate();  // skips AdjacentPair at k != 2, quorum > k, ...
      } catch (const CheckError&) {
        continue;
      }
      const auto program = program_for(scen);
      const auto reference =
          run_cell(scen, program, g, sim::MeetingDetection::Pairwise, 1);
      const std::string label = builtin.name + " k=" + std::to_string(k);
      expect_identical(
          reference,
          run_cell(scen, program, g, sim::MeetingDetection::Occupancy, 1),
          label + " occupancy/1t");
      expect_identical(
          reference,
          run_cell(scen, program, g, sim::MeetingDetection::Occupancy, 4),
          label + " occupancy/4t");
      expect_identical(
          reference,
          run_cell(scen, program, g, sim::MeetingDetection::Pairwise, 4),
          label + " pairwise/4t");
      ++cells;
    }
  }
  // The registry always exposes at least the pair scenarios at k = 2 and
  // the swarm scenarios at overridden k; an empty sweep means the override
  // loop rotted, not that there was nothing to test.
  EXPECT_GE(cells, 8u);
}

TEST(SwarmDifferential, FaultActiveCellsStayBitExactAcrossDetectionModes) {
  // Fault sites draw from the session RNG in round order; the detection
  // mode must not perturb a single draw. crash exercises agent removal /
  // revival (occupancy unseed + reseed), wb-drop exercises the whiteboard
  // path, churn exercises permanent leave.
  const auto g = test::dense_graph(48, 12, 20);
  scenario::Scenario scen = scenario::find_scenario("swarm-quorum");
  scen.num_agents = 5;
  scen.gathering = sim::Gathering::quorum_of(3);
  scen.validate();
  const auto program = scenario::find_program("explore-rally");

  for (const std::string plan_spec :
       {"crash?rate=0.05&downtime=2", "wb-drop?rate=0.2",
        "churn?rate=0.02"}) {
    const auto plan = fault::FaultPlan::parse(plan_spec);
    const auto reference = run_cell(scen, program, g,
                                    sim::MeetingDetection::Pairwise, 1, plan);
    // Faulted trials must still be doing work worth differencing: the plan
    // parsed as active (rate-0 no-op plans are a different test's job).
    ASSERT_TRUE(plan.active()) << plan_spec;
    expect_identical(
        reference,
        run_cell(scen, program, g, sim::MeetingDetection::Occupancy, 1, plan),
        plan_spec + " occupancy/1t");
    expect_identical(
        reference,
        run_cell(scen, program, g, sim::MeetingDetection::Occupancy, 4, plan),
        plan_spec + " occupancy/4t");
  }
}

}  // namespace
}  // namespace fnr
