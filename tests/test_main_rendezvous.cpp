// End-to-end tests of Theorem 1's algorithm (Construct + Main-Rendezvous),
// including the §4.1 doubling variant.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/wait_and_sweep.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"

namespace fnr::core {
namespace {

TEST(MainRendezvous, MeetsOnCompleteGraph) {
  const auto g = graph::make_complete(128);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto report = test::quick_run(g, Strategy::Whiteboard, seed);
    EXPECT_TRUE(report.run.met) << "seed " << seed;
  }
}

TEST(MainRendezvous, MeetsOnNearRegularGraphs) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = test::dense_graph(256, seed);
    const auto report = test::quick_run(g, Strategy::Whiteboard, seed * 7);
    EXPECT_TRUE(report.run.met) << "seed " << seed << " "
                                << report.describe();
  }
}

TEST(MainRendezvous, MeetsOnHubGraphs) {
  Rng rng(2);
  const auto g = graph::make_hub_augmented(256, 48, 4, rng);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto report = test::quick_run(g, Strategy::Whiteboard, seed);
    EXPECT_TRUE(report.run.met) << report.describe();
  }
}

TEST(MainRendezvous, TSetSatisfiesDenseCondition) {
  const auto g = test::dense_graph(256, 4);
  const auto report = test::quick_run(g, Strategy::Whiteboard, 11);
  ASSERT_TRUE(report.run.met);
  // If rendezvous happened before Construct finished, T^a is empty — the
  // dense-set claim only applies once construction completed.
  if (!report.agent_a.t_set_ids.empty()) {
    const double alpha = static_cast<double>(g.min_degree()) / 8.0;
    // T^a was built from a's start; recover it as the first vertex of the
    // placement we used in quick_run (seeded identically there).
    Rng rng(11, 3);
    const auto placement = sim::random_adjacent_placement(g, rng);
    EXPECT_TRUE(graph::is_dense_set(
        g, placement.a_start, test::to_indices(g, report.agent_a.t_set_ids),
        alpha, 2));
  }
}

TEST(MainRendezvous, MeetingWithinTheoremBudget) {
  // Rounds <= construct budget + C * Theorem-1 probing bound, with a
  // generous constant C; this pins the asymptotic shape without relying on
  // the paper's worst-case constants.
  const auto params = Params::practical();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = test::dense_graph(512, seed + 10);
    const auto report = test::quick_run(g, Strategy::Whiteboard, seed);
    ASSERT_TRUE(report.run.met);
    const double budget =
        static_cast<double>(params.construct_round_budget(
            g.num_vertices(), static_cast<double>(g.min_degree()))) +
        32.0 * theorem1_bound(g.num_vertices(),
                              static_cast<double>(g.min_degree()),
                              static_cast<double>(g.max_degree()));
    EXPECT_LE(static_cast<double>(report.run.meeting_round), budget)
        << report.describe();
  }
}

TEST(MainRendezvous, FoundMarkOrMetDuringConstruction) {
  const auto g = test::dense_graph(256, 6);
  const auto report = test::quick_run(g, Strategy::Whiteboard, 3);
  ASSERT_TRUE(report.run.met);
  // Either a read one of b's marks, or the agents stumbled into each other
  // earlier (both are legitimate rendezvous).
  EXPECT_TRUE(report.agent_a.found_mark || report.run.meeting_round > 0);
}

TEST(MainRendezvous, AgentBKeepsMarking) {
  const auto g = test::dense_graph(256, 7);
  const auto report = test::quick_run(g, Strategy::Whiteboard, 9);
  ASSERT_TRUE(report.run.met);
  EXPECT_GT(report.agent_b_marks, 0u);
  EXPECT_GT(report.run.metrics.whiteboard_writes, 0u);
}

TEST(MainRendezvous, DeterministicGivenSeed) {
  const auto g = test::dense_graph(256, 12);
  const auto r1 = test::quick_run(g, Strategy::Whiteboard, 1234);
  const auto r2 = test::quick_run(g, Strategy::Whiteboard, 1234);
  EXPECT_EQ(r1.run.meeting_round, r2.run.meeting_round);
  EXPECT_EQ(r1.run.meeting_vertex, r2.run.meeting_vertex);
  EXPECT_EQ(r1.agent_a.construct.iterations, r2.agent_a.construct.iterations);
}

TEST(MainRendezvous, DifferentSeedsExploreDifferently) {
  const auto g = test::dense_graph(256, 12);
  const auto r1 = test::quick_run(g, Strategy::Whiteboard, 1);
  const auto r2 = test::quick_run(g, Strategy::Whiteboard, 2);
  // Not a strict requirement, but identical meeting rounds for different
  // seeds on a 256-vertex graph would indicate frozen randomness.
  EXPECT_TRUE(r1.run.meeting_round != r2.run.meeting_round ||
              r1.agent_a.main_probes != r2.agent_a.main_probes);
}

TEST(MainRendezvous, WorksWithPaperConstantsAtSmallN) {
  const auto g = graph::make_complete(64);
  const auto report =
      test::quick_run(g, Strategy::Whiteboard, 5, Params::paper());
  EXPECT_TRUE(report.run.met) << report.describe();
}

TEST(Doubling, MeetsWithoutKnowingDelta) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto g = test::dense_graph(256, seed + 20);
    const auto report =
        test::quick_run(g, Strategy::WhiteboardDoubling, seed * 13);
    EXPECT_TRUE(report.run.met) << "seed " << seed << " "
                                << report.describe();
  }
}

TEST(Doubling, EstimateStaysInSaneRange) {
  const auto g = test::dense_graph(256, 30);
  const auto report = test::quick_run(g, Strategy::WhiteboardDoubling, 8);
  ASSERT_TRUE(report.run.met);
  if (report.agent_a.t_set_size > 0) {
    // δ' starts at deg(v0^a)/2 <= Δ/2 and only shrinks; it never needs to go
    // below δ/2 (restarts stop once δ' < δ).
    EXPECT_GE(report.delta_used,
              static_cast<double>(g.min_degree()) / 4.0);
    EXPECT_LE(report.delta_used, static_cast<double>(g.max_degree()));
  }
}

TEST(Doubling, CostWithinConstantFactorOfKnownDelta) {
  // Corollary 2: the doubling variant pays only a constant factor. Compare
  // medians across seeds to suppress variance.
  const auto g = test::dense_graph(512, 31);
  std::vector<double> known, doubling;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    known.push_back(static_cast<double>(
        test::quick_run(g, Strategy::Whiteboard, seed).run.meeting_round));
    doubling.push_back(static_cast<double>(
        test::quick_run(g, Strategy::WhiteboardDoubling, seed)
            .run.meeting_round));
  }
  const double known_med = summarize(known).median;
  const double doubling_med = summarize(doubling).median;
  EXPECT_LE(doubling_med, 16.0 * known_med + 1024.0);
}

TEST(MainRendezvous, RespectsRoundCap) {
  const auto g = test::dense_graph(256, 40);
  Rng rng(5, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);
  RendezvousOptions options;
  options.strategy = Strategy::Whiteboard;
  options.max_rounds = 5;  // far too small to finish Construct
  options.seed = 5;
  const auto report = run_rendezvous(g, placement, options);
  EXPECT_FALSE(report.run.met);
  EXPECT_LE(report.run.metrics.rounds, 5u);
}

TEST(MainRendezvous, RejectsNonAdjacentStarts) {
  const auto g = graph::make_path(4);
  RendezvousOptions options;
  EXPECT_THROW((void)run_rendezvous(g, sim::Placement{0, 3}, options),
               CheckError);
}

/// Cycles between its start u and the adjacent `target`, stamping `mark`
/// on target's whiteboard each visit — a stand-in for a foreign agent b
/// whose home is nowhere near agent a.
class ForeignStampAgent final : public sim::Agent {
 public:
  ForeignStampAgent(graph::VertexId target, graph::VertexId mark)
      : target_(target), mark_(mark) {}

  sim::Action step(const sim::View& view) override {
    if (view.here() != target_) return sim::Action::move(view.port_of(target_));
    sim::Action action;
    action.whiteboard_write = mark_;
    action.move_port = *view.arrival_port();  // back to u
    return action;
  }

 private:
  graph::VertexId target_;
  graph::VertexId mark_;
};

TEST(MainRendezvous, ForeignMarksAreCountedSkippedAndNeverDereferenced) {
  // The k-agent hazard the paper's two-agent instance cannot produce: a
  // reads a mark naming a vertex OUTSIDE its home neighborhood. The stamp
  // agent keeps writing the ID of the far vertex 4 onto a's home (vertex 1,
  // whose closed neighborhood is {0, 1, 2}); a must count the mark as
  // foreign, keep probing (never enter Sit / plan a route to 4 — it has
  // none), and finish the run without touching unknown state (the ASan CI
  // job turns any dereference into a failure).
  graph::GraphBuilder builder(5);
  for (graph::VertexIndex v = 0; v + 1 < 5; ++v) builder.add_edge(v, v + 1);
  const auto g = std::move(builder).build_identity_ids();

  sim::Scheduler scheduler(g, sim::Model::full());
  WhiteboardAgentA a(Params::practical(), /*known_delta=*/1.0, Rng(3, 1));
  ForeignStampAgent stamp(/*target=*/1, /*mark=*/4);
  baselines::WaitingAgent waiter;

  sim::ScenarioPlacement placement;
  placement.starts = {1, 0, 4};
  // All-meet gathering so a and the stamp agent co-locating on vertex 1
  // does not end the run (the waiter at 4 never joins). Construct needs
  // ~400 rounds on this path; 2000 leaves the Main phase plenty of probes.
  const auto result = scheduler.run_scenario({&a, &stamp, &waiter}, placement,
                                             sim::Gathering::All, 2000);
  EXPECT_FALSE(result.met);
  EXPECT_GE(a.stats().foreign_marks, 1u);
  EXPECT_FALSE(a.stats().found_mark);  // a foreign mark is not a find
}

}  // namespace
}  // namespace fnr::core
