// Bit-exactness of the batched SoA trial kernel against the scalar oracle.
//
// The scalar Scheduler path is the reference semantics; the BatchScheduler
// (lock-step SoA kernel, shared neighbor table, counter-based per-trial
// seeds) is pure throughput. These tests pin the contract at every layer:
//   - sim:      BatchScheduler vs Scheduler::run_scenario, same trials
//   - core:     run_trials_batched vs run_trials (all strategies)
//   - scenario: run_scenario_trials batched vs scalar (delays, k > 2, All)
//   - sweep:    the full registry-smoke grid, merged JSON byte-identical
// Aggregate comparisons use byte-level equality (memcmp / string ==), the
// same definition the determinism tests use.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "graph/generators.hpp"
#include "graph/id_space.hpp"
#include "scenario/run.hpp"
#include "sim/batch_scheduler.hpp"
#include "sweep/engine.hpp"
#include "sweep/spec.hpp"
#include "test_support.hpp"

namespace fnr {
namespace {

/// Deterministic heap-free agent exercising whiteboards, neighbor IDs, and
/// movement — behaviour depends only on the View, so scalar and batched
/// runs of the same trial must match exactly.
class SweepProbe final : public sim::Agent {
 public:
  sim::Action step(const sim::View& view) override {
    if (view.has_whiteboards()) (void)view.whiteboard();
    std::uint64_t pick = view.round() + view.here();
    if (view.has_neighborhood_ids())
      pick += view.neighbor_ids().front();  // exercise the shared table
    sim::Action action = sim::Action::move(pick % view.degree());
    if (view.has_whiteboards() && (view.round() & 3) == 0)
      action.whiteboard_write = view.here();
    return action;
  }
  [[nodiscard]] std::size_t memory_words() const override { return 1; }
};

void expect_same_scenario_run(const sim::ScenarioRunResult& x,
                              const sim::ScenarioRunResult& y) {
  EXPECT_EQ(x.met, y.met);
  EXPECT_EQ(x.meeting_round, y.meeting_round);
  EXPECT_EQ(x.meeting_vertex, y.meeting_vertex);
  EXPECT_EQ(x.meeting_agent_a, y.meeting_agent_a);
  EXPECT_EQ(x.meeting_agent_b, y.meeting_agent_b);
  EXPECT_EQ(x.rounds, y.rounds);
  EXPECT_EQ(x.whiteboard_reads, y.whiteboard_reads);
  EXPECT_EQ(x.whiteboard_writes, y.whiteboard_writes);
  EXPECT_EQ(x.whiteboards_used, y.whiteboards_used);
  ASSERT_EQ(x.agents.size(), y.agents.size());
  for (std::size_t i = 0; i < x.agents.size(); ++i) {
    EXPECT_EQ(x.agents[i].wake_delay, y.agents[i].wake_delay);
    EXPECT_EQ(x.agents[i].moves, y.agents[i].moves);
    EXPECT_EQ(x.agents[i].peak_memory_words, y.agents[i].peak_memory_words);
  }
}

TEST(BatchKernel, MatchesScalarSchedulerTrialByTrial) {
  Rng graph_rng(11, 17);
  const auto g = graph::make_near_regular(48, 6, graph_rng);

  // Three staged trials with different k-compatible placements, wake
  // delays, and caps — including one that times out and one that gathers.
  const std::vector<sim::ScenarioPlacement> placements = {
      {{0, 7, 21}, {0, 2, 5}},
      {{3, 40, 13}, {}},
      {{30, 1, 9}, {1, 0, 0}},
  };
  const std::vector<std::uint64_t> caps = {40, 400, 4};

  for (const auto gathering :
       {sim::Gathering::AnyPair, sim::Gathering::All}) {
    sim::BatchScheduler kernel(g, sim::Model::full());
    kernel.begin_batch(gathering);
    std::vector<std::unique_ptr<SweepProbe>> batch_agents;
    for (std::size_t t = 0; t < placements.size(); ++t) {
      std::vector<sim::Agent*> team;
      for (std::size_t i = 0; i < placements[t].num_agents(); ++i) {
        batch_agents.push_back(std::make_unique<SweepProbe>());
        team.push_back(batch_agents.back().get());
      }
      kernel.add_trial(team, placements[t], caps[t]);
    }
    const auto batched = kernel.run();
    ASSERT_EQ(batched.size(), placements.size());

    sim::Scheduler scalar(g, sim::Model::full());
    for (std::size_t t = 0; t < placements.size(); ++t) {
      std::vector<std::unique_ptr<SweepProbe>> agents;
      std::vector<sim::Agent*> team;
      for (std::size_t i = 0; i < placements[t].num_agents(); ++i) {
        agents.push_back(std::make_unique<SweepProbe>());
        team.push_back(agents.back().get());
      }
      const auto expected =
          scalar.run_scenario(team, placements[t], gathering, caps[t]);
      expect_same_scenario_run(batched[t], expected);
    }
  }
}

TEST(BatchKernel, SharedTableServesExactNeighborViews) {
  // A batched agent must observe the identical neighbor-ID sequence and
  // port mapping the scalar lazy cache produces (same IDs, same order).
  Rng graph_rng(23, 17);
  const auto g = graph::make_near_regular(32, 5, graph_rng);
  const sim::NeighborTable table(g);
  sim::Scheduler scalar(g, sim::Model::full());
  for (graph::VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    ASSERT_EQ(table.ids[v].size(), nbrs.size());
    for (std::size_t port = 0; port < nbrs.size(); ++port) {
      EXPECT_EQ(table.ids[v][port], g.id_of(nbrs[port]));
      ASSERT_LT(table.ids[v][port], table.index_by_id.size());
      EXPECT_EQ(table.index_by_id[table.ids[v][port]], nbrs[port]);
    }
  }
}

TEST(BatchTrials, CoreAggregatesAreBitIdenticalAcrossBatchSizes) {
  const auto g = test::dense_graph(96, 5);
  core::RendezvousOptions options;
  options.seed = 42;
  const runner::TrialRunner serial(runner::RunnerOptions{1});
  const runner::TrialRunner pooled(runner::RunnerOptions{3});

  for (const auto strategy :
       {core::Strategy::Whiteboard, core::Strategy::WhiteboardDoubling}) {
    const auto scalar =
        core::run_trials(strategy, g, options, 24, serial).aggregate();
    for (const std::uint64_t batch : {2u, 7u, 24u, 64u}) {
      const auto batched =
          core::run_trials_batched(strategy, g, options, 24, serial, batch)
              .aggregate();
      EXPECT_TRUE(test::bits_equal(scalar, batched))
          << to_string(strategy) << " diverged at batch=" << batch;
      // And across thread counts, same as the scalar determinism contract.
      const auto threaded =
          core::run_trials_batched(strategy, g, options, 24, pooled, batch)
              .aggregate();
      EXPECT_TRUE(test::bits_equal(scalar, threaded))
          << to_string(strategy) << " diverged at batch=" << batch
          << " with 3 threads";
    }
  }
}

TEST(BatchTrials, NoWhiteboardStrategyMatchesToo) {
  Rng rng(7, 17);
  const auto g = graph::make_near_regular(64, 20, rng);  // tight naming
  core::RendezvousOptions options;
  options.seed = 5;
  const runner::TrialRunner serial(runner::RunnerOptions{1});
  const auto scalar =
      core::run_trials(core::Strategy::NoWhiteboard, g, options, 12, serial)
          .aggregate();
  const auto batched =
      core::run_trials_batched(core::Strategy::NoWhiteboard, g, options, 12,
                               serial, 5)
          .aggregate();
  EXPECT_TRUE(test::bits_equal(scalar, batched));
}

TEST(BatchTrials, ScenarioLayerMatchesWithDelaysAndCrowds) {
  Rng rng(19, 17);
  const auto g = graph::make_near_regular(72, 24, rng);
  const scenario::Program program = scenario::find_program("whiteboard");
  scenario::Scenario crowd;
  crowd.name = "crowd";
  crowd.num_agents = 4;
  crowd.placement = scenario::PlacementModel::NeighborhoodCluster;
  crowd.delay = scenario::DelayModel::RandomUniform;
  crowd.max_delay = 9;
  crowd.gathering = sim::Gathering::AnyPair;

  scenario::ScenarioOptions options;
  options.seed = 1234;
  const runner::TrialRunner serial(runner::RunnerOptions{1});
  const auto scalar =
      run_scenario_trials(crowd, program, g, options, 10, serial).aggregate();
  for (const std::uint64_t batch : {3u, 10u, 32u}) {
    const auto batched =
        run_scenario_trials(crowd, program, g, options, 10, serial, batch)
            .aggregate();
    EXPECT_TRUE(test::bits_equal(scalar, batched))
        << "scenario batch=" << batch << " diverged";
  }
}

TEST(BatchSweep, RegistrySmokeGridIsByteIdenticalThroughBothPaths) {
  // The acceptance gate of the batched kernel: the full registry-smoke
  // grid (every registered program on every compatible scenario) merged
  // through the scalar path and through the batched path must serialize
  // to byte-identical JSON.
  const auto spec = sweep::find_spec("registry-smoke");
  sweep::SweepOptions scalar_options;
  scalar_options.threads = 2;
  const auto scalar = sweep::run_sweep(spec, scalar_options);
  ASSERT_TRUE(scalar.complete);

  sweep::SweepOptions batched_options = scalar_options;
  batched_options.threads = 1;  // also crosses thread counts
  batched_options.batch = 16;
  const auto batched = sweep::run_sweep(spec, batched_options);
  ASSERT_TRUE(batched.complete);

  EXPECT_EQ(sweep::to_json(spec, scalar.cells),
            sweep::to_json(spec, batched.cells));
}

}  // namespace
}  // namespace fnr
