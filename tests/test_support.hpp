// Shared fixtures and helpers for the test suite.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "core/rendezvous.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/id_space.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace fnr::test {

/// Byte-level aggregate equality — "bit-identical" is the contract the
/// runner and scenario determinism tests assert.
inline bool bits_equal(const runner::TrialAggregate& x,
                       const runner::TrialAggregate& y) {
  return std::memcmp(&x, &y, sizeof(runner::TrialAggregate)) == 0;
}

/// A dense near-regular graph satisfying Theorem 1's δ ≥ √n comfortably.
inline graph::Graph dense_graph(std::size_t n, std::uint64_t seed,
                                std::size_t out_degree = 0) {
  Rng rng(seed, /*stream=*/17);
  if (out_degree == 0) {
    // δ ≈ n^0.75: safely ω(√n log n) at test sizes.
    out_degree = static_cast<std::size_t>(std::pow(double(n), 0.75));
  }
  return graph::make_near_regular(n, out_degree, rng);
}

/// Runs the given strategy on a random adjacent placement and returns the
/// report.
inline core::RendezvousReport quick_run(const graph::Graph& g,
                                        core::Strategy strategy,
                                        std::uint64_t seed,
                                        core::Params params =
                                            core::Params::practical()) {
  Rng rng(seed, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);
  core::RendezvousOptions options;
  options.strategy = strategy;
  options.params = params;
  options.seed = seed;
  return core::run_rendezvous(g, placement, options);
}

/// Converts T^a (IDs) to vertex indices for ground-truth verification.
inline std::vector<graph::VertexIndex> to_indices(
    const graph::Graph& g, const std::vector<graph::VertexId>& ids) {
  std::vector<graph::VertexIndex> out;
  out.reserve(ids.size());
  for (const auto id : ids) out.push_back(g.index_of(id));
  return out;
}

}  // namespace fnr::test
