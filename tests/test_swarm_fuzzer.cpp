// Randomized property fuzzer for the swarm gathering engine. Each iteration
// draws a random cell — k up to 4096 agents, a random wake-delay model, a
// random quorum — and checks algebraic identities the predicates must
// satisfy regardless of k, program, or topology:
//
//   AnyPair        ≡ Quorum(2)       (bit-identical trials)
//   All            ≡ Fraction(1.0)   (bit-identical trials)
//   Quorum(q)      monotone in q     (a larger quorum never meets earlier)
//   extending the round budget never changes an already-found meeting
//   occupancy counters stay consistent (self-check recount every round)
//
// Every cell pins max_rounds explicitly: the auto cap scales with the
// gathering threshold, so predicate pairs would otherwise run under
// different budgets and the equivalences would be vacuously incomparable.
// Seeds are fixed — "fuzz" here means breadth of drawn cells, with every
// failure exactly reproducible.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "graph/generators.hpp"
#include "runner/trial_runner.hpp"
#include "scenario/program_registry.hpp"
#include "scenario/run.hpp"
#include "scenario/scenario.hpp"
#include "sim/model.hpp"
#include "sim/scheduler.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace fnr {
namespace {

constexpr std::uint64_t kFuzzSeed = 20260808;
constexpr int kIterations = 10;
constexpr std::uint64_t kRoundBudget = 1536;

/// One random swarm cell: k agents dropped anywhere on a 256-vertex torus
/// under a random delay model. Gathering is filled in by each property.
/// k is drawn log-uniform so small crowds (where predicates actually
/// diverge round-by-round) dominate, but every scale up to a full graph
/// appears; the dedicated 4096-agent cell lives in its own test below.
scenario::Scenario random_cell(Rng& rng) {
  scenario::Scenario scen;
  scen.name = "fuzz-cell";
  scen.summary = "randomized swarm fuzz cell";
  const std::uint64_t scale = std::uint64_t{1} << (1 + rng.below(8));
  scen.num_agents = std::min<std::size_t>(
      2 + static_cast<std::size_t>(rng.below(scale)), 256);  // skewed low
  scen.placement = scenario::PlacementModel::RandomDistinct;
  switch (rng.below(3)) {
    case 0:
      scen.delay = scenario::DelayModel::None;
      break;
    case 1:
      scen.delay = scenario::DelayModel::RandomUniform;
      scen.max_delay = 1 + rng.below(32);
      break;
    default:
      scen.delay = scenario::DelayModel::Adversarial;
      scen.max_delay = 1 + rng.below(32);
      break;
  }
  return scen;
}

runner::TrialAccumulator run_cell(const scenario::Scenario& scen,
                                  const graph::Graph& g, std::uint64_t seed,
                                  std::uint64_t max_rounds = kRoundBudget) {
  const auto program = scenario::find_program("explore-rally");
  scenario::ScenarioOptions options;
  options.seed = seed;
  options.max_rounds = max_rounds;
  const runner::TrialRunner trial_runner(runner::RunnerOptions{1});
  return scenario::run_scenario_trials(scen, program, g, options,
                                       /*n_trials=*/2, trial_runner);
}

TEST(SwarmFuzzer, AnyPairIsQuorumTwoAndAllIsFractionOne) {
  const auto g = graph::make_torus(16, 16);
  Rng rng(kFuzzSeed, 1);
  for (int iter = 0; iter < kIterations; ++iter) {
    scenario::Scenario scen = random_cell(rng);
    const std::uint64_t seed = rng();

    scen.gathering = sim::Gathering::AnyPair;
    const auto any_pair = run_cell(scen, g, seed);
    scen.gathering = sim::Gathering::quorum_of(2);
    const auto quorum_two = run_cell(scen, g, seed);
    EXPECT_TRUE(test::bits_equal(any_pair.aggregate(), quorum_two.aggregate()))
        << "iter " << iter << " k=" << scen.num_agents
        << ": AnyPair != Quorum(2)";

    scen.gathering = sim::Gathering::All;
    const auto all = run_cell(scen, g, seed);
    scen.gathering = sim::Gathering::fraction_of(1.0);
    const auto fraction_one = run_cell(scen, g, seed);
    EXPECT_TRUE(test::bits_equal(all.aggregate(), fraction_one.aggregate()))
        << "iter " << iter << " k=" << scen.num_agents
        << ": All != Fraction(1.0)";
  }
}

TEST(SwarmFuzzer, QuorumIsMonotoneAndMeetingsSurviveLongerBudgets) {
  const auto g = graph::make_torus(16, 16);
  Rng rng(kFuzzSeed, 2);
  for (int iter = 0; iter < kIterations; ++iter) {
    scenario::Scenario scen = random_cell(rng);
    const std::uint64_t seed = rng();
    const std::uint64_t q_small = 2 + rng.below(scen.num_agents - 1);
    const std::uint64_t q_large =
        q_small + rng.below(scen.num_agents - q_small + 1);

    scen.gathering = sim::Gathering::quorum_of(q_small);
    const auto small = run_cell(scen, g, seed).sorted_outcomes();
    scen.gathering = sim::Gathering::quorum_of(q_large);
    const auto large = run_cell(scen, g, seed).sorted_outcomes();
    ASSERT_EQ(small.size(), large.size());
    for (std::size_t t = 0; t < small.size(); ++t) {
      // q' >= q: any q'-gathering is also a q-gathering, so the smaller
      // quorum can only meet earlier (or when the larger one missed).
      if (large[t].met) {
        EXPECT_TRUE(small[t].met) << "iter " << iter << " trial " << t;
        EXPECT_LE(small[t].meeting_round, large[t].meeting_round)
            << "iter " << iter << " trial " << t << " (q " << q_small
            << " vs " << q_large << ")";
      }
    }

    // Extending the budget only appends rounds: a meeting found under the
    // short cap must recur at the identical round under the long cap.
    scen.gathering = sim::Gathering::quorum_of(q_small);
    const auto longer =
        run_cell(scen, g, seed, kRoundBudget * 3).sorted_outcomes();
    ASSERT_EQ(small.size(), longer.size());
    for (std::size_t t = 0; t < small.size(); ++t) {
      if (!small[t].met) continue;
      EXPECT_TRUE(longer[t].met) << "iter " << iter << " trial " << t;
      EXPECT_EQ(small[t].meeting_round, longer[t].meeting_round)
          << "iter " << iter << " trial " << t;
      EXPECT_EQ(small[t].gathered_count, longer[t].gathered_count)
          << "iter " << iter << " trial " << t;
    }
  }
}

TEST(SwarmFuzzer, MaxScaleCellHoldsTheQuorumTwoIdentity) {
  // The upper end of the fuzz range in one deliberate cell: k = 4096 agents
  // saturating a 4096-vertex torus. At that density AnyPair resolves almost
  // immediately, so a short budget suffices — the point is that the
  // occupancy engine and the predicate algebra survive full saturation.
  const auto g = graph::make_torus(64, 64);
  scenario::Scenario scen;
  scen.name = "fuzz-max";
  scen.summary = "saturated torus";
  scen.num_agents = 4096;
  scen.placement = scenario::PlacementModel::RandomDistinct;
  scen.delay = scenario::DelayModel::None;

  scen.gathering = sim::Gathering::AnyPair;
  const auto any_pair = run_cell(scen, g, kFuzzSeed, /*max_rounds=*/256);
  scen.gathering = sim::Gathering::quorum_of(2);
  const auto quorum_two = run_cell(scen, g, kFuzzSeed, /*max_rounds=*/256);
  EXPECT_TRUE(test::bits_equal(any_pair.aggregate(), quorum_two.aggregate()));
  for (const auto& outcome : any_pair.sorted_outcomes()) {
    EXPECT_TRUE(outcome.met);
    EXPECT_GE(outcome.gathered_count, 2u);
  }
}

TEST(SwarmFuzzer, OccupancySelfCheckRunsCleanOnRandomCells) {
  // set_occupancy_self_check recounts the occupancy array against agent
  // positions every round (total == k, threshold counter exact) and throws
  // on the first inconsistency — a clean run IS the assertion. Smaller k
  // range: the recount is O(n + k) per round by design.
  const auto g = graph::make_torus(16, 16);
  const auto program = scenario::find_program("explore-rally");
  Rng rng(kFuzzSeed, 3);
  for (int iter = 0; iter < 4; ++iter) {
    scenario::Scenario scen = random_cell(rng);
    scen.num_agents = 2 + static_cast<std::size_t>(rng.below(255));
    const std::uint64_t q = 2 + rng.below(scen.num_agents - 1);
    scen.gathering = sim::Gathering::quorum_of(q);
    scen.validate();

    sim::SchedulerScratch scratch;
    scratch.scheduler_for(g, program.def().model)
        .set_occupancy_self_check(true);
    Rng instance_rng(kFuzzSeed + iter, /*stream=*/11);
    const auto placement = scenario::draw_instance(scen, g, instance_rng);
    scenario::ScenarioOptions options;
    options.seed = rng();
    options.max_rounds = kRoundBudget;
    options.detection = sim::MeetingDetection::Occupancy;
    const auto report = scenario::run_scenario(scen, program, g, placement,
                                               options, scratch);
    // Self-check violations throw before we get here; sanity-check the run
    // actually executed rounds.
    EXPECT_GT(report.run.rounds, 0u) << "iter " << iter;
  }
}

}  // namespace
}  // namespace fnr
