// Unit tests for the graph substrate: builder, CSR invariants, ID spaces,
// and every generator family (parameterized structural sweeps).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/id_space.hpp"
#include "util/rng.hpp"

namespace fnr::graph {
namespace {

TEST(Builder, BuildsTriangle) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const Graph g = std::move(b).build_identity_ids();
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.min_degree(), 2u);
  EXPECT_EQ(g.max_degree(), 2u);
  EXPECT_TRUE(validate_structure(g));
}

TEST(Builder, DeduplicatesParallelEdges) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build_identity_ids();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, RejectsSelfLoop) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(1, 1), CheckError);
}

TEST(Builder, RejectsOutOfRange) {
  GraphBuilder b(2);
  EXPECT_THROW(b.add_edge(0, 2), CheckError);
}

TEST(Builder, RejectsDuplicateIds) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  IdSpace ids;
  ids.ids = {5, 5};
  ids.bound = 10;
  EXPECT_THROW((void)std::move(b).build(std::move(ids)), CheckError);
}

TEST(Builder, RejectsIdAboveBound) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  IdSpace ids;
  ids.ids = {0, 10};
  ids.bound = 10;  // exclusive
  EXPECT_THROW((void)std::move(b).build(std::move(ids)), CheckError);
}

TEST(Graph, PortNumberingIsConsistent) {
  const Graph g = make_complete(5);
  for (VertexIndex v = 0; v < 5; ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t p = 0; p < nbrs.size(); ++p) {
      EXPECT_EQ(g.neighbor_at_port(v, p), nbrs[p]);
      EXPECT_EQ(g.port_to(v, nbrs[p]), p);
    }
  }
}

TEST(Graph, PortOutOfRangeThrows) {
  const Graph g = make_ring(4);
  EXPECT_THROW((void)g.neighbor_at_port(0, 2), CheckError);
}

TEST(Graph, HasEdgeMatchesConstruction) {
  const Graph g = make_ring(6);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(5, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
  EXPECT_FALSE(g.has_edge(0, 0));
}

TEST(Graph, IdLookupRoundTrips) {
  Rng rng(5);
  Graph g = with_ids(make_ring(8), shuffled_ids(8, rng));
  for (VertexIndex v = 0; v < 8; ++v)
    EXPECT_EQ(g.index_of(g.id_of(v)), v);
  EXPECT_EQ(g.try_index_of(12345), kNoVertex);
  EXPECT_THROW((void)g.index_of(12345), CheckError);
}

TEST(Graph, EdgeAtSlotCoversAllDirectedEdges) {
  const Graph g = make_ring(5);
  std::set<std::pair<VertexIndex, VertexIndex>> seen;
  for (std::uint64_t s = 0; s < 2 * g.num_edges(); ++s)
    seen.insert(g.edge_at_slot(s));
  EXPECT_EQ(seen.size(), 2 * g.num_edges());
  for (const auto& [u, v] : seen) EXPECT_TRUE(g.has_edge(u, v));
}

TEST(IdSpace, IdentityIsTight) {
  const auto ids = identity_ids(10);
  EXPECT_TRUE(ids.tight);
  EXPECT_EQ(ids.bound, 10u);
  EXPECT_EQ(ids.ids[3], 3u);
}

TEST(IdSpace, TightWithSlackHasDistinctBoundedIds) {
  Rng rng(9);
  const auto ids = tight_ids(100, 3.0, rng);
  EXPECT_TRUE(ids.tight);
  EXPECT_EQ(ids.bound, 300u);
  std::set<VertexId> unique(ids.ids.begin(), ids.ids.end());
  EXPECT_EQ(unique.size(), 100u);
  for (const auto id : ids.ids) EXPECT_LT(id, 300u);
}

TEST(IdSpace, SparseIsPolynomialAndNotTight) {
  Rng rng(9);
  const auto ids = sparse_ids(100, 2.0, rng);
  EXPECT_FALSE(ids.tight);
  EXPECT_EQ(ids.bound, 10000u);
  std::set<VertexId> unique(ids.ids.begin(), ids.ids.end());
  EXPECT_EQ(unique.size(), 100u);
}

TEST(IdSpace, SparseRejectsExponentBelowOne) {
  Rng rng(9);
  EXPECT_THROW((void)sparse_ids(10, 0.9, rng), CheckError);
}

TEST(Generators, CompleteGraphShape) {
  const Graph g = make_complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  EXPECT_EQ(g.min_degree(), 6u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_TRUE(validate_structure(g));
}

TEST(Generators, RingAndPathShape) {
  const Graph ring = make_ring(9);
  EXPECT_EQ(ring.num_edges(), 9u);
  EXPECT_EQ(ring.min_degree(), 2u);
  const Graph path = make_path(9);
  EXPECT_EQ(path.num_edges(), 8u);
  EXPECT_EQ(path.min_degree(), 1u);
  EXPECT_TRUE(is_connected(ring));
  EXPECT_TRUE(is_connected(path));
}

TEST(Generators, StarShape) {
  const Graph g = make_star(6);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.max_degree(), 6u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.degree(0), 6u);
}

TEST(Generators, GridShape) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // horizontal + vertical
  EXPECT_TRUE(is_connected(g));
  EXPECT_TRUE(validate_structure(g));
}

TEST(Generators, ErdosRenyiDensityIsPlausible) {
  Rng rng(123);
  const std::size_t n = 400;
  const double p = 0.05;
  const Graph g = make_erdos_renyi(n, p, rng);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected,
              6 * std::sqrt(expected));
  EXPECT_TRUE(validate_structure(g));
}

TEST(Generators, ErdosRenyiFullProbabilityIsComplete) {
  Rng rng(1);
  const Graph g = make_erdos_renyi(20, 1.0, rng);
  EXPECT_EQ(g.num_edges(), 190u);
}

TEST(Generators, NearRegularDegreeBand) {
  Rng rng(7);
  const std::size_t n = 500, k = 20;
  const Graph g = make_near_regular(n, k, rng);
  EXPECT_GE(g.min_degree(), k);          // every vertex chose k partners
  EXPECT_LE(g.max_degree(), 4 * k);      // concentration (loose band)
  EXPECT_TRUE(validate_structure(g));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, HubAugmentedSeparatesDeltaFromMaxDegree) {
  Rng rng(11);
  const std::size_t n = 300;
  const Graph g = make_hub_augmented(n, 10, 3, rng);
  EXPECT_EQ(g.max_degree(), n - 1);      // hubs touch everything
  EXPECT_GE(g.min_degree(), 13u);        // base degree + hubs
  EXPECT_LE(g.min_degree(), 60u);
  EXPECT_TRUE(validate_structure(g));
}

TEST(Generators, DoubleStarMatchesFigure1a) {
  const auto built = make_double_star(50);
  const Graph& g = built.graph;
  EXPECT_EQ(g.num_vertices(), 102u);
  EXPECT_EQ(g.min_degree(), 1u);
  EXPECT_EQ(g.max_degree(), 51u);  // leaves + other center
  EXPECT_TRUE(g.has_edge(built.center_a, built.center_b));
  EXPECT_EQ(distance(g, built.center_a, built.center_b), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, DoubleStarCliquesMatchesFigure1b) {
  const auto built = make_double_star_cliques(8, 5);
  const Graph& g = built.graph;
  EXPECT_EQ(g.num_vertices(), 2u + 2u * 8 * 5);
  EXPECT_EQ(g.min_degree(), 4u);             // clique interior
  EXPECT_EQ(g.degree(built.center_a), 9u);   // branches + other center
  EXPECT_TRUE(g.has_edge(built.center_a, built.center_b));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, BridgedCliquesMatchesFigure2) {
  const auto built = make_bridged_cliques(20);
  const Graph& g = built.graph;
  EXPECT_EQ(g.num_vertices(), 40u);
  // Every vertex has degree exactly n/2 - 1 = 19.
  EXPECT_EQ(g.min_degree(), 19u);
  EXPECT_EQ(g.max_degree(), 19u);
  EXPECT_TRUE(g.has_edge(built.a_start, built.b_start));
  EXPECT_TRUE(g.has_edge(built.x1, built.x2));
  EXPECT_FALSE(g.has_edge(built.a_start, built.x1));
  EXPECT_FALSE(g.has_edge(built.b_start, built.x2));
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, SharedVertexCliquesMatchesFigure3) {
  const auto built = make_shared_vertex_cliques(15);
  const Graph& g = built.graph;
  EXPECT_EQ(g.num_vertices(), 29u);
  EXPECT_EQ(g.max_degree(), 28u);  // the shared vertex sees both cliques
  EXPECT_EQ(g.min_degree(), 14u);
  EXPECT_EQ(distance(g, built.a_start, built.b_start), 2u);
  EXPECT_EQ(distance(g, built.a_start, built.shared), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, WithIdsPreservesTopology) {
  Rng rng(3);
  const Graph g = make_ring(10);
  const Graph h = with_ids(g, sparse_ids(10, 2.0, rng));
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexIndex v = 0; v < 10; ++v) EXPECT_EQ(h.degree(v), g.degree(v));
  EXPECT_FALSE(h.tight_ids());
}

// Parameterized structural sweep: every random family, several sizes/seeds.
struct FamilyCase {
  const char* name;
  std::size_t n;
  std::uint64_t seed;
};

class RandomFamilyStructure
    : public ::testing::TestWithParam<FamilyCase> {};

TEST_P(RandomFamilyStructure, InvariantsHold) {
  const auto& param = GetParam();
  Rng rng(param.seed);
  Graph g;
  const std::string name = param.name;
  if (name == "er") {
    g = make_erdos_renyi(param.n, 8.0 / static_cast<double>(param.n), rng);
  } else if (name == "near_regular") {
    g = make_near_regular(param.n, 8, rng);
  } else {
    g = make_hub_augmented(param.n, 6, 2, rng);
  }
  EXPECT_TRUE(validate_structure(g));
  EXPECT_EQ(g.num_vertices(), param.n);
  std::size_t degree_sum = 0;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) degree_sum += g.degree(v);
  EXPECT_EQ(degree_sum, 2 * g.num_edges());  // handshake lemma
}

INSTANTIATE_TEST_SUITE_P(
    Families, RandomFamilyStructure,
    ::testing::Values(FamilyCase{"er", 64, 1}, FamilyCase{"er", 256, 2},
                      FamilyCase{"er", 1024, 3},
                      FamilyCase{"near_regular", 64, 4},
                      FamilyCase{"near_regular", 256, 5},
                      FamilyCase{"near_regular", 1024, 6},
                      FamilyCase{"hub", 64, 7}, FamilyCase{"hub", 256, 8},
                      FamilyCase{"hub", 1024, 9}),
    [](const auto& info) {
      return std::string(info.param.name) + "_n" +
             std::to_string(info.param.n);
    });

}  // namespace
}  // namespace fnr::graph
