// Smoke test: every Strategy succeeds within its automatic round cap on a
// small dense graph, both one-at-a-time and through the batch entry point.
#include <gtest/gtest.h>

#include "test_support.hpp"

namespace fnr::core {
namespace {

constexpr std::uint64_t kTrials = 5;

class StrategySmoke : public ::testing::TestWithParam<Strategy> {};

TEST_P(StrategySmoke, FiveTrialsSucceedWithinAutoCap) {
  // δ ≈ n^0.75 near-regular: comfortably inside the (z, α, β)-dense regime
  // both upper-bound theorems assume.
  const auto g = test::dense_graph(160, 91);
  const auto cap = auto_round_cap(g, GetParam(), Params::practical());
  for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
    const auto report = test::quick_run(g, GetParam(), 6000 + trial);
    EXPECT_TRUE(report.run.met)
        << to_string(GetParam()) << " trial " << trial << " failed";
    EXPECT_LE(report.run.meeting_round, cap);
    EXPECT_EQ(report.round_cap, cap);
  }
}

TEST_P(StrategySmoke, BatchRunTrialsAllSucceed) {
  const auto g = test::dense_graph(160, 91);
  RendezvousOptions options;
  options.seed = 77;
  const auto agg =
      run_trials(GetParam(), g, options, kTrials, /*threads=*/2).aggregate();
  EXPECT_EQ(agg.trials, kTrials);
  EXPECT_EQ(agg.successes, kTrials) << to_string(GetParam());
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.success_rate, 1.0);
  EXPECT_GT(agg.rounds.max, 0.0);
  if (GetParam() == Strategy::NoWhiteboard) {
    EXPECT_EQ(agg.total_marks, 0u);  // no whiteboards, no marks
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StrategySmoke,
                         ::testing::Values(Strategy::Whiteboard,
                                           Strategy::WhiteboardDoubling,
                                           Strategy::NoWhiteboard),
                         [](const auto& info) {
                           switch (info.param) {
                             case Strategy::Whiteboard: return "Whiteboard";
                             case Strategy::WhiteboardDoubling:
                               return "WhiteboardDoubling";
                             case Strategy::NoWhiteboard:
                               return "NoWhiteboard";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace fnr::core
