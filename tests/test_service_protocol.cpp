// Wire-protocol contract tests for the fnrd service layer: request
// round-trips through serialize/parse, the malformed-request battery
// (unknown verbs and fields, missing/invalid campaign names, spec rules),
// and the response builders' leading-"type" invariant that fnrc relies on.
#include "service/protocol.hpp"

#include <string>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/json.hpp"

namespace fnr::service {
namespace {

Request round_trip(const Request& request) {
  return parse_request(serialize_request(request));
}

TEST(ServiceProtocol, VerbNamesRoundTrip) {
  for (const Verb verb : {Verb::Submit, Verb::Status, Verb::Stream,
                          Verb::Cancel, Verb::Resume, Verb::Report}) {
    EXPECT_EQ(parse_verb(to_string(verb)), verb);
  }
  EXPECT_THROW((void)parse_verb("gather"), CheckError);
  EXPECT_THROW((void)parse_verb(""), CheckError);
  EXPECT_THROW((void)parse_verb("SUBMIT"), CheckError);  // case-sensitive
}

TEST(ServiceProtocol, SubmitRoundTripsAllFields) {
  Request request;
  request.verb = Verb::Submit;
  request.campaign = "smoke-1";
  request.spec_text = "name = tiny\ntrials = 2\n";
  request.trials = 8;
  request.batch = 16;
  request.max_cells = 3;
  const Request parsed = round_trip(request);
  EXPECT_EQ(parsed.verb, Verb::Submit);
  EXPECT_EQ(parsed.campaign, "smoke-1");
  EXPECT_EQ(parsed.spec_text, request.spec_text);
  EXPECT_EQ(parsed.trials, 8u);
  EXPECT_EQ(parsed.batch, 16u);
  EXPECT_EQ(parsed.max_cells, 3u);
}

TEST(ServiceProtocol, SpecTextSurvivesEscaping) {
  // Spec text crosses the wire through json_escape: newlines, quotes,
  // backslashes, and control bytes must all survive a round trip.
  Request request;
  request.verb = Verb::Submit;
  request.campaign = "escapes";
  request.spec_text = "line1\nline2\t\"quoted\" back\\slash\x01end";
  const Request parsed = round_trip(request);
  EXPECT_EQ(parsed.spec_text, request.spec_text);
}

TEST(ServiceProtocol, StatusCampaignIsOptional) {
  Request request;
  request.verb = Verb::Status;
  const Request parsed = round_trip(request);
  EXPECT_EQ(parsed.verb, Verb::Status);
  EXPECT_TRUE(parsed.campaign.empty());
}

TEST(ServiceProtocol, NonStatusVerbsRequireACampaign) {
  for (const char* verb : {"stream", "cancel", "resume", "report"}) {
    const std::string payload =
        std::string("{\"verb\":\"") + verb + "\"}";
    EXPECT_THROW((void)parse_request(payload), CheckError) << verb;
  }
}

TEST(ServiceProtocol, CampaignNamesAreFilesystemSafe) {
  EXPECT_TRUE(valid_campaign_name("smoke"));
  EXPECT_TRUE(valid_campaign_name("A-b_c.9"));
  EXPECT_FALSE(valid_campaign_name(""));
  EXPECT_FALSE(valid_campaign_name(".hidden"));
  EXPECT_FALSE(valid_campaign_name("../escape"));
  EXPECT_FALSE(valid_campaign_name("a/b"));
  EXPECT_FALSE(valid_campaign_name("sp ace"));
  EXPECT_FALSE(valid_campaign_name(std::string(129, 'x')));
  EXPECT_TRUE(valid_campaign_name(std::string(128, 'x')));
}

TEST(ServiceProtocol, RejectsInvalidCampaignNamesOnTheWire) {
  EXPECT_THROW(
      (void)parse_request("{\"verb\":\"cancel\",\"campaign\":\"a/b\"}"),
      CheckError);
  EXPECT_THROW(
      (void)parse_request("{\"verb\":\"status\",\"campaign\":\".dot\"}"),
      CheckError);
}

TEST(ServiceProtocol, SubmitNeedsASpecAndOnlySubmitMayCarryOne) {
  EXPECT_THROW(
      (void)parse_request("{\"verb\":\"submit\",\"campaign\":\"x\"}"),
      CheckError);
  EXPECT_THROW((void)parse_request("{\"verb\":\"cancel\",\"campaign\":\"x\","
                                   "\"spec\":\"name = tiny\"}"),
               CheckError);
}

TEST(ServiceProtocol, RejectsMalformedPayloads) {
  EXPECT_THROW((void)parse_request(""), CheckError);
  EXPECT_THROW((void)parse_request("not json"), CheckError);
  EXPECT_THROW((void)parse_request("{\"campaign\":\"x\"}"), CheckError);
  EXPECT_THROW((void)parse_request("{\"verb\":\"status\""), CheckError);
  EXPECT_THROW(
      (void)parse_request("{\"verb\":\"status\",\"bogus\":1}"),
      CheckError);
  EXPECT_THROW((void)parse_request("{\"verb\":42}"), CheckError);
}

/// Every response payload must lead with its "type" field — fnrc and the
/// CI scripts dispatch on it without a full parse.
std::string leading_type(const std::string& payload) {
  JsonCursor cursor(payload, "response");
  cursor.expect('{');
  const std::string field = cursor.parse_string();
  EXPECT_EQ(field, "type") << payload;
  cursor.expect(':');
  return cursor.parse_string();
}

TEST(ServiceProtocol, ResponsesLeadWithTheirType) {
  EXPECT_EQ(leading_type(error_response("boom")), "error");
  EXPECT_EQ(leading_type(submitted_response("c", 7)), "submitted");
  EXPECT_EQ(leading_type(status_response("c", "running", 2, 7)), "status");
  EXPECT_EQ(leading_type(cell_response("c", "k", true, "{\"n\":1}", "")),
            "cell");
  EXPECT_EQ(leading_type(end_response("c", "done")), "end");
  EXPECT_EQ(leading_type(report_response("c", "{\"cells\":[]}")), "report");
  EXPECT_EQ(leading_type(cancelled_response("c")), "cancelled");
  EXPECT_EQ(leading_type(resumed_response("c")), "resumed");
}

TEST(ServiceProtocol, CellResponseEmbedsAggregateBytesVerbatim) {
  const std::string agg = "{\"trials\":4,\"success_rate\":0.5}";
  const std::string payload = cell_response("c", "whiteboard|ring", true,
                                            agg, "");
  EXPECT_NE(payload.find(agg), std::string::npos);
  // A failed cell carries the escaped error instead of aggregate bytes.
  const std::string failed =
      cell_response("c", "whiteboard|ring", false, "", "bad\nthing");
  EXPECT_NE(failed.find("bad\\nthing"), std::string::npos);
}

TEST(ServiceProtocol, ReportResponseEmbedsReportVerbatim) {
  const std::string report = "{\"schema\":\"fnr-sweep/1\",\"cells\":[]}";
  const std::string payload = report_response("c", report);
  EXPECT_NE(payload.find(report), std::string::npos);
}

TEST(ServiceProtocol, ErrorMessagesAreEscapedOnTheWire) {
  const std::string payload = error_response("quote \" newline \n");
  EXPECT_EQ(leading_type(payload), "error");
  EXPECT_NE(payload.find("quote \\\" newline \\n"), std::string::npos);
  // The payload must itself parse as JSON.
  JsonCursor cursor(payload, "error response");
  cursor.expect('{');
  (void)cursor.parse_string();
  cursor.expect(':');
  (void)cursor.parse_string();
}

}  // namespace
}  // namespace fnr::service
