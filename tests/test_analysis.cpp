// Unit tests for graph analysis: BFS, distances, neighborhood intersections,
// and the (z, α, β)-dense condition checker of Definition 3.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace fnr::graph {
namespace {

TEST(Bfs, DistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (std::uint32_t v = 0; v < 5; ++v) EXPECT_EQ(dist[v], v);
}

TEST(Bfs, UnreachableIsMarked) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build_identity_ids();
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[1], 1u);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Distance, MatchesBfs) {
  const Graph g = make_ring(10);
  EXPECT_EQ(distance(g, 0, 0), 0u);
  EXPECT_EQ(distance(g, 0, 1), 1u);
  EXPECT_EQ(distance(g, 0, 5), 5u);
  EXPECT_EQ(distance(g, 0, 7), 3u);
}

TEST(Intersection, CompleteGraphClosedNeighborhoods) {
  const Graph g = make_complete(6);
  // N+(u) = V for all u, so any intersection is n.
  EXPECT_EQ(closed_neighborhood_intersection(g, 0, 3), 6u);
  EXPECT_EQ(closed_neighborhood_intersection(g, 2, 2), 6u);
}

TEST(Intersection, PathEndpoints) {
  const Graph g = make_path(4);  // 0-1-2-3
  // N+(0) = {0,1}, N+(3) = {2,3}: disjoint.
  EXPECT_EQ(closed_neighborhood_intersection(g, 0, 3), 0u);
  // N+(0) = {0,1}, N+(1) = {0,1,2}: both 0 and 1 shared.
  EXPECT_EQ(closed_neighborhood_intersection(g, 0, 1), 2u);
  // N+(1) ∩ N+(2) = {0,1,2} ∩ {1,2,3} = {1,2}.
  EXPECT_EQ(closed_neighborhood_intersection(g, 1, 2), 2u);
}

TEST(Intersection, StarCenterVsLeaf) {
  const Graph g = make_star(5);
  // N+(0) = everything; N+(leaf) = {leaf, 0}.
  EXPECT_EQ(closed_neighborhood_intersection(g, 0, 1), 2u);
  // Two leaves share only the center.
  EXPECT_EQ(closed_neighborhood_intersection(g, 1, 2), 1u);
}

TEST(DenseSet, WholeVertexSetOnCompleteGraph) {
  const Graph g = make_complete(8);
  std::vector<VertexIndex> all;
  for (VertexIndex v = 0; v < 8; ++v) all.push_back(v);
  // Every u has |T ∩ N+(u)| = 8 >= alpha for alpha <= 8.
  EXPECT_TRUE(is_dense_set(g, 0, all, 8.0, 2));
  EXPECT_FALSE(is_dense_set(g, 0, all, 8.5, 2));
}

TEST(DenseSet, RequiresStartMembership) {
  const Graph g = make_complete(4);
  EXPECT_FALSE(is_dense_set(g, 0, {1, 2, 3}, 1.0, 2));
}

TEST(DenseSet, RequiresRadius) {
  const Graph g = make_path(6);
  // T containing a vertex at distance 3 violates beta = 2.
  EXPECT_FALSE(is_dense_set(g, 0, {0, 1, 2, 3}, 1.0, 2));
}

TEST(DenseSet, RequiresHeavyNeighborhood) {
  const Graph g = make_star(4);  // center 0
  // T = {0}: leaf 1 has |T ∩ N+(1)| = |{0}| = 1 >= 1, so alpha=1 works...
  EXPECT_TRUE(is_dense_set(g, 0, {0}, 1.0, 2));
  // ...but alpha=2 fails because leaves see only the center in T.
  EXPECT_FALSE(is_dense_set(g, 0, {0}, 2.0, 2));
}

TEST(ValidateStructure, AcceptsGeneratedGraphs) {
  EXPECT_TRUE(validate_structure(make_complete(5)));
  EXPECT_TRUE(validate_structure(make_ring(5)));
  EXPECT_TRUE(validate_structure(make_grid(4, 4)));
}

}  // namespace
}  // namespace fnr::graph
