// Property-based randomized tests for every graph generator, old and new.
//
// Each family's header comment makes promises — connectivity, δ/Δ bounds,
// regularity, geometric edge semantics. This suite sweeps every generator
// over many seeds and checks those promises plus the invariants every Graph
// must satisfy: sorted-CSR adjacency, consistent port numbering (ˆP_v and
// ˆP_v^{-1} are inverses), degree aggregates, uniform edge-slot decoding,
// and ID-space distinctness under every naming regime.
#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <unordered_set>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/id_space.hpp"
#include "test_support.hpp"

namespace fnr::graph {
namespace {

constexpr std::uint64_t kSeeds = 10;

/// The invariants every Graph must satisfy, regardless of family.
void expect_well_formed(const Graph& g) {
  ASSERT_TRUE(validate_structure(g));

  std::size_t min_degree = std::numeric_limits<std::size_t>::max();
  std::size_t max_degree = 0;
  std::uint64_t degree_sum = 0;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const std::size_t degree = g.degree(v);
    min_degree = std::min(min_degree, degree);
    max_degree = std::max(max_degree, degree);
    degree_sum += degree;
    // Port numbering: neighbors ascend by index, and the inverse port map
    // agrees with the forward one on every port.
    const auto nbrs = g.neighbors(v);
    for (std::size_t port = 0; port < nbrs.size(); ++port) {
      if (port > 0) EXPECT_LT(nbrs[port - 1], nbrs[port]);
      EXPECT_EQ(g.neighbor_at_port(v, port), nbrs[port]);
      EXPECT_EQ(g.port_to(v, nbrs[port]), port);
      EXPECT_TRUE(g.has_edge(v, nbrs[port]));
      EXPECT_TRUE(g.has_edge(nbrs[port], v));
    }
  }
  EXPECT_EQ(min_degree, g.min_degree());
  EXPECT_EQ(max_degree, g.max_degree());
  EXPECT_EQ(degree_sum, 2 * g.num_edges());

  // Every adjacency slot decodes to a unique directed edge.
  std::set<std::pair<VertexIndex, VertexIndex>> slots;
  for (std::uint64_t slot = 0; slot < 2 * g.num_edges(); ++slot) {
    const auto [u, v] = g.edge_at_slot(slot);
    EXPECT_TRUE(g.has_edge(u, v));
    EXPECT_TRUE(slots.insert({u, v}).second) << "slot " << slot << " repeats";
  }

  // ID space: distinct, bounded, and invertible.
  std::unordered_set<VertexId> ids;
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const VertexId id = g.id_of(v);
    EXPECT_LT(id, g.id_bound());
    EXPECT_TRUE(ids.insert(id).second) << "duplicate ID " << id;
    EXPECT_EQ(g.index_of(id), v);
  }
  EXPECT_EQ(ids.size(), g.num_vertices());
}

void expect_regular(const Graph& g, std::size_t degree) {
  EXPECT_EQ(g.min_degree(), degree);
  EXPECT_EQ(g.max_degree(), degree);
}

TEST(GeneratorProperties, ElementaryFamilies) {
  for (const std::size_t n : {std::size_t{2}, std::size_t{3}, std::size_t{7}, std::size_t{33}}) {
    if (n >= 2) {
      const auto g = make_complete(n);
      expect_well_formed(g);
      expect_regular(g, n - 1);
      EXPECT_TRUE(is_connected(g));
    }
    if (n >= 3) {
      const auto g = make_ring(n);
      expect_well_formed(g);
      expect_regular(g, 2);
      EXPECT_TRUE(is_connected(g));
      EXPECT_EQ(g.num_edges(), n);
    }
    {
      const auto g = make_path(n);
      expect_well_formed(g);
      EXPECT_EQ(g.min_degree(), 1u);
      EXPECT_LE(g.max_degree(), 2u);
      EXPECT_TRUE(is_connected(g));
      EXPECT_EQ(g.num_edges(), n - 1);
    }
    {
      const auto g = make_star(n);
      expect_well_formed(g);
      EXPECT_EQ(g.min_degree(), 1u);
      EXPECT_EQ(g.max_degree(), n);  // the center
      EXPECT_TRUE(is_connected(g));
    }
  }
  const auto grid = make_grid(5, 7);
  expect_well_formed(grid);
  EXPECT_TRUE(is_connected(grid));
  EXPECT_EQ(grid.min_degree(), 2u);  // corners
  EXPECT_EQ(grid.max_degree(), 4u);  // interior
}

TEST(GeneratorProperties, ErdosRenyi) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 2);
    const auto g = make_erdos_renyi(80, 0.08, rng);
    expect_well_formed(g);  // no connectivity promise below the threshold
  }
  Rng rng(1, 2);
  const auto dense = make_erdos_renyi(20, 1.0, rng);
  expect_regular(dense, 19);  // p = 1 is K_n
}

TEST(GeneratorProperties, NearRegularMinDegreePromise) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 3);
    const std::size_t out_degree = 2 + seed % 7;
    const auto g = make_near_regular(100, out_degree, rng);
    expect_well_formed(g);
    EXPECT_GE(g.min_degree(), out_degree);
  }
}

TEST(GeneratorProperties, HubAugmentedDegreeSplit) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 4);
    const std::size_t base = 3 + seed % 5;
    const std::size_t hubs = 1 + seed % 3;
    const auto g = make_hub_augmented(90, base, hubs, rng);
    expect_well_formed(g);
    EXPECT_TRUE(is_connected(g));  // hubs touch everything
    EXPECT_EQ(g.max_degree(), 89u);
    EXPECT_GE(g.min_degree(), base + hubs);
  }
}

TEST(GeneratorProperties, TorusIsFourRegularAndConnected) {
  for (const auto [rows, cols] :
       {std::pair<std::size_t, std::size_t>{3, 3}, {3, 8}, {5, 5}, {6, 11}}) {
    const auto g = make_torus(rows, cols);
    expect_well_formed(g);
    expect_regular(g, 4);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_vertices(), rows * cols);
    EXPECT_EQ(g.num_edges(), 2 * rows * cols);
  }
  EXPECT_THROW((void)make_torus(2, 5), CheckError);
}

TEST(GeneratorProperties, HypercubeIsDimRegularAndConnected) {
  for (const std::size_t dim : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{7}}) {
    const auto g = make_hypercube(dim);
    expect_well_formed(g);
    expect_regular(g, dim);
    EXPECT_TRUE(is_connected(g));
    EXPECT_EQ(g.num_vertices(), std::size_t{1} << dim);
    EXPECT_EQ(2 * g.num_edges(), dim * (std::size_t{1} << dim));
  }
}

TEST(GeneratorProperties, BarabasiAlbertPromises) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 5);
    const std::size_t m = 1 + seed % 5;
    const auto g = make_barabasi_albert(120, m, rng);
    expect_well_formed(g);
    EXPECT_TRUE(is_connected(g));
    EXPECT_GE(g.min_degree(), m);
    // Seed clique + m edges per later vertex, all distinct (simple graph).
    EXPECT_EQ(g.num_edges(), m * (m + 1) / 2 + (120 - m - 1) * m);
  }
}

TEST(GeneratorProperties, WattsStrogatzPromises) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 6);
    const std::size_t k = 2 + seed % 3;
    const auto g = make_watts_strogatz(100, k, 0.3, rng);
    expect_well_formed(g);
    EXPECT_TRUE(is_connected(g));  // the base cycle is never rewired
    EXPECT_GE(g.min_degree(), 2u);
    EXPECT_EQ(g.num_edges(), 100 * k);  // rewiring preserves the edge count
  }
  // beta = 0 is the exact ring lattice.
  Rng rng(3, 6);
  const auto lattice = make_watts_strogatz(40, 4, 0.0, rng);
  expect_well_formed(lattice);
  expect_regular(lattice, 8);
}

TEST(GeneratorProperties, RandomGeometricEdgeSemantics) {
  const double radius = 0.18;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 7);
    const auto [g, points] = make_random_geometric(70, radius, rng);
    expect_well_formed(g);
    ASSERT_EQ(points.size(), g.num_vertices());
    // Edge if and only if the points are within the radius.
    for (VertexIndex u = 0; u < g.num_vertices(); ++u)
      for (VertexIndex v = u + 1; v < g.num_vertices(); ++v) {
        const double dx = points[u][0] - points[v][0];
        const double dy = points[u][1] - points[v][1];
        const bool close = dx * dx + dy * dy <= radius * radius;
        EXPECT_EQ(g.has_edge(u, v), close)
            << "pair (" << u << ", " << v << ") at seed " << seed;
      }
  }
}

TEST(GeneratorProperties, RandomGeometricConnectedPatches) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 8);
    // Radius far below the connectivity threshold: patching must do real
    // work, and the result must still contain every radius edge.
    const auto connected = make_random_geometric_connected(60, 0.08, rng);
    expect_well_formed(connected.graph);
    EXPECT_TRUE(is_connected(connected.graph));
    Rng replay(seed, 8);
    const auto base = make_random_geometric(60, 0.08, replay);
    ASSERT_EQ(base.points, connected.points);  // same point draw
    EXPECT_GE(connected.graph.num_edges(), base.graph.num_edges());
    for (VertexIndex u = 0; u < base.graph.num_vertices(); ++u)
      for (const VertexIndex v : base.graph.neighbors(u))
        EXPECT_TRUE(connected.graph.has_edge(u, v));
  }
}

TEST(GeneratorProperties, LowerBoundFamilies) {
  for (const std::size_t size : {std::size_t{3}, std::size_t{5}, std::size_t{9}}) {
    const auto ds = make_double_star(size);
    expect_well_formed(ds.graph);
    EXPECT_TRUE(is_connected(ds.graph));
    EXPECT_EQ(ds.graph.min_degree(), 1u);
    EXPECT_EQ(ds.graph.max_degree(), size + 1);
    EXPECT_TRUE(ds.graph.has_edge(ds.center_a, ds.center_b));

    const auto dsc = make_double_star_cliques(size, 4);
    expect_well_formed(dsc.graph);
    EXPECT_TRUE(is_connected(dsc.graph));
    EXPECT_EQ(dsc.graph.min_degree(), 3u);  // clique_size - 1
    EXPECT_EQ(dsc.graph.max_degree(), size + 1);

    const auto bc = make_bridged_cliques(size + 2);
    expect_well_formed(bc.graph);
    EXPECT_TRUE(is_connected(bc.graph));
    expect_regular(bc.graph, size + 1);  // half - 1
    EXPECT_TRUE(bc.graph.has_edge(bc.a_start, bc.b_start));
    EXPECT_TRUE(bc.graph.has_edge(bc.x1, bc.x2));
    EXPECT_FALSE(bc.graph.has_edge(bc.a_start, bc.x1));

    const auto svc = make_shared_vertex_cliques(size + 2);
    expect_well_formed(svc.graph);
    EXPECT_TRUE(is_connected(svc.graph));
    EXPECT_EQ(svc.graph.max_degree(), 2 * (size + 1));  // the shared vertex
    EXPECT_EQ(graph::distance(svc.graph, svc.a_start, svc.b_start), 2u);
  }
}

TEST(GeneratorProperties, NamingRegimesKeepIdsDistinct) {
  Rng graph_rng(5, 9);
  const auto base = make_near_regular(64, 6, graph_rng);
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    Rng rng(seed, 10);
    for (const auto& ids :
         {identity_ids(64), shuffled_ids(64, rng), tight_ids(64, 1.7, rng),
          sparse_ids(64, 1.8, rng)}) {
      const auto g = with_ids(base, ids);
      expect_well_formed(g);  // includes distinctness + invertibility
      EXPECT_EQ(g.num_edges(), base.num_edges());
    }
    Rng perm_rng(seed, 12);
    const auto permuted = permute_indices(base, perm_rng);
    expect_well_formed(permuted.graph);
    EXPECT_EQ(permuted.graph.num_edges(), base.num_edges());
    // The mapping is a bijection preserving degrees.
    std::vector<bool> hit(base.num_vertices(), false);
    for (VertexIndex v = 0; v < base.num_vertices(); ++v) {
      const VertexIndex image = permuted.mapping[v];
      ASSERT_LT(image, base.num_vertices());
      EXPECT_FALSE(hit[image]);
      hit[image] = true;
      EXPECT_EQ(permuted.graph.degree(image), base.degree(v));
    }
  }
}

}  // namespace
}  // namespace fnr::graph
