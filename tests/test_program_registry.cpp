// The program registry: label stability, capability masks, parameter
// suffixes, open registration, and the invariants the sweep grid expander
// and the perf suite hang on — every registered program must be runnable
// on some compatible scenario, and expansion must never emit a cell the
// capability masks forbid.
#include "scenario/program_registry.hpp"

#include <set>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "scenario/run.hpp"
#include "sweep/spec.hpp"
#include "test_support.hpp"

namespace fnr {
namespace {

TEST(ProgramRegistry, BuiltinLabelsAreUniqueAndStable) {
  // Labels name cells in sweep checkpoints and BENCH_perf.json; the first
  // eight and their order are a compatibility contract, not a preference.
  const std::vector<std::string> expected = {
      "whiteboard",     "whiteboard+doubling", "no-whiteboard",
      "random-walk",    "explore-rally",       "anderson-weber",
      "wait-and-explore", "wait-and-sweep"};
  const auto& defs = scenario::all_program_defs();
  ASSERT_GE(defs.size(), expected.size());
  std::set<std::string> labels;
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(defs[i].label, expected[i]);
  for (const auto& def : defs) {
    EXPECT_TRUE(labels.insert(def.label).second)
        << "duplicate label " << def.label;
    EXPECT_NO_THROW(def.validate());
    EXPECT_FALSE(def.description.empty());
    EXPECT_FALSE(def.caps.describe().empty());
    EXPECT_TRUE(scenario::has_program(def.label));
  }
  EXPECT_FALSE(scenario::has_program("no-such-program"));
}

TEST(ProgramRegistry, FindProgramResolvesAndEnumeratesOnError) {
  const auto program = scenario::find_program("whiteboard");
  EXPECT_TRUE(program.valid());
  EXPECT_EQ(scenario::to_string(program), "whiteboard");
  EXPECT_EQ(program.def().label, "whiteboard");
  try {
    (void)scenario::find_program("quantum-walk");
    FAIL() << "unknown label must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("quantum-walk"), std::string::npos);
    // The message enumerates the valid label set.
    EXPECT_NE(what.find("whiteboard"), std::string::npos);
    EXPECT_NE(what.find("wait-and-sweep"), std::string::npos);
  }
  EXPECT_THROW((void)scenario::Program().def(), CheckError);
}

TEST(ProgramRegistry, ParameterSuffixesParseValidateAndCanonicalize) {
  const auto lazy = scenario::find_program("random-walk?laziness=0.25");
  EXPECT_EQ(lazy.label(), "random-walk?laziness=0.25");
  EXPECT_DOUBLE_EQ(lazy.param("laziness"), 0.25);
  // Defaults apply when no override is given.
  EXPECT_DOUBLE_EQ(scenario::find_program("random-walk").param("laziness"),
                   0.5);
  // The canonical label is a cell identity: resolving it back must yield
  // the exact same program, including awkward override values.
  const auto precise = scenario::find_program("random-walk?laziness=0.1234567");
  EXPECT_DOUBLE_EQ(precise.param("laziness"), 0.1234567);
  EXPECT_TRUE(scenario::find_program(precise.label()) == precise)
      << precise.label();
  // Unknown parameter names are rejected, naming the declared set.
  try {
    (void)scenario::find_program("random-walk?bogus=1");
    FAIL() << "unknown parameter must throw";
  } catch (const CheckError& error) {
    EXPECT_NE(std::string(error.what()).find("laziness"), std::string::npos);
  }
  // Programs without parameters reject every override.
  EXPECT_THROW((void)scenario::find_program("whiteboard?delta=3"),
               CheckError);
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness"),
               CheckError);  // not key=value
  EXPECT_THROW((void)scenario::find_program(
                   "random-walk?laziness=0.1&laziness=0.2"),
               CheckError);  // repeated
}

TEST(ProgramRegistry, MalformedSuffixShapesAreRejectedNotTruncated) {
  // Each of these used to slip through as a silently-ignored fragment or a
  // degenerate label; now the shape itself is rejected.
  EXPECT_THROW((void)scenario::find_program("random-walk?"), CheckError);
  try {
    (void)scenario::find_program("?laziness=0.5");
    FAIL() << "empty label before '?' must throw";
  } catch (const CheckError& error) {
    // The message enumerates the registry, like the unknown-label path.
    EXPECT_NE(std::string(error.what()).find("random-walk"),
              std::string::npos);
  }
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness="),
               CheckError);  // empty value
  EXPECT_THROW((void)scenario::find_program("random-walk?=0.5"),
               CheckError);  // empty key
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness=0.5&"),
               CheckError);  // stray '&'
  EXPECT_THROW((void)scenario::find_program("random-walk?&laziness=0.5"),
               CheckError);
}

TEST(ProgramRegistry, NonFiniteParameterValuesAreRejected) {
  // NaN/inf would poison every downstream threshold computation and,
  // worse, produce a canonical label that no longer round-trips; the
  // override parser rejects them explicitly.
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness=nan"),
               CheckError);
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness=inf"),
               CheckError);
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness=-inf"),
               CheckError);
  EXPECT_THROW((void)scenario::find_program("random-walk?laziness=1e999"),
               CheckError);  // overflows to inf
}

TEST(ProgramRegistry, ParameterOverridesReachTheAgents) {
  // Same seeds, different laziness: the walks must diverge (deterministic
  // given the fixed seeds, so this cannot flake).
  const auto g = graph::make_ring(32);
  const auto& sync = scenario::find_scenario("sync-pair");
  const runner::TrialRunner runner(runner::RunnerOptions{1});
  scenario::ScenarioOptions options;
  options.seed = 9;
  const auto sluggish =
      scenario::run_scenario_trials(sync,
                                    scenario::find_program(
                                        "random-walk?laziness=0.9"),
                                    g, options, 8, runner)
          .aggregate();
  const auto brisk =
      scenario::run_scenario_trials(sync,
                                    scenario::find_program(
                                        "random-walk?laziness=0.1"),
                                    g, options, 8, runner)
          .aggregate();
  EXPECT_NE(sluggish.rounds.mean, brisk.rounds.mean);
}

TEST(ProgramRegistry, EveryProgramRunsOnACompatibleSmokeScenario) {
  // The registration contract behind the CI registry smoke: for every
  // program there is a compatible built-in scenario, and one tiny trial
  // batch on a suitable graph completes without throwing.
  Rng rng(3, 911);
  const auto sparse = graph::make_near_regular(16, 6, rng);
  const auto complete = graph::make_complete(16);
  const runner::TrialRunner runner(runner::RunnerOptions{1});
  for (const auto& program : scenario::all_programs()) {
    const graph::Graph& g =
        scenario::runnable_on(program.def(), sparse) ? sparse : complete;
    ASSERT_TRUE(scenario::runnable_on(program.def(), g)) << program.label();
    const scenario::Scenario* smoke = nullptr;
    for (const auto& s : scenario::all_scenarios())
      if (scenario::compatible(program, s)) {
        smoke = &s;
        break;
      }
    ASSERT_NE(smoke, nullptr)
        << program.label() << " is compatible with no built-in scenario";
    scenario::ScenarioOptions options;
    options.seed = 5;
    EXPECT_NO_THROW({
      const auto agg = scenario::run_scenario_trials(*smoke, program, g,
                                                     options, 2, runner)
                           .aggregate();
      EXPECT_EQ(agg.trials, 2u);
    }) << program.label() << " on " << smoke->name;
  }
}

TEST(ProgramRegistry, HardRequirementsAreEnforcedByRunScenario) {
  // anderson-weber off a complete graph / no-whiteboard without tight
  // naming must throw a CheckError, not crash mid-run.
  Rng rng(3, 911);
  const auto sparse = graph::make_near_regular(16, 6, rng);
  const auto& sync = scenario::find_scenario("sync-pair");
  Rng instance_rng(1, 11);
  const auto placement = scenario::draw_instance(sync, sparse, instance_rng);
  scenario::ScenarioOptions options;
  EXPECT_THROW((void)scenario::run_scenario(
                   sync, scenario::find_program("anderson-weber"), sparse,
                   placement, options),
               CheckError);
  EXPECT_FALSE(scenario::runnable_on(
      scenario::find_program("anderson-weber").def(), sparse));
  EXPECT_TRUE(scenario::runnable_on(
      scenario::find_program("anderson-weber").def(),
      graph::make_complete(8)));
}

TEST(ProgramRegistry, CapabilityMasksGateScenarioShapes) {
  const auto whiteboard = scenario::find_program("whiteboard");
  const auto rally = scenario::find_program("explore-rally");
  const auto walk = scenario::find_program("random-walk");
  EXPECT_TRUE(scenario::compatible(whiteboard,
                                   scenario::find_scenario("sync-pair")));
  EXPECT_TRUE(scenario::compatible(
      whiteboard, scenario::find_scenario("trio-neighborhood")));
  // Dropped-anywhere placements are no measurement for neighborhood
  // strategies; all-meet gathering needs the coordinated rally.
  EXPECT_FALSE(scenario::compatible(
      whiteboard, scenario::find_scenario("pair-anywhere")));
  EXPECT_FALSE(scenario::compatible(whiteboard,
                                    scenario::find_scenario("swarm-gather")));
  EXPECT_FALSE(scenario::compatible(walk,
                                    scenario::find_scenario("swarm-gather")));
  EXPECT_TRUE(scenario::compatible(rally,
                                   scenario::find_scenario("swarm-gather")));
  EXPECT_TRUE(scenario::compatible(rally,
                                   scenario::find_scenario("pair-anywhere")));
}

TEST(ProgramRegistry, GridExpanderHonorsCapabilityMasks) {
  const auto spec = sweep::parse_spec(
      "name       = caps\n"
      "trials     = 1\n"
      "programs   = *\n"
      "scenarios  = *\n"
      "topologies = near-regular:deg=6, complete\n"
      "sizes      = 16\n"
      "seeds      = 1\n");
  const auto grid = sweep::expand(spec);
  ASSERT_FALSE(grid.empty());
  std::set<std::pair<std::string, std::string>> pairs;
  for (const auto& cell : grid) {
    // Every emitted cell passes the mask it was filtered by.
    EXPECT_TRUE(scenario::compatible(
        cell.program, scenario::find_scenario(cell.scenario)))
        << cell.key();
    if (cell.program.def().caps.needs_complete_graph)
      EXPECT_EQ(cell.topology.family, "complete") << cell.key();
    pairs.insert({cell.program.label(), cell.scenario});
  }
  // Spot checks: the rally covers all-meet, the paper's strategy does not,
  // and anderson-weber appears only via the complete family.
  EXPECT_TRUE(pairs.contains({"explore-rally", "swarm-gather"}));
  EXPECT_FALSE(pairs.contains({"whiteboard", "swarm-gather"}));
  EXPECT_FALSE(pairs.contains({"whiteboard", "pair-anywhere"}));
  EXPECT_TRUE(pairs.contains({"anderson-weber", "sync-pair"}));
  // A spec whose only pairing is masked off must fail loudly, not expand
  // to an empty grid.
  EXPECT_THROW((void)sweep::expand(sweep::parse_spec(
                   "name = empty\ntrials = 1\nprograms = whiteboard\n"
                   "scenarios = swarm-gather\ntopologies = ring\n"
                   "sizes = 16\nseeds = 1\n")),
               CheckError);
}

TEST(ProgramRegistry, RegistrationIsOpenAndValidated) {
  // The tentpole's point: a new strategy is one registration, after which
  // every consumer (trials, grids, listings) can run it by label.
  if (!scenario::has_program("test-sitter")) {
    scenario::ProgramDef def;
    def.label = "test-sitter";
    def.description = "registered by the test suite: every agent stays put";
    def.paper_ref = "test";
    def.caps.supports_multi_agent = true;
    def.symmetric = [](scenario::AgentBuild&)
        -> std::unique_ptr<sim::Agent> {
      class Sitter final : public sim::Agent {
        sim::Action step(const sim::View&) override {
          return sim::Action::stay();
        }
      };
      return std::make_unique<Sitter>();
    };
    def.round_cap = [](const graph::Graph&, const core::Params&) {
      return std::uint64_t{64};
    };
    scenario::register_program(def);
  }
  EXPECT_TRUE(scenario::has_program("test-sitter"));
  EXPECT_THROW(scenario::register_program(
                   scenario::find_program("test-sitter").def()),
               CheckError);  // duplicate label

  const auto program = scenario::find_program("test-sitter");
  const auto g = graph::make_ring(16);
  const runner::TrialRunner runner(runner::RunnerOptions{1});
  scenario::ScenarioOptions options;
  options.seed = 2;
  const auto agg = scenario::run_scenario_trials(
                       scenario::find_scenario("sync-pair"), program, g,
                       options, 3, runner)
                       .aggregate();
  EXPECT_EQ(agg.trials, 3u);
  EXPECT_EQ(agg.successes, 0u);  // sitters at distinct starts never meet

  // Malformed registrations are rejected.
  scenario::ProgramDef bad;
  bad.label = "test bad label";
  bad.description = "spaces are not allowed";
  bad.symmetric = [](scenario::AgentBuild&) -> std::unique_ptr<sim::Agent> {
    return nullptr;
  };
  bad.round_cap = [](const graph::Graph&, const core::Params&) {
    return std::uint64_t{1};
  };
  EXPECT_THROW(scenario::register_program(bad), CheckError);
  bad.label = "test-bad";
  bad.round_cap = nullptr;
  EXPECT_THROW(scenario::register_program(bad), CheckError);
}

TEST(ProgramRegistry, TrialsStayBitIdenticalAcrossThreadCounts) {
  // The registry path must preserve the runner's determinism contract for
  // the baselines it newly exposes.
  Rng rng(17, 911);
  const auto g = graph::make_near_regular(64, 8, rng);
  const auto& delayed = scenario::find_scenario("delayed-pair");
  for (const auto& label : {"wait-and-explore", "wait-and-sweep"}) {
    const auto program = scenario::find_program(label);
    scenario::ScenarioOptions options;
    options.seed = 77;
    runner::TrialAggregate reference;
    bool first = true;
    for (const unsigned threads : {1u, 4u}) {
      const runner::TrialRunner runner(runner::RunnerOptions{threads});
      const auto agg = scenario::run_scenario_trials(delayed, program, g,
                                                     options, 16, runner)
                           .aggregate();
      if (first) {
        reference = agg;
        first = false;
      } else {
        EXPECT_TRUE(test::bits_equal(reference, agg))
            << label << " differs at " << threads << " threads";
      }
    }
  }
}

}  // namespace
}  // namespace fnr
