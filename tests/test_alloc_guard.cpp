// Allocation-count guard for the scheduler hot path.
//
// The whole binary's global operator new/delete are replaced with counting
// versions; tests snapshot the counter around a scheduler run and assert
// the arena invariants of docs/PERFORMANCE.md:
//   1. Scheduler::run (the k=2 fast path) performs ZERO heap allocations
//      once the arena is warm.
//   2. run_scenario's per-ROUND loop is allocation-free: a 64x-longer run
//      allocates exactly as much as a short one (only the per-run result).
// Plus bit-exactness regressions for arena reuse (a reused scheduler must
// reproduce a fresh scheduler's run exactly, including after a k-downsize).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "fault/fault.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fnr {
namespace {

/// Heap-free agent that exercises every hot-path observation: whiteboard
/// read + periodic write, neighbor-ID cache, arrival port, and movement.
class ProbeAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View& view) override {
    if (view.has_whiteboards()) (void)view.whiteboard();
    if (view.has_neighborhood_ids()) (void)view.neighbor_ids();
    (void)view.arrival_port();
    sim::Action action = sim::Action::move(view.round() % view.degree());
    if (view.has_whiteboards() && (view.round() & 7) == 0)
      action.whiteboard_write = view.here();
    return action;
  }
  [[nodiscard]] std::size_t memory_words() const override { return 2; }
};

/// Heap-free agent that stays put and writes its board every round; with
/// distinct starts a team of these never gathers, which pins the round
/// count of a scenario run to its cap exactly.
class CampingScribe final : public sim::Agent {
 public:
  sim::Action step(const sim::View& view) override {
    if (view.has_neighborhood_ids()) (void)view.neighbor_ids();
    sim::Action action = sim::Action::stay();
    if (view.has_whiteboards()) action.whiteboard_write = view.round();
    return action;
  }
};

graph::Graph guard_graph() {
  Rng rng(5, 17);
  return graph::make_near_regular(64, 8, rng);
}

TEST(AllocGuard, PairFastPathAllocatesNothingAfterWarmup) {
  const auto g = guard_graph();
  sim::Scheduler scheduler(g, sim::Model::full());

  {
    ProbeAgent a, b;
    const auto cold = allocation_count();
    (void)scheduler.run(a, b, {0, 1}, 512);  // warm-up fills the arena
    // Self-check that the counting operator new is actually linked in:
    // the cold run must allocate (arena growth, cache reservations).
    ASSERT_GT(allocation_count(), cold);
  }

  ProbeAgent a, b;  // constructed before the counted region
  const auto before = allocation_count();
  const auto result = scheduler.run(a, b, {0, 1}, 512);
  const auto after = allocation_count();

  EXPECT_EQ(after - before, 0u)
      << "Scheduler::run heap-allocated on a warm arena";
  EXPECT_GT(result.metrics.rounds, 0u);
  EXPECT_GT(result.metrics.whiteboard_reads, 0u);
}

TEST(AllocGuard, ScenarioRoundLoopIsAllocationFree) {
  const auto g = guard_graph();
  sim::Scheduler scheduler(g, sim::Model::full());

  sim::ScenarioPlacement placement;
  placement.starts = {0, 7, 21};

  const auto count_run = [&](std::uint64_t cap) {
    CampingScribe agents[3];
    const std::vector<sim::Agent*> team = {&agents[0], &agents[1],
                                           &agents[2]};
    const auto before = allocation_count();
    const auto result =
        scheduler.run_scenario(team, placement, sim::Gathering::AnyPair, cap);
    const auto after = allocation_count();
    EXPECT_FALSE(result.met);  // campers never co-locate
    EXPECT_EQ(result.rounds, cap);
    return after - before;
  };

  (void)count_run(8);  // warm-up
  const auto short_run = count_run(64);
  const auto long_run = count_run(4096);
  // Per-run cost (the result's agent vector) is allowed; per-round cost is
  // not: 64x the rounds must allocate exactly the same number of times.
  EXPECT_EQ(short_run, long_run)
      << "run_scenario's round loop heap-allocates per round";
}

TEST(AllocGuard, FaultLayerLeavesTheDisarmedHotPathAllocationFree) {
  // The fault hooks must be zero-cost when inactive: after a *faulty*
  // scenario dirtied the arena, a scheduler with the session cleared must
  // run the round loop without a single heap allocation — and produce the
  // exact metrics of a scheduler that never saw a fault session at all.
  const auto g = guard_graph();
  sim::Scheduler scheduler(g, sim::Model::full());

  sim::ScenarioPlacement placement;
  placement.starts = {0, 7, 21};
  const auto scribes_run = [&](sim::Scheduler& s, std::uint64_t cap) {
    CampingScribe agents[3];
    const std::vector<sim::Agent*> team = {&agents[0], &agents[1],
                                           &agents[2]};
    return s.run_scenario(team, placement, sim::Gathering::AnyPair, cap);
  };

  // Dirty the arena with an active session (stationary scribes tolerate
  // crashes of nobody: arm only whiteboard faults, which need no reviver).
  auto plan = fault::FaultPlan::parse("wb-drop?rate=0.5+wb-wipe?rate=0.25");
  fault::FaultSession session(plan, Rng(9, 21));
  scheduler.set_fault_session(&session);
  const auto faulty = scribes_run(scheduler, 64);
  scheduler.set_fault_session(nullptr);
  ASSERT_GT(faulty.faults.writes_dropped, 0u);

  (void)scribes_run(scheduler, 8);  // disarmed warm-up
  const auto counted = [&](std::uint64_t cap) {
    CampingScribe agents[3];
    const std::vector<sim::Agent*> team = {&agents[0], &agents[1],
                                           &agents[2]};
    const auto before = allocation_count();
    const auto result =
        scheduler.run_scenario(team, placement, sim::Gathering::AnyPair, cap);
    const auto after = allocation_count();
    EXPECT_FALSE(result.faults.any()) << "session leaked into a later run";
    return after - before;
  };
  EXPECT_EQ(counted(64), counted(4096))
      << "disarmed fault hooks heap-allocate per round";

  // And the disarmed scheduler's runs are indistinguishable from a
  // scheduler that never had a session installed.
  sim::Scheduler untouched(g, sim::Model::full());
  const auto ours = scribes_run(scheduler, 256);
  const auto theirs = scribes_run(untouched, 256);
  EXPECT_EQ(ours.rounds, theirs.rounds);
  EXPECT_EQ(ours.whiteboard_reads, theirs.whiteboard_reads);
  EXPECT_EQ(ours.whiteboard_writes, theirs.whiteboard_writes);
  EXPECT_EQ(ours.whiteboards_used, theirs.whiteboards_used);
  EXPECT_FALSE(ours.faults.any());
}

void expect_same_run(const sim::RunResult& x, const sim::RunResult& y) {
  EXPECT_EQ(x.met, y.met);
  EXPECT_EQ(x.meeting_round, y.meeting_round);
  EXPECT_EQ(x.meeting_vertex, y.meeting_vertex);
  EXPECT_EQ(x.metrics.rounds, y.metrics.rounds);
  EXPECT_EQ(x.metrics.moves, y.metrics.moves);
  EXPECT_EQ(x.metrics.whiteboard_reads, y.metrics.whiteboard_reads);
  EXPECT_EQ(x.metrics.whiteboard_writes, y.metrics.whiteboard_writes);
  EXPECT_EQ(x.metrics.whiteboards_used, y.metrics.whiteboards_used);
}

TEST(SchedulerArena, ReusedArenaIsBitExact) {
  const auto g = guard_graph();
  const auto run_probe = [&](sim::Scheduler& scheduler) {
    ProbeAgent a, b;
    return scheduler.run(a, b, {3, 40}, 777);
  };

  sim::Scheduler fresh(g, sim::Model::full());
  sim::Scheduler reused(g, sim::Model::full());
  const auto expected = run_probe(fresh);
  (void)run_probe(reused);  // dirty the arena and the whiteboards
  expect_same_run(run_probe(reused), expected);
}

TEST(SchedulerArena, DownsizedAgentCountIsBitExact) {
  // A k=3 scenario followed by a k=2 run on the same scheduler must not
  // leak the third agent's stale state into the gathering predicate.
  const auto g = guard_graph();
  sim::Scheduler scheduler(g, sim::Model::full());

  sim::ScenarioPlacement trio;
  trio.starts = {0, 7, 21};
  CampingScribe campers[3];
  (void)scheduler.run_scenario({&campers[0], &campers[1], &campers[2]}, trio,
                               sim::Gathering::AnyPair, 32);

  sim::Scheduler fresh(g, sim::Model::full());
  const auto run_pair = [](sim::Scheduler& scheduler_ref) {
    ProbeAgent a, b;
    return scheduler_ref.run(a, b, {3, 40}, 777);
  };
  expect_same_run(run_pair(scheduler), run_pair(fresh));
}

TEST(SchedulerArena, ScratchRebuildsOnlyOnGraphOrModelChange) {
  const auto g = guard_graph();
  const auto h = guard_graph();
  sim::SchedulerScratch scratch;
  sim::Scheduler& first = scratch.scheduler_for(g, sim::Model::full());
  EXPECT_EQ(&first, &scratch.scheduler_for(g, sim::Model::full()));
  sim::Scheduler& no_wb =
      scratch.scheduler_for(g, sim::Model::no_whiteboards());
  EXPECT_FALSE(no_wb.model().whiteboards);
  sim::Scheduler& other = scratch.scheduler_for(h, sim::Model::full());
  EXPECT_EQ(&other.graph(), &h);
}

}  // namespace
}  // namespace fnr
