// Allocation guard for the batch kernel's round loop.
//
// batch_scheduler.hpp promises that after the staging prologue of run()
// the round loop performs zero heap allocations: all SoA buffers grow to
// the high-water mark and are reused. This binary replaces global
// operator new with a counting shim (per-binary replacement, hence a
// dedicated test executable) and drives the same staged batch at two
// round budgets that differ by 64×. Any per-round allocation in the
// kernel would scale the count with the budget; the guard asserts the
// two counts are identical. The agents used here are allocation-free by
// construction so the measurement isolates the kernel itself.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <deque>
#include <new>
#include <vector>

#include "graph/generators.hpp"
#include "sim/batch_scheduler.hpp"
#include "sim/model.hpp"

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace fnr::sim {
namespace {

/// Bounces forever between its start vertex and its port-0 neighbor:
/// first step takes port 0, every later step returns through the arrival
/// port. No state beyond the base class, no heap use, never gathers with
/// a partner bouncing in a disjoint pair of vertices.
class BounceAgent : public Agent {
 public:
  Action step(const View& view) override {
    if (const auto back = view.arrival_port()) return Action::move(*back);
    return Action::move(0);
  }
  [[nodiscard]] std::size_t memory_words() const override { return 4; }
};

TEST(BatchAllocGuard, RoundLoopAllocationsAreIndependentOfRoundCount) {
  const auto g = graph::make_ring(64);
  BatchScheduler kernel(g, Model::full());
  constexpr std::size_t kTrials = 6;

  const auto allocs_for = [&](std::uint64_t cap) {
    std::deque<BounceAgent> agents(2 * kTrials);  // Agents are non-copyable.
    kernel.begin_batch(Gathering::AnyPair);
    ScenarioPlacement placement;
    placement.starts = {0, 32};  // bounce sets {0,1} and {31,32}: no meet
    placement.wake_delays = {0, 5};
    for (std::size_t t = 0; t < kTrials; ++t) {
      const std::vector<Agent*> pair = {&agents[2 * t], &agents[2 * t + 1]};
      kernel.add_trial(pair, placement, cap);
    }
    const auto before = g_alloc_count.load(std::memory_order_relaxed);
    const auto results = kernel.run();
    const auto after = g_alloc_count.load(std::memory_order_relaxed);
    for (const auto& r : results) {
      EXPECT_FALSE(r.met);
      EXPECT_EQ(r.rounds, cap);
    }
    return after - before;
  };

  (void)allocs_for(64);  // warm-up: arena and result buffers reach high water
  const auto base = allocs_for(64);
  const auto deep = allocs_for(64 * 64);
  EXPECT_EQ(base, deep)
      << "the batch round loop allocated while running " << 64 * 63
      << " extra rounds per trial";
}

}  // namespace
}  // namespace fnr::sim
