// Framing-layer contract tests: length-prefix round-trips under arbitrary
// partial reads and short writes, plus the malformed-input battery
// (truncated prefixes, oversized and zero-length frames, deterministic
// garbage fuzz) — a reader fed hostile bytes must throw, never crash or
// resynchronize silently.
#include "net/framing.hpp"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.hpp"
#include "util/rng.hpp"

namespace fnr::net {
namespace {

TEST(Framing, EncodesBigEndianPrefix) {
  const std::string frame = encode_frame("abc");
  ASSERT_EQ(frame.size(), kFramePrefixSize + 3);
  EXPECT_EQ(frame[0], '\0');
  EXPECT_EQ(frame[1], '\0');
  EXPECT_EQ(frame[2], '\0');
  EXPECT_EQ(frame[3], '\x03');
  EXPECT_EQ(frame.substr(4), "abc");
}

TEST(Framing, RejectsEmptyAndOversizedPayloadsAtEncode) {
  EXPECT_THROW((void)encode_frame(""), CheckError);
  EXPECT_THROW((void)encode_frame(std::string(17, 'x'), /*max_frame=*/16),
               CheckError);
  EXPECT_NO_THROW((void)encode_frame(std::string(16, 'x'), /*max_frame=*/16));
}

TEST(Framing, RoundTripsOneFrame) {
  const std::string frame = encode_frame("{\"verb\":\"status\"}");
  FrameReader reader;
  reader.feed(frame.data(), frame.size());
  std::string payload;
  ASSERT_TRUE(reader.next(&payload));
  EXPECT_EQ(payload, "{\"verb\":\"status\"}");
  EXPECT_FALSE(reader.next(&payload));
  EXPECT_FALSE(reader.mid_frame());
}

TEST(Framing, DecodesByteByByteFeeds) {
  // The harshest partial-read schedule: every recv() returns one byte.
  const std::string wire =
      encode_frame("first") + encode_frame("second") + encode_frame("third");
  FrameReader reader;
  std::vector<std::string> payloads;
  for (const char byte : wire) {
    reader.feed(&byte, 1);
    std::string payload;
    while (reader.next(&payload)) payloads.push_back(payload);
  }
  EXPECT_EQ(payloads,
            (std::vector<std::string>{"first", "second", "third"}));
  EXPECT_FALSE(reader.mid_frame());
}

TEST(Framing, DecodesAcrossEveryPossibleSplitPoint) {
  const std::string wire = encode_frame("alpha") + encode_frame("bravo");
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    FrameReader reader;
    reader.feed(wire.data(), split);
    std::vector<std::string> payloads;
    std::string payload;
    while (reader.next(&payload)) payloads.push_back(payload);
    reader.feed(wire.data() + split, wire.size() - split);
    while (reader.next(&payload)) payloads.push_back(payload);
    ASSERT_EQ(payloads, (std::vector<std::string>{"alpha", "bravo"}))
        << "split at byte " << split;
  }
}

TEST(Framing, TruncatedPrefixOrPayloadStaysPendingNotCorrupt) {
  const std::string frame = encode_frame("payload");
  // Truncated length prefix: no frame yet, state reported as mid-frame.
  FrameReader prefix_reader;
  prefix_reader.feed(frame.data(), 2);
  std::string payload;
  EXPECT_FALSE(prefix_reader.next(&payload));
  EXPECT_TRUE(prefix_reader.mid_frame());
  // Truncated payload: same.
  FrameReader payload_reader;
  payload_reader.feed(frame.data(), frame.size() - 1);
  EXPECT_FALSE(payload_reader.next(&payload));
  EXPECT_TRUE(payload_reader.mid_frame());
}

TEST(Framing, RejectsZeroLengthAndOversizedPrefixes) {
  FrameReader zero_reader;
  const char zeros[kFramePrefixSize] = {0, 0, 0, 0};
  zero_reader.feed(zeros, sizeof(zeros));
  std::string payload;
  EXPECT_THROW((void)zero_reader.next(&payload), CheckError);

  // A hostile 256 MiB length must be rejected from the prefix alone —
  // before any payload bytes arrive or get buffered.
  FrameReader big_reader(/*max_frame=*/1024);
  const char huge[kFramePrefixSize] = {'\x10', 0, 0, 0};
  big_reader.feed(huge, sizeof(huge));
  EXPECT_THROW((void)big_reader.next(&payload), CheckError);
}

TEST(Framing, DeterministicGarbageFuzzNeverCrashes) {
  // Random byte soup must either decode (when the random prefix happens to
  // be small enough), stay pending, or throw CheckError — never crash.
  Rng rng(2026, 808);
  for (int round = 0; round < 256; ++round) {
    FrameReader reader(/*max_frame=*/4096);
    std::string payload;
    try {
      for (int chunk = 0; chunk < 8; ++chunk) {
        std::string bytes(rng.below(64) + 1, '\0');
        for (auto& b : bytes) b = static_cast<char>(rng.below(256));
        reader.feed(bytes.data(), bytes.size());
        while (reader.next(&payload)) {
          ASSERT_FALSE(payload.empty());
          ASSERT_LE(payload.size(), 4096u);
        }
      }
    } catch (const CheckError&) {
      // Poisoned reader: the serving loop drops the connection here.
    }
  }
}

TEST(Framing, WriterHandlesShortWritesOneByteAtATime) {
  FrameWriter writer;
  writer.enqueue("hello");
  writer.enqueue("world");
  const std::size_t total = writer.pending_bytes();
  EXPECT_EQ(total, 2 * (kFramePrefixSize + 5));

  std::string sink;
  // A sink that accepts exactly one byte per call — the worst short-write
  // schedule a non-blocking socket can produce.
  ASSERT_TRUE(writer.flush_with([&](const char* data, std::size_t) -> long {
    sink.push_back(*data);
    return 1;
  }));
  EXPECT_TRUE(writer.idle());

  FrameReader reader;
  reader.feed(sink.data(), sink.size());
  std::string payload;
  ASSERT_TRUE(reader.next(&payload));
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(reader.next(&payload));
  EXPECT_EQ(payload, "world");
}

TEST(Framing, WriterKeepsBytesPendingOnWouldBlockAndFailsOnError) {
  FrameWriter writer;
  writer.enqueue("payload");
  const std::size_t pending = writer.pending_bytes();

  // Would-block: flush succeeds, nothing consumed.
  ASSERT_TRUE(writer.flush_with([](const char*, std::size_t) -> long {
    return 0;
  }));
  EXPECT_EQ(writer.pending_bytes(), pending);

  // Partial write then would-block: remainder stays pending.
  bool first = true;
  ASSERT_TRUE(writer.flush_with([&](const char*, std::size_t) -> long {
    if (!first) return 0;
    first = false;
    return 3;
  }));
  EXPECT_EQ(writer.pending_bytes(), pending - 3);

  // Hard error: flush reports failure.
  EXPECT_FALSE(writer.flush_with([](const char*, std::size_t) -> long {
    return -1;
  }));
}

}  // namespace
}  // namespace fnr::net
