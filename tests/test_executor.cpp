// Cell-executor contract tests: the work-stealing worker pool behind
// Campaign. The headline contract under test is byte-identity — merged
// JSON, checkpoint lines (modulo the informational "seconds" field), and
// callback order must not depend on the executor pool size — plus the
// LPT cost model, trial-shard splitting, the restored-before-live replay
// ordering on resume, max_cells prefix semantics, and the once-per-key
// generation guarantee of the shared graph cache.
#include "campaign/executor.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "sweep/spec.hpp"
#include "util/check.hpp"

namespace fnr::campaign {
namespace {

// Mirrors the CI smoke grid: 16 heterogeneous cells across two programs,
// two scenarios, two families, two sizes — enough shape spread for the
// LPT queue to schedule out of canonical order at jobs > 1.
constexpr const char* kGridSpec = R"(
name       = executor-grid
trials     = 3
programs   = whiteboard, random-walk
scenarios  = sync-pair, delayed-pair
topologies = ring, near-regular:deg=4
sizes      = 32, 64
seeds      = 1
)";

/// RAII temp file path (removed on destruction).
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Checkpoint bytes with the wall-clock field removed — the only field
/// whose value legitimately differs between two runs of the same cells.
std::string checkpoint_sans_seconds(const std::string& path) {
  static const std::regex seconds(",\"seconds\":[^,}]*");
  return std::regex_replace(read_file(path), seconds, "");
}

std::vector<std::string> canonical_keys(const sweep::SweepSpec& spec) {
  std::vector<std::string> keys;
  for (const auto& cell : sweep::expand(spec)) keys.push_back(cell.key());
  return keys;
}

struct RunArtifacts {
  std::string merged_json;
  std::string checkpoint;  ///< seconds-stripped bytes
  std::vector<std::string> callback_keys;
  std::vector<bool> from_checkpoint;
  CampaignRun run;
};

RunArtifacts run_campaign(const sweep::SweepSpec& spec,
                          CampaignOptions options,
                          const std::string& checkpoint_name) {
  TempPath checkpoint(checkpoint_name);
  options.checkpoint_path = checkpoint.str();
  Campaign campaign(spec, options);
  RunArtifacts artifacts;
  artifacts.run = campaign.run([&](const CellResult& result) {
    artifacts.callback_keys.push_back(result.cell.key());
    artifacts.from_checkpoint.push_back(result.from_checkpoint);
  });
  artifacts.merged_json = to_json(spec, artifacts.run.cells);
  artifacts.checkpoint = checkpoint_sans_seconds(checkpoint.str());
  return artifacts;
}

TEST(CellCostModel, WeightRanksFamilyAndShape) {
  auto spec = sweep::parse_spec(kGridSpec);
  const auto cells = sweep::expand(spec);

  // Same program/scenario/size: the neighborhood-scan-heavy near-regular
  // family must outrank the cheap ring.
  const sweep::SweepCell* ring = nullptr;
  const sweep::SweepCell* near_regular = nullptr;
  const sweep::SweepCell* ring_small = nullptr;
  for (const auto& cell : cells) {
    if (cell.program != cells.front().program ||
        cell.scenario != cells.front().scenario)
      continue;
    if (cell.topology.family == "ring" && cell.n == 64) ring = &cell;
    if (cell.topology.family == "ring" && cell.n == 32) ring_small = &cell;
    if (cell.topology.family == "near-regular" && cell.n == 64)
      near_regular = &cell;
  }
  ASSERT_NE(ring, nullptr);
  ASSERT_NE(ring_small, nullptr);
  ASSERT_NE(near_regular, nullptr);
  EXPECT_GT(CellCostModel::weight(*near_regular),
            CellCostModel::weight(*ring));
  // Bigger graphs cost more at equal trial counts.
  EXPECT_GT(CellCostModel::weight(*ring), CellCostModel::weight(*ring_small));
  // More trials cost proportionally more.
  sweep::SweepCell heavy = *ring;
  heavy.trials *= 10;
  EXPECT_GT(CellCostModel::weight(heavy), CellCostModel::weight(*ring));
}

TEST(CellCostModel, ObservedRatesRefineAndUnobservedExploresFirst) {
  const auto spec = sweep::parse_spec(kGridSpec);
  const auto cells = sweep::expand(spec);
  const sweep::SweepCell* ring = nullptr;
  const sweep::SweepCell* near_regular = nullptr;
  for (const auto& cell : cells) {
    if (cell.program != cells.front().program ||
        cell.scenario != cells.front().scenario || cell.n != 64)
      continue;
    if (cell.topology.family == "ring") ring = &cell;
    if (cell.topology.family == "near-regular") near_regular = &cell;
  }
  ASSERT_NE(ring, nullptr);
  ASSERT_NE(near_regular, nullptr);

  CellCostModel model;
  // Before any observation the estimate IS the raw weight.
  EXPECT_EQ(model.estimate(*ring), CellCostModel::weight(*ring));

  // A measured (program, family) rate rescales its estimate; a family
  // never observed keeps its raw weight, which dwarfs any realistic
  // seconds-based estimate — LPT explores unknown cost first.
  model.observe(*near_regular, 2.0);
  const double observed = model.estimate(*near_regular);
  EXPECT_NE(observed, CellCostModel::weight(*near_regular));
  EXPECT_GT(model.estimate(*ring), observed);

  // The EMA folds further observations in (same cell, slower second run).
  model.observe(*near_regular, 6.0);
  EXPECT_GT(model.estimate(*near_regular), observed);
}

TEST(CellExecutor, ParallelRunMatchesSequentialBytes) {
  const auto spec = sweep::parse_spec(kGridSpec);
  CampaignOptions sequential;
  sequential.jobs = 1;
  const auto reference = run_campaign(spec, sequential, "exec_seq.jsonl");
  ASSERT_TRUE(reference.run.complete);

  CampaignOptions parallel;
  parallel.jobs = 4;
  const auto candidate = run_campaign(spec, parallel, "exec_par.jsonl");
  ASSERT_TRUE(candidate.run.complete);
  EXPECT_EQ(candidate.run.executed, reference.run.executed);
  EXPECT_EQ(candidate.run.discarded, 0u);

  // The headline contract, all three artifacts: merged JSON, checkpoint
  // bytes (modulo seconds), and the callback key sequence.
  EXPECT_EQ(candidate.merged_json, reference.merged_json);
  EXPECT_EQ(candidate.checkpoint, reference.checkpoint);
  EXPECT_EQ(candidate.callback_keys, reference.callback_keys);
  // And that order is the canonical grid order, not merely *an* order.
  EXPECT_EQ(reference.callback_keys, canonical_keys(spec));
  // The deterministic workload telemetry agrees too.
  EXPECT_EQ(candidate.run.total_rounds, reference.run.total_rounds);
}

TEST(CellExecutor, MonsterCellSplitsIntoMergedShards) {
  // One 256-trial cell: at jobs=4 with the default 32-trial shard floor it
  // must split, run on several workers, and merge to the sequential bytes.
  const auto spec = sweep::parse_spec(R"(
name       = monster
trials     = 256
programs   = whiteboard
scenarios  = sync-pair
topologies = near-regular:deg=4
sizes      = 64
seeds      = 1
)");
  CampaignOptions sequential;
  sequential.jobs = 1;
  const auto reference = run_campaign(spec, sequential, "monster_seq.jsonl");

  CampaignOptions parallel;
  parallel.jobs = 4;
  const auto candidate = run_campaign(spec, parallel, "monster_par.jsonl");
  ASSERT_TRUE(candidate.run.complete);
  EXPECT_EQ(candidate.run.split_cells, 1u);
  EXPECT_GT(candidate.run.shards, 1u);
  EXPECT_EQ(candidate.merged_json, reference.merged_json);
  EXPECT_EQ(candidate.checkpoint, reference.checkpoint);
  EXPECT_EQ(candidate.run.total_rounds, reference.run.total_rounds);
}

TEST(CellExecutor, RestoredCellsReplayBeforeAnyLiveCell) {
  // The resume + --jobs contract: every checkpointed cell replays through
  // the callback, in canonical order, before the first live cell flushes —
  // a streaming consumer sees one canonical sequence, never interleaving.
  const auto spec = sweep::parse_spec(kGridSpec);
  TempPath checkpoint("exec_replay.jsonl");

  CampaignOptions pause;
  pause.jobs = 4;
  pause.max_cells = 3;
  pause.checkpoint_path = checkpoint.str();
  Campaign paused(spec, pause);
  (void)paused.run();

  CampaignOptions resume;
  resume.jobs = 4;
  resume.resume = true;
  resume.checkpoint_path = checkpoint.str();
  Campaign resumed(spec, resume);
  std::vector<std::string> keys;
  std::vector<bool> restored;
  const CampaignRun run = resumed.run([&](const CellResult& result) {
    keys.push_back(result.cell.key());
    restored.push_back(result.from_checkpoint);
  });
  EXPECT_TRUE(run.complete);
  EXPECT_EQ(run.restored, 3u);
  ASSERT_EQ(restored.size(), keys.size());
  // Prefix property: restored flags are monotonically true-then-false.
  for (std::size_t i = 0; i < restored.size(); ++i)
    EXPECT_EQ(restored[i], i < 3) << "callback " << i;
  EXPECT_EQ(keys, canonical_keys(spec));
}

TEST(CellExecutor, MaxCellsRunsTheCanonicalPrefixWithoutDiscards) {
  // max_cells restricts the schedulable set, so even at jobs=4 — where the
  // LPT queue would otherwise start the most expensive cells first — the
  // executed set is exactly the first N canonical cells and no completed
  // work is thrown away.
  const auto spec = sweep::parse_spec(kGridSpec);
  CampaignOptions options;
  options.jobs = 4;
  options.max_cells = 5;
  const auto artifacts = run_campaign(spec, options, "exec_prefix.jsonl");
  EXPECT_EQ(artifacts.run.executed, 5u);
  EXPECT_EQ(artifacts.run.discarded, 0u);
  EXPECT_FALSE(artifacts.run.complete);
  const auto keys = canonical_keys(spec);
  ASSERT_GE(keys.size(), 5u);
  EXPECT_EQ(artifacts.callback_keys,
            std::vector<std::string>(keys.begin(), keys.begin() + 5));
}

TEST(CellExecutor, SharedTopologyIsGeneratedOnceUnderHammer) {
  // Every cell of this grid shares one graph key; four workers racing for
  // it must produce exactly one generation (the in-flight marker makes the
  // others wait instead of regenerating) and zero evictions.
  const auto spec = sweep::parse_spec(R"(
name       = hammer
trials     = 2
programs   = whiteboard, whiteboard+doubling, no-whiteboard, random-walk
scenarios  = sync-pair, delayed-pair
topologies = near-regular:deg=4
sizes      = 32
seeds      = 1
)");
  CampaignOptions options;
  options.jobs = 4;
  const auto artifacts = run_campaign(spec, options, "exec_hammer.jsonl");
  ASSERT_TRUE(artifacts.run.complete);
  const std::uint64_t cells = artifacts.run.executed;
  ASSERT_GE(cells, 4u);
  EXPECT_EQ(artifacts.run.graph_cache_misses, 1u);
  EXPECT_EQ(artifacts.run.graph_cache_hits, cells - 1);
  EXPECT_EQ(artifacts.run.graph_cache_evictions, 0u);
}

TEST(CellExecutor, CancelMidParallelResumesToIdenticalBytes) {
  const auto spec = sweep::parse_spec(kGridSpec);
  CampaignOptions sequential;
  sequential.jobs = 1;
  const auto reference = run_campaign(spec, sequential, "exec_ref.jsonl");

  // Cancel from the first callback of a jobs=4 run: workers may have
  // several more cells in flight or staged out of order; everything not in
  // the flushed canonical prefix must be discarded, not torn.
  TempPath checkpoint("exec_cancel.jsonl");
  CampaignOptions options;
  options.jobs = 4;
  options.checkpoint_path = checkpoint.str();
  Campaign interrupted(spec, options);
  const CampaignRun first =
      interrupted.run([&](const CellResult&) { interrupted.cancel(); });
  EXPECT_TRUE(first.cancelled);
  // Workers only observe the cancel at unit boundaries, so on a fast box
  // every cell may already be staged when the first callback fires and
  // the run legitimately completes. Either way the invariants hold: the
  // flushed cells are a canonical prefix, and resume rebuilds the
  // reference bytes from whatever the checkpoint holds.
  ASSERT_GE(first.cells.size(), 1u);
  // Whatever was flushed is a canonical prefix.
  const auto keys = canonical_keys(spec);
  for (std::size_t i = 0; i < first.cells.size(); ++i)
    EXPECT_EQ(first.cells[i].cell.key(), keys[i]);

  CampaignOptions resume_options = options;
  resume_options.resume = true;
  Campaign resumed(spec, resume_options);
  const CampaignRun second = resumed.run();
  EXPECT_TRUE(second.complete);
  EXPECT_EQ(second.restored, first.cells.size());
  EXPECT_EQ(to_json(spec, second.cells), reference.merged_json);
}

TEST(CellExecutor, FailedCellsFlowThroughUnchangedAtAnyJobs) {
  // A cell whose run throws CheckError becomes an ok=false result (the
  // batch keeps going) — and the error artifact is identical across pool
  // sizes like any other cell. expand() never emits an unrunnable cell,
  // so tamper one: an unknown scenario name fails deterministically at
  // find_scenario, the same catch boundary every runtime failure hits.
  const auto spec = sweep::parse_spec(kGridSpec);
  auto cells = sweep::expand(spec);
  ASSERT_GE(cells.size(), 3u);
  cells[2].scenario = "no-such-scenario";

  const auto run_at = [&](unsigned jobs) {
    ExecutorOptions options;
    options.jobs = jobs;
    CellExecutor executor(options);
    std::vector<CellResult> results;
    std::atomic<bool> cancel{false};
    (void)executor.run(
        cells, [&](CellResult&& r) { results.push_back(std::move(r)); },
        cancel);
    return results;
  };
  const auto sequential = run_at(1);
  const auto parallel = run_at(4);
  ASSERT_EQ(sequential.size(), cells.size());
  ASSERT_EQ(parallel.size(), cells.size());
  EXPECT_FALSE(sequential[2].ok);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(parallel[i].cell.key(), sequential[i].cell.key());
    EXPECT_EQ(parallel[i].ok, sequential[i].ok);
    EXPECT_EQ(parallel[i].error, sequential[i].error);
    EXPECT_EQ(parallel[i].agg_json, sequential[i].agg_json);
  }
}

}  // namespace
}  // namespace fnr::campaign
