// Statistical correctness of Algorithm 2 (Sample): heavy vertices are
// reported heavy, light vertices light, on graphs where ground truth is
// known exactly (Lemma 2 / Corollary 1).
#include <gtest/gtest.h>

#include "core/knowledge.hpp"
#include "core/sample.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "sim/scripted_agent.hpp"
#include "util/rng.hpp"

namespace fnr::core {
namespace {

/// Drives one SampleRun from `home` with Γ = N+(home) and records H'.
class SampleDriver final : public sim::ScriptedAgent {
 public:
  SampleDriver(double alpha, const Params& params, Rng rng)
      : alpha_(alpha), params_(params), rng_(rng) {}

  std::vector<graph::VertexId> heavy;
  [[nodiscard]] bool halted() const override { return done_; }

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      std::vector<graph::VertexId> gamma = knowledge_.ns_list();
      run_ = std::make_unique<SampleRun>(std::move(gamma), alpha_,
                                         view.num_vertices(), params_);
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->record_visit(view, knowledge_);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->record_visit(view, knowledge_);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    heavy = run_->heavy_output(knowledge_);
    done_ = true;
  }

 private:
  double alpha_;
  Params params_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  Knowledge knowledge_;
  std::unique_ptr<SampleRun> run_;
};

std::vector<graph::VertexId> run_sample(const graph::Graph& g,
                                        graph::VertexIndex home, double alpha,
                                        const Params& params,
                                        std::uint64_t seed) {
  sim::Scheduler scheduler(g, sim::Model::full());
  SampleDriver driver(alpha, params, Rng(seed));
  const auto result = scheduler.run_single(driver, home, 10'000'000);
  EXPECT_TRUE(driver.halted()) << "sample did not finish, rounds="
                               << result.metrics.rounds;
  return driver.heavy;
}

TEST(Sample, CompleteGraphEverythingHeavy) {
  // K_n: |Γ ∩ N+(u)| = |Γ| = n for every u, so with alpha = n/8 every
  // member of N+(home) = V must come back heavy.
  const auto g = graph::make_complete(64);
  const auto heavy = run_sample(g, 0, 64.0 / 8.0, Params::practical(), 7);
  EXPECT_EQ(heavy.size(), 64u);
}

TEST(Sample, StarLeavesAreLight) {
  // Star with center home: Γ = V. A leaf u has N+(u) = {u, center}, so
  // |Γ ∩ N+(u)| = 2; the center is n-heavy. With alpha = 10 the output must
  // be exactly {center}.
  const auto g = graph::make_star(127);
  const auto heavy = run_sample(g, 0, 10.0, Params::practical(), 11);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], g.id_of(0));
}

TEST(Sample, PaperConstantsAgreeOnStar) {
  const auto g = graph::make_star(63);
  const auto heavy = run_sample(g, 0, 8.0, Params::paper(), 13);
  ASSERT_EQ(heavy.size(), 1u);
  EXPECT_EQ(heavy[0], g.id_of(0));
}

TEST(Sample, ClassificationIsSeedStable) {
  const auto g = graph::make_star(63);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto heavy = run_sample(g, 0, 10.0, Params::practical(), seed);
    EXPECT_EQ(heavy.size(), 1u) << "seed " << seed;
  }
}

TEST(Sample, BorderlineVerticesLandSomewhere) {
  // Two hubs sharing half the leaves: the shared leaves' closed
  // neighborhoods intersect Γ in 3 vertices. With alpha between 1 and 3 the
  // guarantee only promises: heavy output is alpha-heavy, lights are
  // 4*alpha-light. Verify no classification violates the one-sided bounds.
  graph::GraphBuilder b(34);
  // hub 0 adjacent to all leaves 2..33; hub 1 adjacent to leaves 2..17.
  for (graph::VertexIndex leaf = 2; leaf < 34; ++leaf) b.add_edge(0, leaf);
  for (graph::VertexIndex leaf = 2; leaf < 18; ++leaf) b.add_edge(1, leaf);
  b.add_edge(0, 1);
  const auto g = std::move(b).build_identity_ids();

  const double alpha = 4.0;
  const auto heavy = run_sample(g, 0, alpha, Params::practical(), 5);
  // Ground truth per Definition 2 with Γ = N+(0) = V:
  for (const auto id : heavy) {
    const auto u = g.index_of(id);
    const std::size_t weight = g.degree(u) + 1;  // |Γ ∩ N+(u)|, Γ = V
    EXPECT_GE(weight, static_cast<std::size_t>(alpha))
        << "vertex " << id << " reported heavy but is alpha-light";
  }
}

TEST(Sample, VisitBudgetMatchesFormula) {
  std::vector<graph::VertexId> gamma(100);
  for (std::size_t i = 0; i < gamma.size(); ++i) gamma[i] = i;
  const auto params = Params::practical();
  SampleRun run(gamma, 5.0, 1000, params);
  EXPECT_EQ(run.visits_planned(), params.sample_visits(100, 5.0, 1000));
  Rng rng(3);
  std::uint64_t count = 0;
  while (run.next_target(rng)) ++count;
  EXPECT_EQ(count, run.visits_planned());
  EXPECT_TRUE(run.exhausted());
}

TEST(Sample, EmptyGammaIsImmediatelyExhausted) {
  SampleRun run({}, 5.0, 1000, Params::practical());
  Rng rng(3);
  EXPECT_FALSE(run.next_target(rng).has_value());
  EXPECT_TRUE(run.exhausted());
}

}  // namespace
}  // namespace fnr::core
