// Campaign-core contract tests: the resumable, cancelable run object the
// bench/sweep CLI and the fnrd daemon both drive. Covers the per-cell
// callback (order, checkpoint-flush-before-callback, from_checkpoint
// replay), cancel-at-a-cell-boundary + resume byte-identity, run-once
// enforcement, and shard selection.
#include "campaign/campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace fnr::campaign {
namespace {

constexpr const char* kTinySpec = R"(
name       = tiny
trials     = 2
programs   = whiteboard, random-walk
scenarios  = sync-pair
topologies = ring, near-regular:deg=4
sizes      = 16, 32
seeds      = 1
)";

/// RAII temp file path (removed on destruction).
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

CampaignOptions quiet_options() {
  CampaignOptions options;
  options.threads = 2;
  return options;
}

TEST(Campaign, CallbackFiresOncePerCellAfterItsCheckpointLine) {
  const auto spec = sweep::parse_spec(kTinySpec);
  TempPath checkpoint("campaign_cb.jsonl");
  CampaignOptions options = quiet_options();
  options.checkpoint_path = checkpoint.str();

  Campaign campaign(spec, options);
  const std::size_t total = campaign.shard_cells().size();
  ASSERT_GT(total, 0u);

  std::vector<std::string> seen_keys;
  const CampaignRun run = campaign.run([&](const CellResult& result) {
    EXPECT_FALSE(result.from_checkpoint);
    EXPECT_TRUE(result.ok) << result.error;
    // The contract: the cell's checkpoint line is already flushed when the
    // callback fires, so a crash after this point loses nothing.
    const auto entries = load_checkpoint(checkpoint.str());
    EXPECT_TRUE(entries.count(result.cell.key()))
        << "cell not yet checkpointed: " << result.cell.key();
    seen_keys.push_back(result.cell.key());
  });
  EXPECT_EQ(seen_keys.size(), total);
  EXPECT_EQ(run.executed, total);
  EXPECT_EQ(run.restored, 0u);
  EXPECT_TRUE(run.complete);
  EXPECT_FALSE(run.cancelled);
}

TEST(Campaign, RunIsOneShot) {
  const auto spec = sweep::parse_spec(kTinySpec);
  Campaign campaign(spec, quiet_options());
  (void)campaign.run();
  EXPECT_THROW((void)campaign.run(), CheckError);
}

TEST(Campaign, CancelStopsAtACellBoundaryAndResumeMatchesBytes) {
  const auto spec = sweep::parse_spec(kTinySpec);

  // The reference: one uninterrupted run.
  const std::string expected = [&] {
    Campaign reference(spec, quiet_options());
    const CampaignRun run = reference.run();
    return to_json(spec, run.cells);
  }();

  TempPath checkpoint("campaign_cancel.jsonl");
  CampaignOptions options = quiet_options();
  options.checkpoint_path = checkpoint.str();

  // Cancel from inside the callback after two cells — the same path a
  // signal handler or a daemon CANCEL verb takes, just deterministic.
  Campaign interrupted(spec, options);
  const std::size_t total = interrupted.shard_cells().size();
  std::uint64_t finished = 0;
  const CampaignRun first = interrupted.run([&](const CellResult&) {
    if (++finished == 2) interrupted.cancel();
  });
  EXPECT_TRUE(first.cancelled);
  EXPECT_FALSE(first.complete);
  EXPECT_EQ(first.cells.size(), 2u);
  ASSERT_LT(first.cells.size(), total);

  // Resume in a "fresh process": a new Campaign over the same checkpoint.
  CampaignOptions resume_options = options;
  resume_options.resume = true;
  Campaign resumed(spec, resume_options);
  std::uint64_t replayed = 0;
  const CampaignRun second = resumed.run([&](const CellResult& result) {
    if (result.from_checkpoint) ++replayed;
  });
  EXPECT_EQ(replayed, 2u);
  EXPECT_EQ(second.restored, 2u);
  EXPECT_EQ(second.executed, total - 2);
  EXPECT_TRUE(second.complete);
  EXPECT_FALSE(second.cancelled);

  // The headline determinism contract, at the campaign layer.
  EXPECT_EQ(to_json(spec, second.cells), expected);
}

TEST(Campaign, MaxCellsPausesWithoutSettingCancelled) {
  const auto spec = sweep::parse_spec(kTinySpec);
  TempPath checkpoint("campaign_maxcells.jsonl");
  CampaignOptions options = quiet_options();
  options.checkpoint_path = checkpoint.str();
  options.max_cells = 3;

  Campaign campaign(spec, options);
  const CampaignRun run = campaign.run();
  EXPECT_EQ(run.executed, 3u);
  EXPECT_FALSE(run.complete);
  EXPECT_FALSE(run.cancelled);
}

TEST(Campaign, ShardsPartitionTheGridByIndex) {
  const auto spec = sweep::parse_spec(kTinySpec);
  const auto grid = sweep::expand(spec);

  std::vector<std::string> sharded_keys;
  for (std::uint32_t shard = 0; shard < 3; ++shard) {
    CampaignOptions options = quiet_options();
    options.shard_index = shard;
    options.shard_count = 3;
    Campaign campaign(spec, options);
    for (const auto& cell : campaign.shard_cells()) {
      EXPECT_EQ(cell.index % 3, shard);
      sharded_keys.push_back(cell.key());
    }
  }
  // The three shards cover the grid exactly once (order within each shard
  // is canonical, so sorting both sides is enough to compare as sets).
  std::vector<std::string> grid_keys;
  for (const auto& cell : grid) grid_keys.push_back(cell.key());
  std::sort(grid_keys.begin(), grid_keys.end());
  std::sort(sharded_keys.begin(), sharded_keys.end());
  EXPECT_EQ(sharded_keys, grid_keys);

  CampaignOptions bad = quiet_options();
  bad.shard_index = 3;
  bad.shard_count = 3;
  EXPECT_THROW((void)Campaign(spec, bad), CheckError);
}

TEST(Campaign, CancelBeforeRunYieldsNoCells) {
  const auto spec = sweep::parse_spec(kTinySpec);
  Campaign campaign(spec, quiet_options());
  campaign.cancel();
  EXPECT_TRUE(campaign.cancel_requested());
  const CampaignRun run = campaign.run();
  EXPECT_TRUE(run.cancelled);
  EXPECT_EQ(run.executed, 0u);
  EXPECT_TRUE(run.cells.empty());
}

}  // namespace
}  // namespace fnr::campaign
