// Failure injection and model-enforcement coverage: every way a caller or
// an algorithm can step outside the paper's model must fail loudly, and the
// Construct ablation switch must preserve output quality.
#include <gtest/gtest.h>

#include "baselines/wait_and_sweep.hpp"
#include "core/construct.hpp"
#include "core/knowledge.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "sim/scripted_agent.hpp"
#include "test_support.hpp"

namespace fnr {
namespace {

// --- Knowledge (agent a's map) ---------------------------------------------

TEST(Knowledge, RoutesCoverZeroOneTwoHops) {
  core::Knowledge k;
  k.init_home(10, {20, 30});
  (void)k.absorb_neighborhood(20, {10, 40});
  EXPECT_TRUE(k.route_from_home(10).empty());
  EXPECT_EQ(k.route_from_home(30), (std::vector<graph::VertexId>{30}));
  EXPECT_EQ(k.route_from_home(40), (std::vector<graph::VertexId>{20, 40}));
  EXPECT_EQ(k.route_to_home(40), (std::vector<graph::VertexId>{20, 10}));
  EXPECT_EQ(k.route_to_home(30), (std::vector<graph::VertexId>{10}));
}

TEST(Knowledge, UnknownRouteThrows) {
  core::Knowledge k;
  k.init_home(1, {2});
  EXPECT_THROW((void)k.route_from_home(99), CheckError);
  EXPECT_THROW((void)k.route_to_home(99), CheckError);
}

TEST(Knowledge, AbsorbReportsOnlyFreshVertices) {
  core::Knowledge k;
  k.init_home(1, {2, 3});
  const auto fresh = k.absorb_neighborhood(2, {1, 3, 4, 5});
  EXPECT_EQ(fresh, (std::vector<graph::VertexId>{4, 5}));
  // Absorbing again adds nothing.
  EXPECT_TRUE(k.absorb_neighborhood(2, {1, 3, 4, 5}).empty());
  EXPECT_EQ(k.ns_size(), 5u);
}

TEST(Knowledge, ResetCoverageKeepsHomeBall) {
  core::Knowledge k;
  k.init_home(1, {2, 3});
  (void)k.absorb_neighborhood(2, {7});
  EXPECT_TRUE(k.in_ns(7));
  k.reset_coverage();  // doubling restart
  EXPECT_FALSE(k.in_ns(7));
  EXPECT_TRUE(k.in_ns(2));
  EXPECT_THROW((void)k.route_from_home(7), CheckError);
}

// --- model enforcement ------------------------------------------------------

TEST(ModelGuards, MovePlanNeedsKt1) {
  // A ScriptedAgent move is addressed by ID: in the port-only model the
  // translation throws, surfacing the model violation at its source.
  class IdMover final : public sim::ScriptedAgent {
   protected:
    void on_idle(const sim::View& view) override {
      if (view.round() == 0) plan_move(1);
    }
  };
  const auto g = graph::make_path(3);
  sim::Scheduler scheduler(g, sim::Model::port_only());
  IdMover a;
  baselines::WaitingAgent b;
  EXPECT_THROW((void)scheduler.run(a, b, sim::Placement{0, 2}, 4),
               CheckError);
}

TEST(ModelGuards, MovingToNonNeighborThrows) {
  class BadMover final : public sim::ScriptedAgent {
   protected:
    void on_idle(const sim::View& view) override {
      if (view.round() == 0) plan_move(3);  // distance 3 on a path
    }
  };
  const auto g = graph::make_path(5);
  sim::Scheduler scheduler(g, sim::Model::full());
  BadMover a;
  baselines::WaitingAgent b;
  EXPECT_THROW((void)scheduler.run(a, b, sim::Placement{0, 4}, 4),
               CheckError);
}

TEST(ModelGuards, PortOutOfRangeThrows) {
  class BadPort final : public sim::Agent {
   public:
    sim::Action step(const sim::View& view) override {
      return sim::Action::move(view.degree());  // one past the last port
    }
  };
  const auto g = graph::make_ring(5);
  sim::Scheduler scheduler(g, sim::Model::full());
  BadPort a;
  baselines::WaitingAgent b;
  EXPECT_THROW((void)scheduler.run(a, b, sim::Placement{0, 2}, 2),
               CheckError);
}

TEST(ModelGuards, StrategiesRefuseImpossibleModels) {
  // The facade re-checks every assumption its strategy needs.
  const auto g = test::dense_graph(128, 1);
  Rng rng(1, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);

  // Distance-2 placement (violates I₁).
  graph::VertexIndex far = graph::kNoVertex;
  const auto dist = graph::bfs_distances(g, placement.a_start);
  for (graph::VertexIndex v = 0; v < g.num_vertices(); ++v)
    if (dist[v] == 2) far = v;
  ASSERT_NE(far, graph::kNoVertex);
  core::RendezvousOptions options;
  EXPECT_THROW((void)core::run_rendezvous(
                   g, sim::Placement{placement.a_start, far}, options),
               CheckError);
}

// --- graph substrate edge cases ---------------------------------------------

TEST(GraphEdgeCases, TwoVertexGraph) {
  const auto g = graph::make_path(2);
  Rng rng(5, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);
  core::RendezvousOptions options;
  options.seed = 5;
  const auto report = core::run_rendezvous(g, placement, options);
  EXPECT_TRUE(report.run.met);
  EXPECT_LE(report.run.meeting_round, 16u);
}

TEST(GraphEdgeCases, TriangleAllStrategies) {
  const auto g = graph::make_complete(3);
  for (const auto strategy :
       {core::Strategy::Whiteboard, core::Strategy::WhiteboardDoubling,
        core::Strategy::NoWhiteboard}) {
    core::RendezvousOptions options;
    options.strategy = strategy;
    options.seed = 9;
    const auto report =
        core::run_rendezvous(g, sim::Placement{0, 1}, options);
    EXPECT_TRUE(report.run.met) << core::to_string(strategy);
  }
}

TEST(GraphEdgeCases, StarFromTheCenter) {
  // δ = 1 violates Theorem 1's premise; the algorithm must still terminate
  // (it degrades, it does not wedge).
  const auto g = graph::make_star(32);
  core::RendezvousOptions options;
  options.seed = 3;
  options.max_rounds = 500'000;
  const auto report = core::run_rendezvous(g, sim::Placement{0, 5}, options);
  EXPECT_TRUE(report.run.met);
}

TEST(GraphEdgeCases, RingIsSlowButSound) {
  // δ = 2 ring: far outside the dense regime; termination within the cap.
  const auto g = graph::make_ring(64);
  core::RendezvousOptions options;
  options.seed = 4;
  options.max_rounds = 2'000'000;
  const auto report = core::run_rendezvous(g, sim::Placement{0, 1}, options);
  EXPECT_TRUE(report.run.met);
}

// --- the Construct ablation switch -------------------------------------------

class StrictOnlyDriver final : public sim::ScriptedAgent {
 public:
  StrictOnlyDriver(const core::Params& params, double delta, Rng rng)
      : params_(params), delta_(delta), rng_(rng) {}
  [[nodiscard]] bool halted() const override { return done_; }
  std::vector<graph::VertexId> t_set;
  core::ConstructStats stats;

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      run_ = std::make_unique<core::ConstructRun>(knowledge_, params_, delta_,
                                                  view.num_vertices());
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->on_arrival(view);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    t_set = run_->t_set();
    stats = run_->stats();
    done_ = true;
  }

 private:
  core::Params params_;
  double delta_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  core::Knowledge knowledge_;
  std::unique_ptr<core::ConstructRun> run_;
};

TEST(ConstructAblation, StrictOnlyProducesDenseSetToo) {
  const auto g = test::dense_graph(256, 3);
  auto params = core::Params::practical();
  params.optimistic_decision = false;
  sim::Scheduler scheduler(g, sim::Model::full());
  StrictOnlyDriver driver(params, static_cast<double>(g.min_degree()),
                          Rng(7));
  (void)scheduler.run_single(driver, 0, 100'000'000);
  ASSERT_TRUE(driver.halted());
  EXPECT_EQ(driver.stats.optimistic_runs, 0u);
  EXPECT_GE(driver.stats.strict_runs, 1u);
  EXPECT_TRUE(graph::is_dense_set(
      g, 0, test::to_indices(g, driver.t_set),
      static_cast<double>(g.min_degree()) / 8.0, 2));
}

TEST(ConstructAblation, TwoStepWinsWhenIterationsAreMany) {
  // The §3.3 motivation, asserted: once n/δ is large enough that Construct
  // needs many iterations, re-sampling all of N+(Sᵃ) every iteration
  // (strict-only) costs strictly more rounds than the paper's two-step
  // decision. (At small n/δ the two variants are within a constant of each
  // other — see bench/exp12 for the full sweep.)
  Rng grng(11, 911);
  const auto g = graph::make_near_regular(1024, 16, grng);  // n/δ ≈ 64
  const double delta = static_cast<double>(g.min_degree());

  auto measure = [&](bool optimistic) {
    auto params = core::Params::practical();
    params.optimistic_decision = optimistic;
    sim::Scheduler scheduler(g, sim::Model::full());
    StrictOnlyDriver driver(params, delta, Rng(13));
    const auto result = scheduler.run_single(driver, 0, 100'000'000);
    EXPECT_TRUE(driver.halted());
    return result.metrics.rounds;
  };
  const auto two_step = measure(true);
  const auto strict_only = measure(false);
  EXPECT_LT(two_step, strict_only);
}

// --- statistical battery on the RNG (distribution sanity) -------------------

TEST(RngBattery, ChiSquareUniformity) {
  Rng rng(20260610);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  double counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  double chi2 = 0;
  const double expected = double(kDraws) / kBuckets;
  for (const double c : counts)
    chi2 += (c - expected) * (c - expected) / expected;
  // 15 degrees of freedom: p=0.001 critical value ≈ 37.7.
  EXPECT_LT(chi2, 37.7);
}

TEST(RngBattery, BitBalance) {
  Rng rng(42);
  int ones = 0;
  constexpr int kWords = 4096;
  for (int i = 0; i < kWords; ++i) ones += __builtin_popcountll(rng());
  const double total = 64.0 * kWords;
  EXPECT_NEAR(ones / total, 0.5, 0.01);
}

TEST(RngBattery, SerialCorrelationIsLow) {
  Rng rng(99);
  double prev = rng.uniform01();
  double sum_xy = 0, sum_x = 0, sum_x2 = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double cur = rng.uniform01();
    sum_xy += prev * cur;
    sum_x += prev;
    sum_x2 += prev * prev;
    prev = cur;
  }
  const double mean = sum_x / kDraws;
  const double var = sum_x2 / kDraws - mean * mean;
  const double cov = sum_xy / kDraws - mean * mean;
  EXPECT_LT(std::abs(cov / var), 0.02);
}

}  // namespace
}  // namespace fnr
