// Heavy swarm stress battery: massive-k runs on the 2^20-vertex torus.
//
// Skipped unless FNR_HEAVY=1 is set (these tests are minutes-of-CPU scale
// by design and carry the CTest label "heavy"; the nightly CI job runs
// them via `ctest -L heavy`). Three claims:
//
//   1. A k = 100 000 agent trial on torus-1024 completes — the occupancy
//      engine's headline scale. FNR_HEAVY_K overrides k (e.g. 1000000 for
//      the ROADMAP's 10^6 acceptance run).
//   2. The swarm round loop is allocation-free after warm-up at k = 10^4:
//      a 16x-longer run heap-allocates exactly as often as a short one.
//   3. At k = 10^4, occupancy detection beats the pairwise oracle by >= 50x
//      wall-clock on a workload where detection dominates (agents that
//      never move, so the round loop is nothing but the meeting check).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <new>

#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

std::uint64_t allocation_count() {
  return g_allocations.load(std::memory_order_relaxed);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  const std::size_t rounded = (size + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded ? rounded : a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace fnr {
namespace {

bool heavy_enabled() {
  const char* flag = std::getenv("FNR_HEAVY");
  return flag != nullptr && flag[0] == '1';
}

#define REQUIRE_HEAVY()                                            \
  do {                                                             \
    if (!heavy_enabled())                                          \
      GTEST_SKIP() << "set FNR_HEAVY=1 to run the heavy battery"; \
  } while (false)

/// Memoryless walker: one uniform step per round. The cheapest possible
/// program, so massive-k runs measure the engine, not the agent.
class DrunkardAgent final : public sim::Agent {
 public:
  explicit DrunkardAgent(std::uint64_t seed) noexcept : rng_(seed, 77) {}
  sim::Action step(const sim::View& view) override {
    return sim::Action::move(
        static_cast<std::size_t>(rng_.below(view.degree())));
  }

 private:
  Rng rng_;
};

/// Never moves. With pairwise-distinct starts a team of these never meets,
/// which pins every round to the meeting check alone — the detection
/// engines' worst case (nothing to early-out on).
class StoneAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View&) override { return sim::Action::stay(); }
};

sim::ScenarioPlacement distinct_starts(const graph::Graph& g, std::size_t k,
                                       std::uint64_t seed) {
  sim::ScenarioPlacement placement;
  Rng rng(seed, 13);
  const auto picks = sample_without_replacement(g.num_vertices(), k, rng);
  placement.starts.reserve(k);
  for (const auto v : picks)
    placement.starts.push_back(static_cast<graph::VertexIndex>(v));
  return placement;
}

TEST(SwarmStress, HundredThousandAgentTrialCompletesOnTorus1024) {
  REQUIRE_HEAVY();
  std::size_t k = 100000;
  if (const char* override_k = std::getenv("FNR_HEAVY_K"))
    k = static_cast<std::size_t>(std::strtoull(override_k, nullptr, 10));
  ASSERT_GE(k, 2u);

  const auto g = graph::make_torus(1024, 1024);  // 2^20 vertices
  ASSERT_LE(k, g.num_vertices());
  sim::Scheduler scheduler(g, sim::Model::no_whiteboards());
  scheduler.set_meeting_detection(sim::MeetingDetection::Occupancy);

  std::deque<DrunkardAgent> agents;  // Agent is pinned (non-movable)
  std::vector<sim::Agent*> team;
  team.reserve(k);
  Rng seed_rng(4096, 5);
  for (std::size_t i = 0; i < k; ++i) {
    agents.emplace_back(seed_rng());
    team.push_back(&agents[i]);
  }
  const auto placement = distinct_starts(g, k, 321);

  const auto start = std::chrono::steady_clock::now();
  const auto result = scheduler.run_scenario(
      team, placement, sim::Gathering::quorum_of(5), /*max_rounds=*/512);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  // At 10^5 walkers on 10^6 vertices a 5-quorum forms within a few dozen
  // rounds with overwhelming probability (and at the 10^6 override it
  // usually holds in the starting position already).
  EXPECT_TRUE(result.met) << "no 5-quorum within 512 rounds at k=" << k;
  if (result.met) EXPECT_GE(result.gathered_count, 5u);
  RecordProperty("seconds", std::to_string(seconds));
  std::printf("[ HEAVY    ] k=%zu trial: %llu rounds, met=%d, %.2fs\n", k,
              static_cast<unsigned long long>(result.rounds),
              int(result.met), seconds);
}

TEST(SwarmStress, SwarmRoundLoopIsAllocationFreeAtTenThousandAgents) {
  REQUIRE_HEAVY();
  constexpr std::size_t kAgents = 10000;
  const auto g = graph::make_torus(128, 128);  // 16384 vertices >= k
  sim::Scheduler scheduler(g, sim::Model::no_whiteboards());
  scheduler.set_meeting_detection(sim::MeetingDetection::Occupancy);
  const auto placement = distinct_starts(g, kAgents, 97);

  const auto count_run = [&](std::uint64_t cap) {
    std::vector<StoneAgent> agents(kAgents);
    std::vector<sim::Agent*> team;
    team.reserve(kAgents);
    for (auto& agent : agents) team.push_back(&agent);
    const auto before = allocation_count();
    const auto result = scheduler.run_scenario(
        team, placement, sim::Gathering::quorum_of(2), cap);
    const auto after = allocation_count();
    EXPECT_FALSE(result.met);  // stones on distinct vertices never meet
    EXPECT_EQ(result.rounds, cap);
    return after - before;
  };

  (void)count_run(4);  // warm-up grows the arena and the occupancy array
  const auto short_run = count_run(16);
  const auto long_run = count_run(256);
  // Per-run cost (the result's per-agent metrics vector) is allowed;
  // per-round cost is not: 16x the rounds, identical allocation count.
  EXPECT_EQ(short_run, long_run)
      << "swarm round loop heap-allocates per round at k=" << kAgents;
}

TEST(SwarmStress, OccupancyBeatsPairwiseFiftyFoldAtTenThousandAgents) {
  REQUIRE_HEAVY();
  constexpr std::size_t kAgents = 10000;
  // Long enough that per-round detection dominates the fixed per-run setup
  // (arena reset + per-agent metrics) both engines share.
  constexpr std::uint64_t kRounds = 128;
  const auto g = graph::make_torus(128, 128);
  sim::Scheduler scheduler(g, sim::Model::no_whiteboards());
  auto placement = distinct_starts(g, kAgents, 97);
  // Every agent sleeps past the cap: sleeping agents still stand on their
  // vertices (they count toward the predicate) but never observe or act,
  // so each round is the meeting check and nothing else — the cleanest
  // head-to-head of the two detection engines.
  placement.wake_delays.assign(kAgents, kRounds + 1);

  const auto timed_run = [&](sim::MeetingDetection detection) {
    std::vector<StoneAgent> agents(kAgents);
    std::vector<sim::Agent*> team;
    team.reserve(kAgents);
    for (auto& agent : agents) team.push_back(&agent);
    scheduler.set_meeting_detection(detection);
    // Warm-up run outside the timed region (arena growth, cache faults).
    (void)scheduler.run_scenario(team, placement,
                                 sim::Gathering::quorum_of(2), 1);
    const auto start = std::chrono::steady_clock::now();
    const auto result = scheduler.run_scenario(
        team, placement, sim::Gathering::quorum_of(2), kRounds);
    const double seconds = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    EXPECT_FALSE(result.met);
    EXPECT_EQ(result.rounds, kRounds);
    return seconds;
  };

  const double pairwise = timed_run(sim::MeetingDetection::Pairwise);
  const double occupancy = timed_run(sim::MeetingDetection::Occupancy);
  std::printf("[ HEAVY    ] k=%zu, %llu rounds: pairwise %.4fs, "
              "occupancy %.6fs (%.1fx)\n",
              kAgents, static_cast<unsigned long long>(kRounds), pairwise,
              occupancy, pairwise / occupancy);
  // The oracle scans O(k^2) pairs per round; occupancy pays O(1) per round
  // plus O(1) per move (and stones never move). 50x is a deliberately
  // conservative floor — the measured gap is orders of magnitude.
  EXPECT_GE(pairwise, occupancy * 50.0);
}

}  // namespace
}  // namespace fnr
