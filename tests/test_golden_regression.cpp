// Golden-value regression: per-strategy aggregate statistics and one full
// scheduler trace, pinned on fixed seeds.
//
// The expected values below were captured from the PRE-scenario-engine
// synchronous two-agent scheduler (the seed of this PR), so they guard the
// acceptance invariant "a k = 2, delay = 0 scenario reproduces the
// pre-change synchronous scheduler output bit-for-bit" — through three
// paths: core::run_trials batches, a single run_rendezvous trace, and the
// same trace replayed through the scenario engine's sync-pair descriptor.
// If any of these numbers move, a refactor silently shifted the simulated
// distributions; that must be a deliberate, documented change.
#include <gtest/gtest.h>

#include <iterator>

#include "scenario/run.hpp"
#include "test_support.hpp"

namespace fnr {
namespace {

/// The exact graph the goldens were captured on: near-regular, n = 128,
/// out-degree 36 (≈ n^0.75 without touching libm), Rng(5, 17).
graph::Graph golden_graph() {
  Rng rng(5, 17);
  return graph::make_near_regular(128, 36, rng);
}

struct GoldenAggregate {
  core::Strategy strategy;
  std::uint64_t successes;
  double rounds_mean;
  double rounds_median;
  double rounds_p90;
  double rounds_p95;
  double rounds_min;
  double rounds_max;
  double rounds_stddev;
  std::uint64_t total_marks;
  double mean_marks;
  double mean_moves_a;
  double mean_moves_b;
};

// Captured 2026-07-29 from commit ab6a24f (pre-change build), seed 33,
// 24 trials, printed with %.17g.
constexpr GoldenAggregate kGoldenAggregates[] = {
    {core::Strategy::Whiteboard, 24, 127.54166666666667, 93.0,
     295.79999999999995, 312.29999999999995, 3.0, 347.0, 113.64283453249354,
     1533, 63.875, 127.54166666666667, 126.66666666666667},
    {core::Strategy::WhiteboardDoubling, 24, 127.54166666666667, 93.0,
     295.79999999999995, 312.29999999999995, 3.0, 347.0, 113.64283453249354,
     1533, 63.875, 127.54166666666667, 126.66666666666667},
    {core::Strategy::NoWhiteboard, 24, 107.16666666666667, 113.0,
     205.79999999999998, 226.59999999999997, 3.0, 319.0, 77.770938277609275,
     0, 0.0, 107.16666666666667, 0.0},
};

TEST(GoldenRegression, PerStrategyAggregatesOnFixedSeeds) {
  const auto g = golden_graph();
  for (const auto& golden : kGoldenAggregates) {
    core::RendezvousOptions options;
    options.seed = 33;
    const auto agg =
        core::run_trials(golden.strategy, g, options, 24, 1u).aggregate();
    SCOPED_TRACE(core::to_string(golden.strategy));
    EXPECT_EQ(agg.trials, 24u);
    EXPECT_EQ(agg.successes, golden.successes);
    EXPECT_EQ(agg.failures, 24u - golden.successes);
    EXPECT_DOUBLE_EQ(agg.rounds.mean, golden.rounds_mean);
    EXPECT_DOUBLE_EQ(agg.rounds.median, golden.rounds_median);
    EXPECT_DOUBLE_EQ(agg.rounds.p90, golden.rounds_p90);
    EXPECT_DOUBLE_EQ(agg.rounds.p95, golden.rounds_p95);
    EXPECT_DOUBLE_EQ(agg.rounds.min, golden.rounds_min);
    EXPECT_DOUBLE_EQ(agg.rounds.max, golden.rounds_max);
    EXPECT_DOUBLE_EQ(agg.rounds.stddev, golden.rounds_stddev);
    EXPECT_EQ(agg.total_marks, golden.total_marks);
    EXPECT_DOUBLE_EQ(agg.mean_marks, golden.mean_marks);
    EXPECT_DOUBLE_EQ(agg.mean_moves_a, golden.mean_moves_a);
    EXPECT_DOUBLE_EQ(agg.mean_moves_b, golden.mean_moves_b);
  }
}

struct GoldenTrace {
  core::Strategy strategy;
  std::uint64_t meeting_round;
  graph::VertexIndex meeting_vertex;
  std::uint64_t rounds;
  std::uint64_t moves_a;
  std::uint64_t moves_b;
  std::uint64_t wb_reads;
  std::uint64_t wb_writes;
  std::size_t wb_used;
};

// Captured from the same pre-change build: seed 2024, placement drawn with
// Rng(2024, 3). (Whiteboard and its doubling variant happen to follow the
// same trajectory on this instance — the doubling estimate never restarts.)
constexpr GoldenTrace kGoldenTraces[] = {
    {core::Strategy::Whiteboard, 67, 124, 67, 67, 66, 0, 34, 25},
    {core::Strategy::WhiteboardDoubling, 67, 124, 67, 67, 66, 0, 34, 25},
    {core::Strategy::NoWhiteboard, 67, 124, 67, 67, 0, 0, 0, 0},
};

void expect_matches(const sim::RunResult& run, const GoldenTrace& golden) {
  EXPECT_TRUE(run.met);
  EXPECT_EQ(run.meeting_round, golden.meeting_round);
  EXPECT_EQ(run.meeting_vertex, golden.meeting_vertex);
  EXPECT_EQ(run.metrics.rounds, golden.rounds);
  EXPECT_EQ(run.metrics.moves_of(sim::AgentName::A), golden.moves_a);
  EXPECT_EQ(run.metrics.moves_of(sim::AgentName::B), golden.moves_b);
  EXPECT_EQ(run.metrics.whiteboard_reads, golden.wb_reads);
  EXPECT_EQ(run.metrics.whiteboard_writes, golden.wb_writes);
  EXPECT_EQ(run.metrics.whiteboards_used, golden.wb_used);
}

TEST(GoldenRegression, SingleRunTracesOnFixedSeed) {
  const auto g = golden_graph();
  for (const auto& golden : kGoldenTraces) {
    SCOPED_TRACE(core::to_string(golden.strategy));
    Rng rng(2024, 3);
    const auto placement = sim::random_adjacent_placement(g, rng);
    core::RendezvousOptions options;
    options.strategy = golden.strategy;
    options.seed = 2024;
    const auto report = core::run_rendezvous(g, placement, options);
    expect_matches(report.run, golden);
    // The paper's two-agent distance-1 invariant: every mark a reads names
    // a neighbor of home. Foreign marks exist only in k-agent scenarios.
    EXPECT_EQ(report.agent_a.foreign_marks, 0u);
  }
}

TEST(GoldenRegression, SyncPairScenarioReproducesPreChangeTraces) {
  // The same traces through the scenario engine: sync-pair, k = 2, zero
  // delay, same per-agent seed split as run_rendezvous. Bit-for-bit.
  const auto g = golden_graph();
  const auto& sync = scenario::find_scenario("sync-pair");
  const scenario::Program programs[] = {scenario::find_program("whiteboard"),
                                        scenario::find_program("whiteboard+doubling"),
                                        scenario::find_program("no-whiteboard")};
  for (std::size_t i = 0; i < std::size(kGoldenTraces); ++i) {
    SCOPED_TRACE(scenario::to_string(programs[i]));
    Rng rng(2024, 3);
    const auto pair = sim::random_adjacent_placement(g, rng);
    sim::ScenarioPlacement placement;
    placement.starts = {pair.a_start, pair.b_start};
    scenario::ScenarioOptions options;
    options.seed = 2024;
    const auto report =
        scenario::run_scenario(sync, programs[i], g, placement, options);
    ASSERT_EQ(report.run.agents.size(), 2u);
    expect_matches(report.run.to_run_result(), kGoldenTraces[i]);
  }
}

// --- swarm gathering goldens ------------------------------------------------

/// Per-trial swarm trace: did trial t meet, at which round, with how many
/// agents co-located on the meeting vertex.
struct GoldenSwarmTrial {
  bool met;
  std::uint64_t meeting_round;
  std::uint64_t gathered_count;
};

struct GoldenSwarmCell {
  sim::Gathering gathering;
  std::uint64_t successes;
  double rounds_mean;
  double rounds_min;
  double rounds_max;
  double rounds_stddev;
  double mean_gathered;
  double mean_moves_a;
  double mean_moves_b;
  GoldenSwarmTrial trials[12];
};

// Captured 2026-08-08 from the build that introduced quorum/fraction
// gathering: explore-rally, k = 6 dropped anywhere on golden_graph(), zero
// delay, seed 77, 12 trials, printed with %.17g. Quorum(3) and
// Fraction(0.5) resolve to the same threshold at k = 6, so their rows are
// deliberately identical — divergence means threshold() broke, not that one
// row is redundant. The All row pins the same trials under the strictest
// predicate (and is where the per-trial rounds actually spread out).
const GoldenSwarmCell kGoldenSwarmCells[] = {
    {sim::Gathering::quorum_of(3), 12, 1.0833333333333333, 1.0, 2.0,
     0.28867513459481287, 3.6666666666666665, 1.0833333333333333,
     5.416666666666667,
     {{true, 2, 3}, {true, 1, 4}, {true, 1, 4}, {true, 1, 3}, {true, 1, 4},
      {true, 1, 4}, {true, 1, 3}, {true, 1, 4}, {true, 1, 4}, {true, 1, 3},
      {true, 1, 3}, {true, 1, 5}}},
    {sim::Gathering::fraction_of(0.5), 12, 1.0833333333333333, 1.0, 2.0,
     0.28867513459481287, 3.6666666666666665, 1.0833333333333333,
     5.416666666666667,
     {{true, 2, 3}, {true, 1, 4}, {true, 1, 4}, {true, 1, 3}, {true, 1, 4},
      {true, 1, 4}, {true, 1, 3}, {true, 1, 4}, {true, 1, 4}, {true, 1, 3},
      {true, 1, 3}, {true, 1, 5}}},
    {sim::Gathering::All, 12, 40.083333333333336, 2.0, 256.0,
     70.309004121848147, 6.0, 40.0, 200.16666666666666,
     {{true, 15, 6}, {true, 15, 6}, {true, 15, 6}, {true, 15, 6},
      {true, 2, 6}, {true, 74, 6}, {true, 29, 6}, {true, 256, 6},
      {true, 15, 6}, {true, 15, 6}, {true, 15, 6}, {true, 15, 6}}},
};

TEST(GoldenRegression, QuorumAndFractionGatheringOnFixedSeeds) {
  const auto g = golden_graph();
  const auto program = scenario::find_program("explore-rally");
  scenario::Scenario scen;
  scen.name = "golden-swarm";
  scen.summary = "golden swarm cell";
  scen.num_agents = 6;
  scen.placement = scenario::PlacementModel::RandomDistinct;
  scen.delay = scenario::DelayModel::None;
  for (const auto& golden : kGoldenSwarmCells) {
    SCOPED_TRACE(sim::to_string(golden.gathering));
    scen.gathering = golden.gathering;
    scenario::ScenarioOptions options;
    options.seed = 77;
    const runner::TrialRunner trial_runner(runner::RunnerOptions{1});
    const auto acc = scenario::run_scenario_trials(scen, program, g, options,
                                                   12, trial_runner);
    const auto agg = acc.aggregate();
    EXPECT_EQ(agg.trials, 12u);
    EXPECT_EQ(agg.successes, golden.successes);
    EXPECT_DOUBLE_EQ(agg.rounds.mean, golden.rounds_mean);
    EXPECT_DOUBLE_EQ(agg.rounds.min, golden.rounds_min);
    EXPECT_DOUBLE_EQ(agg.rounds.max, golden.rounds_max);
    EXPECT_DOUBLE_EQ(agg.rounds.stddev, golden.rounds_stddev);
    EXPECT_DOUBLE_EQ(agg.mean_gathered, golden.mean_gathered);
    EXPECT_DOUBLE_EQ(agg.mean_moves_a, golden.mean_moves_a);
    EXPECT_DOUBLE_EQ(agg.mean_moves_b, golden.mean_moves_b);
    EXPECT_EQ(agg.total_marks, 0u);  // GatherAtMin writes no whiteboards
    const auto outcomes = acc.sorted_outcomes();
    ASSERT_EQ(outcomes.size(), std::size(golden.trials));
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
      EXPECT_EQ(outcomes[t].met, golden.trials[t].met) << "trial " << t;
      EXPECT_EQ(outcomes[t].meeting_round, golden.trials[t].meeting_round)
          << "trial " << t;
      EXPECT_EQ(outcomes[t].gathered_count, golden.trials[t].gathered_count)
          << "trial " << t;
    }
  }
}

}  // namespace
}  // namespace fnr
