// Sweep-engine contract tests: spec parsing, grid expansion, sharding,
// graph caching, checkpoint round-trips, and the headline determinism
// guarantee — an interrupted-then-resumed campaign produces byte-identical
// merged JSON to an uninterrupted one (the CI smoke asserts the same thing
// through the bench/sweep CLI).
#include "sweep/engine.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "util/check.hpp"

namespace fnr::sweep {
namespace {

constexpr const char* kTinySpec = R"(
# two programs x one scenario x two topologies x two sizes
name       = tiny
trials     = 2
programs   = whiteboard, random-walk
scenarios  = sync-pair
topologies = ring, near-regular:deg=4
sizes      = 16, 32
seeds      = 1
)";

/// RAII temp file path (removed on destruction).
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

TEST(SweepSpec, ParsesAllAxes) {
  const SweepSpec spec = parse_spec(kTinySpec);
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.trials, 2u);
  EXPECT_EQ(spec.programs.size(), 2u);
  EXPECT_EQ(spec.scenarios, std::vector<std::string>{"sync-pair"});
  ASSERT_EQ(spec.topologies.size(), 2u);
  EXPECT_EQ(spec.topologies[0].key(), "ring");
  EXPECT_EQ(spec.topologies[1].key(), "near-regular:deg=4");
  EXPECT_EQ(spec.sizes, (std::vector<std::uint64_t>{16, 32}));
  EXPECT_EQ(spec.seeds, std::vector<std::uint64_t>{1});
}

TEST(SweepSpec, GatherAxisParsesPrunesAndKeysCells) {
  // The `gathers` axis crosses predicate overrides into the grid.
  // swarm-gather has k = 5, so the unreachable quorum?q=9 column must
  // prune (q > k expands to no cells), and every overridden cell's key
  // must carry its gather token so checkpoints distinguish the columns.
  const SweepSpec spec = parse_spec(
      "name       = gather-axis\n"
      "trials     = 1\n"
      "programs   = explore-rally\n"
      "scenarios  = swarm-gather\n"
      "topologies = ring\n"
      "sizes      = 16\n"
      "seeds      = 1\n"
      "gathers    = any-pair, quorum?q=3, quorum?q=9, fraction?f=0.5\n");
  ASSERT_EQ(spec.gathers.size(), 4u);
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 3u);  // q=9 > k=5 pruned
  std::set<std::string> keys;
  for (const auto& cell : cells) {
    ASSERT_TRUE(cell.gather.has_value());
    EXPECT_NE(cell.key().find("|gather=" + sim::to_string(*cell.gather)),
              std::string::npos)
        << cell.key();
    keys.insert(cell.key());
  }
  EXPECT_EQ(keys.size(), cells.size());  // overrides keep keys distinct

  // Malformed gather tokens fail at parse time, naming the line.
  const std::string head =
      "name = g\ntrials = 1\nprograms = explore-rally\n"
      "scenarios = swarm-gather\ntopologies = ring\nsizes = 16\nseeds = 1\n";
  EXPECT_THROW((void)parse_spec(head + "gathers = quorum?q=1\n"), CheckError);
  EXPECT_THROW((void)parse_spec(head + "gathers = rendezvous\n"), CheckError);
  EXPECT_THROW((void)parse_spec(head + "gathers = fraction?f=1.5\n"),
               CheckError);
}

TEST(SweepSpec, AgentsAxisParsesPrunesAndKeysCells) {
  // The `agents` axis crosses agent-count overrides into the grid, keyed
  // like gather overrides so checkpoints distinguish the columns. k = 20
  // exceeds ring's achieved n of 16, so that column prunes.
  const SweepSpec spec = parse_spec(
      "name       = k-axis\n"
      "trials     = 1\n"
      "programs   = explore-rally\n"
      "scenarios  = swarm-gather\n"
      "topologies = ring\n"
      "sizes      = 16\n"
      "seeds      = 1\n"
      "agents     = 2, 6, 20\n");
  ASSERT_EQ(spec.agents, (std::vector<std::uint64_t>{2, 6, 20}));
  const auto cells = expand(spec);
  ASSERT_EQ(cells.size(), 2u);
  std::set<std::string> keys;
  for (const auto& cell : cells) {
    ASSERT_TRUE(cell.k.has_value());
    EXPECT_NE(cell.key().find("|k=" + std::to_string(*cell.k)),
              std::string::npos)
        << cell.key();
    keys.insert(cell.key());
  }
  EXPECT_EQ(keys.size(), cells.size());  // overrides keep keys distinct

  // Out-of-range agent counts fail at validation, not expansion.
  EXPECT_THROW((void)parse_spec(
                   "name = k\ntrials = 1\nprograms = explore-rally\n"
                   "scenarios = swarm-gather\ntopologies = ring\n"
                   "sizes = 16\nseeds = 1\nagents = 1\n"),
               CheckError);
}

TEST(SweepSpec, AgentsAxisPrunesByScenarioCapability) {
  // sync-pair places an AdjacentPair: only k = 2 is meaningful, so the
  // k = 5 column expands to no cells rather than to broken ones.
  const auto pair_cells = expand(parse_spec(
      "name       = k-pair\n"
      "trials     = 1\n"
      "programs   = whiteboard\n"
      "scenarios  = sync-pair\n"
      "topologies = ring\n"
      "sizes      = 16\n"
      "seeds      = 1\n"
      "agents     = 2, 5\n"));
  ASSERT_EQ(pair_cells.size(), 1u);
  EXPECT_EQ(pair_cells[0].k, std::uint64_t{2});

  // swarm-quorum registers quorum_of(4): shrinking k below the registered
  // quorum would make the cell deterministically unsatisfiable, so k = 3
  // prunes while k = 4 survives.
  const auto quorum_cells = expand(parse_spec(
      "name       = k-quorum\n"
      "trials     = 1\n"
      "programs   = explore-rally\n"
      "scenarios  = swarm-quorum\n"
      "topologies = ring\n"
      "sizes      = 16\n"
      "seeds      = 1\n"
      "agents     = 3, 4\n"));
  ASSERT_EQ(quorum_cells.size(), 1u);
  EXPECT_EQ(quorum_cells[0].k, std::uint64_t{4});
}

TEST(SweepSpec, SpecsWithoutAgentsAxisKeepTheirHistoricalKeys) {
  // Adding the axis must not perturb existing grids: without an `agents`
  // line no cell carries a k override or a "|k=" key token, so old
  // checkpoints keep resolving.
  for (const auto& cell : expand(parse_spec(kTinySpec))) {
    EXPECT_FALSE(cell.k.has_value());
    EXPECT_EQ(cell.key().find("|k="), std::string::npos) << cell.key();
  }
}

TEST(SweepSpec, RejectsUnknownKeysProgramsAndFamilies) {
  EXPECT_THROW((void)parse_spec("bogus = 1"), CheckError);
  EXPECT_THROW((void)parse_spec("programs = quantum-walk\n"
                                "scenarios = sync-pair\n"
                                "topologies = ring\n"
                                "sizes = 16\nseeds = 1\n"),
               CheckError);
  EXPECT_THROW((void)parse_topology("klein-bottle"), CheckError);
  EXPECT_THROW((void)parse_topology("near-regular:degree=4"), CheckError);
  EXPECT_THROW((void)parse_spec("programs = whiteboard\n"
                                "scenarios = no-such-scenario\n"
                                "topologies = ring\n"
                                "sizes = 16\nseeds = 1\n"),
               CheckError);
}

TEST(SweepSpec, UnknownLabelErrorsNameTheLineAndEnumerateTheRegistry) {
  // An unknown program label: the error names the offending spec line and
  // lists the valid label set (not just "parsing failed").
  try {
    (void)parse_spec("name = e\ntrials = 1\n"
                     "programs = whiteboard, quantum-walk\n"
                     "scenarios = sync-pair\ntopologies = ring\n"
                     "sizes = 16\nseeds = 1\n");
    FAIL() << "unknown program must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("quantum-walk"), std::string::npos) << what;
    EXPECT_NE(what.find("random-walk"), std::string::npos) << what;
    EXPECT_NE(what.find("wait-and-sweep"), std::string::npos) << what;
  }
  // Same contract for an unknown scenario name.
  try {
    (void)parse_spec("name = e\ntrials = 1\nprograms = whiteboard\n"
                     "\n"
                     "scenarios = sync-pair, no-such-scenario\n"
                     "topologies = ring\nsizes = 16\nseeds = 1\n");
    FAIL() << "unknown scenario must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 5"), std::string::npos) << what;
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos) << what;
    EXPECT_NE(what.find("sync-pair"), std::string::npos) << what;
    EXPECT_NE(what.find("swarm-gather"), std::string::npos) << what;
  }
}

TEST(SweepSpec, WildcardAxesAndParameterizedProgramsParse) {
  const SweepSpec spec = parse_spec(
      "name = wild\ntrials = 1\n"
      "programs = *\n"
      "scenarios = *\n"
      "topologies = ring\nsizes = 16\nseeds = 1\n");
  EXPECT_GE(spec.programs.size(), 8u);
  EXPECT_GE(spec.scenarios.size(), 7u);
  EXPECT_EQ(spec.programs.front().label(), "whiteboard");
  EXPECT_EQ(spec.scenarios.front(), "sync-pair");

  // A `?key=value` suffix is part of the program's cell identity.
  const SweepSpec lazy = parse_spec(
      "name = lazy\ntrials = 1\n"
      "programs = random-walk?laziness=0.25\n"
      "scenarios = sync-pair\ntopologies = ring\nsizes = 16\nseeds = 1\n");
  ASSERT_EQ(lazy.programs.size(), 1u);
  EXPECT_EQ(lazy.programs[0].label(), "random-walk?laziness=0.25");
  const auto grid = expand(lazy);
  ASSERT_EQ(grid.size(), 1u);
  EXPECT_NE(grid[0].key().find("random-walk?laziness=0.25"),
            std::string::npos);
  EXPECT_THROW((void)parse_spec(
                   "name = bad\ntrials = 1\n"
                   "programs = random-walk?bogus=1\n"
                   "scenarios = sync-pair\ntopologies = ring\n"
                   "sizes = 16\nseeds = 1\n"),
               CheckError);
}

TEST(SweepSpec, RejectsOversizeAndEmptyAxes) {
  EXPECT_THROW((void)parse_spec("programs = whiteboard\n"
                                "scenarios = sync-pair\n"
                                "topologies = ring\n"
                                "sizes = 2097152\nseeds = 1\n"),
               CheckError);  // > 2^20
  EXPECT_THROW((void)parse_spec("programs = whiteboard\n"
                                "scenarios = sync-pair\n"
                                "sizes = 16\nseeds = 1\n"),
               CheckError);  // no topologies
}

TEST(SweepSpec, PredefinedSpecsAllParse) {
  for (const auto& [name, text] : predefined_specs()) {
    const SweepSpec spec = parse_spec(text);
    EXPECT_EQ(spec.name, name);
    EXPECT_FALSE(expand(spec).empty());
  }
}

TEST(SweepSpec, TopologyResolvesAchievedSizes) {
  EXPECT_EQ(parse_topology("torus").achieved_n(1000), 31u * 31u);
  EXPECT_EQ(parse_topology("grid").achieved_n(1024), 1024u);
  EXPECT_EQ(parse_topology("hypercube").achieved_n(1000), 512u);
  EXPECT_EQ(parse_topology("hypercube").achieved_n(1024), 1024u);
  EXPECT_EQ(parse_topology("ring").achieved_n(1000), 1000u);
  // Families honor their achieved size when building.
  const auto g = parse_topology("torus").build(1000, 1);
  EXPECT_EQ(g.num_vertices(), 31u * 31u);
}

TEST(SweepSpec, TopologyBuildIsDeterministicPerSeed) {
  const TopologySpec topo = parse_topology("near-regular:deg=4");
  const auto a = topo.build(64, 5);
  const auto b = topo.build(64, 5);
  const auto c = topo.build(64, 6);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (graph::VertexIndex v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
  EXPECT_NE(c.num_edges(), 0u);  // different seed still builds something
}

TEST(SweepGrid, ExpansionIsDeterministicWithDenseUniqueKeys) {
  const SweepSpec spec = parse_spec(kTinySpec);
  const auto grid_a = expand(spec);
  const auto grid_b = expand(spec);
  ASSERT_EQ(grid_a.size(), 8u);  // 2 programs x 1 scenario x 2 topo x 2 sizes
  std::set<std::string> keys;
  for (std::size_t i = 0; i < grid_a.size(); ++i) {
    EXPECT_EQ(grid_a[i].index, i);
    EXPECT_EQ(grid_a[i].key(), grid_b[i].key());
    keys.insert(grid_a[i].key());
  }
  EXPECT_EQ(keys.size(), grid_a.size());
}

TEST(SweepGrid, ShardsPartitionTheGrid) {
  const SweepSpec spec = parse_spec(kTinySpec);
  const auto grid = expand(spec);
  std::set<std::uint64_t> covered;
  for (std::uint32_t shard = 0; shard < 3; ++shard)
    for (const auto& cell : grid)
      if (cell.index % 3 == shard) {
        EXPECT_TRUE(covered.insert(cell.index).second);
      }
  EXPECT_EQ(covered.size(), grid.size());
}

TEST(GraphCache, ReusesGeneratedTopologiesAndEvictsLru) {
  const SweepSpec spec = parse_spec(kTinySpec);
  const auto grid = expand(spec);
  GraphCache cache(1);
  // Same graph key twice: one miss, one hit returning the same object.
  const graph::Graph& first = cache.get(grid[0]);
  const graph::Graph& again = cache.get(grid[0]);
  EXPECT_EQ(&first, &again);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A different key evicts the only slot; re-requesting the first misses.
  (void)cache.get(grid[1]);
  (void)cache.get(grid[0]);
  EXPECT_EQ(cache.misses(), 3u);
}

TEST(SweepCheckpoint, RoundTripsOkAndFailedCells) {
  const SweepSpec spec = parse_spec(kTinySpec);
  const auto grid = expand(spec);
  CellResult ok_cell;
  ok_cell.cell = grid[0];
  ok_cell.agg_json = "{\"trials\":2,\"successes\":2}";
  ok_cell.seconds = 0.25;
  CellResult failed_cell;
  failed_cell.cell = grid[1];
  failed_cell.ok = false;
  failed_cell.error = "check failed: \"quoted\" and\nnewlined";
  const TempPath path("sweep_ckpt_roundtrip.jsonl");
  {
    std::ofstream out(path.str());
    out << checkpoint_line(ok_cell) << "\n"
        << checkpoint_line(failed_cell) << "\n";
  }
  const auto loaded = load_checkpoint(path.str());
  ASSERT_EQ(loaded.size(), 2u);
  const auto& ok_entry = loaded.at(grid[0].key());
  EXPECT_TRUE(ok_entry.ok);
  EXPECT_EQ(ok_entry.agg_json, ok_cell.agg_json);  // verbatim bytes
  EXPECT_DOUBLE_EQ(ok_entry.seconds, 0.25);
  const auto& failed_entry = loaded.at(grid[1].key());
  EXPECT_FALSE(failed_entry.ok);
  EXPECT_EQ(failed_entry.error.find('"'), std::string::npos);  // sanitized
}

TEST(SweepCheckpoint, ToleratesTornFinalLine) {
  const SweepSpec spec = parse_spec(kTinySpec);
  const auto grid = expand(spec);
  CellResult result;
  result.cell = grid[0];
  result.agg_json = "{\"trials\":2}";
  const TempPath path("sweep_ckpt_torn.jsonl");
  {
    std::ofstream out(path.str());
    out << checkpoint_line(result) << "\n";
    out << "{\"key\":\"half-writ";  // killed mid-write
  }
  const auto loaded = load_checkpoint(path.str());
  EXPECT_EQ(loaded.size(), 1u);
  EXPECT_TRUE(loaded.contains(grid[0].key()));
}

TEST(SweepCheckpoint, ResumingOverATornLineCompactsTheFile) {
  // A kill -9 mid-write leaves a torn, newline-less final line. Resuming
  // must not append after those bytes — that would corrupt the next
  // record and silently drop every later cell on the *following* resume.
  const SweepSpec spec = parse_spec(kTinySpec);
  const TempPath checkpoint("sweep_torn_resume.jsonl");
  SweepOptions interrupted;
  interrupted.threads = 1;
  interrupted.checkpoint_path = checkpoint.str();
  interrupted.max_cells = 2;
  ASSERT_FALSE(run_sweep(spec, interrupted).complete);
  {
    std::ofstream out(checkpoint.str(), std::ios::app);
    out << "{\"key\":\"torn-mid-wri";  // no newline, killed mid-write
  }
  SweepOptions resumed = interrupted;
  resumed.max_cells = 0;
  resumed.resume = true;
  const auto finished = run_sweep(spec, resumed);
  ASSERT_TRUE(finished.complete);
  EXPECT_EQ(finished.restored, 2u);
  // Every cell of the grid is now a loadable checkpoint line.
  EXPECT_EQ(load_checkpoint(checkpoint.str()).size(), expand(spec).size());
}

TEST(SweepCheckpoint, CorruptMiddleLineFailsLoudlyWithItsLineNumber) {
  // A torn *final* line is the signature of an interrupt and is dropped;
  // garbage anywhere before that is real corruption. Stopping there
  // silently (the old behavior) would discard every later completed cell
  // and re-run them as if the campaign had barely started.
  const SweepSpec spec = parse_spec(kTinySpec);
  const auto grid = expand(spec);
  CellResult first, third;
  first.cell = grid[0];
  first.agg_json = "{\"trials\":2}";
  third.cell = grid[2];
  third.agg_json = "{\"trials\":2}";
  const TempPath path("sweep_ckpt_corrupt_middle.jsonl");
  {
    std::ofstream out(path.str());
    out << checkpoint_line(first) << "\n"
        << "{\"key\":\"not a complete reco\n"  // corrupt, NOT final
        << checkpoint_line(third) << "\n";
  }
  try {
    (void)load_checkpoint(path.str());
    FAIL() << "corrupt middle line must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find(path.str()), std::string::npos) << what;
  }
}

TEST(SweepCheckpoint, MissingFileIsEmpty) {
  EXPECT_TRUE(load_checkpoint(testing::TempDir() +
                              "sweep_no_such_checkpoint.jsonl")
                  .empty());
}

TEST(SweepEngine, RunsACompleteCampaign) {
  const SweepSpec spec = parse_spec(kTinySpec);
  SweepOptions options;
  options.threads = 2;
  const auto result = run_sweep(spec, options);
  EXPECT_TRUE(result.complete);
  EXPECT_EQ(result.cells.size(), 8u);
  EXPECT_EQ(result.executed, 8u);
  EXPECT_EQ(result.restored, 0u);
  // 4 distinct graph keys (2 topologies x 2 sizes), each reused by 2 cells.
  EXPECT_EQ(result.graph_cache_misses, 4u);
  EXPECT_EQ(result.graph_cache_hits, 4u);
  for (const auto& cell : result.cells) {
    EXPECT_TRUE(cell.ok) << cell.cell.key() << ": " << cell.error;
    EXPECT_FALSE(cell.agg_json.empty());
  }
}

TEST(SweepEngine, InterruptedThenResumedMatchesUninterruptedByteForByte) {
  const SweepSpec spec = parse_spec(kTinySpec);

  SweepOptions uninterrupted;
  uninterrupted.threads = 2;
  const auto full = run_sweep(spec, uninterrupted);
  ASSERT_TRUE(full.complete);
  const std::string full_json = to_json(spec, full.cells);

  const TempPath checkpoint("sweep_resume.jsonl");
  SweepOptions interrupted;
  interrupted.threads = 2;
  interrupted.checkpoint_path = checkpoint.str();
  interrupted.max_cells = 3;
  const auto partial = run_sweep(spec, interrupted);
  EXPECT_FALSE(partial.complete);
  EXPECT_EQ(partial.executed, 3u);

  SweepOptions resumed = interrupted;
  resumed.threads = 1;  // thread count must not leak into the artifact
  resumed.max_cells = 0;
  resumed.resume = true;
  const auto finished = run_sweep(spec, resumed);
  ASSERT_TRUE(finished.complete);
  EXPECT_EQ(finished.restored, 3u);
  EXPECT_EQ(finished.executed, 5u);
  EXPECT_EQ(to_json(spec, finished.cells), full_json);
}

TEST(SweepEngine, ShardMergeMatchesSingleShardRun) {
  const SweepSpec spec = parse_spec(kTinySpec);
  SweepOptions single;
  single.threads = 2;
  const auto full = run_sweep(spec, single);
  const std::string full_json = to_json(spec, full.cells);

  const TempPath ckpt0("sweep_shard0.jsonl");
  const TempPath ckpt1("sweep_shard1.jsonl");
  std::vector<std::map<std::string, CheckpointEntry>> checkpoints;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    SweepOptions options;
    options.threads = 1;
    options.shard_index = shard;
    options.shard_count = 2;
    options.checkpoint_path = shard == 0 ? ckpt0.str() : ckpt1.str();
    const auto result = run_sweep(spec, options);
    ASSERT_TRUE(result.complete);
    ASSERT_EQ(result.cells.size(), 4u);
    checkpoints.push_back(load_checkpoint(options.checkpoint_path));
  }
  const auto merged = results_from_checkpoints(spec, checkpoints);
  EXPECT_EQ(to_json(spec, merged), full_json);

  // Merge refuses a grid the checkpoints do not cover.
  checkpoints.pop_back();
  EXPECT_THROW((void)results_from_checkpoints(spec, checkpoints), CheckError);
}

TEST(SweepEngine, FailedCellsAreRecordedNotFatal) {
  // near-regular with deg >= n cannot build: the cell fails
  // deterministically (no randomness reaches the check) while the ring
  // cell still runs — a bad cell must be recorded, not kill the campaign.
  const SweepSpec spec = parse_spec("name = failing\n"
                                    "trials = 2\n"
                                    "programs = whiteboard\n"
                                    "scenarios = sync-pair\n"
                                    "topologies = near-regular:deg=100, ring\n"
                                    "sizes = 16\n"
                                    "seeds = 1\n");
  const TempPath checkpoint("sweep_failing.jsonl");
  SweepOptions options;
  options.threads = 1;
  options.checkpoint_path = checkpoint.str();
  const auto result = run_sweep(spec, options);
  ASSERT_TRUE(result.complete);
  ASSERT_EQ(result.cells.size(), 2u);
  const CellResult& failed = result.cells[0];  // canonical order
  ASSERT_FALSE(failed.ok);
  EXPECT_NE(failed.error.find("deg must be in [1, n)"), std::string::npos);
  EXPECT_TRUE(failed.agg_json.empty());
  EXPECT_TRUE(result.cells[1].ok);
  const std::string json = to_json(spec, result.cells);
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos);

  // The failure round-trips through the checkpoint: a resumed campaign
  // restores it (rather than retrying forever) and emits identical JSON.
  SweepOptions resumed = options;
  resumed.resume = true;
  const auto again = run_sweep(spec, resumed);
  ASSERT_TRUE(again.complete);
  EXPECT_EQ(again.restored, 2u);
  EXPECT_EQ(again.executed, 0u);
  EXPECT_EQ(to_json(spec, again.cells), json);
}

TEST(SweepReport, CsvListsOkCellsWithAggregateColumns) {
  const SweepSpec spec = parse_spec(kTinySpec);
  SweepOptions options;
  options.threads = 1;
  const auto result = run_sweep(spec, options);
  const std::string csv = to_csv(result.cells);
  std::istringstream lines(csv);
  std::string header;
  std::getline(lines, header);
  EXPECT_EQ(header.substr(0, 6), "label,");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(lines, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 8u);
}

}  // namespace
}  // namespace fnr::sweep
