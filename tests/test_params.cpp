// Unit tests for core::Params: presets, derived quantities, analytic bounds.
#include <gtest/gtest.h>

#include "core/params.hpp"
#include "util/check.hpp"

namespace fnr::core {
namespace {

TEST(Params, PaperPresetMatchesPseudocode) {
  const auto p = Params::paper();
  EXPECT_DOUBLE_EQ(p.sample_visit_factor, 96.0);
  EXPECT_DOUBLE_EQ(p.sample_threshold_factor, 150.0);
  EXPECT_DOUBLE_EQ(p.probe_factor, 4.0);
  EXPECT_DOUBLE_EQ(p.heavy_divisor, 8.0);
  EXPECT_DOUBLE_EQ(p.light_divisor, 2.0);
  EXPECT_DOUBLE_EQ(p.mark_factor, 4.0);
  EXPECT_DOUBLE_EQ(p.c2, 18.0);
}

TEST(Params, PracticalPreservesThresholdOrdering) {
  // The Sample analysis needs: light expectation (f·ln n) < threshold
  // (t·ln n) < 4α-heavy expectation (4f·ln n).
  for (const auto& p : {Params::paper(), Params::practical()}) {
    EXPECT_LT(p.sample_visit_factor, p.sample_threshold_factor);
    EXPECT_LT(p.sample_threshold_factor, 4.0 * p.sample_visit_factor);
  }
}

TEST(Params, SampleVisitsScalesWithGammaOverAlpha) {
  const auto p = Params::practical();
  const auto small = p.sample_visits(100, 10.0, 1000);
  const auto doubled_gamma = p.sample_visits(200, 10.0, 1000);
  const auto doubled_alpha = p.sample_visits(100, 20.0, 1000);
  EXPECT_NEAR(static_cast<double>(doubled_gamma),
              2.0 * static_cast<double>(small), 2.0);
  EXPECT_NEAR(static_cast<double>(doubled_alpha),
              0.5 * static_cast<double>(small), 2.0);
}

TEST(Params, SampleVisitsEmptyGammaIsZero) {
  EXPECT_EQ(Params::practical().sample_visits(0, 5.0, 100), 0u);
}

TEST(Params, SampleVisitsRejectsNonPositiveAlpha) {
  EXPECT_THROW((void)Params::practical().sample_visits(10, 0.0, 100),
               CheckError);
}

TEST(Params, ThresholdGrowsLogarithmically) {
  const auto p = Params::practical();
  const auto t1 = p.sample_threshold(1 << 10);
  const auto t2 = p.sample_threshold(1 << 20);
  EXPECT_NEAR(static_cast<double>(t2), 2.0 * static_cast<double>(t1), 2.0);
}

TEST(Params, BlockWidthIsSqrtDelta) {
  const auto p = Params::practical();
  EXPECT_EQ(p.block_width(100.0), 10u);
  EXPECT_EQ(p.block_width(101.0), 11u);  // ceiling
  EXPECT_EQ(p.block_width(1.0), 1u);
}

TEST(Params, WaitCoversTwoPasses) {
  const auto p = Params::practical();
  for (std::size_t n : {64u, 1024u, 65536u}) {
    EXPECT_GE(p.a_wait_rounds(n), 2 * p.b_pass_rounds(n));
    EXPECT_GE(p.phase_rounds(n), p.block_cap(n) * p.a_wait_rounds(n));
  }
}

TEST(Params, ConstructBudgetShrinksWithDelta) {
  const auto p = Params::practical();
  const auto loose = p.construct_round_budget(4096, 64.0);
  const auto tight = p.construct_round_budget(4096, 512.0);
  EXPECT_GT(loose, tight);
}

TEST(Params, MarkProbabilityIsClamped) {
  const auto p = Params::paper();
  EXPECT_DOUBLE_EQ(p.mark_probability(1.0, 1024), 1.0);  // 4 ln n > 1
  EXPECT_LT(p.mark_probability(1e6, 1024), 0.1);
}

TEST(Bounds, Theorem1ShapeIsMonotone) {
  // Larger δ (at fixed n, Δ) must shrink the bound.
  EXPECT_GT(theorem1_bound(4096, 64, 256), theorem1_bound(4096, 128, 256));
  // Larger Δ (at fixed n, δ) must grow it.
  EXPECT_LT(theorem1_bound(4096, 64, 128), theorem1_bound(4096, 64, 4096));
}

TEST(Bounds, Theorem2ShapeIsMonotone) {
  EXPECT_GT(theorem2_bound(4096, 64), theorem2_bound(4096, 256));
  EXPECT_LT(theorem2_bound(4096, 64), theorem2_bound(65536, 64));
}

TEST(Params, DescribeMentionsPresetValues) {
  const auto text = Params::paper().describe();
  EXPECT_NE(text.find("96"), std::string::npos);
  EXPECT_NE(text.find("150"), std::string::npos);
}

}  // namespace
}  // namespace fnr::core
