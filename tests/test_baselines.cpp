// Baseline algorithms: the trivial O(Δ) sweep, O(n) exploration, random
// walks, and the Anderson-Weber complete-graph algorithm.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/anderson_weber.hpp"
#include "baselines/random_walk.hpp"
#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "test_support.hpp"
#include "util/stats.hpp"

namespace fnr::baselines {
namespace {

TEST(WaitAndSweep, MeetsWithinTwoDegreeRounds) {
  Rng rng(3);
  const auto g = graph::make_near_regular(128, 8, rng);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng prng(seed);
    const auto placement = sim::random_adjacent_placement(g, prng);
    sim::Scheduler scheduler(g, sim::Model::port_only());
    SweepAgent a;
    WaitingAgent b;
    const auto result = scheduler.run(
        a, b, placement, 2 * g.max_degree() + 4);
    ASSERT_TRUE(result.met) << "seed " << seed;
    EXPECT_LE(result.meeting_round, 2 * g.degree(placement.a_start));
  }
}

TEST(WaitAndSweep, WorksWithoutNeighborhoodIdsOrWhiteboards) {
  // The whole point of the trivial bound: it needs nothing but ports.
  const auto g = graph::make_complete(32);
  sim::Scheduler scheduler(g, sim::Model{false, false});
  SweepAgent a;
  WaitingAgent b;
  const auto result = scheduler.run(a, b, sim::Placement{0, 17}, 100);
  EXPECT_TRUE(result.met);
}

TEST(WaitAndSweep, LastPortIsWorstCase) {
  // On a star with b at the highest-index leaf, the sweep needs ~2Δ rounds.
  const auto g = graph::make_star(50);
  sim::Scheduler scheduler(g, sim::Model::port_only());
  SweepAgent a;
  WaitingAgent b;
  const auto result = scheduler.run(a, b, sim::Placement{0, 50}, 200);
  ASSERT_TRUE(result.met);
  EXPECT_GE(result.meeting_round, 2u * 49u);
}

TEST(WaitAndExplore, CoversEveryVertexWithinTwoN) {
  Rng rng(5);
  const auto g = graph::make_near_regular(128, 5, rng);
  sim::Scheduler scheduler(g, sim::Model::full());
  ExploreAgent agent;
  const auto result = scheduler.run_single(agent, 0, 4 * g.num_vertices());
  (void)result;
  EXPECT_EQ(agent.visited_count(), g.num_vertices());
  EXPECT_LE(result.metrics.moves[0], 2 * g.num_vertices());
}

TEST(WaitAndExplore, MeetsOnRingInLinearTime) {
  const auto g = graph::make_ring(64);
  sim::Scheduler scheduler(g, sim::Model::full());
  ExploreAgent a;
  WaitingAgent b;
  const auto result = scheduler.run(a, b, sim::Placement{0, 32}, 300);
  ASSERT_TRUE(result.met);
  EXPECT_LE(result.meeting_round, 2u * 64u);
}

TEST(WaitAndExplore, HaltsAfterFullExploration) {
  const auto g = graph::make_path(16);
  sim::Scheduler scheduler(g, sim::Model::full());
  ExploreAgent agent;
  (void)scheduler.run_single(agent, 0, 100);
  EXPECT_TRUE(agent.finished());
}

TEST(RandomWalk, TwoWalkersMeetOnCompleteGraph) {
  const auto g = graph::make_complete(32);
  int met = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Scheduler scheduler(g, sim::Model::port_only());
    RandomWalkAgent a(Rng(seed, 1));
    RandomWalkAgent b(Rng(seed, 2));
    const auto result =
        scheduler.run(a, b, sim::Placement{0, 1}, 100 * g.num_vertices());
    met += result.met;
  }
  EXPECT_EQ(met, 10);
}

TEST(RandomWalk, LazinessBreaksBipartiteParity) {
  // On an even ring two synchronized non-lazy walkers at odd distance can
  // co-locate only via lazy steps.
  const auto g = graph::make_ring(8);
  sim::Scheduler scheduler(g, sim::Model::port_only());
  RandomWalkAgent a(Rng(3, 1), 0.5);
  RandomWalkAgent b(Rng(3, 2), 0.5);
  const auto result = scheduler.run(a, b, sim::Placement{0, 1}, 20000);
  EXPECT_TRUE(result.met);
}

TEST(AndersonWeber, MeetsOnCompleteGraph) {
  const auto g = graph::make_complete(256);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    sim::Scheduler scheduler(g, sim::Model::full());
    AndersonWeberAgentA a{Rng(seed, 1)};
    AndersonWeberAgentB b{Rng(seed, 2)};
    const auto result =
        scheduler.run(a, b, sim::Placement{3, 200}, 50 * g.num_vertices());
    EXPECT_TRUE(result.met) << "seed " << seed;
  }
}

TEST(AndersonWeber, SqrtNScalingIsPlausible) {
  // Median meeting time on K_n should scale far below n (birthday bound).
  const auto g = graph::make_complete(1024);
  std::vector<double> rounds;
  for (std::uint64_t seed = 1; seed <= 9; ++seed) {
    sim::Scheduler scheduler(g, sim::Model::full());
    AndersonWeberAgentA a{Rng(seed, 1)};
    AndersonWeberAgentB b{Rng(seed, 2)};
    const auto result =
        scheduler.run(a, b, sim::Placement{0, 1}, 100 * g.num_vertices());
    ASSERT_TRUE(result.met);
    rounds.push_back(static_cast<double>(result.meeting_round));
  }
  const double median = summarize(rounds).median;
  // ~4·sqrt(n) expected probes with 2 rounds each; allow a wide margin but
  // stay well under n = 1024.
  EXPECT_LT(median, 512.0);
}

TEST(AndersonWeber, RejectsNonCompleteGraphs) {
  const auto g = graph::make_ring(16);
  sim::Scheduler scheduler(g, sim::Model::full());
  AndersonWeberAgentA a{Rng(1, 1)};
  AndersonWeberAgentB b{Rng(1, 2)};
  EXPECT_THROW((void)scheduler.run(a, b, sim::Placement{0, 1}, 10),
               CheckError);
}

}  // namespace
}  // namespace fnr::baselines
