// The scenario engine: k-agent runs, wake delays, gathering predicates, the
// scenario registry, and the invariant the whole refactor hangs on — a
// k = 2, zero-delay scenario is bit-for-bit the classic synchronous
// two-agent scheduler.
#include <gtest/gtest.h>

#include "baselines/gather.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "graph/analysis.hpp"
#include "graph/builder.hpp"
#include "scenario/run.hpp"
#include "test_support.hpp"

namespace fnr {
namespace {

using test::bits_equal;

/// Walks back and forth through port 0 forever.
class PacingAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View&) override { return sim::Action::move(0); }
};

graph::Graph two_path() {
  graph::GraphBuilder builder(2);
  builder.add_edge(0, 1);
  return std::move(builder).build_identity_ids();
}

TEST(ScenarioEngine, ZeroDelayPairMatchesClassicRun) {
  // Deterministic agents, identical placements: the scenario engine's k=2,
  // zero-delay projection must equal Scheduler::run field for field.
  const auto g = test::dense_graph(96, 3);
  sim::Scheduler scheduler(g, sim::Model::full());
  Rng rng(77, 3);
  const auto pair = sim::random_adjacent_placement(g, rng);

  PacingAgent a1;
  baselines::WaitingAgent b1;
  const auto classic = scheduler.run(a1, b1, pair, 64);

  PacingAgent a2;
  baselines::WaitingAgent b2;
  sim::ScenarioPlacement placement;
  placement.starts = {pair.a_start, pair.b_start};
  const auto scenario_run = scheduler.run_scenario(
      {&a2, &b2}, placement, sim::Gathering::AnyPair, 64);
  const auto projected = scenario_run.to_run_result();

  EXPECT_EQ(classic.met, projected.met);
  EXPECT_EQ(classic.meeting_round, projected.meeting_round);
  EXPECT_EQ(classic.meeting_vertex, projected.meeting_vertex);
  EXPECT_EQ(classic.metrics.rounds, projected.metrics.rounds);
  EXPECT_EQ(classic.metrics.moves, projected.metrics.moves);
  EXPECT_EQ(classic.metrics.whiteboard_reads,
            projected.metrics.whiteboard_reads);
  EXPECT_EQ(classic.metrics.whiteboard_writes,
            projected.metrics.whiteboard_writes);
  EXPECT_EQ(classic.metrics.whiteboards_used,
            projected.metrics.whiteboards_used);
}

TEST(ScenarioEngine, SleepingAgentIsPhysicallyPresent) {
  // a paces onto the sleeping b's vertex: co-location with a sleeper is a
  // meeting (the sleeper is there, it just has not run yet).
  const auto g = two_path();
  sim::Scheduler scheduler(g, sim::Model::full());
  PacingAgent a, b;
  sim::ScenarioPlacement placement;
  placement.starts = {0, 1};
  placement.wake_delays = {0, 10};
  const auto result =
      scheduler.run_scenario({&a, &b}, placement, sim::Gathering::AnyPair, 50);
  EXPECT_TRUE(result.met);
  EXPECT_EQ(result.meeting_round, 1u);
  EXPECT_EQ(result.meeting_vertex, 1u);
  EXPECT_EQ(result.agents[1].moves, 0u);  // b never woke
}

TEST(ScenarioEngine, DelayBreaksThePacingParityLock) {
  // Two synchronized pacers on an edge swap endpoints forever (the classic
  // convention test). Any odd wake offset breaks the parity and they meet.
  const auto g = two_path();
  sim::Scheduler scheduler(g, sim::Model::full());
  {
    PacingAgent a, b;
    sim::ScenarioPlacement placement;
    placement.starts = {0, 1};
    const auto sync = scheduler.run_scenario({&a, &b}, placement,
                                             sim::Gathering::AnyPair, 50);
    EXPECT_FALSE(sync.met);
  }
  {
    PacingAgent a, b;
    sim::ScenarioPlacement placement;
    placement.starts = {0, 1};
    placement.wake_delays = {0, 1};
    const auto delayed = scheduler.run_scenario({&a, &b}, placement,
                                                sim::Gathering::AnyPair, 50);
    EXPECT_TRUE(delayed.met);
    EXPECT_EQ(delayed.meeting_round, 1u);
  }
}

/// Records the round counter it observes on its first step.
class ClockProbeAgent final : public sim::Agent {
 public:
  sim::Action step(const sim::View& view) override {
    if (!first_round_.has_value()) first_round_ = view.round();
    last_round_ = view.round();
    return sim::Action::stay();
  }
  std::optional<std::uint64_t> first_round_;
  std::uint64_t last_round_ = 0;
};

TEST(ScenarioEngine, DelayedAgentsRunOnTheirLocalClock) {
  // A program written against view.round() must see 0 on its first awake
  // round — delayed-start agents run unmodified on their own clock.
  graph::GraphBuilder builder(3);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  const auto g = std::move(builder).build_identity_ids();
  sim::Scheduler scheduler(g, sim::Model::full());
  ClockProbeAgent a, b;
  sim::ScenarioPlacement placement;
  placement.starts = {0, 2};
  placement.wake_delays = {0, 7};
  const auto result =
      scheduler.run_scenario({&a, &b}, placement, sim::Gathering::AnyPair, 20);
  EXPECT_FALSE(result.met);
  ASSERT_TRUE(a.first_round_.has_value());
  ASSERT_TRUE(b.first_round_.has_value());
  EXPECT_EQ(*a.first_round_, 0u);
  EXPECT_EQ(*b.first_round_, 0u);  // local, not global round 7
  EXPECT_EQ(a.last_round_, 19u);
  EXPECT_EQ(b.last_round_, 12u);  // 20 global rounds - 7 asleep - 1
}

/// Deterministic seeded walker: one uniform step per round.
class SeededWalkerAgent final : public sim::Agent {
 public:
  explicit SeededWalkerAgent(std::uint64_t seed) noexcept : rng_(seed, 21) {}
  sim::Action step(const sim::View& view) override {
    return sim::Action::move(
        static_cast<std::size_t>(rng_.below(view.degree())));
  }

 private:
  Rng rng_;
};

TEST(ScenarioEngine, UniformWakeDelayIsAPureTimeShift) {
  // The scheduler header's tie-break contract: k agents sharing one
  // identical wake delay d behave exactly like the zero-delay run prefixed
  // by d inert rounds. Every observable must shift by exactly d — meeting
  // round included — with the meeting vertex, pair, gathered count, and
  // per-agent move totals untouched.
  const auto g = test::dense_graph(48, 9, 6);
  sim::Scheduler scheduler(g, sim::Model::full());
  constexpr std::uint64_t kDelay = 13;
  constexpr std::uint64_t kCap = 256;

  const auto run_with_delay = [&](std::uint64_t delay, std::uint64_t cap) {
    SeededWalkerAgent a(101), b(202), c(303);
    sim::ScenarioPlacement placement;
    placement.starts = {0, 17, 33};
    if (delay > 0) placement.wake_delays.assign(3, delay);
    return scheduler.run_scenario({&a, &b, &c}, placement,
                                  sim::Gathering::quorum_of(2), cap);
  };

  const auto base = run_with_delay(0, kCap);
  const auto shifted = run_with_delay(kDelay, kCap + kDelay);
  ASSERT_TRUE(base.met);  // three walkers on 48 vertices meet fast
  ASSERT_TRUE(shifted.met);
  EXPECT_EQ(shifted.meeting_round, base.meeting_round + kDelay);
  EXPECT_EQ(shifted.meeting_vertex, base.meeting_vertex);
  EXPECT_EQ(shifted.meeting_agent_a, base.meeting_agent_a);
  EXPECT_EQ(shifted.meeting_agent_b, base.meeting_agent_b);
  EXPECT_EQ(shifted.gathered_count, base.gathered_count);
  ASSERT_EQ(shifted.agents.size(), base.agents.size());
  for (std::size_t i = 0; i < base.agents.size(); ++i) {
    EXPECT_EQ(shifted.agents[i].wake_delay, kDelay);
    EXPECT_EQ(shifted.agents[i].moves, base.agents[i].moves) << "agent " << i;
  }
}

TEST(ScenarioEngine, AllMeetIsStricterThanAnyPair) {
  // Three waiters, two of them adjacent and one pacing between: with the
  // static trio 0/1/2 on a path, agents 0 and 1 co-locate when 0 paces onto
  // 1 — any-pair ends there, all-meet never holds.
  graph::GraphBuilder builder(4);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 3);
  const auto g = std::move(builder).build_identity_ids();
  sim::Scheduler scheduler(g, sim::Model::full());
  {
    PacingAgent a;
    baselines::WaitingAgent b, c;
    sim::ScenarioPlacement placement;
    placement.starts = {0, 1, 3};
    const auto result = scheduler.run_scenario({&a, &b, &c}, placement,
                                               sim::Gathering::AnyPair, 30);
    EXPECT_TRUE(result.met);
    EXPECT_EQ(result.meeting_round, 1u);
    EXPECT_EQ(result.meeting_agent_a, 0u);
    EXPECT_EQ(result.meeting_agent_b, 1u);
  }
  {
    PacingAgent a;
    baselines::WaitingAgent b, c;
    sim::ScenarioPlacement placement;
    placement.starts = {0, 1, 3};
    const auto result = scheduler.run_scenario({&a, &b, &c}, placement,
                                               sim::Gathering::All, 30);
    EXPECT_FALSE(result.met);
    EXPECT_EQ(result.rounds, 30u);
  }
}

TEST(ScenarioEngine, RejectsDuplicateStartsAndBadSizes) {
  const auto g = two_path();
  sim::Scheduler scheduler(g, sim::Model::full());
  PacingAgent a, b;
  sim::ScenarioPlacement placement;
  placement.starts = {1, 1};
  EXPECT_THROW((void)scheduler.run_scenario({&a, &b}, placement,
                                            sim::Gathering::AnyPair, 10),
               CheckError);
  placement.starts = {0, 1};
  placement.wake_delays = {1};  // wrong arity
  EXPECT_THROW((void)scheduler.run_scenario({&a, &b}, placement,
                                            sim::Gathering::AnyPair, 10),
               CheckError);
  EXPECT_THROW((void)scheduler.run_scenario({&a}, {{0}, {}},
                                            sim::Gathering::AnyPair, 10),
               CheckError);
}

// --- registry ----------------------------------------------------------------

TEST(ScenarioRegistry, BuiltinsAreValidAndFindable) {
  const auto& scenarios = scenario::all_scenarios();
  ASSERT_GE(scenarios.size(), 7u);
  EXPECT_EQ(scenarios.front().name, "sync-pair");
  for (const auto& s : scenarios) {
    EXPECT_NO_THROW(s.validate());
    EXPECT_TRUE(scenario::has_scenario(s.name));
    EXPECT_EQ(scenario::find_scenario(s.name).name, s.name);
    EXPECT_FALSE(s.describe().empty());
  }
  EXPECT_FALSE(scenario::has_scenario("no-such-scenario"));
  EXPECT_THROW((void)scenario::find_scenario("no-such-scenario"), CheckError);
}

TEST(ScenarioRegistry, RegisterRejectsDuplicatesAndInvalid) {
  scenario::Scenario custom;
  custom.name = "test-duo";
  custom.summary = "registered by the test suite";
  custom.num_agents = 2;
  custom.placement = scenario::PlacementModel::RandomDistinct;
  if (!scenario::has_scenario("test-duo")) {
    scenario::register_scenario(custom);
  }
  EXPECT_TRUE(scenario::has_scenario("test-duo"));
  EXPECT_THROW(scenario::register_scenario(custom), CheckError);

  scenario::Scenario bad = custom;
  bad.name = "test-bad";
  bad.placement = scenario::PlacementModel::AdjacentPair;
  bad.num_agents = 4;  // adjacent pairs are two-agent only
  EXPECT_THROW(scenario::register_scenario(bad), CheckError);

  scenario::Scenario bad_delay = custom;
  bad_delay.name = "test-bad-delay";
  bad_delay.delay = scenario::DelayModel::RandomUniform;
  bad_delay.max_delay = 0;  // delay model without a bound
  EXPECT_THROW(scenario::register_scenario(bad_delay), CheckError);
}

// --- instance drawing ---------------------------------------------------------

TEST(ScenarioInstances, ClusterStartsShareAClosedNeighborhood) {
  const auto g = test::dense_graph(64, 9, 8);
  const auto& trio = scenario::find_scenario("trio-neighborhood");
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed, 11);
    const auto placement = scenario::draw_instance(trio, g, rng);
    ASSERT_EQ(placement.starts.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = i + 1; j < 3; ++j) {
        EXPECT_NE(placement.starts[i], placement.starts[j]);
        // All members of one closed neighborhood are within distance 2.
        EXPECT_LE(
            graph::distance(g, placement.starts[i], placement.starts[j]), 2u);
      }
    EXPECT_TRUE(placement.wake_delays.empty());
  }
}

TEST(ScenarioInstances, DelaysRespectModelAndBound) {
  const auto g = test::dense_graph(64, 9, 8);
  const auto& delayed = scenario::find_scenario("delayed-pair");
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed, 11);
    const auto placement = scenario::draw_instance(delayed, g, rng);
    ASSERT_EQ(placement.wake_delays.size(), 2u);
    const auto earliest =
        std::min(placement.wake_delays[0], placement.wake_delays[1]);
    EXPECT_EQ(earliest, 0u);  // time starts when the first agent wakes
    for (const auto d : placement.wake_delays)
      EXPECT_LE(d, delayed.max_delay);
  }
  const auto& ambush = scenario::find_scenario("ambush-pair");
  Rng rng(3, 11);
  const auto placement = scenario::draw_instance(ambush, g, rng);
  EXPECT_EQ(placement.wake_delays[0], 0u);
  EXPECT_EQ(placement.wake_delays[1], ambush.max_delay);
}

TEST(ScenarioInstances, DrawingIsDeterministic) {
  const auto g = test::dense_graph(64, 9, 8);
  for (const auto& s : scenario::all_scenarios()) {
    Rng rng1(5, 11), rng2(5, 11);
    const auto p1 = scenario::draw_instance(s, g, rng1);
    const auto p2 = scenario::draw_instance(s, g, rng2);
    EXPECT_EQ(p1.starts, p2.starts) << s.name;
    EXPECT_EQ(p1.wake_delays, p2.wake_delays) << s.name;
  }
}

// --- programs -----------------------------------------------------------------

TEST(ScenarioPrograms, ExploreRallyGathersEveryone) {
  Rng graph_rng(13, 1);
  const auto g = graph::make_watts_strogatz(64, 3, 0.2, graph_rng);
  const auto& swarm = scenario::find_scenario("swarm-gather");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed, 11);
    const auto placement = scenario::draw_instance(swarm, g, rng);
    scenario::ScenarioOptions options;
    options.seed = seed;
    const auto report = scenario::run_scenario(
        swarm, scenario::find_program("explore-rally"), g, placement, options);
    // All five gather deterministically within the O(n) budget. (The
    // gathering vertex may precede the rally: the agents' routes to the
    // minimum ID converge, so they can be co-located one hop early.)
    ASSERT_TRUE(report.run.met) << "seed " << seed;
    EXPECT_EQ(report.run.meeting_agent_a, 0u);
    EXPECT_EQ(report.run.meeting_agent_b, swarm.num_agents - 1);
    EXPECT_LE(report.run.meeting_round, 4 * g.num_vertices() + 1024);
  }
}

TEST(ScenarioPrograms, ExploreRallyEndsOnTheMinimumId) {
  // Alone (nobody to meet en route), the agent must finish exactly on the
  // globally smallest ID — vertex 0 under identity naming.
  Rng graph_rng(13, 1);
  const auto g = graph::make_watts_strogatz(64, 3, 0.2, graph_rng);
  sim::Scheduler scheduler(g, sim::Model::full());
  for (const graph::VertexIndex start : {0u, 5u, 17u, 63u}) {
    baselines::GatherAtMinAgent agent;
    const auto result =
        scheduler.run_single(agent, start, 8 * g.num_vertices());
    EXPECT_TRUE(agent.arrived()) << "start " << start;
    EXPECT_EQ(agent.visited_count(), g.num_vertices());
    EXPECT_EQ(result.meeting_vertex, 0u) << "start " << start;
  }
}

TEST(ScenarioPrograms, StrategiesTolerateSleepersAndStrangers) {
  // No strategy may crash when its partner sleeps or when marks come from
  // foreign agents; failing to meet within the cap is a legal outcome.
  const auto g = test::dense_graph(96, 4);
  for (const auto& name :
       {"delayed-pair", "ambush-pair", "trio-neighborhood", "trio-delayed",
        "pair-anywhere"}) {
    const auto& s = scenario::find_scenario(name);
    for (const auto program :
         {scenario::find_program("whiteboard"), scenario::find_program("no-whiteboard")}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        Rng rng(seed, 11);
        const auto placement = scenario::draw_instance(s, g, rng);
        scenario::ScenarioOptions options;
        options.seed = seed;
        options.max_rounds = 5000;  // keep the failure cap cheap
        EXPECT_NO_THROW({
          const auto report =
              scenario::run_scenario(s, program, g, placement, options);
          (void)report;
        }) << name << " / " << scenario::to_string(program);
      }
    }
  }
}

TEST(ScenarioPrograms, SyncPairWhiteboardStillMeets) {
  const auto g = test::dense_graph(128, 6);
  const auto& sync = scenario::find_scenario("sync-pair");
  const runner::TrialRunner runner(runner::RunnerOptions{1});
  scenario::ScenarioOptions options;
  options.seed = 5;
  const auto agg = scenario::run_scenario_trials(
                       sync, scenario::find_program("whiteboard"), g, options, 16,
                       runner)
                       .aggregate();
  EXPECT_EQ(agg.trials, 16u);
  EXPECT_EQ(agg.successes, 16u);  // Theorem 1 territory: must not regress
}

TEST(ScenarioTrials, BitIdenticalAcrossThreadCounts) {
  Rng graph_rng(31, 1);
  const auto g = graph::make_barabasi_albert(128, 5, graph_rng);
  const auto& s = scenario::find_scenario("trio-delayed");
  scenario::ScenarioOptions options;
  options.seed = 404;
  runner::TrialAggregate reference;
  bool first = true;
  for (const unsigned threads : {1u, 4u, 8u}) {
    const runner::TrialRunner runner(runner::RunnerOptions{threads});
    const auto agg = scenario::run_scenario_trials(
                         s, scenario::find_program("whiteboard"), g, options, 24,
                         runner)
                         .aggregate();
    if (first) {
      reference = agg;
      first = false;
    } else {
      EXPECT_TRUE(bits_equal(reference, agg))
          << "scenario aggregate differs at " << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace fnr
