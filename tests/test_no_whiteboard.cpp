// Theorem 2 / Algorithm 4: schedule arithmetic, Φ-set properties, and
// end-to-end whiteboard-free rendezvous.
#include <gtest/gtest.h>

#include "core/no_whiteboard.hpp"
#include "graph/id_space.hpp"
#include "test_support.hpp"

namespace fnr::core {
namespace {

TEST(NoWbSchedule, ArithmeticIsConsistent) {
  const auto params = Params::practical();
  const auto s = NoWbSchedule::make(1024, 1024, 64.0, params);
  EXPECT_EQ(s.beta, 8u);                       // ceil(sqrt(64))
  EXPECT_EQ(s.num_blocks, 128u);               // 1024 / 8
  EXPECT_GE(s.a_wait, 2 * params.b_pass_rounds(1024));
  EXPECT_EQ(s.phase_end(0), s.t_start + s.phase_len);
  EXPECT_EQ(s.total_rounds(), s.t_start + s.num_blocks * s.phase_len);
}

TEST(NoWbSchedule, BlocksCoverRaggedIdSpace) {
  const auto params = Params::practical();
  // id_bound not divisible by beta: the last block is short but must exist.
  const auto s = NoWbSchedule::make(100, 103, 100.0, params);
  EXPECT_EQ(s.beta, 10u);
  EXPECT_EQ(s.num_blocks, 11u);
}

TEST(BuildBlocks, PartitionsSortsAndTruncates) {
  NoWbSchedule s;
  s.beta = 10;
  s.num_blocks = 3;
  s.block_cap = 2;
  const auto blocks = build_blocks({25, 3, 21, 7, 1, 23, 29}, s);
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (std::vector<graph::VertexId>{1, 3}));  // truncated
  EXPECT_TRUE(blocks[1].empty());
  EXPECT_EQ(blocks[2], (std::vector<graph::VertexId>{21, 23}));
}

TEST(BuildBlocks, RejectsOutOfSpaceIds) {
  NoWbSchedule s;
  s.beta = 10;
  s.num_blocks = 2;
  s.block_cap = 5;
  EXPECT_THROW((void)build_blocks({25}, s), CheckError);
}

TEST(NoWhiteboard, MeetsOnNearRegularGraphs) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = test::dense_graph(256, seed + 50);
    const auto report = test::quick_run(g, Strategy::NoWhiteboard, seed * 3);
    EXPECT_TRUE(report.run.met) << "seed " << seed << " "
                                << report.describe();
    EXPECT_EQ(report.run.metrics.whiteboard_writes, 0u);
    EXPECT_EQ(report.run.metrics.whiteboard_reads, 0u);
  }
}

TEST(NoWhiteboard, MeetsOnCompleteGraph) {
  const auto g = graph::make_complete(128);
  const auto report = test::quick_run(g, Strategy::NoWhiteboard, 5);
  EXPECT_TRUE(report.run.met) << report.describe();
}

TEST(NoWhiteboard, MeetingAfterSynchronizedStart) {
  // Unless the agents stumbled into each other during Construct, the
  // meeting must happen inside the phase schedule, i.e. after t'.
  const auto g = test::dense_graph(256, 60);
  const auto report = test::quick_run(g, Strategy::NoWhiteboard, 21);
  ASSERT_TRUE(report.run.met);
  const auto schedule = NoWbSchedule::make(
      g.num_vertices(), g.id_bound(), report.delta_used,
      Params::practical());
  if (report.run.meeting_round > schedule.t_start) {
    EXPECT_LE(report.run.meeting_round, schedule.total_rounds() + 1);
  }
}

TEST(NoWhiteboard, RequiresTightNaming) {
  Rng rng(3);
  const auto base = test::dense_graph(128, 70);
  const auto sparse = graph::with_ids(
      base, graph::sparse_ids(base.num_vertices(), 2.0, rng));
  Rng placement_rng(3, 3);
  const auto placement = sim::random_adjacent_placement(sparse, placement_rng);
  RendezvousOptions options;
  options.strategy = Strategy::NoWhiteboard;
  EXPECT_THROW((void)run_rendezvous(sparse, placement, options), CheckError);
}

TEST(NoWhiteboard, WorksUnderShuffledTightNaming) {
  // Tight naming with slack 2 (IDs random in [0, 2n)) must still work.
  Rng rng(9);
  const auto base = test::dense_graph(256, 80);
  const auto renamed = graph::with_ids(
      base, graph::tight_ids(base.num_vertices(), 2.0, rng));
  const auto report = test::quick_run(renamed, Strategy::NoWhiteboard, 31);
  EXPECT_TRUE(report.run.met) << report.describe();
}

TEST(NoWhiteboard, DeterministicGivenSeed) {
  const auto g = test::dense_graph(256, 90);
  const auto r1 = test::quick_run(g, Strategy::NoWhiteboard, 77);
  const auto r2 = test::quick_run(g, Strategy::NoWhiteboard, 77);
  EXPECT_EQ(r1.run.meeting_round, r2.run.meeting_round);
  EXPECT_EQ(r1.run.meeting_vertex, r2.run.meeting_vertex);
}

TEST(NoWhiteboard, PhasesUsedStaysInSchedule) {
  const auto g = test::dense_graph(256, 95);
  const auto report = test::quick_run(g, Strategy::NoWhiteboard, 41);
  ASSERT_TRUE(report.run.met);
  const auto schedule = NoWbSchedule::make(
      g.num_vertices(), g.id_bound(), report.delta_used,
      Params::practical());
  EXPECT_LE(report.agent_a.phases_used, schedule.num_blocks);
}

}  // namespace
}  // namespace fnr::core
