// Cross-module integration: the full strategy × family × seed matrix,
// resource accounting, and failure injection.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/id_space.hpp"
#include "test_support.hpp"

namespace fnr::core {
namespace {

struct MatrixCase {
  const char* family;
  Strategy strategy;
  std::size_t n;
  std::uint64_t seed;
};

graph::Graph make_family(const std::string& family, std::size_t n,
                         std::uint64_t seed) {
  Rng rng(seed, 101);
  if (family == "complete") return graph::make_complete(n);
  if (family == "near_regular")
    return graph::make_near_regular(
        n, static_cast<std::size_t>(std::pow(double(n), 0.75)), rng);
  return graph::make_hub_augmented(n, n / 8, 2, rng);
}

class StrategyFamilyMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(StrategyFamilyMatrix, MeetsAndAccountsResources) {
  const auto& param = GetParam();
  const auto g = make_family(param.family, param.n, param.seed);
  const auto report = test::quick_run(g, param.strategy, param.seed);
  ASSERT_TRUE(report.run.met) << report.describe();

  // Memory: paper claims O(n log n) bits = O(n) words per agent.
  const std::size_t word_budget = 64 * param.n + 4096;
  EXPECT_LE(report.run.metrics.peak_memory_words[0], word_budget);
  EXPECT_LE(report.run.metrics.peak_memory_words[1], word_budget);

  // Whiteboards: the protocol stores one ID per board.
  if (param.strategy != Strategy::NoWhiteboard) {
    EXPECT_LE(report.run.metrics.whiteboards_used, param.n);
  } else {
    EXPECT_EQ(report.run.metrics.whiteboard_writes, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, StrategyFamilyMatrix,
    ::testing::Values(
        MatrixCase{"complete", Strategy::Whiteboard, 128, 1},
        MatrixCase{"complete", Strategy::WhiteboardDoubling, 128, 2},
        MatrixCase{"complete", Strategy::NoWhiteboard, 128, 3},
        MatrixCase{"near_regular", Strategy::Whiteboard, 256, 4},
        MatrixCase{"near_regular", Strategy::WhiteboardDoubling, 256, 5},
        MatrixCase{"near_regular", Strategy::NoWhiteboard, 256, 6},
        MatrixCase{"hub", Strategy::Whiteboard, 256, 7},
        MatrixCase{"hub", Strategy::WhiteboardDoubling, 256, 8},
        MatrixCase{"hub", Strategy::NoWhiteboard, 256, 9}),
    [](const auto& info) {
      const char* strategy =
          info.param.strategy == Strategy::Whiteboard
              ? "wb"
              : (info.param.strategy == Strategy::WhiteboardDoubling
                     ? "wbdouble"
                     : "nowb");
      return std::string(info.param.family) + "_" + strategy + "_n" +
             std::to_string(info.param.n);
    });

TEST(Integration, SuccessRateIsHighAcrossSeeds) {
  // The w.h.p. guarantee, sampled: 20 seeds on one graph must all meet
  // within the automatic cap.
  const auto g = test::dense_graph(256, 123);
  int met = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed)
    met += test::quick_run(g, Strategy::Whiteboard, seed).run.met;
  EXPECT_EQ(met, 20);
}

TEST(Integration, ReportDescribesItself) {
  const auto g = test::dense_graph(128, 5);
  const auto report = test::quick_run(g, Strategy::Whiteboard, 2);
  const auto text = report.describe();
  EXPECT_NE(text.find("met"), std::string::npos);
  EXPECT_NE(text.find("T^a"), std::string::npos);
}

TEST(Integration, RejectsIsolatedVertices) {
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);  // vertex 2 isolated
  const auto g = std::move(b).build_identity_ids();
  RendezvousOptions options;
  EXPECT_THROW((void)run_rendezvous(g, sim::Placement{0, 1}, options),
               CheckError);
}

TEST(Integration, AutoCapScalesWithTheBounds) {
  const auto g = test::dense_graph(256, 9);
  const auto params = Params::practical();
  const auto cap_wb = auto_round_cap(g, Strategy::Whiteboard, params);
  const auto cap_nowb = auto_round_cap(g, Strategy::NoWhiteboard, params);
  EXPECT_GT(cap_wb, params.construct_round_budget(
                        g.num_vertices(),
                        static_cast<double>(g.min_degree()) / 2.0));
  EXPECT_GT(cap_nowb, cap_wb / 64);  // same ballpark, different shape
}

TEST(Integration, SparseNamingStillFineForWhiteboardStrategy) {
  // Theorem 1 does not need tight naming — polynomial IDs must work.
  Rng rng(4);
  const auto base = test::dense_graph(256, 77);
  const auto sparse = graph::with_ids(
      base, graph::sparse_ids(base.num_vertices(), 2.0, rng));
  const auto report = test::quick_run(sparse, Strategy::Whiteboard, 15);
  EXPECT_TRUE(report.run.met) << report.describe();
}

TEST(Integration, MetricsAreInternallyConsistent) {
  const auto g = test::dense_graph(256, 33);
  const auto report = test::quick_run(g, Strategy::Whiteboard, 44);
  ASSERT_TRUE(report.run.met);
  const auto& m = report.run.metrics;
  // An agent cannot move more often than rounds executed.
  EXPECT_LE(m.moves[0], m.rounds);
  EXPECT_LE(m.moves[1], m.rounds);
  // b's marking writes happen at most once per round.
  EXPECT_LE(m.whiteboard_writes, m.rounds + 1);
}

}  // namespace
}  // namespace fnr::core
