// Perf-suite contract tests: deterministic cell identities, JSON schema
// round-trip, file round-trip, and validation failures. Timing fields are
// machine-dependent and are only checked for well-formedness.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "perf/perf_suite.hpp"
#include "util/check.hpp"

namespace fnr {
namespace {

perf::PerfConfig tiny_config(unsigned threads = 1) {
  perf::PerfConfig config;
  config.quick = true;
  config.trials = 2;  // keep suite runs cheap inside the test binary
  config.threads = threads;
  config.seed = 99;
  return config;
}

TEST(PerfSuite, CellSpecsAreDeterministicAndStrategyMajor) {
  const auto config = tiny_config();
  const auto first = perf::perf_cell_specs(config);
  const auto second = perf::perf_cell_specs(config);
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  // Strategy-major sweep: every topology of one strategy precedes the next
  // strategy (the canonical BENCH_perf.json ordering).
  EXPECT_EQ(first.front().strategy, "whiteboard");
  EXPECT_EQ(first.back().strategy, "no-whiteboard");
  for (const auto& spec : first) {
    EXPECT_GT(spec.n, 0u);
    EXPECT_EQ(spec.trials, 2u);
  }
}

TEST(PerfSuite, ReportCellsMatchSpecOrder) {
  const auto config = tiny_config();
  const auto specs = perf::perf_cell_specs(config);
  const auto report = perf::run_perf_suite(config);
  ASSERT_EQ(report.cells.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(report.cells[i].strategy, specs[i].strategy);
    EXPECT_EQ(report.cells[i].topology, specs[i].topology);
    EXPECT_EQ(report.cells[i].n, specs[i].n);
    EXPECT_EQ(report.cells[i].trials, specs[i].trials);
  }
}

TEST(PerfSuite, WorkloadAggregatesAreThreadCountInvariant) {
  // Only timings may differ between pool sizes; the measured workload
  // (rounds executed, successes) inherits the runner's bit-identical
  // aggregation contract.
  const auto serial = perf::run_perf_suite(tiny_config(1));
  const auto parallel = perf::run_perf_suite(tiny_config(3));
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].total_rounds, parallel.cells[i].total_rounds);
    EXPECT_EQ(serial.cells[i].success_rate, parallel.cells[i].success_rate);
  }
}

TEST(PerfSuite, JsonRoundTripsExactly) {
  const auto report = perf::run_perf_suite(tiny_config());
  const std::string json = report.to_json();
  const auto parsed = perf::parse_report(json);
  // Serialize-parse-serialize fixpoint: the emitted text is the schema.
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.schema, perf::schema_tag());
  EXPECT_EQ(parsed.quick, report.quick);
  EXPECT_EQ(parsed.threads, report.threads);
  EXPECT_EQ(parsed.seed, report.seed);
  ASSERT_EQ(parsed.cells.size(), report.cells.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(parsed.cells[i].strategy, report.cells[i].strategy);
    EXPECT_EQ(parsed.cells[i].total_rounds, report.cells[i].total_rounds);
  }
  // The round-tripped report still satisfies the schema validator.
  EXPECT_NO_THROW(perf::validate_report(parsed));
}

TEST(PerfSuite, FileRoundTrip) {
  const auto report = perf::run_perf_suite(tiny_config());
  const std::string path = ::testing::TempDir() + "fnr_perf_roundtrip.json";
  perf::write_report_file(report, path);
  const auto loaded = perf::read_report_file(path);
  EXPECT_EQ(loaded.to_json(), report.to_json());
  std::remove(path.c_str());
}

TEST(PerfSuite, ParseRejectsWrongSchemaTag) {
  const std::string json =
      "{\"schema\": \"fnr-perf/999\", \"quick\": false, \"threads\": 1, "
      "\"seed\": 1, \"cells\": []}";
  EXPECT_THROW((void)perf::parse_report(json), CheckError);
}

TEST(PerfSuite, ParseRejectsUnknownFieldsAndTrailingContent) {
  EXPECT_THROW((void)perf::parse_report("{\"surprise\": 1}"), CheckError);
  const auto report = perf::run_perf_suite(tiny_config());
  EXPECT_THROW((void)perf::parse_report(report.to_json() + "x"), CheckError);
  EXPECT_THROW((void)perf::parse_report("not json at all"), CheckError);
}

TEST(PerfSuite, ValidateRejectsDegenerateReports) {
  auto report = perf::run_perf_suite(tiny_config());

  auto empty = report;
  empty.cells.clear();
  EXPECT_THROW(perf::validate_report(empty), CheckError);

  auto bad_rate = report;
  bad_rate.cells[0].success_rate = 1.5;
  EXPECT_THROW(perf::validate_report(bad_rate), CheckError);

  auto no_trials = report;
  no_trials.cells[0].trials = 0;
  EXPECT_THROW(perf::validate_report(no_trials), CheckError);

  auto wrong_schema = report;
  wrong_schema.schema = "fnr-perf/0";
  EXPECT_THROW(perf::validate_report(wrong_schema), CheckError);
}

}  // namespace
}  // namespace fnr
