// Perf-suite contract tests: deterministic cell identities, JSON schema
// round-trip, file round-trip, and validation failures. Timing fields are
// machine-dependent and are only checked for well-formedness.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "perf/perf_suite.hpp"
#include "util/check.hpp"

namespace fnr {
namespace {

perf::PerfConfig tiny_config(unsigned threads = 1) {
  perf::PerfConfig config;
  config.quick = true;
  config.trials = 2;  // keep suite runs cheap inside the test binary
  config.threads = threads;
  config.seed = 99;
  return config;
}

TEST(PerfSuite, CellSpecsAreDeterministicAndStrategyMajor) {
  const auto config = tiny_config();
  const auto first = perf::perf_cell_specs(config);
  const auto second = perf::perf_cell_specs(config);
  EXPECT_EQ(first, second);
  ASSERT_FALSE(first.empty());
  // Strategy-major sweep: every topology of one strategy precedes the next
  // strategy (the canonical BENCH_perf.json ordering). Swarm cells follow
  // the strategy sweep; campaign-executor cells trail everything.
  EXPECT_EQ(first.front().strategy, "whiteboard");
  EXPECT_TRUE(first.front().scenario.empty());
  ASSERT_GE(first.size(), 4u);
  const auto& swarm = first[first.size() - 3];
  EXPECT_EQ(swarm.strategy, "explore-rally");
  EXPECT_EQ(swarm.scenario, "swarm-quorum-k16");
  EXPECT_EQ(first[first.size() - 2].scenario, "campaign-mixed-jobs1");
  EXPECT_EQ(first.back().strategy, "campaign");
  EXPECT_EQ(first.back().scenario, "campaign-mixed-jobs4");
  // The two campaign cells run the same pinned grid: identical trial
  // identity, independent of config.trials (which sizes the other cells).
  EXPECT_EQ(first[first.size() - 2].trials, first.back().trials);
  for (const auto& spec : first) {
    EXPECT_GT(spec.n, 0u);
    if (spec.strategy != "campaign") EXPECT_EQ(spec.trials, 2u);
  }
}

TEST(PerfSuite, ReportCellsMatchSpecOrder) {
  const auto config = tiny_config();
  const auto specs = perf::perf_cell_specs(config);
  const auto report = perf::run_perf_suite(config);
  ASSERT_EQ(report.cells.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    EXPECT_EQ(report.cells[i].strategy, specs[i].strategy);
    EXPECT_EQ(report.cells[i].scenario, specs[i].scenario);
    EXPECT_EQ(report.cells[i].topology, specs[i].topology);
    EXPECT_EQ(report.cells[i].n, specs[i].n);
    EXPECT_EQ(report.cells[i].trials, specs[i].trials);
  }
  // The jobs1 / jobs4 campaign cells executed the same pinned grid, so
  // every workload-identity field agrees — the executor's byte-identity
  // contract, visible in the report itself.
  const auto& jobs1 = report.cells[report.cells.size() - 2];
  const auto& jobs4 = report.cells.back();
  EXPECT_EQ(jobs1.scenario, "campaign-mixed-jobs1");
  EXPECT_EQ(jobs4.scenario, "campaign-mixed-jobs4");
  EXPECT_EQ(jobs1.trials, jobs4.trials);
  EXPECT_EQ(jobs1.total_rounds, jobs4.total_rounds);
  EXPECT_EQ(jobs1.success_rate, jobs4.success_rate);
  EXPECT_GT(jobs1.total_rounds, 0u);
}

TEST(PerfSuite, WorkloadAggregatesAreThreadCountInvariant) {
  // Only timings may differ between pool sizes; the measured workload
  // (rounds executed, successes) inherits the runner's bit-identical
  // aggregation contract.
  const auto serial = perf::run_perf_suite(tiny_config(1));
  const auto parallel = perf::run_perf_suite(tiny_config(3));
  ASSERT_EQ(serial.cells.size(), parallel.cells.size());
  for (std::size_t i = 0; i < serial.cells.size(); ++i) {
    EXPECT_EQ(serial.cells[i].total_rounds, parallel.cells[i].total_rounds);
    EXPECT_EQ(serial.cells[i].success_rate, parallel.cells[i].success_rate);
  }
}

TEST(PerfSuite, JsonRoundTripsExactly) {
  const auto report = perf::run_perf_suite(tiny_config());
  const std::string json = report.to_json();
  const auto parsed = perf::parse_report(json);
  // Serialize-parse-serialize fixpoint: the emitted text is the schema.
  EXPECT_EQ(parsed.to_json(), json);
  EXPECT_EQ(parsed.schema, perf::schema_tag());
  EXPECT_EQ(parsed.quick, report.quick);
  EXPECT_EQ(parsed.threads, report.threads);
  EXPECT_EQ(parsed.seed, report.seed);
  ASSERT_EQ(parsed.cells.size(), report.cells.size());
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    EXPECT_EQ(parsed.cells[i].strategy, report.cells[i].strategy);
    EXPECT_EQ(parsed.cells[i].scenario, report.cells[i].scenario);
    EXPECT_EQ(parsed.cells[i].total_rounds, report.cells[i].total_rounds);
  }
  // The round-tripped report still satisfies the schema validator.
  EXPECT_NO_THROW(perf::validate_report(parsed));
}

TEST(PerfSuite, FileRoundTrip) {
  const auto report = perf::run_perf_suite(tiny_config());
  const std::string path = ::testing::TempDir() + "fnr_perf_roundtrip.json";
  perf::write_report_file(report, path);
  const auto loaded = perf::read_report_file(path);
  EXPECT_EQ(loaded.to_json(), report.to_json());
  std::remove(path.c_str());
}

TEST(PerfSuite, ParseRejectsWrongSchemaTag) {
  const std::string json =
      "{\"schema\": \"fnr-perf/999\", \"quick\": false, \"threads\": 1, "
      "\"seed\": 1, \"cells\": []}";
  EXPECT_THROW((void)perf::parse_report(json), CheckError);
}

TEST(PerfSuite, ParseRejectsUnknownFieldsAndTrailingContent) {
  EXPECT_THROW((void)perf::parse_report("{\"surprise\": 1}"), CheckError);
  const auto report = perf::run_perf_suite(tiny_config());
  EXPECT_THROW((void)perf::parse_report(report.to_json() + "x"), CheckError);
  EXPECT_THROW((void)perf::parse_report("not json at all"), CheckError);
}

TEST(PerfSuite, BatchFieldRoundTripsAndDefaultsToScalar) {
  auto config = tiny_config();
  config.batch = 4;
  const auto report = perf::run_perf_suite(config);
  EXPECT_EQ(report.batch, 4u);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"batch\": 4"), std::string::npos);
  EXPECT_EQ(perf::parse_report(json).to_json(), json);
  // Pre-batch baselines carry no "batch" field and parse as scalar —
  // committed BENCH_perf.json files from before the field stay readable.
  auto scalar = report;
  scalar.batch = 0;
  const std::string old_style = scalar.to_json();
  EXPECT_EQ(old_style.find("\"batch\""), std::string::npos);
  EXPECT_EQ(perf::parse_report(old_style).batch, 0u);
}

TEST(PerfSuite, BestOfTakesPerCellFastestMeasurement) {
  const auto base = perf::run_perf_suite(tiny_config());

  // Two noisy reps: each is slow on a different cell. The merge keeps the
  // best measurement per cell, so gating best-of-N against the clean
  // report is green even though every individual rep would fail.
  auto noisy_a = base;
  noisy_a.cells[0].rounds_per_sec = base.cells[0].rounds_per_sec * 0.1;
  noisy_a.cells[0].trials_per_sec = base.cells[0].trials_per_sec * 0.1;
  noisy_a.cells[0].seconds = base.cells[0].seconds * 10.0;
  auto noisy_b = base;
  noisy_b.cells[1].rounds_per_sec = base.cells[1].rounds_per_sec * 0.1;
  EXPECT_FALSE(perf::gate_against_baseline(base, noisy_a, 0.30).ok());
  EXPECT_FALSE(perf::gate_against_baseline(base, noisy_b, 0.30).ok());

  const auto merged = perf::best_of({noisy_a, noisy_b});
  EXPECT_TRUE(perf::gate_against_baseline(base, merged, 0.30).ok());
  for (std::size_t i = 0; i < base.cells.size(); ++i) {
    EXPECT_EQ(merged.cells[i].rounds_per_sec, base.cells[i].rounds_per_sec);
    EXPECT_EQ(merged.cells[i].seconds, base.cells[i].seconds);
  }

  // A single-report merge is the identity; identity-field drift between
  // reps and an empty input are contract violations, not data.
  EXPECT_EQ(perf::best_of({base}).to_json(), base.to_json());
  auto drifted = base;
  drifted.cells[0].total_rounds += 1;
  EXPECT_THROW((void)perf::best_of({base, drifted}), CheckError);
  EXPECT_THROW((void)perf::best_of({}), CheckError);
}

TEST(PerfSuite, GateComparesRatesWithTolerance) {
  const auto base = perf::run_perf_suite(tiny_config());

  // Identical report: green.
  EXPECT_TRUE(perf::gate_against_baseline(base, base, 0.30).ok());

  // A >30% rounds/sec drop on any one cell fails and names the cell.
  auto slow = base;
  slow.cells[1].rounds_per_sec = base.cells[1].rounds_per_sec * 0.5;
  const auto verdict = perf::gate_against_baseline(base, slow, 0.30);
  ASSERT_EQ(verdict.failures.size(), 1u);
  EXPECT_NE(verdict.failures[0].find(slow.cells[1].strategy),
            std::string::npos);
  EXPECT_NE(verdict.failures[0].find(slow.cells[1].topology),
            std::string::npos);

  // A drop inside the tolerance passes; a speedup always passes (baseline
  // refreshes after a legitimate win are deliberate, not gate failures).
  auto near = base;
  near.cells[1].rounds_per_sec = base.cells[1].rounds_per_sec * 0.8;
  EXPECT_TRUE(perf::gate_against_baseline(base, near, 0.30).ok());
  auto fast = base;
  for (auto& cell : fast.cells) cell.rounds_per_sec *= 10.0;
  EXPECT_TRUE(perf::gate_against_baseline(base, fast, 0.30).ok());

  // The batch field is a throughput lever, not an identity: a batched run
  // gates cleanly against a scalar baseline.
  auto batched = base;
  batched.batch = 8;
  EXPECT_TRUE(perf::gate_against_baseline(base, batched, 0.30).ok());

  // A degenerate baseline rate cannot produce a floor: the cell is skipped.
  auto zero_rate = base;
  zero_rate.cells[0].rounds_per_sec = 0.0;
  auto slower_everywhere = base;
  slower_everywhere.cells[0].rounds_per_sec = 1.0;
  EXPECT_TRUE(
      perf::gate_against_baseline(zero_rate, slower_everywhere, 0.30).ok());

  EXPECT_THROW((void)perf::gate_against_baseline(base, base, 1.0), CheckError);
  EXPECT_THROW((void)perf::gate_against_baseline(base, base, -0.1),
               CheckError);
}

TEST(PerfSuite, GateRejectsIdentityAndWorkloadDrift) {
  const auto base = perf::run_perf_suite(tiny_config());

  // The gate is only meaningful cell-for-cell: shape mismatches fail fast.
  auto truncated = base;
  truncated.cells.pop_back();
  EXPECT_FALSE(perf::gate_against_baseline(base, truncated, 0.30).ok());
  auto quick_mismatch = base;
  quick_mismatch.quick = !base.quick;
  EXPECT_FALSE(perf::gate_against_baseline(base, quick_mismatch, 0.30).ok());

  // Identity drift (renamed cell) and workload drift (different rounds —
  // e.g. an algorithm change smuggled past the throughput comparison)
  // each fail even when the rate itself looks fine.
  auto renamed = base;
  renamed.cells[0].topology = "other-topology";
  EXPECT_FALSE(perf::gate_against_baseline(base, renamed, 0.30).ok());
  auto swarm_renamed = base;
  ASSERT_EQ(swarm_renamed.cells.back().scenario, "campaign-mixed-jobs4");
  swarm_renamed.cells.back().scenario = "other-workload";
  EXPECT_FALSE(perf::gate_against_baseline(base, swarm_renamed, 0.30).ok());
  auto drifted = base;
  drifted.cells[0].total_rounds += 1;
  EXPECT_FALSE(perf::gate_against_baseline(base, drifted, 0.30).ok());
  auto rate_drift = base;
  rate_drift.cells[0].success_rate = base.cells[0].success_rate * 0.5;
  EXPECT_FALSE(perf::gate_against_baseline(base, rate_drift, 0.30).ok());
}

TEST(PerfSuite, ValidateRejectsDegenerateReports) {
  auto report = perf::run_perf_suite(tiny_config());

  auto empty = report;
  empty.cells.clear();
  EXPECT_THROW(perf::validate_report(empty), CheckError);

  auto bad_rate = report;
  bad_rate.cells[0].success_rate = 1.5;
  EXPECT_THROW(perf::validate_report(bad_rate), CheckError);

  auto no_trials = report;
  no_trials.cells[0].trials = 0;
  EXPECT_THROW(perf::validate_report(no_trials), CheckError);

  auto wrong_schema = report;
  wrong_schema.schema = "fnr-perf/0";
  EXPECT_THROW(perf::validate_report(wrong_schema), CheckError);
}

}  // namespace
}  // namespace fnr
