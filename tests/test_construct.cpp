// Algorithm 3 (Construct): the produced T^a really is (a, δ/8, 2)-dense
// (verified against ground truth), and the iteration / strict-run counts
// stay inside the Lemma 6-8 budgets.
#include <gtest/gtest.h>

#include <cmath>

#include "core/construct.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "sim/scripted_agent.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"

namespace fnr::core {
namespace {

/// Runs Construct to completion as a lone agent.
class ConstructDriver final : public sim::ScriptedAgent {
 public:
  ConstructDriver(const Params& params, double delta, Rng rng)
      : params_(params), delta_(delta), rng_(rng) {}

  [[nodiscard]] bool halted() const override { return done_; }
  std::vector<graph::VertexId> t_set;
  ConstructStats stats;

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      run_ = std::make_unique<ConstructRun>(knowledge_, params_, delta_,
                                            view.num_vertices());
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->on_arrival(view);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    t_set = run_->t_set();
    stats = run_->stats();
    stats.rounds_used = view.round();
    done_ = true;
  }

 private:
  Params params_;
  double delta_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  Knowledge knowledge_;
  std::unique_ptr<ConstructRun> run_;
};

struct ConstructOutcome {
  std::vector<graph::VertexId> t_set;
  ConstructStats stats;
};

ConstructOutcome run_construct(const graph::Graph& g, graph::VertexIndex home,
                               std::uint64_t seed,
                               Params params = Params::practical()) {
  sim::Scheduler scheduler(g, sim::Model::full());
  ConstructDriver driver(params, static_cast<double>(g.min_degree()),
                         Rng(seed));
  const auto result = scheduler.run_single(driver, home, 50'000'000);
  EXPECT_TRUE(driver.halted()) << "Construct did not finish within "
                               << result.metrics.rounds << " rounds";
  return {driver.t_set, driver.stats};
}

TEST(Construct, CompleteGraphTakesWholeVertexSet) {
  const auto g = graph::make_complete(64);
  const auto out = run_construct(g, 0, 3);
  // Every vertex is heavy for N+(v0) = V immediately: no iterations needed.
  EXPECT_EQ(out.t_set.size(), 64u);
  EXPECT_EQ(out.stats.iterations, 0u);
}

TEST(Construct, DenseConditionHoldsOnNearRegular) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = test::dense_graph(256, seed);
    const auto out = run_construct(g, 0, seed * 31);
    const double alpha = static_cast<double>(g.min_degree()) / 8.0;
    EXPECT_TRUE(graph::is_dense_set(g, 0, test::to_indices(g, out.t_set),
                                    alpha, 2))
        << "dense condition violated, seed=" << seed
        << " |T|=" << out.t_set.size();
  }
}

TEST(Construct, DenseConditionHoldsOnHubGraph) {
  Rng rng(5);
  const auto g = graph::make_hub_augmented(256, 40, 4, rng);
  const auto out = run_construct(g, 0, 17);
  const double alpha = static_cast<double>(g.min_degree()) / 8.0;
  EXPECT_TRUE(
      graph::is_dense_set(g, 0, test::to_indices(g, out.t_set), alpha, 2));
}

TEST(Construct, TSetIsWithinTwoHops) {
  const auto g = test::dense_graph(256, 9);
  const auto out = run_construct(g, 5, 23);
  const auto dist = graph::bfs_distances(g, 5);
  for (const auto id : out.t_set) EXPECT_LE(dist[g.index_of(id)], 2u);
}

TEST(Construct, IterationBudgetLemma6) {
  // Lemma 6: O(n/δ) iterations; each adopted x_i contributes >= δ/2 fresh
  // vertices w.h.p., so iterations <= 2n/δ (+1 slack).
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    const auto g = test::dense_graph(512, seed);
    const auto out = run_construct(g, 0, seed);
    const double budget =
        2.0 * static_cast<double>(g.num_vertices()) /
            static_cast<double>(g.min_degree()) + 1.0;
    EXPECT_LE(static_cast<double>(out.stats.iterations), budget)
        << "seed=" << seed;
  }
}

TEST(Construct, StrictRunBudgetLemma7) {
  // Lemma 7: O(log n) strict runs w.h.p.
  const auto g = test::dense_graph(512, 21);
  const auto out = run_construct(g, 0, 77);
  const double budget = 4.0 * std::log2(512.0) + 4.0;
  EXPECT_LE(static_cast<double>(out.stats.strict_runs), budget);
}

TEST(Construct, RoundBudgetLemma8) {
  // Lemma 8: O((n/δ) log² n) rounds; our Params expose the same deterministic
  // budget Algorithm 4 synchronizes on — Construct must fit inside it.
  const auto params = Params::practical();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto g = test::dense_graph(256, seed + 40);
    sim::Scheduler scheduler(g, sim::Model::full());
    ConstructDriver driver(params, static_cast<double>(g.min_degree()),
                           Rng(seed));
    const auto result = scheduler.run_single(driver, 0, 50'000'000);
    ASSERT_TRUE(driver.halted());
    EXPECT_LE(result.metrics.rounds,
              params.construct_round_budget(
                  g.num_vertices(), static_cast<double>(g.min_degree())))
        << "seed=" << seed;
  }
}

TEST(Construct, WorksWithPaperConstantsAtSmallN) {
  const auto g = test::dense_graph(128, 3);
  const auto out = run_construct(g, 0, 5, Params::paper());
  const double alpha = static_cast<double>(g.min_degree()) / 8.0;
  EXPECT_TRUE(
      graph::is_dense_set(g, 0, test::to_indices(g, out.t_set), alpha, 2));
}

TEST(Construct, DeterministicGivenSeed) {
  const auto g = test::dense_graph(256, 8);
  const auto a = run_construct(g, 0, 99);
  const auto b = run_construct(g, 0, 99);
  EXPECT_EQ(a.t_set, b.t_set);
  EXPECT_EQ(a.stats.iterations, b.stats.iterations);
  EXPECT_EQ(a.stats.strict_runs, b.stats.strict_runs);
}

TEST(Construct, RejectsDeltaBelowOne) {
  Knowledge knowledge;
  knowledge.init_home(0, {1, 2});
  EXPECT_THROW(
      ConstructRun(knowledge, Params::practical(), 0.0, 16), CheckError);
}

}  // namespace
}  // namespace fnr::core
