// Scheduler-level determinism and the paper's §2.1 meeting convention.
//
// Two Scheduler::run calls with identical seeds must produce identical
// RunResult traces (the simulator has no hidden entropy), and agents that
// cross on an edge do NOT rendezvous — only co-location at a round boundary
// counts.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "test_support.hpp"

namespace fnr::sim {
namespace {

bool same_result(const RunResult& x, const RunResult& y) {
  return x.met == y.met && x.meeting_round == y.meeting_round &&
         x.meeting_vertex == y.meeting_vertex &&
         x.metrics.rounds == y.metrics.rounds &&
         x.metrics.moves == y.metrics.moves &&
         x.metrics.whiteboard_reads == y.metrics.whiteboard_reads &&
         x.metrics.whiteboard_writes == y.metrics.whiteboard_writes &&
         x.metrics.whiteboards_used == y.metrics.whiteboards_used;
}

TEST(SchedulerDeterminism, IdenticalSeedsIdenticalTraces) {
  const auto g = test::dense_graph(192, 11);
  for (const auto strategy :
       {core::Strategy::Whiteboard, core::Strategy::WhiteboardDoubling,
        core::Strategy::NoWhiteboard}) {
    const auto first = test::quick_run(g, strategy, 2024);
    const auto second = test::quick_run(g, strategy, 2024);
    EXPECT_TRUE(same_result(first.run, second.run))
        << "trace diverged for " << core::to_string(strategy);
    EXPECT_EQ(first.agent_a.t_set_ids, second.agent_a.t_set_ids);
    EXPECT_EQ(first.agent_b_marks, second.agent_b_marks);
  }
}

TEST(SchedulerDeterminism, DifferentSeedsUsuallyDiffer) {
  const auto g = test::dense_graph(192, 11);
  // Not a tautology (two seeds could tie), but across five pairs at least
  // one meeting round must differ if seeds actually feed the run.
  bool any_difference = false;
  const auto reference = test::quick_run(g, core::Strategy::Whiteboard, 1);
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const auto other = test::quick_run(g, core::Strategy::Whiteboard, seed);
    any_difference =
        any_difference || !same_result(reference.run, other.run);
  }
  EXPECT_TRUE(any_difference);
}

/// Walks back and forth between two fixed vertices forever.
class PacingAgent final : public Agent {
 public:
  Action step(const View& view) override {
    const auto& nbrs = view.neighbor_ids();
    // On the 2-path both endpoints have exactly one neighbor; keep moving.
    return Action::move(view.port_of(nbrs.front()));
  }
};

TEST(SchedulerConvention, CrossingOnAnEdgeIsNotRendezvous) {
  // One edge u—v; a starts at u, b at v, and both move every round. They
  // swap endpoints forever: under the paper's convention they never meet.
  graph::GraphBuilder builder(2);
  builder.add_edge(0, 1);
  const auto g = std::move(builder).build_identity_ids();

  Scheduler scheduler(g, Model::full());
  PacingAgent a, b;
  const auto result = scheduler.run(a, b, Placement{0, 1}, 50);
  EXPECT_FALSE(result.met);
  EXPECT_EQ(result.metrics.rounds, 50u);
  // Both really did traverse the edge every round (no silent staying).
  EXPECT_EQ(result.metrics.moves_of(AgentName::A), 50u);
  EXPECT_EQ(result.metrics.moves_of(AgentName::B), 50u);
}

TEST(SchedulerConvention, CoLocationAtRoundBoundaryMeets) {
  // Same edge, but b waits: a moves onto b's vertex, and the meeting is
  // detected at the start of the NEXT round.
  graph::GraphBuilder builder(2);
  builder.add_edge(0, 1);
  const auto g = std::move(builder).build_identity_ids();

  class Waiting final : public Agent {
   public:
    Action step(const View&) override { return Action::stay(); }
  };

  Scheduler scheduler(g, Model::full());
  PacingAgent a;
  Waiting b;
  const auto result = scheduler.run(a, b, Placement{0, 1}, 50);
  EXPECT_TRUE(result.met);
  EXPECT_EQ(result.meeting_round, 1u);
  EXPECT_EQ(result.meeting_vertex, 1u);
}

TEST(SchedulerConvention, RejectsColocatedStart) {
  // The instance class places the agents on distinct vertices; the
  // scheduler enforces that precondition instead of reporting a round-0
  // meeting.
  graph::GraphBuilder builder(2);
  builder.add_edge(0, 1);
  const auto g = std::move(builder).build_identity_ids();

  Scheduler scheduler(g, Model::full());
  PacingAgent a, b;
  EXPECT_THROW((void)scheduler.run(a, b, Placement{1, 1}, 50), CheckError);
}

}  // namespace
}  // namespace fnr::sim
