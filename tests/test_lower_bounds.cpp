// Lower-bound machinery: hard-instance structure (Theorems 3-5 / Figures
// 1-3), the Lemma 9 adaptive adversary, and the glued Theorem 6 instance.
#include <gtest/gtest.h>

#include <set>

#include "baselines/wait_and_sweep.hpp"
#include "graph/analysis.hpp"
#include "lower_bounds/adversary.hpp"
#include "lower_bounds/instances.hpp"
#include "test_support.hpp"

namespace fnr::lower_bounds {
namespace {

TEST(Instances, Theorem3ShapeAndPromise) {
  const auto inst = theorem3_instance(64);
  EXPECT_EQ(inst.graph.min_degree(), 1u);
  EXPECT_EQ(inst.graph.max_degree(), 65u);
  EXPECT_EQ(graph::distance(inst.graph, inst.placement.a_start,
                            inst.placement.b_start),
            1u);
  EXPECT_TRUE(inst.model.neighborhood_ids);
  EXPECT_TRUE(inst.model.whiteboards);
}

TEST(Instances, Theorem3GeneralControlsDelta) {
  const auto inst = theorem3_general_instance(16, 6);
  EXPECT_EQ(inst.graph.min_degree(), 5u);
  EXPECT_EQ(inst.graph.degree(inst.placement.a_start), 17u);
  EXPECT_EQ(graph::distance(inst.graph, inst.placement.a_start,
                            inst.placement.b_start),
            1u);
}

TEST(Instances, Theorem4HidesNeighborhoodIds) {
  const auto inst = theorem4_instance(32);
  EXPECT_FALSE(inst.model.neighborhood_ids);
  EXPECT_EQ(inst.graph.min_degree(), 31u);
  EXPECT_EQ(inst.graph.max_degree(), 31u);
  EXPECT_EQ(graph::distance(inst.graph, inst.placement.a_start,
                            inst.placement.b_start),
            1u);
}

TEST(Instances, Theorem5StartsAtDistanceTwo) {
  const auto inst = theorem5_instance(32);
  EXPECT_EQ(graph::distance(inst.graph, inst.placement.a_start,
                            inst.placement.b_start),
            2u);
  EXPECT_TRUE(inst.model.neighborhood_ids);
}

TEST(Lemma9, AdversaryStrandsEveryDeterministicWitness) {
  const std::size_t n = 256;  // final glued size; ID space is n/2 + 1
  for (const auto factory : {&make_lex_dfs, &make_lex_sweep,
                             &make_rotor_walk}) {
    std::vector<graph::VertexId> ids{1000};
    for (graph::VertexId id = 0; id < n / 2; ++id) ids.push_back(id);
    const auto transcript = run_lemma9(*factory, ids, n / 32);
    // |W| >= 13n/32 (Lemma 9).
    EXPECT_GE(transcript.untouched.size(), 13 * n / 32)
        << (*factory)()->name();
    // Untouched vertices are adjacent only to v0.
    std::set<graph::VertexId> untouched(transcript.untouched.begin(),
                                        transcript.untouched.end());
    for (const auto& [u, v] : transcript.edges) {
      if (untouched.contains(u))
        EXPECT_EQ(v, transcript.start) << "stranded vertex " << u
                                       << " has extra edge to " << v;
      if (untouched.contains(v))
        EXPECT_EQ(u, transcript.start) << "stranded vertex " << v
                                       << " has extra edge to " << u;
    }
  }
}

TEST(Lemma9, VisitedSetIsPlausible) {
  const std::size_t n = 128;
  std::vector<graph::VertexId> ids{999};
  for (graph::VertexId id = 0; id < n / 2; ++id) ids.push_back(id);
  const auto transcript = run_lemma9(&make_lex_dfs, ids, n / 32);
  // The agent makes n/32 moves, so at most n/32 + 1 distinct vertices.
  EXPECT_LE(transcript.visited.size(), n / 32 + 1);
  EXPECT_EQ(transcript.visited.front(), 999u);
}

TEST(Lemma9, RejectsTinyIdSpaces) {
  EXPECT_THROW((void)run_lemma9(&make_lex_dfs, {1, 2, 3}, 4), CheckError);
}

TEST(Theorem6, GluedInstanceShape) {
  const std::size_t n = 256;
  const auto inst = build_theorem6_instance(&make_lex_dfs, &make_lex_dfs, n);
  EXPECT_EQ(inst.graph.num_vertices(), n);
  EXPECT_EQ(graph::distance(inst.graph, inst.placement.a_start,
                            inst.placement.b_start),
            1u);
  // Minimum degree Θ(n): every W vertex gained the biclique edges.
  EXPECT_GE(inst.graph.min_degree(), n / 32);
  EXPECT_GE(inst.w_a, 13 * n / 32 - 1);
  EXPECT_GE(inst.w_b, 13 * n / 32 - 1);
  EXPECT_TRUE(graph::is_connected(inst.graph));
}

TEST(Theorem6, DeterministicPairsNeedLinearTime) {
  const std::size_t n = 256;
  struct Pair {
    DetAgentFactory a;
    DetAgentFactory b;
    const char* name;
  };
  const Pair pairs[] = {
      {&make_lex_dfs, &make_lex_dfs, "dfs/dfs"},
      {&make_lex_sweep, &make_lex_sweep, "sweep/sweep"},
  };
  for (const auto& pair : pairs) {
    const auto inst = build_theorem6_instance(pair.a, pair.b, n);
    sim::Scheduler scheduler(inst.graph, sim::Model::full());
    DetAgentAdapter agent_a(pair.a());
    DetAgentAdapter agent_b(pair.b());
    const auto result =
        scheduler.run(agent_a, agent_b, inst.placement, 8 * n);
    // The theorem's conclusion for these witnesses: no meeting before n/32.
    if (result.met) {
      EXPECT_GE(result.meeting_round, n / 32) << pair.name;
    }
  }
}

TEST(Theorem6, RejectsBadN) {
  EXPECT_THROW((void)build_theorem6_instance(&make_lex_dfs, &make_lex_dfs, 100),
               CheckError);
}

TEST(HardInstances, SweepStillWorksButPaysDelta) {
  // Positive control on the Theorem 4 instance: the trivial sweep meets, but
  // only after Ω(n) rounds (b sits on the last port of a's sweep order).
  const auto inst = theorem4_instance(64);
  sim::Scheduler scheduler(inst.graph, inst.model);
  baselines::SweepAgent a;
  baselines::WaitingAgent b;
  const auto result = scheduler.run(
      a, b, inst.placement, 4 * inst.graph.num_vertices());
  ASSERT_TRUE(result.met);
  EXPECT_GE(result.meeting_round, 63u);  // b_start is a's highest port
}

TEST(HardInstances, CoreAlgorithmStillMeetsOnTheorem4GraphWithKt1) {
  // Contrast: the same bridged-cliques topology with the full model is an
  // easy dense instance for Theorem 1's algorithm (δ = n/2 - 1 >= √n).
  const auto inst = theorem4_instance(64);
  core::RendezvousOptions options;
  options.strategy = core::Strategy::Whiteboard;
  options.seed = 9;
  const auto report =
      core::run_rendezvous(inst.graph, inst.placement, options);
  EXPECT_TRUE(report.run.met) << report.describe();
}

}  // namespace
}  // namespace fnr::lower_bounds
