// End-to-end service tests: an in-process fnrd Daemon on a temp Unix
// socket, driven through service::Connection exactly as fnrc drives the
// real binary. Covers concurrent campaigns, the replay-then-follow stream
// contract, mid-stream client disconnects, max_cells pause + RESUME, the
// report-equals-batch-bytes determinism guarantee, and the hostile-input
// battery (invalid JSON requests, framing violations) that must never take
// the daemon down.
#include "service/daemon.hpp"

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campaign/campaign.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "sweep/spec.hpp"
#include "util/check.hpp"
#include "util/json.hpp"

namespace fnr::service {
namespace {

constexpr const char* kServiceSpec = R"(
name       = svc
trials     = 2
programs   = whiteboard, random-walk
scenarios  = sync-pair
topologies = ring
sizes      = 16, 32
seeds      = 1
)";

/// One in-process daemon on a fresh workdir + socket, torn down cleanly.
class DaemonFixture {
 public:
  explicit DaemonFixture(const std::string& tag, unsigned workers = 2,
                         unsigned jobs = 1)
      : workdir_(testing::TempDir() + "fnrd_" + tag), jobs_(jobs) {
    std::filesystem::remove_all(workdir_);
    std::filesystem::create_directories(workdir_);
    DaemonOptions options;
    options.socket_path = workdir_ + "/sock";
    options.workdir = workdir_;
    options.workers = workers;
    options.threads = 2;
    options.jobs = jobs_;
    daemon_ = std::make_unique<Daemon>(options);
    thread_ = std::thread([this] { daemon_->run(); });
  }

  ~DaemonFixture() {
    stop();
    std::filesystem::remove_all(workdir_);
  }

  void stop() {
    if (thread_.joinable()) {
      daemon_->request_stop();
      thread_.join();
    }
  }

  /// Kills the daemon thread abruptly-ish: request_stop without touching
  /// workdir files, then restarts a fresh Daemon over the same state —
  /// what a kill -9 + restart leaves behind, minus the in-memory registry.
  void restart() {
    stop();
    DaemonOptions options;
    options.socket_path = workdir_ + "/sock";
    options.workdir = workdir_;
    options.workers = 2;
    options.threads = 2;
    options.jobs = jobs_;
    daemon_ = std::make_unique<Daemon>(options);
    thread_ = std::thread([this] { daemon_->run(); });
  }

  [[nodiscard]] const std::string& workdir() const { return workdir_; }
  [[nodiscard]] std::string socket_path() const { return workdir_ + "/sock"; }

  /// The listener appears asynchronously after run() starts — retry.
  [[nodiscard]] Connection connect() const {
    for (int attempt = 0; attempt < 500; ++attempt) {
      try {
        return Connection(socket_path());
      } catch (const CheckError&) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
    throw std::runtime_error("daemon never started listening");
  }

 private:
  std::string workdir_;
  unsigned jobs_ = 1;
  std::unique_ptr<Daemon> daemon_;
  std::thread thread_;
};

std::string frame_type(const std::string& payload) {
  JsonCursor cursor(payload, "response");
  cursor.expect('{');
  const std::string field = cursor.parse_string();
  EXPECT_EQ(field, "type") << payload;
  cursor.expect(':');
  return cursor.parse_string();
}

Request submit_request(const std::string& campaign,
                       std::uint64_t max_cells = 0) {
  Request request;
  request.verb = Verb::Submit;
  request.campaign = campaign;
  request.spec_text = kServiceSpec;
  request.max_cells = max_cells;
  return request;
}

Request verb_request(Verb verb, const std::string& campaign) {
  Request request;
  request.verb = verb;
  request.campaign = campaign;
  return request;
}

/// Streams `campaign` to its end frame; returns the cell frames.
std::vector<std::string> stream_to_end(Connection& connection,
                                       const std::string& campaign,
                                       std::string* end_state = nullptr) {
  connection.send(serialize_request(verb_request(Verb::Stream, campaign)));
  std::vector<std::string> cells;
  for (;;) {
    const std::string payload = connection.recv();
    const std::string type = frame_type(payload);
    if (type == "end") {
      if (end_state != nullptr) *end_state = payload;
      return cells;
    }
    EXPECT_EQ(type, "cell") << payload;
    if (type != "cell") return cells;  // error frame: bail with what we have
    cells.push_back(payload);
  }
}

/// The batch-surface reference bytes for kServiceSpec.
std::string batch_report() {
  const auto spec = sweep::parse_spec(kServiceSpec);
  campaign::CampaignOptions options;
  options.threads = 2;
  campaign::Campaign run(spec, options);
  return campaign::to_json(spec, run.run().cells);
}

TEST(FnrdService, ServesTwoConcurrentCampaignsWithStreamedResults) {
  DaemonFixture daemon("concurrent");
  const auto spec = sweep::parse_spec(kServiceSpec);
  const std::size_t total = sweep::expand(spec).size();

  Connection submit_a = daemon.connect();
  Connection submit_b = daemon.connect();
  submit_a.send(serialize_request(submit_request("alpha")));
  submit_b.send(serialize_request(submit_request("beta")));
  EXPECT_EQ(frame_type(submit_a.recv()), "submitted");
  EXPECT_EQ(frame_type(submit_b.recv()), "submitted");

  // Two independent streaming clients follow the two campaigns.
  Connection stream_a = daemon.connect();
  Connection stream_b = daemon.connect();
  std::vector<std::string> cells_a, cells_b;
  cells_a = stream_to_end(stream_a, "alpha");
  cells_b = stream_to_end(stream_b, "beta");
  EXPECT_EQ(cells_a.size(), total);
  EXPECT_EQ(cells_b.size(), total);

  // Identical spec ⇒ identical cell frames, modulo the campaign name.
  for (std::size_t i = 0; i < cells_a.size(); ++i) {
    std::string renamed = cells_b[i];
    const auto pos = renamed.find("\"beta\"");
    ASSERT_NE(pos, std::string::npos);
    renamed.replace(pos, 6, "\"alpha\"");
    EXPECT_EQ(cells_a[i], renamed);
  }

  // Both reports match the batch surface byte-for-byte.
  const std::string expected = batch_report();
  for (const char* name : {"alpha", "beta"}) {
    Connection reporter = daemon.connect();
    reporter.send(serialize_request(verb_request(Verb::Report, name)));
    const std::string payload = reporter.recv();
    EXPECT_EQ(frame_type(payload), "report");
    EXPECT_NE(payload.find(expected), std::string::npos)
        << "report for " << name << " diverges from the batch bytes";
  }
}

TEST(FnrdService, ParallelExecutorStreamsIdenticalFrameSequence) {
  // A daemon running its campaigns on the jobs=4 cell executor must
  // stream the exact frame sequence of a sequential daemon: cell frames
  // append to the replay log in the executor's canonical flush order, so
  // the pool size is invisible on the wire.
  const auto frames_at = [](const std::string& tag, unsigned jobs) {
    DaemonFixture daemon(tag, 2, jobs);
    Connection submit = daemon.connect();
    submit.send(serialize_request(submit_request("gamma")));
    EXPECT_EQ(frame_type(submit.recv()), "submitted");
    Connection stream = daemon.connect();
    return stream_to_end(stream, "gamma");
  };
  const auto sequential = frames_at("frames_j1", 1);
  const auto parallel = frames_at("frames_j4", 4);
  const auto grid = sweep::expand(sweep::parse_spec(kServiceSpec));
  EXPECT_EQ(sequential.size(), grid.size());
  EXPECT_EQ(parallel, sequential);
}

TEST(FnrdService, MidStreamDisconnectLosesNothing) {
  DaemonFixture daemon("disconnect");
  Connection submitter = daemon.connect();
  submitter.send(serialize_request(submit_request("drop")));
  EXPECT_EQ(frame_type(submitter.recv()), "submitted");

  // First client reads one frame and vanishes mid-stream.
  {
    Connection dropper = daemon.connect();
    dropper.send(serialize_request(verb_request(Verb::Stream, "drop")));
    (void)dropper.recv();
    dropper.close();
  }

  // A fresh client still gets the complete replayed sequence.
  Connection follower = daemon.connect();
  const auto spec = sweep::parse_spec(kServiceSpec);
  const auto cells = stream_to_end(follower, "drop");
  EXPECT_EQ(cells.size(), sweep::expand(spec).size());
}

TEST(FnrdService, MaxCellsPausesThenResumeCompletesWithBatchBytes) {
  DaemonFixture daemon("resume");
  Connection client = daemon.connect();
  client.send(serialize_request(submit_request("pauser", /*max_cells=*/2)));
  EXPECT_EQ(frame_type(client.recv()), "submitted");

  // The stream ends with state=paused after two cells.
  std::string end_payload;
  Connection stream_one = daemon.connect();
  const auto first = stream_to_end(stream_one, "pauser", &end_payload);
  EXPECT_EQ(first.size(), 2u);
  EXPECT_NE(end_payload.find("\"state\":\"paused\""), std::string::npos);

  // RESUME clears max_cells and re-runs; restored cells replay first.
  Connection resumer = daemon.connect();
  resumer.send(serialize_request(verb_request(Verb::Resume, "pauser")));
  EXPECT_EQ(frame_type(resumer.recv()), "resumed");

  Connection stream_two = daemon.connect();
  const auto all = stream_to_end(stream_two, "pauser", &end_payload);
  const auto spec = sweep::parse_spec(kServiceSpec);
  EXPECT_EQ(all.size(), sweep::expand(spec).size());
  EXPECT_NE(end_payload.find("\"state\":\"done\""), std::string::npos);

  Connection reporter = daemon.connect();
  reporter.send(serialize_request(verb_request(Verb::Report, "pauser")));
  const std::string report = reporter.recv();
  EXPECT_NE(report.find(batch_report()), std::string::npos);
}

TEST(FnrdService, ResumeAfterRestartRecoversFromPersistedState) {
  DaemonFixture daemon("restart");
  {
    Connection client = daemon.connect();
    client.send(serialize_request(submit_request("phoenix", /*max_cells=*/2)));
    EXPECT_EQ(frame_type(client.recv()), "submitted");
    Connection stream = daemon.connect();
    std::string end_payload;
    (void)stream_to_end(stream, "phoenix", &end_payload);
    EXPECT_NE(end_payload.find("\"state\":\"paused\""), std::string::npos);
  }

  // A fresh daemon process knows nothing in memory; RESUME must rebuild
  // the campaign from <workdir>/phoenix.submit.json + the checkpoint.
  daemon.restart();
  Connection resumer = daemon.connect();
  resumer.send(serialize_request(verb_request(Verb::Resume, "phoenix")));
  EXPECT_EQ(frame_type(resumer.recv()), "resumed");

  std::string end_payload;
  Connection stream = daemon.connect();
  const auto cells = stream_to_end(stream, "phoenix", &end_payload);
  const auto spec = sweep::parse_spec(kServiceSpec);
  EXPECT_EQ(cells.size(), sweep::expand(spec).size());
  EXPECT_NE(end_payload.find("\"state\":\"done\""), std::string::npos);

  Connection reporter = daemon.connect();
  reporter.send(serialize_request(verb_request(Verb::Report, "phoenix")));
  EXPECT_NE(reporter.recv().find(batch_report()), std::string::npos);
}

TEST(FnrdService, RejectsDuplicateSubmitsAndUnknownCampaigns) {
  DaemonFixture daemon("rejects");
  Connection client = daemon.connect();
  client.send(serialize_request(submit_request("dup")));
  EXPECT_EQ(frame_type(client.recv()), "submitted");
  client.send(serialize_request(submit_request("dup")));
  const std::string dup_error = client.recv();
  EXPECT_EQ(frame_type(dup_error), "error");
  EXPECT_NE(dup_error.find("resume"), std::string::npos);

  client.send(serialize_request(verb_request(Verb::Report, "no-such")));
  EXPECT_EQ(frame_type(client.recv()), "error");
  client.send(serialize_request(verb_request(Verb::Cancel, "no-such")));
  EXPECT_EQ(frame_type(client.recv()), "error");
}

TEST(FnrdService, InvalidJsonRequestGetsErrorFrameAndConnectionSurvives) {
  DaemonFixture daemon("badjson");
  Connection client = daemon.connect();
  for (const char* garbage :
       {"not json at all", "{\"verb\":\"launch\"}", "{\"verb\":\"submit\"}",
        "{\"verb\":\"cancel\",\"campaign\":\"../oops\"}", "{{{{"}) {
    client.send(garbage);
    EXPECT_EQ(frame_type(client.recv()), "error") << garbage;
  }
  // The connection keeps serving after every rejected request.
  client.send(serialize_request(verb_request(Verb::Status, "")));
  EXPECT_EQ(frame_type(client.recv()), "status");
}

TEST(FnrdService, FramingViolationDropsTheConnectionNotTheDaemon) {
  DaemonFixture daemon("framing");
  { (void)daemon.connect(); }  // wait until the daemon is listening
  {
    // A hostile length prefix (256 MiB) straight onto the socket.
    net::OwnedFd raw = net::connect_unix(daemon.socket_path());
    const char huge[8] = {'\x10', 0, 0, 0, 'x', 'x', 'x', 'x'};
    ASSERT_EQ(::write(raw.get(), huge, sizeof(huge)),
              static_cast<long>(sizeof(huge)));
    // The daemon must close this connection: read() returns EOF.
    char byte = 0;
    long got = -1;
    for (int attempt = 0; attempt < 500; ++attempt) {
      got = ::read(raw.get(), &byte, 1);
      if (got >= 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_EQ(got, 0) << "expected EOF from the daemon";
  }
  // And keep serving everyone else.
  Connection client = daemon.connect();
  client.send(serialize_request(verb_request(Verb::Status, "")));
  EXPECT_EQ(frame_type(client.recv()), "status");
}

TEST(FnrdService, GracefulStopCancelsRunningCampaigns) {
  DaemonFixture daemon("drain");
  Connection client = daemon.connect();
  client.send(serialize_request(submit_request("draining")));
  EXPECT_EQ(frame_type(client.recv()), "submitted");
  // Stop while the campaign may still be running: the drain cancels it at
  // a cell boundary and joins the workers — this must not hang or crash.
  daemon.stop();
  SUCCEED();
}

}  // namespace
}  // namespace fnr::service
