// TrialAccumulator emission round-trips and merge robustness.
//
// CSV and JSON rows are consumed by scripts and dashboards; this suite
// parses exactly what we emit and checks every field against the aggregate
// it came from (integers exactly, doubles to the emitted precision). The
// merge fuzz partitions one outcome multiset at random many times and
// checks that any grouping and insertion order produces a bit-identical
// aggregate.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "test_support.hpp"

namespace fnr::runner {
namespace {

using test::bits_equal;

TrialOutcome synthetic_outcome(std::uint64_t trial, std::uint64_t seed) {
  TrialOutcome out;
  out.trial = trial;
  out.seed = seed;
  out.met = seed % 5 != 0;
  out.meeting_round = out.met ? (seed % 977) + 1 : 0;
  out.rounds = out.met ? out.meeting_round : 4096;
  out.moves_a = seed % 131;
  out.moves_b = seed % 149;
  out.whiteboard_marks = seed % 11;
  out.faults.crashes = seed % 3;
  out.faults.restarts = seed % 3;
  out.faults.writes_dropped = seed % 7;
  out.faults.wipes = seed % 2;
  out.faults.stale_reads = seed % 5;
  out.faults.moves_blocked = seed % 13;
  return out;
}

TrialAggregate sample_aggregate(std::uint64_t base_seed, std::uint64_t n) {
  TrialAccumulator acc;
  for (std::uint64_t t = 0; t < n; ++t)
    acc.add(synthetic_outcome(t, trial_seed(base_seed, t)));
  return acc.aggregate();
}

/// RFC-4180-aware splitter: a field starting with `"` runs to the closing
/// quote (with `""` unescaping to `"`), so quoted labels containing commas
/// come back as one field.
std::vector<std::string> split_csv(const std::string& line) {
  std::vector<std::string> fields;
  std::string current;
  bool quoted = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (quoted) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          quoted = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"' && current.empty()) {
      quoted = true;
    } else if (c == ',') {
      fields.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  fields.push_back(current);
  return fields;
}

/// Extracts the number following "key": in a flat JSON fragment.
double json_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  EXPECT_NE(pos, std::string::npos) << "missing key " << key;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

TEST(TrialIoRoundtrip, CsvRowParsesBackToTheAggregate) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto agg = sample_aggregate(seed, 40 + seed);
    const auto header = split_csv(TrialAggregate::csv_header());
    const auto row = split_csv(agg.to_csv_row("cell_x"));
    ASSERT_EQ(header.size(), row.size());
    ASSERT_EQ(header.front(), "label");
    EXPECT_EQ(row.front(), "cell_x");
    // Parse every numeric field by header name and compare to the source
    // (integers exactly; doubles to the 2/4-decimal emitted precision).
    for (std::size_t i = 1; i < header.size(); ++i) {
      const double value = std::strtod(row[i].c_str(), nullptr);
      const auto& name = header[i];
      if (name == "trials") {
        EXPECT_EQ(value, static_cast<double>(agg.trials));
      } else if (name == "successes") {
        EXPECT_EQ(value, static_cast<double>(agg.successes));
      } else if (name == "failures") {
        EXPECT_EQ(value, static_cast<double>(agg.failures));
      } else if (name == "success_rate") {
        EXPECT_NEAR(value, agg.success_rate, 5e-5);
      } else if (name == "rounds_mean") {
        EXPECT_NEAR(value, agg.rounds.mean, 5e-3);
      } else if (name == "rounds_median") {
        EXPECT_NEAR(value, agg.rounds.median, 5e-3);
      } else if (name == "rounds_p90") {
        EXPECT_NEAR(value, agg.rounds.p90, 5e-3);
      } else if (name == "rounds_p95") {
        EXPECT_NEAR(value, agg.rounds.p95, 5e-3);
      } else if (name == "rounds_min") {
        EXPECT_NEAR(value, agg.rounds.min, 5e-3);
      } else if (name == "rounds_max") {
        EXPECT_NEAR(value, agg.rounds.max, 5e-3);
      } else if (name == "mean_gathered") {
        EXPECT_NEAR(value, agg.mean_gathered, 5e-3);
      } else if (name == "total_marks") {
        EXPECT_EQ(value, static_cast<double>(agg.total_marks));
      } else if (name == "mean_marks") {
        EXPECT_NEAR(value, agg.mean_marks, 5e-3);
      } else if (name == "mean_moves_a") {
        EXPECT_NEAR(value, agg.mean_moves_a, 5e-3);
      } else if (name == "mean_moves_b") {
        EXPECT_NEAR(value, agg.mean_moves_b, 5e-3);
      } else if (name == "fault_crashes") {
        EXPECT_EQ(value, static_cast<double>(agg.fault_totals.crashes));
      } else if (name == "fault_restarts") {
        EXPECT_EQ(value, static_cast<double>(agg.fault_totals.restarts));
      } else if (name == "fault_writes_dropped") {
        EXPECT_EQ(value, static_cast<double>(agg.fault_totals.writes_dropped));
      } else if (name == "fault_wipes") {
        EXPECT_EQ(value, static_cast<double>(agg.fault_totals.wipes));
      } else if (name == "fault_stale_reads") {
        EXPECT_EQ(value, static_cast<double>(agg.fault_totals.stale_reads));
      } else if (name == "fault_moves_blocked") {
        EXPECT_EQ(value, static_cast<double>(agg.fault_totals.moves_blocked));
      } else {
        ADD_FAILURE() << "csv_header grew an untested column: " << name;
      }
    }
  }
}

TEST(TrialIoRoundtrip, HostileLabelsAreQuotedAndRoundTrip) {
  // Cell keys embed program parameter values (`?key=value&...`) and fault
  // suffixes (`|fault=<key>`); commas and quotes in a value used to shift
  // every later column of the row.
  const auto agg = sample_aggregate(5, 48);
  const std::size_t columns = split_csv(TrialAggregate::csv_header()).size();
  const std::vector<std::string> labels = {
      "whiteboard?k=1,j=2",
      "alg?note=\"quoted\"",
      "a,b\"c\",,\"",
      "plain-label",
  };
  for (const auto& label : labels) {
    const auto row = split_csv(agg.to_csv_row(label));
    ASSERT_EQ(row.size(), columns) << "label shifted columns: " << label;
    EXPECT_EQ(row.front(), label);
    // The numeric columns are unaffected by the label.
    EXPECT_EQ(row[1], std::to_string(agg.trials));
    EXPECT_EQ(row[2], std::to_string(agg.successes));
  }
  // Unquoted plain labels stay byte-identical to the pre-quoting format.
  EXPECT_EQ(agg.to_csv_row("cell_x").rfind("cell_x,", 0), 0u);
  // A label with a comma is emitted inside quotes, inner quotes doubled.
  EXPECT_EQ(agg.to_csv_row("a,\"b\"").rfind("\"a,\"\"b\"\"\",", 0), 0u);
}

TEST(TrialIoRoundtrip, JsonParsesBackToTheAggregate) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const auto agg = sample_aggregate(seed * 31, 25 + seed);
    const auto json = agg.to_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
              std::count(json.begin(), json.end(), '}'));
    EXPECT_EQ(json_number(json, "trials"), static_cast<double>(agg.trials));
    EXPECT_EQ(json_number(json, "successes"),
              static_cast<double>(agg.successes));
    EXPECT_EQ(json_number(json, "failures"),
              static_cast<double>(agg.failures));
    EXPECT_NEAR(json_number(json, "success_rate"), agg.success_rate, 5e-5);
    EXPECT_NEAR(json_number(json, "mean"), agg.rounds.mean, 5e-3);
    EXPECT_NEAR(json_number(json, "median"), agg.rounds.median, 5e-3);
    EXPECT_NEAR(json_number(json, "p90"), agg.rounds.p90, 5e-3);
    EXPECT_NEAR(json_number(json, "p95"), agg.rounds.p95, 5e-3);
    EXPECT_NEAR(json_number(json, "min"), agg.rounds.min, 5e-3);
    EXPECT_NEAR(json_number(json, "max"), agg.rounds.max, 5e-3);
    EXPECT_EQ(json_number(json, "total_marks"),
              static_cast<double>(agg.total_marks));
    EXPECT_NEAR(json_number(json, "mean_gathered"), agg.mean_gathered, 5e-3);
    EXPECT_NEAR(json_number(json, "mean_marks"), agg.mean_marks, 5e-3);
    EXPECT_NEAR(json_number(json, "mean_moves_a"), agg.mean_moves_a, 5e-3);
    EXPECT_NEAR(json_number(json, "mean_moves_b"), agg.mean_moves_b, 5e-3);
    ASSERT_TRUE(agg.fault_totals.any());  // synthetic outcomes carry faults
    EXPECT_NE(json.find("\"faults\""), std::string::npos);
    EXPECT_EQ(json_number(json, "crashes"),
              static_cast<double>(agg.fault_totals.crashes));
    EXPECT_EQ(json_number(json, "restarts"),
              static_cast<double>(agg.fault_totals.restarts));
    EXPECT_EQ(json_number(json, "writes_dropped"),
              static_cast<double>(agg.fault_totals.writes_dropped));
    EXPECT_EQ(json_number(json, "wipes"),
              static_cast<double>(agg.fault_totals.wipes));
    EXPECT_EQ(json_number(json, "stale_reads"),
              static_cast<double>(agg.fault_totals.stale_reads));
    EXPECT_EQ(json_number(json, "moves_blocked"),
              static_cast<double>(agg.fault_totals.moves_blocked));
  }
}

TEST(TrialIoRoundtrip, FaultFreeJsonOmitsTheFaultsBlock) {
  // Scripts diff fault-free aggregates against pre-fault-layer artifacts,
  // so an all-zero counter block must not appear at all.
  TrialAccumulator acc;
  for (std::uint64_t t = 0; t < 16; ++t) {
    TrialOutcome out = synthetic_outcome(t, trial_seed(77, t));
    out.faults = fault::FaultStats{};
    acc.add(out);
  }
  const auto agg = acc.aggregate();
  EXPECT_FALSE(agg.fault_totals.any());
  EXPECT_EQ(agg.to_json().find("\"faults\""), std::string::npos);
  // The CSV row still carries the (zero) columns — fixed-width schema.
  const auto row = split_csv(agg.to_csv_row("cell_y"));
  ASSERT_EQ(row.size(), split_csv(TrialAggregate::csv_header()).size());
  for (std::size_t i = row.size() - 6; i < row.size(); ++i)
    EXPECT_EQ(row[i], "0");
}

TEST(TrialIoRoundtrip, MergeFuzzAcrossRandomPartitions) {
  // One multiset of outcomes; many random partitions, shuffled insertion
  // orders, and fold orders — every grouping must aggregate bit-identically.
  constexpr std::uint64_t kOutcomes = 64;
  std::vector<TrialOutcome> outcomes;
  for (std::uint64_t t = 0; t < kOutcomes; ++t)
    outcomes.push_back(synthetic_outcome(t, trial_seed(1234, t)));
  TrialAccumulator reference;
  for (const auto& out : outcomes) reference.add(out);
  const auto reference_agg = reference.aggregate();

  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    Rng rng(seed, 99);
    const std::size_t parts = 1 + rng.below(7);
    std::vector<TrialAccumulator> buckets(parts);
    // Assign outcomes to buckets at random, inserting in shuffled order.
    std::vector<std::size_t> order(kOutcomes);
    for (std::size_t i = 0; i < kOutcomes; ++i) order[i] = i;
    shuffle(order, rng);
    for (const auto i : order) buckets[rng.below(parts)].add(outcomes[i]);

    // Fold the buckets together in a random order.
    std::vector<std::size_t> fold(parts);
    for (std::size_t i = 0; i < parts; ++i) fold[i] = i;
    shuffle(fold, rng);
    TrialAccumulator merged = buckets[fold[0]];
    for (std::size_t i = 1; i < parts; ++i) merged.merge(buckets[fold[i]]);

    EXPECT_EQ(merged.count(), kOutcomes);
    EXPECT_TRUE(bits_equal(merged.aggregate(), reference_agg))
        << "partition seed " << seed << " with " << parts << " buckets";

    // And the associativity pattern ((A ∪ B) ∪ rest) vs (A ∪ (B ∪ rest)).
    if (parts >= 3) {
      TrialAccumulator left = buckets[0];
      left.merge(buckets[1]);
      for (std::size_t i = 2; i < parts; ++i) left.merge(buckets[i]);
      TrialAccumulator tail = buckets[1];
      for (std::size_t i = 2; i < parts; ++i) tail.merge(buckets[i]);
      TrialAccumulator right = buckets[0];
      right.merge(tail);
      EXPECT_TRUE(bits_equal(left.aggregate(), right.aggregate()));
      EXPECT_TRUE(bits_equal(left.aggregate(), reference_agg));
    }
  }
}

}  // namespace
}  // namespace fnr::runner
