// Unit tests for ScriptedAgent: plan execution, write+move rounds,
// wait-until semantics, and on_idle re-entry.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "sim/scripted_agent.hpp"

namespace fnr::sim {
namespace {

class StillAgent final : public Agent {
 public:
  Action step(const View&) override { return Action::stay(); }
};

/// Walks a triangle once using a planned route, then idles.
class TriangleWalker final : public ScriptedAgent {
 public:
  std::vector<graph::VertexId> idle_positions;

 protected:
  void on_idle(const View& view) override {
    idle_positions.push_back(view.here());
    if (!planned_) {
      planned_ = true;
      plan_route({1, 2, 0});
    }
  }

 private:
  bool planned_ = false;
};

TEST(ScriptedAgent, ExecutesRouteHopByHop) {
  const auto g = graph::make_complete(4);
  Scheduler scheduler(g, Model::full());
  TriangleWalker a;
  StillAgent b;
  (void)scheduler.run(a, b, Placement{0, 3}, 6);
  // on_idle at start (vertex 0), then after the 3-hop route back at 0.
  ASSERT_GE(a.idle_positions.size(), 2u);
  EXPECT_EQ(a.idle_positions[0], 0u);
  EXPECT_EQ(a.idle_positions[1], 0u);
}

/// Writes while moving in a single round.
class WriteAndGo final : public ScriptedAgent {
 protected:
  void on_idle(const View& view) override {
    if (view.round() == 0) plan_write_and_move(99, 1);
  }
};

TEST(ScriptedAgent, WritePlusMoveInOneRound) {
  const auto g = graph::make_path(3);
  Scheduler scheduler(g, Model::full());
  WriteAndGo a;
  StillAgent b;
  const auto result = scheduler.run(a, b, Placement{0, 2}, 2);
  EXPECT_EQ(result.metrics.whiteboard_writes, 1u);
  EXPECT_EQ(result.metrics.moves[0], 1u);
}

/// Waits until an absolute round then moves.
class WaitUntilAgent final : public ScriptedAgent {
 public:
  std::uint64_t moved_at = 0;

 protected:
  void on_idle(const View& view) override {
    if (view.round() == 0) {
      plan_wait_until(5);
      plan_move(1);
    } else if (moved_at == 0) {
      moved_at = view.round();  // first idle after the move
    }
  }
};

TEST(ScriptedAgent, WaitUntilHoldsExactly) {
  const auto g = graph::make_path(3);
  Scheduler scheduler(g, Model::full());
  WaitUntilAgent a;
  StillAgent b;
  (void)scheduler.run(a, b, Placement{0, 2}, 10);
  // Stays rounds 0..4, moves at round 5, idles (at vertex 1) at round 6.
  EXPECT_EQ(a.moved_at, 6u);
}

TEST(ScriptedAgent, WaitUntilInThePastIsOneRound) {
  const auto g = graph::make_path(3);

  class PastWait final : public ScriptedAgent {
   public:
    std::uint64_t idles = 0;

   protected:
    void on_idle(const View& view) override {
      ++idles;
      if (view.round() == 0) plan_wait_until(0);  // already reached
    }
  };
  Scheduler scheduler(g, Model::full());
  PastWait a;
  StillAgent b;
  (void)scheduler.run(a, b, Placement{0, 2}, 3);
  // Round 0 consumes the no-op wait; rounds 1, 2 idle again.
  EXPECT_EQ(a.idles, 3u);
}

/// plan_wait produces exactly k stationary rounds.
class CountedWaiter final : public ScriptedAgent {
 public:
  std::vector<std::uint64_t> idle_rounds;

 protected:
  void on_idle(const View& view) override {
    idle_rounds.push_back(view.round());
    if (view.round() == 0) plan_wait(3);
  }
};

TEST(ScriptedAgent, PlanWaitCounts) {
  const auto g = graph::make_path(3);
  Scheduler scheduler(g, Model::full());
  CountedWaiter a;
  StillAgent b;
  (void)scheduler.run(a, b, Placement{0, 2}, 6);
  // idle at round 0 (plans 3 waits covering rounds 0,1,2), idle again at 3+.
  ASSERT_GE(a.idle_rounds.size(), 2u);
  EXPECT_EQ(a.idle_rounds[0], 0u);
  EXPECT_EQ(a.idle_rounds[1], 3u);
}

}  // namespace
}  // namespace fnr::sim
