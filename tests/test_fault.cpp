// The fault & churn engine: plan parsing and canonical keys, per-site
// skip/count reach semantics, each fault family's observable effect on a
// run, and the determinism contracts — a rate-0 (or absent) plan is
// bit-identical to the fault-free path, faulty aggregates are identical
// across thread counts, and a fault-axis sweep campaign survives
// interrupt/resume and shard merges byte-for-byte.
#include "fault/fault.hpp"

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/run.hpp"
#include "sim/scheduler.hpp"
#include "sim/view.hpp"
#include "sweep/engine.hpp"
#include "test_support.hpp"
#include "util/check.hpp"

namespace fnr {
namespace {

using test::bits_equal;

// --- plan parsing ------------------------------------------------------------

TEST(FaultPlan, ParsesCanonicalKeysAndRoundTrips) {
  EXPECT_FALSE(fault::FaultPlan::parse("none").active());
  EXPECT_EQ(fault::FaultPlan::parse("none").key(), "");
  EXPECT_FALSE(fault::FaultPlan().active());

  const auto crash = fault::FaultPlan::parse("crash?rate=0.05&downtime=4");
  EXPECT_TRUE(crash.active());
  EXPECT_EQ(crash.key(), "crash?downtime=4&rate=0.05");  // name-sorted
  EXPECT_TRUE(crash.spec(fault::Site::AgentCrash).armed);
  EXPECT_DOUBLE_EQ(crash.spec(fault::Site::AgentCrash).rate, 0.05);
  EXPECT_EQ(crash.spec(fault::Site::AgentCrash).downtime, 4u);
  EXPECT_FALSE(crash.whiteboard_only());

  // A bare family arms with defaults; combined clauses keep Site order.
  const auto combo = fault::FaultPlan::parse("churn?rate=0.5+wb-drop");
  EXPECT_EQ(combo.key(), "wb-drop+churn?rate=0.5");
  EXPECT_TRUE(combo.spec(fault::Site::WhiteboardDrop).armed);
  EXPECT_TRUE(combo.spec(fault::Site::EdgeChurn).armed);
  EXPECT_FALSE(combo.spec(fault::Site::WhiteboardWipe).armed);

  // key() is a valid spec: parsing it back yields the same key.
  for (const char* spec :
       {"crash?rate=0.01", "wb-drop?rate=0.2&skip=3&count=2",
        "wb-stale?rate=1+wb-wipe?rate=0.25", "churn?count=8&rate=0.1&skip=16"})
    EXPECT_EQ(fault::FaultPlan::parse(fault::FaultPlan::parse(spec).key()).key(),
              fault::FaultPlan::parse(spec).key())
        << spec;

  EXPECT_TRUE(fault::FaultPlan::parse("wb-drop+wb-wipe+wb-stale")
                  .whiteboard_only());
  EXPECT_FALSE(fault::FaultPlan::parse("wb-drop+crash").whiteboard_only());
  EXPECT_FALSE(fault::FaultPlan().whiteboard_only());
}

TEST(FaultPlan, RejectsMalformedSpecsNamingTheFamilies) {
  // Unknown family errors enumerate the valid set, like program labels do.
  try {
    (void)fault::FaultPlan::parse("meteor?rate=0.5");
    FAIL() << "unknown family must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("meteor"), std::string::npos) << what;
    EXPECT_NE(what.find("wb-drop"), std::string::npos) << what;
    EXPECT_NE(what.find("churn"), std::string::npos) << what;
  }
  EXPECT_THROW((void)fault::FaultPlan::parse(""), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("?rate=0.5"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate=0.5&"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?=0.5"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate=0.1&rate=0.2"),
               CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?bogus=1"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("wb-drop?downtime=4"),
               CheckError);  // downtime is crash-only
  EXPECT_THROW((void)fault::FaultPlan::parse("crash+"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("none+crash"), CheckError);
  // Values are range- and finiteness-checked.
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate=nan"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate=inf"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate=1.5"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?rate=-0.1"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?downtime=0"), CheckError);
  EXPECT_THROW((void)fault::FaultPlan::parse("crash?skip=1.5"), CheckError);
}

// --- session reach / churn semantics ----------------------------------------

TEST(FaultSession, SkipAndCountDelimitTheFireWindow) {
  // rate=1 fires deterministically; skip=3 passes the first three
  // opportunities through, count=2 caps the fires.
  auto plan = fault::FaultPlan::parse("wb-drop?rate=1&skip=3&count=2");
  fault::FaultSession session(plan, Rng(42, 1));
  int fires = 0;
  for (int i = 0; i < 10; ++i)
    if (session.reach(fault::Site::WhiteboardDrop)) ++fires;
  EXPECT_EQ(fires, 2);
  // An unarmed site never fires and never draws.
  EXPECT_FALSE(session.reach(fault::Site::AgentCrash));
}

TEST(FaultSession, ChurnMaskIsSymmetricStatelessAndWindowed) {
  const auto plan = fault::FaultPlan::parse("churn?rate=0.5&skip=4&count=8");
  const fault::FaultSession session(plan, Rng(7, 2));
  int down = 0;
  for (std::uint64_t round = 4; round < 12; ++round)
    for (graph::VertexIndex u = 0; u < 12; ++u)
      for (graph::VertexIndex v = u + 1; v < 12; ++v) {
        const bool d = session.edge_down(round, u, v);
        EXPECT_EQ(d, session.edge_down(round, v, u));    // symmetric
        EXPECT_EQ(d, session.edge_down(round, u, v));    // stateless
        if (d) ++down;
      }
  EXPECT_GT(down, 0);
  // Outside the [skip, skip+count) round window every edge is up.
  for (graph::VertexIndex v = 1; v < 12; ++v) {
    EXPECT_FALSE(session.edge_down(3, 0, v));
    EXPECT_FALSE(session.edge_down(12, 0, v));
  }
  // Two sessions with different seeds disagree somewhere (seed reaches the
  // hash); the same seed replays the same mask.
  const fault::FaultSession twin(plan, Rng(7, 2));
  const fault::FaultSession other(plan, Rng(8, 2));
  int twin_agree = 0, other_agree = 0, total = 0;
  for (graph::VertexIndex v = 1; v < 40; ++v) {
    ++total;
    if (session.edge_down(6, 0, v) == twin.edge_down(6, 0, v)) ++twin_agree;
    if (session.edge_down(6, 0, v) == other.edge_down(6, 0, v)) ++other_agree;
  }
  EXPECT_EQ(twin_agree, total);
  EXPECT_LT(other_agree, total);
}

// --- fault families through the scenario layer -------------------------------

scenario::ScenarioOptions options_with(const std::string& fault_spec,
                                       std::uint64_t seed = 5) {
  scenario::ScenarioOptions options;
  options.seed = seed;
  options.fault = fault::FaultPlan::parse(fault_spec);
  return options;
}

runner::TrialAggregate run_whiteboard_trials(
    const scenario::ScenarioOptions& options, const graph::Graph& g,
    std::uint64_t trials = 16, unsigned threads = 1) {
  const auto program = scenario::find_program("whiteboard");
  const auto& scen = scenario::find_scenario("sync-pair");
  const runner::TrialRunner trial_runner(runner::RunnerOptions{threads});
  return scenario::run_scenario_trials(scen, program, g, options, trials,
                                       trial_runner)
      .aggregate();
}

TEST(FaultScenario, RateZeroPlanIsBitExactToTheFaultFreePath) {
  // An armed-but-rate-0 plan takes the faulty code path (session built,
  // null checks taken) yet must not perturb a single byte of the result:
  // reach() never draws at rate 0, and the session RNG splits off *after*
  // the agent streams.
  const auto g = test::dense_graph(64, 9, 8);
  const auto fault_free = run_whiteboard_trials(options_with("none"), g);
  const auto zero_rate =
      run_whiteboard_trials(options_with("crash?rate=0"), g);
  EXPECT_TRUE(bits_equal(fault_free, zero_rate));
  EXPECT_FALSE(fault_free.fault_totals.any());
  EXPECT_EQ(fault_free.to_json(), zero_rate.to_json());
  EXPECT_EQ(fault_free.to_json().find("\"faults\""), std::string::npos);
}

TEST(FaultScenario, CrashLosesStateAndRestartsAfterDowntime) {
  const auto g = test::dense_graph(64, 9, 8);
  // rate=1&count=1 crashes agent 0 at its very first opportunity (round 0,
  // before anything can meet), so every trial records exactly one crash.
  const auto agg = run_whiteboard_trials(
      options_with("crash?rate=1&count=1&downtime=2"), g);
  EXPECT_EQ(agg.fault_totals.crashes, 16u);  // one per trial (count=1)
  EXPECT_GT(agg.fault_totals.restarts, 0u);
  EXPECT_LE(agg.fault_totals.restarts, agg.fault_totals.crashes);
  // The aggregate records the injections in its JSON for the sweep report.
  EXPECT_NE(agg.to_json().find("\"faults\""), std::string::npos);
}

TEST(FaultScenario, CrashWithoutReviverIsACheckError) {
  // The Scheduler only swaps pointers; arming crash without installing a
  // reviver (possible when driving the Scheduler directly) must fail loudly
  // rather than re-running a dead agent.
  const auto g = test::dense_graph(16, 3, 4);
  sim::Scheduler scheduler(g, sim::Model::full());
  auto plan = fault::FaultPlan::parse("crash?rate=1&downtime=1");
  fault::FaultSession session(plan, Rng(1, 2));
  scheduler.set_fault_session(&session);
  class Pacer final : public sim::Agent {
   public:
    sim::Action step(const sim::View&) override {
      return sim::Action::move(0);
    }
  };
  Pacer a, b;
  sim::ScenarioPlacement placement;
  placement.starts = {0, 1};
  EXPECT_THROW((void)scheduler.run_scenario({&a, &b}, placement,
                                            sim::Gathering::AnyPair, 50),
               CheckError);
  scheduler.set_fault_session(nullptr);
}

TEST(FaultScenario, WhiteboardDropsWipesAndStaleReadsBite) {
  const auto g = test::dense_graph(64, 9, 8);

  // rate=1 drop: no write ever lands — the store's write counter stays 0.
  const auto dropped = run_whiteboard_trials(options_with("wb-drop?rate=1"), g);
  EXPECT_GT(dropped.fault_totals.writes_dropped, 0u);
  EXPECT_EQ(dropped.total_marks, 0u);

  // Wipes erase the store every round (one opportunity per round).
  const auto wiped = run_whiteboard_trials(options_with("wb-wipe?rate=1"), g);
  EXPECT_GT(wiped.fault_totals.wipes, 0u);

  // A fault-free control on the same cells sees none of the counters move.
  const auto control = run_whiteboard_trials(options_with("none"), g);
  EXPECT_FALSE(control.fault_totals.any());
  EXPECT_GT(control.total_marks, 0u);
}

TEST(FaultScenario, StaleReadsObserveBottomOverAStoredValue) {
  // Driven at the scheduler layer with a write-then-read agent, because the
  // registry's whiteboard program can meet positionally before it ever
  // reads a marked board. The fault only fires where a value is stored:
  // reads of genuinely empty boards are not counted as stale.
  class WriteThenRead final : public sim::Agent {
   public:
    std::uint64_t saw_value = 0;
    std::uint64_t saw_bottom = 0;
    sim::Action step(const sim::View& view) override {
      if (view.round() == 0) {
        sim::Action a = sim::Action::stay();
        a.whiteboard_write = 7;
        return a;
      }
      if (view.whiteboard().has_value())
        ++saw_value;
      else
        ++saw_bottom;
      return sim::Action::stay();
    }
  };
  const auto g = test::dense_graph(16, 3, 4);
  sim::ScenarioPlacement placement;
  placement.starts = {0, 5};  // both camp on their own vertex: never meet

  sim::Scheduler scheduler(g, sim::Model::full());
  auto plan = fault::FaultPlan::parse("wb-stale?rate=1");
  fault::FaultSession session(plan, Rng(3, 4));
  scheduler.set_fault_session(&session);
  WriteThenRead a, b;
  const auto faulty = scheduler.run_scenario(
      {&a, &b}, placement, sim::Gathering::AnyPair, 5);
  scheduler.set_fault_session(nullptr);
  EXPECT_EQ(a.saw_value + b.saw_value, 0u);
  EXPECT_GT(faulty.faults.stale_reads, 0u);
  EXPECT_EQ(faulty.faults.stale_reads, a.saw_bottom + b.saw_bottom);

  // The same run without the session reads the value back every time.
  WriteThenRead c, d;
  const auto clean = scheduler.run_scenario(
      {&c, &d}, placement, sim::Gathering::AnyPair, 5);
  EXPECT_EQ(c.saw_bottom + d.saw_bottom, 0u);
  EXPECT_GT(c.saw_value + d.saw_value, 0u);
  EXPECT_FALSE(clean.faults.any());
}

TEST(FaultScenario, FullChurnFreezesEveryMove) {
  // rate=1 churn: every edge is down every round, so no agent ever moves
  // and the pair cannot meet (they start on distinct vertices).
  const auto g = test::dense_graph(32, 4, 6);
  scenario::ScenarioOptions options = options_with("churn?rate=1");
  options.max_rounds = 40;
  const auto agg = run_whiteboard_trials(options, g, 8);
  EXPECT_EQ(agg.successes, 0u);
  EXPECT_GT(agg.fault_totals.moves_blocked, 0u);
  EXPECT_DOUBLE_EQ(agg.mean_moves_a + agg.mean_moves_b, 0.0);
}

TEST(FaultScenario, FaultyAggregatesAreThreadCountInvariant) {
  const auto g = test::dense_graph(64, 9, 8);
  const auto options =
      options_with("crash?rate=0.2&downtime=2+wb-drop?rate=0.3", 11);
  const auto one = run_whiteboard_trials(options, g, 24, 1);
  const auto four = run_whiteboard_trials(options, g, 24, 4);
  EXPECT_TRUE(bits_equal(one, four));
  EXPECT_EQ(one.to_json(), four.to_json());
  EXPECT_TRUE(one.fault_totals.any());
}

// --- sweep integration -------------------------------------------------------

constexpr const char* kFaultSweepSpec = R"(
name       = fault-tiny
trials     = 2
programs   = whiteboard
scenarios  = sync-pair
topologies = near-regular:deg=4
sizes      = 16, 32
seeds      = 1
faults     = none, crash?rate=0.2&downtime=2, wb-drop?rate=0.5
)";

/// RAII temp file path (removed on destruction).
class TempPath {
 public:
  explicit TempPath(const std::string& name)
      : path_(testing::TempDir() + name) {
    std::remove(path_.c_str());
  }
  ~TempPath() { std::remove(path_.c_str()); }
  [[nodiscard]] const std::string& str() const { return path_; }

 private:
  std::string path_;
};

TEST(FaultSweep, FaultAxisExpandsInnermostWithSuffixedKeys) {
  const auto spec = sweep::parse_spec(kFaultSweepSpec);
  ASSERT_EQ(spec.faults.size(), 3u);
  const auto grid = sweep::expand(spec);
  ASSERT_EQ(grid.size(), 6u);  // 2 sizes x 3 plans
  // Fault-free cells keep their pre-fault-axis keys; faulty cells append
  // the canonical plan key.
  EXPECT_EQ(grid[0].key().find("|fault="), std::string::npos);
  EXPECT_NE(grid[1].key().find("|fault=crash?downtime=2&rate=0.2"),
            std::string::npos);
  EXPECT_NE(grid[2].key().find("|fault=wb-drop?rate=0.5"), std::string::npos);
  std::set<std::string> keys;
  for (const auto& cell : grid) keys.insert(cell.key());
  EXPECT_EQ(keys.size(), grid.size());

  // A spec without the axis expands to the identical fault-free grid.
  const auto plain = sweep::parse_spec(
      "name = fault-tiny\ntrials = 2\nprograms = whiteboard\n"
      "scenarios = sync-pair\ntopologies = near-regular:deg=4\n"
      "sizes = 16, 32\nseeds = 1\n");
  const auto plain_grid = sweep::expand(plain);
  ASSERT_EQ(plain_grid.size(), 2u);
  EXPECT_EQ(plain_grid[0].key(), grid[0].key());
  EXPECT_EQ(plain_grid[1].key(), grid[3].key());
}

TEST(FaultSweep, WhiteboardOnlyPlansArePrunedOffWhiteboardFreeModels) {
  const auto spec = sweep::parse_spec(
      "name = prune\ntrials = 1\nprograms = no-whiteboard\n"
      "scenarios = sync-pair\ntopologies = near-regular:deg=4\n"
      "sizes = 64\nseeds = 1\n"
      "faults = none, wb-drop?rate=0.5, churn?rate=0.1\n");
  const auto grid = sweep::expand(spec);
  ASSERT_EQ(grid.size(), 2u);  // wb-drop pruned; none + churn remain
  EXPECT_FALSE(grid[0].fault.active());
  EXPECT_TRUE(grid[1].fault.spec(fault::Site::EdgeChurn).armed);
}

TEST(FaultSweep, BadFaultTokenNamesTheSpecLine) {
  try {
    (void)sweep::parse_spec("name = bad\ntrials = 1\nprograms = whiteboard\n"
                            "scenarios = sync-pair\ntopologies = ring\n"
                            "sizes = 16\nseeds = 1\n"
                            "faults = crash?rate=nan\n");
    FAIL() << "non-finite fault rate must throw";
  } catch (const CheckError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("line 8"), std::string::npos) << what;
    EXPECT_NE(what.find("finite"), std::string::npos) << what;
  }
}

TEST(FaultSweep, MissingTwinEmitsNoVsFaultFreeBlock) {
  // A shard (or a truncated merge) can hold a faulty cell whose fault-free
  // twin lives elsewhere; its report entry must then simply carry no
  // vs_fault_free block — not deltas computed against a fabricated control.
  const auto spec = sweep::parse_spec(kFaultSweepSpec);
  const auto full = sweep::run_sweep(spec, sweep::SweepOptions{});
  ASSERT_TRUE(full.complete);
  EXPECT_NE(sweep::to_json(spec, full.cells).find("\"vs_fault_free\""),
            std::string::npos);

  // Split the campaign the worst way: every faulty cell in one "shard",
  // every control twin in the other.
  std::vector<sweep::CellResult> faulty_only;
  std::vector<sweep::CellResult> controls_only;
  for (const auto& cell : full.cells)
    (cell.cell.fault.active() ? faulty_only : controls_only).push_back(cell);
  ASSERT_FALSE(faulty_only.empty());
  ASSERT_FALSE(controls_only.empty());

  const std::string orphaned = sweep::to_json(spec, faulty_only);
  EXPECT_EQ(orphaned.find("\"vs_fault_free\""), std::string::npos);
  // The cells themselves are intact — only the comparison block is gone.
  EXPECT_NE(orphaned.find("\"fault\":\"crash?downtime=2&rate=0.2\""),
            std::string::npos);
  EXPECT_NE(orphaned.find("\"agg\""), std::string::npos);
  EXPECT_EQ(sweep::to_json(spec, controls_only).find("\"vs_fault_free\""),
            std::string::npos);
}

TEST(FaultSweep, InterruptedResumedAndShardedCampaignsMatchByteForByte) {
  const auto spec = sweep::parse_spec(kFaultSweepSpec);

  sweep::SweepOptions uninterrupted;
  uninterrupted.threads = 2;
  const auto full = sweep::run_sweep(spec, uninterrupted);
  ASSERT_TRUE(full.complete);
  const std::string full_json = sweep::to_json(spec, full.cells);
  // Faulty cells carry the plan key and robustness deltas vs their twin.
  EXPECT_NE(full_json.find("\"fault\":\"crash?downtime=2&rate=0.2\""),
            std::string::npos);
  EXPECT_NE(full_json.find("\"vs_fault_free\""), std::string::npos);
  EXPECT_NE(full_json.find("\"rounds_overhead\""), std::string::npos);
  EXPECT_NE(full_json.find("\"success_drop\""), std::string::npos);

  // Kill after 2 cells, then resume with a different thread count.
  const TempPath checkpoint("fault_sweep_resume.jsonl");
  sweep::SweepOptions interrupted;
  interrupted.threads = 2;
  interrupted.checkpoint_path = checkpoint.str();
  interrupted.max_cells = 2;
  ASSERT_FALSE(sweep::run_sweep(spec, interrupted).complete);
  sweep::SweepOptions resumed = interrupted;
  resumed.threads = 1;
  resumed.max_cells = 0;
  resumed.resume = true;
  const auto finished = sweep::run_sweep(spec, resumed);
  ASSERT_TRUE(finished.complete);
  EXPECT_EQ(sweep::to_json(spec, finished.cells), full_json);

  // Two shards merged cover the same campaign byte-for-byte.
  const TempPath ckpt0("fault_sweep_shard0.jsonl");
  const TempPath ckpt1("fault_sweep_shard1.jsonl");
  std::vector<std::map<std::string, sweep::CheckpointEntry>> checkpoints;
  for (std::uint32_t shard = 0; shard < 2; ++shard) {
    sweep::SweepOptions options;
    options.threads = 1;
    options.shard_index = shard;
    options.shard_count = 2;
    options.checkpoint_path = shard == 0 ? ckpt0.str() : ckpt1.str();
    ASSERT_TRUE(sweep::run_sweep(spec, options).complete);
    checkpoints.push_back(sweep::load_checkpoint(options.checkpoint_path));
  }
  const auto merged = sweep::results_from_checkpoints(spec, checkpoints);
  EXPECT_EQ(sweep::to_json(spec, merged), full_json);
}

}  // namespace
}  // namespace fnr
