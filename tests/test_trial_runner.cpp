// Tests for the parallel Monte-Carlo trial runner: determinism across
// thread counts, accumulator merge associativity, and edge cases.
#include <gtest/gtest.h>

#include <stdexcept>

#include "runner/trial_runner.hpp"
#include "test_support.hpp"

namespace fnr::runner {
namespace {

using test::bits_equal;

TrialOutcome synthetic_outcome(std::uint64_t trial, std::uint64_t seed) {
  // A deterministic function of (trial, seed) with enough variety to make
  // ordering bugs visible: some trials fail, rounds vary non-monotonically.
  TrialOutcome out;
  out.trial = trial;
  out.seed = seed;
  out.met = seed % 7 != 0;
  out.meeting_round = out.met ? (seed % 1000) + 1 : 0;
  out.rounds = out.met ? out.meeting_round : 2000;
  out.moves_a = seed % 13;
  out.moves_b = seed % 17;
  out.whiteboard_marks = seed % 5;
  return out;
}

TEST(TrialSeed, DistinctAndStable) {
  EXPECT_EQ(trial_seed(42, 0), trial_seed(42, 0));
  EXPECT_NE(trial_seed(42, 0), trial_seed(42, 1));
  EXPECT_NE(trial_seed(42, 0), trial_seed(43, 0));
  for (std::uint64_t t = 0; t < 100; ++t) EXPECT_NE(trial_seed(7, t), 0u);
}

TEST(TrialRunner, DeterministicAcrossThreadCounts) {
  TrialAggregate reference;
  bool first = true;
  for (const unsigned threads : {1u, 4u, 8u}) {
    RunnerOptions options;
    options.threads = threads;
    const TrialRunner runner(options);
    const auto acc = runner.run(64, 9001, synthetic_outcome);
    const auto agg = acc.aggregate();
    EXPECT_EQ(agg.trials, 64u);
    if (first) {
      reference = agg;
      first = false;
    } else {
      EXPECT_TRUE(bits_equal(reference, agg))
          << "aggregate differs at " << threads << " threads";
    }
  }
}

TEST(TrialRunner, RealRendezvousDeterministicAcrossThreadCounts) {
  const auto g = test::dense_graph(128, 5);
  core::RendezvousOptions options;
  options.seed = 33;
  const auto reference =
      core::run_trials(core::Strategy::Whiteboard, g, options, 8, 1)
          .aggregate();
  for (const unsigned threads : {4u, 8u}) {
    const auto agg =
        core::run_trials(core::Strategy::Whiteboard, g, options, 8, threads)
            .aggregate();
    EXPECT_TRUE(bits_equal(reference, agg))
        << "run_trials aggregate differs at " << threads << " threads";
  }
}

TEST(TrialRunner, RunMapPreservesTrialOrder) {
  RunnerOptions options;
  options.threads = 8;
  const TrialRunner runner(options);
  const auto results = runner.run_map(
      100, 5, [](std::uint64_t trial, std::uint64_t seed) {
        EXPECT_EQ(seed, trial_seed(5, trial));
        return trial * 3;
      });
  ASSERT_EQ(results.size(), 100u);
  for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(results[i], i * 3);
}

TEST(TrialRunner, PropagatesExceptions) {
  RunnerOptions options;
  options.threads = 4;
  const TrialRunner runner(options);
  EXPECT_THROW(
      (void)runner.run(16, 1,
                       [](std::uint64_t trial, std::uint64_t) -> TrialOutcome {
                         if (trial == 7) throw std::runtime_error("boom");
                         return {};
                       }),
      std::runtime_error);
}

TEST(TrialAccumulator, MergeAssociativeAndOrderInsensitive) {
  std::vector<TrialOutcome> outcomes;
  for (std::uint64_t t = 0; t < 30; ++t)
    outcomes.push_back(synthetic_outcome(t, trial_seed(77, t)));

  // One accumulator fed in trial order.
  TrialAccumulator all;
  for (const auto& out : outcomes) all.add(out);

  // Split three ways with interleaved membership, fed in reverse, then
  // merged in both groupings: (a ∪ b) ∪ c and a ∪ (b ∪ c).
  TrialAccumulator a, b, c;
  for (std::size_t i = outcomes.size(); i-- > 0;) {
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(outcomes[i]);
  }
  TrialAccumulator left = a;
  left.merge(b);
  left.merge(c);
  TrialAccumulator bc = b;
  bc.merge(c);
  TrialAccumulator right = a;
  right.merge(bc);

  const auto agg_all = all.aggregate();
  EXPECT_TRUE(bits_equal(agg_all, left.aggregate()));
  EXPECT_TRUE(bits_equal(agg_all, right.aggregate()));
  EXPECT_EQ(left.count(), outcomes.size());
}

TEST(TrialAccumulator, EmptyAggregateIsAllZero) {
  const TrialAccumulator acc;
  const auto agg = acc.aggregate();
  EXPECT_EQ(agg.trials, 0u);
  EXPECT_EQ(agg.successes, 0u);
  EXPECT_EQ(agg.failures, 0u);
  EXPECT_EQ(agg.success_rate, 0.0);
  EXPECT_EQ(agg.rounds.count, 0u);
}

TEST(TrialRunner, ZeroTrials) {
  const TrialRunner runner;
  const auto acc = runner.run(0, 1, synthetic_outcome);
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.aggregate().trials, 0u);
}

TEST(TrialRunner, SingleTrial) {
  RunnerOptions options;
  options.threads = 8;  // more threads than trials must be fine
  const TrialRunner runner(options);
  const auto acc = runner.run(1, 123, synthetic_outcome);
  ASSERT_EQ(acc.count(), 1u);
  const auto agg = acc.aggregate();
  EXPECT_EQ(agg.trials, 1u);
  const auto expected = synthetic_outcome(0, trial_seed(123, 0));
  EXPECT_EQ(agg.successes + agg.failures, 1u);
  EXPECT_EQ(agg.successes, expected.met ? 1u : 0u);
  if (expected.met) {
    EXPECT_EQ(agg.rounds.mean,
              static_cast<double>(expected.meeting_round));
    EXPECT_EQ(agg.rounds.median, agg.rounds.mean);
    EXPECT_EQ(agg.rounds.p95, agg.rounds.mean);
  }
}

TEST(TrialAggregate, CsvAndJsonWellFormed) {
  TrialAccumulator acc;
  for (std::uint64_t t = 0; t < 10; ++t)
    acc.add(synthetic_outcome(t, trial_seed(3, t)));
  const auto agg = acc.aggregate();

  const auto header = TrialAggregate::csv_header();
  const auto row = agg.to_csv_row("cell_a");
  EXPECT_EQ(std::count(header.begin(), header.end(), ','),
            std::count(row.begin(), row.end(), ','));
  EXPECT_EQ(row.rfind("cell_a,", 0), 0u);

  const auto json = agg.to_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"trials\":10"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

}  // namespace
}  // namespace fnr::runner
