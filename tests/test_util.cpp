// Unit tests for src/util: RNG, statistics, tables, CLI.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fnr {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42, 7), b(42, 7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentStreamsDiffer) {
  Rng a(42, 0), b(42, 1);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a() == b());
  EXPECT_LT(equal, 3);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(1);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(99);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.below(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, 5 * std::sqrt(kDraws));
  }
}

TEST(Rng, BetweenInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(13);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits, kDraws * 0.25, 5 * std::sqrt(kDraws * 0.25 * 0.75));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (parent() == child());
  EXPECT_LT(equal, 3);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng rng(31);
  const auto sample = sample_without_replacement(100, 40, rng);
  ASSERT_EQ(sample.size(), 40u);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 40u);
  for (const auto v : sample) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng rng(33);
  const auto sample = sample_without_replacement(10, 10, rng);
  std::set<std::uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(Rng, SampleWithoutReplacementRejectsOversample) {
  Rng rng(35);
  EXPECT_THROW((void)sample_without_replacement(5, 6, rng), CheckError);
}

TEST(Rng, ChooseRejectsEmpty) {
  Rng rng(1);
  std::vector<int> empty;
  EXPECT_THROW((void)choose(empty, rng), CheckError);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(77);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  shuffle(w, rng);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Stats, SummaryBasics) {
  const auto s = summarize({4.0, 1.0, 3.0, 2.0});
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Stats, SummaryEmptyIsZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummarySingleton) {
  const auto s = summarize({7.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> sorted{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 10.0);
}

TEST(Stats, SummaryEmptyPinsAllFieldsToZero) {
  // The sweep engine's aggregate columns feed straight from Summary; an
  // all-failure cell must produce all-zero round statistics, not garbage.
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.median, 0.0);
  EXPECT_DOUBLE_EQ(s.p90, 0.0);
  EXPECT_DOUBLE_EQ(s.p95, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.0);
}

TEST(Stats, SummarySingletonPinsAllPercentilesToTheValue) {
  const auto s = summarize({7.5});
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.min, 7.5);
  EXPECT_DOUBLE_EQ(s.median, 7.5);
  EXPECT_DOUBLE_EQ(s.p90, 7.5);
  EXPECT_DOUBLE_EQ(s.p95, 7.5);
  EXPECT_DOUBLE_EQ(s.max, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Stats, PercentileEndpointsAreExact) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0, 5.0};
  // q = 0 and q = 1 must return the endpoints with no interpolation drift.
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(sorted, 1.0), 5.0);
  EXPECT_THROW((void)percentile_sorted(sorted, -0.1), CheckError);
  EXPECT_THROW((void)percentile_sorted(sorted, 1.1), CheckError);
  EXPECT_THROW((void)percentile_sorted({}, 0.5), CheckError);
}

TEST(Stats, TwoElementTailPercentilesInterpolateLinearly) {
  // Pin the linear-interpolation convention on two elements: position
  // q * (n - 1), so p90 = 0.9 of the way from min to max.
  const auto s = summarize({10.0, 20.0});
  EXPECT_DOUBLE_EQ(s.median, 15.0);
  EXPECT_DOUBLE_EQ(s.p90, 19.0);
  EXPECT_DOUBLE_EQ(s.p95, 19.5);
  // Sample (n-1 denominator) standard deviation.
  EXPECT_DOUBLE_EQ(s.stddev, std::sqrt(50.0));
}

TEST(Stats, PowerLawFitRecoversExponent) {
  // y = 3 x^2 exactly.
  std::vector<double> xs, ys;
  for (double x : {1.0, 2.0, 4.0, 8.0, 16.0}) {
    xs.push_back(x);
    ys.push_back(3.0 * x * x);
  }
  const auto fit = fit_power_law(xs, ys);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.prefactor, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(Stats, PowerLawFitRejectsNonPositive) {
  EXPECT_THROW((void)fit_power_law({1.0, 2.0}, {0.0, 1.0}), CheckError);
}

TEST(Table, MarkdownShape) {
  Table t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const auto md = t.to_markdown();
  EXPECT_NE(md.find("| a "), std::string::npos);
  EXPECT_NE(md.find("| 333 |"), std::string::npos);
  // header + separator + 2 rows
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
}

TEST(Table, RejectsArityMismatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), CheckError);
}

TEST(Table, CsvRoundTrip) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "x,y\n1,2\n");
}

TEST(Table, RowBuilderFormats) {
  auto row = RowBuilder()
                 .add("s")
                 .add(std::int64_t{-5})
                 .add(std::uint64_t{7})
                 .add(3.14159, 2)
                 .build();
  ASSERT_EQ(row.size(), 4u);
  EXPECT_EQ(row[1], "-5");
  EXPECT_EQ(row[3], "3.14");
}

TEST(Table, FormatDoubleTrimsZeros) {
  EXPECT_EQ(format_double(2.0, 3), "2");
  EXPECT_EQ(format_double(2.5, 3), "2.5");
  EXPECT_EQ(format_double(1.0 / 0.0, 3), "inf");
}

TEST(Cli, ParsesTypedOptions) {
  const char* argv[] = {"prog", "--n=128", "--rate=0.5", "--name=abc",
                        "--fast"};
  Cli cli(5, argv);
  EXPECT_EQ(cli.get_int("n", 0), 128);
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(cli.get_string("name", ""), "abc");
  EXPECT_TRUE(cli.get_flag("fast"));
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  cli.reject_unknown();
}

TEST(Cli, RejectsUnknownOption) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli(2, argv);
  EXPECT_THROW(cli.reject_unknown(), CheckError);
}

TEST(Cli, RejectsMalformedNumbers) {
  const char* argv[] = {"prog", "--n=12x"};
  Cli cli(2, argv);
  EXPECT_THROW((void)cli.get_int("n", 0), CheckError);
}

TEST(Cli, RejectsNonOptionArgument) {
  const char* argv[] = {"prog", "positional"};
  EXPECT_THROW(Cli(2, argv), CheckError);
}

TEST(Cli, RejectsEmptyNumericValues) {
  // `--trials=` used to parse as 0 (strtoll leaves `end` at the start of
  // an empty string, and *end == '\0' held). It must fail loudly.
  const char* argv[] = {"prog", "--trials=", "--rate="};
  Cli cli(3, argv);
  EXPECT_THROW((void)cli.get_int("trials", 7), CheckError);
  EXPECT_THROW((void)cli.get_double("rate", 0.5), CheckError);
}

TEST(Cli, RejectsIntegerOverflow) {
  // strtoll clamps to LLONG_MAX/MIN with errno = ERANGE; clamping must not
  // be silent.
  const char* argv[] = {"prog", "--big=99999999999999999999",
                        "--small=-99999999999999999999",
                        "--huge=1e999", "--tiny=1e-310"};
  Cli cli(5, argv);
  EXPECT_THROW((void)cli.get_int("big", 0), CheckError);
  EXPECT_THROW((void)cli.get_int("small", 0), CheckError);
  EXPECT_THROW((void)cli.get_double("huge", 0.0), CheckError);
  // Underflow to a subnormal also sets ERANGE on glibc but the value is
  // representable — it must parse, not throw.
  EXPECT_GT(cli.get_double("tiny", 0.0), 0.0);
}

TEST(Cli, FlagSpellingsAreSymmetric) {
  const char* on_argv[] = {"prog", "--a=1", "--b=true", "--c=yes", "--d=on",
                           "--e"};
  Cli on(6, on_argv);
  for (const char* name : {"a", "b", "c", "d", "e"})
    EXPECT_TRUE(on.get_flag(name)) << name;
  const char* off_argv[] = {"prog", "--a=0", "--b=false", "--c=no",
                            "--d=off"};
  Cli off(5, off_argv);
  for (const char* name : {"a", "b", "c", "d"})
    EXPECT_FALSE(off.get_flag(name)) << name;
  EXPECT_FALSE(off.get_flag("absent"));
}

TEST(Cli, RejectsUnrecognizedBooleanSpellings) {
  // `--flag=no` historically meant *on*; unknown spellings now throw
  // instead of silently flipping the sense.
  const char* argv[] = {"prog", "--a=No", "--b=2", "--c=enabled"};
  Cli cli(4, argv);
  EXPECT_THROW((void)cli.get_flag("a"), CheckError);
  EXPECT_THROW((void)cli.get_flag("b"), CheckError);
  EXPECT_THROW((void)cli.get_flag("c"), CheckError);
}

TEST(Check, MacroThrowsWithMessage) {
  try {
    FNR_CHECK_MSG(false, "ctx " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("ctx 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace fnr
