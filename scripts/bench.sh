#!/usr/bin/env bash
# Regenerate the committed perf baseline, or gate against it.
#
# Usage: scripts/bench.sh [--gate] [--quick] [--trials=N] [--threads=N] ...
#   scripts/bench.sh                 # full sweep -> BENCH_perf.json
#   scripts/bench.sh --gate          # rounds/sec regression gate against
#                                    # BENCH_perf.json; writes no files
#   scripts/bench.sh --quick         # smoke cells -> BENCH_perf_quick.json
#
# The canonical run uses the batched kernel (--batch=$CANON_BATCH): the
# kernel is bit-exact vs the scalar path, so the baseline's identity
# fields are unaffected — batch is purely the throughput configuration
# the baseline (and therefore the gate) is measured at.
#
# Only a flag-free full run writes the committed baseline: --quick goes to
# BENCH_perf_quick.json and any other flag (--trials/--seed/... change the
# report's identity fields) goes to BENCH_perf_local.json, so experiments
# can never clobber BENCH_perf.json. --gate writes nothing at all: it
# re-measures every full-suite cell (best of 3 runs — noise is one-sided,
# see --gate-reps) and fails on any cell whose rounds/sec dropped more
# than the tolerance (default 0.30; pass --tolerance=X to override) below
# the committed value. Timings in BENCH_perf.json are
# machine-dependent snapshots; the identity fields (cell set/order,
# trials, total_rounds, success_rate) are deterministic. See
# docs/PERFORMANCE.md for how to read the report and when a baseline
# refresh is legitimate.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
CANON_BATCH=8

# An explicit --out always wins; otherwise route by flags (quick beats
# other non-canonical flags).
OUT=BENCH_perf.json
USER_OUT=""
QUICK=0
GATE=0
OTHER=0
BATCH_ARG="--batch=$CANON_BATCH"
ARGS=()
for arg in "$@"; do
  case "$arg" in
    --gate) GATE=1; continue ;;
    --out=*) USER_OUT="${arg#--out=}" ;;
    --quick) QUICK=1 ;;
    --batch=*) BATCH_ARG=""; OTHER=1 ;;  # explicit batch: non-canonical
    *) OTHER=1 ;;
  esac
  ARGS+=("$arg")
done

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target perf_suite > /dev/null

if [[ "$GATE" == 1 ]]; then
  # Gate mode: measure at the canonical batch against the committed
  # baseline. perf_suite writes no report when gating (--out=auto).
  exec "$BUILD_DIR/perf_suite" $BATCH_ARG \
       --baseline=BENCH_perf.json "${ARGS[@]+"${ARGS[@]}"}"
fi

if [[ -n "$USER_OUT" ]]; then
  OUT="$USER_OUT"
elif [[ "$QUICK" == 1 ]]; then
  OUT=BENCH_perf_quick.json
elif [[ "$OTHER" == 1 ]]; then
  OUT=BENCH_perf_local.json
fi

"$BUILD_DIR/perf_suite" $BATCH_ARG "${ARGS[@]+"${ARGS[@]}"}" --out="$OUT"
"$BUILD_DIR/perf_suite" --validate="$OUT"
