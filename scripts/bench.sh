#!/usr/bin/env bash
# Regenerate the committed perf baseline: build perf_suite, run the full
# sweep, write BENCH_perf.json at the repo root, and schema-validate it.
#
# Usage: scripts/bench.sh [--quick] [--trials=N] [--threads=N] [--seed=N]
#   scripts/bench.sh                 # full sweep -> BENCH_perf.json
#   scripts/bench.sh --quick         # smoke cells -> BENCH_perf_quick.json
#
# Only a flag-free full run writes the committed baseline: --quick goes to
# BENCH_perf_quick.json and any other flag (--trials/--seed/... change the
# report's identity fields) goes to BENCH_perf_local.json, so experiments
# can never clobber BENCH_perf.json. Timings in BENCH_perf.json are
# machine-dependent snapshots; the identity fields (cell set/order,
# trials, total_rounds, success_rate) are deterministic. See
# docs/PERFORMANCE.md for how to read the report.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}

# An explicit --out always wins; otherwise route by flags (quick beats
# other non-canonical flags).
OUT=BENCH_perf.json
USER_OUT=""
QUICK=0
OTHER=0
for arg in "$@"; do
  case "$arg" in
    --out=*) USER_OUT="${arg#--out=}" ;;
    --quick) QUICK=1 ;;
    *) OTHER=1 ;;
  esac
done
if [[ -n "$USER_OUT" ]]; then
  OUT="$USER_OUT"
elif [[ "$QUICK" == 1 ]]; then
  OUT=BENCH_perf_quick.json
elif [[ "$OTHER" == 1 ]]; then
  OUT=BENCH_perf_local.json
fi

cmake -B "$BUILD_DIR" -S . > /dev/null
cmake --build "$BUILD_DIR" -j --target perf_suite > /dev/null

"$BUILD_DIR/perf_suite" "$@" --out="$OUT"
"$BUILD_DIR/perf_suite" --validate="$OUT"
