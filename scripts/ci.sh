#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite.
# Usage: scripts/ci.sh [build-dir]   (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j
