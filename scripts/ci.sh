#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite.
#
# Usage: scripts/ci.sh [build-dir] [--sanitize] [extra cmake args...]
#   scripts/ci.sh                         # plain build + ctest in ./build
#   scripts/ci.sh build-asan --sanitize   # ASan/UBSan build + ctest
set -euo pipefail

cd "$(dirname "$0")/.."
# The build dir is optional; a leading flag (e.g. `ci.sh --sanitize`) must
# not be mistaken for one.
BUILD_DIR=build
if [[ $# -gt 0 && "$1" != --* ]]; then
  BUILD_DIR="$1"
  shift
fi

CMAKE_ARGS=()
for arg in "$@"; do
  if [[ "$arg" == "--sanitize" ]]; then
    CMAKE_ARGS+=(-DFNR_SANITIZE=ON)
  else
    CMAKE_ARGS+=("$arg")
  fi
done

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"
ctest --output-on-failure -j

# Perf-suite smoke: quick cells + schema validation. Timings are
# informational only — the gate is that the suite runs and its JSON
# conforms to the fnr-perf schema (see docs/PERFORMANCE.md).
./perf_suite --quick --threads=2 --out=perf_smoke.json
./perf_suite --validate=perf_smoke.json
