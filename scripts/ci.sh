#!/usr/bin/env bash
# Tier-1 verify: configure, build, run the full test suite.
#
# Usage: scripts/ci.sh [build-dir] [--sanitize[=thread]] [extra cmake args...]
#   scripts/ci.sh                         # plain build + ctest in ./build
#   scripts/ci.sh build-asan --sanitize   # ASan/UBSan build + ctest
#   scripts/ci.sh build-tsan --sanitize=thread
#                                         # TSan build + the concurrency
#                                         # battery (executor / campaign /
#                                         # service tests, --jobs=4 smoke)
set -euo pipefail

cd "$(dirname "$0")/.."
# The build dir is optional; a leading flag (e.g. `ci.sh --sanitize`) must
# not be mistaken for one.
BUILD_DIR=build
if [[ $# -gt 0 && "$1" != --* ]]; then
  BUILD_DIR="$1"
  shift
fi

CMAKE_ARGS=()
SANITIZE=0
for arg in "$@"; do
  if [[ "$arg" == "--sanitize" ]]; then
    CMAKE_ARGS+=(-DFNR_SANITIZE=ON)
    SANITIZE=1
  elif [[ "$arg" == "--sanitize=thread" ]]; then
    CMAKE_ARGS+=(-DFNR_SANITIZE=thread)
    SANITIZE=thread
  else
    CMAKE_ARGS+=("$arg")
  fi
done

ROOT=$(pwd)

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}"
cmake --build "$BUILD_DIR" -j
cd "$BUILD_DIR"

# ThreadSanitizer leg: instrumentation is 5-15x, so it runs exactly the
# concurrency surface — the executor / campaign / service test batteries
# plus a --jobs=4 campaign smoke (worker pool, shard splits, shared graph
# cache, reorder buffer all live under TSan) — and skips the perf and
# byte-identity sections the plain leg covers.
if [[ "$SANITIZE" == thread ]]; then
  ctest --output-on-failure -j \
        -R 'test_(executor|campaign|sweep|fnrd_service|service_protocol|trial_runner)'
  rm -f tsan_j1.json tsan_j4.json
  ./sweep --spec=smoke --checkpoint= --out=tsan_j1.json --quiet
  ./sweep --spec=smoke --checkpoint= --out=tsan_j4.json --jobs=4 --quiet
  diff tsan_j1.json tsan_j4.json
  echo "tsan: executor/campaign/service battery clean"
  exit 0
fi

ctest --output-on-failure -j

# Perf-suite smoke: quick cells + schema validation. Timings are
# informational only — the gate is that the suite runs and its JSON
# conforms to the fnr-perf schema (see docs/PERFORMANCE.md).
./perf_suite --quick --threads=2 --out=perf_smoke.json
./perf_suite --validate=perf_smoke.json

# Bench gate: re-measure every full-suite cell at the canonical batch
# size and fail on any cell whose rounds/sec dropped more than 30% below
# the committed BENCH_perf.json. Speedups never fail (refreshing the
# baseline after a legitimate win is a deliberate, reviewed act — see
# docs/PERFORMANCE.md). Sanitizer builds skip the gate: instrumentation
# alone is a guaranteed "regression".
if [[ "$SANITIZE" == 0 ]]; then
  ./perf_suite --batch=8 --baseline="$ROOT/BENCH_perf.json" --tolerance=0.30
else
  echo "bench gate: skipped under --sanitize"
fi

# Sweep smoke: run a tiny campaign uninterrupted, then again "killed"
# after 2 cells (--max-cells is the deterministic stand-in for a mid-
# campaign kill; the workflow also does a real kill -9) and resumed on a
# different thread count. The merged JSON must be byte-identical — that is
# the sweep engine's determinism contract (see docs/PERFORMANCE.md).
rm -f sweep_ci_a.jsonl sweep_ci_b.jsonl sweep_ci_a.json sweep_ci_b.json
./sweep --spec=smoke --checkpoint=sweep_ci_a.jsonl --out=sweep_ci_a.json \
        --threads=2 --quiet
./sweep --spec=smoke --checkpoint=sweep_ci_b.jsonl --out=sweep_ci_b.json \
        --threads=2 --max-cells=2 --quiet
./sweep --spec=smoke --checkpoint=sweep_ci_b.jsonl --out=sweep_ci_b.json \
        --threads=1 --resume --quiet
diff sweep_ci_a.json sweep_ci_b.json

# Executor byte-identity: the same campaign at --jobs=4 (work-stealing
# cell pool) must emit byte-identical merged JSON AND byte-identical
# checkpoint lines — modulo the informational "seconds" field, the only
# wall-clock that reaches a checkpoint — to the sequential run above.
# Completion order is staged through the reorder buffer, so the pool size
# is invisible in every artifact.
rm -f sweep_ci_j4.jsonl sweep_ci_j4.json
./sweep --spec=smoke --checkpoint=sweep_ci_j4.jsonl --out=sweep_ci_j4.json \
        --jobs=4 --quiet
diff sweep_ci_a.json sweep_ci_j4.json
diff <(sed 's/,"seconds":[^,}]*//' sweep_ci_a.jsonl) \
     <(sed 's/,"seconds":[^,}]*//' sweep_ci_j4.jsonl)

# Real kill -9 mid-parallel-run: a heterogeneous grid (16x size spread,
# scan-heavy near-regular against cheap torus) big enough that the kill
# lands mid-campaign; resumed at --jobs=4 it must rebuild the exact
# --jobs=1 bytes. Growing delays walk the kill point across the run; a
# kill that lands after completion still exercises resume-on-complete.
cat > sweep_ci_kill.spec <<'SPEC'
name       = ci-kill
trials     = 64
programs   = whiteboard, random-walk
scenarios  = sync-pair
topologies = near-regular:deg=32, torus
sizes      = 1024, 16384
seeds      = 1
SPEC
rm -f kill_ref.json kill_j4.json
./sweep --spec=sweep_ci_kill.spec --checkpoint= --out=kill_ref.json --quiet
for i in 1 2 3; do
  rm -f kill_run.json kill_run.jsonl
  ./sweep --spec=sweep_ci_kill.spec --checkpoint=kill_run.jsonl \
          --out=kill_run.json --jobs=4 --quiet &
  SWEEP_PID=$!
  sleep "0.$((15 * i))"
  kill -9 "$SWEEP_PID" 2>/dev/null || true
  wait "$SWEEP_PID" 2>/dev/null || true
  ./sweep --spec=sweep_ci_kill.spec --checkpoint=kill_run.jsonl \
          --out=kill_run.json --jobs=4 --resume --quiet
  diff kill_ref.json kill_run.json
done
echo "executor smoke: --jobs=4 byte-identical (merged, checkpoint, kill -9 + resume)"

# Registry smoke: every registered program runs one tiny trial on every
# compatible scenario (the registry-smoke spec's wildcard axes resolve
# against the registries, capability masks prune incompatible pairs, and
# complete-graph programs run on the complete family) — a registration
# that crashes is caught here without a hand-curated pair list. Any
# "ok":false cell is a program that cannot execute its own registration.
./sweep --list-programs > /dev/null
./sweep --list-scenarios > /dev/null
./exp13_scenarios --list-programs > /dev/null
rm -f sweep_registry_smoke.json
./sweep --spec=registry-smoke --checkpoint= --out=sweep_registry_smoke.json \
        --threads=2 --quiet
if grep -q '"ok":false' sweep_registry_smoke.json; then
  echo "registry smoke: a registered (program, scenario) cell failed:" >&2
  grep '"ok":false' sweep_registry_smoke.json >&2
  exit 1
fi

# Fault smoke: every fault family (crash, wb-drop, wb-wipe, wb-stale,
# churn) injected into one program on one scenario, plus the fault-free
# control cell. Gates: no cell may error (a fault must degrade results,
# never crash the harness), and the campaign obeys the same byte-identity
# contract as the reliable sweep — killed after 3 cells and resumed on a
# different thread count, the merged JSON must not change by one byte
# (fault draws come from per-trial split streams, so thread count and
# resume boundaries are invisible).
rm -f fault_ci_a.jsonl fault_ci_b.jsonl fault_ci_a.json fault_ci_b.json
./sweep --spec=fault-smoke --checkpoint=fault_ci_a.jsonl \
        --out=fault_ci_a.json --threads=2 --quiet
./sweep --spec=fault-smoke --checkpoint=fault_ci_b.jsonl \
        --out=fault_ci_b.json --threads=2 --max-cells=3 --quiet
./sweep --spec=fault-smoke --checkpoint=fault_ci_b.jsonl \
        --out=fault_ci_b.json --threads=1 --resume --quiet
diff fault_ci_a.json fault_ci_b.json
if grep -q '"ok":false' fault_ci_a.json; then
  echo "fault smoke: an injected cell crashed the harness:" >&2
  grep '"ok":false' fault_ci_a.json >&2
  exit 1
fi

# Service smoke: the same campaigns served through the fnrd daemon must
# produce byte-identical merged JSON to the batch surface — across a
# mid-stream client disconnect, a daemon kill -9, and a RESUME in a fresh
# daemon process. Campaign ci-b is paused mid-campaign (--max-cells=2,
# the deterministic stand-in for a kill; its checkpoint holds 2 of the
# grid's cells) when the daemon takes a real kill -9, so RESUME exercises
# the full persisted-submit + checkpoint recovery path.
FNRD_DIR=$(mktemp -d)
FNRD_SOCK="$FNRD_DIR/sock"
FNRD_PID=0
cleanup_fnrd() {
  [[ "$FNRD_PID" != 0 ]] && kill "$FNRD_PID" 2>/dev/null || true
  rm -rf "$FNRD_DIR"
}
trap cleanup_fnrd EXIT
start_fnrd() {
  ./fnrd --socket="$FNRD_SOCK" --workdir="$FNRD_DIR" --workers=2 \
         --threads=2 --quiet "$@" &
  FNRD_PID=$!
  for _ in $(seq 1 100); do
    ./fnrc --socket="$FNRD_SOCK" --verb=status >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "fnrd smoke: daemon never started listening" >&2
  return 1
}

start_fnrd
# Two concurrent campaigns; ci-b pauses after 2 cells.
./fnrc --socket="$FNRD_SOCK" --verb=submit --campaign=ci-a --spec=smoke
./fnrc --socket="$FNRD_SOCK" --verb=submit --campaign=ci-b --spec=smoke \
       --max-cells=2
# A streaming client that disconnects mid-stream must cost nothing.
./fnrc --socket="$FNRD_SOCK" --verb=stream --campaign=ci-a --max-frames=1 \
       >/dev/null
# Follow ci-a to its end frame (replay + live), then let both settle.
./fnrc --socket="$FNRD_SOCK" --verb=stream --campaign=ci-a >/dev/null
./fnrc --socket="$FNRD_SOCK" --verb=wait --campaign=ci-a >/dev/null
./fnrc --socket="$FNRD_SOCK" --verb=wait --campaign=ci-b >/dev/null

# The real kill -9: the daemon dies holding ci-b's mid-campaign state.
kill -9 "$FNRD_PID"
wait "$FNRD_PID" 2>/dev/null || true
FNRD_PID=0

# A fresh daemon knows nothing in memory; RESUME rebuilds ci-b from its
# persisted submit frame + checkpoint and runs it to completion.
start_fnrd
./fnrc --socket="$FNRD_SOCK" --verb=resume --campaign=ci-b
./fnrc --socket="$FNRD_SOCK" --verb=wait --campaign=ci-b >/dev/null

# Both reports must match the batch bench/sweep bytes exactly (ci-a's
# comes from its report file, written before the kill; ci-b's from the
# resumed run).
./fnrc --socket="$FNRD_SOCK" --verb=report --campaign=ci-a --raw \
       > fnrd_ci_a.json
./fnrc --socket="$FNRD_SOCK" --verb=report --campaign=ci-b --raw \
       > fnrd_ci_b.json
diff sweep_ci_a.json fnrd_ci_a.json
diff sweep_ci_a.json fnrd_ci_b.json
kill "$FNRD_PID"
wait "$FNRD_PID" 2>/dev/null || true
FNRD_PID=0
echo "fnrd smoke: daemon reports byte-identical to the batch surface"

# Service parallel identity: a daemon running campaigns at --jobs=4 must
# stream the exact frame sequence of a sequential daemon — cell frames
# append to the replay log in the executor's canonical flush order, so a
# streaming client cannot tell the pool sizes apart. Fresh workdirs per
# daemon keep the campaigns independent.
rm -rf "$FNRD_DIR"
mkdir "$FNRD_DIR"
start_fnrd
./fnrc --socket="$FNRD_SOCK" --verb=submit --campaign=ci-j --spec=smoke
./fnrc --socket="$FNRD_SOCK" --verb=stream --campaign=ci-j \
       > fnrd_frames_j1.txt
./fnrc --socket="$FNRD_SOCK" --verb=report --campaign=ci-j --raw \
       > fnrd_ci_j1.json
kill "$FNRD_PID"
wait "$FNRD_PID" 2>/dev/null || true
FNRD_PID=0

rm -rf "$FNRD_DIR"
mkdir "$FNRD_DIR"
start_fnrd --jobs=4
./fnrc --socket="$FNRD_SOCK" --verb=submit --campaign=ci-j --spec=smoke
./fnrc --socket="$FNRD_SOCK" --verb=stream --campaign=ci-j \
       > fnrd_frames_j4.txt
./fnrc --socket="$FNRD_SOCK" --verb=report --campaign=ci-j --raw \
       > fnrd_ci_j4.json
kill "$FNRD_PID"
wait "$FNRD_PID" 2>/dev/null || true
FNRD_PID=0

diff fnrd_frames_j1.txt fnrd_frames_j4.txt
diff fnrd_ci_j1.json fnrd_ci_j4.json
diff sweep_ci_a.json fnrd_ci_j4.json
echo "fnrd smoke: --jobs=4 daemon frames byte-identical to sequential"
