// Shared plumbing for the experiment binaries.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <vector>

#include "core/rendezvous.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/id_space.hpp"
#include "sim/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fnr::bench {

/// Standard experiment knobs shared by every binary.
struct BenchConfig {
  std::uint64_t reps = 5;
  bool quick = false;
  bool full = false;

  [[nodiscard]] static BenchConfig from_cli(int argc, const char* const* argv) {
    Cli cli(argc, argv);
    BenchConfig config;
    config.reps = static_cast<std::uint64_t>(cli.get_int("reps", 5));
    config.quick = cli.get_flag("quick");
    config.full = cli.get_flag("full");
    cli.reject_unknown();
    return config;
  }

  /// Scales a default sweep according to quick/full.
  [[nodiscard]] std::vector<std::size_t> sizes(
      std::vector<std::size_t> normal) const {
    if (quick && normal.size() > 2) normal.resize(2);
    if (full) normal.push_back(normal.back() * 2);
    return normal;
  }
};

/// δ ≈ n^exponent near-regular graph (the Theorem 1/2 workhorse).
inline graph::Graph dense_family(std::size_t n, double exponent,
                                 std::uint64_t seed) {
  Rng rng(seed, 911);
  const auto out = static_cast<std::size_t>(
      std::max(2.0, std::pow(static_cast<double>(n), exponent) / 2.0));
  return graph::make_near_regular(n, out, rng);
}

/// One strategy run on a random adjacent placement.
inline core::RendezvousReport run_once(const graph::Graph& g,
                                       core::Strategy strategy,
                                       std::uint64_t seed,
                                       core::Params params =
                                           core::Params::practical()) {
  Rng rng(seed, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);
  core::RendezvousOptions options;
  options.strategy = strategy;
  options.params = params;
  options.seed = seed;
  return core::run_rendezvous(g, placement, options);
}

/// Repeats a run and summarizes the meeting rounds of successful runs.
struct RepeatedOutcome {
  Summary rounds;
  std::uint64_t failures = 0;
};

template <typename RunFn>
RepeatedOutcome repeat(std::uint64_t reps, RunFn&& run) {
  RepeatedOutcome outcome;
  std::vector<double> rounds;
  for (std::uint64_t rep = 0; rep < reps; ++rep) {
    const sim::RunResult result = run(rep + 1);
    if (result.met) {
      rounds.push_back(static_cast<double>(result.meeting_round));
    } else {
      ++outcome.failures;
    }
  }
  outcome.rounds = summarize(rounds);
  return outcome;
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::cout << "## " << title << "\n\n" << claim << "\n\n";
}

inline void print_fit(const char* label, const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  if (xs.size() < 2) return;
  const auto fit = fit_power_law(xs, ys);
  std::cout << label << ": rounds ~ n^" << format_double(fit.exponent, 2)
            << " (R^2 = " << format_double(fit.r_squared, 3) << ")\n\n";
}

}  // namespace fnr::bench
