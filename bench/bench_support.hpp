// Shared plumbing for the experiment binaries.
//
// Every experiment's trial loop routes through runner::TrialRunner: trials
// run across a thread pool (--threads=N, default: all hardware threads) with
// per-trial split RNG streams, so the tables are bit-identical no matter how
// many threads executed the batch.
#pragma once

#include <cmath>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "core/rendezvous.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/id_space.hpp"
#include "runner/trial_runner.hpp"
#include "scenario/program_registry.hpp"
#include "sim/scheduler.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace fnr::bench {

/// Registry listing flags shared by the scenario-driven benches. Returns
/// true (after printing) when argv asked for `--list-programs` or
/// `--list-scenarios`; callers exit before parsing the remaining flags.
inline bool handle_registry_listings(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-programs") {
      scenario::print_program_listing(std::cout);
      return true;
    }
    if (arg == "--list-scenarios") {
      scenario::print_scenario_listing(std::cout);
      return true;
    }
  }
  return false;
}

/// Standard experiment knobs shared by every binary.
struct BenchConfig {
  std::uint64_t reps = 5;
  bool quick = false;
  bool full = false;
  unsigned threads = 0;  ///< trial-runner pool size; 0 → hardware threads
  bool csv = false;      ///< also emit per-cell aggregate CSV rows
  bool json = false;     ///< also emit per-cell aggregate JSON lines

  [[nodiscard]] static BenchConfig from_cli(int argc, const char* const* argv) {
    Cli cli(argc, argv);
    BenchConfig config;
    config.reps = static_cast<std::uint64_t>(cli.get_int("reps", 5));
    config.quick = cli.get_flag("quick");
    config.full = cli.get_flag("full");
    const auto threads = cli.get_int("threads", 0);
    FNR_CHECK_MSG(threads >= 0 && threads <= 4096,
                  "--threads must be in [0, 4096], got " << threads);
    config.threads = static_cast<unsigned>(threads);
    config.csv = cli.get_flag("csv");
    config.json = cli.get_flag("json");
    cli.reject_unknown();
    return config;
  }

  [[nodiscard]] runner::TrialRunner trial_runner() const {
    runner::RunnerOptions options;
    options.threads = threads;
    return runner::TrialRunner(options);
  }

  /// Scales a default sweep according to quick/full.
  [[nodiscard]] std::vector<std::size_t> sizes(
      std::vector<std::size_t> normal) const {
    if (quick && normal.size() > 2) normal.resize(2);
    if (full) normal.push_back(normal.back() * 2);
    return normal;
  }
};

/// δ ≈ n^exponent near-regular graph (the Theorem 1/2 workhorse).
inline graph::Graph dense_family(std::size_t n, double exponent,
                                 std::uint64_t seed) {
  Rng rng(seed, 911);
  const auto out = static_cast<std::size_t>(
      std::max(2.0, std::pow(static_cast<double>(n), exponent) / 2.0));
  return graph::make_near_regular(n, out, rng);
}

/// One strategy run on a random adjacent placement.
inline core::RendezvousReport run_once(const graph::Graph& g,
                                       core::Strategy strategy,
                                       std::uint64_t seed,
                                       core::Params params =
                                           core::Params::practical()) {
  Rng rng(seed, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);
  core::RendezvousOptions options;
  options.strategy = strategy;
  options.params = params;
  options.seed = seed;
  return core::run_rendezvous(g, placement, options);
}

/// Summary of one experimental cell's repeated trials.
struct RepeatedOutcome {
  Summary rounds;  ///< meeting rounds of successful trials
  std::uint64_t failures = 0;
  runner::TrialAggregate aggregate;  ///< full batch statistics
};

/// Lifts a per-trial result (RunResult, RendezvousReport, or TrialOutcome)
/// into a TrialOutcome for aggregation.
template <typename R>
[[nodiscard]] runner::TrialOutcome to_outcome(std::uint64_t trial,
                                              std::uint64_t seed,
                                              const R& result) {
  if constexpr (std::is_same_v<R, runner::TrialOutcome>) {
    return result;
  } else if constexpr (std::is_same_v<R, core::RendezvousReport>) {
    return runner::TrialOutcome::from_run(trial, seed, result.run,
                                          result.agent_b_marks);
  } else {
    static_assert(std::is_same_v<R, sim::RunResult>,
                  "repeat()/collect() expect RunResult, RendezvousReport, or "
                  "TrialOutcome");
    return runner::TrialOutcome::from_run(trial, seed, result);
  }
}

/// Aggregates per-trial results already produced by TrialRunner::run_map
/// (trial order; seeds recomputed from base_seed for the record).
template <typename R>
[[nodiscard]] RepeatedOutcome collect(const std::vector<R>& results,
                                      std::uint64_t base_seed) {
  runner::TrialAccumulator acc;
  for (std::size_t trial = 0; trial < results.size(); ++trial) {
    acc.add(to_outcome(trial, runner::trial_seed(base_seed, trial),
                       results[trial]));
  }
  RepeatedOutcome outcome;
  outcome.aggregate = acc.aggregate();
  outcome.rounds = outcome.aggregate.rounds;
  outcome.failures = outcome.aggregate.failures;
  return outcome;
}

/// Runs `reps` independent trials of `run(trial, seed)` through the parallel
/// trial runner and summarizes the meeting rounds of successful runs.
/// `run` may return sim::RunResult, core::RendezvousReport, or
/// runner::TrialOutcome, and MUST NOT touch shared mutable state (trials run
/// concurrently); derive all randomness from the provided split seed.
template <typename RunFn>
RepeatedOutcome repeat(const runner::TrialRunner& trial_runner,
                       std::uint64_t reps, std::uint64_t base_seed,
                       RunFn&& run) {
  const auto acc = trial_runner.run(
      reps, base_seed, [&](std::uint64_t trial, std::uint64_t seed) {
        return to_outcome(trial, seed, run(trial, seed));
      });
  RepeatedOutcome outcome;
  outcome.aggregate = acc.aggregate();
  outcome.rounds = outcome.aggregate.rounds;
  outcome.failures = outcome.aggregate.failures;
  return outcome;
}

inline void print_header(const std::string& title, const std::string& claim) {
  std::cout << "## " << title << "\n\n" << claim << "\n\n";
}

/// One line documenting the trial-runner pool; benches print it so runs
/// record how they were parallelized.
inline void print_runner_info(const runner::TrialRunner& trial_runner) {
  std::cout << "(trial runner: " << trial_runner.threads() << " thread"
            << (trial_runner.threads() == 1 ? "" : "s") << ")\n\n";
}

/// For benches whose cells are not rendezvous trial batches (construct
/// probes, deterministic adversary rows): tell the user instead of silently
/// ignoring the emission flags.
inline void note_no_aggregates(const BenchConfig& config) {
  if (config.csv || config.json) {
    std::cout << "(--csv/--json: this bench has no rendezvous trial "
                 "aggregates; flags ignored)\n\n";
  }
}

/// Emits the per-cell aggregate in the machine-readable formats the config
/// asked for (CSV rows share one header per process).
inline void emit_aggregate(const BenchConfig& config, const std::string& label,
                           const runner::TrialAggregate& aggregate) {
  if (config.csv) {
    static bool header_printed = false;
    if (!header_printed) {
      std::cout << runner::TrialAggregate::csv_header() << "\n";
      header_printed = true;
    }
    std::cout << aggregate.to_csv_row(label) << "\n";
  }
  if (config.json) {
    std::cout << "{\"cell\":\"" << label
              << "\",\"aggregate\":" << aggregate.to_json() << "}\n";
  }
}

inline void print_fit(const char* label, const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  if (xs.size() < 2) return;
  const auto fit = fit_power_law(xs, ys);
  std::cout << label << ": rounds ~ n^" << format_double(fit.exponent, 2)
            << " (R^2 = " << format_double(fit.r_squared, 3) << ")\n\n";
}

}  // namespace fnr::bench
