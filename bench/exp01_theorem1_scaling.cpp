// E1 — Theorem 1 scaling (DESIGN.md).
//
// Paper claim: with whiteboards, KT1 and δ >= √n, rendezvous completes in
// O((n/δ)·log²n + (√(nΔ)/δ)·log n) rounds w.h.p. — sublinear in Δ once
// δ = ω(√n·log n).
//
// This bench sweeps n on near-regular graphs with δ ≈ n^0.78 and reports the
// median meeting round against the analytic bound shape, plus the trivial
// O(Δ) sweep and O(n) exploration yardsticks.
#include "bench_support.hpp"

#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"

using namespace fnr;

namespace {

std::uint64_t sweep_rounds(const graph::Graph& g, std::uint64_t seed) {
  Rng rng(seed, 3);
  const auto placement = sim::random_adjacent_placement(g, rng);
  sim::Scheduler scheduler(g, sim::Model::port_only());
  baselines::SweepAgent a;
  baselines::WaitingAgent b;
  const auto result =
      scheduler.run(a, b, placement, 4 * g.max_degree() + 16);
  return result.met ? result.meeting_round : result.metrics.rounds;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E1 — Theorem 1: whiteboard rendezvous scaling (near-regular, "
      "delta ~ n^0.78)",
      "Expected shape: median rounds track C*[(n/d)ln^2 n + (sqrt(nD)/d)ln n]"
      " with a stable constant C; both baselines grow strictly faster.");
  bench::print_runner_info(runner);

  Table table({"n", "delta", "Delta", "rounds(med)", "met in construct",
               "bound", "rounds/bound", "sweep O(D)", "explore O(n)",
               "fail"});

  std::vector<double> ns, rounds_series;
  for (const auto n : config.sizes({256, 512, 1024, 2048, 4096})) {
    const auto g = bench::dense_family(n, 0.78, 1000 + n);
    // Agents frequently collide while a is still constructing T^a (their
    // two-hop balls overlap); the paper counts any co-location as
    // rendezvous, so we report how often the run ended that early. The
    // per-trial reports come back in trial order, so the count is
    // deterministic regardless of thread count.
    const std::uint64_t base_seed = 1000 + n;
    const auto reports = runner.run_map(
        config.reps, base_seed, [&](std::uint64_t, std::uint64_t seed) {
          return bench::run_once(g, core::Strategy::Whiteboard, seed);
        });
    std::uint64_t met_in_construct = 0;
    for (const auto& report : reports) {
      met_in_construct += report.run.met && report.agent_a.t_set_size == 0;
    }
    const auto outcome = bench::collect(reports, base_seed);
    bench::emit_aggregate(config, "e1_n" + std::to_string(n),
                          outcome.aggregate);
    const double bound = core::theorem1_bound(
        g.num_vertices(), static_cast<double>(g.min_degree()),
        static_cast<double>(g.max_degree()));
    const double sweep = static_cast<double>(sweep_rounds(g, n));

    table.add_row(RowBuilder()
                      .add(std::uint64_t{n})
                      .add(std::uint64_t{g.min_degree()})
                      .add(std::uint64_t{g.max_degree()})
                      .add(outcome.rounds.median, 0)
                      .add(std::to_string(met_in_construct) + "/" +
                           std::to_string(config.reps))
                      .add(bound, 0)
                      .add(outcome.rounds.median / bound, 2)
                      .add(sweep, 0)
                      .add(2.0 * static_cast<double>(n), 0)
                      .add(outcome.failures)
                      .build());
    if (outcome.rounds.count > 0) {
      ns.push_back(static_cast<double>(n));
      rounds_series.push_back(outcome.rounds.median);
    }
  }
  table.print(std::cout);
  bench::print_fit("power-law fit of measured rounds", ns, rounds_series);
  std::cout << "Reference: bound shape has fitted exponent ~"
            << format_double(
                   fit_power_law(
                       ns,
                       [&] {
                         std::vector<double> b;
                         for (const auto n : ns)
                           b.push_back(core::theorem1_bound(
                               static_cast<std::size_t>(n),
                               std::pow(n, 0.78), 2.2 * std::pow(n, 0.78)));
                         return b;
                       }())
                       .exponent,
                   2)
            << " over the same sweep.\n";
  return 0;
}
