// E13 — the scenario × topology matrix.
//
// The paper proves bounds for one scenario (two agents, adjacent starts,
// synchronous wake-up) on abstract dense graphs. This bench measures how
// each strategy degrades as the scenario leaves that sweet spot — staggered
// and adversarial wake-ups, k > 2 agents sharing a neighborhood, agents
// dropped anywhere, full gathering — across realistic topologies
// (scale-free, small-world, torus, hypercube, random-geometric) plus the
// near-regular control family the theorems are tuned for.
//
// Matrix policy: the cell set is the program registry filtered by its own
// capability masks — a program runs on a scenario exactly when
// scenario::compatible says the pairing is a measurement (shared
// neighborhoods for the paper's strategies, all-meet only for coordinated
// rallies) and runnable_on admits the family graph (complete-graph-only
// programs skip every family here). Registering a new program grows this
// matrix with no edit to the bench. Aggregates are bit-identical across
// --threads values: every trial derives all randomness from its split
// seed.
//
// Extra flags: --list-programs / --list-scenarios print the registries and
// exit.
#include "bench_support.hpp"

#include <cmath>

#include "scenario/run.hpp"

using namespace fnr;

namespace {

struct Family {
  std::string name;
  graph::Graph graph;
};

std::vector<Family> make_families(bool quick, std::uint64_t seed) {
  std::vector<Family> families;
  const std::size_t n = quick ? 256 : 1024;
  {
    Rng rng(seed, 21);
    const std::size_t out = quick ? 16 : 24;
    families.push_back({"near-regular", graph::make_near_regular(n, out, rng)});
  }
  {
    Rng rng(seed, 22);
    families.push_back({"scale-free",
                        graph::make_barabasi_albert(n, 8, rng)});
  }
  {
    Rng rng(seed, 23);
    families.push_back({"small-world",
                        graph::make_watts_strogatz(n, 6, 0.1, rng)});
  }
  {
    const std::size_t side = quick ? 16 : 32;
    families.push_back({"torus", graph::make_torus(side, side)});
  }
  {
    families.push_back({"hypercube", graph::make_hypercube(quick ? 8 : 10)});
  }
  {
    Rng rng(seed, 24);
    // 1.2x the connectivity threshold sqrt(ln n / (pi n)); the connected
    // variant bridges whatever stragglers remain.
    const auto dn = static_cast<double>(n);
    const double radius = 1.2 * std::sqrt(std::log(dn) / (3.14159265 * dn));
    families.push_back(
        {"geometric",
         graph::make_random_geometric_connected(n, radius, rng).graph});
  }
  return families;
}

std::vector<scenario::Program> programs_for(const scenario::Scenario& s,
                                            const graph::Graph& g) {
  std::vector<scenario::Program> programs;
  for (auto& program : scenario::all_programs())
    if (scenario::compatible(program, s) &&
        scenario::runnable_on(program.def(), g))
      programs.push_back(std::move(program));
  return programs;
}

}  // namespace

int main(int argc, char** argv) {
  if (bench::handle_registry_listings(argc, argv)) return 0;
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E13 — scenarios x topologies",
      "How far does each strategy stretch beyond the paper's model? "
      "Delayed and adversarial wake-ups should cost roughly the delay bound "
      "on adjacent pairs; the paper's strategies should keep beating the "
      "random walk wherever a common neighborhood exists.");
  bench::print_runner_info(runner);

  Table table({"family", "scenario", "program", "trials", "ok", "rounds(med)",
               "rounds(p95)", "moves(a)", "moves(b)"});

  const auto families = make_families(config.quick, /*seed=*/4242);
  std::uint64_t cell = 0;
  for (const auto& family : families) {
    for (const auto& s : scenario::all_scenarios()) {
      for (const auto& program : programs_for(s, family.graph)) {
        scenario::ScenarioOptions options;
        options.seed = 1300 + 17 * cell++;  // stable per-cell base seed
        const auto acc = scenario::run_scenario_trials(
            s, program, family.graph, options, config.reps, runner);
        const auto aggregate = acc.aggregate();
        const std::string label =
            family.name + ":" + s.name + ":" + scenario::to_string(program);
        bench::emit_aggregate(config, label, aggregate);
        table.add_row(RowBuilder()
                          .add(family.name)
                          .add(s.name)
                          .add(scenario::to_string(program))
                          .add(aggregate.trials)
                          .add(aggregate.success_rate, 2)
                          .add(aggregate.rounds.median, 0)
                          .add(aggregate.rounds.p95, 0)
                          .add(aggregate.mean_moves_a, 1)
                          .add(aggregate.mean_moves_b, 1)
                          .build());
      }
    }
  }
  table.print(std::cout);
  return 0;
}
