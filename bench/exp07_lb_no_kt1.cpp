// E7 — Theorem 4 / Figure 2: the Ω(Δ) lower bound without neighborhood IDs.
//
// Paper claim: on bridged cliques (δ = Δ = n/2 - 1, distance 1), any
// algorithm that cannot observe neighborhood IDs needs Ω(Δ) rounds.
//
// The bench runs the port-only algorithms on the hidden-ID model and, as
// the contrast the theorem is about, Theorem 1's algorithm on the SAME
// topology with KT1 enabled: the port-only families scale linearly while
// the KT1 algorithm's rounds grow only polylogarithmically (δ = Θ(n)).
#include "bench_support.hpp"

#include "baselines/random_walk.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "lower_bounds/instances.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E7 — Theorem 4 / Figure 2: bridged cliques, neighborhood IDs hidden",
      "Expected shape: port-only algorithms (sweep, random walk) pay "
      "Omega(n); the identical topology with KT1 restored is solved by "
      "Theorem 1's algorithm in polylog-growing rounds (exponent << 1).");
  bench::print_runner_info(runner);

  Table table({"n", "delta=Delta", "sweep port-only(med)",
               "walk port-only(med)", "core with KT1(med)", "walk fail"});

  std::vector<double> ns, sweep_r, walk_r, core_r;
  for (const auto half : config.sizes({128, 256, 512, 1024, 2048})) {
    const auto inst = lower_bounds::theorem4_instance(half);
    const auto& g = inst.graph;
    const std::uint64_t cap = 200 * g.num_vertices();

    // Sweep vs a waiting partner on a fixed placement is deterministic —
    // one trial carries all the information.
    const auto sweep_out = bench::repeat(
        runner, 1, 100 + half, [&](std::uint64_t, std::uint64_t) {
          sim::Scheduler scheduler(g, inst.model);  // port-only
          baselines::SweepAgent a;
          baselines::WaitingAgent b;
          return scheduler.run(a, b, inst.placement, cap);
        });
    const auto walk_out = bench::repeat(
        runner, config.reps, 200 + half,
        [&](std::uint64_t, std::uint64_t seed) {
          sim::Scheduler scheduler(g, inst.model);
          Rng walk_rng(seed);
          baselines::RandomWalkAgent a(walk_rng.split());
          baselines::RandomWalkAgent b(walk_rng.split());
          return scheduler.run(a, b, inst.placement, cap);
        });
    const auto core_out = bench::repeat(
        runner, config.reps, 300 + half,
        [&](std::uint64_t, std::uint64_t seed) {
          core::RendezvousOptions options;
          options.strategy = core::Strategy::Whiteboard;  // full model (KT1)
          options.seed = seed;
          return core::run_rendezvous(g, inst.placement, options).run;
        });

    const std::string cell = "_n" + std::to_string(g.num_vertices());
    bench::emit_aggregate(config, "e7_sweep" + cell, sweep_out.aggregate);
    bench::emit_aggregate(config, "e7_walk" + cell, walk_out.aggregate);
    bench::emit_aggregate(config, "e7_core" + cell, core_out.aggregate);
    // Only the random walks ever hit their cap; report that separately so
    // the protocol columns are unambiguous.
    table.add_row(RowBuilder()
                      .add(std::uint64_t{g.num_vertices()})
                      .add(std::uint64_t{g.min_degree()})
                      .add(sweep_out.rounds.median, 0)
                      .add(walk_out.rounds.median, 0)
                      .add(core_out.rounds.median, 0)
                      .add(walk_out.failures)
                      .build());
    ns.push_back(static_cast<double>(g.num_vertices()));
    sweep_r.push_back(sweep_out.rounds.median);
    walk_r.push_back(walk_out.rounds.median);
    core_r.push_back(core_out.rounds.median);
  }
  table.print(std::cout);
  bench::print_fit("sweep (port-only)", ns, sweep_r);
  bench::print_fit("random walks (port-only)", ns, walk_r);
  bench::print_fit("core algorithm (KT1 restored)", ns, core_r);
  return 0;
}
