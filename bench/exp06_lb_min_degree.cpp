// E6 — Theorem 3 / Figure 1: the Ω(Δ) lower bound without a minimum-degree
// promise.
//
// Paper claim: with δ = o(√n) and Δ = ω(√n) there are instances (glued
// stars) where EVERY algorithm needs Ω(Δ) rounds with constant probability.
//
// The bench runs four very different algorithm families (Theorem 1's
// whiteboard algorithm, wait+explore, wait+sweep, random walks) on the
// glued-star instance and shows every one of them scaling linearly in
// Δ ≈ n/2 — no sublinear escape exists. Vertex indices are freshly permuted
// per repetition so no strategy (port-ordered or ID-ordered) can ride the
// construction's layout.
#include "bench_support.hpp"

#include "baselines/random_walk.hpp"
#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"
#include "lower_bounds/instances.hpp"

using namespace fnr;

namespace {

struct PermutedInstance {
  graph::Graph graph;
  sim::Placement placement;
};

PermutedInstance permuted_double_star(std::size_t leaves,
                                      std::uint64_t seed) {
  auto inst = lower_bounds::theorem3_instance(leaves);
  Rng rng(seed, 21);
  auto permuted = graph::permute_indices(inst.graph, rng);
  return PermutedInstance{
      std::move(permuted.graph),
      sim::Placement{permuted.mapping[inst.placement.a_start],
                     permuted.mapping[inst.placement.b_start]}};
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E6 — Theorem 3 / Figure 1: glued stars (delta = 1, Delta = n/2 + 1)",
      "Expected shape: every algorithm family needs Omega(Delta) = Omega(n) "
      "rounds — fitted exponents ~1 across the board.");
  bench::print_runner_info(runner);

  Table table({"n", "Delta", "core algo(med)", "explore(med)", "sweep(med)",
               "random walk(med)", "fail"});

  std::vector<double> ns, core_r, explore_r, sweep_r, walk_r;
  for (const auto leaves : config.sizes({128, 256, 512, 1024, 2048})) {
    // Meeting times here are heavy-tailed; use extra reps.
    const std::uint64_t reps = 5 * config.reps;
    // Permutation preserves n and the degree sequence; read the metadata
    // off one reference instance rather than from inside the trial lambdas
    // (which run concurrently).
    const auto reference = permuted_double_star(leaves, 0);
    const std::size_t n_vertices = reference.graph.num_vertices();
    const std::size_t max_degree = reference.graph.max_degree();

    const auto core_out = bench::repeat(
        runner, reps, 170 + leaves, [&](std::uint64_t, std::uint64_t seed) {
          const auto inst = permuted_double_star(leaves, seed);
          core::RendezvousOptions options;
          options.strategy = core::Strategy::Whiteboard;
          options.seed = seed;
          options.max_rounds = 500 * inst.graph.num_vertices();
          return core::run_rendezvous(inst.graph, inst.placement, options)
              .run;
        });
    const auto explore_out = bench::repeat(
        runner, reps, 270 + leaves, [&](std::uint64_t, std::uint64_t seed) {
          const auto inst = permuted_double_star(leaves, seed);
          sim::Scheduler scheduler(inst.graph, sim::Model::full());
          baselines::ExploreAgent a;
          baselines::WaitingAgent b;
          return scheduler.run(a, b, inst.placement,
                               500 * inst.graph.num_vertices());
        });
    const auto sweep_out = bench::repeat(
        runner, reps, 370 + leaves, [&](std::uint64_t, std::uint64_t seed) {
          const auto inst = permuted_double_star(leaves, seed);
          sim::Scheduler scheduler(inst.graph, sim::Model::full());
          baselines::SweepAgent a;
          baselines::WaitingAgent b;
          return scheduler.run(a, b, inst.placement,
                               500 * inst.graph.num_vertices());
        });
    const auto walk_out = bench::repeat(
        runner, reps, 470 + leaves, [&](std::uint64_t, std::uint64_t seed) {
          const auto inst = permuted_double_star(leaves, seed);
          sim::Scheduler scheduler(inst.graph, sim::Model::full());
          Rng walk_rng(seed);
          baselines::RandomWalkAgent a(walk_rng.split());
          baselines::RandomWalkAgent b(walk_rng.split());
          return scheduler.run(a, b, inst.placement,
                               500 * inst.graph.num_vertices());
        });

    const std::string cell = "_n" + std::to_string(n_vertices);
    bench::emit_aggregate(config, "e6_core" + cell, core_out.aggregate);
    bench::emit_aggregate(config, "e6_explore" + cell, explore_out.aggregate);
    bench::emit_aggregate(config, "e6_sweep" + cell, sweep_out.aggregate);
    bench::emit_aggregate(config, "e6_walk" + cell, walk_out.aggregate);
    table.add_row(RowBuilder()
                      .add(std::uint64_t{n_vertices})
                      .add(std::uint64_t{max_degree})
                      .add(core_out.rounds.median, 0)
                      .add(explore_out.rounds.median, 0)
                      .add(sweep_out.rounds.median, 0)
                      .add(walk_out.rounds.median, 0)
                      .add(core_out.failures + explore_out.failures +
                           sweep_out.failures + walk_out.failures)
                      .build());
    ns.push_back(static_cast<double>(n_vertices));
    core_r.push_back(core_out.rounds.median);
    explore_r.push_back(explore_out.rounds.median);
    sweep_r.push_back(sweep_out.rounds.median);
    walk_r.push_back(walk_out.rounds.median);
  }
  table.print(std::cout);
  bench::print_fit("core algorithm", ns, core_r);
  bench::print_fit("wait+explore", ns, explore_r);
  bench::print_fit("wait+sweep", ns, sweep_r);
  bench::print_fit("random walks", ns, walk_r);
  return 0;
}
