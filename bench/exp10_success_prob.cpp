// E10 — the "with high probability" claims of Theorems 1 and 2, sampled.
//
// Paper claim: both algorithms succeed with probability >= 1 - 1/n^{Ω(1)}.
// The bench runs many independent seeds per size and reports the success
// fraction within the automatic cap and the p90/p50 round dispersion (a
// heavy tail would betray borderline constants).
#include "bench_support.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  auto config = bench::BenchConfig::from_cli(argc, argv);
  const std::uint64_t trials = config.quick ? 10 : 40;
  bench::print_header(
      "E10 — success probability across " + std::to_string(trials) +
          " independent seeds (near-regular, delta ~ n^0.78)",
      "Expected shape: success fraction 1.0 at every size for both "
      "strategies; p90/p50 stays close to 1 (no heavy tail).");

  Table table({"n", "strategy", "trials", "met", "success", "p50 rounds",
               "p90/p50"});

  for (const auto n : config.sizes({256, 512, 1024})) {
    const auto g = bench::dense_family(n, 0.78, 900 + n);
    for (const auto strategy :
         {core::Strategy::Whiteboard, core::Strategy::NoWhiteboard}) {
      std::vector<double> rounds;
      std::uint64_t met = 0;
      for (std::uint64_t seed = 1; seed <= trials; ++seed) {
        const auto report = bench::run_once(g, strategy, seed * 101 + n);
        if (report.run.met) {
          ++met;
          rounds.push_back(static_cast<double>(report.run.meeting_round));
        }
      }
      const auto summary = summarize(rounds);
      table.add_row(
          RowBuilder()
              .add(std::uint64_t{n})
              .add(core::to_string(strategy))
              .add(trials)
              .add(met)
              .add(static_cast<double>(met) / static_cast<double>(trials), 3)
              .add(summary.median, 0)
              .add(summary.median > 0 ? summary.p90 / summary.median : 0.0, 2)
              .build());
    }
  }
  table.print(std::cout);
  return 0;
}
