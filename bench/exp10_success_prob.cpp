// E10 — the "with high probability" claims of Theorems 1 and 2, sampled.
//
// Paper claim: both algorithms succeed with probability >= 1 - 1/n^{Ω(1)}.
// The bench runs many independent seeds per size and reports the success
// fraction within the automatic cap and the p90/p50 round dispersion (a
// heavy tail would betray borderline constants).
#include "bench_support.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  const std::uint64_t trials = config.quick ? 10 : 40;
  bench::print_header(
      "E10 — success probability across " + std::to_string(trials) +
          " independent seeds (near-regular, delta ~ n^0.78)",
      "Expected shape: success fraction 1.0 at every size for both "
      "strategies; p90/p50 stays close to 1 (no heavy tail).");
  bench::print_runner_info(runner);

  Table table({"n", "strategy", "trials", "met", "success", "p50 rounds",
               "p90/p50"});

  for (const auto n : config.sizes({256, 512, 1024})) {
    const auto g = bench::dense_family(n, 0.78, 900 + n);
    for (const auto strategy :
         {core::Strategy::Whiteboard, core::Strategy::NoWhiteboard}) {
      // The batch entry point: fresh placement + RNG stream per trial,
      // executed across the pool.
      core::RendezvousOptions options;
      options.seed = 900 + n;
      const auto agg =
          core::run_trials(strategy, g, options, trials, runner).aggregate();
      bench::emit_aggregate(config,
                            std::string("e10_n") + std::to_string(n) + "_" +
                                core::to_string(strategy),
                            agg);
      table.add_row(
          RowBuilder()
              .add(std::uint64_t{n})
              .add(core::to_string(strategy))
              .add(agg.trials)
              .add(agg.successes)
              .add(agg.success_rate, 3)
              .add(agg.rounds.median, 0)
              .add(agg.rounds.median > 0 ? agg.rounds.p90 / agg.rounds.median
                                         : 0.0,
                   2)
              .build());
    }
  }
  table.print(std::cout);
  return 0;
}
