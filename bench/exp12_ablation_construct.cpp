// E13/ablation — why Construct's two-step decision exists (§3.3).
//
// The paper motivates the optimistic-then-strict structure explicitly: a
// strict Sample over all of N+(Sᵃ) every iteration would cost O((n/δ)²)
// rounds, while sampling only the newly added difference sets (falling back
// to strict runs O(log n) times) costs O((n/δ)·log²n). This ablation runs
// Construct both ways (Params::optimistic_decision) on the same instances
// and reports the measured speedup, which must widen as n/δ grows.
#include "bench_support.hpp"

#include "core/construct.hpp"
#include "sim/scripted_agent.hpp"

using namespace fnr;

namespace {

class ConstructProbe final : public sim::ScriptedAgent {
 public:
  ConstructProbe(const core::Params& params, double delta, Rng rng)
      : params_(params), delta_(delta), rng_(rng) {}
  [[nodiscard]] bool halted() const override { return done_; }
  core::ConstructStats stats;
  std::vector<graph::VertexId> t_set;

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      run_ = std::make_unique<core::ConstructRun>(knowledge_, params_, delta_,
                                                  view.num_vertices());
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->on_arrival(view);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    stats = run_->stats();
    t_set = run_->t_set();
    done_ = true;
  }

 private:
  core::Params params_;
  double delta_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  core::Knowledge knowledge_;
  std::unique_ptr<core::ConstructRun> run_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "Ablation — Construct's two-step decision vs strict-only (δ ~ n^0.6)",
      "Expected shape: the paper's optimistic/strict mix beats the naive "
      "always-strict variant by a factor that widens with n/delta "
      "(O((n/d)log^2 n) vs O((n/d)^2) rounds), with identical output "
      "quality (both T^a dense).");
  bench::print_runner_info(runner);
  bench::note_no_aggregates(config);

  Table table({"n", "delta", "n/delta", "two-step rounds(med)",
               "strict-only rounds(med)", "speedup", "iters(med)",
               "both dense"});

  for (const auto n : config.sizes({512, 1024, 2048, 4096})) {
    Rng grng(40 + n, 911);
    const auto out_degree = static_cast<std::size_t>(
        std::max(2.0, std::pow(static_cast<double>(n), 0.6) / 2.0));
    const auto g = graph::make_near_regular(n, out_degree, grng);
    const double delta = static_cast<double>(g.min_degree());

    struct Trial {
      bool halted = false;
      bool dense = false;
      double rounds = 0, iters = 0;
    };
    auto run_variant = [&](bool optimistic, std::vector<double>& rounds,
                           std::vector<double>& iters, bool& dense) {
      auto params = core::Params::practical();
      params.optimistic_decision = optimistic;
      const auto trials = runner.run_map(
          config.reps, 40 + n + (optimistic ? 0 : 1),
          [&](std::uint64_t, std::uint64_t seed) {
            Trial trial;
            sim::Scheduler scheduler(g, sim::Model::full());
            ConstructProbe probe(params, delta, Rng(seed));
            const auto result = scheduler.run_single(
                probe, 0, 400 * params.construct_round_budget(n, delta));
            if (!probe.halted()) return trial;
            trial.halted = true;
            trial.rounds = static_cast<double>(result.metrics.rounds);
            trial.iters = static_cast<double>(probe.stats.iterations);
            std::vector<graph::VertexIndex> t_idx;
            for (const auto id : probe.t_set) t_idx.push_back(g.index_of(id));
            trial.dense = graph::is_dense_set(g, 0, t_idx, delta / 8.0, 2);
            return trial;
          });
      for (const auto& trial : trials) {
        if (!trial.halted) {
          dense = false;
          continue;
        }
        rounds.push_back(trial.rounds);
        iters.push_back(trial.iters);
        dense = dense && trial.dense;
      }
    };

    std::vector<double> two_step, strict_only, iters_two, iters_strict;
    bool dense = true;
    run_variant(true, two_step, iters_two, dense);
    run_variant(false, strict_only, iters_strict, dense);

    const double med_two = summarize(two_step).median;
    const double med_strict = summarize(strict_only).median;
    table.add_row(RowBuilder()
                      .add(std::uint64_t{n})
                      .add(delta, 0)
                      .add(static_cast<double>(n) / delta, 1)
                      .add(med_two, 0)
                      .add(med_strict, 0)
                      .add(med_two > 0 ? med_strict / med_two : 0.0, 2)
                      .add(summarize(iters_two).median, 1)
                      .add(dense ? "yes" : "NO")
                      .build());
  }
  table.print(std::cout);
  return 0;
}
