// E5 — Theorem 2: whiteboard-free rendezvous under tight naming.
//
// Paper claim: with tight naming (n' = O(n)) and known δ, rendezvous without
// whiteboards completes in O(t' + (n/√δ)·log²n) rounds w.h.p. — sublinear in
// Δ once δ = ω(n^{2/3}·log^{4/3} n).
//
// Two measurements per size:
//  * end-to-end — the full algorithm. In practice the agents almost always
//    collide while a is still constructing T^a, long before the phase
//    schedule starts at t' (the paper's bound is an upper bound; this is
//    the honest full-protocol number).
//  * phase schedule (oracle ablation) — Construct is replaced by an oracle
//    two-hop map and the synchronized start is moved to round 0, isolating
//    the block-phase mechanism whose (n/√δ)·log²n cost is Theorem 2's
//    distinctive term. Its fitted exponent is the shape under test.
#include "bench_support.hpp"

#include "core/no_whiteboard.hpp"

using namespace fnr;

namespace {

core::NoWbOracle make_oracle(const graph::Graph& g,
                             graph::VertexIndex a_start) {
  core::NoWbOracle oracle;
  oracle.enabled = true;
  for (const auto x : g.neighbors(a_start)) {
    std::vector<graph::VertexId> nbrs;
    nbrs.reserve(g.degree(x));
    for (const auto w : g.neighbors(x)) nbrs.push_back(g.id_of(w));
    oracle.two_ball.emplace_back(g.id_of(x), std::move(nbrs));
  }
  return oracle;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E5 — Theorem 2: whiteboard-free rendezvous (tight naming, "
      "delta ~ n^0.8)",
      "Expected shape: the oracle-ablated phase schedule tracks "
      "C*(n/sqrt(delta))*ln^2 n (fitted exponent matching the bound's); "
      "end-to-end runs finish even earlier (collisions during Construct); "
      "zero whiteboard traffic everywhere.");
  bench::print_runner_info(runner);

  const auto params = core::Params::practical();

  // --- Part 1: the full algorithm, end to end -----------------------------
  {
    Table table({"n", "delta", "t'", "end-to-end(med)", "before t'",
                 "wb writes", "fail"});
    for (const auto n : config.sizes({256, 512, 1024, 2048})) {
      const auto g = bench::dense_family(n, 0.8, 700 + n);
      const double delta = static_cast<double>(g.min_degree());
      const auto schedule =
          core::NoWbSchedule::make(n, g.id_bound(), delta, params);
      const std::uint64_t base_seed = 700 + n;
      const auto reports = runner.run_map(
          config.reps, base_seed, [&](std::uint64_t, std::uint64_t seed) {
            return bench::run_once(g, core::Strategy::NoWhiteboard, seed);
          });
      std::uint64_t before_t = 0, wb_writes = 0;
      for (const auto& report : reports) {
        before_t += report.run.met &&
                    report.run.meeting_round < schedule.t_start;
        wb_writes += report.run.metrics.whiteboard_writes;
      }
      const auto end_to_end = bench::collect(reports, base_seed);
      bench::emit_aggregate(config, "e5_end_to_end_n" + std::to_string(n),
                            end_to_end.aggregate);
      table.add_row(RowBuilder()
                        .add(std::uint64_t{n})
                        .add(delta, 0)
                        .add(std::uint64_t{schedule.t_start})
                        .add(end_to_end.rounds.median, 0)
                        .add(std::to_string(before_t) + "/" +
                             std::to_string(config.reps))
                        .add(wb_writes)
                        .add(end_to_end.failures)
                        .build());
    }
    table.print(std::cout);
  }

  // --- Part 2: the phase schedule in isolation (oracle ablation) ----------
  // Fixed δ with growing n puts the meeting many ID-blocks deep, which is
  // the regime Theorem 2's n/√δ·log²n term describes.
  {
    Table table({"n", "delta", "blocks", "phase sched(med)", "bound",
                 "sched/bound", "fail"});
    std::vector<double> ns, sched_rounds, bounds;
    auto run_ablation = [&](std::size_t n, std::size_t out_degree,
                            bool record_fit) {
      Rng grng(700 + n, 911);
      const auto g = graph::make_near_regular(n, out_degree, grng);
      const double delta = static_cast<double>(g.min_degree());
      const auto schedule =
          core::NoWbSchedule::make(n, g.id_bound(), delta, params);
      // The meeting lands in the first ID-block holding a common Φ vertex —
      // a geometric-ish position with large variance; extra reps steady the
      // median.
      const auto phase_sched = bench::repeat(
          runner, 6 * config.reps, 1700 + n,
          [&](std::uint64_t, std::uint64_t seed) {
            Rng prng(seed, 3);
            const auto placement = sim::random_adjacent_placement(g, prng);
            Rng agent_seed(seed);
            core::NoWhiteboardAgentA agent_a(
                params, delta, agent_seed.split(),
                make_oracle(g, placement.a_start));
            core::NoWhiteboardAgentB agent_b(params, delta,
                                             agent_seed.split(),
                                             /*synchronized_start=*/false);
            sim::Scheduler scheduler(g, sim::Model::no_whiteboards());
            return scheduler.run(agent_a, agent_b, placement,
                                 4 * schedule.total_rounds() + 1024);
          });
      bench::emit_aggregate(config,
                            "e5_phase_sched_n" + std::to_string(n) + "_d" +
                                std::to_string(g.min_degree()),
                            phase_sched.aggregate);
      const double bound = core::theorem2_bound(n, delta);
      table.add_row(RowBuilder()
                        .add(std::uint64_t{n})
                        .add(delta, 0)
                        .add(std::uint64_t{schedule.num_blocks})
                        .add(phase_sched.rounds.median, 0)
                        .add(bound, 0)
                        .add(phase_sched.rounds.median / bound, 2)
                        .add(phase_sched.failures)
                        .build());
      if (record_fit && phase_sched.rounds.count > 0) {
        ns.push_back(static_cast<double>(n));
        sched_rounds.push_back(phase_sched.rounds.median);
        bounds.push_back(core::theorem2_bound(n, delta));
      }
    };
    // n sweep at fixed δ ≈ 512 (the shape fit), then a δ sweep at fixed n
    // (the 1/√δ dependence).
    for (const auto n : config.sizes({4096, 8192, 16384, 32768}))
      run_ablation(n, 256, /*record_fit=*/true);
    for (const std::size_t out : {64, 1024})
      run_ablation(8192, out, /*record_fit=*/false);
    table.print(std::cout);
    bench::print_fit("phase schedule (oracle ablation, fixed delta)", ns,
                     sched_rounds);
    bench::print_fit("Theorem 2 bound over the same sweep", ns, bounds);
  }
  return 0;
}
