// E12 — substrate micro-benchmarks (google-benchmark).
//
// Context for the experiment tables: how fast the simulator itself is
// (graph generation, scheduler round throughput, Sample bookkeeping, BFS).
#include <benchmark/benchmark.h>

#include "baselines/random_walk.hpp"
#include "core/knowledge.hpp"
#include "core/sample.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace fnr {
namespace {

void BM_GraphGenNearRegular(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 0;
  for (auto _ : state) {
    Rng rng(++seed);
    auto g = graph::make_near_regular(n, 16, rng);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GraphGenNearRegular)->Arg(1024)->Arg(8192);

void BM_GraphGenComplete(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto g = graph::make_complete(n);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_GraphGenComplete)->Arg(256)->Arg(1024);

void BM_SchedulerRoundThroughput(benchmark::State& state) {
  Rng rng(7);
  const auto g = graph::make_near_regular(
      static_cast<std::size_t>(state.range(0)), 8, rng);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sim::Scheduler scheduler(g, sim::Model::port_only());
    baselines::RandomWalkAgent a(Rng(++seed, 1), 0.0);
    baselines::RandomWalkAgent b(Rng(seed, 2), 0.0);
    // Fixed round budget; the walk rarely meets that fast on a big graph.
    const auto result =
        scheduler.run(a, b, sim::Placement{0, 1}, 10000);
    benchmark::DoNotOptimize(result.metrics.rounds);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          10000);
}
BENCHMARK(BM_SchedulerRoundThroughput)->Arg(4096);

void BM_BfsDistances(benchmark::State& state) {
  Rng rng(3);
  const auto g = graph::make_near_regular(
      static_cast<std::size_t>(state.range(0)), 8, rng);
  for (auto _ : state) {
    auto dist = graph::bfs_distances(g, 0);
    benchmark::DoNotOptimize(dist.data());
  }
}
BENCHMARK(BM_BfsDistances)->Arg(4096)->Arg(65536);

void BM_EdgeAtSlot(benchmark::State& state) {
  Rng rng(5);
  const auto g = graph::make_near_regular(8192, 16, rng);
  std::uint64_t slot = 0;
  const std::uint64_t slots = 2 * g.num_edges();
  for (auto _ : state) {
    slot = (slot + 7919) % slots;
    benchmark::DoNotOptimize(g.edge_at_slot(slot));
  }
}
BENCHMARK(BM_EdgeAtSlot);

void BM_ClosedNeighborhoodIntersection(benchmark::State& state) {
  Rng rng(11);
  const auto g = graph::make_near_regular(4096, 64, rng);
  graph::VertexIndex u = 0;
  for (auto _ : state) {
    u = (u + 1) % 4096;
    benchmark::DoNotOptimize(
        graph::closed_neighborhood_intersection(g, u, (u * 13 + 1) % 4096));
  }
}
BENCHMARK(BM_ClosedNeighborhoodIntersection);

}  // namespace
}  // namespace fnr

BENCHMARK_MAIN();
