// E8 — Theorem 5 / Figure 3: the Ω(Δ) lower bound at initial distance two.
//
// Paper claim: two cliques sharing a single vertex force Ω(Δ) rounds when
// the agents start at distance TWO — neighborhood rendezvous' distance-1
// promise is essential.
//
// The bench measures algorithm families on the distance-2 instance and, as
// the control, the same graph with a distance-1 placement inside one clique
// (where Theorem 1's algorithm applies and is fast).
#include "bench_support.hpp"

#include "baselines/random_walk.hpp"
#include "baselines/wait_and_explore.hpp"
#include "baselines/wait_and_sweep.hpp"  // WaitingAgent
#include "lower_bounds/instances.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E8 — Theorem 5 / Figure 3: shared-vertex cliques, initial distance 2",
      "Expected shape: at distance 2 every family pays Omega(n) (the agents "
      "must discover the unique cut vertex); the distance-1 control on the "
      "same graph is solved fast. The core algorithm refuses distance-2 "
      "inputs (its promise is distance 1) — recorded as 'precondition'.");
  bench::print_runner_info(runner);

  Table table({"n", "Delta", "explore d2(med)", "walk d2(med)",
               "core d2", "core d1 control(med)", "fail"});

  std::vector<double> ns, explore_r, walk_r;
  for (const auto half : config.sizes({128, 256, 512, 1024})) {
    const auto inst = lower_bounds::theorem5_instance(half);
    const auto& g = inst.graph;
    const std::uint64_t cap = 200 * g.num_vertices();

    // Shuffle IDs so the DFS cannot ride the construction's index layout.
    Rng id_rng(half, 8);
    const auto shuffled_graph =
        graph::with_ids(g, graph::shuffled_ids(g.num_vertices(), id_rng));

    // DFS exploration vs a waiting partner on a fixed placement is
    // deterministic — one trial carries all the information.
    const auto explore_out = bench::repeat(
        runner, 1, 100 + half, [&](std::uint64_t, std::uint64_t) {
          sim::Scheduler scheduler(shuffled_graph, inst.model);
          baselines::ExploreAgent a;
          baselines::WaitingAgent b;
          return scheduler.run(a, b, inst.placement, cap);
        });
    const auto walk_out = bench::repeat(
        runner, config.reps, 200 + half,
        [&](std::uint64_t, std::uint64_t seed) {
          sim::Scheduler scheduler(shuffled_graph, inst.model);
          Rng walk_rng(seed);
          baselines::RandomWalkAgent a(walk_rng.split());
          baselines::RandomWalkAgent b(walk_rng.split());
          return scheduler.run(a, b, inst.placement, cap);
        });

    // Core algorithm: distance-2 placement violates the promise (throws);
    // distance-1 control inside clique A works.
    std::string core_d2 = "precondition";
    try {
      (void)core::run_rendezvous(shuffled_graph, inst.placement, {});
      core_d2 = "ran";
    } catch (const CheckError&) {
    }
    const auto control = bench::repeat(
        runner, config.reps, 300 + half,
        [&](std::uint64_t, std::uint64_t seed) {
          core::RendezvousOptions options;
          options.strategy = core::Strategy::Whiteboard;
          options.seed = seed;
          // a_start and the shared vertex are adjacent (both in clique A).
          return core::run_rendezvous(
                     shuffled_graph,
                     sim::Placement{inst.placement.a_start, inst.aux},
                     options)
              .run;
        });

    const std::string cell = "_n" + std::to_string(g.num_vertices());
    bench::emit_aggregate(config, "e8_explore_d2" + cell,
                          explore_out.aggregate);
    bench::emit_aggregate(config, "e8_walk_d2" + cell, walk_out.aggregate);
    bench::emit_aggregate(config, "e8_control_d1" + cell, control.aggregate);
    table.add_row(RowBuilder()
                      .add(std::uint64_t{g.num_vertices()})
                      .add(std::uint64_t{g.max_degree()})
                      .add(explore_out.rounds.median, 0)
                      .add(walk_out.rounds.median, 0)
                      .add(core_d2)
                      .add(control.rounds.median, 0)
                      .add(explore_out.failures + walk_out.failures +
                           control.failures)
                      .build());
    ns.push_back(static_cast<double>(g.num_vertices()));
    explore_r.push_back(explore_out.rounds.median);
    walk_r.push_back(walk_out.rounds.median);
  }
  table.print(std::cout);
  bench::print_fit("wait+explore at distance 2", ns, explore_r);
  bench::print_fit("random walks at distance 2", ns, walk_r);
  return 0;
}
