// E2 — the sublinearity threshold: rounds vs δ at fixed n, Δ = n-1.
//
// Paper claim: Theorem 1 beats the trivial O(Δ) sweep exactly when δ is
// large (δ = ω(√n·log n) asymptotically); Theorem 3 shows Ω(Δ) is
// unavoidable for δ = o(√n).
//
// Hub-augmented graphs fix Δ = n-1 while δ is swept. Both agents start on
// hubs: that is the hard configuration — with a high-degree v₀ᵇ the
// accidental shortcut (b stumbling onto a's home) costs Θ(n), and with a
// high-degree v₀ᵃ the trivial sweep really pays Θ(Δ). What remains is the
// δ-dependence the theorem is about. (With practical constants the measured
// crossover sits above the asymptotic threshold; the shape — algorithm
// rounds falling in δ against a flat sweep — is the claim under test.)
#include "bench_support.hpp"

#include "baselines/wait_and_sweep.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  const std::size_t n = config.quick ? 2048 : 4096;
  bench::print_header(
      "E2 — delta sweep at fixed n = " + std::to_string(n) +
          ", Delta = n-1 (hub-augmented graphs, hub-to-hub placement)",
      "Expected shape: algorithm rounds fall as delta grows; the trivial "
      "sweep stays pinned near 2*Delta; the crossover appears once delta is "
      "well above sqrt(n) = " +
          format_double(std::sqrt(static_cast<double>(n)), 0) + ".");
  bench::print_runner_info(runner);

  Table table({"delta", "Delta", "rounds(med)", "bound", "sweep(worst)",
               "algo wins", "fail"});

  for (const std::size_t base :
       config.sizes({16, 32, 64, 128, 256, 512, 1024})) {
    Rng rng(base, 5);
    const auto g = graph::make_hub_augmented(n, base, 2, rng);
    // The two hubs are the last two indices and are adjacent.
    const auto hub1 = static_cast<graph::VertexIndex>(n - 2);
    const auto hub2 = static_cast<graph::VertexIndex>(n - 1);
    const sim::Placement placement{hub1, hub2};

    // Meeting times on hub-to-hub placements have heavy variance (the
    // protocol path races an accidental-collision path); use extra reps.
    const auto outcome = bench::repeat(
        runner, 3 * config.reps, base,
        [&](std::uint64_t, std::uint64_t seed) {
          core::RendezvousOptions options;
          options.strategy = core::Strategy::Whiteboard;
          options.seed = seed;
          return core::run_rendezvous(g, placement, options).run;
        });
    bench::emit_aggregate(config, "e2_delta" + std::to_string(g.min_degree()),
                          outcome.aggregate);

    // Sweep worst case from a hub: b sits behind the last port. Measured
    // with b parked on the highest-index neighbor of hub1 (= hub2's slot).
    sim::Scheduler scheduler(g, sim::Model::port_only());
    baselines::SweepAgent sweep_agent;
    baselines::WaitingAgent waiter;
    const auto nbrs = g.neighbors(hub1);
    const auto sweep =
        scheduler.run(sweep_agent, waiter,
                      sim::Placement{hub1, nbrs[nbrs.size() - 1]},
                      4 * g.max_degree() + 16);

    const double bound = core::theorem1_bound(
        n, static_cast<double>(g.min_degree()),
        static_cast<double>(g.max_degree()));
    table.add_row(
        RowBuilder()
            .add(std::uint64_t{g.min_degree()})
            .add(std::uint64_t{g.max_degree()})
            .add(outcome.rounds.median, 0)
            .add(bound, 0)
            .add(std::uint64_t{sweep.meeting_round})
            .add(outcome.rounds.median <
                         static_cast<double>(sweep.meeting_round)
                     ? "yes"
                     : "no")
            .add(outcome.failures)
            .build());
  }
  table.print(std::cout);
  return 0;
}
