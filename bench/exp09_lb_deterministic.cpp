// E9 — Theorem 6: the Ω(n) lower bound for deterministic algorithms.
//
// Paper claim: an adaptive adversary (Lemma 9) strands any deterministic
// agent away from >= 13n/32 of its start's neighbors within n/32 rounds;
// gluing two such transcripts yields a Θ(n)-degree distance-1 instance on
// which the deterministic pair cannot meet before round n/32.
//
// The bench executes the construction against three concrete deterministic
// strategies and reports the Lemma 9 stranding ratio plus the measured
// meeting round on the glued instance against the n/32 threshold.
#include "bench_support.hpp"

#include "lower_bounds/adversary.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E9 — Theorem 6: adaptive adversary vs deterministic algorithms",
      "Expected shape: |W|/n >= 13/32 = 0.40625 for every strategy and n; "
      "on the glued instance the pair's meeting round is >= n/32.");
  bench::print_runner_info(runner);
  bench::note_no_aggregates(config);

  struct Strategy {
    lower_bounds::DetAgentFactory factory;
    const char* name;
  };
  const Strategy strategies[] = {
      {&lower_bounds::make_lex_dfs, "lex-dfs"},
      {&lower_bounds::make_lex_sweep, "lex-sweep"},
      {&lower_bounds::make_rotor_walk, "rotor-walk"},
  };

  Table table({"n", "strategy", "|W_a|/n", "|W_b|/n", "min degree",
               "meeting round", "n/32", "forced"});

  struct Row {
    double w_a_ratio = 0, w_b_ratio = 0;
    std::uint64_t min_degree = 0;
    std::string meeting;
    bool forced = false;
  };

  for (const auto n : config.sizes({128, 256, 512, 1024})) {
    // The runs are deterministic (the seed is unused) — the trial runner
    // only parallelizes the three strategy rows across the pool.
    const auto rows = runner.run_map(
        std::size(strategies), 0, [&](std::uint64_t index, std::uint64_t) {
          const auto& strategy = strategies[index];
          const auto inst = lower_bounds::build_theorem6_instance(
              strategy.factory, strategy.factory, n);
          sim::Scheduler scheduler(inst.graph, sim::Model::full());
          lower_bounds::DetAgentAdapter agent_a(strategy.factory());
          lower_bounds::DetAgentAdapter agent_b(strategy.factory());
          const auto result =
              scheduler.run(agent_a, agent_b, inst.placement,
                            16 * inst.graph.num_vertices());
          Row row;
          row.w_a_ratio =
              static_cast<double>(inst.w_a) / static_cast<double>(n);
          row.w_b_ratio =
              static_cast<double>(inst.w_b) / static_cast<double>(n);
          row.min_degree = inst.graph.min_degree();
          row.meeting =
              result.met ? std::to_string(result.meeting_round) : "never";
          row.forced = !result.met || result.meeting_round >= n / 32;
          return row;
        });
    for (std::size_t i = 0; i < rows.size(); ++i) {
      table.add_row(RowBuilder()
                        .add(std::uint64_t{n})
                        .add(strategies[i].name)
                        .add(rows[i].w_a_ratio, 3)
                        .add(rows[i].w_b_ratio, 3)
                        .add(rows[i].min_degree)
                        .add(rows[i].meeting)
                        .add(std::uint64_t{n / 32})
                        .add(rows[i].forced ? "yes" : "NO")
                        .build());
    }
  }
  table.print(std::cout);
  return 0;
}
