// E11 — resource accounting (§2.1 claims).
//
// Paper claims: the algorithms use O(n log n) bits of agent memory and
// O(log n) bits per whiteboard. The simulator tracks a per-agent
// memory-word proxy (64-bit words across all live containers) and exact
// whiteboard usage; this bench reports both against the claimed budgets.
#include "bench_support.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  bench::print_header(
      "E11 — resource usage (near-regular, delta ~ n^0.78)",
      "Expected shape: peak agent memory grows ~linearly in n words "
      "(= O(n log n) bits); whiteboards hold one vertex ID each "
      "(<= 64 bits vs the O(log n) claim); agent b stays O(1).");

  Table table({"n", "strategy", "peak a (words)", "words/n", "peak b (words)",
               "boards used", "writes", "bits/board"});

  for (const auto n : config.sizes({256, 512, 1024, 2048})) {
    const auto g = bench::dense_family(n, 0.78, 1100 + n);
    for (const auto strategy :
         {core::Strategy::Whiteboard, core::Strategy::NoWhiteboard}) {
      std::vector<double> peak_a, peak_b, boards, writes;
      for (std::uint64_t rep = 1; rep <= config.reps; ++rep) {
        const auto report = bench::run_once(g, strategy, rep * 7 + n);
        if (!report.run.met) continue;
        peak_a.push_back(static_cast<double>(
            report.run.metrics.peak_memory_words[0]));
        peak_b.push_back(static_cast<double>(
            report.run.metrics.peak_memory_words[1]));
        boards.push_back(
            static_cast<double>(report.run.metrics.whiteboards_used));
        writes.push_back(
            static_cast<double>(report.run.metrics.whiteboard_writes));
      }
      const double a_med = summarize(peak_a).median;
      table.add_row(RowBuilder()
                        .add(std::uint64_t{n})
                        .add(core::to_string(strategy))
                        .add(a_med, 0)
                        .add(a_med / static_cast<double>(n), 2)
                        .add(summarize(peak_b).median, 0)
                        .add(summarize(boards).median, 0)
                        .add(summarize(writes).median, 0)
                        .add(strategy == core::Strategy::Whiteboard ? "64"
                                                                    : "0")
                        .build());
    }
  }
  table.print(std::cout);
  return 0;
}
