// E11 — resource accounting (§2.1 claims).
//
// Paper claims: the algorithms use O(n log n) bits of agent memory and
// O(log n) bits per whiteboard. The simulator tracks a per-agent
// memory-word proxy (64-bit words across all live containers) and exact
// whiteboard usage; this bench reports both against the claimed budgets.
#include "bench_support.hpp"

using namespace fnr;

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E11 — resource usage (near-regular, delta ~ n^0.78)",
      "Expected shape: peak agent memory grows ~linearly in n words "
      "(= O(n log n) bits); whiteboards hold one vertex ID each "
      "(<= 64 bits vs the O(log n) claim); agent b stays O(1).");
  bench::print_runner_info(runner);

  Table table({"n", "strategy", "peak a (words)", "words/n", "peak b (words)",
               "boards used", "writes", "bits/board"});

  for (const auto n : config.sizes({256, 512, 1024, 2048})) {
    const auto g = bench::dense_family(n, 0.78, 1100 + n);
    for (const auto strategy :
         {core::Strategy::Whiteboard, core::Strategy::NoWhiteboard}) {
      const auto reports = runner.run_map(
          config.reps, 1100 + n, [&](std::uint64_t, std::uint64_t seed) {
            return bench::run_once(g, strategy, seed);
          });
      std::vector<double> peak_a, peak_b, boards, writes;
      for (const auto& report : reports) {
        if (!report.run.met) continue;
        peak_a.push_back(static_cast<double>(
            report.run.metrics.peak_memory_words[0]));
        peak_b.push_back(static_cast<double>(
            report.run.metrics.peak_memory_words[1]));
        boards.push_back(
            static_cast<double>(report.run.metrics.whiteboards_used));
        writes.push_back(
            static_cast<double>(report.run.metrics.whiteboard_writes));
      }
      bench::emit_aggregate(config,
                            std::string("e11_n") + std::to_string(n) + "_" +
                                core::to_string(strategy),
                            bench::collect(reports, 1100 + n).aggregate);
      const double a_med = summarize(peak_a).median;
      table.add_row(RowBuilder()
                        .add(std::uint64_t{n})
                        .add(core::to_string(strategy))
                        .add(a_med, 0)
                        .add(a_med / static_cast<double>(n), 2)
                        .add(summarize(peak_b).median, 0)
                        .add(summarize(boards).median, 0)
                        .add(summarize(writes).median, 0)
                        .add(strategy == core::Strategy::Whiteboard ? "64"
                                                                    : "0")
                        .build());
    }
  }
  table.print(std::cout);
  return 0;
}
