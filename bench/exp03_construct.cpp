// E3 — Construct (Lemmas 6-8): iterations, strict runs, rounds.
//
// Paper claims: Construct finishes in O(n/δ) iterations, with O(log n)
// strict Sample runs, within O((n/δ)·log²n) rounds, and the output satisfies
// the (a, δ/8, 2)-dense condition.
#include "bench_support.hpp"

#include "core/construct.hpp"
#include "sim/scripted_agent.hpp"

using namespace fnr;

namespace {

/// Lone-agent driver (same pattern as WhiteboardAgentA's construct phase).
class ConstructProbe final : public sim::ScriptedAgent {
 public:
  ConstructProbe(const core::Params& params, double delta, Rng rng)
      : params_(params), delta_(delta), rng_(rng) {}

  [[nodiscard]] bool halted() const override { return done_; }
  std::vector<graph::VertexId> t_set;
  core::ConstructStats stats;

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      run_ = std::make_unique<core::ConstructRun>(knowledge_, params_, delta_,
                                                  view.num_vertices());
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->on_arrival(view);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    t_set = run_->t_set();
    stats = run_->stats();
    done_ = true;
  }

 private:
  core::Params params_;
  double delta_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  core::Knowledge knowledge_;
  std::unique_ptr<core::ConstructRun> run_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E3 — Construct cost (Lemmas 6-8) on near-regular graphs, "
      "delta ~ n^0.78",
      "Expected shape: iterations <= 2n/delta, strict runs = O(log n), "
      "rounds <= the deterministic budget t' both Algorithm-4 agents "
      "synchronize on; the dense condition holds in every run.");
  bench::print_runner_info(runner);
  bench::note_no_aggregates(config);

  Table table({"n", "delta", "iters(med)", "2n/delta", "strict(med)",
               "log2 n", "rounds(med)", "budget t'", "|T^a|(med)",
               "dense ok"});

  struct Trial {
    bool halted = false;
    bool dense = false;
    double iters = 0, strict = 0, rounds = 0, t_size = 0;
  };

  const auto params = core::Params::practical();
  for (const auto n : config.sizes({256, 512, 1024, 2048, 4096})) {
    const auto g = bench::dense_family(n, 0.78, 300 + n);
    const double delta = static_cast<double>(g.min_degree());
    const auto trials = runner.run_map(
        config.reps, 300 + n, [&](std::uint64_t, std::uint64_t seed) {
          Trial trial;
          sim::Scheduler scheduler(g, sim::Model::full());
          ConstructProbe probe(params, delta, Rng(seed));
          const auto result = scheduler.run_single(
              probe, 0, params.construct_round_budget(n, delta) * 4);
          if (!probe.halted()) return trial;
          trial.halted = true;
          trial.iters = static_cast<double>(probe.stats.iterations);
          trial.strict = static_cast<double>(probe.stats.strict_runs);
          trial.rounds = static_cast<double>(result.metrics.rounds);
          trial.t_size = static_cast<double>(probe.t_set.size());
          std::vector<graph::VertexIndex> t_idx;
          for (const auto id : probe.t_set) t_idx.push_back(g.index_of(id));
          trial.dense = graph::is_dense_set(g, 0, t_idx, delta / 8.0, 2);
          return trial;
        });
    std::vector<double> iters, strict, rounds, t_sizes;
    bool dense_ok = true;
    for (const auto& trial : trials) {
      if (!trial.halted) {
        dense_ok = false;
        continue;
      }
      iters.push_back(trial.iters);
      strict.push_back(trial.strict);
      rounds.push_back(trial.rounds);
      t_sizes.push_back(trial.t_size);
      dense_ok = dense_ok && trial.dense;
    }
    table.add_row(RowBuilder()
                      .add(std::uint64_t{n})
                      .add(delta, 0)
                      .add(summarize(iters).median, 1)
                      .add(2.0 * static_cast<double>(n) / delta, 1)
                      .add(summarize(strict).median, 1)
                      .add(std::log2(static_cast<double>(n)), 1)
                      .add(summarize(rounds).median, 0)
                      .add(std::uint64_t{params.construct_round_budget(
                          n, delta)})
                      .add(summarize(t_sizes).median, 0)
                      .add(dense_ok ? "yes" : "NO")
                      .build());
  }
  table.print(std::cout);
  return 0;
}
