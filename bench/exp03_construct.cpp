// E3 — Construct (Lemmas 6-8): iterations, strict runs, rounds.
//
// Paper claims: Construct finishes in O(n/δ) iterations, with O(log n)
// strict Sample runs, within O((n/δ)·log²n) rounds, and the output satisfies
// the (a, δ/8, 2)-dense condition.
#include "bench_support.hpp"

#include "core/construct.hpp"
#include "sim/scripted_agent.hpp"

using namespace fnr;

namespace {

/// Lone-agent driver (same pattern as WhiteboardAgentA's construct phase).
class ConstructProbe final : public sim::ScriptedAgent {
 public:
  ConstructProbe(const core::Params& params, double delta, Rng rng)
      : params_(params), delta_(delta), rng_(rng) {}

  [[nodiscard]] bool halted() const override { return done_; }
  std::vector<graph::VertexId> t_set;
  core::ConstructStats stats;

 protected:
  void on_idle(const sim::View& view) override {
    if (!init_) {
      knowledge_.init_home(view.here(), view.neighbor_ids());
      run_ = std::make_unique<core::ConstructRun>(knowledge_, params_, delta_,
                                                  view.num_vertices());
      init_ = true;
    }
    if (view.here() != knowledge_.home()) {
      run_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
      return;
    }
    while (auto target = run_->next_target(rng_)) {
      if (*target == view.here()) {
        run_->on_arrival(view);
        continue;
      }
      plan_route(knowledge_.route_from_home(*target));
      return;
    }
    t_set = run_->t_set();
    stats = run_->stats();
    done_ = true;
  }

 private:
  core::Params params_;
  double delta_;
  Rng rng_;
  bool init_ = false;
  bool done_ = false;
  core::Knowledge knowledge_;
  std::unique_ptr<core::ConstructRun> run_;
};

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  bench::print_header(
      "E3 — Construct cost (Lemmas 6-8) on near-regular graphs, "
      "delta ~ n^0.78",
      "Expected shape: iterations <= 2n/delta, strict runs = O(log n), "
      "rounds <= the deterministic budget t' both Algorithm-4 agents "
      "synchronize on; the dense condition holds in every run.");

  Table table({"n", "delta", "iters(med)", "2n/delta", "strict(med)",
               "log2 n", "rounds(med)", "budget t'", "|T^a|(med)",
               "dense ok"});

  const auto params = core::Params::practical();
  for (const auto n : config.sizes({256, 512, 1024, 2048, 4096})) {
    const auto g = bench::dense_family(n, 0.78, 300 + n);
    const double delta = static_cast<double>(g.min_degree());
    std::vector<double> iters, strict, rounds, t_sizes;
    bool dense_ok = true;
    for (std::uint64_t rep = 1; rep <= config.reps; ++rep) {
      sim::Scheduler scheduler(g, sim::Model::full());
      ConstructProbe probe(params, delta, Rng(rep * 13 + n));
      const auto result = scheduler.run_single(
          probe, 0, params.construct_round_budget(n, delta) * 4);
      if (!probe.halted()) {
        dense_ok = false;
        continue;
      }
      iters.push_back(static_cast<double>(probe.stats.iterations));
      strict.push_back(static_cast<double>(probe.stats.strict_runs));
      rounds.push_back(static_cast<double>(result.metrics.rounds));
      t_sizes.push_back(static_cast<double>(probe.t_set.size()));
      std::vector<graph::VertexIndex> t_idx;
      for (const auto id : probe.t_set) t_idx.push_back(g.index_of(id));
      dense_ok = dense_ok && graph::is_dense_set(g, 0, t_idx, delta / 8.0, 2);
    }
    table.add_row(RowBuilder()
                      .add(std::uint64_t{n})
                      .add(delta, 0)
                      .add(summarize(iters).median, 1)
                      .add(2.0 * static_cast<double>(n) / delta, 1)
                      .add(summarize(strict).median, 1)
                      .add(std::log2(static_cast<double>(n)), 1)
                      .add(summarize(rounds).median, 0)
                      .add(std::uint64_t{params.construct_round_budget(
                          n, delta)})
                      .add(summarize(t_sizes).median, 0)
                      .add(dense_ok ? "yes" : "NO")
                      .build());
  }
  table.print(std::cout);
  return 0;
}
