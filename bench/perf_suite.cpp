// Perf-tracking bench: times rounds/sec and trials/sec across
// strategy × topology cells and emits the schema-versioned BENCH_perf.json
// report (see src/perf/perf_suite.hpp for the schema contract and
// docs/PERFORMANCE.md for how to read it).
//
// Flags:
//   --quick            smoke cells (CI); default is the full sweep
//   --trials=N         per-cell trials (0 = mode default)
//   --threads=N        trial-runner pool size (0 = hardware threads)
//   --seed=N           base seed for every cell's batch
//   --batch=N          lock-step SoA batch size (0/1 = scalar path); pure
//                      throughput lever, identity fields are unchanged
//   --out=PATH         where to write the JSON report; default "auto" picks
//                      BENCH_perf.json (full) / BENCH_perf_quick.json
//                      (quick) so a quick run can never clobber the
//                      committed full baseline; --out= (empty) skips writing
//   --validate=PATH    parse + schema-validate an existing report and exit
//   --baseline=PATH    gate mode: run the suite, compare against the report
//                      at PATH, and exit non-zero on any identity drift or
//                      rounds/sec regression beyond --tolerance. With
//                      --out=auto, gate mode writes nothing (a gate run
//                      must never clobber the committed baseline).
//   --tolerance=F      allowed fractional rounds/sec regression in gate
//                      mode (default 0.30)
//   --gate-reps=N      gate mode runs the suite N times (default 3) and
//                      gates each cell's best rounds/sec: timing noise is
//                      one-sided (interference only slows a run down), so
//                      best-of-N is a stable estimate of the machine's
//                      true rate where a single shot would be flaky
#include <iostream>
#include <vector>

#include "perf/perf_suite.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fnr;
  try {
    Cli cli(argc, argv);
    perf::PerfConfig config;
    config.quick = cli.get_flag("quick");
    const auto trials = cli.get_int("trials", 0);
    FNR_CHECK_MSG(trials >= 0 && trials <= 100'000'000,
                  "--trials must be in [0, 1e8], got " << trials);
    config.trials = static_cast<std::uint64_t>(trials);
    const auto threads = cli.get_int("threads", 0);
    FNR_CHECK_MSG(threads >= 0 && threads <= 4096,
                  "--threads must be in [0, 4096], got " << threads);
    config.threads = static_cast<unsigned>(threads);
    const auto seed = cli.get_int("seed", 7);
    FNR_CHECK_MSG(seed >= 0, "--seed must be non-negative, got " << seed);
    config.seed = static_cast<std::uint64_t>(seed);
    const auto batch = cli.get_int("batch", 0);
    FNR_CHECK_MSG(batch >= 0 && batch <= 1'000'000,
                  "--batch must be in [0, 1e6], got " << batch);
    config.batch = static_cast<std::uint64_t>(batch);
    std::string out = cli.get_string("out", "auto");
    const std::string validate = cli.get_string("validate", "");
    const std::string baseline = cli.get_string("baseline", "");
    const double tolerance = cli.get_double("tolerance", 0.30);
    FNR_CHECK_MSG(tolerance >= 0.0 && tolerance < 1.0,
                  "--tolerance must be in [0, 1), got " << tolerance);
    const auto gate_reps = cli.get_int("gate-reps", 3);
    FNR_CHECK_MSG(gate_reps >= 1 && gate_reps <= 100,
                  "--gate-reps must be in [1, 100], got " << gate_reps);
    if (out == "auto") {
      // Gate runs write nothing: the committed baseline only changes via a
      // deliberate refresh (an explicit --out), never as a gate side effect.
      out = !baseline.empty()
                ? ""
                : (config.quick ? "BENCH_perf_quick.json" : "BENCH_perf.json");
    }
    cli.reject_unknown();

    if (!validate.empty()) {
      const auto report = perf::read_report_file(validate);
      perf::validate_report(report);
      std::cout << "ok: " << validate << " conforms to "
                << perf::schema_tag() << " (" << report.cells.size()
                << " cells)\n";
      return 0;
    }

    // Gate mode measures best-of-N; plain runs measure once (a committed
    // baseline should be a real single-run snapshot, not a composite).
    const std::size_t reps =
        baseline.empty() ? 1 : static_cast<std::size_t>(gate_reps);
    std::vector<perf::PerfReport> runs;
    runs.reserve(reps);
    for (std::size_t r = 0; r < reps; ++r)
      runs.push_back(perf::run_perf_suite(config));
    const auto report = reps == 1 ? runs.front() : perf::best_of(runs);
    perf::validate_report(report);

    std::cout << "## Perf suite (" << report.schema << ", "
              << (report.quick ? "quick" : "full") << " mode, "
              << report.threads << " threads"
              << (reps > 1 ? ", best of " + std::to_string(reps) : "")
              << ")\n\n";
    Table table({"strategy", "topology", "n", "trials", "total rounds",
                 "success", "seconds", "rounds/s", "trials/s"});
    for (const auto& cell : report.cells) {
      table.add_row({cell.strategy, cell.topology, std::to_string(cell.n),
                     std::to_string(cell.trials),
                     std::to_string(cell.total_rounds),
                     format_double(cell.success_rate, 4),
                     format_double(cell.seconds, 6),
                     format_double(cell.rounds_per_sec, 2),
                     format_double(cell.trials_per_sec, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";

    if (!out.empty()) {
      perf::write_report_file(report, out);
      std::cout << "wrote " << out << "\n";
    }

    if (!baseline.empty()) {
      const auto base = perf::read_report_file(baseline);
      perf::validate_report(base);
      const auto gate = perf::gate_against_baseline(base, report, tolerance);
      if (!gate.ok()) {
        std::cerr << "perf gate FAILED against " << baseline << ":\n";
        for (const auto& line : gate.failures)
          std::cerr << "  " << line << "\n";
        return 1;
      }
      std::cout << "perf gate ok against " << baseline << " ("
                << report.cells.size() << " cells, tolerance "
                << fnr::format_double(tolerance, 2) << ")\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "perf_suite: " << error.what() << "\n";
    return 1;
  }
}
