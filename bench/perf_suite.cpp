// Perf-tracking bench: times rounds/sec and trials/sec across
// strategy × topology cells and emits the schema-versioned BENCH_perf.json
// report (see src/perf/perf_suite.hpp for the schema contract and
// docs/PERFORMANCE.md for how to read it).
//
// Flags:
//   --quick            smoke cells (CI); default is the full sweep
//   --trials=N         per-cell trials (0 = mode default)
//   --threads=N        trial-runner pool size (0 = hardware threads)
//   --seed=N           base seed for every cell's batch
//   --out=PATH         where to write the JSON report; default "auto" picks
//                      BENCH_perf.json (full) / BENCH_perf_quick.json
//                      (quick) so a quick run can never clobber the
//                      committed full baseline; --out= (empty) skips writing
//   --validate=PATH    parse + schema-validate an existing report and exit
#include <iostream>

#include "perf/perf_suite.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace fnr;
  try {
    Cli cli(argc, argv);
    perf::PerfConfig config;
    config.quick = cli.get_flag("quick");
    const auto trials = cli.get_int("trials", 0);
    FNR_CHECK_MSG(trials >= 0 && trials <= 100'000'000,
                  "--trials must be in [0, 1e8], got " << trials);
    config.trials = static_cast<std::uint64_t>(trials);
    const auto threads = cli.get_int("threads", 0);
    FNR_CHECK_MSG(threads >= 0 && threads <= 4096,
                  "--threads must be in [0, 4096], got " << threads);
    config.threads = static_cast<unsigned>(threads);
    const auto seed = cli.get_int("seed", 7);
    FNR_CHECK_MSG(seed >= 0, "--seed must be non-negative, got " << seed);
    config.seed = static_cast<std::uint64_t>(seed);
    std::string out = cli.get_string("out", "auto");
    const std::string validate = cli.get_string("validate", "");
    if (out == "auto")
      out = config.quick ? "BENCH_perf_quick.json" : "BENCH_perf.json";
    cli.reject_unknown();

    if (!validate.empty()) {
      const auto report = perf::read_report_file(validate);
      perf::validate_report(report);
      std::cout << "ok: " << validate << " conforms to "
                << perf::schema_tag() << " (" << report.cells.size()
                << " cells)\n";
      return 0;
    }

    const auto report = perf::run_perf_suite(config);
    perf::validate_report(report);

    std::cout << "## Perf suite (" << report.schema << ", "
              << (report.quick ? "quick" : "full") << " mode, "
              << report.threads << " threads)\n\n";
    Table table({"strategy", "topology", "n", "trials", "total rounds",
                 "success", "seconds", "rounds/s", "trials/s"});
    for (const auto& cell : report.cells) {
      table.add_row({cell.strategy, cell.topology, std::to_string(cell.n),
                     std::to_string(cell.trials),
                     std::to_string(cell.total_rounds),
                     format_double(cell.success_rate, 4),
                     format_double(cell.seconds, 6),
                     format_double(cell.rounds_per_sec, 2),
                     format_double(cell.trials_per_sec, 2)});
    }
    table.print(std::cout);
    std::cout << "\n";

    if (!out.empty()) {
      perf::write_report_file(report, out);
      std::cout << "wrote " << out << "\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "perf_suite: " << error.what() << "\n";
    return 1;
  }
}
