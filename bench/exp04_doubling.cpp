// E4 — Corollary 2: removing the known-δ assumption by doubling estimation.
//
// Paper claim: restarting Construct with halved δ' costs only a constant
// factor (the geometric sum collapses), so the doubling variant matches the
// known-δ algorithm asymptotically.
//
// To actually exercise restarts, agent a starts on a hub of a hub-augmented
// graph: its initial estimate δ' = deg(v₀ᵃ)/2 ≈ n/2 is far above the true
// minimum degree, so a discovers low-degree vertices and halves its way
// down — exactly the §4.1 mechanism. Near-regular rows (no restarts needed)
// are included as the baseline case.
#include "bench_support.hpp"

using namespace fnr;

namespace {

struct Cell {
  Summary rounds;
  std::uint64_t failures = 0;
  double restarts_med = 0.0;
  runner::TrialAggregate aggregate;
};

Cell run_cell(const runner::TrialRunner& runner, const graph::Graph& g,
              sim::Placement placement, core::Strategy strategy,
              std::uint64_t base_seed, std::uint64_t reps) {
  const auto reports = runner.run_map(
      reps, base_seed, [&](std::uint64_t, std::uint64_t seed) {
        core::RendezvousOptions options;
        options.strategy = strategy;
        options.seed = seed;
        return core::run_rendezvous(g, placement, options);
      });
  Cell cell;
  cell.aggregate = bench::collect(reports, base_seed).aggregate;
  cell.rounds = cell.aggregate.rounds;
  cell.failures = cell.aggregate.failures;
  std::vector<double> restarts;
  for (const auto& report : reports) {
    if (!report.run.met) continue;
    restarts.push_back(
        static_cast<double>(report.agent_a.doubling_restarts));
  }
  cell.restarts_med = summarize(restarts).median;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const auto config = bench::BenchConfig::from_cli(argc, argv);
  const auto runner = config.trial_runner();
  bench::print_header(
      "E4 — Corollary 2: known delta vs doubling estimation",
      "Expected shape: the doubling column stays within a small constant "
      "factor of the known-delta column; restarts ~ log2(deg(v0_a)/delta) "
      "on hub starts and ~0 on near-regular starts.");
  bench::print_runner_info(runner);

  Table table({"family", "n", "delta", "known(med)", "doubling(med)",
               "ratio", "restarts(med)", "fail"});

  for (const auto n : config.sizes({512, 1024, 2048, 4096})) {
    // Near-regular: deg(v0)/2 ≈ delta already, no restarts expected.
    {
      const auto g = bench::dense_family(n, 0.78, 500 + n);
      Rng rng(n, 3);
      const auto placement = sim::random_adjacent_placement(g, rng);
      const auto known = run_cell(runner, g, placement,
                                  core::Strategy::Whiteboard, 500 + n,
                                  config.reps);
      const auto doubling = run_cell(runner, g, placement,
                                     core::Strategy::WhiteboardDoubling,
                                     500 + n, config.reps);
      bench::emit_aggregate(config, "e4_regular_known_n" + std::to_string(n),
                            known.aggregate);
      bench::emit_aggregate(config,
                            "e4_regular_doubling_n" + std::to_string(n),
                            doubling.aggregate);
      table.add_row(
          RowBuilder()
              .add("near-regular")
              .add(std::uint64_t{n})
              .add(std::uint64_t{g.min_degree()})
              .add(known.rounds.median, 0)
              .add(doubling.rounds.median, 0)
              .add(known.rounds.median > 0
                       ? doubling.rounds.median / known.rounds.median
                       : 0.0,
                   2)
              .add(doubling.restarts_med, 1)
              .add(known.failures + doubling.failures)
              .build());
    }
    // Hub start: the estimate begins at ~n/2 and must walk down to delta.
    {
      Rng rng(n, 7);
      const auto g = graph::make_hub_augmented(n, 32, 2, rng);
      const sim::Placement placement{
          static_cast<graph::VertexIndex>(n - 2),
          static_cast<graph::VertexIndex>(n - 1)};
      const auto known = run_cell(runner, g, placement,
                                  core::Strategy::Whiteboard, 900 + n,
                                  config.reps);
      const auto doubling = run_cell(runner, g, placement,
                                     core::Strategy::WhiteboardDoubling,
                                     900 + n, config.reps);
      bench::emit_aggregate(config, "e4_hub_known_n" + std::to_string(n),
                            known.aggregate);
      bench::emit_aggregate(config, "e4_hub_doubling_n" + std::to_string(n),
                            doubling.aggregate);
      table.add_row(
          RowBuilder()
              .add("hub-start")
              .add(std::uint64_t{n})
              .add(std::uint64_t{g.min_degree()})
              .add(known.rounds.median, 0)
              .add(doubling.rounds.median, 0)
              .add(known.rounds.median > 0
                       ? doubling.rounds.median / known.rounds.median
                       : 0.0,
                   2)
              .add(doubling.restarts_med, 1)
              .add(known.failures + doubling.failures)
              .build());
    }
  }
  table.print(std::cout);
  return 0;
}
