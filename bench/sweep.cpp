// Sweep-campaign driver: expands a declarative multi-axis spec into a
// deterministic cell grid and runs it — sharded, checkpointed, resumable.
// A thin client of the campaign core (src/campaign/campaign.hpp — see it
// for the determinism contract; docs/PERFORMANCE.md has the spec format):
// the same Campaign object the fnrd daemon serves, driven batch-style.
//
// SIGINT/SIGTERM cancel the campaign at the next cell boundary: the
// in-flight cell finishes, its checkpoint line is flushed, and the process
// exits with 128+signal after printing the resume command — nothing is
// ever torn mid-write by an interactive ^C.
//
// Flags:
//   --spec=NAME|PATH   predefined spec name (see --list) or spec-file path
//   --list             list predefined specs and exit
//   --list-programs    list the program registry (label, capabilities,
//                      description) and exit
//   --list-scenarios   list the scenario registry and exit
//   --cells            print the expanded cell grid (keys) and exit
//   --shard=I/OF       run cells with index % OF == I (default 0/1)
//   --checkpoint=PATH  append-only JSONL checkpoint; "auto" (default) picks
//                      sweep_<spec>[_shardI-OF].jsonl; empty disables
//   --resume           skip cells already in the checkpoint (fresh runs
//                      truncate an existing checkpoint instead)
//   --max-cells=N      stop after N newly-executed cells (CI interrupt)
//   --merge=P1,P2,...  merge shard checkpoints into the final report and
//                      exit (requires --spec for the grid; all cells must
//                      be covered)
//   --out=PATH         merged JSON report; "auto" (default) picks
//                      sweep_<spec>[_shardI-OF].json; empty skips; only
//                      written when the (shard's) campaign is complete
//   --trials=N         override the spec's per-cell trial count
//   --jobs=N           concurrent cells (executor worker pool; default 1,
//                      0 = hardware threads). Checkpoints, callbacks, and
//                      merged JSON are byte-identical for every value —
//                      results flush in canonical grid order regardless
//                      of completion order
//   --threads=N        trial-runner pool size *within* one cell
//                      (0 = hardware threads at --jobs=1, 1 at --jobs>1;
//                      see docs/PERFORMANCE.md before setting both)
//   --batch=N          lock-step SoA batch size (0/1 = scalar path); the
//                      kernel is bit-exact, so merged JSON is byte-identical
//                      either way (faulty cells always run scalar)
//   --csv / --json     also print the report to stdout
//   --quiet            suppress per-cell progress lines
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_support.hpp"
#include "campaign/campaign.hpp"
#include "sweep/engine.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

// Signal handling: the handler only forwards to Campaign::cancel (one
// relaxed atomic store — async-signal-safe) and records which signal
// fired; all reporting happens on the main thread after run() returns.
std::atomic<fnr::campaign::Campaign*> g_active{nullptr};
volatile std::sig_atomic_t g_signal = 0;

extern "C" void handle_cancel_signal(int sig) {
  g_signal = sig;
  if (auto* campaign = g_active.load(std::memory_order_relaxed))
    campaign->cancel();
}

/// Parses --shard=I/OF.
void parse_shard(const std::string& text, fnr::sweep::SweepOptions* options) {
  const auto slash = text.find('/');
  FNR_CHECK_MSG(slash != std::string::npos && slash > 0 &&
                    slash + 1 < text.size(),
                "--shard expects I/OF (e.g. 0/4), got '" << text << "'");
  char* end = nullptr;
  const unsigned long index = std::strtoul(text.c_str(), &end, 10);
  FNR_CHECK_MSG(end == text.c_str() + slash,
                "--shard index is not an integer in '" << text << "'");
  const unsigned long count = std::strtoul(text.c_str() + slash + 1, &end, 10);
  FNR_CHECK_MSG(*end == '\0' && count >= 1 && index < count &&
                    count <= 1u << 20,
                "--shard expects I in [0, OF), got '" << text << "'");
  options->shard_index = static_cast<std::uint32_t>(index);
  options->shard_count = static_cast<std::uint32_t>(count);
}

std::string shard_suffix(const fnr::sweep::SweepOptions& options) {
  if (options.shard_count == 1) return "";
  return "_shard" + std::to_string(options.shard_index) + "-" +
         std::to_string(options.shard_count);
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  FNR_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << content << "\n";
  out.flush();
  FNR_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fnr;
  try {
    if (bench::handle_registry_listings(argc, argv)) return 0;
    Cli cli(argc, argv);
    const std::string spec_arg = cli.get_string("spec", "");
    const bool list = cli.get_flag("list");
    const bool cells_only = cli.get_flag("cells");
    const std::string shard_arg = cli.get_string("shard", "0/1");
    std::string checkpoint = cli.get_string("checkpoint", "auto");
    const bool resume = cli.get_flag("resume");
    const auto max_cells = cli.get_int("max-cells", 0);
    FNR_CHECK_MSG(max_cells >= 0, "--max-cells must be >= 0");
    const std::string merge = cli.get_string("merge", "");
    std::string out = cli.get_string("out", "auto");
    const auto trials = cli.get_int("trials", 0);
    FNR_CHECK_MSG(trials >= 0 && trials <= 100'000'000,
                  "--trials must be in [0, 1e8], got " << trials);
    const auto threads = cli.get_int("threads", 0);
    FNR_CHECK_MSG(threads >= 0 && threads <= 4096,
                  "--threads must be in [0, 4096], got " << threads);
    const auto jobs = cli.get_int("jobs", 1);
    FNR_CHECK_MSG(jobs >= 0 && jobs <= 4096,
                  "--jobs must be in [0, 4096], got " << jobs);
    const auto batch = cli.get_int("batch", 0);
    FNR_CHECK_MSG(batch >= 0 && batch <= 1'000'000,
                  "--batch must be in [0, 1e6], got " << batch);
    const bool csv = cli.get_flag("csv");
    const bool json = cli.get_flag("json");
    const bool quiet = cli.get_flag("quiet");
    cli.reject_unknown();

    if (list) {
      std::cout << "predefined sweep specs:\n";
      for (const auto& [name, text] : sweep::predefined_specs()) {
        const auto spec = sweep::parse_spec(text);
        std::cout << "  " << name << " — " << sweep::expand(spec).size()
                  << " cells, " << spec.trials << " trials each\n";
      }
      return 0;
    }

    FNR_CHECK_MSG(!spec_arg.empty(),
                  "--spec=NAME|PATH is required (see --list)");
    sweep::SweepSpec spec = sweep::find_spec(spec_arg);
    if (trials > 0) spec.trials = static_cast<std::uint64_t>(trials);

    if (cells_only) {
      for (const auto& cell : sweep::expand(spec))
        std::cout << cell.index << "\t" << cell.key() << "\n";
      return 0;
    }

    sweep::SweepOptions options;
    options.threads = static_cast<unsigned>(threads);
    options.jobs = static_cast<unsigned>(jobs);
    parse_shard(shard_arg, &options);
    options.resume = resume;
    options.max_cells = static_cast<std::uint64_t>(max_cells);
    options.batch = static_cast<std::uint64_t>(batch);
    if (!quiet) options.progress = &std::cout;
    if (checkpoint == "auto")
      checkpoint = "sweep_" + spec.name + shard_suffix(options) + ".jsonl";
    options.checkpoint_path = checkpoint;
    if (out == "auto")
      out = "sweep_" + spec.name + shard_suffix(options) + ".json";

    if (!merge.empty()) {
      // Merge mode: combine shard checkpoints into the full-campaign
      // report; no cells are executed.
      std::vector<std::map<std::string, sweep::CheckpointEntry>> checkpoints;
      std::string path;
      std::istringstream paths(merge);
      while (std::getline(paths, path, ','))
        if (!path.empty()) checkpoints.push_back(sweep::load_checkpoint(path));
      FNR_CHECK_MSG(!checkpoints.empty(), "--merge lists no checkpoints");
      const auto results = sweep::results_from_checkpoints(spec, checkpoints);
      const std::string report = sweep::to_json(spec, results);
      if (json) std::cout << report << "\n";
      if (csv) std::cout << sweep::to_csv(results);
      if (!out.empty()) {
        write_file(out, report);
        std::cout << "wrote " << out << " (" << results.size()
                  << " cells, merged from " << checkpoints.size()
                  << " checkpoints)\n";
      }
      return 0;
    }

    campaign::Campaign run(spec, options);
    g_active.store(&run, std::memory_order_relaxed);
    std::signal(SIGINT, handle_cancel_signal);
    std::signal(SIGTERM, handle_cancel_signal);
    const auto result = run.run();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_active.store(nullptr, std::memory_order_relaxed);
    std::cout << "sweep '" << spec.name << "' shard " << options.shard_index
              << "/" << options.shard_count << ": " << result.executed
              << " executed (" << options.jobs << " jobs, "
              << result.split_cells << " split, " << result.shards
              << " units), " << result.restored << " restored, "
              << result.discarded << " discarded, graph cache "
              << result.graph_cache_hits << " hits / "
              << result.graph_cache_misses << " misses / "
              << result.graph_cache_evictions << " evictions\n";

    if (result.cancelled && g_signal != 0) {
      std::cout << "interrupted by signal " << g_signal
                << "; checkpoint flushed through the last finished cell; "
                << "resume with --resume --checkpoint="
                << options.checkpoint_path << "\n";
      return 128 + static_cast<int>(g_signal);
    }
    if (!result.complete) {
      std::cout << "campaign incomplete (" << result.cells.size()
                << " cells finished); resume with --resume --checkpoint="
                << options.checkpoint_path << "\n";
      return 0;
    }
    const std::string report = sweep::to_json(spec, result.cells);
    if (json) std::cout << report << "\n";
    if (csv) std::cout << sweep::to_csv(result.cells);
    if (!out.empty()) {
      write_file(out, report);
      std::cout << "wrote " << out << " (" << result.cells.size()
                << " cells)\n";
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "sweep: " << error.what() << "\n";
    return 1;
  }
}
