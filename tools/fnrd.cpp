// fnrd — the campaign service daemon (src/service/daemon.hpp).
//
// Serves sweep campaigns over a Unix-domain socket until SIGTERM/SIGINT,
// which trigger the graceful drain: running campaigns stop at their next
// cell boundary with checkpoints flushed, so a later `fnrc --verb=resume`
// continues exactly where the drain stopped.
//
// Flags:
//   --socket=PATH     Unix-domain socket to listen on (required)
//   --workdir=DIR     per-campaign files (submit frame, checkpoint, report);
//                     must exist (default ".")
//   --workers=N       concurrent campaign workers (default 2)
//   --queue=N         bounded work-queue capacity (default 8)
//   --threads=N       per-campaign trial-runner pool (0 = hardware threads)
//   --jobs=N          concurrent cells within one campaign (executor pool;
//                     default 1, 0 = hardware threads) — replay logs and
//                     reports are byte-identical for every value
//   --client-buffer=N per-client pending-output cap in bytes before the
//                     slow client is disconnected (default 4 MiB)
//   --quiet           suppress log lines
#include <atomic>
#include <csignal>
#include <iostream>

#include "service/daemon.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"

namespace {

std::atomic<fnr::service::Daemon*> g_daemon{nullptr};

extern "C" void handle_stop_signal(int) {
  if (auto* daemon = g_daemon.load(std::memory_order_relaxed))
    daemon->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fnr;
  try {
    Cli cli(argc, argv);
    service::DaemonOptions options;
    options.socket_path = cli.get_string("socket", "");
    options.workdir = cli.get_string("workdir", ".");
    const auto workers = cli.get_int("workers", 2);
    FNR_CHECK_MSG(workers >= 1 && workers <= 256,
                  "--workers must be in [1, 256], got " << workers);
    options.workers = static_cast<unsigned>(workers);
    const auto queue = cli.get_int("queue", 8);
    FNR_CHECK_MSG(queue >= 1 && queue <= 4096,
                  "--queue must be in [1, 4096], got " << queue);
    options.queue_capacity = static_cast<std::size_t>(queue);
    const auto threads = cli.get_int("threads", 0);
    FNR_CHECK_MSG(threads >= 0 && threads <= 4096,
                  "--threads must be in [0, 4096], got " << threads);
    options.threads = static_cast<unsigned>(threads);
    const auto jobs = cli.get_int("jobs", 1);
    FNR_CHECK_MSG(jobs >= 0 && jobs <= 4096,
                  "--jobs must be in [0, 4096], got " << jobs);
    options.jobs = static_cast<unsigned>(jobs);
    const auto client_buffer = cli.get_int("client-buffer", 4 << 20);
    FNR_CHECK_MSG(client_buffer >= 4096,
                  "--client-buffer must be >= 4096, got " << client_buffer);
    options.max_client_buffer = static_cast<std::size_t>(client_buffer);
    const bool quiet = cli.get_flag("quiet");
    if (!quiet) options.log = &std::cerr;
    cli.reject_unknown();
    FNR_CHECK_MSG(!options.socket_path.empty(), "--socket=PATH is required");

    service::Daemon daemon(options);
    g_daemon.store(&daemon, std::memory_order_relaxed);
    std::signal(SIGINT, handle_stop_signal);
    std::signal(SIGTERM, handle_stop_signal);
    std::signal(SIGPIPE, SIG_IGN);  // client disconnects are routine
    daemon.run();
    g_daemon.store(nullptr, std::memory_order_relaxed);
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fnrd: " << error.what() << "\n";
    return 1;
  }
}
