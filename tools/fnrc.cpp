// fnrc — command-line client for the fnrd campaign daemon.
//
// One invocation, one verb. Responses print to stdout as JSONL (one frame
// per line); an error frame prints to stderr and exits 1.
//
// Flags:
//   --socket=PATH     daemon socket (required)
//   --verb=VERB       submit | status | stream | cancel | resume | report |
//                     wait (client-side: poll status until settled)
//   --campaign=NAME   campaign id ([A-Za-z0-9._-]+); required except for a
//                     daemon-wide status
//   --spec=NAME|PATH  submit only: predefined spec name or spec-file path
//   --trials=N        submit only: per-cell trial override
//   --batch=N         submit only: SoA batch size
//   --max-cells=N     submit only: pause after N cells (the CI uses this as
//                     a deterministic interrupt; resume clears it)
//   --max-frames=N    stream only: disconnect after N frames (0 = stream to
//                     the end frame) — a deliberate mid-stream disconnect
//   --timeout-ms=N    per-frame receive timeout (default 120000)
//   --raw             report only: print the merged report JSON verbatim
//                     (byte-identical to bench/sweep --out) instead of the
//                     wrapping frame
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "service/client.hpp"
#include "service/protocol.hpp"
#include "sweep/spec.hpp"
#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

namespace {

using namespace fnr;

/// Frame payloads all lead with "type" (protocol.cpp emits it first).
std::string frame_type(const std::string& payload) {
  JsonCursor cursor(payload, "fnrd response");
  cursor.expect('{');
  const std::string field = cursor.parse_string();
  FNR_CHECK_MSG(field == "type", "fnrd response: expected leading 'type'");
  cursor.expect(':');
  return cursor.parse_string();
}

/// Extracts a field's verbatim value bytes from a response payload.
std::string frame_field(const std::string& payload, const std::string& name) {
  JsonCursor cursor(payload, "fnrd response");
  cursor.expect('{');
  bool first = true;
  while (!cursor.peek_is('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string field = cursor.parse_string();
    cursor.expect(':');
    if (field == name) return cursor.capture_value();
    cursor.skip_value();
  }
  FNR_CHECK_MSG(false, "fnrd response has no '" << name << "' field");
  throw std::logic_error("unreachable");
}

/// Resolves --spec for submit: predefined name first, then file contents.
std::string resolve_spec_text(const std::string& name_or_path) {
  for (const auto& [name, text] : sweep::predefined_specs())
    if (name == name_or_path) return text;
  std::ifstream in(name_or_path);
  FNR_CHECK_MSG(in.good(), "--spec '" << name_or_path
                                      << "' is neither a predefined spec "
                                         "nor a readable file");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Prints one response; error frames go to stderr and flip the exit code.
bool print_frame(const std::string& payload) {
  if (frame_type(payload) == "error") {
    std::cerr << "fnrc: " << payload << "\n";
    return false;
  }
  std::cout << payload << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    Cli cli(argc, argv);
    const std::string socket_path = cli.get_string("socket", "");
    const std::string verb_arg = cli.get_string("verb", "");
    const std::string campaign = cli.get_string("campaign", "");
    const std::string spec_arg = cli.get_string("spec", "");
    const auto trials = cli.get_int("trials", 0);
    const auto batch = cli.get_int("batch", 0);
    const auto max_cells = cli.get_int("max-cells", 0);
    const auto max_frames = cli.get_int("max-frames", 0);
    const auto timeout_ms = cli.get_int("timeout-ms", 120'000);
    const bool raw = cli.get_flag("raw");
    cli.reject_unknown();
    FNR_CHECK_MSG(!socket_path.empty(), "--socket=PATH is required");
    FNR_CHECK_MSG(!verb_arg.empty(), "--verb=VERB is required");
    FNR_CHECK_MSG(trials >= 0 && batch >= 0 && max_cells >= 0 &&
                      max_frames >= 0 && timeout_ms > 0,
                  "numeric flags must be non-negative (timeout positive)");

    const int timeout = static_cast<int>(timeout_ms);
    service::Connection connection(socket_path);

    if (verb_arg == "wait") {
      // Client-side convenience: poll STATUS until the campaign settles.
      FNR_CHECK_MSG(!campaign.empty(), "wait needs --campaign");
      service::Request status;
      status.verb = service::Verb::Status;
      status.campaign = campaign;
      for (;;) {
        connection.send(service::serialize_request(status));
        const std::string payload = connection.recv(timeout);
        if (frame_type(payload) == "error") {
          std::cerr << "fnrc: " << payload << "\n";
          return 1;
        }
        std::string state = frame_field(payload, "state");
        if (state == "\"done\"" || state == "\"failed\"" ||
            state == "\"cancelled\"" || state == "\"paused\"") {
          std::cout << payload << "\n";
          return state == "\"done\"" || state == "\"paused\"" ? 0 : 1;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }

    service::Request request;
    request.verb = service::parse_verb(verb_arg);
    request.campaign = campaign;
    if (request.verb == service::Verb::Submit) {
      FNR_CHECK_MSG(!spec_arg.empty(), "submit needs --spec=NAME|PATH");
      request.spec_text = resolve_spec_text(spec_arg);
      request.trials = static_cast<std::uint64_t>(trials);
      request.batch = static_cast<std::uint64_t>(batch);
      request.max_cells = static_cast<std::uint64_t>(max_cells);
    }
    connection.send(service::serialize_request(request));

    if (request.verb == service::Verb::Stream) {
      std::int64_t received = 0;
      for (;;) {
        const std::string payload = connection.recv(timeout);
        if (!print_frame(payload)) return 1;
        if (frame_type(payload) == "end") return 0;
        ++received;
        if (max_frames > 0 && received >= max_frames) {
          // Deliberate mid-stream disconnect (CI exercises that a dropped
          // client costs the daemon and the result set nothing).
          connection.close();
          return 0;
        }
      }
    }

    const std::string payload = connection.recv(timeout);
    if (frame_type(payload) == "error") {
      std::cerr << "fnrc: " << payload << "\n";
      return 1;
    }
    if (request.verb == service::Verb::Report && raw) {
      // The merged report exactly as bench/sweep --out writes it.
      std::cout << frame_field(payload, "report") << "\n";
      return 0;
    }
    std::cout << payload << "\n";
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "fnrc: " << error.what() << "\n";
    return 1;
  }
}
