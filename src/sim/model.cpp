#include "sim/model.hpp"

#include "util/table.hpp"

namespace fnr::sim {

std::string to_string(const Gathering& gathering) {
  switch (gathering.kind) {
    case Gathering::AnyPair:
    case Gathering::All:
      return to_string(gathering.kind);
    case Gathering::Quorum:
      return std::string("quorum?q=") + std::to_string(gathering.quorum);
    case Gathering::Fraction:
      // format_double(., 6) matches the topology-parameter canonicalization
      // in sweep cell keys, so "fraction?f=0.5" round-trips byte-stably.
      return std::string("fraction?f=") + format_double(gathering.fraction, 6);
  }
  return "?";
}

}  // namespace fnr::sim
