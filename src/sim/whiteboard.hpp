// Per-vertex whiteboard storage (paper §2.1).
//
// Our algorithms only ever store one O(log n)-bit word (the ID of b's start
// vertex), matching the paper's remark that O(log n) bits per whiteboard
// suffice. The store counts accesses for the resource experiments.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace fnr::sim {

class Whiteboards {
 public:
  /// All boards start empty (⊥ in the pseudocode).
  explicit Whiteboards(std::size_t num_vertices);

  [[nodiscard]] std::optional<std::uint64_t> read(graph::VertexIndex v);
  void write(graph::VertexIndex v, std::uint64_t value);
  void clear_all();

  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  /// Number of boards currently holding a value.
  [[nodiscard]] std::size_t used_boards() const noexcept { return used_; }

 private:
  std::vector<std::optional<std::uint64_t>> cells_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::size_t used_ = 0;
};

}  // namespace fnr::sim
