// Per-vertex whiteboard storage (paper §2.1).
//
// Our algorithms only ever store one O(log n)-bit word (the ID of b's start
// vertex), matching the paper's remark that O(log n) bits per whiteboard
// suffice. The store counts accesses for the resource experiments.
//
// Layout: a flat value array plus a presence bitmask (one bit per vertex)
// instead of vector<optional<...>> — half the bytes per cell and no
// per-cell flag padding on the hot read path. A dirty list of written
// vertices makes clear_all() O(#writes) instead of O(n), so a reused
// Scheduler pays per-trial reset costs proportional to the previous trial's
// activity, not to the graph size.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace fnr::sim {

class Whiteboards {
 public:
  /// All boards start empty (⊥ in the pseudocode).
  explicit Whiteboards(std::size_t num_vertices);

  /// Content of v's board (nullopt = ⊥); counted as one read access.
  [[nodiscard]] std::optional<std::uint64_t> read(graph::VertexIndex v);
  /// Overwrites v's board; counted as one write access.
  void write(graph::VertexIndex v, std::uint64_t value);
  /// Erases every board (O(#boards written since the last clear)).
  void clear_all();

  /// Read accesses since construction (never reset; callers take deltas).
  [[nodiscard]] std::uint64_t reads() const noexcept { return reads_; }
  /// Write accesses since construction (never reset; callers take deltas).
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }
  /// Number of boards currently holding a value (= the dirty list, whose
  /// entries are exactly the boards with a presence bit set).
  [[nodiscard]] std::size_t used_boards() const noexcept {
    return dirty_.size();
  }

 private:
  [[nodiscard]] bool present(graph::VertexIndex v) const noexcept {
    return (present_[v >> 6] >> (v & 63)) & 1u;
  }

  std::vector<std::uint64_t> values_;   // one word per vertex
  std::vector<std::uint64_t> present_;  // presence bitmask, 64 boards/word
  // Vertices whose presence bit is set, in first-write order; capacity is
  // reserved up front so post-warm-up writes never allocate.
  std::vector<graph::VertexIndex> dirty_;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace fnr::sim
