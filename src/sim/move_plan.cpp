// MovePlan is header-only; this translation unit exists so the target has a
// stable archive member for the module (and a place for future growth).
#include "sim/move_plan.hpp"
