// Synchronous execution of k >= 2 agents on a graph (paper §2.1-2.2,
// generalized into a scenario engine).
//
// Round structure: at the beginning of each round the gathering predicate is
// evaluated over agent positions (any-pair co-location for the paper's
// two-agent rendezvous, all-meet for multi-agent gathering); if it holds the
// run is complete. Otherwise each awake agent observes its View, returns an
// Action (optional whiteboard write at its current vertex, then stay/move),
// and all actions are applied simultaneously. Note the paper's convention
// means agents that *cross* on an edge do not meet — only co-location at a
// round boundary counts.
//
// Delayed start: each agent may carry a wake delay (rounds it sleeps at its
// start vertex before its program runs). A sleeping agent is physically
// present — co-location with it counts toward the gathering predicate — but
// it neither observes nor acts, and its View's round counter is local (it
// reads 0 on the agent's first awake round), so programs that schedule
// against view.round() run unmodified on their own clock. A k=2, zero-delay
// scenario is exactly the paper's synchronous two-agent model, and
// Scheduler::run is that projection.
//
// Determinism and tie-breaking: within one round every per-agent stage —
// observation/step, whiteboard writes, movement — walks agents in index
// order, so simultaneous actions resolve deterministically (e.g. two
// co-located writers: the highest-indexed write wins). Wake delays shift
// when an agent's program starts but not this order; in particular, k
// agents sharing one identical wake delay d behave exactly like the
// zero-delay run prefixed by d inert rounds (tests pin this).
//
// Performance: a Scheduler is a reusable arena. All per-run scratch —
// positions, arrival ports (a flat uint32 array with a no-port sentinel,
// the batch kernel's SoA layout), staged actions, per-agent Views, the
// per-vertex occupancy counts, the whiteboard store — lives in the
// Scheduler and is reset (not reallocated) at the start of each run, so
// repeated trials on one Scheduler perform zero heap allocation after the
// first (warm-up) run. Views observe through one shared NeighborTable per
// arena (same values and order as the per-View lazy cache it replaces) and
// moves resolve arrival ports from the table's precomputed rev array.
// Scheduler::run additionally takes a branch-light two-agent fast path with
// no per-run vectors at all. tests/test_alloc_guard.cpp enforces these
// invariants; docs/PERFORMANCE.md and docs/ARCHITECTURE.md document them.
//
// Meeting detection: every gathering predicate is a per-vertex co-location
// threshold (Gathering::threshold), and run_scenario can evaluate it two
// ways. The pairwise oracle scans positions in O(k^2) per round; the
// occupancy path maintains per-vertex agent counts plus a count of vertices
// at/above the threshold incrementally, so a round boundary costs O(1) and
// each move O(1) — the massive-k path. Both report byte-identical results
// (meeting round/vertex/pair and all metrics); tests/test_swarm_differential
// enforces that, mirroring the batch kernel's scalar-oracle contract.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/model.hpp"
#include "sim/neighbor_table.hpp"
#include "sim/view.hpp"
#include "sim/whiteboard.hpp"
#include "util/rng.hpp"

namespace fnr::sim {

/// How Scheduler::run_scenario evaluates the gathering predicate. The two
/// concrete modes are byte-identical in every observable; Auto picks
/// occupancy above a small-k cutover where the O(k^2) scan starts to lose.
enum class MeetingDetection {
  Auto,       ///< pairwise at small k, occupancy above the cutover
  Pairwise,   ///< O(k^2)-per-round position scan (the oracle)
  Occupancy,  ///< incremental per-vertex counts, O(moves) per round
};

/// The agent count above which Auto switches to occupancy counting.
inline constexpr std::size_t kOccupancyAutoCutover = 8;

/// Initial placement of the two agents.
struct Placement {
  graph::VertexIndex a_start = graph::kNoVertex;
  graph::VertexIndex b_start = graph::kNoVertex;
};

/// Uniformly random adjacent pair (the neighborhood-rendezvous instance
/// class I_1): picks a uniform edge, then orients it uniformly.
[[nodiscard]] Placement random_adjacent_placement(const graph::Graph& g,
                                                  Rng& rng);

/// Initial placement of a k-agent scenario: k pairwise-distinct start
/// vertices plus per-agent wake delays (empty = everyone wakes at round 0).
/// Delays are normalized by convention: time starts when the first agent
/// wakes, so at least one delay should be 0 (not enforced — an all-delayed
/// placement just prepends dead rounds).
struct ScenarioPlacement {
  std::vector<graph::VertexIndex> starts;
  std::vector<std::uint64_t> wake_delays;  ///< size starts.size() or empty

  /// Number of agents this placement positions.
  [[nodiscard]] std::size_t num_agents() const noexcept {
    return starts.size();
  }
  /// Wake delay of `agent` (0 when wake_delays is empty).
  [[nodiscard]] std::uint64_t delay_of(std::size_t agent) const noexcept {
    return agent < wake_delays.size() ? wake_delays[agent] : 0;
  }
};

class Scheduler {
 public:
  /// Binds the arena to `g` (must outlive the Scheduler) and `model`.
  Scheduler(const graph::Graph& g, Model model);

  /// Runs agents from `placement` for at most `max_rounds` rounds.
  /// Agents must be freshly constructed (they carry run state).
  /// Exactly the k=2, zero-delay, any-pair projection of run_scenario,
  /// implemented as a branch-light fast path that allocates nothing.
  [[nodiscard]] RunResult run(Agent& agent_a, Agent& agent_b,
                              Placement placement, std::uint64_t max_rounds);

  /// Runs a k-agent scenario: agents[i] starts (asleep for
  /// placement.delay_of(i) rounds) on placement.starts[i]; the run ends when
  /// `gathering` holds at a round boundary or after `max_rounds` rounds.
  /// Agent 0 is named a, agents 1..k-1 are named b (the paper's asymmetric
  /// role split). Agents must be freshly constructed.
  [[nodiscard]] ScenarioRunResult run_scenario(
      const std::vector<Agent*>& agents, const ScenarioPlacement& placement,
      Gathering gathering, std::uint64_t max_rounds);

  /// Runs a single agent (as agent a) until it reports halted() or the cap.
  /// Used for exploration measurements and for exercising sub-protocols
  /// (e.g. Construct) without a partner ending the run early.
  [[nodiscard]] RunResult run_single(Agent& agent, graph::VertexIndex start,
                                     std::uint64_t max_rounds);

  /// The graph this arena is bound to.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  /// The computational model runs execute under.
  [[nodiscard]] const Model& model() const noexcept { return model_; }

  /// Arms subsequent run_scenario calls with a fault session (null
  /// disarms; the session must outlive those runs). With no session the
  /// round loop is bit-identical to a build without the fault layer — the
  /// only residue is one pointer null-check per agent-round — and the
  /// golden / allocation-guard contracts are measured in that state.
  /// Scheduler::run and run_single (the paper's reliable two-agent model)
  /// never inject regardless of the session.
  void set_fault_session(fault::FaultSession* session) noexcept {
    faults_ = session;
  }

  /// Selects the meeting-detection mode of subsequent run_scenario calls
  /// (default Auto). The modes are byte-identical in every observable —
  /// this is a throughput lever and a differential-test hook, never a
  /// semantic switch.
  void set_meeting_detection(MeetingDetection detection) noexcept {
    detection_ = detection;
  }

  /// Test hook: when enabled, occupancy-mode rounds re-derive the counts
  /// from scratch at every round boundary and CheckError on any divergence
  /// (counts summing to k, threshold counter consistent). O(n) per round —
  /// never enable outside tests.
  void set_occupancy_self_check(bool enabled) noexcept {
    self_check_ = enabled;
  }

 private:
  /// Sentinel in arrival_port_ / the fast-path arrays: no arrival port
  /// (start vertex, stay, or blocked move). Same encoding as the batch
  /// kernel's kNoPort.
  static constexpr std::uint32_t kNoArrival = 0xFFFFFFFFu;

  /// Grows the per-agent arena to `k` slots and resets the per-run state
  /// (positions untouched — callers seed them). Allocates only when `k`
  /// exceeds every previous run's agent count.
  void ensure_arena(std::size_t k);

  /// Points views_[agent] at (here, local_round, arrival) for this round.
  /// The view's graph/model bindings persist.
  void aim_view(std::size_t agent, AgentName name, std::uint64_t local_round,
                graph::VertexIndex here, std::uint32_t arrival);

  /// Whether run_scenario with `k` agents uses occupancy counting.
  [[nodiscard]] bool use_occupancy(std::size_t k) const noexcept {
    return detection_ == MeetingDetection::Occupancy ||
           (detection_ == MeetingDetection::Auto && k > kOccupancyAutoCutover);
  }

  /// O(n + k) recount of occ_ / at_threshold_ against pos_ (self-check).
  void verify_occupancy(std::size_t k, std::uint64_t threshold) const;

  const graph::Graph& graph_;
  Model model_;
  Whiteboards boards_;
  // Shared per-graph observation table (neighbor IDs, precomputed arrival
  // ports): every View answers from it, and moves look arrival ports up in
  // rev instead of a per-move binary search.
  NeighborTable table_;
  fault::FaultSession* faults_ = nullptr;  // non-owning; null = reliable
  MeetingDetection detection_ = MeetingDetection::Auto;
  bool self_check_ = false;

  // --- per-run arena (reused across runs; zero-allocation after warm-up) ---
  std::vector<graph::VertexIndex> pos_;
  std::vector<std::uint32_t> arrival_port_;  // kNoArrival = none
  std::vector<Action> actions_;
  std::vector<View> views_;  // one per agent slot
  // Fault bookkeeping, sized with the arena so faulty runs stay
  // allocation-free too: the live instance per slot (crash revival swaps
  // pointers), the round each slot acts again (wake delay, then crash
  // downtime), the local-clock base, and the pending-revival flags.
  std::vector<Agent*> run_agents_;
  std::vector<std::uint64_t> wake_at_;
  std::vector<std::uint64_t> local_base_;
  std::vector<char> needs_revive_;
  // Occupancy-detection state: occ_[v] = agents standing on v (zero
  // between runs — a clean exit unseeds its k increments, so the array
  // never needs an O(n) clear on the hot path; occ_dirty_ flags a run that
  // threw mid-flight and forces the fill on the next occupancy run), and
  // at_threshold_ = vertices currently holding >= threshold agents
  // (gathered <=> at_threshold_ > 0).
  std::vector<std::uint32_t> occ_;
  std::uint64_t at_threshold_ = 0;
  bool occ_dirty_ = false;
};

/// Per-worker scheduler cache: hands out a Scheduler arena for a
/// (graph, model) pair, reconstructing only when either changes. Batch
/// loops (core::run_trials, scenario::run_scenario_trials) keep one
/// SchedulerScratch per worker thread, so after the first trial every
/// subsequent trial on that worker reuses a warm arena and the trial loop
/// stays allocation-free.
class SchedulerScratch {
 public:
  /// The cached Scheduler for (g, model); rebuilt if the cache currently
  /// holds a different graph or model. Graphs are identified by address
  /// (plus size sanity checks), so a graph handed to a scratch must stay
  /// the same live object across calls — scope a scratch within one
  /// graph's lifetime, as the batch runners do.
  [[nodiscard]] Scheduler& scheduler_for(const graph::Graph& g, Model model);

 private:
  std::optional<Scheduler> scheduler_;
  // Size snapshot taken when the cached Scheduler was built: catches a
  // *different* graph object reusing the cached graph's address (the
  // address alone cannot distinguish that case).
  std::size_t cached_vertices_ = 0;
  std::size_t cached_edges_ = 0;
};

}  // namespace fnr::sim
