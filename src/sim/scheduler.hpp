// Synchronous execution of two agents on a graph (paper §2.1-2.2).
//
// Round structure: at the beginning of each round, if both agents occupy the
// same vertex, rendezvous is complete (they detect each other and halt).
// Otherwise each agent observes its View, returns an Action (optional
// whiteboard write at its current vertex, then stay/move), and both actions
// are applied simultaneously. Note the paper's convention means agents that
// *cross* on an edge do not meet — only co-location at a round boundary
// counts.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/model.hpp"
#include "sim/view.hpp"
#include "sim/whiteboard.hpp"
#include "util/rng.hpp"

namespace fnr::sim {

/// Initial placement of the two agents.
struct Placement {
  graph::VertexIndex a_start = graph::kNoVertex;
  graph::VertexIndex b_start = graph::kNoVertex;
};

/// Uniformly random adjacent pair (the neighborhood-rendezvous instance
/// class I_1): picks a uniform edge, then orients it uniformly.
[[nodiscard]] Placement random_adjacent_placement(const graph::Graph& g,
                                                  Rng& rng);

class Scheduler {
 public:
  Scheduler(const graph::Graph& g, Model model);

  /// Runs agents from `placement` for at most `max_rounds` rounds.
  /// Agents must be freshly constructed (they carry run state).
  [[nodiscard]] RunResult run(Agent& agent_a, Agent& agent_b,
                              Placement placement, std::uint64_t max_rounds);

  /// Runs a single agent (as agent a) until it reports halted() or the cap.
  /// Used for exploration measurements and for exercising sub-protocols
  /// (e.g. Construct) without a partner ending the run early.
  [[nodiscard]] RunResult run_single(Agent& agent, graph::VertexIndex start,
                                     std::uint64_t max_rounds);

  [[nodiscard]] const Model& model() const noexcept { return model_; }

 private:
  const graph::Graph& graph_;
  Model model_;
  Whiteboards boards_;
};

}  // namespace fnr::sim
