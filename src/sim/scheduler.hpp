// Synchronous execution of k >= 2 agents on a graph (paper §2.1-2.2,
// generalized into a scenario engine).
//
// Round structure: at the beginning of each round the gathering predicate is
// evaluated over agent positions (any-pair co-location for the paper's
// two-agent rendezvous, all-meet for multi-agent gathering); if it holds the
// run is complete. Otherwise each awake agent observes its View, returns an
// Action (optional whiteboard write at its current vertex, then stay/move),
// and all actions are applied simultaneously. Note the paper's convention
// means agents that *cross* on an edge do not meet — only co-location at a
// round boundary counts.
//
// Delayed start: each agent may carry a wake delay (rounds it sleeps at its
// start vertex before its program runs). A sleeping agent is physically
// present — co-location with it counts toward the gathering predicate — but
// it neither observes nor acts, and its View's round counter is local (it
// reads 0 on the agent's first awake round), so programs that schedule
// against view.round() run unmodified on their own clock. A k=2, zero-delay
// scenario is exactly the paper's synchronous two-agent model, and
// Scheduler::run is that projection.
//
// Performance: a Scheduler is a reusable arena. All per-run scratch —
// positions, arrival ports, staged actions, per-agent Views with their
// neighbor-ID caches, the whiteboard store — lives in the Scheduler and is
// reset (not reallocated) at the start of each run, so repeated trials on
// one Scheduler perform zero heap allocation after the first (warm-up) run.
// Scheduler::run additionally takes a branch-light two-agent fast path with
// no per-run vectors at all. tests/test_alloc_guard.cpp enforces both
// invariants; docs/PERFORMANCE.md documents them.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/model.hpp"
#include "sim/view.hpp"
#include "sim/whiteboard.hpp"
#include "util/rng.hpp"

namespace fnr::sim {

/// Initial placement of the two agents.
struct Placement {
  graph::VertexIndex a_start = graph::kNoVertex;
  graph::VertexIndex b_start = graph::kNoVertex;
};

/// Uniformly random adjacent pair (the neighborhood-rendezvous instance
/// class I_1): picks a uniform edge, then orients it uniformly.
[[nodiscard]] Placement random_adjacent_placement(const graph::Graph& g,
                                                  Rng& rng);

/// Initial placement of a k-agent scenario: k pairwise-distinct start
/// vertices plus per-agent wake delays (empty = everyone wakes at round 0).
/// Delays are normalized by convention: time starts when the first agent
/// wakes, so at least one delay should be 0 (not enforced — an all-delayed
/// placement just prepends dead rounds).
struct ScenarioPlacement {
  std::vector<graph::VertexIndex> starts;
  std::vector<std::uint64_t> wake_delays;  ///< size starts.size() or empty

  /// Number of agents this placement positions.
  [[nodiscard]] std::size_t num_agents() const noexcept {
    return starts.size();
  }
  /// Wake delay of `agent` (0 when wake_delays is empty).
  [[nodiscard]] std::uint64_t delay_of(std::size_t agent) const noexcept {
    return agent < wake_delays.size() ? wake_delays[agent] : 0;
  }
};

class Scheduler {
 public:
  /// Binds the arena to `g` (must outlive the Scheduler) and `model`.
  Scheduler(const graph::Graph& g, Model model);

  /// Runs agents from `placement` for at most `max_rounds` rounds.
  /// Agents must be freshly constructed (they carry run state).
  /// Exactly the k=2, zero-delay, any-pair projection of run_scenario,
  /// implemented as a branch-light fast path that allocates nothing.
  [[nodiscard]] RunResult run(Agent& agent_a, Agent& agent_b,
                              Placement placement, std::uint64_t max_rounds);

  /// Runs a k-agent scenario: agents[i] starts (asleep for
  /// placement.delay_of(i) rounds) on placement.starts[i]; the run ends when
  /// `gathering` holds at a round boundary or after `max_rounds` rounds.
  /// Agent 0 is named a, agents 1..k-1 are named b (the paper's asymmetric
  /// role split). Agents must be freshly constructed.
  [[nodiscard]] ScenarioRunResult run_scenario(
      const std::vector<Agent*>& agents, const ScenarioPlacement& placement,
      Gathering gathering, std::uint64_t max_rounds);

  /// Runs a single agent (as agent a) until it reports halted() or the cap.
  /// Used for exploration measurements and for exercising sub-protocols
  /// (e.g. Construct) without a partner ending the run early.
  [[nodiscard]] RunResult run_single(Agent& agent, graph::VertexIndex start,
                                     std::uint64_t max_rounds);

  /// The graph this arena is bound to.
  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  /// The computational model runs execute under.
  [[nodiscard]] const Model& model() const noexcept { return model_; }

  /// Arms subsequent run_scenario calls with a fault session (null
  /// disarms; the session must outlive those runs). With no session the
  /// round loop is bit-identical to a build without the fault layer — the
  /// only residue is one pointer null-check per agent-round — and the
  /// golden / allocation-guard contracts are measured in that state.
  /// Scheduler::run and run_single (the paper's reliable two-agent model)
  /// never inject regardless of the session.
  void set_fault_session(fault::FaultSession* session) noexcept {
    faults_ = session;
  }

 private:
  /// Grows the per-agent arena to `k` slots and resets the per-run state
  /// (positions untouched — callers seed them). Allocates only when `k`
  /// exceeds every previous run's agent count.
  void ensure_arena(std::size_t k);

  /// Points views_[agent] at (here, local_round, arrival) for this round.
  /// The view's graph/model bindings and neighbor cache persist.
  void aim_view(std::size_t agent, AgentName name, std::uint64_t local_round,
                graph::VertexIndex here, std::optional<std::size_t> arrival);

  const graph::Graph& graph_;
  Model model_;
  Whiteboards boards_;
  fault::FaultSession* faults_ = nullptr;  // non-owning; null = reliable

  // --- per-run arena (reused across runs; zero-allocation after warm-up) ---
  std::vector<graph::VertexIndex> pos_;
  std::vector<std::optional<std::size_t>> arrival_port_;
  std::vector<Action> actions_;
  std::vector<View> views_;  // one per agent slot, caches persist
  // Fault bookkeeping, sized with the arena so faulty runs stay
  // allocation-free too: the live instance per slot (crash revival swaps
  // pointers), the round each slot acts again (wake delay, then crash
  // downtime), the local-clock base, and the pending-revival flags.
  std::vector<Agent*> run_agents_;
  std::vector<std::uint64_t> wake_at_;
  std::vector<std::uint64_t> local_base_;
  std::vector<char> needs_revive_;
};

/// Per-worker scheduler cache: hands out a Scheduler arena for a
/// (graph, model) pair, reconstructing only when either changes. Batch
/// loops (core::run_trials, scenario::run_scenario_trials) keep one
/// SchedulerScratch per worker thread, so after the first trial every
/// subsequent trial on that worker reuses a warm arena and the trial loop
/// stays allocation-free.
class SchedulerScratch {
 public:
  /// The cached Scheduler for (g, model); rebuilt if the cache currently
  /// holds a different graph or model. Graphs are identified by address
  /// (plus size sanity checks), so a graph handed to a scratch must stay
  /// the same live object across calls — scope a scratch within one
  /// graph's lifetime, as the batch runners do.
  [[nodiscard]] Scheduler& scheduler_for(const graph::Graph& g, Model model);

 private:
  std::optional<Scheduler> scheduler_;
  // Size snapshot taken when the cached Scheduler was built: catches a
  // *different* graph object reusing the cached graph's address (the
  // address alone cannot distinguish that case).
  std::size_t cached_vertices_ = 0;
  std::size_t cached_edges_ = 0;
};

}  // namespace fnr::sim
