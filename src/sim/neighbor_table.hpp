// Graph-wide observation tables shared by lock-stepped trials.
//
// Every trial of one sweep cell walks the same immutable graph, so the
// per-View lazy neighbor-ID cache (one vertex wide) re-derives the same
// ID lists over and over across trials. A NeighborTable materializes the
// whole answer space once per graph: neighbor IDs in port order for every
// vertex, plus the inverse ID→index map as a flat array. Views served from
// a shared table (see View::neighbor_ids / View::port_of) return exactly
// what the lazy cache would have returned — same values, same order — so
// swapping the table in is observationally invisible to agents.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace fnr::sim {

struct NeighborTable {
  explicit NeighborTable(const graph::Graph& g);

  /// ids[v][port] — ID of vertex v's neighbor through `port` (the exact
  /// sequence View's per-vertex cache would produce for v).
  std::vector<std::vector<graph::VertexId>> ids;
  /// rev[v][port] — the arrival port an agent observes after crossing
  /// `port` from v: with u = neighbors(v)[port], rev[v][port] is
  /// Graph::port_to(u, v). Precomputing it turns the kernel's per-move
  /// binary search into one array load.
  std::vector<std::vector<std::uint32_t>> rev;
  /// index_by_id[id] — vertex index for `id`, kNoVertex for unused IDs.
  /// Built only when the ID space is dense enough (id_bound = O(n)) for a
  /// flat array to be cheap; empty under sparse polynomial naming, where
  /// lookups fall back to the graph's hash index.
  std::vector<graph::VertexIndex> index_by_id;

  /// Sentinel in port_by_pair for vertex pairs that share no edge.
  static constexpr std::uint16_t kNoPort = 0xFFFF;
  /// port_by_pair[v * num_vertices + u] — the port leading from v to u
  /// (kNoPort when vu is not an edge). Turns the route-following
  /// View::port_of binary search into one array load. Quadratic in n, so
  /// it is only built for small graphs; empty otherwise, and lookups fall
  /// back to Graph::port_to.
  std::vector<std::uint16_t> port_by_pair;
  std::size_t num_vertices = 0;
};

}  // namespace fnr::sim
