// Multi-round movement plans.
//
// The paper charges "visit v and return" at its real round cost; agents
// therefore execute explicit hop sequences. A MovePlan is a FIFO of vertex
// IDs, each of which must be a neighbor of the agent's location when its
// turn comes (plans are built from known adjacency: shortest paths of
// length <= 2 inside N+(N+(v0))). Requires the KT1 model (moves are
// addressed by neighbor ID).
#pragma once

#include <deque>

#include "graph/graph.hpp"
#include "sim/view.hpp"

namespace fnr::sim {

class MovePlan {
 public:
  [[nodiscard]] bool empty() const noexcept { return hops_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return hops_.size(); }

  /// Appends one hop to a vertex that will be adjacent when reached.
  void push_hop(graph::VertexId next) { hops_.push_back(next); }

  /// Appends hops `via` then `target` when via != target, else just target.
  /// Encodes the length-<=2 paths used throughout Construct/Main-Rendezvous.
  void push_via(graph::VertexId via, graph::VertexId target) {
    if (via != target) hops_.push_back(via);
    hops_.push_back(target);
  }

  void clear() noexcept { hops_.clear(); }

  /// Emits the move action for the next hop; call only when !empty().
  [[nodiscard]] Action pop_move(const View& view) {
    FNR_CHECK_MSG(!hops_.empty(), "pop_move on an empty plan");
    const graph::VertexId next = hops_.front();
    hops_.pop_front();
    return Action::move(view.port_of(next));
  }

  [[nodiscard]] std::size_t memory_words() const noexcept {
    return hops_.size();
  }

 private:
  std::deque<graph::VertexId> hops_;
};

}  // namespace fnr::sim
