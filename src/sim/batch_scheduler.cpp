#include "sim/batch_scheduler.hpp"

#include <algorithm>

namespace fnr::sim {

namespace {

/// Gathering predicate over one trial's position slice — the batched twin
/// of the scalar scheduler's gathered_threshold() (same threshold semantics
/// and canonical-pair selection, so the scalar path stays a bit-exactness
/// oracle for the kernel across every predicate).
bool gathered_slice(const graph::VertexIndex* pos, std::size_t k,
                    std::uint64_t threshold, std::size_t& pair_a,
                    std::size_t& pair_b) {
  if (threshold > k) return false;  // an unreachable quorum never gathers
  for (std::size_t i = 0; i < k; ++i) {
    std::uint64_t count = 1;
    std::size_t second = i, last = i;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (pos[j] != pos[i]) continue;
      ++count;
      if (second == i) second = j;
      last = j;
    }
    if (count >= threshold) {
      pair_a = i;
      pair_b = threshold == k ? last : second;
      return true;
    }
  }
  return false;
}

/// Agents standing on `vertex` within one trial's slice (gathered_count).
std::uint64_t count_at_slice(const graph::VertexIndex* pos, std::size_t k,
                             graph::VertexIndex vertex) {
  std::uint64_t count = 0;
  for (std::size_t i = 0; i < k; ++i)
    if (pos[i] == vertex) ++count;
  return count;
}

}  // namespace

BatchScheduler::BatchScheduler(const graph::Graph& g, Model model)
    : graph_(g), model_(model), table_(g) {}

void BatchScheduler::begin_batch(Gathering gathering) {
  gathering_ = gathering;
  trials_ = 0;
  k_ = 0;
  // Buffers keep their capacity; staged contents are logically dropped.
  agents_.clear();
  pos_.clear();
  arrival_.clear();
  wake_at_.clear();
  caps_.clear();
}

void BatchScheduler::add_trial(const std::vector<Agent*>& agents,
                               const ScenarioPlacement& placement,
                               std::uint64_t max_rounds) {
  const std::size_t k = agents.size();
  FNR_CHECK_MSG(k >= 2, "a scenario needs at least two agents, got " << k);
  FNR_CHECK_MSG(placement.starts.size() == k,
                "placement has " << placement.starts.size() << " starts for "
                                 << k << " agents");
  FNR_CHECK_MSG(
      placement.wake_delays.empty() || placement.wake_delays.size() == k,
      "wake_delays must be empty or one per agent");
  if (trials_ == 0)
    k_ = k;
  else
    FNR_CHECK_MSG(k == k_, "batched trials must share one agent count (got "
                               << k << " after " << k_ << ")");
  for (std::size_t i = 0; i < k; ++i) {
    FNR_CHECK(agents[i] != nullptr);
    FNR_CHECK(placement.starts[i] < graph_.num_vertices());
    for (std::size_t j = i + 1; j < k; ++j)
      FNR_CHECK_MSG(placement.starts[i] != placement.starts[j],
                    "agents must start at distinct vertices");
  }

  const std::size_t t = trials_++;
  for (std::size_t i = 0; i < k; ++i) {
    agents_.push_back(agents[i]);
    pos_.push_back(placement.starts[i]);
    arrival_.push_back(kNoPort);
    wake_at_.push_back(placement.delay_of(i));
  }
  caps_.push_back(max_rounds);
  // A private whiteboard store per trial: lock-stepped trials must not be
  // able to observe each other. Stores are pooled across batches; counters
  // are monotonic (like the scalar arena), so metrics are deltas.
  if (boards_.size() <= t) boards_.emplace_back(graph_.num_vertices());
  boards_[t].clear_all();
}

std::vector<ScenarioRunResult> BatchScheduler::run() {
  // --- staging prologue: everything that allocates happens here ---
  std::vector<ScenarioRunResult> results(trials_);
  if (trials_ == 0) return results;

  if (views_.size() < k_) {
    views_.resize(k_);
    actions_.resize(k_);
  }
  for (std::size_t i = 0; i < k_; ++i) {
    View& view = views_[i];
    view.id_bound_ = graph_.id_bound();
    view.n_ = graph_.num_vertices();
    view.model_ = model_;
    view.graph_ = &graph_;
    view.faults_ = nullptr;  // the batch kernel is fault-free by contract
    view.shared_ids_ = &table_;
  }

  wb_reads0_.resize(trials_);
  wb_writes0_.resize(trials_);
  live_.resize(trials_);
  for (std::size_t t = 0; t < trials_; ++t) {
    wb_reads0_[t] = boards_[t].reads();
    wb_writes0_[t] = boards_[t].writes();
    live_[t] = static_cast<std::uint32_t>(t);
    results[t].agents.resize(k_);
    for (std::size_t i = 0; i < k_; ++i)
      results[t].agents[i].wake_delay = wake_at_[t * k_ + i];
  }

  const std::uint64_t threshold = gathering_.threshold(k_);

  // --- lock-step round loop: allocation-free from here on ---
  // All trials start at their own round 0, so the global round counter *is*
  // every live trial's local round counter; a trial that ends simply drops
  // out of live_ while the others continue. Within one trial and round the
  // statement order below is exactly Scheduler::run_scenario's fault-free
  // sequence, which is what makes the scalar path a bit-exactness oracle.
  for (std::uint64_t round = 0; !live_.empty(); ++round) {
    std::size_t keep = 0;
    for (std::size_t li = 0; li < live_.size(); ++li) {
      const std::uint32_t t = live_[li];
      ScenarioRunResult& res = results[t];
      const std::size_t base = static_cast<std::size_t>(t) * k_;

      if (gathered_slice(pos_.data() + base, k_, threshold,
                         res.meeting_agent_a, res.meeting_agent_b)) {
        res.met = true;
        res.meeting_round = round;
        res.meeting_vertex = pos_[base + res.meeting_agent_a];
        res.gathered_count =
            count_at_slice(pos_.data() + base, k_, res.meeting_vertex);
        continue;  // finished: not kept in live_
      }
      if (round == caps_[t]) continue;  // budget exhausted without gathering
      res.rounds = round + 1;

      Whiteboards& boards = boards_[t];
      for (std::size_t i = 0; i < k_; ++i) {
        if (round < wake_at_[base + i]) {
          actions_[i] = Action::stay();  // asleep: present but inert
          continue;
        }
        View& view = views_[i];
        const graph::VertexIndex here = pos_[base + i];
        view.agent_ = i == 0 ? AgentName::A : AgentName::B;
        view.round_ = round - wake_at_[base + i];  // the agent's local clock
        view.here_index_ = here;
        view.here_id_ = graph_.id_of(here);
        view.degree_ = graph_.degree(here);
        view.boards_ = model_.whiteboards ? &boards : nullptr;
        if (arrival_[base + i] == kNoPort)
          view.arrival_port_.reset();
        else
          view.arrival_port_ = arrival_[base + i];
        actions_[i] = agents_[base + i]->step(view);
        res.agents[i].peak_memory_words =
            std::max(res.agents[i].peak_memory_words,
                     agents_[base + i]->memory_words());
      }

      // Writes land in agent-index order at current vertices, before the
      // simultaneous movement (same tie-break as the scalar scheduler).
      for (std::size_t i = 0; i < k_; ++i) {
        if (actions_[i].whiteboard_write.has_value()) {
          FNR_CHECK_MSG(model_.whiteboards,
                        "agent wrote a whiteboard in a whiteboard-free model");
          boards.write(pos_[base + i], *actions_[i].whiteboard_write);
        }
      }

      for (std::size_t i = 0; i < k_; ++i) {
        const std::size_t port = actions_[i].move_port;
        if (port == Action::kStay) {
          arrival_[base + i] = kNoPort;
          continue;
        }
        const graph::VertexIndex from = pos_[base + i];
        const graph::VertexIndex to = graph_.neighbor_at_port(from, port);
        pos_[base + i] = to;
        // Precomputed port_to(to, from): one load instead of a binary
        // search over to's neighbor list (the scalar scheduler's hottest
        // per-move cost).
        arrival_[base + i] = table_.rev[from][port];
        ++res.agents[i].moves;
      }
      live_[keep++] = t;  // still running next round
    }
    live_.resize(keep);
  }

  for (std::size_t t = 0; t < trials_; ++t) {
    results[t].whiteboard_reads = boards_[t].reads() - wb_reads0_[t];
    results[t].whiteboard_writes = boards_[t].writes() - wb_writes0_[t];
    results[t].whiteboards_used = boards_[t].used_boards();
  }
  return results;
}

BatchScheduler& BatchSchedulerScratch::kernel_for(const graph::Graph& g,
                                                  Model model) {
  if (!kernel_ || &kernel_->graph() != &g ||
      cached_vertices_ != g.num_vertices() ||
      cached_edges_ != g.num_edges() || !(kernel_->model() == model)) {
    kernel_.emplace(g, model);
    cached_vertices_ = g.num_vertices();
    cached_edges_ = g.num_edges();
  }
  return *kernel_;
}

}  // namespace fnr::sim
