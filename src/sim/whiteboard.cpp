#include "sim/whiteboard.hpp"

namespace fnr::sim {

Whiteboards::Whiteboards(std::size_t num_vertices)
    : values_(num_vertices), present_((num_vertices + 63) / 64) {
  // Full reservation keeps write() allocation-free even when a run marks
  // every board (the zero-allocation invariant of the scheduler hot path).
  dirty_.reserve(num_vertices);
}

std::optional<std::uint64_t> Whiteboards::read(graph::VertexIndex v) {
  FNR_CHECK(v < values_.size());
  ++reads_;
  if (!present(v)) return std::nullopt;
  return values_[v];
}

void Whiteboards::write(graph::VertexIndex v, std::uint64_t value) {
  FNR_CHECK(v < values_.size());
  ++writes_;
  if (!present(v)) {
    present_[v >> 6] |= std::uint64_t{1} << (v & 63);
    dirty_.push_back(v);
  }
  values_[v] = value;
}

void Whiteboards::clear_all() {
  for (const auto v : dirty_)
    present_[v >> 6] &= ~(std::uint64_t{1} << (v & 63));
  dirty_.clear();
}

}  // namespace fnr::sim
