#include "sim/whiteboard.hpp"

namespace fnr::sim {

Whiteboards::Whiteboards(std::size_t num_vertices) : cells_(num_vertices) {}

std::optional<std::uint64_t> Whiteboards::read(graph::VertexIndex v) {
  FNR_CHECK(v < cells_.size());
  ++reads_;
  return cells_[v];
}

void Whiteboards::write(graph::VertexIndex v, std::uint64_t value) {
  FNR_CHECK(v < cells_.size());
  ++writes_;
  if (!cells_[v].has_value()) ++used_;
  cells_[v] = value;
}

void Whiteboards::clear_all() {
  for (auto& cell : cells_) cell.reset();
  used_ = 0;
}

}  // namespace fnr::sim
