#include "sim/metrics.hpp"

#include <sstream>

namespace fnr::sim {

std::string RunResult::describe() const {
  std::ostringstream os;
  if (met) {
    os << "met at round " << meeting_round << " on vertex " << meeting_vertex;
  } else {
    os << "did not meet within " << metrics.rounds << " rounds";
  }
  os << " (moves a=" << metrics.moves[0] << ", b=" << metrics.moves[1]
     << ", wb writes=" << metrics.whiteboard_writes << ")";
  return os.str();
}

}  // namespace fnr::sim
