#include "sim/metrics.hpp"

#include <sstream>

namespace fnr::sim {

std::string RunResult::describe() const {
  std::ostringstream os;
  if (met) {
    os << "met at round " << meeting_round << " on vertex " << meeting_vertex;
  } else {
    os << "did not meet within " << metrics.rounds << " rounds";
  }
  os << " (moves a=" << metrics.moves[0] << ", b=" << metrics.moves[1]
     << ", wb writes=" << metrics.whiteboard_writes << ")";
  return os.str();
}

RunResult ScenarioRunResult::to_run_result() const {
  FNR_CHECK_MSG(agents.size() == 2,
                "to_run_result() projects exactly two agents, got "
                    << agents.size());
  RunResult out;
  out.met = met;
  out.meeting_round = meeting_round;
  out.meeting_vertex = meeting_vertex;
  out.metrics.rounds = rounds;
  out.metrics.moves = {agents[0].moves, agents[1].moves};
  out.metrics.peak_memory_words = {agents[0].peak_memory_words,
                                   agents[1].peak_memory_words};
  out.metrics.whiteboard_reads = whiteboard_reads;
  out.metrics.whiteboard_writes = whiteboard_writes;
  out.metrics.whiteboards_used = whiteboards_used;
  return out;
}

std::string ScenarioRunResult::describe() const {
  std::ostringstream os;
  if (met) {
    os << "gathered at round " << meeting_round << " on vertex "
       << meeting_vertex << " (first pair " << meeting_agent_a << ", "
       << meeting_agent_b << "; " << gathered_count << " co-located)";
  } else {
    os << "did not gather within " << rounds << " rounds";
  }
  std::uint64_t total_moves = 0;
  for (const auto& agent : agents) total_moves += agent.moves;
  os << "; " << agents.size() << " agents, " << total_moves
     << " total moves, wb writes=" << whiteboard_writes;
  return os.str();
}

}  // namespace fnr::sim
