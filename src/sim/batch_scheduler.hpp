// Lock-step batched execution of many independent trials on one graph.
//
// A sweep cell runs hundreds of trials of the same (graph, model, scenario)
// with different seeds. The scalar Scheduler executes them one at a time,
// which re-derives per-graph observations (neighbor-ID lists, ID→index
// lookups) once per trial. The BatchScheduler stages a batch of trials and
// advances them all through round 0, round 1, … in lock step, with the
// per-(trial, agent) state — positions, arrival ports, wake clocks — laid
// out as flat structure-of-arrays buffers indexed by trial*k + agent, and
// all Views served from one shared, precomputed NeighborTable.
//
// Bit-exactness contract: trials are mutually independent, and within one
// trial the batch round loop performs *exactly* the scalar run_scenario
// sequence (fault-free): gathering predicate at the round boundary, budget
// check, per-agent observation in agent-index order on the agent's local
// clock, whiteboard writes in agent-index order, then simultaneous moves.
// Each trial owns a private whiteboard store, so cross-trial interleaving
// cannot be observed. The scalar Scheduler therefore remains the oracle:
// for every staged trial the batch result must be (and is, enforced by
// tests/test_batch_equivalence.cpp) byte-identical to a scalar run of the
// same agents/placement/cap. Faults are out of scope — faulty cells keep
// the scalar path (the fault sites consume RNG in round order, which a
// batch would re-interleave).
//
// Allocation discipline: like the scalar arena, all buffers grow to the
// high-water mark of (trials, agents) and are reused; after the staging
// prologue of run() the round loop performs zero heap allocations
// (enforced by tests/test_batch_alloc_guard.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/metrics.hpp"
#include "sim/model.hpp"
#include "sim/neighbor_table.hpp"
#include "sim/scheduler.hpp"
#include "sim/view.hpp"
#include "sim/whiteboard.hpp"

namespace fnr::sim {

class BatchScheduler {
 public:
  /// Binds the kernel to `g` (must outlive the BatchScheduler) and `model`;
  /// precomputes the shared neighbor table.
  BatchScheduler(const graph::Graph& g, Model model);

  /// Starts staging a new batch (drops any previously staged trials).
  void begin_batch(Gathering gathering);

  /// Stages one trial: `agents` (one per slot, alive until run() returns)
  /// starting from `placement`, capped at `max_rounds`. Every trial of a
  /// batch must have the same agent count. Validation matches
  /// Scheduler::run_scenario.
  void add_trial(const std::vector<Agent*>& agents,
                 const ScenarioPlacement& placement, std::uint64_t max_rounds);

  /// Runs all staged trials to completion in lock step; results are in
  /// staging order and bit-identical to scalar runs of the same trials.
  [[nodiscard]] std::vector<ScenarioRunResult> run();

  [[nodiscard]] const graph::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const Model& model() const noexcept { return model_; }
  [[nodiscard]] std::size_t staged_trials() const noexcept { return trials_; }

 private:
  static constexpr std::uint32_t kNoPort = static_cast<std::uint32_t>(-1);

  const graph::Graph& graph_;
  Model model_;
  NeighborTable table_;

  Gathering gathering_ = Gathering::AnyPair;
  std::size_t trials_ = 0;  ///< staged trials in the current batch
  std::size_t k_ = 0;       ///< agents per trial (fixed per batch)

  // --- SoA per-(trial, agent) state, indexed trial * k_ + agent ---
  std::vector<Agent*> agents_;
  std::vector<graph::VertexIndex> pos_;
  std::vector<std::uint32_t> arrival_;  ///< arrival port or kNoPort
  std::vector<std::uint64_t> wake_at_;  ///< wake delay = local clock base

  // --- per-trial state ---
  std::vector<std::uint64_t> caps_;
  std::vector<Whiteboards> boards_;  ///< private store per staged trial
  std::vector<std::uint64_t> wb_reads0_;
  std::vector<std::uint64_t> wb_writes0_;
  std::vector<std::uint32_t> live_;  ///< trials still running (compacted)

  // --- per-agent scratch, reused across trials within a round ---
  std::vector<View> views_;
  std::vector<Action> actions_;
};

/// Per-worker batch-kernel cache, mirroring SchedulerScratch: hands out a
/// BatchScheduler for a (graph, model) pair, rebuilding only when either
/// changes (same address+size identity contract as SchedulerScratch).
class BatchSchedulerScratch {
 public:
  [[nodiscard]] BatchScheduler& kernel_for(const graph::Graph& g, Model model);

 private:
  std::optional<BatchScheduler> kernel_;
  std::size_t cached_vertices_ = 0;
  std::size_t cached_edges_ = 0;
};

}  // namespace fnr::sim
