// Computational model flags (paper §2.1).
//
// The paper's upper bounds assume: unique vertex IDs, access to neighborhood
// IDs (KT1-style: the accessible port map P_v equals the hidden ˆP_v), and
// whiteboards at vertices. The lower bounds each remove one assumption; the
// Model struct makes every combination runnable so those experiments are
// executable rather than hypothetical.
#pragma once

namespace fnr::sim {

struct Model {
  /// KT1: agents at v can read the IDs of all neighbors of v. When false,
  /// ports are opaque indices [0, deg(v)) (Theorem 4's setting).
  bool neighborhood_ids = true;

  /// Whiteboards at vertices (read/write at the current location). Theorem 2
  /// removes this.
  bool whiteboards = true;

  /// The full model used by Theorem 1.
  [[nodiscard]] static constexpr Model full() noexcept { return {true, true}; }
  /// Theorem 2's model: KT1 but no whiteboards (requires tight naming, which
  /// is a property of the Graph's IdSpace, not of the Model).
  [[nodiscard]] static constexpr Model no_whiteboards() noexcept {
    return {true, false};
  }
  /// Theorem 4's model: whiteboards but no neighborhood IDs.
  [[nodiscard]] static constexpr Model port_only() noexcept {
    return {false, true};
  }

  friend constexpr bool operator==(const Model&, const Model&) = default;
};

/// The two agents; the paper names them a and b and allows them to run
/// different programs (asymmetric algorithms). k-agent scenarios reuse the
/// same roles: agent 0 runs the a-program, agents 1..k-1 the b-program.
enum class AgentName { A, B };

/// The paper's lowercase role letter ("a" / "b") for tables and traces.
[[nodiscard]] constexpr const char* to_string(AgentName name) noexcept {
  return name == AgentName::A ? "a" : "b";
}

/// When a k-agent scenario counts as gathered (evaluated at the beginning of
/// each round, like the paper's two-agent meeting convention).
enum class Gathering {
  AnyPair,  ///< some two agents co-located (the paper's k=2 rendezvous)
  All,      ///< every agent on one vertex (multi-agent gathering)
};

/// Stable label for scenario descriptors and table headers.
[[nodiscard]] constexpr const char* to_string(Gathering gathering) noexcept {
  return gathering == Gathering::AnyPair ? "any-pair" : "all-meet";
}

}  // namespace fnr::sim
