// Computational model flags (paper §2.1).
//
// The paper's upper bounds assume: unique vertex IDs, access to neighborhood
// IDs (KT1-style: the accessible port map P_v equals the hidden ˆP_v), and
// whiteboards at vertices. The lower bounds each remove one assumption; the
// Model struct makes every combination runnable so those experiments are
// executable rather than hypothetical.
#pragma once

#include <cstdint>
#include <string>

namespace fnr::sim {

struct Model {
  /// KT1: agents at v can read the IDs of all neighbors of v. When false,
  /// ports are opaque indices [0, deg(v)) (Theorem 4's setting).
  bool neighborhood_ids = true;

  /// Whiteboards at vertices (read/write at the current location). Theorem 2
  /// removes this.
  bool whiteboards = true;

  /// The full model used by Theorem 1.
  [[nodiscard]] static constexpr Model full() noexcept { return {true, true}; }
  /// Theorem 2's model: KT1 but no whiteboards (requires tight naming, which
  /// is a property of the Graph's IdSpace, not of the Model).
  [[nodiscard]] static constexpr Model no_whiteboards() noexcept {
    return {true, false};
  }
  /// Theorem 4's model: whiteboards but no neighborhood IDs.
  [[nodiscard]] static constexpr Model port_only() noexcept {
    return {false, true};
  }

  friend constexpr bool operator==(const Model&, const Model&) = default;
};

/// The two agents; the paper names them a and b and allows them to run
/// different programs (asymmetric algorithms). k-agent scenarios reuse the
/// same roles: agent 0 runs the a-program, agents 1..k-1 the b-program.
enum class AgentName { A, B };

/// The paper's lowercase role letter ("a" / "b") for tables and traces.
[[nodiscard]] constexpr const char* to_string(AgentName name) noexcept {
  return name == AgentName::A ? "a" : "b";
}

/// When a k-agent scenario counts as gathered (evaluated at the beginning of
/// each round, like the paper's two-agent meeting convention).
///
/// Every predicate is a co-location threshold: the run succeeds as soon as
/// some single vertex holds at least threshold(k) agents. AnyPair is
/// threshold 2 (the paper's k=2 rendezvous), All is threshold k, Quorum(q)
/// is an absolute count, Fraction(f) a relative one (ceil(f*k), clamped to
/// at least 2 — gathering fewer than two agents is vacuous). The nested
/// unscoped Kind enum keeps historical spellings (`Gathering::AnyPair`)
/// valid: they name Kind values that convert implicitly.
struct Gathering {
  enum Kind {
    AnyPair,   ///< some two agents co-located (the paper's k=2 rendezvous)
    All,       ///< every agent on one vertex (multi-agent gathering)
    Quorum,    ///< at least `quorum` agents on one vertex
    Fraction,  ///< at least ceil(fraction * k) agents on one vertex
  };

  Kind kind = AnyPair;
  std::uint64_t quorum = 0;  ///< meaningful only when kind == Quorum
  double fraction = 0.0;     ///< meaningful only when kind == Fraction

  constexpr Gathering() noexcept = default;
  // Implicit on purpose: Kind values are the public spelling of the
  // parameter-free predicates.
  constexpr Gathering(Kind kind_in) noexcept : kind(kind_in) {}

  [[nodiscard]] static constexpr Gathering quorum_of(
      std::uint64_t q) noexcept {
    Gathering g(Quorum);
    g.quorum = q;
    return g;
  }
  [[nodiscard]] static constexpr Gathering fraction_of(double f) noexcept {
    Gathering g(Fraction);
    g.fraction = f;
    return g;
  }

  /// Co-located agents required on one vertex for a k-agent run to count as
  /// gathered. Always >= 2; Quorum returns its count verbatim above that
  /// floor (callers validate 2 <= q <= k — a larger q is simply never met).
  [[nodiscard]] constexpr std::uint64_t threshold(
      std::uint64_t k) const noexcept {
    switch (kind) {
      case AnyPair: return 2;
      case All: return k;
      case Quorum: return quorum < 2 ? 2 : quorum;
      case Fraction: {
        const double target = fraction * static_cast<double>(k);
        std::uint64_t t = static_cast<std::uint64_t>(target);
        if (static_cast<double>(t) < target) ++t;  // ceil without libm
        return t < 2 ? 2 : t;
      }
    }
    return 2;
  }

  friend constexpr bool operator==(const Gathering&,
                                   const Gathering&) = default;
};

/// Stable label of a parameter-free predicate kind.
[[nodiscard]] constexpr const char* to_string(Gathering::Kind kind) noexcept {
  switch (kind) {
    case Gathering::AnyPair: return "any-pair";
    case Gathering::All: return "all-meet";
    case Gathering::Quorum: return "quorum";
    case Gathering::Fraction: return "fraction";
  }
  return "?";
}

/// Canonical label including parameters ("any-pair", "all-meet",
/// "quorum?q=3", "fraction?f=0.5"); the sweep grammar's gather= axis parses
/// exactly these spellings back.
[[nodiscard]] std::string to_string(const Gathering& gathering);

}  // namespace fnr::sim
