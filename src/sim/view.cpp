#include "sim/view.hpp"

#include "fault/fault.hpp"
#include "sim/neighbor_table.hpp"

namespace fnr::sim {

const std::vector<graph::VertexId>& View::neighbor_ids() const {
  FNR_CHECK_MSG(model_.neighborhood_ids,
                "model does not grant access to neighborhood IDs");
  FNR_CHECK(graph_ != nullptr);
  if (shared_ids_ != nullptr) return shared_ids_->ids[here_index_];
  if (neighbor_ids_vertex_ != here_index_) {
    const auto nbrs = graph_->neighbors(here_index_);
    neighbor_ids_cache_.resize(nbrs.size());
    for (std::size_t port = 0; port < nbrs.size(); ++port)
      neighbor_ids_cache_[port] = graph_->id_of(nbrs[port]);
    neighbor_ids_vertex_ = here_index_;
  }
  return neighbor_ids_cache_;
}

std::size_t View::port_of(graph::VertexId id) const {
  FNR_CHECK_MSG(model_.neighborhood_ids,
                "model does not grant access to neighborhood IDs");
  FNR_CHECK(graph_ != nullptr);
  const graph::VertexIndex target =
      (shared_ids_ != nullptr && !shared_ids_->index_by_id.empty())
          ? (id < shared_ids_->index_by_id.size()
                 ? shared_ids_->index_by_id[id]
                 : graph::kNoVertex)
          : graph_->try_index_of(id);
  FNR_CHECK_MSG(target != graph::kNoVertex,
                "ID " << id << " names no vertex");
  if (shared_ids_ != nullptr && !shared_ids_->port_by_pair.empty()) {
    const std::uint16_t port =
        shared_ids_
            ->port_by_pair[here_index_ * shared_ids_->num_vertices + target];
    if (port != NeighborTable::kNoPort) return port;
    // Not an edge: fall through so the graph raises the canonical error.
  }
  return graph_->port_to(here_index_, target);
}

std::optional<std::uint64_t> View::whiteboard() const {
  FNR_CHECK_MSG(model_.whiteboards, "model has no whiteboards");
  FNR_CHECK(boards_ != nullptr);
  auto value = boards_->read(here_index_);
  // wb-stale: the read happened (the access counter moved) but the agent
  // observes ⊥ instead of the stored value — the signature of a replica
  // that has not caught up yet. Only a stored value can be missed.
  if (faults_ != nullptr && value.has_value() &&
      faults_->reach(fault::Site::WhiteboardStale)) {
    ++faults_->stats.stale_reads;
    return std::nullopt;
  }
  return value;
}

}  // namespace fnr::sim
