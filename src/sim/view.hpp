// The agent's window onto the world.
//
// Algorithms never see the Graph; each round they receive a View exposing
// exactly the observations the paper's model grants: the agent's own name,
// the current vertex's ID and degree, the accessible port map (neighbor IDs
// only under KT1), the whiteboard at the current vertex (only if the model
// has whiteboards), the ID bound n', and the global round counter. The
// lower-bound experiments rely on this enforcement: an algorithm written
// against View physically cannot use what the model withholds.
//
// Views are arena objects: the Scheduler keeps one View per agent alive for
// the whole run and re-points it each round, so the neighbor-ID cache
// persists across rounds (and across runs on the same graph) and the hot
// loop performs no heap allocation after warm-up.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "sim/model.hpp"
#include "sim/whiteboard.hpp"

namespace fnr::fault {
class FaultSession;
}  // namespace fnr::fault

namespace fnr::sim {

class Scheduler;
class BatchScheduler;
struct NeighborTable;

class View {
 public:
  /// Default-constructed Views are inert placeholders; only the Scheduler
  /// populates them (all observation setters are private to it).
  View() = default;

  /// Which program role this agent runs (the paper's a / b split).
  [[nodiscard]] AgentName agent() const noexcept { return agent_; }
  /// The agent's local round counter (0 on its first awake round).
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }

  /// ID of the current vertex (IDs are always visible; §2.1).
  [[nodiscard]] graph::VertexId here() const noexcept { return here_id_; }
  /// Degree of the current vertex (the size of its port map).
  [[nodiscard]] std::size_t degree() const noexcept { return degree_; }

  /// n' — exclusive upper bound on vertex IDs, known to agents.
  [[nodiscard]] graph::VertexId id_bound() const noexcept { return id_bound_; }
  /// Number of vertices n. The paper lets agents know n (they compute log n
  /// and thresholds from it); we expose it explicitly.
  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }

  /// Whether neighbor IDs are observable (KT1).
  [[nodiscard]] bool has_neighborhood_ids() const noexcept {
    return model_.neighborhood_ids;
  }
  /// Whether the current model grants whiteboards.
  [[nodiscard]] bool has_whiteboards() const noexcept {
    return model_.whiteboards;
  }

  /// IDs of the current vertex's neighbors, indexed by port. Filled lazily
  /// and cached per vertex, so rounds that never inspect the neighborhood
  /// cost O(1) and an agent camping on one vertex fills the cache once.
  /// Throws CheckError unless the model grants neighborhood IDs.
  [[nodiscard]] const std::vector<graph::VertexId>& neighbor_ids() const;

  /// Port leading to the neighbor with ID `id`; requires KT1 and that `id`
  /// names a neighbor of the current vertex. (Computed via the graph's index
  /// structures for speed; observationally identical to scanning
  /// neighbor_ids().)
  [[nodiscard]] std::size_t port_of(graph::VertexId id) const;

  /// Whiteboard content at the current vertex; requires a whiteboard model.
  [[nodiscard]] std::optional<std::uint64_t> whiteboard() const;

  /// The port of the current vertex through which the agent arrived last
  /// round (standard in port-numbered mobile-agent models; lets port-only
  /// agents backtrack). nullopt at the start vertex or after staying.
  [[nodiscard]] std::optional<std::size_t> arrival_port() const noexcept {
    return arrival_port_;
  }

 private:
  friend class Scheduler;
  friend class BatchScheduler;

  AgentName agent_ = AgentName::A;
  std::uint64_t round_ = 0;
  graph::VertexId here_id_ = 0;
  std::size_t degree_ = 0;
  graph::VertexId id_bound_ = 0;
  std::size_t n_ = 0;
  Model model_;
  const graph::Graph* graph_ = nullptr;  // non-owning; private to the View
  Whiteboards* boards_ = nullptr;        // non-owning; null w/o whiteboards
  // Active fault session, or null (the scheduler re-points this at the
  // start of every run, so a faulty run can never leak injection into a
  // later fault-free run on the same arena). Consulted only by
  // whiteboard() for wb-stale reads.
  fault::FaultSession* faults_ = nullptr;
  graph::VertexIndex here_index_ = graph::kNoVertex;
  std::optional<std::size_t> arrival_port_;
  // Graph-wide observation table shared across lock-stepped trials, or
  // null (the scalar path). When set, neighbor_ids()/port_of() answer from
  // it — observationally identical to the lazy cache, just precomputed once
  // per graph instead of once per (View, vertex).
  const NeighborTable* shared_ids_ = nullptr;
  // Neighbor-ID cache, keyed by the vertex it was filled for. The graph is
  // immutable, so entries stay valid across rounds and runs; capacity is
  // reserved to the graph's max degree so refills never allocate.
  mutable std::vector<graph::VertexId> neighbor_ids_cache_;
  mutable graph::VertexIndex neighbor_ids_vertex_ = graph::kNoVertex;
};

/// What an agent does in a round: optionally write the current vertex's
/// whiteboard, then stay or move through a port.
struct Action {
  /// Sentinel port meaning "hold position this round".
  static constexpr std::size_t kStay = static_cast<std::size_t>(-1);

  /// Port to move through at the end of the round (kStay = hold position).
  std::size_t move_port = kStay;
  /// Value to write on the current vertex's whiteboard before moving.
  std::optional<std::uint64_t> whiteboard_write;

  /// The no-op action: no write, no move.
  [[nodiscard]] static Action stay() noexcept { return {}; }
  /// Move through `port` without writing.
  [[nodiscard]] static Action move(std::size_t port) noexcept {
    Action a;
    a.move_port = port;
    return a;
  }
};

/// Algorithm interface. One instance drives one agent for one run.
class Agent {
 public:
  virtual ~Agent() = default;
  Agent() = default;
  Agent(const Agent&) = delete;
  Agent& operator=(const Agent&) = delete;

  /// Called once per round while the run is live.
  virtual Action step(const View& view) = 0;

  /// Approximate current internal memory footprint in 64-bit words; used by
  /// the resource experiment (paper claims O(n log n) bits suffice).
  [[nodiscard]] virtual std::size_t memory_words() const { return 0; }

  /// Single-agent runs (Scheduler::run_single) stop when this turns true;
  /// ignored in two-agent runs (those end at rendezvous).
  [[nodiscard]] virtual bool halted() const { return false; }
};

}  // namespace fnr::sim
