#include "sim/scheduler.hpp"

#include <algorithm>
#include <optional>

#include "util/log.hpp"

namespace fnr::sim {

namespace {

/// Evaluates the gathering predicate over agent positions. On success fills
/// the lexicographically first co-located pair (under All that is (0, k-1):
/// every agent shares one vertex).
bool gathered(const std::vector<graph::VertexIndex>& pos, Gathering gathering,
              std::size_t& pair_a, std::size_t& pair_b) {
  switch (gathering) {
    case Gathering::AnyPair:
      for (std::size_t i = 0; i < pos.size(); ++i)
        for (std::size_t j = i + 1; j < pos.size(); ++j)
          if (pos[i] == pos[j]) {
            pair_a = i;
            pair_b = j;
            return true;
          }
      return false;
    case Gathering::All:
      for (std::size_t i = 1; i < pos.size(); ++i)
        if (pos[i] != pos[0]) return false;
      pair_a = 0;
      pair_b = pos.size() - 1;
      return true;
  }
  return false;
}

}  // namespace

Placement random_adjacent_placement(const graph::Graph& g, Rng& rng) {
  FNR_CHECK_MSG(g.num_edges() > 0, "graph has no edges to place agents on");
  // A uniform adjacency slot is a uniform directed edge, i.e. a uniform
  // undirected edge with a uniform orientation.
  const auto [u, v] = g.edge_at_slot(rng.below(2 * g.num_edges()));
  return Placement{u, v};
}

Scheduler::Scheduler(const graph::Graph& g, Model model)
    : graph_(g), model_(model), boards_(g.num_vertices()) {}

RunResult Scheduler::run(Agent& agent_a, Agent& agent_b, Placement placement,
                         std::uint64_t max_rounds) {
  ScenarioPlacement scenario_placement;
  scenario_placement.starts = {placement.a_start, placement.b_start};
  return run_scenario({&agent_a, &agent_b}, scenario_placement,
                      Gathering::AnyPair, max_rounds)
      .to_run_result();
}

ScenarioRunResult Scheduler::run_scenario(const std::vector<Agent*>& agents,
                                          const ScenarioPlacement& placement,
                                          Gathering gathering,
                                          std::uint64_t max_rounds) {
  const std::size_t k = agents.size();
  FNR_CHECK_MSG(k >= 2, "a scenario needs at least two agents, got " << k);
  FNR_CHECK_MSG(placement.starts.size() == k,
                "placement has " << placement.starts.size() << " starts for "
                                 << k << " agents");
  FNR_CHECK_MSG(
      placement.wake_delays.empty() || placement.wake_delays.size() == k,
      "wake_delays must be empty or one per agent");
  for (std::size_t i = 0; i < k; ++i) {
    FNR_CHECK(agents[i] != nullptr);
    FNR_CHECK(placement.starts[i] < graph_.num_vertices());
    for (std::size_t j = i + 1; j < k; ++j)
      FNR_CHECK_MSG(placement.starts[i] != placement.starts[j],
                    "agents must start at distinct vertices");
  }
  boards_.clear_all();

  ScenarioRunResult result;
  result.agents.resize(k);
  for (std::size_t i = 0; i < k; ++i)
    result.agents[i].wake_delay = placement.delay_of(i);

  std::vector<graph::VertexIndex> pos = placement.starts;
  std::vector<std::optional<std::size_t>> arrival_port(k);
  std::vector<Action> actions(k);

  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round <= max_rounds; ++round) {
    if (gathered(pos, gathering, result.meeting_agent_a,
                 result.meeting_agent_b)) {
      result.met = true;
      result.meeting_round = round;
      result.meeting_vertex = pos[result.meeting_agent_a];
      break;
    }
    if (round == max_rounds) break;  // budget exhausted without gathering
    result.rounds = round + 1;

    for (std::size_t i = 0; i < k; ++i) {
      const std::uint64_t delay = placement.delay_of(i);
      if (round < delay) {
        actions[i] = Action::stay();  // asleep: present but inert
        continue;
      }
      View view;
      view.agent_ = i == 0 ? AgentName::A : AgentName::B;
      view.round_ = round - delay;  // the agent's local clock
      view.here_index_ = pos[i];
      view.here_id_ = graph_.id_of(pos[i]);
      view.degree_ = graph_.degree(pos[i]);
      view.id_bound_ = graph_.id_bound();
      view.n_ = graph_.num_vertices();
      view.model_ = model_;
      view.graph_ = &graph_;
      view.boards_ = model_.whiteboards ? &boards_ : nullptr;
      view.arrival_port_ = arrival_port[i];
      actions[i] = agents[i]->step(view);
      result.agents[i].peak_memory_words = std::max(
          result.agents[i].peak_memory_words, agents[i]->memory_words());
    }

    // Whiteboard writes happen at the agents' current vertices before the
    // simultaneous movement. Under Gathering::All two co-located agents may
    // both write one board in the same round; writes apply in agent-index
    // order, so the highest-indexed writer wins (deterministic). Under
    // AnyPair co-location ends the run above, so the order is moot.
    for (std::size_t i = 0; i < k; ++i) {
      if (actions[i].whiteboard_write.has_value()) {
        FNR_CHECK_MSG(model_.whiteboards,
                      "agent wrote a whiteboard in a whiteboard-free model");
        boards_.write(pos[i], *actions[i].whiteboard_write);
      }
    }

    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t port = actions[i].move_port;
      if (port == Action::kStay) {
        arrival_port[i].reset();
        continue;
      }
      const graph::VertexIndex from = pos[i];
      pos[i] = graph_.neighbor_at_port(from, port);
      arrival_port[i] = graph_.port_to(pos[i], from);
      ++result.agents[i].moves;
    }
  }

  result.whiteboard_reads = boards_.reads() - wb_reads0;
  result.whiteboard_writes = boards_.writes() - wb_writes0;
  result.whiteboards_used = boards_.used_boards();
  FNR_TRACE("scenario finished: " << result.describe());
  return result;
}

RunResult Scheduler::run_single(Agent& agent, graph::VertexIndex start,
                                std::uint64_t max_rounds) {
  FNR_CHECK(start < graph_.num_vertices());
  boards_.clear_all();

  RunResult result;
  graph::VertexIndex pos = start;
  std::optional<std::size_t> arrival_port;

  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    if (agent.halted()) break;
    result.metrics.rounds = round + 1;

    View view;
    view.agent_ = AgentName::A;
    view.round_ = round;
    view.here_index_ = pos;
    view.here_id_ = graph_.id_of(pos);
    view.degree_ = graph_.degree(pos);
    view.id_bound_ = graph_.id_bound();
    view.n_ = graph_.num_vertices();
    view.model_ = model_;
    view.graph_ = &graph_;
    view.boards_ = model_.whiteboards ? &boards_ : nullptr;
    view.arrival_port_ = arrival_port;
    const Action action = agent.step(view);
    result.metrics.peak_memory_words[0] =
        std::max(result.metrics.peak_memory_words[0], agent.memory_words());

    if (action.whiteboard_write.has_value()) {
      FNR_CHECK_MSG(model_.whiteboards,
                    "agent wrote a whiteboard in a whiteboard-free model");
      boards_.write(pos, *action.whiteboard_write);
    }
    if (action.move_port == Action::kStay) {
      arrival_port.reset();
    } else {
      const graph::VertexIndex from = pos;
      pos = graph_.neighbor_at_port(from, action.move_port);
      arrival_port = graph_.port_to(pos, from);
      ++result.metrics.moves[0];
    }
  }
  result.meeting_vertex = pos;  // final position (no partner to meet)
  result.metrics.whiteboard_reads = boards_.reads();
  result.metrics.whiteboard_writes = boards_.writes();
  result.metrics.whiteboards_used = boards_.used_boards();
  return result;
}

}  // namespace fnr::sim
