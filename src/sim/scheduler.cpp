#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fnr::sim {

namespace {

/// Evaluates the gathering predicate over agent positions. On success fills
/// the lexicographically first co-located pair (under All that is (0, k-1):
/// every agent shares one vertex).
bool gathered(const std::vector<graph::VertexIndex>& pos, Gathering gathering,
              std::size_t& pair_a, std::size_t& pair_b) {
  switch (gathering) {
    case Gathering::AnyPair:
      for (std::size_t i = 0; i < pos.size(); ++i)
        for (std::size_t j = i + 1; j < pos.size(); ++j)
          if (pos[i] == pos[j]) {
            pair_a = i;
            pair_b = j;
            return true;
          }
      return false;
    case Gathering::All:
      for (std::size_t i = 1; i < pos.size(); ++i)
        if (pos[i] != pos[0]) return false;
      pair_a = 0;
      pair_b = pos.size() - 1;
      return true;
  }
  return false;
}

}  // namespace

Placement random_adjacent_placement(const graph::Graph& g, Rng& rng) {
  FNR_CHECK_MSG(g.num_edges() > 0, "graph has no edges to place agents on");
  // A uniform adjacency slot is a uniform directed edge, i.e. a uniform
  // undirected edge with a uniform orientation.
  const auto [u, v] = g.edge_at_slot(rng.below(2 * g.num_edges()));
  return Placement{u, v};
}

Scheduler::Scheduler(const graph::Graph& g, Model model)
    : graph_(g), model_(model), boards_(g.num_vertices()) {}

void Scheduler::ensure_arena(std::size_t k) {
  if (views_.size() < k) {
    pos_.reserve(k);
    arrival_port_.resize(k);
    actions_.resize(k);
    run_agents_.resize(k);
    wake_at_.resize(k);
    local_base_.resize(k);
    needs_revive_.resize(k);
    views_.resize(k);
    for (auto& view : views_) {
      // Graph/model bindings never change for this arena; set them once.
      view.id_bound_ = graph_.id_bound();
      view.n_ = graph_.num_vertices();
      view.model_ = model_;
      view.graph_ = &graph_;
      view.boards_ = model_.whiteboards ? &boards_ : nullptr;
      // Worst-case degree reservation: per-vertex cache refills can then
      // never outgrow capacity, so the round loop stays allocation-free.
      view.neighbor_ids_cache_.reserve(graph_.max_degree());
    }
  }
  // pos_ is consumed whole by the gathering predicate, so it must hold
  // exactly k entries; resizing within the reserved capacity never
  // allocates.
  pos_.resize(k);
  for (std::size_t i = 0; i < k; ++i) arrival_port_[i].reset();
}

void Scheduler::aim_view(std::size_t agent, AgentName name,
                         std::uint64_t local_round, graph::VertexIndex here,
                         std::optional<std::size_t> arrival) {
  View& view = views_[agent];
  view.agent_ = name;
  view.round_ = local_round;
  view.here_index_ = here;
  view.here_id_ = graph_.id_of(here);
  view.degree_ = graph_.degree(here);
  view.arrival_port_ = arrival;
}

RunResult Scheduler::run(Agent& agent_a, Agent& agent_b, Placement placement,
                         std::uint64_t max_rounds) {
  // Branch-light two-agent fast path: the bit-exact k=2, zero-delay,
  // any-pair projection of run_scenario (pinned by the golden-regression
  // tests), with fixed-size state instead of per-run vectors.
  FNR_CHECK(placement.a_start < graph_.num_vertices());
  FNR_CHECK(placement.b_start < graph_.num_vertices());
  FNR_CHECK_MSG(placement.a_start != placement.b_start,
                "agents must start at distinct vertices");
  boards_.clear_all();
  ensure_arena(2);
  // The paper's reliable two-agent model: never inject here, and clear any
  // session pointer a previous faulty scenario run left in the arena views.
  views_[0].faults_ = views_[1].faults_ = nullptr;

  Agent* const agents[2] = {&agent_a, &agent_b};
  graph::VertexIndex pos[2] = {placement.a_start, placement.b_start};
  std::optional<std::size_t> arrival[2];
  Action actions[2];

  RunResult result;
  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round <= max_rounds; ++round) {
    if (pos[0] == pos[1]) {
      result.met = true;
      result.meeting_round = round;
      result.meeting_vertex = pos[0];
      break;
    }
    if (round == max_rounds) break;  // budget exhausted without meeting
    result.metrics.rounds = round + 1;

    for (std::size_t i = 0; i < 2; ++i) {
      aim_view(i, i == 0 ? AgentName::A : AgentName::B, round, pos[i],
               arrival[i]);
      actions[i] = agents[i]->step(views_[i]);
      result.metrics.peak_memory_words[i] = std::max(
          result.metrics.peak_memory_words[i], agents[i]->memory_words());
    }

    // Writes land at the agents' current vertices before the simultaneous
    // movement (same order as run_scenario; co-location ended the run
    // above, so a write race between the two agents is impossible).
    for (std::size_t i = 0; i < 2; ++i) {
      if (actions[i].whiteboard_write.has_value()) {
        FNR_CHECK_MSG(model_.whiteboards,
                      "agent wrote a whiteboard in a whiteboard-free model");
        boards_.write(pos[i], *actions[i].whiteboard_write);
      }
    }

    for (std::size_t i = 0; i < 2; ++i) {
      const std::size_t port = actions[i].move_port;
      if (port == Action::kStay) {
        arrival[i].reset();
        continue;
      }
      const graph::VertexIndex from = pos[i];
      pos[i] = graph_.neighbor_at_port(from, port);
      arrival[i] = graph_.port_to(pos[i], from);
      ++result.metrics.moves[i];
    }
  }

  result.metrics.whiteboard_reads = boards_.reads() - wb_reads0;
  result.metrics.whiteboard_writes = boards_.writes() - wb_writes0;
  result.metrics.whiteboards_used = boards_.used_boards();
  return result;
}

ScenarioRunResult Scheduler::run_scenario(const std::vector<Agent*>& agents,
                                          const ScenarioPlacement& placement,
                                          Gathering gathering,
                                          std::uint64_t max_rounds) {
  const std::size_t k = agents.size();
  FNR_CHECK_MSG(k >= 2, "a scenario needs at least two agents, got " << k);
  FNR_CHECK_MSG(placement.starts.size() == k,
                "placement has " << placement.starts.size() << " starts for "
                                 << k << " agents");
  FNR_CHECK_MSG(
      placement.wake_delays.empty() || placement.wake_delays.size() == k,
      "wake_delays must be empty or one per agent");
  for (std::size_t i = 0; i < k; ++i) {
    FNR_CHECK(agents[i] != nullptr);
    FNR_CHECK(placement.starts[i] < graph_.num_vertices());
    for (std::size_t j = i + 1; j < k; ++j)
      FNR_CHECK_MSG(placement.starts[i] != placement.starts[j],
                    "agents must start at distinct vertices");
  }
  boards_.clear_all();
  ensure_arena(k);

  ScenarioRunResult result;
  result.agents.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.agents[i].wake_delay = placement.delay_of(i);
    // The fault-free round loop below is the original loop with wake_at_
    // and local_base_ pre-filled to the wake delay: without a session the
    // per-round residue is exactly one null-check per agent (the
    // allocation-guard and golden contracts are measured in that state).
    run_agents_[i] = agents[i];
    wake_at_[i] = placement.delay_of(i);
    local_base_[i] = placement.delay_of(i);
    needs_revive_[i] = 0;
    views_[i].faults_ = faults_;
  }

  std::copy(placement.starts.begin(), placement.starts.end(), pos_.begin());

  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round <= max_rounds; ++round) {
    if (gathered(pos_, gathering, result.meeting_agent_a,
                 result.meeting_agent_b)) {
      result.met = true;
      result.meeting_round = round;
      result.meeting_vertex = pos_[result.meeting_agent_a];
      break;
    }
    if (round == max_rounds) break;  // budget exhausted without gathering
    result.rounds = round + 1;

    // wb-wipe: one opportunity per round, before anyone observes or acts.
    if (faults_ != nullptr && faults_->reach(fault::Site::WhiteboardWipe)) {
      boards_.clear_all();
      ++faults_->stats.wipes;
    }

    for (std::size_t i = 0; i < k; ++i) {
      if (round < wake_at_[i]) {
        actions_[i] = Action::stay();  // asleep or down: present but inert
        continue;
      }
      if (faults_ != nullptr) {
        if (needs_revive_[i]) {
          // Restart after the downtime: a factory-fresh instance on the
          // crash vertex, local clock back at 0, arrival port forgotten.
          FNR_CHECK_MSG(faults_->revive != nullptr,
                        "agent crash fired but the fault session has no "
                        "reviver installed");
          Agent* fresh = faults_->revive(i);
          FNR_CHECK_MSG(fresh != nullptr,
                        "fault reviver built no agent for slot " << i);
          run_agents_[i] = fresh;
          needs_revive_[i] = 0;
          local_base_[i] = round;
          arrival_port_[i].reset();
          ++faults_->stats.restarts;
        }
        if (faults_->reach(fault::Site::AgentCrash)) {
          // Crash now: state is lost, the agent is inert for the downtime
          // window and revived on its first round back.
          ++faults_->stats.crashes;
          needs_revive_[i] = 1;
          wake_at_[i] = round + faults_->crash_downtime();
          actions_[i] = Action::stay();
          continue;
        }
      }
      aim_view(i, i == 0 ? AgentName::A : AgentName::B,
               round - local_base_[i] /* the agent's local clock */, pos_[i],
               arrival_port_[i]);
      actions_[i] = run_agents_[i]->step(views_[i]);
      result.agents[i].peak_memory_words =
          std::max(result.agents[i].peak_memory_words,
                   run_agents_[i]->memory_words());
    }

    // Whiteboard writes happen at the agents' current vertices before the
    // simultaneous movement. Under Gathering::All two co-located agents may
    // both write one board in the same round; writes apply in agent-index
    // order, so the highest-indexed writer wins (deterministic). Under
    // AnyPair co-location ends the run above, so the order is moot.
    for (std::size_t i = 0; i < k; ++i) {
      if (actions_[i].whiteboard_write.has_value()) {
        FNR_CHECK_MSG(model_.whiteboards,
                      "agent wrote a whiteboard in a whiteboard-free model");
        if (faults_ != nullptr &&
            faults_->reach(fault::Site::WhiteboardDrop)) {
          ++faults_->stats.writes_dropped;  // the write never lands
        } else {
          boards_.write(pos_[i], *actions_[i].whiteboard_write);
        }
      }
    }

    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t port = actions_[i].move_port;
      if (port == Action::kStay) {
        arrival_port_[i].reset();
        continue;
      }
      const graph::VertexIndex from = pos_[i];
      const graph::VertexIndex to = graph_.neighbor_at_port(from, port);
      if (faults_ != nullptr && faults_->churn_armed() &&
          faults_->edge_down(round, from, to)) {
        // churn: the traversal fails and the agent holds position, exactly
        // like a stay (it knows it did not move — the arrival port clears).
        ++faults_->stats.moves_blocked;
        arrival_port_[i].reset();
        continue;
      }
      pos_[i] = to;
      arrival_port_[i] = graph_.port_to(to, from);
      ++result.agents[i].moves;
    }
  }

  result.whiteboard_reads = boards_.reads() - wb_reads0;
  result.whiteboard_writes = boards_.writes() - wb_writes0;
  result.whiteboards_used = boards_.used_boards();
  if (faults_ != nullptr) result.faults = faults_->stats;
  FNR_TRACE("scenario finished: " << result.describe());
  return result;
}

RunResult Scheduler::run_single(Agent& agent, graph::VertexIndex start,
                                std::uint64_t max_rounds) {
  FNR_CHECK(start < graph_.num_vertices());
  boards_.clear_all();
  ensure_arena(1);
  views_[0].faults_ = nullptr;  // reliable, like Scheduler::run

  RunResult result;
  graph::VertexIndex pos = start;
  std::optional<std::size_t> arrival_port;

  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    if (agent.halted()) break;
    result.metrics.rounds = round + 1;

    aim_view(0, AgentName::A, round, pos, arrival_port);
    const Action action = agent.step(views_[0]);
    result.metrics.peak_memory_words[0] =
        std::max(result.metrics.peak_memory_words[0], agent.memory_words());

    if (action.whiteboard_write.has_value()) {
      FNR_CHECK_MSG(model_.whiteboards,
                    "agent wrote a whiteboard in a whiteboard-free model");
      boards_.write(pos, *action.whiteboard_write);
    }
    if (action.move_port == Action::kStay) {
      arrival_port.reset();
    } else {
      const graph::VertexIndex from = pos;
      pos = graph_.neighbor_at_port(from, action.move_port);
      arrival_port = graph_.port_to(pos, from);
      ++result.metrics.moves[0];
    }
  }
  result.meeting_vertex = pos;  // final position (no partner to meet)
  result.metrics.whiteboard_reads = boards_.reads() - wb_reads0;
  result.metrics.whiteboard_writes = boards_.writes() - wb_writes0;
  result.metrics.whiteboards_used = boards_.used_boards();
  return result;
}

Scheduler& SchedulerScratch::scheduler_for(const graph::Graph& g,
                                           Model model) {
  // Identity is the graph's address plus a size snapshot taken at build
  // time: the snapshot catches a *different* graph object reusing a dead
  // graph's address (e.g. a loop-local Graph) — see the header contract.
  // (Equal-sized topology changes at one address remain undetectable;
  // hence the documented same-live-object requirement.)
  if (!scheduler_ || &scheduler_->graph() != &g ||
      cached_vertices_ != g.num_vertices() ||
      cached_edges_ != g.num_edges() || !(scheduler_->model() == model)) {
    scheduler_.emplace(g, model);
    cached_vertices_ = g.num_vertices();
    cached_edges_ = g.num_edges();
  }
  return *scheduler_;
}

}  // namespace fnr::sim
