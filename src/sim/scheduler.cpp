#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fnr::sim {

namespace {

/// The pairwise oracle: does some vertex hold >= `threshold` of the k
/// positions? On success fills the canonical meeting pair — pair_a is the
/// lowest-indexed agent standing on any vertex at the threshold; pair_b is
/// the next agent sharing that vertex, except at threshold == k (all-meet,
/// also Quorum(k)/Fraction(1.0)) where it is the last such agent, i.e.
/// k - 1 — exactly the pre-swarm AnyPair/All conventions, which the golden
/// traces pin. O(k^2); the occupancy path must recover identical values.
bool gathered_threshold(const graph::VertexIndex* pos, std::size_t k,
                        std::uint64_t threshold, std::size_t& pair_a,
                        std::size_t& pair_b) {
  if (threshold > k) return false;  // an unreachable quorum never gathers
  for (std::size_t i = 0; i < k; ++i) {
    // Counting only j >= i is sound: if i is not the lowest index on its
    // vertex, that vertex was already counted fully at its lowest index.
    std::uint64_t count = 1;
    std::size_t second = i, last = i;
    for (std::size_t j = i + 1; j < k; ++j) {
      if (pos[j] != pos[i]) continue;
      ++count;
      if (second == i) second = j;
      last = j;
    }
    if (count >= threshold) {
      pair_a = i;
      pair_b = threshold == k ? last : second;
      return true;
    }
  }
  return false;
}

/// Agents standing on `vertex` (for ScenarioRunResult::gathered_count —
/// both detection paths report the same scan-derived value).
std::uint64_t count_at(const std::vector<graph::VertexIndex>& pos,
                       graph::VertexIndex vertex) {
  std::uint64_t count = 0;
  for (const auto p : pos)
    if (p == vertex) ++count;
  return count;
}

}  // namespace

Placement random_adjacent_placement(const graph::Graph& g, Rng& rng) {
  FNR_CHECK_MSG(g.num_edges() > 0, "graph has no edges to place agents on");
  // A uniform adjacency slot is a uniform directed edge, i.e. a uniform
  // undirected edge with a uniform orientation.
  const auto [u, v] = g.edge_at_slot(rng.below(2 * g.num_edges()));
  return Placement{u, v};
}

Scheduler::Scheduler(const graph::Graph& g, Model model)
    : graph_(g), model_(model), boards_(g.num_vertices()), table_(g) {}

void Scheduler::ensure_arena(std::size_t k) {
  if (views_.size() < k) {
    pos_.reserve(k);
    arrival_port_.resize(k);
    actions_.resize(k);
    run_agents_.resize(k);
    wake_at_.resize(k);
    local_base_.resize(k);
    needs_revive_.resize(k);
    views_.resize(k);
    for (auto& view : views_) {
      // Graph/model bindings never change for this arena; set them once.
      view.id_bound_ = graph_.id_bound();
      view.n_ = graph_.num_vertices();
      view.model_ = model_;
      view.graph_ = &graph_;
      view.boards_ = model_.whiteboards ? &boards_ : nullptr;
      // Neighborhood observations answer from the shared per-graph table
      // (observationally identical to the old per-View lazy cache, without
      // a per-view max-degree reservation — which matters at massive k).
      view.shared_ids_ = &table_;
    }
  }
  // pos_ is consumed whole by the gathering predicate, so it must hold
  // exactly k entries; resizing within the reserved capacity never
  // allocates.
  pos_.resize(k);
  std::fill_n(arrival_port_.begin(), k, kNoArrival);
}

void Scheduler::aim_view(std::size_t agent, AgentName name,
                         std::uint64_t local_round, graph::VertexIndex here,
                         std::uint32_t arrival) {
  View& view = views_[agent];
  view.agent_ = name;
  view.round_ = local_round;
  view.here_index_ = here;
  view.here_id_ = graph_.id_of(here);
  view.degree_ = graph_.degree(here);
  if (arrival == kNoArrival)
    view.arrival_port_.reset();
  else
    view.arrival_port_ = arrival;
}

void Scheduler::verify_occupancy(std::size_t k,
                                 std::uint64_t threshold) const {
  std::uint64_t total = 0, at_threshold = 0;
  for (const auto count : occ_) {
    total += count;
    if (count >= threshold) ++at_threshold;
  }
  FNR_CHECK_MSG(total == k, "occupancy self-check: counts sum to "
                                << total << " for " << k << " agents");
  FNR_CHECK_MSG(at_threshold == at_threshold_,
                "occupancy self-check: " << at_threshold
                                         << " vertices at threshold, counter "
                                         << "says " << at_threshold_);
  for (std::size_t i = 0; i < k; ++i)
    FNR_CHECK_MSG(occ_[pos_[i]] >= 1,
                  "occupancy self-check: agent " << i
                                                 << "'s vertex has count 0");
}

RunResult Scheduler::run(Agent& agent_a, Agent& agent_b, Placement placement,
                         std::uint64_t max_rounds) {
  // Branch-light two-agent fast path: the bit-exact k=2, zero-delay,
  // any-pair projection of run_scenario (pinned by the golden-regression
  // tests), with fixed-size state instead of per-run vectors.
  FNR_CHECK(placement.a_start < graph_.num_vertices());
  FNR_CHECK(placement.b_start < graph_.num_vertices());
  FNR_CHECK_MSG(placement.a_start != placement.b_start,
                "agents must start at distinct vertices");
  boards_.clear_all();
  ensure_arena(2);
  // The paper's reliable two-agent model: never inject here, and clear any
  // session pointer a previous faulty scenario run left in the arena views.
  views_[0].faults_ = views_[1].faults_ = nullptr;

  Agent* const agents[2] = {&agent_a, &agent_b};
  graph::VertexIndex pos[2] = {placement.a_start, placement.b_start};
  std::uint32_t arrival[2] = {kNoArrival, kNoArrival};
  Action actions[2];

  RunResult result;
  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round <= max_rounds; ++round) {
    if (pos[0] == pos[1]) {
      result.met = true;
      result.meeting_round = round;
      result.meeting_vertex = pos[0];
      break;
    }
    if (round == max_rounds) break;  // budget exhausted without meeting
    result.metrics.rounds = round + 1;

    for (std::size_t i = 0; i < 2; ++i) {
      aim_view(i, i == 0 ? AgentName::A : AgentName::B, round, pos[i],
               arrival[i]);
      actions[i] = agents[i]->step(views_[i]);
      result.metrics.peak_memory_words[i] = std::max(
          result.metrics.peak_memory_words[i], agents[i]->memory_words());
    }

    // Writes land at the agents' current vertices before the simultaneous
    // movement (same order as run_scenario; co-location ended the run
    // above, so a write race between the two agents is impossible).
    for (std::size_t i = 0; i < 2; ++i) {
      if (actions[i].whiteboard_write.has_value()) {
        FNR_CHECK_MSG(model_.whiteboards,
                      "agent wrote a whiteboard in a whiteboard-free model");
        boards_.write(pos[i], *actions[i].whiteboard_write);
      }
    }

    for (std::size_t i = 0; i < 2; ++i) {
      const std::size_t port = actions[i].move_port;
      if (port == Action::kStay) {
        arrival[i] = kNoArrival;
        continue;
      }
      const graph::VertexIndex from = pos[i];
      pos[i] = graph_.neighbor_at_port(from, port);
      arrival[i] = table_.rev[from][port];
      ++result.metrics.moves[i];
    }
  }

  result.metrics.whiteboard_reads = boards_.reads() - wb_reads0;
  result.metrics.whiteboard_writes = boards_.writes() - wb_writes0;
  result.metrics.whiteboards_used = boards_.used_boards();
  return result;
}

ScenarioRunResult Scheduler::run_scenario(const std::vector<Agent*>& agents,
                                          const ScenarioPlacement& placement,
                                          Gathering gathering,
                                          std::uint64_t max_rounds) {
  const std::size_t k = agents.size();
  FNR_CHECK_MSG(k >= 2, "a scenario needs at least two agents, got " << k);
  FNR_CHECK_MSG(placement.starts.size() == k,
                "placement has " << placement.starts.size() << " starts for "
                                 << k << " agents");
  FNR_CHECK_MSG(
      placement.wake_delays.empty() || placement.wake_delays.size() == k,
      "wake_delays must be empty or one per agent");
  for (std::size_t i = 0; i < k; ++i) {
    FNR_CHECK(agents[i] != nullptr);
    FNR_CHECK(placement.starts[i] < graph_.num_vertices());
  }
  {
    // Distinctness via sort-and-compare: the naive pairwise check is
    // O(k^2) and at massive k it dwarfs the run itself (at k = 10^6 it
    // would cost minutes before the first round executes).
    std::vector<graph::VertexIndex> sorted_starts(placement.starts);
    std::sort(sorted_starts.begin(), sorted_starts.end());
    for (std::size_t i = 1; i < k; ++i)
      FNR_CHECK_MSG(sorted_starts[i] != sorted_starts[i - 1],
                    "agents must start at distinct vertices");
  }
  boards_.clear_all();
  ensure_arena(k);

  ScenarioRunResult result;
  result.agents.resize(k);
  for (std::size_t i = 0; i < k; ++i) {
    result.agents[i].wake_delay = placement.delay_of(i);
    // The fault-free round loop below is the original loop with wake_at_
    // and local_base_ pre-filled to the wake delay: without a session the
    // per-round residue is exactly one null-check per agent (the
    // allocation-guard and golden contracts are measured in that state).
    run_agents_[i] = agents[i];
    wake_at_[i] = placement.delay_of(i);
    local_base_[i] = placement.delay_of(i);
    needs_revive_[i] = 0;
    views_[i].faults_ = faults_;
  }

  std::copy(placement.starts.begin(), placement.starts.end(), pos_.begin());

  const std::uint64_t threshold = gathering.threshold(k);
  const bool occupancy = use_occupancy(k);
  if (occupancy) {
    if (occ_.size() != graph_.num_vertices()) {
      occ_.assign(graph_.num_vertices(), 0);  // warm-up only
    } else if (occ_dirty_) {
      std::fill(occ_.begin(), occ_.end(), 0);  // a prior run threw mid-flight
    }
    // A clean exit unseeds its own k increments (cheaper than an O(n)
    // clear), so the array is all-zero here and seeding is pure increments.
    occ_dirty_ = true;
    at_threshold_ = 0;
    for (std::size_t i = 0; i < k; ++i)
      if (++occ_[pos_[i]] == threshold) ++at_threshold_;
  }

  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round <= max_rounds; ++round) {
    bool met_now;
    if (occupancy) {
      if (self_check_) verify_occupancy(k, threshold);
      met_now = at_threshold_ > 0;
      if (met_now) {
        // Recover the canonical pair the pairwise oracle would report: the
        // minimal index satisfying either predicate form is the same agent
        // (the lowest index on a gathered vertex sees its full count).
        std::size_t pair_a = 0;
        for (std::size_t i = 0; i < k; ++i) {
          if (occ_[pos_[i]] >= threshold) {
            pair_a = i;
            break;
          }
        }
        std::size_t pair_b = pair_a;
        if (threshold == k) {
          pair_b = k - 1;  // all-meet: everyone shares the vertex
        } else {
          for (std::size_t j = pair_a + 1; j < k; ++j) {
            if (pos_[j] == pos_[pair_a]) {
              pair_b = j;
              break;
            }
          }
        }
        result.meeting_agent_a = pair_a;
        result.meeting_agent_b = pair_b;
      }
    } else {
      met_now = gathered_threshold(pos_.data(), k, threshold,
                                   result.meeting_agent_a,
                                   result.meeting_agent_b);
    }
    if (met_now) {
      result.met = true;
      result.meeting_round = round;
      result.meeting_vertex = pos_[result.meeting_agent_a];
      result.gathered_count = count_at(pos_, result.meeting_vertex);
      break;
    }
    if (round == max_rounds) break;  // budget exhausted without gathering
    result.rounds = round + 1;

    // wb-wipe: one opportunity per round, before anyone observes or acts.
    if (faults_ != nullptr && faults_->reach(fault::Site::WhiteboardWipe)) {
      boards_.clear_all();
      ++faults_->stats.wipes;
    }

    for (std::size_t i = 0; i < k; ++i) {
      if (round < wake_at_[i]) {
        actions_[i] = Action::stay();  // asleep or down: present but inert
        continue;
      }
      if (faults_ != nullptr) {
        if (needs_revive_[i]) {
          // Restart after the downtime: a factory-fresh instance on the
          // crash vertex, local clock back at 0, arrival port forgotten.
          FNR_CHECK_MSG(faults_->revive != nullptr,
                        "agent crash fired but the fault session has no "
                        "reviver installed");
          Agent* fresh = faults_->revive(i);
          FNR_CHECK_MSG(fresh != nullptr,
                        "fault reviver built no agent for slot " << i);
          run_agents_[i] = fresh;
          needs_revive_[i] = 0;
          local_base_[i] = round;
          arrival_port_[i] = kNoArrival;
          ++faults_->stats.restarts;
        }
        if (faults_->reach(fault::Site::AgentCrash)) {
          // Crash now: state is lost, the agent is inert for the downtime
          // window and revived on its first round back.
          ++faults_->stats.crashes;
          needs_revive_[i] = 1;
          wake_at_[i] = round + faults_->crash_downtime();
          actions_[i] = Action::stay();
          continue;
        }
      }
      aim_view(i, i == 0 ? AgentName::A : AgentName::B,
               round - local_base_[i] /* the agent's local clock */, pos_[i],
               arrival_port_[i]);
      actions_[i] = run_agents_[i]->step(views_[i]);
      result.agents[i].peak_memory_words =
          std::max(result.agents[i].peak_memory_words,
                   run_agents_[i]->memory_words());
    }

    // Whiteboard writes happen at the agents' current vertices before the
    // simultaneous movement. Under Gathering::All two co-located agents may
    // both write one board in the same round; writes apply in agent-index
    // order, so the highest-indexed writer wins (deterministic). Under
    // AnyPair co-location ends the run above, so the order is moot.
    for (std::size_t i = 0; i < k; ++i) {
      if (actions_[i].whiteboard_write.has_value()) {
        FNR_CHECK_MSG(model_.whiteboards,
                      "agent wrote a whiteboard in a whiteboard-free model");
        if (faults_ != nullptr &&
            faults_->reach(fault::Site::WhiteboardDrop)) {
          ++faults_->stats.writes_dropped;  // the write never lands
        } else {
          boards_.write(pos_[i], *actions_[i].whiteboard_write);
        }
      }
    }

    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t port = actions_[i].move_port;
      if (port == Action::kStay) {
        arrival_port_[i] = kNoArrival;
        continue;
      }
      const graph::VertexIndex from = pos_[i];
      const graph::VertexIndex to = graph_.neighbor_at_port(from, port);
      if (faults_ != nullptr && faults_->churn_armed() &&
          faults_->edge_down(round, from, to)) {
        // churn: the traversal fails and the agent holds position, exactly
        // like a stay (it knows it did not move — the arrival port clears).
        ++faults_->stats.moves_blocked;
        arrival_port_[i] = kNoArrival;
        continue;
      }
      pos_[i] = to;
      arrival_port_[i] = table_.rev[from][port];
      ++result.agents[i].moves;
      if (occupancy) {
        // Each move is two O(1) count updates; the threshold counter moves
        // only on the exact crossing in either direction.
        if (occ_[from]-- == threshold) --at_threshold_;
        if (++occ_[to] == threshold) ++at_threshold_;
      }
    }
  }

  if (occupancy) {
    // Clean unseed: k decrements restore all-zero counts without touching
    // the other n - k entries, keeping round-loop cost independent of n.
    for (std::size_t i = 0; i < k; ++i) --occ_[pos_[i]];
    at_threshold_ = 0;
    occ_dirty_ = false;
  }

  result.whiteboard_reads = boards_.reads() - wb_reads0;
  result.whiteboard_writes = boards_.writes() - wb_writes0;
  result.whiteboards_used = boards_.used_boards();
  if (faults_ != nullptr) result.faults = faults_->stats;
  FNR_TRACE("scenario finished: " << result.describe());
  return result;
}

RunResult Scheduler::run_single(Agent& agent, graph::VertexIndex start,
                                std::uint64_t max_rounds) {
  FNR_CHECK(start < graph_.num_vertices());
  boards_.clear_all();
  ensure_arena(1);
  views_[0].faults_ = nullptr;  // reliable, like Scheduler::run

  RunResult result;
  graph::VertexIndex pos = start;
  std::uint32_t arrival_port = kNoArrival;

  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    if (agent.halted()) break;
    result.metrics.rounds = round + 1;

    aim_view(0, AgentName::A, round, pos, arrival_port);
    const Action action = agent.step(views_[0]);
    result.metrics.peak_memory_words[0] =
        std::max(result.metrics.peak_memory_words[0], agent.memory_words());

    if (action.whiteboard_write.has_value()) {
      FNR_CHECK_MSG(model_.whiteboards,
                    "agent wrote a whiteboard in a whiteboard-free model");
      boards_.write(pos, *action.whiteboard_write);
    }
    if (action.move_port == Action::kStay) {
      arrival_port = kNoArrival;
    } else {
      const graph::VertexIndex from = pos;
      pos = graph_.neighbor_at_port(from, action.move_port);
      arrival_port = table_.rev[from][action.move_port];
      ++result.metrics.moves[0];
    }
  }
  result.meeting_vertex = pos;  // final position (no partner to meet)
  result.metrics.whiteboard_reads = boards_.reads() - wb_reads0;
  result.metrics.whiteboard_writes = boards_.writes() - wb_writes0;
  result.metrics.whiteboards_used = boards_.used_boards();
  return result;
}

Scheduler& SchedulerScratch::scheduler_for(const graph::Graph& g,
                                           Model model) {
  // Identity is the graph's address plus a size snapshot taken at build
  // time: the snapshot catches a *different* graph object reusing a dead
  // graph's address (e.g. a loop-local Graph) — see the header contract.
  // (Equal-sized topology changes at one address remain undetectable;
  // hence the documented same-live-object requirement.)
  if (!scheduler_ || &scheduler_->graph() != &g ||
      cached_vertices_ != g.num_vertices() ||
      cached_edges_ != g.num_edges() || !(scheduler_->model() == model)) {
    scheduler_.emplace(g, model);
    cached_vertices_ = g.num_vertices();
    cached_edges_ = g.num_edges();
  }
  return *scheduler_;
}

}  // namespace fnr::sim
