#include "sim/scheduler.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fnr::sim {

Placement random_adjacent_placement(const graph::Graph& g, Rng& rng) {
  FNR_CHECK_MSG(g.num_edges() > 0, "graph has no edges to place agents on");
  // A uniform adjacency slot is a uniform directed edge, i.e. a uniform
  // undirected edge with a uniform orientation.
  const auto [u, v] = g.edge_at_slot(rng.below(2 * g.num_edges()));
  return Placement{u, v};
}

Scheduler::Scheduler(const graph::Graph& g, Model model)
    : graph_(g), model_(model), boards_(g.num_vertices()) {}

RunResult Scheduler::run(Agent& agent_a, Agent& agent_b, Placement placement,
                         std::uint64_t max_rounds) {
  FNR_CHECK(placement.a_start < graph_.num_vertices());
  FNR_CHECK(placement.b_start < graph_.num_vertices());
  FNR_CHECK_MSG(placement.a_start != placement.b_start,
                "agents must start at distinct vertices");
  boards_.clear_all();

  RunResult result;
  graph::VertexIndex pos[2] = {placement.a_start, placement.b_start};
  std::optional<std::size_t> arrival_port[2];
  Agent* agents[2] = {&agent_a, &agent_b};

  const std::uint64_t wb_reads0 = boards_.reads();
  const std::uint64_t wb_writes0 = boards_.writes();

  for (std::uint64_t round = 0; round <= max_rounds; ++round) {
    if (pos[0] == pos[1]) {
      result.met = true;
      result.meeting_round = round;
      result.meeting_vertex = pos[0];
      break;
    }
    if (round == max_rounds) break;  // budget exhausted without meeting
    result.metrics.rounds = round + 1;

    Action actions[2];
    for (int i = 0; i < 2; ++i) {
      View view;
      view.agent_ = i == 0 ? AgentName::A : AgentName::B;
      view.round_ = round;
      view.here_index_ = pos[i];
      view.here_id_ = graph_.id_of(pos[i]);
      view.degree_ = graph_.degree(pos[i]);
      view.id_bound_ = graph_.id_bound();
      view.n_ = graph_.num_vertices();
      view.model_ = model_;
      view.graph_ = &graph_;
      view.boards_ = model_.whiteboards ? &boards_ : nullptr;
      view.arrival_port_ = arrival_port[i];
      actions[i] = agents[i]->step(view);
      result.metrics.peak_memory_words[i] = std::max(
          result.metrics.peak_memory_words[i], agents[i]->memory_words());
    }

    // Whiteboard writes happen at the agents' current vertices before the
    // simultaneous movement. (Both agents writing the same board would mean
    // they are co-located, which ends the run above, so order is moot.)
    for (int i = 0; i < 2; ++i) {
      if (actions[i].whiteboard_write.has_value()) {
        FNR_CHECK_MSG(model_.whiteboards,
                      "agent wrote a whiteboard in a whiteboard-free model");
        boards_.write(pos[i], *actions[i].whiteboard_write);
      }
    }

    for (int i = 0; i < 2; ++i) {
      const std::size_t port = actions[i].move_port;
      if (port == Action::kStay) {
        arrival_port[i].reset();
        continue;
      }
      const graph::VertexIndex from = pos[i];
      pos[i] = graph_.neighbor_at_port(from, port);
      arrival_port[i] = graph_.port_to(pos[i], from);
      ++result.metrics.moves[i];
    }
  }

  result.metrics.whiteboard_reads = boards_.reads() - wb_reads0;
  result.metrics.whiteboard_writes = boards_.writes() - wb_writes0;
  result.metrics.whiteboards_used = boards_.used_boards();
  FNR_TRACE("run finished: " << result.describe());
  return result;
}

RunResult Scheduler::run_single(Agent& agent, graph::VertexIndex start,
                                std::uint64_t max_rounds) {
  FNR_CHECK(start < graph_.num_vertices());
  boards_.clear_all();

  RunResult result;
  graph::VertexIndex pos = start;
  std::optional<std::size_t> arrival_port;

  for (std::uint64_t round = 0; round < max_rounds; ++round) {
    if (agent.halted()) break;
    result.metrics.rounds = round + 1;

    View view;
    view.agent_ = AgentName::A;
    view.round_ = round;
    view.here_index_ = pos;
    view.here_id_ = graph_.id_of(pos);
    view.degree_ = graph_.degree(pos);
    view.id_bound_ = graph_.id_bound();
    view.n_ = graph_.num_vertices();
    view.model_ = model_;
    view.graph_ = &graph_;
    view.boards_ = model_.whiteboards ? &boards_ : nullptr;
    view.arrival_port_ = arrival_port;
    const Action action = agent.step(view);
    result.metrics.peak_memory_words[0] =
        std::max(result.metrics.peak_memory_words[0], agent.memory_words());

    if (action.whiteboard_write.has_value()) {
      FNR_CHECK_MSG(model_.whiteboards,
                    "agent wrote a whiteboard in a whiteboard-free model");
      boards_.write(pos, *action.whiteboard_write);
    }
    if (action.move_port == Action::kStay) {
      arrival_port.reset();
    } else {
      const graph::VertexIndex from = pos;
      pos = graph_.neighbor_at_port(from, action.move_port);
      arrival_port = graph_.port_to(pos, from);
      ++result.metrics.moves[0];
    }
  }
  result.meeting_vertex = pos;  // final position (no partner to meet)
  result.metrics.whiteboard_reads = boards_.reads();
  result.metrics.whiteboard_writes = boards_.writes();
  result.metrics.whiteboards_used = boards_.used_boards();
  return result;
}

}  // namespace fnr::sim
