#include "sim/neighbor_table.hpp"

namespace fnr::sim {

NeighborTable::NeighborTable(const graph::Graph& g) {
  num_vertices = g.num_vertices();
  // The pair table costs n² halfwords; 2048 vertices (8 MB, transient, one
  // graph live at a time) is where we stop paying memory for the O(1) port
  // lookup and leave larger graphs on the binary search.
  const bool pair_table = num_vertices <= 2048;
  if (pair_table) port_by_pair.assign(num_vertices * num_vertices, kNoPort);
  ids.resize(g.num_vertices());
  rev.resize(g.num_vertices());
  for (graph::VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    ids[v].resize(nbrs.size());
    rev[v].resize(nbrs.size());
    for (std::size_t port = 0; port < nbrs.size(); ++port) {
      ids[v][port] = g.id_of(nbrs[port]);
      if (pair_table)
        port_by_pair[v * num_vertices + nbrs[port]] =
            static_cast<std::uint16_t>(port);
    }
  }
  // rev[v][port] = port_to(u, v): with the pair table filled this is one
  // lookup per edge; without it, the graph's binary search.
  for (graph::VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t port = 0; port < nbrs.size(); ++port)
      rev[v][port] =
          pair_table
              ? port_by_pair[nbrs[port] * num_vertices + v]
              : static_cast<std::uint32_t>(g.port_to(nbrs[port], v));
  }
  // Flat inverse map only for dense ID spaces: sparse polynomial naming
  // (id_bound = n^e) would make the array quadratic-or-worse in n.
  if (g.id_bound() <= 8 * g.num_vertices() + 1024) {
    index_by_id.assign(g.id_bound(), graph::kNoVertex);
    for (graph::VertexIndex v = 0; v < g.num_vertices(); ++v)
      index_by_id[g.id_of(v)] = v;
  }
}

}  // namespace fnr::sim
