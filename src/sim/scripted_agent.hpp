// Plan-driven agent base class.
//
// The paper's algorithms are written as sequential programs ("visit v,
// return, repeat"), while the simulator drives agents one round at a time.
// ScriptedAgent bridges the two: subclasses implement on_idle(), which runs
// whenever the operation queue is empty and enqueues the next short batch
// of per-round operations (moves addressed by neighbor ID, whiteboard
// writes, waits). Requires the KT1 model because moves are addressed by ID.
#pragma once

#include <deque>
#include <optional>

#include "sim/view.hpp"

namespace fnr::sim {

class ScriptedAgent : public Agent {
 public:
  /// Executes the front of the plan (refilling via on_idle when empty);
  /// an empty refill means the agent stays put this round.
  Action step(const View& view) final {
    // A reliable substrate lands every move on its target; standing
    // anywhere else means edge churn blocked the traversal, and the agent
    // holds position re-issuing the same hop until it goes through. The
    // retry draws nothing and runs on_idle only after the arrival it was
    // scripted for, so plans stay aligned with the agent's true position.
    if (last_move_.has_value()) {
      if (view.here() != *last_move_) {
        Action action;
        action.move_port = view.port_of(*last_move_);
        return action;
      }
      last_move_.reset();
    }

    if (ops_.empty()) on_idle(view);
    if (ops_.empty()) return Action::stay();

    Op op = ops_.front();
    ops_.pop_front();

    if (op.wait_until.has_value()) {
      // Hold position until the given absolute round; re-arm while early.
      if (view.round() + 1 < *op.wait_until) ops_.push_front(op);
      Action action = Action::stay();
      action.whiteboard_write = op.write;
      return action;
    }

    Action action;
    action.whiteboard_write = op.write;
    if (op.move_to.has_value()) {
      action.move_port = view.port_of(*op.move_to);
      last_move_ = *op.move_to;
    }
    return action;
  }

  /// Plan storage, two words per queued operation (subclasses add their
  /// own state on top).
  [[nodiscard]] std::size_t memory_words() const override {
    return ops_.size() * 2;
  }

 protected:
  /// Called with the agent's current view whenever the plan is empty.
  /// Implementations observe the view and enqueue the next operations; if
  /// nothing is enqueued the agent stays put this round.
  virtual void on_idle(const View& view) = 0;

  /// One round: move to adjacent vertex `v`.
  void plan_move(graph::VertexId v) { ops_.push_back(Op{v, {}, {}}); }

  /// One round per hop along `hops` (each must be adjacent when reached).
  void plan_route(const std::vector<graph::VertexId>& hops) {
    for (const auto v : hops) plan_move(v);
  }

  /// One round: write the current whiteboard, stay.
  void plan_write(std::uint64_t value) { ops_.push_back(Op{{}, value, {}}); }

  /// One round: write the current whiteboard and move to `v`.
  void plan_write_and_move(std::uint64_t value, graph::VertexId v) {
    ops_.push_back(Op{v, value, {}});
  }

  /// Stay for `rounds` rounds.
  void plan_wait(std::uint64_t rounds) {
    for (std::uint64_t i = 0; i < rounds; ++i) ops_.push_back(Op{{}, {}, {}});
  }

  /// Stay until the global round counter reaches `round` (no-op if past).
  void plan_wait_until(std::uint64_t round) {
    ops_.push_back(Op{{}, {}, round});
  }

  /// True when no operations are queued (on_idle will run next round).
  [[nodiscard]] bool plan_empty() const noexcept { return ops_.empty(); }
  /// Drops every queued operation (e.g. on a protocol restart).
  void plan_clear() noexcept { ops_.clear(); }

 private:
  struct Op {
    std::optional<graph::VertexId> move_to;
    std::optional<std::uint64_t> write;
    std::optional<std::uint64_t> wait_until;
  };
  std::deque<Op> ops_;
  /// Target of the last issued move, pending arrival confirmation (churn
  /// blocks traversals; the hop is retried until the agent stands there).
  std::optional<graph::VertexId> last_move_;
};

}  // namespace fnr::sim
