// Run-level measurements reported by the Scheduler.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "sim/model.hpp"

namespace fnr::sim {

/// Resource counters of one two-agent run (the paper's cost measures).
struct Metrics {
  std::uint64_t rounds = 0;                ///< rounds executed before meeting
  std::array<std::uint64_t, 2> moves{};    ///< edge traversals per agent
  std::uint64_t whiteboard_reads = 0;      ///< board reads during the run
  std::uint64_t whiteboard_writes = 0;     ///< board writes during the run
  std::size_t whiteboards_used = 0;        ///< boards that ever held a value
  std::array<std::size_t, 2> peak_memory_words{};  ///< max Agent::memory_words

  /// This agent's edge-traversal count.
  [[nodiscard]] std::uint64_t moves_of(AgentName name) const noexcept {
    return moves[static_cast<std::size_t>(name)];
  }
};

/// Outcome of one simulated run.
struct RunResult {
  bool met = false;
  /// Round at which rendezvous completed (both agents at one vertex at the
  /// beginning of that round); only meaningful when met.
  std::uint64_t meeting_round = 0;
  graph::VertexIndex meeting_vertex = graph::kNoVertex;
  Metrics metrics;

  /// One-line human-readable outcome summary (for traces and examples).
  [[nodiscard]] std::string describe() const;
};

/// Per-agent measurements of a k-agent scenario run.
struct AgentRunStats {
  std::uint64_t wake_delay = 0;  ///< rounds the agent slept before starting
  std::uint64_t moves = 0;       ///< edge traversals
  std::size_t peak_memory_words = 0;
};

/// Outcome of one k-agent scenario run (Scheduler::run_scenario). The
/// two-agent RunResult is the k=2 projection (see to_run_result).
struct ScenarioRunResult {
  bool met = false;
  /// Round at which the gathering predicate first held (beginning-of-round
  /// convention, as in the two-agent case); only meaningful when met.
  std::uint64_t meeting_round = 0;
  graph::VertexIndex meeting_vertex = graph::kNoVertex;
  /// Lexicographically first co-located pair of agent indices when met
  /// (0 and k-1 under Gathering::All, where everyone is co-located).
  std::size_t meeting_agent_a = 0;
  std::size_t meeting_agent_b = 0;
  /// Agents standing on meeting_vertex at the meeting round (>= the
  /// predicate's threshold when met; 0 otherwise). Under AnyPair this is
  /// the co-location size — 2 unless more agents collided at once — and
  /// under All it is k.
  std::uint64_t gathered_count = 0;
  std::uint64_t rounds = 0;  ///< rounds executed before gathering/cap
  std::uint64_t whiteboard_reads = 0;
  std::uint64_t whiteboard_writes = 0;
  std::size_t whiteboards_used = 0;
  /// Faults that fired during the run (all-zero without a fault session).
  fault::FaultStats faults;
  std::vector<AgentRunStats> agents;  ///< size k, indexed by agent

  /// Projects a k=2 scenario result onto the classic two-agent RunResult.
  /// Requires agents.size() == 2.
  [[nodiscard]] RunResult to_run_result() const;

  /// One-line human-readable outcome summary (for traces and examples).
  [[nodiscard]] std::string describe() const;
};

}  // namespace fnr::sim
