// Run-level measurements reported by the Scheduler.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "graph/graph.hpp"
#include "sim/model.hpp"

namespace fnr::sim {

struct Metrics {
  std::uint64_t rounds = 0;                ///< rounds executed before meeting
  std::array<std::uint64_t, 2> moves{};    ///< edge traversals per agent
  std::uint64_t whiteboard_reads = 0;
  std::uint64_t whiteboard_writes = 0;
  std::size_t whiteboards_used = 0;        ///< boards that ever held a value
  std::array<std::size_t, 2> peak_memory_words{};  ///< max Agent::memory_words

  [[nodiscard]] std::uint64_t moves_of(AgentName name) const noexcept {
    return moves[static_cast<std::size_t>(name)];
  }
};

/// Outcome of one simulated run.
struct RunResult {
  bool met = false;
  /// Round at which rendezvous completed (both agents at one vertex at the
  /// beginning of that round); only meaningful when met.
  std::uint64_t meeting_round = 0;
  graph::VertexIndex meeting_vertex = graph::kNoVertex;
  Metrics metrics;

  [[nodiscard]] std::string describe() const;
};

}  // namespace fnr::sim
