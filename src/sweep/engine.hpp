// The batch sweep surface — a thin client of the campaign core.
//
// The spec → grid → shard → checkpoint → merge lifecycle lives in
// src/campaign/campaign.hpp (extracted so the fnrd service daemon and the
// batch CLI drive the identical machinery). This header keeps the
// historical `fnr::sweep` names as aliases and forwards so existing
// callers — bench/sweep, tests, scripts — compile and behave unchanged:
// run_sweep constructs a one-shot campaign::Campaign and returns its
// summary. See campaign.hpp for the execution model and the determinism
// contract (byte-identical merged JSON across interrupts, shards, thread
// counts, and execution surfaces).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "sweep/spec.hpp"

namespace fnr::sweep {

/// Schema tag emitted in merged sweep reports ("fnr-sweep/<version>").
inline constexpr int kSweepSchemaVersion = campaign::kSweepSchemaVersion;
using campaign::sweep_schema_tag;

using SweepOptions = campaign::CampaignOptions;
using CellResult = campaign::CellResult;
using GraphCache = campaign::GraphCache;
using CheckpointEntry = campaign::CheckpointEntry;

/// Summary of one batch sweep (campaign::CampaignRun under its historical
/// name; `cancelled` reports a SIGINT/SIGTERM-interrupted CLI run).
using SweepResult = campaign::CampaignRun;

// Checkpoint IO, shard merging, and reporting are the campaign core's
// functions, re-exported under their historical names (using-declarations
// rather than wrappers, so unqualified calls never see two overloads).
using campaign::checkpoint_line;
using campaign::load_checkpoint;
using campaign::results_from_checkpoints;
using campaign::to_csv;
using campaign::to_json;

/// Runs this shard's cells of the spec: one whole campaign::Campaign run.
[[nodiscard]] SweepResult run_sweep(const SweepSpec& spec,
                                    const SweepOptions& options);

}  // namespace fnr::sweep
