// Declarative multi-axis sweep specifications.
//
// The paper's claims are asymptotic in n and δ, but a single bench run pins
// one size, one seed, one topology. A SweepSpec names whole *axes* —
// program × scenario (which bundles k, delay model, and gathering
// predicate) × topology family × n × seed block — and expands them into a
// deterministic cell grid the sweep engine can shard across workers and
// resume mid-campaign (see engine.hpp). Everything about a cell is derived
// from the spec text, so two machines given the same spec enumerate the
// same grid in the same order with the same keys.
//
// Spec text format (parse_spec): one `key = value` per line, `#` comments.
//
//   name       = large-n
//   trials     = 4                       # per-cell trial count
//   programs   = whiteboard, random-walk # program registry labels
//   scenarios  = sync-pair, delayed-pair # scenario registry names
//   topologies = near-regular:deg=16, torus, hypercube
//   sizes      = 1024, 16384, 131072     # requested n per topology
//   seeds      = 1, 2                    # seed block (one grid axis each)
//   agents     = 2, 8, 64                # optional agent-count (k) axis
//   gathers    = any-pair, quorum?q=3    # optional gathering-predicate axis
//   faults     = none, crash?rate=0.01   # optional fault-plan axis
//
// A fault token is a fault::FaultPlan clause list (`none`, or
// `family?key=value&key=value` clauses joined by `+` — see
// fault/fault.hpp). The axis is optional and defaults to the single
// inactive plan, so existing specs expand to exactly the grid they always
// did; `none` cells keep their pre-fault keys and the fault axis nests
// innermost, preserving fault-free indices.
//
// A gather token is `any-pair`, `all-meet`, `quorum?q=<count>`, or
// `fraction?f=<share>` (the canonical to_string forms). The axis overrides
// the gathering predicate of every scenario in the grid; cells whose
// override is incompatible with the (program, scenario) pair — a quorum
// larger than the scenario's k, or a threshold above 2 on a program without
// rally coordination — are pruned like any other capability mismatch. The
// axis is optional; when absent, scenarios keep their registered predicate
// and cell keys are byte-identical to specs written before the axis
// existed (`|gather=...` appears in the key only for override cells).
//
// An `agents` value overrides each scenario's agent count k the way
// `gathers` overrides its predicate: the override is part of cell identity
// (`|k=<count>` in the key), and capability pruning judges the *overridden*
// scenario — adjacent-pair placements host exactly k = 2, pairwise programs
// prune at k > 2 (supports_multi_agent), and quorums larger than the
// overridden k stay unreachable. The axis is optional; when absent,
// scenarios keep their registered k and cell keys are byte-identical to
// specs written before the axis existed.
//
// A topology token is `family` or `family:param=value:param=value`. A
// program token is a registry label, optionally parameterized with a
// `?key=value&key=value` suffix (e.g. `random-walk?laziness=0.25`); the
// canonical suffix form is part of the cell key. `programs = *` and
// `scenarios = *` expand to every registry entry (registration order at
// parse time) — the registry-smoke spec uses this so new registrations are
// covered without editing a list. Unknown labels fail naming the spec line
// and enumerating the registry. Lists are comma-separated. Sizes are
// capped at 2^20.
//
// Capability masks prune the expanded grid: a (program, scenario) pair the
// registry marks incompatible (compatible() — e.g. a neighborhood strategy
// on dropped-anywhere placements, a pairwise program on all-meet
// gathering), and a complete-graph-only program on any topology family
// other than `complete`, produce no cells at all instead of cells that
// deterministically fail.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <optional>

#include "fault/fault.hpp"
#include "graph/graph.hpp"
#include "scenario/program_registry.hpp"
#include "sim/model.hpp"

namespace fnr::sweep {

/// Largest supported requested size (2^20 vertices).
inline constexpr std::uint64_t kMaxSize = std::uint64_t{1} << 20;

/// One topology-family axis entry: a generator family plus its parameters,
/// resolved at each size n of the spec.
struct TopologySpec {
  std::string family;
  /// Family parameters (sorted by name, so key() is canonical). Unknown
  /// parameter names are rejected by validate().
  std::map<std::string, double> params;

  /// Throws CheckError on an unknown family or unknown/invalid params.
  void validate() const;

  /// Canonical label, e.g. "near-regular:deg=16" — used in cell keys and
  /// graph-cache keys.
  [[nodiscard]] std::string key() const;

  /// The vertex count the family actually achieves at requested size n
  /// (torus/grid round down to a square, hypercube to a power of two; the
  /// rest achieve n exactly). Throws when the family cannot host n.
  [[nodiscard]] std::uint64_t achieved_n(std::uint64_t n) const;

  /// Builds the graph. Deterministic given (family, params, n, seed): all
  /// generator randomness flows from Rng(seed, kGraphStream).
  [[nodiscard]] graph::Graph build(std::uint64_t n, std::uint64_t seed) const;
};

/// The RNG stream topology builders draw from (decorrelated from trial
/// placement stream 11 and the agents' split streams).
inline constexpr std::uint64_t kGraphStream = 911;

/// Supported family names, in a stable listing order.
[[nodiscard]] const std::vector<std::string>& topology_families();

/// Parses `family[:param=value]...`. Validates the result.
[[nodiscard]] TopologySpec parse_topology(const std::string& token);

/// A full sweep specification (see file header for the text format).
struct SweepSpec {
  std::string name = "sweep";
  std::uint64_t trials = 8;
  std::vector<scenario::Program> programs;  ///< registry handles
  std::vector<std::string> scenarios;  ///< scenario registry names
  std::vector<TopologySpec> topologies;
  std::vector<std::uint64_t> sizes;  ///< requested n values, each <= 2^20
  std::vector<std::uint64_t> seeds;  ///< seed block; one grid axis entry each
  /// Agent-count (k) axis. Empty ⇒ no override (each scenario keeps its
  /// registered num_agents and cell keys carry no `|k=` segment).
  std::vector<std::uint64_t> agents;
  /// Gathering-predicate axis. Empty ⇒ no override (each scenario keeps
  /// its registered predicate and the grid is byte-identical to specs
  /// written before the axis existed).
  std::vector<sim::Gathering> gathers;
  /// Fault-plan axis. Empty ⇒ the single inactive plan (fault-free grid,
  /// byte-identical to specs written before the axis existed).
  std::vector<fault::FaultPlan> faults;

  /// Throws CheckError when any axis is empty, a scenario name is unknown,
  /// a size is out of [4, 2^20], or trials is 0.
  void validate() const;
};

/// One cell of the expanded grid.
struct SweepCell {
  std::uint64_t index = 0;  ///< position in the canonical grid
  scenario::Program program;  ///< invalid until expand() fills it
  std::string scenario;
  TopologySpec topology;
  std::uint64_t n = 0;           ///< requested size
  std::uint64_t achieved_n = 0;  ///< family-resolved vertex count
  std::uint64_t seed = 0;
  std::uint64_t trials = 0;
  /// Gathering override from the `gathers` axis (absent on axis-free
  /// specs: the scenario's registered predicate applies).
  std::optional<sim::Gathering> gather;
  /// Agent-count override from the `agents` axis (absent on axis-free
  /// specs: the scenario's registered k applies).
  std::optional<std::uint64_t> k;
  fault::FaultPlan fault;  ///< inactive on fault-free cells

  /// Canonical cell identity: completed cells are skipped by this key on
  /// resume, so it must never depend on runtime options (threads, shard).
  /// Override cells append `|gather=<predicate>` and/or `|k=<count>`,
  /// active-fault cells `|fault=<plan key>`; plain cells keep the exact
  /// key they had before any of these axes existed, so old checkpoints
  /// still resume.
  [[nodiscard]] std::string key() const;

  /// Graph-cache key: (family, params, n, seed). Cells that share a key
  /// reuse one generated topology (programs/scenarios don't enter the key —
  /// the graph draw is independent of who runs on it).
  [[nodiscard]] std::string graph_key() const;
};

/// Parses a gather token: `any-pair`, `all-meet`, `quorum?q=<count>`, or
/// `fraction?f=<share>` (the canonical to_string(Gathering) forms).
/// Throws CheckError on anything else (q < 2, f outside (0, 1], ...).
[[nodiscard]] sim::Gathering parse_gather(const std::string& token);

/// Expands the spec into its canonical cell grid. Axis nesting, outermost
/// first: program, scenario, gather, k, topology, size, seed, fault. Incompatible
/// (program, scenario) pairs, complete-graph-only programs off the
/// `complete` family, and whiteboard-only fault plans on whiteboard-free
/// models are skipped (see the file header); indices stay dense over the
/// cells that remain. Deterministic: equal specs expand to identical grids
/// (same keys, same indices). Throws CheckError when capability pruning
/// leaves no cells at all.
[[nodiscard]] std::vector<SweepCell> expand(const SweepSpec& spec);

/// Parses spec text. Throws CheckError on unknown keys, malformed values,
/// or a spec that fails validate().
[[nodiscard]] SweepSpec parse_spec(const std::string& text);

/// Reads and parses a spec file.
[[nodiscard]] SweepSpec load_spec_file(const std::string& path);

/// Predefined specs, addressable by name from `bench/sweep --spec=<name>`:
///   smoke          — tiny grid for CI interrupt/resume smokes
///   perf-quick     — the perf suite's quick cells as a sweep
///   perf-full      — the perf suite's full cells as a sweep
///   large-n        — 3 programs × 4 families × n ∈ {2^10, 2^14, 2^17}
///   registry-smoke — every registered program × every compatible scenario,
///                    one tiny trial each (the CI registration smoke)
///   fault-smoke    — every fault family × one program × one scenario on a
///                    small graph (the CI robustness smoke)
/// Each value is spec text (parse it with parse_spec — one format, one
/// parser, whether the spec is built in or user-supplied).
[[nodiscard]] const std::vector<std::pair<std::string, std::string>>&
predefined_specs();

/// Resolves --spec: a predefined name first, otherwise a file path.
[[nodiscard]] SweepSpec find_spec(const std::string& name_or_path);

}  // namespace fnr::sweep
