#include "sweep/spec.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "graph/generators.hpp"
#include "scenario/scenario.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

namespace fnr::sweep {

namespace {

// --- small text helpers ------------------------------------------------------

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r\n");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r\n");
  return s.substr(first, last - first + 1);
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream is(s);
  while (std::getline(is, item, sep)) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

// --- topology families -------------------------------------------------------

struct FamilyParam {
  const char* name;
  double fallback;
};

struct FamilyInfo {
  const char* name;
  std::vector<FamilyParam> params;
};

const std::vector<FamilyInfo>& families() {
  static const std::vector<FamilyInfo> all = {
      {"ring", {}},
      {"path", {}},
      {"complete", {}},
      {"grid", {}},
      {"torus", {}},
      {"hypercube", {}},
      {"near-regular", {{"deg", 8.0}}},
      {"erdos-renyi", {{"avg-deg", 8.0}}},
      {"barabasi-albert", {{"m", 4.0}}},
      {"watts-strogatz", {{"k", 4.0}, {"beta", 0.1}}},
      {"random-geometric", {{"radius-factor", 1.2}}},
  };
  return all;
}

const FamilyInfo& family_info(const std::string& name) {
  for (const auto& info : families())
    if (name == info.name) return info;
  std::ostringstream known;
  for (const auto& info : families()) known << " " << info.name;
  FNR_CHECK_MSG(false, "unknown topology family '" << name
                                                   << "'; known:"
                                                   << known.str());
  throw std::logic_error("unreachable");
}

/// The (possibly defaulted) value of a family parameter.
double param_of(const TopologySpec& spec, const char* name) {
  const auto it = spec.params.find(name);
  if (it != spec.params.end()) return it->second;
  for (const auto& p : family_info(spec.family).params)
    if (std::string(name) == p.name) return p.fallback;
  FNR_CHECK_MSG(false, "family '" << spec.family << "' has no parameter '"
                                  << name << "'");
  throw std::logic_error("unreachable");
}

/// Integer-valued family parameter (rejects fractional values).
std::uint64_t int_param_of(const TopologySpec& spec, const char* name) {
  const double v = param_of(spec, name);
  FNR_CHECK_MSG(v >= 0.0 && v == std::floor(v) && v <= 1e18,
                "topology '" << spec.key() << "': parameter '" << name
                             << "' must be a non-negative integer, got "
                             << v);
  return static_cast<std::uint64_t>(v);
}

std::uint64_t square_side(std::uint64_t n) {
  auto side = static_cast<std::uint64_t>(
      std::floor(std::sqrt(static_cast<double>(n))));
  while ((side + 1) * (side + 1) <= n) ++side;  // guard fp rounding
  while (side * side > n) --side;
  return side;
}

std::uint64_t floor_log2(std::uint64_t n) {
  std::uint64_t d = 0;
  while ((std::uint64_t{1} << (d + 1)) <= n) ++d;
  return d;
}

double geometric_radius(const TopologySpec& spec, std::uint64_t n) {
  // factor × the connectivity-threshold radius sqrt(ln n / (π n)).
  const double factor = param_of(spec, "radius-factor");
  FNR_CHECK_MSG(factor > 0.0, "topology '" << spec.key()
                                           << "': radius-factor must be > 0");
  const auto dn = static_cast<double>(n);
  return factor * std::sqrt(std::log(dn) / (3.141592653589793 * dn));
}

}  // namespace

void TopologySpec::validate() const {
  const FamilyInfo& info = family_info(family);
  for (const auto& [name, value] : params) {
    (void)value;
    const bool known =
        std::any_of(info.params.begin(), info.params.end(),
                    [&](const FamilyParam& p) { return name == p.name; });
    FNR_CHECK_MSG(known, "topology family '" << family
                                             << "' has no parameter '"
                                             << name << "'");
  }
}

std::string TopologySpec::key() const {
  std::ostringstream os;
  os << family;
  for (const auto& [name, value] : params)
    os << ":" << name << "=" << format_double(value, 6);
  return os.str();
}

std::uint64_t TopologySpec::achieved_n(std::uint64_t n) const {
  validate();
  FNR_CHECK_MSG(n >= 4 && n <= kMaxSize,
                "topology '" << key() << "': size " << n
                             << " out of [4, 2^20]");
  if (family == "grid" || family == "torus") {
    const std::uint64_t side = square_side(n);
    FNR_CHECK_MSG(side >= 3, "'" << family << "' needs n >= 9");
    return side * side;
  }
  if (family == "hypercube") return std::uint64_t{1} << floor_log2(n);
  if (family == "complete") {
    FNR_CHECK_MSG(n <= 4096,
                  "'complete' is capped at n = 4096 (quadratic edge count)");
  }
  return n;
}

graph::Graph TopologySpec::build(std::uint64_t n, std::uint64_t seed) const {
  const std::uint64_t target = achieved_n(n);
  Rng rng(seed, kGraphStream);
  if (family == "ring") return graph::make_ring(target);
  if (family == "path") return graph::make_path(target);
  if (family == "complete") return graph::make_complete(target);
  if (family == "grid") {
    const std::uint64_t side = square_side(n);
    return graph::make_grid(side, side);
  }
  if (family == "torus") {
    const std::uint64_t side = square_side(n);
    return graph::make_torus(side, side);
  }
  if (family == "hypercube") return graph::make_hypercube(floor_log2(n));
  if (family == "near-regular") {
    const std::uint64_t deg = int_param_of(*this, "deg");
    FNR_CHECK_MSG(deg >= 1 && deg < target,
                  "topology '" << key() << "': deg must be in [1, n)");
    return graph::make_near_regular(target, deg, rng);
  }
  if (family == "erdos-renyi") {
    const double avg = param_of(*this, "avg-deg");
    FNR_CHECK_MSG(avg > 0.0, "topology '" << key() << "': avg-deg must be > 0");
    const double p =
        std::min(1.0, avg / static_cast<double>(target - 1));
    return graph::make_erdos_renyi(target, p, rng);
  }
  if (family == "barabasi-albert") {
    const std::uint64_t m = int_param_of(*this, "m");
    FNR_CHECK_MSG(m >= 1 && target >= m + 2,
                  "topology '" << key() << "': needs n >= m + 2");
    return graph::make_barabasi_albert(target, m, rng);
  }
  if (family == "watts-strogatz") {
    const std::uint64_t k = int_param_of(*this, "k");
    const double beta = param_of(*this, "beta");
    FNR_CHECK_MSG(k >= 1 && 2 * k + 1 <= target,
                  "topology '" << key() << "': needs 2k + 1 <= n");
    return graph::make_watts_strogatz(target, k, beta, rng);
  }
  if (family == "random-geometric") {
    return graph::make_random_geometric_connected(
               target, geometric_radius(*this, target), rng)
        .graph;
  }
  FNR_CHECK_MSG(false, "unhandled topology family '" << family << "'");
  throw std::logic_error("unreachable");
}

const std::vector<std::string>& topology_families() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& info : families()) out.emplace_back(info.name);
    return out;
  }();
  return names;
}

TopologySpec parse_topology(const std::string& token) {
  const auto parts = split(token, ':');
  FNR_CHECK_MSG(!parts.empty(), "empty topology token");
  TopologySpec spec;
  spec.family = parts[0];
  for (std::size_t i = 1; i < parts.size(); ++i) {
    const auto eq = parts[i].find('=');
    FNR_CHECK_MSG(eq != std::string::npos && eq > 0,
                  "topology parameter '" << parts[i]
                                         << "' is not name=value");
    const std::string name = trim(parts[i].substr(0, eq));
    const std::string value = trim(parts[i].substr(eq + 1));
    FNR_CHECK_MSG(!spec.params.contains(name),
                  "topology '" << token << "' repeats parameter '" << name
                               << "'");
    spec.params[name] =
        parse_finite_double(value, "topology parameter '" + name + "'");
  }
  spec.validate();
  return spec;
}

// --- spec --------------------------------------------------------------------

void SweepSpec::validate() const {
  FNR_CHECK_MSG(!name.empty(), "sweep spec needs a name");
  FNR_CHECK_MSG(trials >= 1, "sweep spec '" << name << "' needs trials >= 1");
  FNR_CHECK_MSG(!programs.empty(),
                "sweep spec '" << name << "' lists no programs");
  for (const auto& program : programs)
    FNR_CHECK_MSG(program.valid(),
                  "sweep spec '" << name
                                 << "' carries an invalid program handle");
  FNR_CHECK_MSG(!scenarios.empty(),
                "sweep spec '" << name << "' lists no scenarios");
  FNR_CHECK_MSG(!topologies.empty(),
                "sweep spec '" << name << "' lists no topologies");
  FNR_CHECK_MSG(!sizes.empty(), "sweep spec '" << name << "' lists no sizes");
  FNR_CHECK_MSG(!seeds.empty(), "sweep spec '" << name << "' lists no seeds");
  for (const auto& scenario_name : scenarios)
    (void)scenario::find_scenario(scenario_name);  // throws when unknown
  for (const auto& topology : topologies) topology.validate();
  for (const auto n : sizes)
    FNR_CHECK_MSG(n >= 4 && n <= kMaxSize,
                  "sweep spec '" << name << "': size " << n
                                 << " out of [4, 2^20]");
  for (const auto k : agents)
    FNR_CHECK_MSG(k >= 2 && k <= kMaxSize,
                  "sweep spec '" << name << "': agents value " << k
                                 << " out of [2, 2^20]");
}

std::string SweepCell::key() const {
  std::ostringstream os;
  os << scenario::to_string(program) << "|" << scenario << "|"
     << topology.key() << "|n=" << n << "|seed=" << seed
     << "|trials=" << trials;
  if (gather.has_value()) os << "|gather=" << sim::to_string(*gather);
  if (k.has_value()) os << "|k=" << *k;
  if (fault.active()) os << "|fault=" << fault.key();
  return os.str();
}

std::string SweepCell::graph_key() const {
  std::ostringstream os;
  os << topology.key() << "|n=" << n << "|seed=" << seed;
  return os.str();
}

std::vector<SweepCell> expand(const SweepSpec& spec) {
  spec.validate();
  // No `faults` axis ⇒ one inactive plan, no `gathers` axis ⇒ one
  // no-override slot: the grid (keys and indices) matches specs written
  // before either axis existed.
  static const std::vector<fault::FaultPlan> kFaultFree(1);
  static const std::vector<std::optional<sim::Gathering>> kNoGatherOverride(1);
  static const std::vector<std::optional<std::uint64_t>> kNoKOverride(1);
  const auto& fault_axis = spec.faults.empty() ? kFaultFree : spec.faults;
  std::vector<std::optional<sim::Gathering>> gather_axis;
  if (spec.gathers.empty()) {
    gather_axis = kNoGatherOverride;
  } else {
    gather_axis.reserve(spec.gathers.size());
    for (const auto& gather : spec.gathers) gather_axis.emplace_back(gather);
  }
  std::vector<std::optional<std::uint64_t>> k_axis;
  if (spec.agents.empty()) {
    k_axis = kNoKOverride;
  } else {
    k_axis.reserve(spec.agents.size());
    for (const auto k : spec.agents) k_axis.emplace_back(k);
  }
  std::vector<SweepCell> cells;
  cells.reserve(spec.programs.size() * spec.scenarios.size() *
                gather_axis.size() * k_axis.size() * spec.topologies.size() *
                spec.sizes.size() * spec.seeds.size() * fault_axis.size());
  for (const auto& program : spec.programs)
    for (const auto& scenario_name : spec.scenarios)
      for (const auto& gather : gather_axis)
        for (const auto& k : k_axis) {
          // Capability pruning: a mismatched (program, scenario) pair — or
          // a complete-graph-only program on another family — expands to no
          // cells, replacing the benches' old hand-maintained exclusion
          // lists. Overrides are judged on the *overridden* scenario: the k
          // override lands first, then an unreachable quorum (q > k), a
          // threshold above 2 on a rally-free program, or k > 2 on a
          // pairwise program prunes the same way. Adjacent-pair placements
          // host exactly two agents, so any other k override prunes too.
          scenario::Scenario scen = scenario::find_scenario(scenario_name);
          if (k.has_value()) {
            if (scen.placement == scenario::PlacementModel::AdjacentPair &&
                *k != 2)
              continue;
            scen.num_agents = static_cast<std::size_t>(*k);
          }
          if (gather.has_value()) scen.gathering = *gather;
          // An unreachable quorum — whether the quorum came from the
          // gather override or the registration and k shrank under it —
          // prunes rather than deterministically failing.
          if (scen.gathering.kind == sim::Gathering::Quorum &&
              scen.gathering.quorum > scen.num_agents)
            continue;
          if (!scenario::compatible(program, scen)) continue;
          for (const auto& topology : spec.topologies) {
            if (program.def().caps.needs_complete_graph &&
                topology.family != "complete")
              continue;
            for (const auto n : spec.sizes) {
              // A graph cannot host more agents than vertices; the cell
              // would deterministically fail placement, so prune it.
              if (k.has_value() && *k > topology.achieved_n(n)) continue;
              for (const auto seed : spec.seeds)
                for (const auto& plan : fault_axis) {
                  // A plan that only perturbs whiteboards cannot touch a
                  // whiteboard-free model; skip the vacuous cell.
                  if (plan.active() && plan.whiteboard_only() &&
                      !program.def().model.whiteboards)
                    continue;
                  SweepCell cell;
                  cell.index = cells.size();
                  cell.program = program;
                  cell.scenario = scenario_name;
                  cell.topology = topology;
                  cell.n = n;
                  cell.achieved_n = topology.achieved_n(n);
                  cell.seed = seed;
                  cell.trials = spec.trials;
                  cell.gather = gather;
                  cell.k = k;
                  cell.fault = plan;
                  cells.push_back(std::move(cell));
                }
            }
          }
        }
  FNR_CHECK_MSG(!cells.empty(),
                "sweep spec '" << spec.name
                               << "': capability masks leave no compatible "
                                  "(program, scenario, topology) cells");
  return cells;
}

sim::Gathering parse_gather(const std::string& token) {
  if (token == "any-pair") return sim::Gathering::AnyPair;
  if (token == "all-meet") return sim::Gathering::All;
  if (const std::string prefix = "quorum?q="; token.rfind(prefix, 0) == 0) {
    const std::uint64_t q =
        parse_uint64(token.substr(prefix.size()), "gather quorum 'q'");
    FNR_CHECK_MSG(q >= 2, "gather token '" << token
                                           << "': a quorum needs q >= 2");
    return sim::Gathering::quorum_of(q);
  }
  if (const std::string prefix = "fraction?f="; token.rfind(prefix, 0) == 0) {
    const double f = parse_finite_double(token.substr(prefix.size()),
                                         "gather fraction 'f'");
    FNR_CHECK_MSG(f > 0.0 && f <= 1.0,
                  "gather token '" << token
                                   << "': fraction must be in (0, 1]");
    return sim::Gathering::fraction_of(f);
  }
  FNR_CHECK_MSG(false, "unknown gather token '"
                           << token
                           << "'; expected any-pair, all-meet, "
                              "quorum?q=<count>, or fraction?f=<share>");
  throw std::logic_error("unreachable");
}

SweepSpec parse_spec(const std::string& text) {
  SweepSpec spec;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    FNR_CHECK_MSG(eq != std::string::npos,
                  "sweep spec line " << line_no << ": expected key = value, "
                                     << "got '" << line << "'");
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "name") {
      FNR_CHECK_MSG(!value.empty(), "sweep spec: empty name");
      spec.name = value;
    } else if (key == "trials") {
      spec.trials = parse_uint64(value, "sweep spec 'trials'");
    } else if (key == "programs") {
      for (const auto& token : split(value, ',')) {
        if (token == "*") {
          for (auto& program : scenario::all_programs())
            spec.programs.push_back(std::move(program));
          continue;
        }
        try {
          spec.programs.push_back(scenario::find_program(token));
        } catch (const CheckError& error) {
          // Re-throw naming the offending spec line; find_program's message
          // already enumerates the valid label set.
          throw CheckError("sweep spec line " + std::to_string(line_no) +
                           ": " + error.what());
        }
      }
    } else if (key == "scenarios") {
      for (const auto& token : split(value, ',')) {
        if (token == "*") {
          for (const auto& scenario : scenario::all_scenarios())
            spec.scenarios.push_back(scenario.name);
          continue;
        }
        if (!scenario::has_scenario(token)) {
          std::ostringstream known;
          for (const auto& scenario : scenario::all_scenarios())
            known << " " << scenario.name;
          throw CheckError("sweep spec line " + std::to_string(line_no) +
                           ": unknown scenario '" + token +
                           "'; known:" + known.str());
        }
        spec.scenarios.push_back(token);
      }
    } else if (key == "topologies") {
      for (const auto& token : split(value, ','))
        spec.topologies.push_back(parse_topology(token));
    } else if (key == "sizes") {
      for (const auto& token : split(value, ','))
        spec.sizes.push_back(parse_uint64(token, "sweep spec 'sizes'"));
    } else if (key == "seeds") {
      for (const auto& token : split(value, ','))
        spec.seeds.push_back(parse_uint64(token, "sweep spec 'seeds'"));
    } else if (key == "agents") {
      for (const auto& token : split(value, ','))
        spec.agents.push_back(parse_uint64(token, "sweep spec 'agents'"));
    } else if (key == "gathers") {
      for (const auto& token : split(value, ',')) {
        try {
          spec.gathers.push_back(parse_gather(token));
        } catch (const CheckError& error) {
          throw CheckError("sweep spec line " + std::to_string(line_no) +
                           ": " + error.what());
        }
      }
    } else if (key == "faults") {
      for (const auto& token : split(value, ',')) {
        try {
          spec.faults.push_back(fault::FaultPlan::parse(token));
        } catch (const CheckError& error) {
          throw CheckError("sweep spec line " + std::to_string(line_no) +
                           ": " + error.what());
        }
      }
    } else {
      FNR_CHECK_MSG(false, "sweep spec line " << line_no
                                              << ": unknown key '" << key
                                              << "'");
    }
  }
  spec.validate();
  return spec;
}

SweepSpec load_spec_file(const std::string& path) {
  std::ifstream in(path);
  FNR_CHECK_MSG(in.good(), "cannot open sweep spec '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_spec(buffer.str());
}

const std::vector<std::pair<std::string, std::string>>& predefined_specs() {
  static const std::vector<std::pair<std::string, std::string>> specs = {
      {"smoke", R"(# Tiny grid for CI interrupt/resume smokes.
name       = smoke
trials     = 3
programs   = whiteboard, random-walk
scenarios  = sync-pair, delayed-pair
topologies = ring, near-regular:deg=4
sizes      = 32, 64
seeds      = 1
)"},
      {"perf-quick", R"(# The perf suite's quick cells as a sweep.
name       = perf-quick
trials     = 8
programs   = whiteboard, whiteboard+doubling, no-whiteboard
scenarios  = sync-pair
topologies = near-regular:deg=12, torus
sizes      = 64
seeds      = 7
)"},
      {"perf-full", R"(# The perf suite's full cells as a sweep.
name       = perf-full
trials     = 256
programs   = whiteboard, whiteboard+doubling, no-whiteboard
scenarios  = sync-pair
topologies = near-regular:deg=64, torus, hypercube, watts-strogatz:k=6:beta=0.1
sizes      = 1024
seeds      = 7
)"},
      {"large-n", R"(# Orders-of-magnitude size sweep: 3 programs x 4 families
# x n in {2^10, 2^14, 2^17}.
name       = large-n
trials     = 4
programs   = whiteboard, whiteboard+doubling, no-whiteboard
scenarios  = sync-pair
topologies = near-regular:deg=16, torus, hypercube, random-geometric
sizes      = 1024, 16384, 131072
seeds      = 1
)"},
      {"registry-smoke", R"(# Every registered program on every compatible
# scenario, one tiny trial each. The wildcard axes resolve against the
# registries at parse time, so a new registration is covered without
# editing this spec; capability masks prune incompatible pairs and keep
# complete-graph programs on the complete family. A cell that fails here
# means a registration that cannot run — CI greps the report for it.
name       = registry-smoke
trials     = 1
programs   = *
scenarios  = *
topologies = near-regular:deg=6, complete
sizes      = 16
seeds      = 1
)"},
      {"fault-smoke", R"(# Every fault family (plus the fault-free control)
# on one whiteboard program, one scenario, one small graph. A cell that
# fails here means a fault family the scheduler cannot absorb — CI greps
# the report for "ok":false and also interrupts/resumes the campaign to
# exercise checkpoint recovery under an active fault axis.
name       = fault-smoke
trials     = 2
programs   = whiteboard
scenarios  = sync-pair
topologies = near-regular:deg=6
sizes      = 32
seeds      = 1
faults     = none, crash?rate=0.05&downtime=4, wb-drop?rate=0.2, wb-wipe?rate=0.05, wb-stale?rate=0.2, churn?rate=0.1
)"},
  };
  return specs;
}

SweepSpec find_spec(const std::string& name_or_path) {
  for (const auto& [name, text] : predefined_specs())
    if (name == name_or_path) return parse_spec(text);
  return load_spec_file(name_or_path);
}

}  // namespace fnr::sweep
