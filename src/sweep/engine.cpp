#include "sweep/engine.hpp"

namespace fnr::sweep {

SweepResult run_sweep(const SweepSpec& spec, const SweepOptions& options) {
  campaign::Campaign run(spec, options);
  return run.run();
}

}  // namespace fnr::sweep
