// Thin Unix-domain socket helpers for the fnrd daemon and its client —
// enough POSIX to run a poll(2) loop, and nothing more (no new
// dependencies; local sockets are all a single-host campaign service
// needs, and they make CI hermetic).
//
// All helpers throw CheckError with the failing path/errno text instead of
// returning -1: a daemon that cannot bind its socket has nothing useful to
// do with the error code except report it.
#pragma once

#include <string>

namespace fnr::net {

/// RAII fd: closes on destruction, moves, never copies. `release()` hands
/// ownership back for APIs that keep raw fds.
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) noexcept : fd_(fd) {}
  OwnedFd(OwnedFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& other) noexcept;
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;
  ~OwnedFd();

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  [[nodiscard]] int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1) noexcept;

 private:
  int fd_ = -1;
};

/// Binds and listens on a Unix-domain socket at `path`, unlinking a stale
/// socket file first. Throws CheckError when the path exceeds sun_path or
/// any syscall fails.
[[nodiscard]] OwnedFd listen_unix(const std::string& path, int backlog = 16);

/// Connects to the Unix-domain socket at `path`.
[[nodiscard]] OwnedFd connect_unix(const std::string& path);

/// Sets O_NONBLOCK on `fd`.
void set_nonblocking(int fd);

/// A self-pipe for waking a poll loop from signal handlers and worker
/// threads: write one byte to `wake`, poll `wait` for readability.
struct Pipe {
  OwnedFd wait;
  OwnedFd wake;
};
[[nodiscard]] Pipe make_pipe();

/// Writes one byte to `fd`, ignoring EAGAIN (the pipe already has a
/// pending wake byte — the loop will wake regardless). Async-signal-safe.
void wake_pipe(int fd) noexcept;

/// Drains all pending bytes from a non-blocking pipe read end.
void drain_pipe(int fd) noexcept;

}  // namespace fnr::net
