// Length-prefixed message framing for the fnrd wire protocol.
//
// A frame is a 4-byte big-endian payload length followed by that many
// payload bytes (JSON text by convention, but framing is payload-agnostic).
// The length prefix makes message boundaries explicit on a byte stream —
// the announce/query/response idiom of classic rendezvous servers — and
// lets the reader reject oversized or zero-length frames *before* buffering
// a hostile payload.
//
// FrameReader and FrameWriter are plain incremental state machines with no
// socket knowledge: feed() accepts whatever recv() returned (any split,
// byte by byte if need be) and flush handles short writes, so both sides
// drop into a poll loop unchanged and unit tests can drive every partial
// read/short write case without a socket. A malformed prefix (zero length,
// or a length above the cap) throws CheckError and poisons the reader —
// framing offers no way to resynchronize a byte stream after a bad length,
// so the connection must be dropped.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace fnr::net {

/// Default cap on one frame's payload (16 MiB) — far above any legitimate
/// spec or report, far below a memory-exhaustion payload.
inline constexpr std::uint32_t kDefaultMaxFrame = 16u << 20;

/// Bytes in the length prefix.
inline constexpr std::size_t kFramePrefixSize = 4;

/// Encodes one frame: big-endian length prefix + payload. Throws
/// CheckError on an empty payload or one above `max_frame`.
[[nodiscard]] std::string encode_frame(const std::string& payload,
                                       std::uint32_t max_frame =
                                           kDefaultMaxFrame);

/// Incremental frame decoder. Feed arbitrary byte chunks; pop complete
/// payloads with next(). Throws CheckError on a zero-length or oversized
/// prefix, after which the reader (and the connection it decodes) is
/// unusable.
class FrameReader {
 public:
  explicit FrameReader(std::uint32_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Appends received bytes to the decode buffer.
  void feed(const char* data, std::size_t size);

  /// Pops the next complete payload into *payload. Returns false when the
  /// buffered bytes do not yet contain a full frame.
  [[nodiscard]] bool next(std::string* payload);

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size();
  }

  /// True when the buffer holds part of a frame (a partial prefix or a
  /// partial payload) — i.e. a peer that disconnects now tore a message.
  [[nodiscard]] bool mid_frame() const noexcept { return !buffer_.empty(); }

 private:
  std::uint32_t max_frame_;
  std::string buffer_;
};

/// Incremental frame encoder with short-write handling: enqueue whole
/// payloads, then flush as far as the sink accepts. The pending byte count
/// is the backpressure signal — a serving loop disconnects a client whose
/// pending bytes exceed its budget.
class FrameWriter {
 public:
  explicit FrameWriter(std::uint32_t max_frame = kDefaultMaxFrame)
      : max_frame_(max_frame) {}

  /// Frames `payload` and appends it to the pending buffer.
  void enqueue(const std::string& payload);

  /// True when no bytes are waiting to be written.
  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }

  /// Bytes framed but not yet accepted by a flush.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return pending_.size();
  }

  /// Writes pending bytes through `write_some(data, size)`, which returns
  /// the byte count accepted (possibly short), 0 to stop without error
  /// (would-block), or -1 on a write error. Returns false only in the
  /// error case; short and zero writes leave the remainder pending.
  using WriteFn = std::function<long(const char* data, std::size_t size)>;
  [[nodiscard]] bool flush_with(const WriteFn& write_some);

  /// flush_with over write(2) on a (typically non-blocking) fd: EAGAIN /
  /// EWOULDBLOCK / EINTR leave bytes pending, any other errno fails.
  [[nodiscard]] bool flush_to_fd(int fd);

 private:
  std::uint32_t max_frame_;
  std::string pending_;
};

}  // namespace fnr::net
