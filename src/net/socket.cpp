#include "net/socket.hpp"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/check.hpp"

namespace fnr::net {

OwnedFd& OwnedFd::operator=(OwnedFd&& other) noexcept {
  if (this != &other) {
    reset(other.fd_);
    other.fd_ = -1;
  }
  return *this;
}

OwnedFd::~OwnedFd() { reset(); }

void OwnedFd::reset(int fd) noexcept {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

namespace {

sockaddr_un unix_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  FNR_CHECK_MSG(path.size() < sizeof(addr.sun_path),
                "unix socket path '" << path << "' exceeds the "
                                     << (sizeof(addr.sun_path) - 1)
                                     << "-byte sun_path limit");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

OwnedFd listen_unix(const std::string& path, int backlog) {
  const sockaddr_un addr = unix_address(path);
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  FNR_CHECK_MSG(fd.valid(),
                "socket(AF_UNIX): " << std::strerror(errno));
  // A stale socket file from a killed daemon would make bind fail with
  // EADDRINUSE even though nobody is listening; remove it first. A *live*
  // daemon is protected by its own lock on the checkpoint workdir, not by
  // the socket file.
  ::unlink(path.c_str());
  FNR_CHECK_MSG(::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                       sizeof(addr)) == 0,
                "bind('" << path << "'): " << std::strerror(errno));
  FNR_CHECK_MSG(::listen(fd.get(), backlog) == 0,
                "listen('" << path << "'): " << std::strerror(errno));
  return fd;
}

OwnedFd connect_unix(const std::string& path) {
  const sockaddr_un addr = unix_address(path);
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  FNR_CHECK_MSG(fd.valid(),
                "socket(AF_UNIX): " << std::strerror(errno));
  FNR_CHECK_MSG(::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                          sizeof(addr)) == 0,
                "connect('" << path << "'): " << std::strerror(errno));
  return fd;
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  FNR_CHECK_MSG(flags >= 0, "fcntl(F_GETFL): " << std::strerror(errno));
  FNR_CHECK_MSG(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
                "fcntl(F_SETFL, O_NONBLOCK): " << std::strerror(errno));
}

Pipe make_pipe() {
  int fds[2] = {-1, -1};
  FNR_CHECK_MSG(::pipe(fds) == 0, "pipe: " << std::strerror(errno));
  Pipe p;
  p.wait.reset(fds[0]);
  p.wake.reset(fds[1]);
  set_nonblocking(p.wait.get());
  set_nonblocking(p.wake.get());
  return p;
}

void wake_pipe(int fd) noexcept {
  const char byte = 1;
  // EAGAIN means the pipe buffer already holds unread wake bytes, which is
  // exactly as good as one more; other errors can only mean shutdown.
  (void)!::write(fd, &byte, 1);
}

void drain_pipe(int fd) noexcept {
  char sink[256];
  while (::read(fd, sink, sizeof(sink)) > 0) {
  }
}

}  // namespace fnr::net
