#include "net/framing.hpp"

#include <cerrno>
#include <cstring>

#include <unistd.h>

#include "util/check.hpp"

namespace fnr::net {

namespace {

std::uint32_t decode_prefix(const char* data) {
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  return (std::uint32_t{bytes[0]} << 24) | (std::uint32_t{bytes[1]} << 16) |
         (std::uint32_t{bytes[2]} << 8) | std::uint32_t{bytes[3]};
}

}  // namespace

std::string encode_frame(const std::string& payload,
                         std::uint32_t max_frame) {
  FNR_CHECK_MSG(!payload.empty(), "frame: refusing to encode empty payload");
  FNR_CHECK_MSG(payload.size() <= max_frame,
                "frame: payload of " << payload.size()
                                     << " bytes exceeds the " << max_frame
                                     << "-byte cap");
  std::string out;
  out.reserve(kFramePrefixSize + payload.size());
  const auto len = static_cast<std::uint32_t>(payload.size());
  out.push_back(static_cast<char>((len >> 24) & 0xFF));
  out.push_back(static_cast<char>((len >> 16) & 0xFF));
  out.push_back(static_cast<char>((len >> 8) & 0xFF));
  out.push_back(static_cast<char>(len & 0xFF));
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

bool FrameReader::next(std::string* payload) {
  if (buffer_.size() < kFramePrefixSize) return false;
  const std::uint32_t len = decode_prefix(buffer_.data());
  // Validate the prefix the moment it is complete — before waiting for (or
  // buffering) a hostile payload.
  FNR_CHECK_MSG(len != 0, "frame: zero-length frame");
  FNR_CHECK_MSG(len <= max_frame_, "frame: declared length "
                                       << len << " exceeds the " << max_frame_
                                       << "-byte cap");
  if (buffer_.size() < kFramePrefixSize + len) return false;
  payload->assign(buffer_, kFramePrefixSize, len);
  buffer_.erase(0, kFramePrefixSize + len);
  return true;
}

void FrameWriter::enqueue(const std::string& payload) {
  pending_ += encode_frame(payload, max_frame_);
}

bool FrameWriter::flush_with(const WriteFn& write_some) {
  while (!pending_.empty()) {
    const long wrote = write_some(pending_.data(), pending_.size());
    if (wrote < 0) return false;
    if (wrote == 0) return true;  // would block: try again on POLLOUT
    pending_.erase(0, static_cast<std::size_t>(wrote));
  }
  return true;
}

bool FrameWriter::flush_to_fd(int fd) {
  return flush_with([fd](const char* data, std::size_t size) -> long {
    const ssize_t wrote = ::write(fd, data, size);
    if (wrote >= 0) return static_cast<long>(wrote);
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return 0;
    return -1;
  });
}

}  // namespace fnr::net
