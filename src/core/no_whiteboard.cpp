#include "core/no_whiteboard.hpp"

#include <algorithm>

#include "util/log.hpp"

namespace fnr::core {

NoWbSchedule NoWbSchedule::make(std::size_t n, graph::VertexId id_bound,
                                double delta, const Params& params) {
  NoWbSchedule s;
  s.t_start = params.construct_round_budget(n, delta);
  s.beta = params.block_width(delta);
  s.num_blocks = (id_bound + s.beta - 1) / s.beta;
  s.block_cap = params.block_cap(n);
  s.a_wait = params.a_wait_rounds(n);
  s.phase_len = params.phase_rounds(n);
  return s;
}

std::vector<std::vector<graph::VertexId>> build_blocks(
    const std::vector<graph::VertexId>& ids, const NoWbSchedule& schedule) {
  std::vector<std::vector<graph::VertexId>> blocks(schedule.num_blocks);
  for (const auto id : ids) {
    const std::uint64_t block = id / schedule.beta;
    FNR_CHECK_MSG(block < schedule.num_blocks,
                  "ID " << id << " outside the agreed ID space");
    blocks[block].push_back(id);
  }
  for (auto& block : blocks) {
    std::sort(block.begin(), block.end());
    if (block.size() > schedule.block_cap) block.resize(schedule.block_cap);
  }
  return blocks;
}

// --- agent a ---------------------------------------------------------------

NoWhiteboardAgentA::NoWhiteboardAgentA(const Params& params, double delta,
                                       Rng rng, NoWbOracle oracle)
    : params_(params), delta_(delta), rng_(rng), oracle_(std::move(oracle)) {
  FNR_CHECK_MSG(delta_ >= 1.0, "Algorithm 4 needs the minimum degree");
}

void NoWhiteboardAgentA::on_idle(const sim::View& view) {
  if (phase_ == Phase::Exhausted) return;

  if (phase_ == Phase::Init) {
    knowledge_.init_home(view.here(), view.neighbor_ids());
    schedule_ = NoWbSchedule::make(view.num_vertices(), view.id_bound(),
                                   delta_, params_);
    if (oracle_.enabled) {
      // Ablation path: adopt the supplied two-hop map as T^a and start the
      // phase schedule immediately.
      for (const auto& [x, nbrs] : oracle_.two_ball)
        (void)knowledge_.absorb_neighborhood(x, nbrs);
      schedule_.t_start = 0;
      stats_.t_set_size = knowledge_.ns_list().size();
      const double p = params_.mark_probability(delta_, view.num_vertices());
      std::vector<graph::VertexId> phi;
      for (const auto v : knowledge_.ns_list())
        if (rng_.bernoulli(p)) phi.push_back(v);
      blocks_ = build_blocks(phi, schedule_);
      for (const auto& block : blocks_) phi_size_ += block.size();
      phase_ = Phase::Tour;
      return;
    }
    construct_ = std::make_unique<ConstructRun>(knowledge_, params_, delta_,
                                                view.num_vertices());
    phase_ = Phase::Construct;
  }

  if (view.here() != knowledge_.home()) {
    if (phase_ == Phase::Construct) {
      construct_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
    } else {
      // Tour arrival at a Φᵃ vertex: sit out the agreed window, then return.
      plan_wait(schedule_.a_wait);
      plan_route(knowledge_.route_to_home(view.here()));
    }
    return;
  }

  if (phase_ == Phase::Construct) {
    drive_construct(view);
    if (phase_ != Phase::Tour) return;  // still travelling for Construct
    plan_wait_until(schedule_.t_start);
    return;
  }

  // Tour, standing at home.
  if (current_block_ >= schedule_.num_blocks) {
    phase_ = Phase::Exhausted;  // schedule spent without a meeting
    return;
  }
  auto& block = blocks_[current_block_];
  if (current_pos_ < block.size()) {
    const graph::VertexId u = block[current_pos_++];
    if (u == knowledge_.home()) {
      plan_wait(schedule_.a_wait);
      return;
    }
    plan_route(knowledge_.route_from_home(u));
    return;  // the sit is planned on arrival
  }
  // Block finished: hold position until the next phase boundary.
  ++current_block_;
  ++stats_.phases_used;
  current_pos_ = 0;
  plan_wait_until(schedule_.t_start + current_block_ * schedule_.phase_len);
}

void NoWhiteboardAgentA::drive_construct(const sim::View& view) {
  while (auto target = construct_->next_target(rng_)) {
    if (*target == view.here()) {
      construct_->on_arrival(view);
      continue;
    }
    plan_route(knowledge_.route_from_home(*target));
    return;
  }
  stats_.construct = construct_->stats();
  stats_.construct.rounds_used = view.round();
  stats_.delta_hat_final = delta_;
  stats_.t_set_size = construct_->t_set().size();
  stats_.t_set_ids = construct_->t_set();
  start_tour(view);
}

void NoWhiteboardAgentA::start_tour(const sim::View& view) {
  FNR_CHECK_MSG(view.round() <= schedule_.t_start,
                "Construct overran its budget t' = " << schedule_.t_start
                                                     << " (round "
                                                     << view.round() << ")");
  const double p = params_.mark_probability(delta_, view.num_vertices());
  std::vector<graph::VertexId> phi;
  for (const auto v : construct_->t_set())
    if (rng_.bernoulli(p)) phi.push_back(v);
  blocks_ = build_blocks(phi, schedule_);
  phi_size_ = 0;
  for (const auto& block : blocks_) phi_size_ += block.size();
  construct_.reset();
  phase_ = Phase::Tour;
  FNR_DEBUG("agent a: |Phi_a|=" << phi_size_ << ", t'=" << schedule_.t_start);
}

std::size_t NoWhiteboardAgentA::memory_words() const {
  // phi_size_ is the block words by construction: blocks_ is only ever
  // rebuilt wholesale (oracle init / start_tour), and both sites re-derive
  // phi_size_ as the sum of the new block sizes. Summing here again would
  // walk num_blocks cache lines per round — this accessor runs every
  // round for the peak-memory metric.
  return sim::ScriptedAgent::memory_words() + knowledge_.memory_words() +
         phi_size_ + (construct_ ? construct_->memory_words() : 0) + 16;
}

// --- agent b ---------------------------------------------------------------

NoWhiteboardAgentB::NoWhiteboardAgentB(const Params& params, double delta,
                                       Rng rng, bool synchronized_start)
    : params_(params),
      delta_(delta),
      rng_(rng),
      synchronized_start_(synchronized_start) {
  FNR_CHECK_MSG(delta_ >= 1.0, "Algorithm 4 needs the minimum degree");
}

void NoWhiteboardAgentB::on_idle(const sim::View& view) {
  if (!init_) {
    home_ = view.here();
    schedule_ = NoWbSchedule::make(view.num_vertices(), view.id_bound(),
                                   delta_, params_);
    const double p = params_.mark_probability(delta_, view.num_vertices());
    std::vector<graph::VertexId> phi;
    if (rng_.bernoulli(p)) phi.push_back(home_);
    for (const auto u : view.neighbor_ids())
      if (rng_.bernoulli(p)) phi.push_back(u);
    if (!synchronized_start_) schedule_.t_start = 0;
    blocks_ = build_blocks(phi, schedule_);
    for (const auto& block : blocks_) phi_size_ += block.size();
    init_ = true;
    plan_wait_until(schedule_.t_start);
    FNR_DEBUG("agent b: |Phi_b|=" << phi_size_ << ", t'="
                                  << schedule_.t_start);
    return;
  }

  if (current_block_ >= schedule_.num_blocks) return;  // schedule spent

  const std::uint64_t phase_end = schedule_.phase_end(current_block_);
  const auto& block = blocks_[current_block_];
  // A visit costs 2 rounds (out + back); don't start one that can't finish.
  if (block.empty() || view.round() + 2 > phase_end) {
    ++current_block_;
    current_pos_ = 0;
    plan_wait_until(phase_end);
    return;
  }
  const graph::VertexId u = block[current_pos_ % block.size()];
  ++current_pos_;
  if (u == home_) {
    plan_wait(1);  // "visiting" home is just standing on it
    return;
  }
  plan_move(u);
  plan_move(home_);
}

std::size_t NoWhiteboardAgentB::memory_words() const {
  // phi_size_ == sum of block sizes (blocks_ is built exactly once, in
  // init, and phi_size_ sums it there); see the AgentA note above.
  return sim::ScriptedAgent::memory_words() + phi_size_ + 16;
}

}  // namespace fnr::core
