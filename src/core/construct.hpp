// Algorithm 3 — Construct: building the (a, δ/8, 2)-dense set Tᵃ.
//
// Agent a grows Sᵃ ⊆ N+(v₀ᵃ) one vertex per iteration. Each iteration:
//   1. optimistic run: Sample over the *new* part of N+(Sᵃ) only, merging
//      the discovered heavy vertices into H and shrinking R = N+(v₀ᵃ)\H;
//   2. direct probes: ⌈4 log n⌉ uniform candidates from R are visited and
//      their |N+(Sᵃ) ∩ N+(u)| computed exactly; a (δ/2)-light one becomes
//      the next xᵢ;
//   3. strict run (only if every probe was heavy): Sample over all of
//      N+(Sᵃ)), after which any surviving member of R is taken as xᵢ.
// When R empties, T^a = N+(Sᵃ) satisfies the (a, δ/8, 2)-dense condition
// w.h.p. (Lemmas 3-8).
//
// ConstructRun is driven like SampleRun: next_target()/on_arrival(). All
// navigation (home→target→home) is the owning agent's job.
//
// One defensive deviation from the pseudocode: members already adopted into
// Sᵃ are excluded from R. The paper re-derives R = N+(v₀ᵃ)\H each update,
// which can transiently re-admit an adopted vertex after a failed Sample
// classification (probability polynomially small); excluding them changes
// no analyzed behaviour but makes termination unconditional.
#pragma once

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "core/knowledge.hpp"
#include "core/params.hpp"
#include "core/sample.hpp"
#include "sim/view.hpp"
#include "util/rng.hpp"

namespace fnr::core {

/// Counters reported by the Construct experiments (E3).
struct ConstructStats {
  std::uint64_t iterations = 0;       ///< vertices adopted into Sᵃ
  std::uint64_t optimistic_runs = 0;  ///< Sample calls on a difference set
  std::uint64_t strict_runs = 0;      ///< Sample calls on all of N+(Sᵃ)
  std::uint64_t sample_visits = 0;    ///< total Sample target visits
  std::uint64_t probe_visits = 0;     ///< direct lightness probes
  std::uint64_t rounds_used = 0;      ///< filled in by the agent
};

class ConstructRun {
 public:
  /// `knowledge` must already hold N+(home); delta_hat is the (estimated)
  /// minimum degree used for all thresholds.
  ConstructRun(Knowledge& knowledge, const Params& params, double delta_hat,
               std::size_t n);

  /// Next vertex agent a must visit, or nullopt when T^a is complete.
  /// Performs all zero-round bookkeeping transitions internally.
  [[nodiscard]] std::optional<graph::VertexId> next_target(Rng& rng);

  /// Report arrival at the previously requested target.
  void on_arrival(const sim::View& view);

  [[nodiscard]] bool done() const noexcept { return stage_ == Stage::Done; }

  /// T^a = N+(Sᵃ) (valid once done()). Lives in Knowledge::ns_list.
  [[nodiscard]] const std::vector<graph::VertexId>& t_set() const {
    FNR_CHECK_MSG(done(), "T^a requested before Construct finished");
    return knowledge_.ns_list();
  }

  [[nodiscard]] const ConstructStats& stats() const noexcept { return stats_; }
  [[nodiscard]] double delta_hat() const noexcept { return delta_hat_; }

  [[nodiscard]] std::size_t memory_words() const noexcept;

 private:
  enum class Stage { Sampling, Probing, Done };
  enum class Pending { None, SampleVisit, ProbeVisit, AdoptVisit };

  void start_sample(std::vector<graph::VertexId> gamma, bool strict);
  void finish_sample();
  /// Adopt the vertex we are standing on as xᵢ (records its neighborhood).
  void adopt(const sim::View& view);
  void rebuild_r();

  Knowledge& knowledge_;
  Params params_;
  double delta_hat_;
  std::size_t n_;

  Stage stage_ = Stage::Sampling;
  Pending pending_ = Pending::None;
  bool current_sample_strict_ = false;

  std::unique_ptr<SampleRun> sample_;
  // Zeroed counter buffer shuttled between consecutive SampleRuns so each
  // run reuses (not re-fills) the previous run's allocation.
  std::vector<std::uint64_t> counts_scratch_;
  // Overlap slices lent to every SampleRun of this Construct: the home
  // neighborhood never changes, so a target scanned by one run need never
  // be re-scanned by a later (notably strict) run.
  OverlapMemo overlap_memo_;
  std::unordered_set<graph::VertexId> heavy_;    // H
  std::unordered_set<graph::VertexId> adopted_;  // Sᵃ \ {home}
  std::vector<graph::VertexId> r_;               // R, rebuilt after updates
  std::uint64_t probes_left_ = 0;
  graph::VertexId probe_target_ = 0;
  std::optional<graph::VertexId> adopt_target_;  // strict-run xᵢ to visit
  std::vector<graph::VertexId> gamma_next_;      // Γ for the next iteration

  ConstructStats stats_;
};

}  // namespace fnr::core
