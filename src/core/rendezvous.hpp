// Public entry point: run one neighborhood-rendezvous instance end to end.
//
// Picks the agent pair for the requested strategy, wires up the scheduler
// with the right Model, enforces the strategy's standing assumptions
// (whiteboards, tight naming, known δ), and returns the run result together
// with algorithm-level statistics.
#pragma once

#include <cstdint>
#include <string>

#include "core/main_rendezvous.hpp"
#include "core/params.hpp"
#include "graph/graph.hpp"
#include "runner/trial_runner.hpp"
#include "sim/scheduler.hpp"

namespace fnr::core {

enum class Strategy {
  Whiteboard,          ///< Theorem 1 (agents know δ)
  WhiteboardDoubling,  ///< Theorem 1 + §4.1 (δ estimated by doubling)
  NoWhiteboard,        ///< Theorem 2 (tight naming, known δ, no whiteboards)
};

[[nodiscard]] const char* to_string(Strategy strategy) noexcept;

struct RendezvousOptions {
  Strategy strategy = Strategy::Whiteboard;
  Params params = Params::practical();
  /// Seed for both agents' private randomness (streams are split).
  std::uint64_t seed = 1;
  /// 0 → an automatically derived generous cap (see auto_round_cap).
  std::uint64_t max_rounds = 0;
};

struct RendezvousReport {
  sim::RunResult run;
  AgentAStats agent_a;
  std::uint64_t agent_b_marks = 0;  ///< whiteboard strategies only
  double delta_used = 0.0;          ///< δ handed to (or estimated by) agents
  std::uint64_t round_cap = 0;

  [[nodiscard]] std::string describe() const;
};

/// Generous failure cap for the given strategy on this graph.
[[nodiscard]] std::uint64_t auto_round_cap(const graph::Graph& g,
                                           Strategy strategy,
                                           const Params& params);

/// Runs one instance. Placement must be two distinct vertices; the upper
/// bounds assume distance 1 (checked). Throws CheckError when the graph /
/// model cannot satisfy the strategy's assumptions.
[[nodiscard]] RendezvousReport run_rendezvous(const graph::Graph& g,
                                              sim::Placement placement,
                                              const RendezvousOptions& options);

/// Same, executing on the caller's scheduler scratch: batch loops pass one
/// scratch per worker so every trial after the first reuses a warm arena
/// (zero scheduler-side heap allocation; see docs/PERFORMANCE.md). Results
/// are bit-identical to the scratch-free overload.
[[nodiscard]] RendezvousReport run_rendezvous(const graph::Graph& g,
                                              sim::Placement placement,
                                              const RendezvousOptions& options,
                                              sim::SchedulerScratch& scratch);

/// Batch entry point: runs `n_trials` independent instances of `strategy`
/// through the parallel TrialRunner. Each trial t derives its own RNG stream
/// from (options.seed, t) — the seed split makes the aggregate bit-identical
/// no matter how many threads execute the batch — and draws a fresh uniform
/// adjacent placement from that stream. options.strategy is overridden by
/// the explicit `strategy` argument.
[[nodiscard]] runner::TrialAccumulator run_trials(
    Strategy strategy, const graph::Graph& g,
    const RendezvousOptions& options, std::uint64_t n_trials,
    unsigned threads = 0);

/// Same batch, executed on a caller-provided runner (reuse one pool across
/// cells and keep any reporting about it accurate).
[[nodiscard]] runner::TrialAccumulator run_trials(
    Strategy strategy, const graph::Graph& g,
    const RendezvousOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner);

/// Same batch again, executed `batch_size` trials at a time on the
/// lock-step SoA kernel (sim::BatchScheduler) instead of one scalar
/// Scheduler run per trial. Every trial still derives its streams from
/// (options.seed, t) exactly as the scalar path does, and the kernel is
/// bit-exact against it, so the returned accumulator aggregates
/// byte-identically to run_trials — the batch is purely a throughput
/// lever. batch_size <= 1 falls back to the scalar path.
[[nodiscard]] runner::TrialAccumulator run_trials_batched(
    Strategy strategy, const graph::Graph& g,
    const RendezvousOptions& options, std::uint64_t n_trials,
    const runner::TrialRunner& trial_runner, std::uint64_t batch_size);

}  // namespace fnr::core
