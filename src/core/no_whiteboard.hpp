// Algorithm 4 — Rendezvous-without-Whiteboards (§4.2, Theorem 2).
//
// Requires tight naming (n' = O(n)) and known δ. Agent a runs Construct,
// then both agents synchronize at round t' (a deterministic bound on
// Construct's running time that both compute from n, δ and the Params).
// Each agent keeps a random subset of candidate vertices:
//   Φᵃ ⊆ Tᵃ,  Φᵇ ⊆ N+(v₀ᵇ),  each kept with probability ~4 ln n/√δ.
// The ID space [0, n') is cut into blocks of width β = ⌈√δ⌉. In phase i,
// agent a sits on each of its Φᵃ vertices with IDs in block i long enough
// for b to complete a full marking pass, while b cycles through its Φᵇ
// vertices in block i. Intersection + sparseness of the Φ sets (proved in
// Theorem 2) guarantee a co-location in the block containing a common
// member.
//
// Implementation notes (documented deviations):
//  * per-block participation is truncated to the sparseness cap c₂·ln n;
//    overflow would break the agreed slot arithmetic (the analysis shows
//    overflow happens with probability O(1/n²));
//  * a's per-vertex sit time is two full b-passes plus slack, making the
//    "b completes a pass inside a's window" argument hold for any phase
//    alignment without the paper's looser constant bookkeeping.
#pragma once

#include <memory>
#include <vector>

#include "core/construct.hpp"
#include "core/knowledge.hpp"
#include "core/main_rendezvous.hpp"  // AgentAStats
#include "core/params.hpp"
#include "sim/scripted_agent.hpp"
#include "util/rng.hpp"

namespace fnr::core {

/// Shared schedule arithmetic — both agents must agree on every number here,
/// computed only from (n, n', δ, params).
struct NoWbSchedule {
  std::uint64_t t_start = 0;      ///< t' — first round of phase 0
  std::uint64_t beta = 1;         ///< block width
  std::uint64_t num_blocks = 1;   ///< ⌈n'/β⌉
  std::uint64_t block_cap = 1;    ///< max kept vertices per block
  std::uint64_t a_wait = 1;       ///< a's sit time per vertex
  std::uint64_t phase_len = 1;    ///< rounds per phase

  [[nodiscard]] static NoWbSchedule make(std::size_t n,
                                         graph::VertexId id_bound,
                                         double delta, const Params& params);
  [[nodiscard]] std::uint64_t phase_end(std::uint64_t block) const noexcept {
    return t_start + (block + 1) * phase_len;
  }
  [[nodiscard]] std::uint64_t total_rounds() const noexcept {
    return t_start + num_blocks * phase_len;
  }
};

/// Groups `ids` into the schedule's ID blocks: ascending within a block,
/// truncated to block_cap (sparseness).
[[nodiscard]] std::vector<std::vector<graph::VertexId>> build_blocks(
    const std::vector<graph::VertexId>& ids, const NoWbSchedule& schedule);

/// Ablation hook (benches/tests): start the phase schedule immediately from
/// a pre-supplied two-hop map instead of running Construct first. Isolates
/// the phase mechanism whose (n/√δ)·log²n cost Theorem 2 bounds — in full
/// end-to-end runs the agents usually stumble into each other during
/// Construct long before the schedule begins.
struct NoWbOracle {
  /// For each x ∈ N(home): the IDs of N+(x) (defines T^a and the routes).
  std::vector<std::pair<graph::VertexId, std::vector<graph::VertexId>>>
      two_ball;
  bool enabled = false;
};

class NoWhiteboardAgentA final : public sim::ScriptedAgent {
 public:
  NoWhiteboardAgentA(const Params& params, double delta, Rng rng,
                     NoWbOracle oracle = {});

  [[nodiscard]] const AgentAStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const NoWbSchedule& schedule() const noexcept {
    return schedule_;
  }
  /// |Φᵃ| (after truncation; for the intersection experiments).
  [[nodiscard]] std::size_t phi_size() const noexcept { return phi_size_; }
  [[nodiscard]] std::size_t memory_words() const override;

 protected:
  void on_idle(const sim::View& view) override;

 private:
  enum class Phase { Init, Construct, Tour, Exhausted };

  void drive_construct(const sim::View& view);
  void start_tour(const sim::View& view);

  Params params_;
  double delta_;
  Rng rng_;
  NoWbOracle oracle_;

  Phase phase_ = Phase::Init;
  Knowledge knowledge_;
  std::unique_ptr<ConstructRun> construct_;
  NoWbSchedule schedule_;
  std::vector<std::vector<graph::VertexId>> blocks_;
  std::size_t phi_size_ = 0;
  std::uint64_t current_block_ = 0;
  std::size_t current_pos_ = 0;
  AgentAStats stats_;
};

class NoWhiteboardAgentB final : public sim::ScriptedAgent {
 public:
  /// `synchronized_start` true keeps the paper's t' wait; false (the oracle
  /// ablation) starts the phase schedule at round 0.
  NoWhiteboardAgentB(const Params& params, double delta, Rng rng,
                     bool synchronized_start = true);

  [[nodiscard]] std::size_t phi_size() const noexcept { return phi_size_; }
  [[nodiscard]] std::size_t memory_words() const override;

 protected:
  void on_idle(const sim::View& view) override;

 private:
  Params params_;
  double delta_;
  Rng rng_;
  bool synchronized_start_;

  bool init_ = false;
  graph::VertexId home_ = 0;
  NoWbSchedule schedule_;
  std::vector<std::vector<graph::VertexId>> blocks_;
  std::size_t phi_size_ = 0;
  std::uint64_t current_block_ = 0;
  std::size_t current_pos_ = 0;
};

}  // namespace fnr::core
