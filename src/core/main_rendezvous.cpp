#include "core/main_rendezvous.hpp"

#include <algorithm>
#include <cmath>

#include "util/log.hpp"

namespace fnr::core {

WhiteboardAgentA::WhiteboardAgentA(const Params& params, double known_delta,
                                   Rng rng)
    : params_(params), known_delta_(known_delta), rng_(rng) {}

void WhiteboardAgentA::on_idle(const sim::View& view) {
  if (phase_ == Phase::Sit) return;  // camped on v₀ᵇ, waiting for b

  if (phase_ == Phase::Init) {
    knowledge_.init_home(view.here(), view.neighbor_ids());
    delta_hat_ = known_delta_ > 0
                     ? known_delta_
                     : std::max(1.0, std::floor(
                                         static_cast<double>(view.degree()) /
                                         2.0));
    construct_ = std::make_unique<ConstructRun>(knowledge_, params_,
                                                delta_hat_, view.num_vertices());
    phase_ = Phase::Construct;
  }

  // §4.1 doubling: seeing any vertex of degree < δ' halves the estimate and
  // restarts the construction (agent b is oblivious and needs no restart).
  if (known_delta_ <= 0 && phase_ == Phase::Construct &&
      static_cast<double>(view.degree()) < delta_hat_) {
    while (delta_hat_ > 1.0 &&
           static_cast<double>(view.degree()) < delta_hat_)
      delta_hat_ /= 2.0;
    restart_pending_ = true;
    ++stats_.doubling_restarts;
  }

  if (view.here() != knowledge_.home()) {
    // Arrival at a planned target.
    if (phase_ == Phase::Construct) {
      if (!restart_pending_) construct_->on_arrival(view);
      plan_route(knowledge_.route_to_home(view.here()));
    } else if (phase_ == Phase::Main) {
      if (!check_mark(view)) {
        plan_route(knowledge_.route_to_home(view.here()));
      }
    }
    return;
  }

  // At home.
  if (restart_pending_) {
    knowledge_.reset_coverage();
    construct_ = std::make_unique<ConstructRun>(knowledge_, params_,
                                                delta_hat_, view.num_vertices());
    restart_pending_ = false;
  }

  if (phase_ == Phase::Construct) drive_construct(view);

  if (phase_ == Phase::Main) {
    if (check_mark(view)) return;
    const graph::VertexId v = t_set_[rng_.below(t_set_.size())];
    ++stats_.main_probes;
    if (v == knowledge_.home()) {
      plan_wait(1);  // board here was just checked; burn the sampling round
      return;
    }
    plan_route(knowledge_.route_from_home(v));
  }
}

void WhiteboardAgentA::drive_construct(const sim::View& view) {
  while (auto target = construct_->next_target(rng_)) {
    if (*target == view.here()) {
      // Self-visits are free: the agent is already standing here.
      construct_->on_arrival(view);
      continue;
    }
    plan_route(knowledge_.route_from_home(*target));
    return;
  }
  // Construct finished: T^a = N+(Sᵃ).
  stats_.construct = construct_->stats();
  stats_.construct.rounds_used = view.round();
  stats_.delta_hat_final = delta_hat_;
  t_set_ = construct_->t_set();
  stats_.t_set_size = t_set_.size();
  stats_.t_set_ids = t_set_;
  construct_.reset();
  phase_ = Phase::Main;
  FNR_DEBUG("agent a: T^a ready, |T^a|=" << t_set_.size() << " at round "
                                         << view.round());
}

bool WhiteboardAgentA::check_mark(const sim::View& view) {
  const auto mark = view.whiteboard();
  if (!mark.has_value()) return false;
  const graph::VertexId b_home = *mark;
  // In the paper's instance class b only ever writes v₀ᵇ, which is adjacent
  // to home (initial distance 1). k-agent and delayed-start scenarios can
  // surface a mark from an agent whose home is NOT in our neighborhood;
  // there is no known route to it, so skip the mark and keep probing.
  if (!knowledge_.in_home_closed(b_home) || b_home == knowledge_.home()) {
    ++stats_.foreign_marks;
    return false;
  }
  stats_.found_mark = true;
  plan_route(knowledge_.route_to_home(view.here()));
  plan_move(b_home);
  phase_ = Phase::Sit;
  FNR_DEBUG("agent a: found mark for " << b_home << " at round "
                                       << view.round());
  return true;
}

std::size_t WhiteboardAgentA::memory_words() const {
  return sim::ScriptedAgent::memory_words() + knowledge_.memory_words() +
         t_set_.size() + (construct_ ? construct_->memory_words() : 0) + 8;
}

sim::Action WhiteboardAgentB::step(const sim::View& view) {
  if (!init_) {
    home_ = view.here();
    home_degree_ = view.degree();
    init_ = true;
  }
  if (view.here() == home_) {
    // Uniform u ∈ N+(home): index home_degree_ encodes u = home itself.
    const std::uint64_t pick = rng_.below(home_degree_ + 1);
    if (pick == home_degree_) {
      sim::Action action = sim::Action::stay();
      action.whiteboard_write = home_;
      ++marks_;
      return action;
    }
    return sim::Action::move(pick);
  }
  // At the chosen neighbor: leave the mark and head straight home.
  sim::Action action;
  action.whiteboard_write = home_;
  action.move_port = view.port_of(home_);
  ++marks_;
  return action;
}

}  // namespace fnr::core
