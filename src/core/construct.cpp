#include "core/construct.hpp"

#include <algorithm>

namespace fnr::core {

ConstructRun::ConstructRun(Knowledge& knowledge, const Params& params,
                           double delta_hat, std::size_t n)
    : knowledge_(knowledge), params_(params), delta_hat_(delta_hat), n_(n) {
  FNR_CHECK_MSG(delta_hat_ >= 1.0, "delta_hat must be >= 1");
  // S¹ = {v₀ᵃ}: the home vertex is adopted from the start and never a
  // candidate.
  adopted_.insert(knowledge_.home());
  rebuild_r();
  // Γ¹ = N+(S¹) \ N+(S⁰) = N+(v₀ᵃ), which is NS at initialization time.
  // (With the optimistic decision ablated the first run is already the
  // full strict sample — identical here since NS = N+(v₀ᵃ).)
  start_sample(knowledge_.ns_list(),
               /*strict=*/!params_.optimistic_decision);
  if (params_.optimistic_decision)
    stats_.optimistic_runs = 1;
  else
    stats_.strict_runs = 1;
}

void ConstructRun::start_sample(std::vector<graph::VertexId> gamma,
                                bool strict) {
  current_sample_strict_ = strict;
  const double alpha = delta_hat_ / params_.heavy_divisor;
  sample_ = std::make_unique<SampleRun>(std::move(gamma), alpha, n_, params_,
                                        &overlap_memo_);
  sample_->adopt_scratch(std::move(counts_scratch_));
  stage_ = Stage::Sampling;
}

std::optional<graph::VertexId> ConstructRun::next_target(Rng& rng) {
  while (true) {
    if (adopt_target_.has_value()) {
      pending_ = Pending::AdoptVisit;
      return *adopt_target_;
    }
    switch (stage_) {
      case Stage::Sampling: {
        if (auto target = sample_->next_target(rng)) {
          pending_ = Pending::SampleVisit;
          ++stats_.sample_visits;
          return target;
        }
        finish_sample();
        break;
      }
      case Stage::Probing: {
        if (r_.empty()) {  // defensive; R is checked on entry
          stage_ = Stage::Done;
          break;
        }
        if (probes_left_ > 0) {
          --probes_left_;
          probe_target_ = r_[rng.below(r_.size())];
          pending_ = Pending::ProbeVisit;
          ++stats_.probe_visits;
          return probe_target_;
        }
        // Every probe came back heavy: strict decision over all of N+(Sᵃ).
        ++stats_.strict_runs;
        start_sample(knowledge_.ns_list(), /*strict=*/true);
        break;
      }
      case Stage::Done:
        return std::nullopt;
    }
  }
}

void ConstructRun::finish_sample() {
  for (const auto u : sample_->heavy_output(knowledge_)) heavy_.insert(u);
  const bool was_strict = current_sample_strict_;
  counts_scratch_ = sample_->release_scratch();
  sample_.reset();
  rebuild_r();
  if (r_.empty()) {
    stage_ = Stage::Done;
    return;
  }
  if (was_strict) {
    // "choose any vertex x_i ∈ R_{i+1}": it must still be visited so its
    // neighborhood can be recorded.
    adopt_target_ = r_.front();
    return;  // handled at the top of next_target
  }
  probes_left_ = params_.construct_probes(n_);
  stage_ = Stage::Probing;
}

void ConstructRun::on_arrival(const sim::View& view) {
  switch (pending_) {
    case Pending::SampleVisit:
      FNR_CHECK(sample_ != nullptr);
      sample_->record_visit(view, knowledge_);
      break;
    case Pending::ProbeVisit: {
      FNR_CHECK_MSG(view.here() == probe_target_,
                    "arrived at " << view.here() << " instead of probe target "
                                  << probe_target_);
      // Exact lightness check: |N+(Sᵃ) ∩ N+(u)| against δ/2, computed from
      // the stored NS and the neighborhood visible at u.
      std::uint64_t overlap = knowledge_.in_ns(view.here()) ? 1 : 0;
      for (const auto w : view.neighbor_ids())
        if (knowledge_.in_ns(w)) ++overlap;
      if (static_cast<double>(overlap) <
          delta_hat_ / params_.light_divisor) {
        adopt(view);
      }
      break;
    }
    case Pending::AdoptVisit:
      FNR_CHECK(adopt_target_.has_value() && view.here() == *adopt_target_);
      adopt_target_.reset();
      adopt(view);
      break;
    case Pending::None:
      FNR_CHECK_MSG(false, "on_arrival without a pending visit");
  }
  pending_ = Pending::None;
}

void ConstructRun::adopt(const sim::View& view) {
  const graph::VertexId x = view.here();
  FNR_ASSERT(knowledge_.in_home_closed(x));
  adopted_.insert(x);
  ++stats_.iterations;
  gamma_next_ = knowledge_.absorb_neighborhood(x, view.neighbor_ids());
  rebuild_r();
  probes_left_ = 0;
  if (params_.optimistic_decision) {
    ++stats_.optimistic_runs;
    start_sample(std::move(gamma_next_), /*strict=*/false);
  } else {
    // Ablation: re-sample the whole of N+(Sᵃ) every iteration.
    ++stats_.strict_runs;
    start_sample(knowledge_.ns_list(), /*strict=*/true);
  }
  gamma_next_.clear();
}

void ConstructRun::rebuild_r() {
  r_.clear();
  auto consider = [&](graph::VertexId u) {
    if (!heavy_.contains(u) && !adopted_.contains(u)) r_.push_back(u);
  };
  consider(knowledge_.home());
  for (const auto u : knowledge_.home_neighbors()) consider(u);
}

std::size_t ConstructRun::memory_words() const noexcept {
  return r_.size() + heavy_.size() + adopted_.size() + gamma_next_.size() +
         (sample_ ? sample_->memory_words() : 0) + knowledge_.memory_words();
}

}  // namespace fnr::core
