#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace fnr::core {

namespace {
[[nodiscard]] double ln(std::size_t n) {
  return std::log(std::max<std::size_t>(n, 2));
}
[[nodiscard]] double log2n(std::size_t n) {
  return std::log2(std::max<std::size_t>(n, 2));
}
}  // namespace

Params Params::paper() { return Params{}; }

Params Params::practical() {
  Params p;
  p.sample_visit_factor = 8.0;
  // Light expectation <= 8 ln n + 1, 4α-heavy expectation >= 32 ln n; the
  // threshold 16 ln n keeps a 2x Chernoff margin on both sides.
  p.sample_threshold_factor = 16.0;
  p.probe_factor = 2.0;
  p.mark_factor = 1.5;
  p.c2 = 4.0;
  p.c1 = 1.5;
  return p;
}

std::string Params::describe() const {
  std::ostringstream os;
  os << "Params(sample=" << sample_visit_factor
     << ", threshold=" << sample_threshold_factor << ", probes=" << probe_factor
     << ", mark=" << mark_factor << ", c2=" << c2 << ", c1=" << c1 << ")";
  return os.str();
}

std::uint64_t Params::sample_visits(std::size_t gamma_size, double alpha,
                                    std::size_t n) const {
  FNR_CHECK_MSG(alpha > 0, "Sample needs alpha > 0");
  if (gamma_size == 0) return 0;
  const double visits =
      sample_visit_factor * static_cast<double>(gamma_size) * ln(n) / alpha;
  return static_cast<std::uint64_t>(std::ceil(std::max(visits, 1.0)));
}

std::uint64_t Params::sample_threshold(std::size_t n) const {
  return static_cast<std::uint64_t>(std::ceil(sample_threshold_factor * ln(n)));
}

std::uint64_t Params::construct_probes(std::size_t n) const {
  return static_cast<std::uint64_t>(
      std::ceil(std::max(probe_factor * log2n(n), 1.0)));
}

double Params::mark_probability(double delta, std::size_t n) const {
  FNR_CHECK(delta >= 1);
  return std::min(1.0, mark_factor * ln(n) / std::sqrt(delta));
}

std::uint64_t Params::block_width(double delta) const {
  FNR_CHECK(delta >= 1);
  return static_cast<std::uint64_t>(std::ceil(std::sqrt(delta)));
}

std::uint64_t Params::block_cap(std::size_t n) const {
  return static_cast<std::uint64_t>(std::ceil(c2 * ln(n)));
}

std::uint64_t Params::b_pass_rounds(std::size_t n) const {
  // b spends 2 rounds per marked vertex (out and back).
  return 2 * block_cap(n);
}

std::uint64_t Params::a_wait_rounds(std::size_t n) const {
  // Any window of this length contains at least one complete b-pass.
  return 2 * b_pass_rounds(n) + 4;
}

std::uint64_t Params::phase_rounds(std::size_t n) const {
  // Per vertex: <=4 travel rounds plus the sit; plus 4 rounds of slack for
  // the return home at block end.
  return block_cap(n) * (a_wait_rounds(n) + 4) + 4;
}

std::uint64_t Params::construct_round_budget(std::size_t n,
                                             double delta) const {
  FNR_CHECK(delta >= 1);
  const double nd = static_cast<double>(n) / delta;
  // Visits: optimistic passes cover each of <= n+Δ vertices once in total;
  // strict runs repeat <= log2 n + 1 times over <= n vertices. Each visit
  // costs <= 4 rounds (out <= 2, back <= 2); probes cost <= 4 rounds each.
  const double visit_rounds = 4.0 * sample_visit_factor * heavy_divisor * nd *
                              ln(n) * (log2n(n) + 2.0);
  const double probe_rounds =
      4.0 * probe_factor * log2n(n) * (2.0 * nd + 2.0);
  const double budget = c1 * (visit_rounds + probe_rounds) + 64.0;
  return static_cast<std::uint64_t>(std::ceil(budget));
}

double theorem1_bound(std::size_t n, double delta, double max_degree) {
  FNR_CHECK(delta >= 1);
  const double nn = static_cast<double>(n);
  return nn / delta * ln(n) * ln(n) +
         std::sqrt(nn * max_degree) / delta * ln(n);
}

double theorem2_bound(std::size_t n, double delta) {
  FNR_CHECK(delta >= 1);
  const double nn = static_cast<double>(n);
  return nn / std::sqrt(delta) * ln(n) * ln(n);
}

}  // namespace fnr::core
