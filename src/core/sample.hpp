// Algorithm 2 — Sample(Γ, α).
//
// Probabilistically classifies every u ∈ N+(v₀ᵃ) as α-heavy or (4α-)light
// for a target set Γ by visiting ceil(f·|Γ|·ln n/α) vertices of Γ chosen
// uniformly with replacement and counting, for each u, how many visited
// vertices contain u in their closed neighborhood. Vertices whose counter
// reaches the threshold l are output as heavy (Lemma 2 / Corollary 1).
//
// SampleRun is a passive state object: the owning agent asks next_target()
// where to go and reports the view upon arrival via record_visit().
#pragma once

#include <optional>
#include <vector>

#include "core/knowledge.hpp"
#include "core/params.hpp"
#include "sim/view.hpp"
#include "util/rng.hpp"

namespace fnr::core {

/// Memoized N+(target) ∩ N+(home) slices, keyed by target ID. The home
/// neighborhood is fixed for an agent's whole lifetime and the graph is
/// immutable, so a target's intersection slice — content and scan order —
/// is identical every time it is scanned, across all SampleRuns of one
/// Construct. The owner (ConstructRun) keeps one memo per trial and lends
/// it to each run, so a strict re-sample of N+(Sᵃ) replays recorded
/// slices (a handful of entries on dense graphs) instead of re-scanning
/// degree-wide neighborhoods. Implementation shorthand for re-reading the
/// neighborhood from the world, like the flat counter table: not charged
/// to memory_words.
struct OverlapMemo {
  static constexpr std::uint32_t kUnscanned = ~std::uint32_t{0};
  std::vector<std::uint32_t> start;  ///< by target ID; kUnscanned = no slice
  std::vector<std::uint32_t> len;    ///< slice length, valid when scanned
  std::vector<graph::VertexId> pool; ///< concatenated slices, scan order
};

class SampleRun {
 public:
  /// `gamma` is sampled by index; the caller guarantees every member is
  /// reachable (gamma ⊆ NS). alpha > 0. `memo` (optional) carries overlap
  /// slices across the runs of one trial; when null the run keeps its own.
  SampleRun(std::vector<graph::VertexId> gamma, double alpha, std::size_t n,
            const Params& params, OverlapMemo* memo = nullptr);

  /// Next vertex to visit, or nullopt once the visit budget is spent.
  [[nodiscard]] std::optional<graph::VertexId> next_target(Rng& rng);

  /// Report arrival at the last requested target: increments C[u] for every
  /// u ∈ N+(target) ∩ N+(home). The per-u bumps are deferred: the first
  /// visit to a target scans its neighborhood once into the memo (or
  /// replays the slice a previous run already recorded); repeat visits
  /// (targets are drawn with replacement) just count, and heavy_output()
  /// settles the counters. Observable state (counters, touched order,
  /// memory charge over time) is bit-identical to bumping eagerly on every
  /// visit.
  void record_visit(const sim::View& view, const Knowledge& knowledge);

  /// H' — members of N+(home) whose counter reached the threshold.
  /// Meaningful once next_target() has returned nullopt (the first call
  /// settles the deferred visit counts into the per-u counters).
  [[nodiscard]] std::vector<graph::VertexId> heavy_output(
      const Knowledge& knowledge);

  [[nodiscard]] std::uint64_t visits_planned() const noexcept {
    return visits_total_;
  }
  [[nodiscard]] std::uint64_t visits_done() const noexcept {
    return visits_done_;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return gamma_.empty() || visits_done_ == visits_total_;
  }

  [[nodiscard]] std::size_t memory_words() const noexcept {
    return gamma_.size() + 2 * touched_.size();
  }

  /// Takes over a counter buffer released by a finished run (all zeros).
  /// Purely a reuse optimization: behaviour is identical either way.
  void adopt_scratch(std::vector<std::uint64_t>&& scratch) noexcept {
    counts_ = std::move(scratch);
  }

  /// Returns the counter buffer, zeroed, for the next run to adopt.
  [[nodiscard]] std::vector<std::uint64_t> release_scratch() noexcept {
    for (const auto u : touched_) counts_[u] = 0;
    touched_.clear();
    return std::move(counts_);
  }

 private:
  std::vector<graph::VertexId> gamma_;
  std::uint64_t visits_total_ = 0;
  std::uint64_t visits_done_ = 0;
  std::uint64_t threshold_ = 0;
  // Counter table, flat-indexed by vertex ID: record_visit is the hottest
  // loop of the whole simulation (one bump per neighbor per visit), so the
  // per-u counter must be a direct array access, not a hash probe. Only IDs
  // in N+(home) ever get a nonzero counter; touched_ lists them (first-bump
  // order) so heavy_output and the memory charge stay proportional to the
  // counted set, exactly as with the former hash map.
  //
  // During the run a counted ID holds a provisional 1 (the "seen" marker
  // that keeps touched_ growing in eager-bump order); the deferred visit
  // totals are added — and the marker removed — when heavy_output settles.
  std::vector<std::uint64_t> counts_;
  std::vector<graph::VertexId> touched_;
  // Deferred-visit bookkeeping: visit_counts_ (indexed like gamma_) says
  // how often each target was visited; the memo holds each visited
  // target's N+(target) ∩ N+(home) slice. Like the memo, uncharged
  // implementation shorthand for re-reading the neighborhood every visit.
  std::vector<std::uint32_t> visit_counts_;
  OverlapMemo owned_memo_;     // backs memo_ when none was lent
  OverlapMemo* memo_ = nullptr;
  std::size_t last_idx_ = 0;  // gamma index behind the pending visit
  bool settled_ = false;
};

}  // namespace fnr::core
