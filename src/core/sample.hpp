// Algorithm 2 — Sample(Γ, α).
//
// Probabilistically classifies every u ∈ N+(v₀ᵃ) as α-heavy or (4α-)light
// for a target set Γ by visiting ceil(f·|Γ|·ln n/α) vertices of Γ chosen
// uniformly with replacement and counting, for each u, how many visited
// vertices contain u in their closed neighborhood. Vertices whose counter
// reaches the threshold l are output as heavy (Lemma 2 / Corollary 1).
//
// SampleRun is a passive state object: the owning agent asks next_target()
// where to go and reports the view upon arrival via record_visit().
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "core/knowledge.hpp"
#include "core/params.hpp"
#include "sim/view.hpp"
#include "util/rng.hpp"

namespace fnr::core {

class SampleRun {
 public:
  /// `gamma` is sampled by index; the caller guarantees every member is
  /// reachable (gamma ⊆ NS). alpha > 0.
  SampleRun(std::vector<graph::VertexId> gamma, double alpha, std::size_t n,
            const Params& params);

  /// Next vertex to visit, or nullopt once the visit budget is spent.
  [[nodiscard]] std::optional<graph::VertexId> next_target(Rng& rng);

  /// Report arrival at the last requested target: increments C[u] for every
  /// u ∈ N+(target) ∩ N+(home).
  void record_visit(const sim::View& view, const Knowledge& knowledge);

  /// H' — members of N+(home) whose counter reached the threshold.
  /// Meaningful once next_target() has returned nullopt.
  [[nodiscard]] std::vector<graph::VertexId> heavy_output(
      const Knowledge& knowledge) const;

  [[nodiscard]] std::uint64_t visits_planned() const noexcept {
    return visits_total_;
  }
  [[nodiscard]] std::uint64_t visits_done() const noexcept {
    return visits_done_;
  }
  [[nodiscard]] bool exhausted() const noexcept {
    return gamma_.empty() || visits_done_ == visits_total_;
  }

  [[nodiscard]] std::size_t memory_words() const noexcept {
    return gamma_.size() + 2 * counts_.size();
  }

 private:
  std::vector<graph::VertexId> gamma_;
  std::uint64_t visits_total_ = 0;
  std::uint64_t visits_done_ = 0;
  std::uint64_t threshold_ = 0;
  std::unordered_map<graph::VertexId, std::uint64_t> counts_;
};

}  // namespace fnr::core
