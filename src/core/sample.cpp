#include "core/sample.hpp"

namespace fnr::core {

SampleRun::SampleRun(std::vector<graph::VertexId> gamma, double alpha,
                     std::size_t n, const Params& params)
    : gamma_(std::move(gamma)),
      visits_total_(params.sample_visits(gamma_.size(), alpha, n)),
      threshold_(params.sample_threshold(n)) {}

std::optional<graph::VertexId> SampleRun::next_target(Rng& rng) {
  if (exhausted()) return std::nullopt;
  ++visits_done_;
  return gamma_[rng.below(gamma_.size())];
}

void SampleRun::record_visit(const sim::View& view,
                             const Knowledge& knowledge) {
  auto bump = [&](graph::VertexId u) {
    if (knowledge.in_home_closed(u)) ++counts_[u];
  };
  bump(view.here());  // the visited vertex is in its own closed neighborhood
  for (const auto u : view.neighbor_ids()) bump(u);
}

std::vector<graph::VertexId> SampleRun::heavy_output(
    const Knowledge& knowledge) const {
  (void)knowledge;  // referenced only by the debug assertion below
  std::vector<graph::VertexId> heavy;
  for (const auto& [u, count] : counts_) {
    FNR_ASSERT(knowledge.in_home_closed(u));
    if (count >= threshold_) heavy.push_back(u);
  }
  return heavy;
}

}  // namespace fnr::core
