#include "core/sample.hpp"

namespace fnr::core {

SampleRun::SampleRun(std::vector<graph::VertexId> gamma, double alpha,
                     std::size_t n, const Params& params, OverlapMemo* memo)
    : gamma_(std::move(gamma)),
      visits_total_(params.sample_visits(gamma_.size(), alpha, n)),
      threshold_(params.sample_threshold(n)),
      memo_(memo != nullptr ? memo : &owned_memo_) {
  visit_counts_.assign(gamma_.size(), 0);
}

std::optional<graph::VertexId> SampleRun::next_target(Rng& rng) {
  if (exhausted()) return std::nullopt;
  ++visits_done_;
  last_idx_ = rng.below(gamma_.size());
  return gamma_[last_idx_];
}

void SampleRun::record_visit(const sim::View& view,
                             const Knowledge& knowledge) {
  // Counted IDs all pass in_home_closed, so they are < home_id_cap(); one
  // resize up front keeps the bump itself branch-light and allocation-free.
  if (counts_.size() < knowledge.home_id_cap())
    counts_.resize(knowledge.home_id_cap(), 0);
  if (visit_counts_[last_idx_] == 0) {
    // First visit to this target in this run: the only visit that walks the
    // overlap. The memo slice (recorded now, or by an earlier run of the
    // same trial — the intersection is trial-constant) seeds each newly
    // counted ID with the marker 1, exactly when and in which order an
    // eager bump would have first touched it.
    const graph::VertexId id = gamma_[last_idx_];
    if (id >= memo_->start.size()) {
      memo_->start.resize(id + 1, OverlapMemo::kUnscanned);
      memo_->len.resize(id + 1, 0);
    }
    if (memo_->start[id] == OverlapMemo::kUnscanned) {
      // Never scanned in this trial: one degree-wide scan, recorded.
      memo_->start[id] = static_cast<std::uint32_t>(memo_->pool.size());
      auto scan = [&](graph::VertexId u) {
        if (knowledge.in_home_closed(u)) {
          memo_->pool.push_back(u);
          if (counts_[u] == 0) {
            counts_[u] = 1;
            touched_.push_back(u);
          }
        }
      };
      scan(view.here());  // the vertex is in its own closed neighborhood
      for (const auto u : view.neighbor_ids()) scan(u);
      memo_->len[id] =
          static_cast<std::uint32_t>(memo_->pool.size() - memo_->start[id]);
    } else {
      const std::uint32_t start = memo_->start[id];
      for (std::uint32_t j = 0; j < memo_->len[id]; ++j) {
        const graph::VertexId u = memo_->pool[start + j];
        if (counts_[u] == 0) {
          counts_[u] = 1;
          touched_.push_back(u);
        }
      }
    }
  }
  ++visit_counts_[last_idx_];
}

std::vector<graph::VertexId> SampleRun::heavy_output(
    const Knowledge& knowledge) {
  (void)knowledge;  // referenced only by the debug assertion below
  if (!settled_) {
    // Settle the deferred visits: each visit of target i contributed +1 to
    // every ID in its overlap slice. Then drop the provisional markers, so
    // counts_ holds exactly what eager per-visit bumping would have.
    settled_ = true;
    for (std::size_t i = 0; i < gamma_.size(); ++i) {
      const std::uint64_t visits = visit_counts_[i];
      if (visits == 0) continue;
      const std::uint32_t start = memo_->start[gamma_[i]];
      const std::uint32_t len = memo_->len[gamma_[i]];
      for (std::uint32_t j = 0; j < len; ++j)
        counts_[memo_->pool[start + j]] += visits;
    }
    for (const auto u : touched_) counts_[u] -= 1;
  }
  std::vector<graph::VertexId> heavy;
  for (const auto u : touched_) {
    FNR_ASSERT(knowledge.in_home_closed(u));
    if (counts_[u] >= threshold_) heavy.push_back(u);
  }
  return heavy;
}

}  // namespace fnr::core
