// Agent a's accumulated map of its two-hop neighborhood.
//
// Everything agent a ever learns lives here: its home vertex, the closed
// neighborhood N+(v₀ᵃ), the growing covered set NS = N+(Sᵃ), and for every
// discovered vertex at distance two a "via" midpoint enabling length-2
// routes. The paper notes the shortest paths to T^a cost asymptotically no
// more memory than the vertex list itself; the via map is exactly that.
//
// Hot-path layout: in_home_closed / in_ns are the innermost operations of
// Sample's counting loop (one query per neighbor per visit), so membership
// is answered from flat byte masks indexed by vertex ID. The home_closed_
// set is kept alongside its mask because reset_coverage() iterates it to
// rebuild ns_list_, and that iteration order feeds RNG-indexed sampling —
// replacing the container would silently reorder every later draw. The
// masks are pure mirrors: logical contents (and memory_words accounting)
// are identical to the set-only representation.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace fnr::core {

class Knowledge {
 public:
  void init_home(graph::VertexId home,
                 const std::vector<graph::VertexId>& neighbor_ids) {
    home_ = home;
    for (const auto id : home_closed_) clear_bit(home_mask_, id);
    home_closed_.clear();
    home_closed_.insert(home);
    set_bit(home_mask_, home);
    home_neighbors_ = neighbor_ids;
    for (const auto id : neighbor_ids) {
      home_closed_.insert(id);
      set_bit(home_mask_, id);
    }
    reset_coverage();
  }

  /// Clears NS/via back to the freshly-initialized state (doubling restart).
  void reset_coverage() {
    for (const auto id : ns_list_) clear_bit(ns_mask_, id);
    ns_list_.clear();
    via_.clear();
    for (const auto id : home_closed_) {
      set_bit(ns_mask_, id);
      ns_list_.push_back(id);
    }
  }

  [[nodiscard]] graph::VertexId home() const noexcept { return home_; }
  [[nodiscard]] const std::vector<graph::VertexId>& home_neighbors()
      const noexcept {
    return home_neighbors_;
  }
  [[nodiscard]] bool in_home_closed(graph::VertexId v) const {
    return test_bit(home_mask_, v);
  }
  [[nodiscard]] std::size_t home_closed_size() const noexcept {
    return home_closed_.size();
  }

  [[nodiscard]] bool in_ns(graph::VertexId v) const {
    return test_bit(ns_mask_, v);
  }
  [[nodiscard]] std::size_t ns_size() const noexcept {
    return ns_list_.size();
  }
  /// NS as a list (insertion order, duplicates impossible).
  [[nodiscard]] const std::vector<graph::VertexId>& ns_list() const noexcept {
    return ns_list_;
  }

  /// Exclusive upper bound on IDs the home-closed mask can answer for
  /// (Sample sizes its flat counter array to this).
  [[nodiscard]] std::size_t home_id_cap() const noexcept {
    return home_mask_.size();
  }

  /// Absorbs N+(x) for a newly adopted x ∈ N+(home); returns the vertices
  /// that are new to NS (the Γ of the next optimistic Sample run).
  std::vector<graph::VertexId> absorb_neighborhood(
      graph::VertexId x, const std::vector<graph::VertexId>& x_neighbors) {
    std::vector<graph::VertexId> fresh;
    auto add = [&](graph::VertexId w) {
      if (!test_bit(ns_mask_, w)) {
        set_bit(ns_mask_, w);
        ns_list_.push_back(w);
        fresh.push_back(w);
        if (!in_home_closed(w)) via_.emplace(w, x);
      }
    };
    add(x);  // x ∈ N+(home), so normally present already
    for (const auto w : x_neighbors) add(w);
    return fresh;
  }

  /// Route from home to any w ∈ NS (0, 1, or 2 hops).
  [[nodiscard]] std::vector<graph::VertexId> route_from_home(
      graph::VertexId w) const {
    if (w == home_) return {};
    if (in_home_closed(w)) return {w};
    const auto it = via_.find(w);
    FNR_CHECK_MSG(it != via_.end(), "no known route to vertex " << w);
    return {it->second, w};
  }

  /// Route from w ∈ NS back home (reverse of route_from_home).
  [[nodiscard]] std::vector<graph::VertexId> route_to_home(
      graph::VertexId w) const {
    if (w == home_) return {};
    if (in_home_closed(w)) return {home_};
    const auto it = via_.find(w);
    FNR_CHECK_MSG(it != via_.end(), "no known route back from vertex " << w);
    return {it->second, home_};
  }

  [[nodiscard]] std::size_t memory_words() const noexcept {
    return home_neighbors_.size() + home_closed_.size() + 2 * via_.size() +
           2 * ns_list_.size();
  }

 private:
  static void set_bit(std::vector<char>& mask, graph::VertexId v) {
    if (v >= mask.size()) mask.resize(v + 1, 0);
    mask[v] = 1;
  }
  static void clear_bit(std::vector<char>& mask, graph::VertexId v) {
    if (v < mask.size()) mask[v] = 0;
  }
  [[nodiscard]] static bool test_bit(const std::vector<char>& mask,
                                     graph::VertexId v) {
    return v < mask.size() && mask[v] != 0;
  }

  graph::VertexId home_ = 0;
  std::vector<graph::VertexId> home_neighbors_;
  std::unordered_set<graph::VertexId> home_closed_;
  std::vector<graph::VertexId> ns_list_;
  std::unordered_map<graph::VertexId, graph::VertexId> via_;
  // Membership mirrors of home_closed_ / the NS set, byte per ID, grown to
  // the highest ID ever inserted (queries beyond the mask are misses).
  std::vector<char> home_mask_;
  std::vector<char> ns_mask_;
};

}  // namespace fnr::core
