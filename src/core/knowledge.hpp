// Agent a's accumulated map of its two-hop neighborhood.
//
// Everything agent a ever learns lives here: its home vertex, the closed
// neighborhood N+(v₀ᵃ), the growing covered set NS = N+(Sᵃ), and for every
// discovered vertex at distance two a "via" midpoint enabling length-2
// routes. The paper notes the shortest paths to T^a cost asymptotically no
// more memory than the vertex list itself; the via map is exactly that.
#pragma once

#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "graph/graph.hpp"
#include "util/check.hpp"

namespace fnr::core {

class Knowledge {
 public:
  void init_home(graph::VertexId home,
                 const std::vector<graph::VertexId>& neighbor_ids) {
    home_ = home;
    home_closed_.clear();
    home_closed_.insert(home);
    home_neighbors_ = neighbor_ids;
    for (const auto id : neighbor_ids) home_closed_.insert(id);
    reset_coverage();
  }

  /// Clears NS/via back to the freshly-initialized state (doubling restart).
  void reset_coverage() {
    ns_.clear();
    ns_list_.clear();
    via_.clear();
    for (const auto id : home_closed_) {
      ns_.insert(id);
      ns_list_.push_back(id);
    }
  }

  [[nodiscard]] graph::VertexId home() const noexcept { return home_; }
  [[nodiscard]] const std::vector<graph::VertexId>& home_neighbors()
      const noexcept {
    return home_neighbors_;
  }
  [[nodiscard]] bool in_home_closed(graph::VertexId v) const {
    return home_closed_.contains(v);
  }
  [[nodiscard]] std::size_t home_closed_size() const noexcept {
    return home_closed_.size();
  }

  [[nodiscard]] bool in_ns(graph::VertexId v) const { return ns_.contains(v); }
  [[nodiscard]] std::size_t ns_size() const noexcept { return ns_.size(); }
  /// NS as a list (insertion order, duplicates impossible).
  [[nodiscard]] const std::vector<graph::VertexId>& ns_list() const noexcept {
    return ns_list_;
  }

  /// Absorbs N+(x) for a newly adopted x ∈ N+(home); returns the vertices
  /// that are new to NS (the Γ of the next optimistic Sample run).
  std::vector<graph::VertexId> absorb_neighborhood(
      graph::VertexId x, const std::vector<graph::VertexId>& x_neighbors) {
    std::vector<graph::VertexId> fresh;
    auto add = [&](graph::VertexId w) {
      if (ns_.insert(w).second) {
        ns_list_.push_back(w);
        fresh.push_back(w);
        if (!home_closed_.contains(w)) via_.emplace(w, x);
      }
    };
    add(x);  // x ∈ N+(home), so normally present already
    for (const auto w : x_neighbors) add(w);
    return fresh;
  }

  /// Route from home to any w ∈ NS (0, 1, or 2 hops).
  [[nodiscard]] std::vector<graph::VertexId> route_from_home(
      graph::VertexId w) const {
    if (w == home_) return {};
    if (home_closed_.contains(w)) return {w};
    const auto it = via_.find(w);
    FNR_CHECK_MSG(it != via_.end(), "no known route to vertex " << w);
    return {it->second, w};
  }

  /// Route from w ∈ NS back home (reverse of route_from_home).
  [[nodiscard]] std::vector<graph::VertexId> route_to_home(
      graph::VertexId w) const {
    if (w == home_) return {};
    if (home_closed_.contains(w)) return {home_};
    const auto it = via_.find(w);
    FNR_CHECK_MSG(it != via_.end(), "no known route back from vertex " << w);
    return {it->second, home_};
  }

  [[nodiscard]] std::size_t memory_words() const noexcept {
    return home_neighbors_.size() + home_closed_.size() + 2 * via_.size() +
           2 * ns_.size();
  }

 private:
  graph::VertexId home_ = 0;
  std::vector<graph::VertexId> home_neighbors_;
  std::unordered_set<graph::VertexId> home_closed_;
  std::unordered_set<graph::VertexId> ns_;
  std::vector<graph::VertexId> ns_list_;
  std::unordered_map<graph::VertexId, graph::VertexId> via_;
};

}  // namespace fnr::core
