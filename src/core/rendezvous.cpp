#include "core/rendezvous.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <sstream>

#include "core/no_whiteboard.hpp"
#include "graph/analysis.hpp"
#include "sim/batch_scheduler.hpp"

namespace fnr::core {

const char* to_string(Strategy strategy) noexcept {
  switch (strategy) {
    case Strategy::Whiteboard: return "whiteboard";
    case Strategy::WhiteboardDoubling: return "whiteboard+doubling";
    case Strategy::NoWhiteboard: return "no-whiteboard";
  }
  return "?";
}

std::uint64_t auto_round_cap(const graph::Graph& g, Strategy strategy,
                             const Params& params) {
  const std::size_t n = g.num_vertices();
  const double delta = std::max<double>(1.0, g.min_degree());
  switch (strategy) {
    case Strategy::Whiteboard:
    case Strategy::WhiteboardDoubling: {
      // Construct budget (with δ/2 to absorb the doubling estimate) plus a
      // wide multiple of the Theorem 1 probing bound.
      const double probing =
          64.0 * theorem1_bound(n, delta, g.max_degree()) + 1024.0;
      return params.construct_round_budget(n, std::max(1.0, delta / 2.0)) +
             static_cast<std::uint64_t>(probing);
    }
    case Strategy::NoWhiteboard: {
      const auto schedule =
          NoWbSchedule::make(n, g.id_bound(), delta, params);
      return 2 * schedule.total_rounds() + 1024;
    }
  }
  return 1 << 20;
}

std::string RendezvousReport::describe() const {
  std::ostringstream os;
  os << run.describe() << "; |T^a|=" << agent_a.t_set_size
     << ", construct iters=" << agent_a.construct.iterations
     << ", strict runs=" << agent_a.construct.strict_runs
     << ", delta_hat=" << agent_a.delta_hat_final;
  return os.str();
}

RendezvousReport run_rendezvous(const graph::Graph& g,
                                sim::Placement placement,
                                const RendezvousOptions& options) {
  sim::SchedulerScratch scratch;
  return run_rendezvous(g, placement, options, scratch);
}

RendezvousReport run_rendezvous(const graph::Graph& g,
                                sim::Placement placement,
                                const RendezvousOptions& options,
                                sim::SchedulerScratch& scratch) {
  FNR_CHECK_MSG(g.min_degree() >= 1, "graph must have no isolated vertices");
  FNR_CHECK_MSG(
      graph::distance(g, placement.a_start, placement.b_start) == 1,
      "neighborhood rendezvous expects adjacent starting vertices");

  Rng seed_rng(options.seed);
  Rng rng_a = seed_rng.split();
  Rng rng_b = seed_rng.split();

  RendezvousReport report;
  report.round_cap = options.max_rounds > 0
                         ? options.max_rounds
                         : auto_round_cap(g, options.strategy, options.params);

  const double delta = static_cast<double>(g.min_degree());
  switch (options.strategy) {
    case Strategy::Whiteboard:
    case Strategy::WhiteboardDoubling: {
      const bool doubling = options.strategy == Strategy::WhiteboardDoubling;
      report.delta_used = doubling ? -1.0 : delta;
      WhiteboardAgentA agent_a(options.params, report.delta_used, rng_a);
      WhiteboardAgentB agent_b(rng_b);
      sim::Scheduler& scheduler =
          scratch.scheduler_for(g, sim::Model::full());
      report.run =
          scheduler.run(agent_a, agent_b, placement, report.round_cap);
      report.agent_a = agent_a.stats();
      report.agent_b_marks = agent_b.marks();
      if (doubling) report.delta_used = agent_a.stats().delta_hat_final;
      break;
    }
    case Strategy::NoWhiteboard: {
      FNR_CHECK_MSG(g.tight_ids(),
                    "Theorem 2 requires tight naming (n' = O(n))");
      report.delta_used = delta;
      NoWhiteboardAgentA agent_a(options.params, delta, rng_a);
      NoWhiteboardAgentB agent_b(options.params, delta, rng_b);
      sim::Scheduler& scheduler =
          scratch.scheduler_for(g, sim::Model::no_whiteboards());
      report.run =
          scheduler.run(agent_a, agent_b, placement, report.round_cap);
      report.agent_a = agent_a.stats();
      break;
    }
  }
  return report;
}

runner::TrialAccumulator run_trials(Strategy strategy, const graph::Graph& g,
                                    const RendezvousOptions& options,
                                    std::uint64_t n_trials, unsigned threads) {
  runner::RunnerOptions runner_options;
  runner_options.threads = threads;
  return run_trials(strategy, g, options, n_trials,
                    runner::TrialRunner(runner_options));
}

runner::TrialAccumulator run_trials(Strategy strategy, const graph::Graph& g,
                                    const RendezvousOptions& options,
                                    std::uint64_t n_trials,
                                    const runner::TrialRunner& trial_runner) {
  // One SchedulerScratch per worker: trial 2..N on a worker reuse its warm
  // arena, so the batch allocates no scheduler-side heap after warm-up.
  return trial_runner.run_with_scratch<sim::SchedulerScratch>(
      n_trials, options.seed,
      [&](sim::SchedulerScratch& scratch, std::uint64_t trial,
          std::uint64_t seed) {
        Rng placement_rng(seed, /*stream=*/3);
        const auto placement = sim::random_adjacent_placement(g, placement_rng);
        RendezvousOptions trial_options = options;
        trial_options.strategy = strategy;
        trial_options.seed = seed;
        const auto report = run_rendezvous(g, placement, trial_options, scratch);
        return runner::TrialOutcome::from_run(trial, seed, report.run,
                                              report.agent_b_marks);
      });
}

namespace {

/// Per-worker scratch for the batched path: the warm SoA kernel plus
/// per-block agent storage. Deques give the stable addresses the kernel
/// needs while agents of one block are alive (Agent is non-movable).
struct BatchTrialScratch {
  sim::BatchSchedulerScratch kernel;
  std::deque<WhiteboardAgentA> wb_a;
  std::deque<WhiteboardAgentB> wb_b;
  std::deque<NoWhiteboardAgentA> nwb_a;
  std::deque<NoWhiteboardAgentB> nwb_b;

  void clear_agents() {
    wb_a.clear();
    wb_b.clear();
    nwb_a.clear();
    nwb_b.clear();
  }
};

}  // namespace

runner::TrialAccumulator run_trials_batched(
    Strategy strategy, const graph::Graph& g, const RendezvousOptions& options,
    std::uint64_t n_trials, const runner::TrialRunner& trial_runner,
    std::uint64_t batch_size) {
  if (batch_size <= 1)
    return run_trials(strategy, g, options, n_trials, trial_runner);

  FNR_CHECK_MSG(g.min_degree() >= 1, "graph must have no isolated vertices");
  if (strategy == Strategy::NoWhiteboard)
    FNR_CHECK_MSG(g.tight_ids(),
                  "Theorem 2 requires tight naming (n' = O(n))");
  const sim::Model model = strategy == Strategy::NoWhiteboard
                               ? sim::Model::no_whiteboards()
                               : sim::Model::full();
  // The cap and δ are graph-level constants: hoist them out of the trial
  // loop (the scalar path re-derives them per trial with the same values).
  const std::uint64_t cap =
      options.max_rounds > 0 ? options.max_rounds
                             : auto_round_cap(g, strategy, options.params);
  const double delta = static_cast<double>(g.min_degree());
  const bool doubling = strategy == Strategy::WhiteboardDoubling;

  return trial_runner.run_batched<BatchTrialScratch>(
      n_trials, options.seed, batch_size,
      [&](BatchTrialScratch& scratch, std::uint64_t first, std::uint64_t count,
          runner::TrialOutcome* outs) {
        sim::BatchScheduler& kernel = scratch.kernel.kernel_for(g, model);
        kernel.begin_batch(sim::Gathering::AnyPair);
        scratch.clear_agents();
        for (std::uint64_t j = 0; j < count; ++j) {
          const std::uint64_t seed =
              runner::trial_seed(options.seed, first + j);
          // Stream discipline identical to the scalar trial lambda: the
          // placement comes from stream 3 of the trial seed, the agents'
          // private streams from consecutive splits of the raw seed.
          Rng placement_rng(seed, /*stream=*/3);
          const auto placement =
              sim::random_adjacent_placement(g, placement_rng);
          // Adjacent by construction (an oriented uniform edge), so the
          // scalar path's BFS distance check is vacuous here.
          Rng seed_rng(seed);
          Rng rng_a = seed_rng.split();
          Rng rng_b = seed_rng.split();
          sim::ScenarioPlacement starts;
          starts.starts = {placement.a_start, placement.b_start};
          if (strategy == Strategy::NoWhiteboard) {
            auto& agent_a =
                scratch.nwb_a.emplace_back(options.params, delta, rng_a);
            auto& agent_b =
                scratch.nwb_b.emplace_back(options.params, delta, rng_b);
            kernel.add_trial({&agent_a, &agent_b}, starts, cap);
          } else {
            auto& agent_a = scratch.wb_a.emplace_back(
                options.params, doubling ? -1.0 : delta, rng_a);
            auto& agent_b = scratch.wb_b.emplace_back(rng_b);
            kernel.add_trial({&agent_a, &agent_b}, starts, cap);
          }
        }
        const auto results = kernel.run();
        for (std::uint64_t j = 0; j < count; ++j) {
          const std::uint64_t marks =
              strategy == Strategy::NoWhiteboard ? 0 : scratch.wb_b[j].marks();
          outs[j] = runner::TrialOutcome::from_run(
              first + j, runner::trial_seed(options.seed, first + j),
              results[j].to_run_result(), marks);
        }
      });
}

}  // namespace fnr::core
