// Algorithm 1 — Main-Rendezvous (with whiteboards).
//
// Agent a builds the (a, δ/8, 2)-dense set Tᵃ via Construct, then repeatedly
// visits a uniform member of Tᵃ and reads its whiteboard. Agent b repeatedly
// visits a uniform member of N+(v₀ᵇ) and writes v₀ᵇ's ID on its whiteboard.
// Once a reads a mark it walks to v₀ᵇ and camps there; b's next return home
// completes the rendezvous. §4.1's doubling estimation of δ is included:
// with known_delta <= 0, agent a starts from deg(v₀ᵃ)/2 and restarts
// Construct with δ'/2 whenever it sees a vertex of degree < δ'.
#pragma once

#include <memory>
#include <vector>

#include "core/construct.hpp"
#include "core/knowledge.hpp"
#include "core/params.hpp"
#include "sim/scripted_agent.hpp"
#include "util/rng.hpp"

namespace fnr::core {

/// Observability into agent a's run (whiteboard and whiteboard-free
/// variants share this shape).
struct AgentAStats {
  ConstructStats construct;
  std::size_t t_set_size = 0;
  /// The vertices of Tᵃ (kept so tests/benches can verify the
  /// (a, δ/8, 2)-dense condition against the ground-truth graph).
  std::vector<graph::VertexId> t_set_ids;
  double delta_hat_final = 0.0;
  std::uint64_t doubling_restarts = 0;
  std::uint64_t main_probes = 0;   ///< Tᵃ samples during Main-Rendezvous
  bool found_mark = false;         ///< a read one of b's marks
  /// Marks read that do not name a neighbor of home. Impossible in the
  /// paper's two-agent distance-1 instance; in k-agent scenarios a foreign
  /// b's mark is unusable (no known route) and is skipped.
  std::uint64_t foreign_marks = 0;
  std::uint64_t phases_used = 0;   ///< Algorithm 4 only
};

class WhiteboardAgentA final : public sim::ScriptedAgent {
 public:
  /// known_delta > 0: agents know δ (or a constant-factor approximation).
  /// known_delta <= 0: doubling estimation (§4.1).
  WhiteboardAgentA(const Params& params, double known_delta, Rng rng);

  [[nodiscard]] const AgentAStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t memory_words() const override;

 protected:
  void on_idle(const sim::View& view) override;

 private:
  enum class Phase { Init, Construct, Main, Sit };

  /// Reads the whiteboard here; on a mark, plans the walk to v₀ᵇ and enters
  /// Sit. Returns true when a mark was found.
  bool check_mark(const sim::View& view);
  void drive_construct(const sim::View& view);

  Params params_;
  double known_delta_;
  Rng rng_;

  Phase phase_ = Phase::Init;
  Knowledge knowledge_;
  std::unique_ptr<ConstructRun> construct_;
  std::vector<graph::VertexId> t_set_;
  double delta_hat_ = 1.0;
  bool restart_pending_ = false;
  AgentAStats stats_;
};

/// Agent b of Algorithm 1: mark random closed neighbors forever.
class WhiteboardAgentB final : public sim::Agent {
 public:
  explicit WhiteboardAgentB(Rng rng) : rng_(rng) {}

  sim::Action step(const sim::View& view) override;

  [[nodiscard]] std::uint64_t marks() const noexcept { return marks_; }
  [[nodiscard]] std::size_t memory_words() const override { return 4; }

 private:
  Rng rng_;
  bool init_ = false;
  graph::VertexId home_ = 0;
  std::size_t home_degree_ = 0;
  std::uint64_t marks_ = 0;
};

}  // namespace fnr::core
