// Every constant of the paper's pseudocode, as data.
//
// The paper fixes generous constants for clean Chernoff arguments
// (Sample uses 96⌈|Γ|ln n/α⌉ visits against a 150·ln n threshold; Construct
// probes ⌈4 log n⌉ candidates; the whiteboard-free algorithm marks with
// probability 4 ln n/√δ and uses sparseness constant c₂ = 18). Those values
// preserve w.h.p. guarantees but are far from tight; experiments also run a
// `practical()` preset with smaller constants that keeps every inequality
// the analysis needs (threshold strictly between the light and 4α-heavy
// expectations) while making large sweeps affordable. EXPERIMENTS.md records
// the preset used for each table.
#pragma once

#include <cstdint>
#include <string>

namespace fnr::core {

struct Params {
  // --- Sample(Γ, α) — Algorithm 2 ---------------------------------------
  /// Visits = ceil(sample_visit_factor * |Γ| * ln n / α).
  double sample_visit_factor = 96.0;
  /// Heaviness threshold l = ceil(sample_threshold_factor * ln n).
  double sample_threshold_factor = 150.0;

  // --- Construct — Algorithm 3 -------------------------------------------
  /// Per-iteration direct probes = ceil(probe_factor * log2 n).
  double probe_factor = 4.0;
  /// Ablation switch: false replaces the paper's two-step
  /// optimistic-then-strict decision with a strict Sample over all of
  /// N+(Sᵃ) every iteration — the naive O((n/δ)²) strategy §3.3 argues
  /// against. Paper behaviour is true.
  bool optimistic_decision = true;
  /// "heavy" means (δ/heavy_divisor)-heavy (paper: 8).
  double heavy_divisor = 8.0;
  /// the direct lightness test uses δ/light_divisor (paper: 2).
  double light_divisor = 2.0;

  // --- Rendezvous-without-Whiteboards — Algorithm 4 ----------------------
  /// Marking probability = min(1, mark_factor * ln n / sqrt(δ)).
  double mark_factor = 4.0;
  /// Sparseness constant: per-block participation cap = ceil(c2 * ln n).
  double c2 = 18.0;
  /// Construct-budget multiplier for the synchronized start time t'.
  double c1 = 1.5;

  /// The constants exactly as printed in the paper.
  [[nodiscard]] static Params paper();
  /// Smaller constants preserving every ordering the analysis relies on.
  [[nodiscard]] static Params practical();

  [[nodiscard]] std::string describe() const;

  // --- derived quantities (shared by both agents; everything is computed
  //     from knowledge the model grants: n, n', δ) -------------------------

  /// Number of random visits Sample(Γ, α) performs.
  [[nodiscard]] std::uint64_t sample_visits(std::size_t gamma_size,
                                            double alpha,
                                            std::size_t n) const;
  /// Counter threshold l deciding heaviness after a Sample run.
  [[nodiscard]] std::uint64_t sample_threshold(std::size_t n) const;
  /// Probes per Construct iteration (⌈probe_factor·log₂ n⌉).
  [[nodiscard]] std::uint64_t construct_probes(std::size_t n) const;
  /// Φ marking probability (Algorithm 4).
  [[nodiscard]] double mark_probability(double delta, std::size_t n) const;
  /// ID-block width β = ⌈√δ⌉ (Algorithm 4).
  [[nodiscard]] std::uint64_t block_width(double delta) const;
  /// Per-block participation cap ⌈c2·ln n⌉ (sparseness property).
  [[nodiscard]] std::uint64_t block_cap(std::size_t n) const;
  /// Rounds agent b needs for one marking pass over a full block.
  [[nodiscard]] std::uint64_t b_pass_rounds(std::size_t n) const;
  /// Rounds agent a sits on each Φa vertex: two full b-passes plus slack.
  [[nodiscard]] std::uint64_t a_wait_rounds(std::size_t n) const;
  /// Length of one phase of Algorithm 4.
  [[nodiscard]] std::uint64_t phase_rounds(std::size_t n) const;
  /// Deterministic upper bound on Construct's running time; Algorithm 4
  /// starts its phase schedule at this round (t' in the paper).
  [[nodiscard]] std::uint64_t construct_round_budget(std::size_t n,
                                                     double delta) const;
};

// --- analytic bounds used for "measured / bound" columns -------------------

/// Theorem 1 shape: (n/δ)·ln²n + (√(nΔ)/δ)·ln n  (no leading constant).
[[nodiscard]] double theorem1_bound(std::size_t n, double delta,
                                    double max_degree);

/// Theorem 2 shape: (n/√δ)·ln²n (no leading constant; excludes t').
[[nodiscard]] double theorem2_bound(std::size_t n, double delta);

}  // namespace fnr::core
