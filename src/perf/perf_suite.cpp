#include "perf/perf_suite.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <sstream>
#include <utility>

#include "campaign/campaign.hpp"
#include "core/rendezvous.hpp"
#include "graph/generators.hpp"
#include "scenario/program_registry.hpp"
#include "scenario/run.hpp"
#include "scenario/scenario.hpp"
#include "sim/model.hpp"
#include "util/check.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace fnr::perf {

std::string schema_tag() {
  return "fnr-perf/" + std::to_string(kSchemaVersion);
}

namespace {

/// The measured sweep, in emission order: the registry programs that wrap
/// a core::Strategy (the paper's strategies, measured through the
/// two-agent hot path). Cell names are the registry labels, so perf cells
/// and sweep cells agree on naming. (Registry entries are never removed,
/// so the pointers stay valid for the process lifetime.)
const std::vector<const scenario::ProgramDef*>& measured_programs() {
  static const std::vector<const scenario::ProgramDef*> all = [] {
    std::vector<const scenario::ProgramDef*> out;
    for (const auto& def : scenario::all_program_defs())
      if (def.core_strategy.has_value()) out.push_back(&def);
    FNR_CHECK_MSG(!out.empty(),
                  "program registry exposes no core strategies to measure");
    return out;
  }();
  return all;
}

struct Topology {
  std::string label;
  std::uint64_t n;
};

/// Topology identities per mode. Graph construction is seeded by constants
/// (never by config.seed), so the workload a cell names is the same for
/// every report ever emitted at this schema version.
std::vector<Topology> topologies(bool quick) {
  if (quick) return {{"near-regular-64", 64}, {"torus-8x8", 64}};
  return {{"near-regular-1024", 1024},
          {"torus-32x32", 1024},
          {"hypercube-10", 1024},
          {"watts-strogatz-1024", 1024}};
}

graph::Graph build_topology(const std::string& label) {
  if (label == "near-regular-64") {
    Rng rng(4242, 911);
    return graph::make_near_regular(64, 12, rng);
  }
  if (label == "torus-8x8") return graph::make_torus(8, 8);
  if (label == "near-regular-1024") {
    Rng rng(4242, 911);
    return graph::make_near_regular(1024, 64, rng);
  }
  if (label == "torus-32x32") return graph::make_torus(32, 32);
  if (label == "hypercube-10") return graph::make_hypercube(10);
  if (label == "watts-strogatz-1024") {
    Rng rng(4242, 913);
    return graph::make_watts_strogatz(1024, 6, 0.1, rng);
  }
  FNR_CHECK_MSG(false, "unknown perf topology '" << label << "'");
  throw std::logic_error("unreachable");
}

std::uint64_t trials_for(const PerfConfig& config) {
  if (config.trials > 0) return config.trials;
  return config.quick ? 8 : 256;
}

/// One swarm measurement: a k-agent quorum workload driven through the
/// scenario engine's occupancy-count meeting path. The Scenario each label
/// resolves to is pinned here (not looked up by name at run time), so
/// registry edits cannot silently change what a committed cell measured.
struct SwarmWorkload {
  std::string label;     ///< the cell's scenario field
  std::string topology;  ///< must name a topology of the same mode
  std::uint64_t n;
  std::size_t agents;
  std::uint64_t quorum;
};

const std::vector<SwarmWorkload>& swarm_workloads(bool quick) {
  static const std::vector<SwarmWorkload> quick_cells = {
      {"swarm-quorum-k16", "torus-8x8", 64, 16, 4}};
  static const std::vector<SwarmWorkload> full_cells = {
      {"swarm-quorum-k256", "torus-32x32", 1024, 256, 16}};
  return quick ? quick_cells : full_cells;
}

/// Swarm trials are far heavier than two-agent trials (k agents per round,
/// larger round caps), so the full-mode default is smaller than trials_for.
std::uint64_t swarm_trials_for(const PerfConfig& config) {
  if (config.trials > 0) return config.trials;
  return config.quick ? 8 : 32;
}

/// One campaign-throughput measurement: the whole campaign machinery —
/// executor worker pool, work-stealing LPT queue, shared graph cache,
/// reorder buffer — timed end to end over a pinned heterogeneous grid.
/// The two cells run the *same* grid and differ only in the executor pool
/// size, so their trials (grid cells) and total_rounds identity fields
/// must be equal in every report — the byte-identity contract, visible in
/// the committed baseline itself. trials_per_sec is the headline
/// cells-per-second number; rounds_per_sec is what the gate tracks.
struct CampaignWorkload {
  std::string label;  ///< the cell's scenario field
  unsigned jobs;      ///< executor pool size (cells in flight)
};

const std::vector<CampaignWorkload>& campaign_workloads() {
  static const std::vector<CampaignWorkload> cells = {
      {"campaign-mixed-jobs1", 1}, {"campaign-mixed-jobs4", 4}};
  return cells;
}

/// The measured grid is pinned here (not resolved through predefined
/// specs by name) so sweep-spec edits cannot silently change what a
/// committed cell measured. Quick mode mirrors the CI smoke grid; the
/// full grid crosses a 16× size spread with a neighborhood-scan-heavy
/// family against a cheap torus, so the work-stealing schedule has real
/// imbalance to absorb — the speedup the jobs4 cell exists to track.
const char* campaign_spec_text(bool quick) {
  if (quick)
    return R"(name = perf-campaign-quick
trials     = 3
programs   = whiteboard, random-walk
scenarios  = sync-pair, delayed-pair
topologies = ring, near-regular:deg=4
sizes      = 32, 64
seeds      = 1
)";
  return R"(name = perf-campaign
trials     = 64
programs   = whiteboard, whiteboard+doubling, random-walk
scenarios  = sync-pair
topologies = near-regular:deg=32, torus
sizes      = 1024, 16384
seeds      = 7
)";
}

const sweep::SweepSpec& campaign_spec(bool quick) {
  static const sweep::SweepSpec quick_spec =
      sweep::parse_spec(campaign_spec_text(true));
  static const sweep::SweepSpec full_spec =
      sweep::parse_spec(campaign_spec_text(false));
  return quick ? quick_spec : full_spec;
}

scenario::Scenario swarm_scenario(const SwarmWorkload& workload) {
  scenario::Scenario scen;
  scen.name = workload.label;
  scen.summary = "perf swarm cell";
  scen.num_agents = workload.agents;
  scen.placement = scenario::PlacementModel::RandomDistinct;
  scen.delay = scenario::DelayModel::None;
  scen.gathering = sim::Gathering::quorum_of(workload.quorum);
  scen.validate();
  return scen;
}

}  // namespace

std::vector<PerfCellSpec> perf_cell_specs(const PerfConfig& config) {
  const std::uint64_t trials = trials_for(config);
  std::vector<PerfCellSpec> specs;
  for (const auto* def : measured_programs()) {
    for (const auto& topology : topologies(config.quick)) {
      specs.push_back(PerfCellSpec{def->label, "", topology.label,
                                   topology.n, trials});
    }
  }
  const std::uint64_t swarm_trials = swarm_trials_for(config);
  for (const auto& workload : swarm_workloads(config.quick)) {
    specs.push_back(PerfCellSpec{"explore-rally", workload.label,
                                 workload.topology, workload.n,
                                 swarm_trials});
  }
  // Campaign cells trail the sweep. Their identity is fully pinned by the
  // grid (config.trials/seed/batch do not apply): trials = grid cell
  // count, n = the grid's largest requested size.
  const auto& grid_spec = campaign_spec(config.quick);
  const std::uint64_t grid_cells = sweep::expand(grid_spec).size();
  const std::uint64_t max_n =
      *std::max_element(grid_spec.sizes.begin(), grid_spec.sizes.end());
  for (const auto& workload : campaign_workloads()) {
    specs.push_back(
        PerfCellSpec{"campaign", workload.label, "mixed", max_n, grid_cells});
  }
  return specs;
}

namespace {

/// Registry label → the core::Strategy the cell measures.
[[nodiscard]] core::Strategy strategy_named(const std::string& label) {
  for (const auto* def : measured_programs())
    if (label == def->label) return *def->core_strategy;
  FNR_CHECK_MSG(false, "unknown perf strategy '" << label << "'");
  throw std::logic_error("unreachable");
}

}  // namespace

PerfReport run_perf_suite(const PerfConfig& config) {
  const runner::TrialRunner trial_runner(
      runner::RunnerOptions{config.threads});

  PerfReport report;
  report.schema = schema_tag();
  report.quick = config.quick;
  report.threads = trial_runner.threads();
  report.seed = config.seed;
  report.batch = config.batch;

  // Build each topology once up front; the spec list then drives the loop,
  // so the emitted cell order IS perf_cell_specs order by construction
  // (one source of truth for the sweep).
  std::vector<std::pair<std::string, graph::Graph>> graphs;
  for (const auto& topology : topologies(config.quick))
    graphs.emplace_back(topology.label, build_topology(topology.label));

  for (const auto& spec : perf_cell_specs(config)) {
    if (spec.strategy == "campaign") {
      const auto& workloads = campaign_workloads();
      const auto workload_it =
          std::find_if(workloads.begin(), workloads.end(),
                       [&](const CampaignWorkload& w) {
                         return w.label == spec.scenario;
                       });
      FNR_CHECK_MSG(workload_it != workloads.end(),
                    "unknown campaign workload '" << spec.scenario << "'");
      campaign::CampaignOptions options;
      options.jobs = workload_it->jobs;
      // One trial thread per worker: these cells measure cell-parallel
      // scheduling, not the trial pool — config.threads stays out so the
      // jobs1 / jobs4 pair differ in exactly one variable.
      options.threads = 1;
      campaign::Campaign camp(campaign_spec(config.quick), options);
      const auto start = std::chrono::steady_clock::now();
      const auto run = camp.run();
      const auto stop = std::chrono::steady_clock::now();
      FNR_CHECK_MSG(run.complete, "perf campaign '" << spec.scenario
                                                    << "' did not complete");
      const double seconds =
          std::chrono::duration<double>(stop - start).count();
      PerfCell cell;
      cell.strategy = spec.strategy;
      cell.scenario = spec.scenario;
      cell.topology = spec.topology;
      cell.n = spec.n;
      cell.trials = run.executed;
      cell.total_rounds = run.total_rounds;
      std::uint64_t ok_cells = 0;
      for (const auto& result : run.cells) ok_cells += result.ok ? 1 : 0;
      cell.success_rate = run.cells.empty()
                              ? 0.0
                              : static_cast<double>(ok_cells) /
                                    static_cast<double>(run.cells.size());
      cell.seconds = seconds;
      cell.rounds_per_sec =
          seconds > 0.0 ? static_cast<double>(cell.total_rounds) / seconds
                        : 0.0;
      cell.trials_per_sec =
          seconds > 0.0 ? static_cast<double>(cell.trials) / seconds : 0.0;
      report.cells.push_back(std::move(cell));
      continue;
    }
    const auto graph_it =
        std::find_if(graphs.begin(), graphs.end(),
                     [&](const auto& entry) {
                       return entry.first == spec.topology;
                     });
    FNR_CHECK(graph_it != graphs.end());
    const graph::Graph& g = graph_it->second;

    const auto start = std::chrono::steady_clock::now();
    const auto acc = [&] {
      if (!spec.scenario.empty()) {
        const auto& workloads = swarm_workloads(config.quick);
        const auto workload_it =
            std::find_if(workloads.begin(), workloads.end(),
                         [&](const SwarmWorkload& w) {
                           return w.label == spec.scenario;
                         });
        FNR_CHECK_MSG(workload_it != workloads.end(),
                      "unknown swarm workload '" << spec.scenario << "'");
        const scenario::Scenario scen = swarm_scenario(*workload_it);
        const scenario::Program program =
            scenario::find_program(spec.strategy);
        scenario::ScenarioOptions scenario_options;
        scenario_options.seed = config.seed;
        // The cell exists to measure the occupancy-count meeting engine.
        // Pin the detection mode (rather than trusting the Auto cutover)
        // and ignore config.batch: the lock-step kernel keeps a pairwise
        // scan, so batching would time the wrong code path.
        scenario_options.detection = sim::MeetingDetection::Occupancy;
        return scenario::run_scenario_trials(scen, program, g,
                                             scenario_options, spec.trials,
                                             trial_runner);
      }
      core::RendezvousOptions options;
      options.seed = config.seed;
      return config.batch > 1
                 ? core::run_trials_batched(strategy_named(spec.strategy), g,
                                            options, spec.trials,
                                            trial_runner, config.batch)
                 : core::run_trials(strategy_named(spec.strategy), g, options,
                                    spec.trials, trial_runner);
    }();
    const auto stop = std::chrono::steady_clock::now();
    const double seconds =
        std::chrono::duration<double>(stop - start).count();

    PerfCell cell;
    cell.strategy = spec.strategy;
    cell.scenario = spec.scenario;
    cell.topology = spec.topology;
    cell.n = spec.n;
    cell.trials = acc.count();
    for (const auto& outcome : acc.sorted_outcomes())
      cell.total_rounds += outcome.rounds;
    cell.success_rate = acc.aggregate().success_rate;
    cell.seconds = seconds;
    // Degenerate timers (clock resolution) report 0 rather than inf.
    cell.rounds_per_sec =
        seconds > 0.0 ? static_cast<double>(cell.total_rounds) / seconds
                      : 0.0;
    cell.trials_per_sec =
        seconds > 0.0 ? static_cast<double>(cell.trials) / seconds : 0.0;
    report.cells.push_back(std::move(cell));
  }
  return report;
}

// --- JSON emission ----------------------------------------------------------

std::string PerfReport::to_json() const {
  std::ostringstream os;
  os << "{\n"
     << "  \"schema\": \"" << schema << "\",\n"
     << "  \"quick\": " << (quick ? "true" : "false") << ",\n"
     << "  \"threads\": " << threads << ",\n"
     << "  \"seed\": " << seed << ",\n";
  if (batch > 0) os << "  \"batch\": " << batch << ",\n";
  os << "  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto& c = cells[i];
    os << "    {\"strategy\":\"" << c.strategy << "\",";
    // Emitted only for swarm cells, so strategy-only reports keep the exact
    // bytes they had before the field existed.
    if (!c.scenario.empty()) os << "\"scenario\":\"" << c.scenario << "\",";
    os << "\"topology\":\""
       << c.topology << "\",\"n\":" << c.n << ",\"trials\":" << c.trials
       << ",\"total_rounds\":" << c.total_rounds
       << ",\"success_rate\":" << format_double(c.success_rate, 4)
       << ",\"seconds\":" << format_double(c.seconds, 6)
       << ",\"rounds_per_sec\":" << format_double(c.rounds_per_sec, 2)
       << ",\"trials_per_sec\":" << format_double(c.trials_per_sec, 2)
       << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  os << "  ]\n}";
  return os.str();
}

// --- JSON parsing -----------------------------------------------------------

namespace {

PerfCell parse_cell(JsonCursor& cursor) {
  PerfCell cell;
  cursor.expect('{');
  bool first = true;
  while (!cursor.peek_is('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string key = cursor.parse_string();
    cursor.expect(':');
    if (key == "strategy") {
      cell.strategy = cursor.parse_string();
    } else if (key == "scenario") {
      cell.scenario = cursor.parse_string();
    } else if (key == "topology") {
      cell.topology = cursor.parse_string();
    } else if (key == "n") {
      cell.n = cursor.parse_uint64();
    } else if (key == "trials") {
      cell.trials = cursor.parse_uint64();
    } else if (key == "total_rounds") {
      cell.total_rounds = cursor.parse_uint64();
    } else if (key == "success_rate") {
      cell.success_rate = cursor.parse_number();
    } else if (key == "seconds") {
      cell.seconds = cursor.parse_number();
    } else if (key == "rounds_per_sec") {
      cell.rounds_per_sec = cursor.parse_number();
    } else if (key == "trials_per_sec") {
      cell.trials_per_sec = cursor.parse_number();
    } else {
      FNR_CHECK_MSG(false, "perf JSON: unknown cell field '" << key << "'");
    }
  }
  cursor.expect('}');
  return cell;
}

}  // namespace

PerfReport parse_report(const std::string& json) {
  JsonCursor cursor(json, "perf JSON");
  PerfReport report;
  cursor.expect('{');
  bool first = true;
  while (!cursor.peek_is('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string key = cursor.parse_string();
    cursor.expect(':');
    if (key == "schema") {
      report.schema = cursor.parse_string();
      FNR_CHECK_MSG(report.schema == schema_tag(),
                    "perf JSON: schema '" << report.schema
                                          << "' is not " << schema_tag());
    } else if (key == "quick") {
      report.quick = cursor.parse_bool();
    } else if (key == "threads") {
      report.threads = static_cast<unsigned>(cursor.parse_uint64());
    } else if (key == "seed") {
      report.seed = cursor.parse_uint64();
    } else if (key == "batch") {
      report.batch = cursor.parse_uint64();
    } else if (key == "cells") {
      cursor.expect('[');
      while (!cursor.peek_is(']')) {
        if (!report.cells.empty()) cursor.expect(',');
        report.cells.push_back(parse_cell(cursor));
      }
      cursor.expect(']');
    } else {
      FNR_CHECK_MSG(false, "perf JSON: unknown report field '" << key << "'");
    }
  }
  cursor.expect('}');
  cursor.expect_end();
  return report;
}

void validate_report(const PerfReport& report) {
  FNR_CHECK_MSG(report.schema == schema_tag(),
                "schema '" << report.schema << "' is not " << schema_tag());
  FNR_CHECK_MSG(!report.cells.empty(), "report has no cells");
  FNR_CHECK_MSG(report.threads >= 1, "report records no worker threads");
  for (const auto& cell : report.cells) {
    FNR_CHECK_MSG(!cell.strategy.empty(), "cell without a strategy label");
    FNR_CHECK_MSG(!cell.topology.empty(), "cell without a topology label");
    FNR_CHECK_MSG(cell.n > 0, "cell '" << cell.strategy << "/"
                                       << cell.topology << "' has n = 0");
    FNR_CHECK_MSG(cell.trials > 0, "cell '" << cell.strategy << "/"
                                            << cell.topology
                                            << "' ran no trials");
    FNR_CHECK_MSG(std::isfinite(cell.success_rate) &&
                      cell.success_rate >= 0.0 && cell.success_rate <= 1.0,
                  "cell '" << cell.strategy << "/" << cell.topology
                           << "' success_rate out of [0, 1]");
    FNR_CHECK_MSG(std::isfinite(cell.seconds) && cell.seconds >= 0.0,
                  "cell '" << cell.strategy << "/" << cell.topology
                           << "' has a negative duration");
    FNR_CHECK_MSG(
        std::isfinite(cell.rounds_per_sec) && cell.rounds_per_sec >= 0.0,
        "cell '" << cell.strategy << "/" << cell.topology
                 << "' rounds_per_sec invalid");
    FNR_CHECK_MSG(
        std::isfinite(cell.trials_per_sec) && cell.trials_per_sec >= 0.0,
        "cell '" << cell.strategy << "/" << cell.topology
                 << "' trials_per_sec invalid");
  }
}

void write_report_file(const PerfReport& report, const std::string& path) {
  std::ofstream out(path);
  FNR_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << report.to_json() << "\n";
  out.flush();  // surface buffered-write failures (e.g. disk full) here,
                // not silently in the destructor
  FNR_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

PerfReport read_report_file(const std::string& path) {
  std::ifstream in(path);
  FNR_CHECK_MSG(in.good(), "cannot open '" << path << "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_report(buffer.str());
}

// --- regression gate --------------------------------------------------------

PerfReport best_of(const std::vector<PerfReport>& reports) {
  FNR_CHECK_MSG(!reports.empty(), "best_of needs at least one report");
  PerfReport merged = reports.front();
  for (std::size_t r = 1; r < reports.size(); ++r) {
    const PerfReport& rep = reports[r];
    FNR_CHECK_MSG(
        rep.quick == merged.quick && rep.cells.size() == merged.cells.size(),
        "best_of: rep " << r << " ran a different sweep ("
                        << rep.cells.size() << " cells vs "
                        << merged.cells.size() << ")");
    for (std::size_t i = 0; i < merged.cells.size(); ++i) {
      PerfCell& best = merged.cells[i];
      const PerfCell& cell = rep.cells[i];
      FNR_CHECK_MSG(cell.strategy == best.strategy &&
                        cell.scenario == best.scenario &&
                        cell.topology == best.topology && cell.n == best.n &&
                        cell.trials == best.trials &&
                        cell.total_rounds == best.total_rounds &&
                        cell.success_rate == best.success_rate,
                    "best_of: rep " << r << " cell '" << cell.strategy << "/"
                                    << cell.topology
                                    << "' drifted in identity fields");
      best.seconds = std::min(best.seconds, cell.seconds);
      best.rounds_per_sec = std::max(best.rounds_per_sec, cell.rounds_per_sec);
      best.trials_per_sec = std::max(best.trials_per_sec, cell.trials_per_sec);
    }
  }
  return merged;
}

GateResult gate_against_baseline(const PerfReport& baseline,
                                 const PerfReport& current,
                                 double tolerance) {
  FNR_CHECK_MSG(std::isfinite(tolerance) && tolerance >= 0.0 &&
                    tolerance < 1.0,
                "gate tolerance must be in [0, 1), got " << tolerance);
  GateResult result;
  auto fail = [&](std::ostringstream& os) {
    result.failures.push_back(os.str());
  };

  if (baseline.quick != current.quick) {
    std::ostringstream os;
    os << "mode mismatch: baseline is " << (baseline.quick ? "quick" : "full")
       << ", current is " << (current.quick ? "quick" : "full");
    fail(os);
    return result;
  }
  if (baseline.cells.size() != current.cells.size()) {
    std::ostringstream os;
    os << "cell count mismatch: baseline has " << baseline.cells.size()
       << ", current has " << current.cells.size()
       << " (the measured sweep changed; refresh the baseline)";
    fail(os);
    return result;
  }

  for (std::size_t i = 0; i < baseline.cells.size(); ++i) {
    const PerfCell& base = baseline.cells[i];
    const PerfCell& cur = current.cells[i];
    const std::string name =
        base.strategy +
        (base.scenario.empty() ? "" : "[" + base.scenario + "]") + "/" +
        base.topology;
    if (base.strategy != cur.strategy || base.scenario != cur.scenario ||
        base.topology != cur.topology || base.n != cur.n) {
      std::ostringstream os;
      os << "cell " << i << ": identity mismatch (baseline " << name << " n="
         << base.n << ", current " << cur.strategy
         << (cur.scenario.empty() ? "" : "[" + cur.scenario + "]") << "/"
         << cur.topology << " n=" << cur.n << ")";
      fail(os);
      continue;
    }
    // Workload identity: any drift means the measured computation changed
    // (e.g. the batched kernel stopped being bit-exact), not that the
    // machine got slower — no tolerance applies. success_rate is compared
    // through the JSON formatting so an in-memory report gates identically
    // to its own round-tripped bytes.
    if (base.trials != cur.trials || base.total_rounds != cur.total_rounds ||
        format_double(base.success_rate, 4) !=
            format_double(cur.success_rate, 4)) {
      std::ostringstream os;
      os << name << ": workload drift (trials " << base.trials << " -> "
         << cur.trials << ", total_rounds " << base.total_rounds << " -> "
         << cur.total_rounds << ", success_rate "
         << format_double(base.success_rate, 4) << " -> "
         << format_double(cur.success_rate, 4) << ")";
      fail(os);
      continue;
    }
    if (base.rounds_per_sec <= 0.0) continue;  // degenerate baseline timer
    const double floor = base.rounds_per_sec * (1.0 - tolerance);
    if (cur.rounds_per_sec < floor) {
      std::ostringstream os;
      os << name << ": rounds/sec regressed "
         << format_double(base.rounds_per_sec, 2) << " -> "
         << format_double(cur.rounds_per_sec, 2) << " (floor "
         << format_double(floor, 2) << " at tolerance "
         << format_double(tolerance, 2) << ")";
      fail(os);
    }
  }
  return result;
}

}  // namespace fnr::perf
