#include "campaign/executor.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <optional>
#include <thread>
#include <vector>

#include "runner/trial_runner.hpp"
#include "scenario/run.hpp"
#include "scenario/scenario.hpp"

namespace fnr::campaign {

using sweep::SweepCell;

// --- cost model --------------------------------------------------------------

namespace {

/// Observed rates are keyed per (program label, topology family): the
/// program dominates the per-round constant, the family the per-round
/// neighborhood work, and everything else (n, trials, k) is what weight()
/// already scales by.
std::string rate_key(const SweepCell& cell) {
  return scenario::to_string(cell.program) + "|" + cell.topology.family;
}

}  // namespace

double CellCostModel::weight(const SweepCell& cell) {
  const double n =
      static_cast<double>(cell.achieved_n > 0 ? cell.achieved_n : cell.n);
  double agents = 2.0;
  if (cell.k.has_value()) {
    agents = static_cast<double>(*cell.k);
  } else {
    try {
      agents = static_cast<double>(
          scenario::find_scenario(cell.scenario).num_agents);
    } catch (const CheckError&) {
      // Unknown scenario: the cell will fail deterministically anyway;
      // any finite weight does.
    }
  }
  // Neighborhood-scan families cost far more per round than constant-
  // degree walks (BENCH_perf.json spans ~300-500× between near-regular
  // and torus at equal n) — a crude factor is enough for seeding, and
  // observe() replaces it with measured rates after the first completion.
  double family = 1.0;
  if (cell.topology.family == "near-regular") family = 30.0;
  else if (cell.topology.family == "random-geometric") family = 4.0;
  return std::max(1.0, static_cast<double>(cell.trials)) *
         std::max(4.0, n) * std::max(1.0, agents) * family;
}

double CellCostModel::estimate(const SweepCell& cell) const {
  const double w = weight(cell);
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = rate_.find(rate_key(cell));
  // Unobserved pairs return the raw weight — orders of magnitude above
  // any realistic seconds-per-weight rate, so unknown-cost cells are
  // pulled first and the model learns their rate as early as possible.
  if (it == rate_.end()) return w;
  return w * it->second;
}

void CellCostModel::observe(const SweepCell& cell, double seconds) {
  const double rate = std::max(seconds, 1e-9) / weight(cell);
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = rate_.try_emplace(rate_key(cell), rate);
  if (!inserted) it->second = 0.5 * it->second + 0.5 * rate;
}

// --- executor ----------------------------------------------------------------

namespace {

/// One schedulable unit: a contiguous trial span of one cell (the whole
/// cell when unsplit).
struct Unit {
  std::size_t slot = 0;  ///< index into the input cell vector
  std::uint64_t first = 0;
  std::uint64_t count = 0;
  std::uint64_t shard = 0;  ///< shard index within the cell
};

/// Shared per-cell completion state. Shard workers write disjoint slots
/// of accs/errors; the final fetch_sub(acq_rel) hands the merge to the
/// last finisher with all writes visible.
struct CellState {
  std::atomic<std::uint64_t> remaining{0};
  std::vector<runner::TrialAccumulator> accs;
  std::vector<std::string> errors;  ///< per shard; empty = shard ok
  std::chrono::steady_clock::time_point start{};
  bool started = false;  ///< guarded by the queue mutex
  std::uint64_t shard_count = 1;
};

/// Runs trials [first, first+count) of `cell` into `acc`. Returns the
/// CheckError text on a deterministic cell failure (empty = ok) — the
/// same catch boundary the sequential path has always had, so a cell
/// that cannot run is a recorded result, not a dead campaign.
std::string run_cell_span(const SweepCell& cell, GraphCache& cache,
                          const runner::TrialRunner& trial_runner,
                          std::uint64_t batch, std::uint64_t first,
                          std::uint64_t count,
                          runner::TrialAccumulator* acc) {
  try {
    const std::shared_ptr<const graph::Graph> g = cache.get_shared(cell);
    scenario::Scenario scen = scenario::find_scenario(cell.scenario);
    // Axis overrides run the registered scenario with fields swapped
    // (expand() already pruned overrides the scenario cannot host): the
    // `agents` axis replaces k, the `gathers` axis the predicate.
    if (cell.k.has_value()) scen.num_agents = *cell.k;
    if (cell.gather.has_value()) scen.gathering = *cell.gather;
    scenario::ScenarioOptions options;
    options.seed = cell.seed;
    options.fault = cell.fault;
    *acc = scenario::run_scenario_trial_span(scen, cell.program, *g, options,
                                             first, count, trial_runner,
                                             batch);
    return {};
  } catch (const CheckError& error) {
    std::string text = error.what();
    if (text.empty()) text = "CheckError";
    return text;
  }
}

/// Assembles the finished cell's result from its shard accumulators.
/// Shard boundaries are invisible: merge() is multiset-associative and
/// aggregate() canonicalizes by trial index, so the bytes equal an
/// unsharded run's.
CellResult assemble(const SweepCell& cell, CellState& state) {
  CellResult result;
  result.cell = cell;
  for (const std::string& error : state.errors) {
    if (!error.empty()) {
      // Deterministic failures throw identically in every shard; take the
      // lowest shard's text, which is what a sequential run would record.
      result.ok = false;
      result.error = error;
      break;
    }
  }
  if (result.ok) {
    runner::TrialAccumulator merged;
    for (const auto& acc : state.accs) merged.merge(acc);
    for (const auto& out : merged.sorted_outcomes())
      result.total_rounds += out.rounds;
    result.agg_json = merged.aggregate().to_json();
  }
  result.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - state.start)
                       .count();
  return result;
}

}  // namespace

CellExecutor::CellExecutor(ExecutorOptions options)
    : options_(std::move(options)) {}

ExecutorStats CellExecutor::run(const std::vector<SweepCell>& cells,
                                const std::function<void(CellResult&&)>& emit,
                                const std::atomic<bool>& cancel) {
  ExecutorStats stats;
  GraphCache cache(options_.graph_cache_capacity);

  unsigned jobs = options_.jobs;
  if (jobs == 0) jobs = std::max(1u, std::thread::hardware_concurrency());

  // --- jobs == 1: inline on the calling thread — the reference path the
  // parallel one is pinned against (no pool, no staging, no split cells).
  if (jobs == 1) {
    const runner::TrialRunner trial_runner(
        runner::RunnerOptions{options_.trial_threads});
    CellCostModel model;  // observed for symmetry; nothing to schedule
    for (const SweepCell& cell : cells) {
      if (cancel.load(std::memory_order_relaxed)) break;
      if (options_.max_cells > 0 && stats.executed >= options_.max_cells)
        break;
      const auto start = std::chrono::steady_clock::now();
      CellResult result;
      result.cell = cell;
      runner::TrialAccumulator acc;
      result.error = run_cell_span(cell, cache, trial_runner, options_.batch,
                                   0, cell.trials, &acc);
      if (result.error.empty()) {
        for (const auto& out : acc.sorted_outcomes())
          result.total_rounds += out.rounds;
        result.agg_json = acc.aggregate().to_json();
      } else {
        result.ok = false;
      }
      result.seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      model.observe(cell, result.seconds);
      stats.total_rounds += result.total_rounds;
      ++stats.shards;
      ++stats.executed;
      emit(std::move(result));
    }
    stats.cache_hits = cache.hits();
    stats.cache_misses = cache.misses();
    stats.cache_evictions = cache.evictions();
    return stats;
  }

  // --- parallel path ---------------------------------------------------------

  // Cell-parallel runs default to one trial thread per worker: the worker
  // pool is the parallelism. An explicit trial_threads multiplies the two
  // pools (deliberate oversubscription — see docs/PERFORMANCE.md).
  const unsigned trial_threads =
      options_.trial_threads == 0 ? 1 : options_.trial_threads;
  const runner::TrialRunner trial_runner(
      runner::RunnerOptions{trial_threads});
  CellCostModel model;

  // max_cells restricts the *schedulable set* to the first N pending
  // cells — not started-cell count in completion order. The started set is
  // then a canonical prefix, so every cell that runs also flushes, the
  // executed set matches the sequential path exactly, and a paused
  // parallel campaign never burns work on cells it must discard.
  const std::size_t limit =
      options_.max_cells > 0
          ? static_cast<std::size_t>(std::min<std::uint64_t>(
                options_.max_cells, cells.size()))
          : cells.size();

  // Build the unit list: one unit per cell, or several contiguous trial
  // shards for cells big enough to split (>= 2 × min_shard_trials, at most
  // one shard per worker, never below min_shard_trials per shard).
  std::vector<CellState> states(cells.size());
  std::vector<Unit> queue;
  for (std::size_t slot = 0; slot < limit; ++slot) {
    const SweepCell& cell = cells[slot];
    std::uint64_t shards = 1;
    if (options_.min_shard_trials > 0 &&
        cell.trials >= 2 * options_.min_shard_trials)
      shards = std::min<std::uint64_t>(
          jobs, cell.trials / options_.min_shard_trials);
    CellState& state = states[slot];
    state.shard_count = shards;
    state.remaining.store(shards, std::memory_order_relaxed);
    state.accs.resize(shards);
    state.errors.resize(shards);
    if (shards > 1) ++stats.split_cells;
    const std::uint64_t base = cell.trials / shards;
    const std::uint64_t rem = cell.trials % shards;
    std::uint64_t first = 0;
    for (std::uint64_t s = 0; s < shards; ++s) {
      const std::uint64_t count = base + (s < rem ? 1 : 0);
      queue.push_back(Unit{slot, first, count, s});
      first += count;
    }
  }

  // Shared scheduling + staging state. The queue mutex serializes pops
  // (each pop scans remaining units for the most expensive — LPT with
  // online-refined estimates); the stage mutex hands finished results to
  // the calling thread, which alone runs emit() in canonical slot order.
  std::mutex queue_mutex;
  std::atomic<bool> stop{false};

  std::mutex stage_mutex;
  std::condition_variable stage_cv;
  std::vector<std::optional<CellResult>> staged(cells.size());
  unsigned active_workers = 0;
  std::exception_ptr worker_error;

  auto pop_unit = [&]() -> std::optional<Unit> {
    if (stop.load(std::memory_order_relaxed) ||
        cancel.load(std::memory_order_relaxed))
      return std::nullopt;
    std::lock_guard<std::mutex> lock(queue_mutex);
    std::size_t best = queue.size();
    double best_estimate = -1.0;
    for (std::size_t i = 0; i < queue.size(); ++i) {
      const Unit& unit = queue[i];
      const double estimate = model.estimate(cells[unit.slot]);
      if (best == queue.size() || estimate > best_estimate) {
        best = i;
        best_estimate = estimate;
        continue;
      }
      if (estimate == best_estimate) {
        // Deterministic tie-break: prefer the graph the pool is likely
        // still holding, then canonical order.
        const Unit& incumbent = queue[best];
        const auto unit_key = std::make_tuple(
            cells[unit.slot].graph_key(), cells[unit.slot].index, unit.shard);
        const auto best_key =
            std::make_tuple(cells[incumbent.slot].graph_key(),
                            cells[incumbent.slot].index, incumbent.shard);
        if (unit_key < best_key) best = i;
      }
    }
    if (best == queue.size()) return std::nullopt;
    Unit unit = queue[best];
    queue.erase(queue.begin() + static_cast<std::ptrdiff_t>(best));
    CellState& state = states[unit.slot];
    if (!state.started) {
      state.started = true;
      state.start = std::chrono::steady_clock::now();
    }
    return unit;
  };

  auto worker = [&]() {
    try {
      for (;;) {
        const std::optional<Unit> unit = pop_unit();
        if (!unit.has_value()) break;
        const SweepCell& cell = cells[unit->slot];
        CellState& state = states[unit->slot];
        state.errors[unit->shard] =
            run_cell_span(cell, cache, trial_runner, options_.batch,
                          unit->first, unit->count, &state.accs[unit->shard]);
        if (state.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Last shard standing: merge, measure, stage for the flusher.
          CellResult result = assemble(cell, state);
          model.observe(cell, result.seconds);
          {
            std::lock_guard<std::mutex> lock(stage_mutex);
            staged[unit->slot] = std::move(result);
          }
          stage_cv.notify_all();
        }
        {
          std::lock_guard<std::mutex> lock(stage_mutex);
          ++stats.shards;
        }
      }
    } catch (...) {
      // Non-CheckError escapes (CheckErrors became results above): record
      // the first, stop the pool, and let the flusher unwind.
      std::lock_guard<std::mutex> lock(stage_mutex);
      if (!worker_error) worker_error = std::current_exception();
      stop.store(true, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(stage_mutex);
      --active_workers;
    }
    stage_cv.notify_all();
  };

  const unsigned worker_count =
      static_cast<unsigned>(std::min<std::size_t>(jobs, queue.size()));
  std::vector<std::thread> pool;
  pool.reserve(worker_count);
  {
    std::lock_guard<std::mutex> lock(stage_mutex);
    active_workers = worker_count;
  }
  for (unsigned w = 0; w < worker_count; ++w) pool.emplace_back(worker);

  // The reorder buffer's flush loop: emit the contiguous canonical prefix
  // as it completes, on this thread only. An emit() failure (e.g. a full
  // disk under the checkpoint writer) stops the pool and rethrows after
  // the workers drain.
  std::size_t next = 0;
  std::exception_ptr emit_error;
  {
    std::unique_lock<std::mutex> lock(stage_mutex);
    for (;;) {
      stage_cv.wait(lock, [&] {
        return active_workers == 0 ||
               (next < staged.size() && staged[next].has_value());
      });
      while (next < staged.size() && staged[next].has_value()) {
        CellResult result = std::move(*staged[next]);
        staged[next].reset();
        ++next;
        lock.unlock();
        try {
          stats.total_rounds += result.total_rounds;
          ++stats.executed;
          emit(std::move(result));
        } catch (...) {
          emit_error = std::current_exception();
          stop.store(true, std::memory_order_relaxed);
        }
        lock.lock();
        if (emit_error) break;
      }
      if (emit_error) break;
      if (active_workers == 0 &&
          !(next < staged.size() && staged[next].has_value()))
        break;
    }
    // On an emit failure, wait out the pool under the predicate (workers
    // may still be staging).
    if (emit_error)
      stage_cv.wait(lock, [&] { return active_workers == 0; });
  }
  for (std::thread& thread : pool) thread.join();
  if (emit_error) std::rethrow_exception(emit_error);
  if (worker_error) std::rethrow_exception(worker_error);

  for (std::size_t i = next; i < staged.size(); ++i)
    if (staged[i].has_value()) ++stats.discarded;
  stats.cache_hits = cache.hits();
  stats.cache_misses = cache.misses();
  stats.cache_evictions = cache.evictions();
  return stats;
}

}  // namespace fnr::campaign
