// The campaign core: the spec → grid → shard → checkpoint → merge
// lifecycle as a reusable, resumable, cancelable object.
//
// Historically this lifecycle lived inside the batch-only sweep engine
// (src/sweep/engine.cpp) and was reachable only through one-shot CLI
// binaries. The campaign layer extracts it so *any* execution surface — the
// bench/sweep CLI, the fnrd service daemon, an in-process test — drives the
// identical machinery: sweep::run_sweep is now a thin wrapper over
// Campaign, and fnrd's workers run Campaign directly with a streaming
// callback.
//
// Execution model. expand(spec) defines the canonical grid; a shard owns
// the cells with index % shard_count == shard_index, so any number of
// worker processes can split a campaign without coordination. Within a
// shard, cells are *executed* grouped by graph key (so the graph cache
// turns repeated (family, n, params, seed) cells into one generation) but
// *reported* in canonical grid order — execution order is invisible in
// every artifact.
//
// Determinism contract. A cell's aggregate depends only on its key: trial
// batches run through scenario::run_scenario_trials, whose aggregates are
// bit-identical across thread counts, and graph generation draws only from
// Rng(cell.seed, kGraphStream). Checkpoint lines carry the aggregate JSON
// verbatim, and to_json() orders cells by grid index and excludes all
// timing fields — so an interrupted-then-resumed campaign (even resumed
// with a different thread count, a different batch size, or through a
// different surface: CLI vs daemon) produces byte-identical merged JSON to
// an uninterrupted run. scripts/ci.sh asserts exactly that on every build,
// for both surfaces.
//
// Incremental results. Campaign::run invokes a per-cell callback the
// moment a cell finishes (after its checkpoint line is flushed, so a
// streamed cell is never lost to a crash) and for every cell restored from
// the checkpoint on resume — a streaming client that reconnects after a
// daemon kill -9 + RESUME replays the full result set.
//
// Cancelation. cancel() is thread- and signal-safe (one relaxed atomic
// store); the run stops after the in-flight cell completes and its
// checkpoint line is flushed, which is exactly the boundary resume needs.
//
// Checkpoints are append-only JSONL (one completed cell per line, flushed
// per cell); a campaign killed mid-write leaves at most one torn final
// line, which load_checkpoint drops (the cell re-runs on resume). An
// unparsable line anywhere *before* the final one is real corruption, not
// an interrupt signature, and raises a line-numbered CheckError — silently
// stopping there used to discard every later completed cell.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sweep/spec.hpp"

namespace fnr::campaign {

/// Schema tag emitted in merged sweep reports ("fnr-sweep/<version>").
inline constexpr int kSweepSchemaVersion = 1;
[[nodiscard]] std::string sweep_schema_tag();

struct CampaignOptions {
  unsigned threads = 0;  ///< trial-runner pool size; 0 = hardware threads
  /// This campaign owns grid cells with index % shard_count == shard_index.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Append-only JSONL checkpoint; empty disables checkpointing.
  std::string checkpoint_path;
  /// Load checkpoint_path first and skip completed cells by key. Without
  /// resume, an existing checkpoint file is truncated (fresh campaign).
  bool resume = false;
  /// Stop after this many newly-executed cells (0 = no limit). CI smokes
  /// use this as a deterministic "kill mid-campaign"; the daemon exposes it
  /// per SUBMIT for the same purpose.
  std::uint64_t max_cells = 0;
  /// Lock-step batch size for the SoA trial kernel (0 or 1 = scalar path).
  /// Purely a throughput lever: the kernel is bit-exact against the scalar
  /// Scheduler, so merged JSON is byte-identical either way (faulty cells
  /// always run scalar). Deliberately NOT part of any cell key.
  std::uint64_t batch = 0;
  /// Generated-topology cache slots (graphs are keyed by
  /// SweepCell::graph_key(); eviction is least-recently-used).
  std::size_t graph_cache_capacity = 4;
  /// Per-cell progress lines (nullptr = silent).
  std::ostream* progress = nullptr;
};

/// One cell's result. `agg_json` is TrialAggregate::to_json() — carried
/// verbatim through checkpoints, never re-formatted.
struct CellResult {
  sweep::SweepCell cell;
  bool ok = true;
  std::string error;     ///< sanitized CheckError text when !ok
  std::string agg_json;  ///< empty when !ok
  double seconds = 0.0;  ///< wall-clock, informational (checkpoint only)
  bool from_checkpoint = false;
};

/// Bounded cache of generated topologies keyed by SweepCell::graph_key().
/// Entries are heap-allocated, so a returned reference stays valid until
/// the entry itself is evicted — the campaign runs cells grouped by graph
/// key, so the in-use graph is always the most recently used.
class GraphCache {
 public:
  explicit GraphCache(std::size_t capacity);

  /// The graph for `cell`, generated on miss (evicting the least-recently-
  /// used entry when full).
  [[nodiscard]] const graph::Graph& get(const sweep::SweepCell& cell);

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Entry {
    std::string key;
    std::unique_ptr<graph::Graph> graph;
    std::uint64_t last_used = 0;
  };
  std::vector<Entry> entries_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// --- checkpoints -------------------------------------------------------------

/// What a checkpoint line records about a completed cell.
struct CheckpointEntry {
  bool ok = true;
  std::string agg_json;  ///< verbatim aggregate bytes
  std::string error;
  double seconds = 0.0;
};

/// Completed cells by key. A missing file yields an empty map; a torn
/// final line (interrupted mid-write) is dropped so its cell re-runs.
/// Throws a line-numbered CheckError on an unparsable line anywhere
/// before the final one — that is corruption, and silently stopping
/// there would discard every later completed cell.
[[nodiscard]] std::map<std::string, CheckpointEntry> load_checkpoint(
    const std::string& path);

/// The JSONL line Campaign appends for `result` (exposed for tests).
[[nodiscard]] std::string checkpoint_line(const CellResult& result);

/// Merges shard checkpoints into a full campaign's results (canonical
/// order). Throws CheckError naming the first missing cell when the
/// checkpoints do not cover the whole grid.
[[nodiscard]] std::vector<CellResult> results_from_checkpoints(
    const sweep::SweepSpec& spec,
    const std::vector<std::map<std::string, CheckpointEntry>>& checkpoints);

// --- reporting ---------------------------------------------------------------

/// Deterministic merged report: cells sorted by grid index, aggregate
/// bytes verbatim, no timing fields. Byte-identical for resumed vs
/// uninterrupted campaigns and for CLI vs daemon execution. Active-fault
/// cells additionally carry a "fault" field (the plan key) and — when
/// their fault-free twin cell is present and ok — a "vs_fault_free" block
/// with the rounds overhead ratio and the success-rate drop; fault-free
/// cells keep the exact bytes they had before the fault layer existed.
[[nodiscard]] std::string to_json(const sweep::SweepSpec& spec,
                                  const std::vector<CellResult>& cells);

/// CSV rows (TrialAggregate columns, label = cell key); failed cells are
/// skipped.
[[nodiscard]] std::string to_csv(const std::vector<CellResult>& cells);

// --- the campaign object -----------------------------------------------------

/// Summary of one Campaign::run.
struct CampaignRun {
  /// This shard's cells in canonical grid order. When the campaign was
  /// stopped early (max_cells or cancel), only finished cells are present.
  std::vector<CellResult> cells;
  std::uint64_t executed = 0;  ///< cells newly run (not restored)
  std::uint64_t restored = 0;  ///< cells restored from the checkpoint
  bool complete = false;       ///< every cell of this shard has a result
  bool cancelled = false;      ///< run stopped because cancel() was called
  std::uint64_t graph_cache_hits = 0;
  std::uint64_t graph_cache_misses = 0;
};

/// Invoked once per finished cell, in execution order (restored cells are
/// replayed through the same callback with from_checkpoint = true). The
/// cell's checkpoint line is already flushed when the callback fires.
using CellCallback = std::function<void(const CellResult&)>;

/// One resumable, cancelable execution of a spec's shard. Construct, then
/// run() exactly once; to resume later (same process or a fresh one),
/// construct a new Campaign with options.resume = true and the same
/// checkpoint path.
class Campaign {
 public:
  /// Expands the grid and selects this shard's cells. Throws CheckError on
  /// an invalid spec or shard range.
  Campaign(sweep::SweepSpec spec, CampaignOptions options);

  [[nodiscard]] const sweep::SweepSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const CampaignOptions& options() const noexcept {
    return options_;
  }
  /// This shard's cells, canonical grid order.
  [[nodiscard]] const std::vector<sweep::SweepCell>& shard_cells()
      const noexcept {
    return cells_;
  }

  /// Executes the shard: restores checkpointed cells, runs the rest
  /// grouped by graph key, appends + flushes a checkpoint line per cell,
  /// and invokes `on_cell` for every finished cell. Stops early on
  /// max_cells or cancel(). Callable once.
  CampaignRun run(const CellCallback& on_cell = {});

  /// Requests a stop after the in-flight cell completes (and its
  /// checkpoint line is flushed). Safe from other threads and from signal
  /// handlers — a single relaxed atomic store.
  void cancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  sweep::SweepSpec spec_;
  CampaignOptions options_;
  std::vector<sweep::SweepCell> cells_;
  std::atomic<bool> cancel_{false};
  bool ran_ = false;
};

}  // namespace fnr::campaign
