// The campaign core: the spec → grid → shard → checkpoint → merge
// lifecycle as a reusable, resumable, cancelable object.
//
// Historically this lifecycle lived inside the batch-only sweep engine
// (src/sweep/engine.cpp) and was reachable only through one-shot CLI
// binaries. The campaign layer extracts it so *any* execution surface — the
// bench/sweep CLI, the fnrd service daemon, an in-process test — drives the
// identical machinery: sweep::run_sweep is now a thin wrapper over
// Campaign, and fnrd's workers run Campaign directly with a streaming
// callback.
//
// Execution model. expand(spec) defines the canonical grid; a shard owns
// the cells with index % shard_count == shard_index, so any number of
// worker processes can split a campaign without coordination. Within a
// shard, cells run on the cell executor (src/campaign/executor.hpp):
// `jobs` worker threads pull cells off a work-stealing queue seeded in
// longest-processing-time order by an online-refined cost model, huge
// cells split into mergeable trial shards, and a reorder buffer stages
// completed results so checkpoint lines, callbacks, and reports are
// emitted in canonical grid order — execution order is invisible in
// every artifact, and `--jobs=1` vs `--jobs=4` are byte-identical.
//
// Determinism contract. A cell's aggregate depends only on its key: trial
// batches run through scenario::run_scenario_trials, whose aggregates are
// bit-identical across thread counts, and graph generation draws only from
// Rng(cell.seed, kGraphStream). Checkpoint lines carry the aggregate JSON
// verbatim, and to_json() orders cells by grid index and excludes all
// timing fields — so an interrupted-then-resumed campaign (even resumed
// with a different thread count, a different batch size, or through a
// different surface: CLI vs daemon) produces byte-identical merged JSON to
// an uninterrupted run. scripts/ci.sh asserts exactly that on every build,
// for both surfaces.
//
// Incremental results. Campaign::run invokes a per-cell callback the
// moment a cell finishes (after its checkpoint line is flushed, so a
// streamed cell is never lost to a crash) and for every cell restored from
// the checkpoint on resume — a streaming client that reconnects after a
// daemon kill -9 + RESUME replays the full result set.
//
// Cancelation. cancel() is thread- and signal-safe (one relaxed atomic
// store); workers stop pulling new work, in-flight cells complete, and
// the contiguous canonical prefix of their results is flushed — exactly
// the boundary resume needs (at jobs > 1, completed cells stuck behind an
// unfinished one are discarded and re-run on resume).
//
// Checkpoints are append-only JSONL (one completed cell per line, flushed
// per cell); a campaign killed mid-write leaves at most one torn final
// line, which load_checkpoint drops (the cell re-runs on resume). An
// unparsable line anywhere *before* the final one is real corruption, not
// an interrupt signature, and raises a line-numbered CheckError — silently
// stopping there used to discard every later completed cell.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sweep/spec.hpp"

namespace fnr::campaign {

/// Schema tag emitted in merged sweep reports ("fnr-sweep/<version>").
inline constexpr int kSweepSchemaVersion = 1;
[[nodiscard]] std::string sweep_schema_tag();

/// Default graph-cache slots — also the capacity the merged report's
/// canonical "cache" block is simulated at (see to_json).
inline constexpr std::size_t kDefaultGraphCacheCapacity = 12;

struct CampaignOptions {
  /// Trial-runner pool size *inside* one cell (0 = hardware threads at
  /// jobs == 1; at jobs > 1 the default drops to 1 thread per cell so the
  /// box runs jobs × 1 threads — see docs/PERFORMANCE.md for the
  /// oversubscription math before setting both).
  unsigned threads = 0;
  /// Concurrent cells: the executor's worker-pool size (1 = sequential,
  /// 0 = hardware threads). Any value produces byte-identical checkpoints,
  /// callbacks, and merged JSON — results are staged and flushed in
  /// canonical grid order regardless of completion order.
  unsigned jobs = 1;
  /// A cell with at least 2 × this many trials may be split into
  /// contiguous trial shards (never smaller than this) that run on
  /// different workers and merge through TrialAccumulator — so one
  /// monster cell cannot serialize a parallel campaign's tail.
  std::uint64_t min_shard_trials = 32;
  /// This campaign owns grid cells with index % shard_count == shard_index.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  /// Append-only JSONL checkpoint; empty disables checkpointing.
  std::string checkpoint_path;
  /// Load checkpoint_path first and skip completed cells by key. Without
  /// resume, an existing checkpoint file is truncated (fresh campaign).
  bool resume = false;
  /// Stop after this many newly-executed cells (0 = no limit). CI smokes
  /// use this as a deterministic "kill mid-campaign"; the daemon exposes it
  /// per SUBMIT for the same purpose.
  std::uint64_t max_cells = 0;
  /// Lock-step batch size for the SoA trial kernel (0 or 1 = scalar path).
  /// Purely a throughput lever: the kernel is bit-exact against the scalar
  /// Scheduler, so merged JSON is byte-identical either way (faulty cells
  /// always run scalar). Deliberately NOT part of any cell key.
  std::uint64_t batch = 0;
  /// Generated-topology cache slots (graphs are keyed by
  /// SweepCell::graph_key(); eviction is least-recently-used). The default
  /// covers every predefined spec's distinct keys — cells now execute in
  /// canonical grid order (which revisits each key once per program ×
  /// scenario block) rather than grouped by key, so a capacity below the
  /// distinct-key count would regenerate graphs once per block.
  std::size_t graph_cache_capacity = kDefaultGraphCacheCapacity;
  /// Per-cell progress lines (nullptr = silent).
  std::ostream* progress = nullptr;
};

/// One cell's result. `agg_json` is TrialAggregate::to_json() — carried
/// verbatim through checkpoints, never re-formatted.
struct CellResult {
  sweep::SweepCell cell;
  bool ok = true;
  std::string error;     ///< sanitized CheckError text when !ok
  std::string agg_json;  ///< empty when !ok
  double seconds = 0.0;  ///< wall-clock, informational (checkpoint only)
  /// Rounds executed across all trials of this cell. Runtime-only (never
  /// serialized; 0 for restored cells) — the perf suite's campaign cell
  /// derives its deterministic rounds/sec identity from it.
  std::uint64_t total_rounds = 0;
  bool from_checkpoint = false;
};

/// Bounded, thread-safe cache of generated topologies keyed by
/// SweepCell::graph_key().
///
/// Concurrency contract (the executor runs cells on several workers):
/// lookups are serialized by a mutex, but generation happens *outside* the
/// lock under an in-flight marker — concurrent requests for one key block
/// on a condition variable until the single generating worker publishes
/// the graph, so a family shared by N parallel cells is generated exactly
/// once (the hammer test pins this). Eviction is least-recently-used over
/// *published* entries; in-flight entries are never evicted, and when
/// every resident entry is in flight the cache temporarily exceeds its
/// capacity rather than blocking (capacity is a memory hint, not a
/// correctness bound).
class GraphCache {
 public:
  explicit GraphCache(std::size_t capacity);

  /// The graph for `cell`, generated on miss. The reference stays valid
  /// until the entry is evicted — safe for sequential use; concurrent
  /// workers must pin via get_shared() instead.
  [[nodiscard]] const graph::Graph& get(const sweep::SweepCell& cell);

  /// Like get(), but the returned shared_ptr pins the graph across
  /// eviction: a worker holding it keeps its topology alive even when
  /// other workers' misses rotate the entry out of the cache.
  [[nodiscard]] std::shared_ptr<const graph::Graph> get_shared(
      const sweep::SweepCell& cell);

  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;
  [[nodiscard]] std::uint64_t evictions() const;

 private:
  struct Entry {
    std::string key;
    /// Null while the generating worker builds the graph (in flight).
    std::shared_ptr<const graph::Graph> graph;
    std::uint64_t last_used = 0;
  };
  mutable std::mutex mutex_;
  std::condition_variable published_;
  std::vector<Entry> entries_;
  std::size_t capacity_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

// --- checkpoints -------------------------------------------------------------

/// What a checkpoint line records about a completed cell.
struct CheckpointEntry {
  bool ok = true;
  std::string agg_json;  ///< verbatim aggregate bytes
  std::string error;
  double seconds = 0.0;
};

/// Completed cells by key. A missing file yields an empty map; a torn
/// final line (interrupted mid-write) is dropped so its cell re-runs.
/// Throws a line-numbered CheckError on an unparsable line anywhere
/// before the final one — that is corruption, and silently stopping
/// there would discard every later completed cell.
[[nodiscard]] std::map<std::string, CheckpointEntry> load_checkpoint(
    const std::string& path);

/// The JSONL line Campaign appends for `result` (exposed for tests).
[[nodiscard]] std::string checkpoint_line(const CellResult& result);

/// Merges shard checkpoints into a full campaign's results (canonical
/// order). Throws CheckError naming the first missing cell when the
/// checkpoints do not cover the whole grid.
[[nodiscard]] std::vector<CellResult> results_from_checkpoints(
    const sweep::SweepSpec& spec,
    const std::vector<std::map<std::string, CheckpointEntry>>& checkpoints);

// --- reporting ---------------------------------------------------------------

/// Deterministic merged report: cells sorted by grid index, aggregate
/// bytes verbatim, no timing fields. Byte-identical for resumed vs
/// uninterrupted campaigns, for CLI vs daemon execution, and for any
/// --jobs value. The "cache" block is the *canonical* graph-cache workload
/// of the full grid (an LRU simulation over canonical cell order at the
/// default capacity) — a deterministic property of the spec, not the live
/// counters of this particular run, which resume/sharding would perturb
/// (live counters are reported per run in CampaignRun). Active-fault
/// cells additionally carry a "fault" field (the plan key) and — when
/// their fault-free twin cell is present and ok — a "vs_fault_free" block
/// with the rounds overhead ratio and the success-rate drop; fault-free
/// cells keep the exact bytes they had before the fault layer existed.
[[nodiscard]] std::string to_json(const sweep::SweepSpec& spec,
                                  const std::vector<CellResult>& cells);

/// CSV rows (TrialAggregate columns, label = cell key); failed cells are
/// skipped.
[[nodiscard]] std::string to_csv(const std::vector<CellResult>& cells);

// --- the campaign object -----------------------------------------------------

/// Summary of one Campaign::run.
struct CampaignRun {
  /// This shard's cells in canonical grid order. When the campaign was
  /// stopped early (max_cells or cancel), only finished cells are present.
  std::vector<CellResult> cells;
  std::uint64_t executed = 0;  ///< cells newly run, flushed, and reported
  std::uint64_t restored = 0;  ///< cells restored from the checkpoint
  /// Cells that finished on a worker but were never flushed: a parallel
  /// run was cancelled while they sat behind an unfinished cell in the
  /// reorder buffer. Their work is discarded — flushing them would tear a
  /// hole in the canonical-prefix checkpoint — and they re-run on resume.
  /// Always 0 at jobs == 1 (and under max_cells, which restricts the
  /// schedulable set instead of truncating completions).
  std::uint64_t discarded = 0;
  bool complete = false;       ///< every cell of this shard has a result
  bool cancelled = false;      ///< run stopped because cancel() was called
  /// Executor telemetry: cells split into trial shards, total work units
  /// executed, and rounds summed over newly-run cells (runtime-only).
  std::uint64_t split_cells = 0;
  std::uint64_t shards = 0;
  std::uint64_t total_rounds = 0;
  std::uint64_t graph_cache_hits = 0;
  std::uint64_t graph_cache_misses = 0;
  std::uint64_t graph_cache_evictions = 0;
};

/// Invoked once per finished cell. Restored cells are replayed first, in
/// canonical grid order, with from_checkpoint = true — always before any
/// newly-run cell's result flushes (the resume + --jobs contract); newly
/// run cells then fire in canonical grid order regardless of jobs. The
/// cell's checkpoint line is already flushed when the callback fires.
using CellCallback = std::function<void(const CellResult&)>;

/// One resumable, cancelable execution of a spec's shard. Construct, then
/// run() exactly once; to resume later (same process or a fresh one),
/// construct a new Campaign with options.resume = true and the same
/// checkpoint path.
class Campaign {
 public:
  /// Expands the grid and selects this shard's cells. Throws CheckError on
  /// an invalid spec or shard range.
  Campaign(sweep::SweepSpec spec, CampaignOptions options);

  [[nodiscard]] const sweep::SweepSpec& spec() const noexcept {
    return spec_;
  }
  [[nodiscard]] const CampaignOptions& options() const noexcept {
    return options_;
  }
  /// This shard's cells, canonical grid order.
  [[nodiscard]] const std::vector<sweep::SweepCell>& shard_cells()
      const noexcept {
    return cells_;
  }

  /// Executes the shard: replays checkpointed cells first (canonical
  /// order), runs the rest on the cell executor (options.jobs workers,
  /// results flushed in canonical order), appends + flushes a checkpoint
  /// line per cell, and invokes `on_cell` for every finished cell. Stops
  /// early on max_cells or cancel(). Callable once.
  CampaignRun run(const CellCallback& on_cell = {});

  /// Requests a stop after the in-flight cell completes (and its
  /// checkpoint line is flushed). Safe from other threads and from signal
  /// handlers — a single relaxed atomic store.
  void cancel() noexcept { cancel_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancel_.load(std::memory_order_relaxed);
  }

 private:
  sweep::SweepSpec spec_;
  CampaignOptions options_;
  std::vector<sweep::SweepCell> cells_;
  std::atomic<bool> cancel_{false};
  bool ran_ = false;
};

}  // namespace fnr::campaign
