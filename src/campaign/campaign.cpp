#include "campaign/campaign.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/executor.hpp"
#include "runner/trial_runner.hpp"
#include "scenario/run.hpp"
#include "util/json.hpp"
#include "util/table.hpp"

namespace fnr::campaign {

using sweep::SweepCell;
using sweep::SweepSpec;

std::string sweep_schema_tag() {
  return "fnr-sweep/" + std::to_string(kSweepSchemaVersion);
}

// --- graph cache -------------------------------------------------------------

GraphCache::GraphCache(std::size_t capacity)
    : capacity_(std::max<std::size_t>(1, capacity)) {}

const graph::Graph& GraphCache::get(const SweepCell& cell) {
  // The cache's own entry keeps the graph alive after the temporary
  // shared_ptr dies — same lifetime the reference always had (valid until
  // eviction). Concurrent callers must use get_shared() and hold the pin.
  return *get_shared(cell);
}

std::shared_ptr<const graph::Graph> GraphCache::get_shared(
    const SweepCell& cell) {
  const std::string key = cell.graph_key();
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    auto it = std::find_if(entries_.begin(), entries_.end(),
                           [&](const Entry& e) { return e.key == key; });
    if (it == entries_.end()) break;
    if (it->graph != nullptr) {
      it->last_used = ++tick_;
      ++hits_;
      return it->graph;
    }
    // Another worker is generating this key: wait for publication, then
    // rescan (the generator may have failed and withdrawn the entry).
    published_.wait(lock);
  }
  ++misses_;
  // Evict published LRU entries while at capacity. In-flight entries are
  // never evicted; if everything resident is in flight, temporarily
  // exceed capacity rather than block (capacity is a memory hint).
  while (entries_.size() >= capacity_) {
    auto lru = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it)
      if (it->graph != nullptr &&
          (lru == entries_.end() || it->last_used < lru->last_used))
        lru = it;
    if (lru == entries_.end()) break;
    entries_.erase(lru);
    ++evictions_;
  }
  entries_.push_back(Entry{key, nullptr, ++tick_});
  lock.unlock();

  std::shared_ptr<const graph::Graph> built;
  try {
    built = std::make_shared<graph::Graph>(
        cell.topology.build(cell.n, cell.seed));
  } catch (...) {
    // Withdraw the in-flight marker so waiters retry (and rethrow the
    // same deterministic error themselves).
    lock.lock();
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const Entry& e) {
                                    return e.key == key && e.graph == nullptr;
                                  }),
                   entries_.end());
    published_.notify_all();
    throw;
  }

  lock.lock();
  const auto it = std::find_if(
      entries_.begin(), entries_.end(), [&](const Entry& e) {
        return e.key == key && e.graph == nullptr;
      });
  FNR_CHECK_MSG(it != entries_.end(),
                "graph cache: in-flight entry for '" << key << "' vanished");
  it->graph = built;
  it->last_used = ++tick_;
  published_.notify_all();
  return built;
}

std::uint64_t GraphCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t GraphCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::uint64_t GraphCache::evictions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evictions_;
}

// --- checkpoints -------------------------------------------------------------

namespace {

/// Checkpoint/report strings must stay inside the no-escape JSON subset:
/// quotes, backslashes, and control characters are replaced, not escaped
/// (the bytes are pinned by the resume contract; json_escape is for the
/// wire protocol, not for these artifacts).
std::string json_safe(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '"') c = '\'';
    if (c == '\\') c = '/';
    if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return out;
}

CheckpointEntry parse_checkpoint_line(const std::string& line,
                                      std::string* key_out) {
  JsonCursor cursor(line, "sweep checkpoint");
  CheckpointEntry entry;
  cursor.expect('{');
  bool first = true;
  bool have_key = false;
  while (!cursor.peek_is('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string field = cursor.parse_string();
    cursor.expect(':');
    if (field == "key") {
      *key_out = cursor.parse_string();
      have_key = true;
    } else if (field == "ok") {
      entry.ok = cursor.parse_bool();
    } else if (field == "seconds") {
      entry.seconds = cursor.parse_number();
    } else if (field == "agg") {
      entry.agg_json = cursor.capture_value();
    } else if (field == "error") {
      entry.error = cursor.parse_string();
    } else {
      FNR_CHECK_MSG(false,
                    "sweep checkpoint: unknown field '" << field << "'");
    }
  }
  cursor.expect('}');
  cursor.expect_end();
  FNR_CHECK_MSG(have_key, "sweep checkpoint: line without a cell key");
  FNR_CHECK_MSG(entry.ok == !entry.agg_json.empty(),
                "sweep checkpoint: ok cells must carry 'agg', failed cells "
                "must not");
  return entry;
}

}  // namespace

std::map<std::string, CheckpointEntry> load_checkpoint(
    const std::string& path) {
  std::map<std::string, CheckpointEntry> done;
  std::ifstream in(path);
  if (!in.good()) return done;  // no checkpoint yet — nothing to resume
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  // Only the final non-empty line can legitimately be unparsable: lines
  // are flushed per cell, so a kill mid-write tears at most the last one.
  std::size_t last = lines.size();
  while (last > 0 && lines[last - 1].empty()) --last;
  for (std::size_t i = 0; i < last; ++i) {
    if (lines[i].empty()) continue;
    std::string key;
    try {
      CheckpointEntry entry = parse_checkpoint_line(lines[i], &key);
      done[key] = std::move(entry);
    } catch (const CheckError& error) {
      if (i + 1 == last) break;  // torn final line: drop it, cell re-runs
      // A bad line with intact records after it is corruption, not an
      // interrupt signature. The old behavior — stop scanning — silently
      // discarded every later completed cell; fail loudly instead.
      throw CheckError("sweep checkpoint '" + path + "' line " +
                       std::to_string(i + 1) + ": " + error.what());
    }
  }
  return done;
}

namespace {

std::string checkpoint_line_for(const std::string& key, bool ok,
                                const std::string& agg_json,
                                const std::string& error, double seconds) {
  std::ostringstream os;
  os << "{\"key\":\"" << json_safe(key) << "\",\"ok\":"
     << (ok ? "true" : "false");
  if (ok) {
    os << ",\"agg\":" << agg_json;
  } else {
    os << ",\"error\":\"" << json_safe(error) << "\"";
  }
  os << ",\"seconds\":" << format_double(seconds, 6) << "}";
  return os.str();
}

CellResult restored_result(const SweepCell& cell,
                           const CheckpointEntry& entry) {
  CellResult result;
  result.cell = cell;
  result.ok = entry.ok;
  result.agg_json = entry.agg_json;
  result.error = entry.error;
  result.seconds = entry.seconds;
  result.from_checkpoint = true;
  return result;
}

}  // namespace

std::string checkpoint_line(const CellResult& result) {
  return checkpoint_line_for(result.cell.key(), result.ok, result.agg_json,
                             result.error, result.seconds);
}

std::vector<CellResult> results_from_checkpoints(
    const SweepSpec& spec,
    const std::vector<std::map<std::string, CheckpointEntry>>& checkpoints) {
  std::vector<CellResult> results;
  for (const auto& cell : sweep::expand(spec)) {
    const std::string key = cell.key();
    const CheckpointEntry* found = nullptr;
    for (const auto& checkpoint : checkpoints) {
      const auto it = checkpoint.find(key);
      if (it != checkpoint.end()) {
        found = &it->second;
        break;
      }
    }
    FNR_CHECK_MSG(found != nullptr,
                  "merge: no checkpoint covers cell '" << key << "'");
    results.push_back(restored_result(cell, *found));
  }
  return results;
}

// --- execution ---------------------------------------------------------------

Campaign::Campaign(SweepSpec spec, CampaignOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  FNR_CHECK_MSG(options_.shard_count >= 1 &&
                    options_.shard_index < options_.shard_count,
                "shard index " << options_.shard_index << " not in [0, "
                               << options_.shard_count << ")");
  for (auto& cell : sweep::expand(spec_))
    if (cell.index % options_.shard_count == options_.shard_index)
      cells_.push_back(std::move(cell));
}

CampaignRun Campaign::run(const CellCallback& on_cell) {
  FNR_CHECK_MSG(!ran_, "Campaign::run is callable once; construct a new "
                       "Campaign (with resume) to continue");
  ran_ = true;

  std::map<std::string, CheckpointEntry> done;
  if (options_.resume && !options_.checkpoint_path.empty())
    done = load_checkpoint(options_.checkpoint_path);

  std::ofstream checkpoint;
  if (!options_.checkpoint_path.empty()) {
    // Always rewrite from the loaded entries rather than appending to the
    // raw file: a campaign killed mid-write leaves a torn, newline-less
    // final line, and appending after it would corrupt the next record
    // (silently dropping every later cell on the *following* resume).
    // The rewrite goes through a temp file + rename so a kill during the
    // rewrite itself cannot lose already-completed cells either.
    const std::string tmp_path = options_.checkpoint_path + ".tmp";
    {
      std::ofstream rewrite(tmp_path, std::ios::trunc);
      FNR_CHECK_MSG(rewrite.good(), "cannot open checkpoint temp '"
                                        << tmp_path << "' for writing");
      for (const auto& [key, entry] : done)
        rewrite << checkpoint_line_for(key, entry.ok, entry.agg_json,
                                       entry.error, entry.seconds)
                << "\n";
      rewrite.flush();
      FNR_CHECK_MSG(rewrite.good(),
                    "checkpoint rewrite to '" << tmp_path << "' failed");
    }
    FNR_CHECK_MSG(
        std::rename(tmp_path.c_str(), options_.checkpoint_path.c_str()) == 0,
        "cannot replace checkpoint '" << options_.checkpoint_path << "'");
    checkpoint.open(options_.checkpoint_path, std::ios::app);
    FNR_CHECK_MSG(checkpoint.good(), "cannot open checkpoint '"
                                         << options_.checkpoint_path
                                         << "' for writing");
  }

  CampaignRun result;
  std::vector<CellResult> staged(cells_.size());
  std::vector<char> have(cells_.size(), 0);

  // Restored cells replay first, in canonical grid order — always before
  // any newly-run cell's result flushes, whatever the jobs count (the
  // resume + --jobs contract: a streaming client sees the full replay
  // prefix, then live results, in one canonical sequence).
  std::vector<SweepCell> pending;
  std::vector<std::size_t> pending_slots;
  for (std::size_t slot = 0; slot < cells_.size(); ++slot) {
    const SweepCell& cell = cells_[slot];
    if (const auto it = done.find(cell.key()); it != done.end()) {
      staged[slot] = restored_result(cell, it->second);
      have[slot] = 1;
      ++result.restored;
      if (on_cell) on_cell(staged[slot]);
    } else {
      pending.push_back(cell);
      pending_slots.push_back(slot);
    }
  }

  // The executor runs the rest (inline at jobs == 1, on a worker pool
  // above) and emits finished results on this thread in exactly the
  // pending order — the contiguous canonical prefix. Checkpoint writes,
  // progress lines, and the callback all happen here, serialized.
  ExecutorOptions eopts;
  eopts.jobs = options_.jobs;
  eopts.trial_threads = options_.threads;
  eopts.batch = options_.batch;
  eopts.min_shard_trials = options_.min_shard_trials;
  eopts.max_cells = options_.max_cells;
  eopts.graph_cache_capacity = options_.graph_cache_capacity;
  CellExecutor executor(eopts);

  std::size_t emitted = 0;
  const auto emit = [&](CellResult&& cell_result) {
    const std::size_t slot = pending_slots[emitted++];
    staged[slot] = std::move(cell_result);
    have[slot] = 1;
    ++result.executed;
    if (checkpoint.is_open()) {
      checkpoint << checkpoint_line(staged[slot]) << "\n" << std::flush;
      FNR_CHECK_MSG(checkpoint.good(), "checkpoint write to '"
                                           << options_.checkpoint_path
                                           << "' failed");
    }
    if (options_.progress != nullptr) {
      const auto& r = staged[slot];
      *options_.progress << "[" << (result.executed + result.restored) << "/"
                         << cells_.size() << "] " << r.cell.key() << " — "
                         << (r.ok ? "ok" : "FAILED") << " ("
                         << format_double(r.seconds, 3) << "s)\n";
    }
    if (on_cell) on_cell(staged[slot]);
  };

  const ExecutorStats stats = executor.run(pending, emit, cancel_);
  if (cancel_requested()) result.cancelled = true;

  result.discarded = stats.discarded;
  result.split_cells = stats.split_cells;
  result.shards = stats.shards;
  result.total_rounds = stats.total_rounds;
  result.graph_cache_hits = stats.cache_hits;
  result.graph_cache_misses = stats.cache_misses;
  result.graph_cache_evictions = stats.cache_evictions;

  for (std::size_t i = 0; i < staged.size(); ++i)
    if (have[i]) result.cells.push_back(std::move(staged[i]));
  result.complete = result.cells.size() == cells_.size();
  return result;
}

// --- reporting ---------------------------------------------------------------

namespace {

/// Rebuilds a TrialAggregate from the verbatim aggregate JSON a cell
/// carries (the reverse of TrialAggregate::to_json, minus Summary.count,
/// which the JSON does not record and the CSV does not emit).
runner::TrialAggregate parse_agg_json(const std::string& json) {
  JsonCursor cursor(json, "sweep aggregate");
  runner::TrialAggregate agg;
  cursor.expect('{');
  bool first = true;
  while (!cursor.peek_is('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string field = cursor.parse_string();
    cursor.expect(':');
    if (field == "trials") {
      agg.trials = cursor.parse_uint64();
    } else if (field == "successes") {
      agg.successes = cursor.parse_uint64();
    } else if (field == "failures") {
      agg.failures = cursor.parse_uint64();
    } else if (field == "success_rate") {
      agg.success_rate = cursor.parse_number();
    } else if (field == "rounds") {
      cursor.expect('{');
      bool inner_first = true;
      while (!cursor.peek_is('}')) {
        if (!inner_first) cursor.expect(',');
        inner_first = false;
        const std::string stat = cursor.parse_string();
        cursor.expect(':');
        const double value = cursor.parse_number();
        if (stat == "mean") agg.rounds.mean = value;
        else if (stat == "median") agg.rounds.median = value;
        else if (stat == "p90") agg.rounds.p90 = value;
        else if (stat == "p95") agg.rounds.p95 = value;
        else if (stat == "min") agg.rounds.min = value;
        else if (stat == "max") agg.rounds.max = value;
        else FNR_CHECK_MSG(false, "sweep aggregate: unknown rounds field '"
                                      << stat << "'");
      }
      cursor.expect('}');
    } else if (field == "mean_gathered") {
      agg.mean_gathered = cursor.parse_number();
    } else if (field == "total_marks") {
      agg.total_marks = cursor.parse_uint64();
    } else if (field == "mean_marks") {
      agg.mean_marks = cursor.parse_number();
    } else if (field == "mean_moves_a") {
      agg.mean_moves_a = cursor.parse_number();
    } else if (field == "mean_moves_b") {
      agg.mean_moves_b = cursor.parse_number();
    } else if (field == "faults") {
      cursor.expect('{');
      bool inner_first = true;
      while (!cursor.peek_is('}')) {
        if (!inner_first) cursor.expect(',');
        inner_first = false;
        const std::string counter = cursor.parse_string();
        cursor.expect(':');
        const std::uint64_t value = cursor.parse_uint64();
        if (counter == "crashes") agg.fault_totals.crashes = value;
        else if (counter == "restarts") agg.fault_totals.restarts = value;
        else if (counter == "writes_dropped")
          agg.fault_totals.writes_dropped = value;
        else if (counter == "wipes") agg.fault_totals.wipes = value;
        else if (counter == "stale_reads") agg.fault_totals.stale_reads = value;
        else if (counter == "moves_blocked")
          agg.fault_totals.moves_blocked = value;
        else FNR_CHECK_MSG(false, "sweep aggregate: unknown faults field '"
                                      << counter << "'");
      }
      cursor.expect('}');
    } else {
      FNR_CHECK_MSG(false,
                    "sweep aggregate: unknown field '" << field << "'");
    }
  }
  cursor.expect('}');
  cursor.expect_end();
  return agg;
}

}  // namespace

namespace {

/// The canonical graph-cache workload of a spec: an LRU simulation over
/// the full grid in canonical cell order at the default capacity. A pure
/// function of the spec text — never of this run's jobs count, shard,
/// resume point, or configured capacity — so the merged report's "cache"
/// block cannot break the byte-identity contract (the *live* counters,
/// which resume and sharding legitimately perturb, are reported in
/// CampaignRun instead and pinned against this block by the hammer test
/// for fresh, unsharded, default-capacity runs).
struct CacheWorkload {
  std::uint64_t lookups = 0;
  std::uint64_t graph_keys = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

CacheWorkload simulate_cache_workload(const SweepSpec& spec) {
  CacheWorkload load;
  struct Slot {
    std::string key;
    std::uint64_t last_used = 0;
  };
  std::vector<Slot> slots;
  std::map<std::string, char> seen;
  std::uint64_t tick = 0;
  for (const auto& cell : sweep::expand(spec)) {
    const std::string key = cell.graph_key();
    ++load.lookups;
    ++tick;
    if (seen.emplace(key, 1).second) ++load.graph_keys;
    const auto it = std::find_if(slots.begin(), slots.end(),
                                 [&](const Slot& s) { return s.key == key; });
    if (it != slots.end()) {
      it->last_used = tick;
      ++load.hits;
      continue;
    }
    ++load.misses;
    if (slots.size() >= kDefaultGraphCacheCapacity) {
      slots.erase(std::min_element(slots.begin(), slots.end(),
                                   [](const Slot& a, const Slot& b) {
                                     return a.last_used < b.last_used;
                                   }));
      ++load.evictions;
    }
    slots.push_back(Slot{key, tick});
  }
  return load;
}

}  // namespace

std::string to_json(const SweepSpec& spec,
                    const std::vector<CellResult>& cells) {
  std::vector<const CellResult*> ordered;
  ordered.reserve(cells.size());
  for (const auto& cell : cells) ordered.push_back(&cell);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellResult* a, const CellResult* b) {
              return a->cell.index < b->cell.index;
            });
  // Fault-free twins by key: a faulty cell differs from its control only
  // by the `|fault=...` key suffix, so stripping the plan finds the twin
  // and the report can carry robustness deltas (success under f, overhead
  // vs fault-free) without a second campaign. Twin lookup walks verbatim
  // aggregate bytes, so the deltas are as deterministic as the cells.
  std::map<std::string, const CellResult*> fault_free;
  for (const CellResult* r : ordered)
    if (r->ok && !r->cell.fault.active()) fault_free[r->cell.key()] = r;
  std::ostringstream os;
  const CacheWorkload cache = simulate_cache_workload(spec);
  os << "{\n"
     << "  \"schema\": \"" << sweep_schema_tag() << "\",\n"
     << "  \"spec\": \"" << json_safe(spec.name) << "\",\n"
     << "  \"cache\": {\"lookups\":" << cache.lookups << ",\"graph_keys\":"
     << cache.graph_keys << ",\"hits\":" << cache.hits << ",\"misses\":"
     << cache.misses << ",\"evictions\":" << cache.evictions << "},\n"
     << "  \"cells\": [\n";
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    const CellResult& r = *ordered[i];
    os << "    {\"key\":\"" << json_safe(r.cell.key()) << "\",\"program\":\""
       << scenario::to_string(r.cell.program) << "\",\"scenario\":\""
       << json_safe(r.cell.scenario) << "\",\"topology\":\""
       << json_safe(r.cell.topology.key()) << "\",\"n\":" << r.cell.n
       << ",\"achieved_n\":" << r.cell.achieved_n
       << ",\"seed\":" << r.cell.seed << ",\"trials\":" << r.cell.trials;
    if (r.cell.gather.has_value())
      os << ",\"gather\":\"" << json_safe(sim::to_string(*r.cell.gather))
         << "\"";
    if (r.cell.k.has_value()) os << ",\"k\":" << *r.cell.k;
    if (r.cell.fault.active())
      os << ",\"fault\":\"" << json_safe(r.cell.fault.key()) << "\"";
    os << ",\"ok\":" << (r.ok ? "true" : "false");
    if (r.ok) {
      os << ",\"agg\":" << r.agg_json;
      if (r.cell.fault.active()) {
        SweepCell twin = r.cell;
        twin.fault = fault::FaultPlan{};
        // The block is emitted only when the report actually contains a
        // usable control: the twin may be missing entirely (sharded run
        // with the twin in another shard, or a truncated cell set), and a
        // control with no finished rounds would make the overhead ratio
        // meaningless. In both cases the cell simply carries no
        // vs_fault_free block rather than fabricated numbers.
        const auto it = fault_free.find(twin.key());
        if (it != fault_free.end()) {
          const auto control = parse_agg_json(it->second->agg_json);
          if (control.rounds.mean > 0.0) {
            const auto faulty = parse_agg_json(r.agg_json);
            os << ",\"vs_fault_free\":{\"rounds_overhead\":"
               << format_double(faulty.rounds.mean / control.rounds.mean, 4)
               << ",\"success_drop\":"
               << format_double(control.success_rate - faulty.success_rate, 4)
               << "}";
          }
        }
      }
    } else {
      os << ",\"error\":\"" << json_safe(r.error) << "\"";
    }
    os << "}" << (i + 1 < ordered.size() ? "," : "") << "\n";
  }
  os << "  ]\n}";
  return os.str();
}

std::string to_csv(const std::vector<CellResult>& cells) {
  std::vector<const CellResult*> ordered;
  ordered.reserve(cells.size());
  for (const auto& cell : cells) ordered.push_back(&cell);
  std::sort(ordered.begin(), ordered.end(),
            [](const CellResult* a, const CellResult* b) {
              return a->cell.index < b->cell.index;
            });
  std::ostringstream os;
  os << runner::TrialAggregate::csv_header() << "\n";
  for (const CellResult* r : ordered) {
    if (!r->ok) continue;  // failed cells have no aggregate columns
    os << parse_agg_json(r->agg_json).to_csv_row(r->cell.key()) << "\n";
  }
  return os.str();
}

}  // namespace fnr::campaign
