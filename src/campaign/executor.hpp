// The cell executor: a worker pool that runs a campaign's cells
// *concurrently* while every observable artifact stays byte-identical to a
// sequential run.
//
// Why. BENCH_perf.json spans ~2600× between the cheapest and the most
// expensive cell, so intra-cell trial threading alone leaves most cores
// idle on the long tail of small cells: a campaign's wall-clock is the sum
// of its cells. The executor makes it the max of its critical path
// instead: `jobs` workers pull cells off a shared queue, and a huge cell
// is additionally split into contiguous trial shards that run on several
// workers at once and merge through TrialAccumulator (whose aggregate is
// canonicalized by trial index, so shard boundaries are invisible).
//
// Scheduling. The queue is seeded in longest-processing-time order by a
// cost model: an a-priori weight from the cell's shape (trials × n ×
// agent count × a family factor for neighborhood-scan-heavy topologies),
// refined online by per-(program, family) seconds-per-weight rates
// observed from completed cells — so the second near-regular cell is
// scheduled with a measured cost, not a guess. Workers "steal" by popping
// the currently-most-expensive remaining unit under the queue lock; idle
// workers naturally drain a split cell's tail shards.
//
// Determinism (the headline contract). Completion order is timing-
// dependent; emission order is not. Finished results are staged in a
// reorder buffer and emit() fires on the *calling* thread, strictly in
// canonical grid order, only for the contiguous prefix of finished cells —
// so checkpoint lines, per-cell callbacks, fnrd replay frames, and merged
// JSON are byte-identical between --jobs=1 and --jobs=4, and a kill -9
// mid-parallel-run resumes cleanly (the flush boundary is unchanged).
// When the run stops early (cancel / max_cells), results stuck behind an
// unfinished cell are discarded rather than flushed out of order; they
// re-run on resume.
//
// jobs == 1 runs inline on the calling thread (no pool, no staging
// latency) and is the reference the parallel path is pinned against.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "campaign/campaign.hpp"
#include "sweep/spec.hpp"

namespace fnr::campaign {

struct ExecutorOptions {
  /// Worker-pool size (concurrent cells); 1 = inline, 0 = hardware threads.
  unsigned jobs = 1;
  /// Trial-runner pool *inside* one cell/shard. 0 = hardware threads at
  /// jobs == 1, but 1 at jobs > 1 (cell-parallel runs default to one
  /// trial thread per worker; anything else multiplies the two pools).
  unsigned trial_threads = 0;
  /// Lock-step SoA batch size handed to each cell (0/1 = scalar path).
  std::uint64_t batch = 0;
  /// Split threshold: a cell with >= 2 × this many trials may shard.
  std::uint64_t min_shard_trials = 32;
  /// Run only the first N cells of the batch (0 = no limit). Restricting
  /// the *schedulable set* — rather than counting starts in completion
  /// order — keeps the executed set identical to the sequential path at
  /// any jobs count, and means a paused campaign never discards work.
  std::uint64_t max_cells = 0;
  std::size_t graph_cache_capacity = 12;
};

/// Telemetry of one CellExecutor::run (feeds CampaignRun).
struct ExecutorStats {
  std::uint64_t executed = 0;   ///< cells completed *and* emitted
  std::uint64_t discarded = 0;  ///< completed but blocked at stop — re-run
  std::uint64_t split_cells = 0;
  std::uint64_t shards = 0;  ///< work units executed (1 per unsplit cell)
  std::uint64_t total_rounds = 0;  ///< summed over emitted cells
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_evictions = 0;
};

/// Cost model behind the LPT seeding: estimate() ranks cells by expected
/// seconds, observe() refines per-(program label, topology family) rates
/// from completed cells. Thread-safe; estimates only need to be *relatively*
/// right — a misranked cell costs idle time, never correctness.
class CellCostModel {
 public:
  /// A-priori shape weight: trials × achieved_n × agents, scaled for
  /// neighborhood-scan-heavy families (near-regular, random-geometric).
  [[nodiscard]] static double weight(const sweep::SweepCell& cell);

  /// Expected seconds (arbitrary unit before the first observation).
  /// Unobserved (program, family) pairs rank by raw weight above every
  /// observed rate — explore unknown cost first, exactly what LPT wants.
  [[nodiscard]] double estimate(const sweep::SweepCell& cell) const;

  /// Folds a completed cell's wall-clock into its (program, family) rate.
  void observe(const sweep::SweepCell& cell, double seconds);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, double> rate_;  ///< EMA seconds-per-weight
};

/// Runs one batch of cells. Construct per campaign run; run() is callable
/// once. The executor owns its graph cache and cost model.
class CellExecutor {
 public:
  explicit CellExecutor(ExecutorOptions options);

  /// Executes `cells` (must be in canonical grid order). emit() fires on
  /// the calling thread, in exactly the given order, for the contiguous
  /// prefix of cells that finished before the run stopped; the result is
  /// moved in. `cancel` is polled at unit boundaries. Rethrows the first
  /// non-CheckError worker exception after the pool drains (CheckErrors
  /// become ok = false results, as in a sequential run).
  ExecutorStats run(const std::vector<sweep::SweepCell>& cells,
                    const std::function<void(CellResult&&)>& emit,
                    const std::atomic<bool>& cancel);

 private:
  ExecutorOptions options_;
};

}  // namespace fnr::campaign
