// Summary statistics for experiment repetitions.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace fnr {

/// Five-number-style summary of a sample of measurements.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double median = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double max = 0.0;
};

/// Computes a Summary; an empty input yields an all-zero summary.
[[nodiscard]] Summary summarize(std::vector<double> values);

/// Linear-interpolated percentile of a sorted sample, q in [0, 1].
[[nodiscard]] double percentile_sorted(const std::vector<double>& sorted,
                                       double q);

/// Accumulates measurements for one experimental cell and reports a Summary.
class SampleAccumulator {
 public:
  void add(double value) { values_.push_back(value); }
  [[nodiscard]] std::size_t count() const noexcept { return values_.size(); }
  [[nodiscard]] Summary summary() const { return summarize(values_); }
  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return values_;
  }

 private:
  std::vector<double> values_;
};

/// Ordinary least squares fit of log(y) = a + b*log(x); reports the exponent
/// b and R². Used to verify asymptotic growth rates (e.g. rounds vs n).
struct PowerLawFit {
  double exponent = 0.0;
  double prefactor = 0.0;  // e^a
  double r_squared = 0.0;
};

[[nodiscard]] PowerLawFit fit_power_law(const std::vector<double>& xs,
                                        const std::vector<double>& ys);

}  // namespace fnr
