#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace fnr {

std::string format_double(double value, int digits) {
  if (!std::isfinite(value)) return value > 0 ? "inf" : (value < 0 ? "-inf" : "nan");
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  std::string s = os.str();
  if (s.find('.') != std::string::npos) {
    while (s.back() == '0') s.pop_back();
    if (s.back() == '.') s.pop_back();
  }
  return s;
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  FNR_CHECK_MSG(!header_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  FNR_CHECK_MSG(cells.size() == header_.size(),
                "row arity " << cells.size() << " != header arity "
                             << header_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_markdown() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += ' ' + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + '\n';
  };

  std::string out = emit_row(header_);
  out += "|";
  for (std::size_t c = 0; c < header_.size(); ++c)
    out += std::string(widths[c] + 2, '-') + "|";
  out += '\n';
  for (const auto& row : rows_) out += emit_row(row);
  return out;
}

std::string Table::to_csv() const {
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return out;
}

void Table::print(std::ostream& os) const { os << to_markdown() << '\n'; }

RowBuilder& RowBuilder::add(std::string cell) {
  cells_.push_back(std::move(cell));
  return *this;
}
RowBuilder& RowBuilder::add(const char* cell) {
  cells_.emplace_back(cell);
  return *this;
}
RowBuilder& RowBuilder::add(std::int64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
RowBuilder& RowBuilder::add(std::uint64_t value) {
  cells_.push_back(std::to_string(value));
  return *this;
}
RowBuilder& RowBuilder::add(double value, int digits) {
  cells_.push_back(format_double(value, digits));
  return *this;
}

}  // namespace fnr
