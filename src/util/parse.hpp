// Checked whole-string numeric parsing.
//
// One implementation of the "reject silent strtoll failure modes" rules
// shared by the CLI and the sweep-spec parser: empty input, trailing
// garbage, and range overflow all throw CheckError (strtoll/strtoull
// clamp with errno = ERANGE; strtod returns ±HUGE_VAL). Underflow to a
// subnormal double is NOT an error — glibc also sets ERANGE for it, but
// the parsed value is representable and fine.
#pragma once

#include <cstdint>
#include <string>

namespace fnr {

/// `what` names the value in error messages (e.g. "option --trials").
[[nodiscard]] std::int64_t parse_int64(const std::string& text,
                                       const std::string& what);

/// Rejects negative input outright (strtoull would silently wrap it).
[[nodiscard]] std::uint64_t parse_uint64(const std::string& text,
                                         const std::string& what);

[[nodiscard]] double parse_double(const std::string& text,
                                  const std::string& what);

/// parse_double plus an explicit finiteness requirement: strtod happily
/// accepts "nan", "inf", and "-inf", which then fail later range compares
/// with messages that never name the real problem. Spec-facing numerics
/// (program parameters, topology parameters, fault rates) route through
/// this so the error points at the non-finite input itself.
[[nodiscard]] double parse_finite_double(const std::string& text,
                                         const std::string& what);

}  // namespace fnr
