// Markdown / CSV table rendering for bench output.
//
// Every bench binary prints its experiment as a table whose rows mirror the
// series defined in DESIGN.md §4. Cells are strings; numeric helpers format
// consistently so tables diff cleanly across runs.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace fnr {

/// Formats a double with `digits` significant decimals, trimming noise.
[[nodiscard]] std::string format_double(double value, int digits = 2);

/// A simple column-aligned table.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; its arity must match the header.
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t num_rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const noexcept { return header_.size(); }

  /// GitHub-flavoured markdown rendering.
  [[nodiscard]] std::string to_markdown() const;

  /// RFC-4180-ish CSV rendering (no quoting needed for our cell content).
  [[nodiscard]] std::string to_csv() const;

  /// Prints the markdown rendering followed by a blank line.
  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Convenience builder for a row of heterogeneous cells.
class RowBuilder {
 public:
  RowBuilder& add(std::string cell);
  RowBuilder& add(const char* cell);
  RowBuilder& add(std::int64_t value);
  RowBuilder& add(std::uint64_t value);
  RowBuilder& add(double value, int digits = 2);
  /// Consumes the accumulated cells (the builder is spent afterwards).
  [[nodiscard]] std::vector<std::string> build() { return std::move(cells_); }

 private:
  std::vector<std::string> cells_;
};

}  // namespace fnr
