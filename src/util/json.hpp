// Minimal recursive-descent cursor over the JSON subset our artifacts use
// (objects, arrays, strings with the simple escapes, plain numbers,
// booleans).
//
// This is deliberately not a general JSON library: the perf suite, the
// sweep engine, and the fnrd wire protocol all emit fixed schemas and parse
// only each other's output, so the cursor rejects anything outside that
// subset instead of silently accepting it. Report/checkpoint emitters stay
// inside the historical no-escape subset (their bytes are pinned by the
// resume contract); the wire protocol carries arbitrary text (spec files,
// error messages) through json_escape, whose escapes parse_string decodes.
// Shared by src/perf/, src/sweep/, src/campaign/, and src/service/.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/check.hpp"

namespace fnr {

/// Escapes `text` for embedding inside a JSON string literal: quote,
/// backslash, and the common control characters get two-character escapes,
/// any other byte below 0x20 becomes \u00XX. The inverse of what
/// JsonCursor::parse_string decodes.
[[nodiscard]] std::string json_escape(std::string_view text);

class JsonCursor {
 public:
  /// `context` prefixes every error message (e.g. "perf JSON").
  explicit JsonCursor(const std::string& text,
                      std::string context = "JSON")
      : context_(std::move(context)),
        p_(text.data()),
        end_(text.data() + text.size()) {}

  void skip_ws() {
    while (p_ < end_ &&
           (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' || *p_ == '\r'))
      ++p_;
  }

  [[nodiscard]] bool peek_is(char c) {
    skip_ws();
    return p_ < end_ && *p_ == c;
  }

  void expect(char c) {
    skip_ws();
    FNR_CHECK_MSG(p_ < end_ && *p_ == c,
                  context_ << ": expected '" << c << "' with " << (end_ - p_)
                           << " bytes left");
    ++p_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (p_ < end_ && *p_ == c) {
      ++p_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string parse_string();

  [[nodiscard]] double parse_number();

  /// Integer fields must round-trip exactly (strtod would lose precision
  /// above 2^53 and casting an out-of-range double is UB).
  [[nodiscard]] std::uint64_t parse_uint64();

  [[nodiscard]] bool parse_bool();

  /// Skips one value of any supported kind (used to preserve a field
  /// verbatim without interpreting it).
  void skip_value();

  /// Skips one value and returns its exact source bytes (no leading or
  /// trailing whitespace). Lets callers re-emit a field byte-identically
  /// without a parse → re-format round trip.
  [[nodiscard]] std::string capture_value() {
    skip_ws();
    const char* start = p_;
    skip_value();
    return std::string(start, static_cast<std::size_t>(p_ - start));
  }

  void expect_end() {
    skip_ws();
    FNR_CHECK_MSG(p_ == end_, context_ << ": trailing content after value");
  }

 private:
  std::string context_;
  const char* p_;
  const char* end_;
};

}  // namespace fnr
