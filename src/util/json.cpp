#include "util/json.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

namespace fnr {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char raw : text) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out.push_back(kHex[c >> 4]);
          out.push_back(kHex[c & 0xF]);
        } else {
          out.push_back(raw);
        }
    }
  }
  return out;
}

std::string JsonCursor::parse_string() {
  expect('"');
  std::string out;
  while (p_ < end_ && *p_ != '"') {
    if (*p_ != '\\') {
      out.push_back(*p_++);
      continue;
    }
    ++p_;  // consume the backslash
    FNR_CHECK_MSG(p_ < end_, context_ << ": dangling escape at end of input");
    const char code = *p_++;
    switch (code) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 'r': out.push_back('\r'); break;
      case 't': out.push_back('\t'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      case 'u': {
        // json_escape only emits \u00XX; anything above U+00FF would need
        // UTF-16 surrogate handling, which is outside the schema.
        FNR_CHECK_MSG(end_ - p_ >= 4,
                      context_ << ": truncated \\u escape");
        unsigned value = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = *p_++;
          unsigned digit = 0;
          if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f')
            digit = static_cast<unsigned>(h - 'a') + 10;
          else if (h >= 'A' && h <= 'F')
            digit = static_cast<unsigned>(h - 'A') + 10;
          else
            FNR_CHECK_MSG(false, context_ << ": bad \\u escape digit '" << h
                                          << "'");
          value = value * 16 + digit;
        }
        FNR_CHECK_MSG(value <= 0xFF,
                      context_ << ": \\u escapes above U+00FF are not in "
                                  "the schema");
        out.push_back(static_cast<char>(value));
        break;
      }
      default:
        FNR_CHECK_MSG(false, context_ << ": unsupported escape '\\" << code
                                      << "'");
    }
  }
  expect('"');
  return out;
}

double JsonCursor::parse_number() {
  skip_ws();
  char* after = nullptr;
  const double value = std::strtod(p_, &after);
  FNR_CHECK_MSG(after != p_, context_ << ": expected a number");
  p_ = after;
  return value;
}

std::uint64_t JsonCursor::parse_uint64() {
  skip_ws();
  FNR_CHECK_MSG(p_ < end_ && *p_ != '-',
                context_ << ": expected a non-negative integer");
  char* after = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(p_, &after, 10);
  FNR_CHECK_MSG(after != p_, context_ << ": expected an integer");
  FNR_CHECK_MSG(errno != ERANGE,
                context_ << ": integer field out of 64-bit range");
  p_ = after;
  return value;
}

bool JsonCursor::parse_bool() {
  skip_ws();
  if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
    p_ += 4;
    return true;
  }
  if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
    p_ += 5;
    return false;
  }
  FNR_CHECK_MSG(false, context_ << ": expected true/false");
  throw std::logic_error("unreachable");
}

void JsonCursor::skip_value() {
  skip_ws();
  FNR_CHECK_MSG(p_ < end_, context_ << ": expected a value");
  if (*p_ == '"') {
    (void)parse_string();
    return;
  }
  if (*p_ == '{') {
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      (void)parse_string();
      expect(':');
      skip_value();
    }
    expect('}');
    return;
  }
  if (*p_ == '[') {
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      skip_value();
    }
    expect(']');
    return;
  }
  if (*p_ == 't' || *p_ == 'f') {
    (void)parse_bool();
    return;
  }
  (void)parse_number();
}

}  // namespace fnr
