#include "util/json.hpp"

#include <cerrno>
#include <cstdlib>
#include <string_view>

namespace fnr {

std::string JsonCursor::parse_string() {
  expect('"');
  std::string out;
  while (p_ < end_ && *p_ != '"') {
    FNR_CHECK_MSG(*p_ != '\\',
                  context_ << ": escape sequences are not in the schema");
    out.push_back(*p_++);
  }
  expect('"');
  return out;
}

double JsonCursor::parse_number() {
  skip_ws();
  char* after = nullptr;
  const double value = std::strtod(p_, &after);
  FNR_CHECK_MSG(after != p_, context_ << ": expected a number");
  p_ = after;
  return value;
}

std::uint64_t JsonCursor::parse_uint64() {
  skip_ws();
  FNR_CHECK_MSG(p_ < end_ && *p_ != '-',
                context_ << ": expected a non-negative integer");
  char* after = nullptr;
  errno = 0;
  const std::uint64_t value = std::strtoull(p_, &after, 10);
  FNR_CHECK_MSG(after != p_, context_ << ": expected an integer");
  FNR_CHECK_MSG(errno != ERANGE,
                context_ << ": integer field out of 64-bit range");
  p_ = after;
  return value;
}

bool JsonCursor::parse_bool() {
  skip_ws();
  if (end_ - p_ >= 4 && std::string_view(p_, 4) == "true") {
    p_ += 4;
    return true;
  }
  if (end_ - p_ >= 5 && std::string_view(p_, 5) == "false") {
    p_ += 5;
    return false;
  }
  FNR_CHECK_MSG(false, context_ << ": expected true/false");
  throw std::logic_error("unreachable");
}

void JsonCursor::skip_value() {
  skip_ws();
  FNR_CHECK_MSG(p_ < end_, context_ << ": expected a value");
  if (*p_ == '"') {
    (void)parse_string();
    return;
  }
  if (*p_ == '{') {
    expect('{');
    bool first = true;
    while (!peek_is('}')) {
      if (!first) expect(',');
      first = false;
      (void)parse_string();
      expect(':');
      skip_value();
    }
    expect('}');
    return;
  }
  if (*p_ == '[') {
    expect('[');
    bool first = true;
    while (!peek_is(']')) {
      if (!first) expect(',');
      first = false;
      skip_value();
    }
    expect(']');
    return;
  }
  if (*p_ == 't' || *p_ == 'f') {
    (void)parse_bool();
    return;
  }
  (void)parse_number();
}

}  // namespace fnr
