// Deterministic random number generation for the simulator.
//
// All randomness in the library flows through Rng, a xoshiro256** engine
// seeded via splitmix64. A (seed, stream) pair fully determines the
// sequence, so every experiment is reproducible from its recorded seeds.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace fnr {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG.
/// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the engine. `stream` decorrelates multiple generators sharing a
  /// base seed (e.g. one per agent, one for the graph).
  explicit Rng(std::uint64_t seed = 0, std::uint64_t stream = 0) noexcept {
    std::uint64_t sm = seed ^ (0x6a09e667f3bcc909ULL * (stream + 1));
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t below(std::uint64_t bound) noexcept {
    FNR_ASSERT(bound > 0);
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t between(std::int64_t lo, std::int64_t hi) noexcept {
    FNR_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  [[nodiscard]] bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Derives an independent child generator; used to hand each agent /
  /// subsystem its own stream.
  [[nodiscard]] Rng split() noexcept {
    return Rng((*this)(), (*this)());
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Uniformly chooses one element of a non-empty vector.
template <typename T>
[[nodiscard]] const T& choose(const std::vector<T>& items, Rng& rng) {
  FNR_CHECK_MSG(!items.empty(), "choose() from empty vector");
  return items[rng.below(items.size())];
}

/// Fisher–Yates shuffle.
template <typename T>
void shuffle(std::vector<T>& items, Rng& rng) noexcept {
  for (std::size_t i = items.size(); i > 1; --i) {
    using std::swap;
    swap(items[i - 1], items[rng.below(i)]);
  }
}

/// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm).
/// Requires k <= n. Result is in no particular order.
[[nodiscard]] std::vector<std::uint64_t> sample_without_replacement(
    std::uint64_t n, std::uint64_t k, Rng& rng);

}  // namespace fnr
