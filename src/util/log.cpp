#include "util/log.hpp"

namespace fnr {

namespace {
LogLevel g_level = LogLevel::Warn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() noexcept { return g_level; }
void set_log_level(LogLevel level) noexcept { g_level = level; }

namespace detail {
void emit_log(LogLevel level, const std::string& msg) {
  std::cerr << '[' << level_name(level) << "] " << msg << '\n';
}
}  // namespace detail

}  // namespace fnr
