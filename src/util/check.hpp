// Precondition / invariant checking helpers.
//
// FNR_CHECK is used for conditions that must hold regardless of build type
// (configuration errors, violated preconditions of public API calls). It
// throws std::logic_error so callers and tests can observe the failure.
// FNR_ASSERT is a debug-only internal sanity check.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fnr {

/// Error thrown when a checked precondition or invariant fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail

}  // namespace fnr

#define FNR_CHECK(expr)                                               \
  do {                                                                \
    if (!(expr))                                                      \
      ::fnr::detail::check_failed(#expr, __FILE__, __LINE__, "");     \
  } while (false)

#define FNR_CHECK_MSG(expr, msg)                                      \
  do {                                                                \
    if (!(expr)) {                                                    \
      std::ostringstream fnr_check_os;                                \
      fnr_check_os << msg;                                            \
      ::fnr::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                  fnr_check_os.str());                \
    }                                                                 \
  } while (false)

#ifdef NDEBUG
#define FNR_ASSERT(expr) ((void)0)
#else
#define FNR_ASSERT(expr) FNR_CHECK(expr)
#endif
