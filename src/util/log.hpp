// Lightweight leveled logging.
//
// Off (Warn) by default so benches stay quiet; tests and examples can raise
// the level to trace protocol behaviour round by round.
#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace fnr {

enum class LogLevel { Trace = 0, Debug = 1, Info = 2, Warn = 3, Off = 4 };

/// Process-wide log threshold (single-threaded simulator; plain global).
[[nodiscard]] LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void emit_log(LogLevel level, const std::string& msg);
}

}  // namespace fnr

#define FNR_LOG(level, expr)                                  \
  do {                                                        \
    if (static_cast<int>(level) >=                            \
        static_cast<int>(::fnr::log_level())) {               \
      std::ostringstream fnr_log_os;                          \
      fnr_log_os << expr;                                     \
      ::fnr::detail::emit_log(level, fnr_log_os.str());       \
    }                                                         \
  } while (false)

#define FNR_TRACE(expr) FNR_LOG(::fnr::LogLevel::Trace, expr)
#define FNR_DEBUG(expr) FNR_LOG(::fnr::LogLevel::Debug, expr)
#define FNR_INFO(expr) FNR_LOG(::fnr::LogLevel::Info, expr)
#define FNR_WARN(expr) FNR_LOG(::fnr::LogLevel::Warn, expr)
