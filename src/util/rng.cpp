#include "util/rng.hpp"

#include <unordered_set>

namespace fnr {

std::vector<std::uint64_t> sample_without_replacement(std::uint64_t n,
                                                      std::uint64_t k,
                                                      Rng& rng) {
  FNR_CHECK_MSG(k <= n, "cannot sample " << k << " distinct values from " << n);
  std::vector<std::uint64_t> result;
  result.reserve(k);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(k * 2);
  // Floyd's algorithm: for j = n-k .. n-1, draw t in [0, j]; if taken, use j.
  for (std::uint64_t j = n - k; j < n; ++j) {
    const std::uint64_t t = rng.below(j + 1);
    const std::uint64_t pick = seen.contains(t) ? j : t;
    seen.insert(pick);
    result.push_back(pick);
  }
  return result;
}

}  // namespace fnr
