// Minimal command-line parsing for bench and example binaries.
//
// Accepts `--name=value` and `--flag` forms. Unknown options are an error so
// that typos in experiment sweeps fail loudly instead of silently running
// the default configuration.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace fnr {

class Cli {
 public:
  /// Parses argv. Throws CheckError on malformed input.
  Cli(int argc, const char* const* argv);

  /// Declares an option and returns its value (or `fallback` if absent).
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback);
  [[nodiscard]] bool get_flag(const std::string& name);

  /// Call after all get_* declarations; throws if the user passed an option
  /// that was never declared.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> declared_;
};

}  // namespace fnr
