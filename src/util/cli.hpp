// Minimal command-line parsing for bench and example binaries.
//
// Accepts `--name=value` and `--flag` forms. Unknown options are an error so
// that typos in experiment sweeps fail loudly instead of silently running
// the default configuration. Malformed values are also errors: empty values
// (`--trials=`), trailing garbage, and out-of-range numbers all throw
// instead of silently parsing to 0 or clamping.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace fnr {

class Cli {
 public:
  /// Parses argv. Throws CheckError on malformed input.
  Cli(int argc, const char* const* argv);

  /// Declares an option and returns its value (or `fallback` if absent).
  /// Throws CheckError on an empty value, trailing garbage, or a value that
  /// overflows a 64-bit integer (no silent clamping to LLONG_MAX/MIN).
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback);
  /// Same contract for doubles (empty, malformed, and ERANGE values throw).
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback);
  /// Boolean option. Accepted spellings (case-sensitive):
  ///   on:  `--flag`, `--flag=1`, `--flag=true`, `--flag=yes`, `--flag=on`
  ///   off: absent, `--flag=0`, `--flag=false`, `--flag=no`, `--flag=off`
  /// Any other value throws CheckError (historically `--flag=no` silently
  /// meant *on*; unrecognized spellings are now rejected).
  [[nodiscard]] bool get_flag(const std::string& name);

  /// Call after all get_* declarations; throws if the user passed an option
  /// that was never declared.
  void reject_unknown() const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> declared_;
};

}  // namespace fnr
