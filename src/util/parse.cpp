#include "util/parse.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/check.hpp"

namespace fnr {

std::int64_t parse_int64(const std::string& text, const std::string& what) {
  // An empty value leaves strtoll's `end` at the start of the string,
  // which a bare *end == '\0' test would accept as a parse of "0".
  FNR_CHECK_MSG(!text.empty(),
                what << " expects an integer, got an empty value");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  FNR_CHECK_MSG(end != text.c_str() && *end == '\0',
                what << " expects an integer, got '" << text << "'");
  FNR_CHECK_MSG(errno != ERANGE,
                what << " value '" << text
                     << "' overflows a 64-bit integer");
  return v;
}

std::uint64_t parse_uint64(const std::string& text, const std::string& what) {
  FNR_CHECK_MSG(!text.empty() && text[0] != '-',
                what << " expects a non-negative integer, got '" << text
                     << "'");
  char* end = nullptr;
  errno = 0;
  const std::uint64_t v = std::strtoull(text.c_str(), &end, 10);
  FNR_CHECK_MSG(end != text.c_str() && *end == '\0',
                what << " expects an integer, got '" << text << "'");
  FNR_CHECK_MSG(errno != ERANGE,
                what << " value '" << text
                     << "' overflows a 64-bit integer");
  return v;
}

double parse_double(const std::string& text, const std::string& what) {
  FNR_CHECK_MSG(!text.empty(),
                what << " expects a number, got an empty value");
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(text.c_str(), &end);
  FNR_CHECK_MSG(end != text.c_str() && *end == '\0',
                what << " expects a number, got '" << text << "'");
  // Only overflow is an error: glibc also sets ERANGE on underflow to a
  // subnormal (e.g. "1e-310"), which parses to a perfectly usable value.
  FNR_CHECK_MSG(!(errno == ERANGE && std::abs(v) == HUGE_VAL),
                what << " value '" << text << "' is out of double range");
  return v;
}

double parse_finite_double(const std::string& text, const std::string& what) {
  const double v = parse_double(text, what);
  FNR_CHECK_MSG(std::isfinite(v), what << " must be a finite number, got '"
                                       << text << "'");
  return v;
}

}  // namespace fnr
