#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fnr {

double percentile_sorted(const std::vector<double>& sorted, double q) {
  FNR_CHECK(!sorted.empty());
  FNR_CHECK(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::vector<double> values) {
  Summary s;
  if (values.empty()) return s;
  std::sort(values.begin(), values.end());
  s.count = values.size();
  s.min = values.front();
  s.max = values.back();
  s.median = percentile_sorted(values, 0.5);
  s.p90 = percentile_sorted(values, 0.9);
  s.p95 = percentile_sorted(values, 0.95);
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

PowerLawFit fit_power_law(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  FNR_CHECK(xs.size() == ys.size());
  FNR_CHECK(xs.size() >= 2);
  const auto n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    FNR_CHECK_MSG(xs[i] > 0 && ys[i] > 0, "power-law fit needs positive data");
    const double lx = std::log(xs[i]);
    const double ly = std::log(ys[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  PowerLawFit fit;
  const double denom = n * sxx - sx * sx;
  FNR_CHECK_MSG(std::abs(denom) > 1e-12, "degenerate x values in fit");
  fit.exponent = (n * sxy - sx * sy) / denom;
  const double intercept = (sy - fit.exponent * sx) / n;
  fit.prefactor = std::exp(intercept);

  // R² on log-log scale.
  const double mean_ly = sy / n;
  double ss_tot = 0, ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double ly = std::log(ys[i]);
    const double pred = intercept + fit.exponent * std::log(xs[i]);
    ss_tot += (ly - mean_ly) * (ly - mean_ly);
    ss_res += (ly - pred) * (ly - pred);
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace fnr
