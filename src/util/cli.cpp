#include "util/cli.hpp"

#include <cstdlib>

#include "util/check.hpp"

namespace fnr {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    FNR_CHECK_MSG(arg.rfind("--", 0) == 0,
                  "expected --name[=value], got '" << arg << "'");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "1";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) {
  declared_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  FNR_CHECK_MSG(end != nullptr && *end == '\0',
                "option --" << name << " expects an integer, got '"
                            << it->second << "'");
  return v;
}

double Cli::get_double(const std::string& name, double fallback) {
  declared_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  FNR_CHECK_MSG(end != nullptr && *end == '\0',
                "option --" << name << " expects a number, got '"
                            << it->second << "'");
  return v;
}

std::string Cli::get_string(const std::string& name, std::string fallback) {
  declared_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

bool Cli::get_flag(const std::string& name) {
  declared_.insert(name);
  const auto it = values_.find(name);
  return it != values_.end() && it->second != "0" && it->second != "false";
}

void Cli::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    FNR_CHECK_MSG(declared_.contains(name), "unknown option --" << name);
  }
}

}  // namespace fnr
