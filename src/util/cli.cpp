#include "util/cli.hpp"

#include "util/check.hpp"
#include "util/parse.hpp"

namespace fnr {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    FNR_CHECK_MSG(arg.rfind("--", 0) == 0,
                  "expected --name[=value], got '" << arg << "'");
    const std::string body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq == std::string::npos) {
      values_[body] = "1";
    } else {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    }
  }
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) {
  declared_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_int64(it->second, "option --" + name);
}

double Cli::get_double(const std::string& name, double fallback) {
  declared_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return parse_double(it->second, "option --" + name);
}

std::string Cli::get_string(const std::string& name, std::string fallback) {
  declared_.insert(name);
  const auto it = values_.find(name);
  return it == values_.end() ? std::move(fallback) : it->second;
}

bool Cli::get_flag(const std::string& name) {
  declared_.insert(name);
  const auto it = values_.find(name);
  if (it == values_.end()) return false;
  const std::string& v = it->second;
  // "1" is also what the bare `--flag` form parses to.
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  FNR_CHECK_MSG(false, "option --" << name << " expects a boolean "
                                   << "(1/true/yes/on or 0/false/no/off), "
                                   << "got '" << v << "'");
  return false;
}

void Cli::reject_unknown() const {
  for (const auto& [name, value] : values_) {
    (void)value;
    FNR_CHECK_MSG(declared_.contains(name), "unknown option --" << name);
  }
}

}  // namespace fnr
