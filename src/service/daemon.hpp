// The fnrd campaign service: a long-lived daemon that serves sweep
// campaigns over a Unix-domain socket.
//
// Architecture. One net thread runs a poll(2) loop over the listener, a
// self-pipe, and every connected client (length-prefixed JSON frames,
// net/framing.hpp; verbs, service/protocol.hpp). SUBMIT parses the spec,
// persists the exact submit frame to `<workdir>/<name>.submit.json`, and
// pushes the campaign onto a bounded work queue; worker threads pop
// campaigns and run campaign::Campaign with a per-cell callback. The
// callback appends the cell's wire frame to the campaign's replay log and
// wakes the net loop through the self-pipe; the net loop fans new frames
// out to every subscribed client. STREAM therefore always replays the
// finished prefix first and then follows live — a client that connects
// late, disconnects, or reconnects after a daemon restart sees the same
// deterministic sequence.
//
// Durability. All daemon state that matters is the campaign checkpoint
// (`<workdir>/<name>.jsonl`, written by the campaign core itself) plus the
// persisted submit frame. kill -9 loses only in-memory registry state:
// RESUME re-reads the submit frame, re-runs the campaign with resume
// semantics (finished cells restore from the checkpoint byte-for-byte),
// and the merged report `<workdir>/<name>.json` comes out identical to a
// batch bench/sweep run of the same spec — that equivalence is asserted in
// CI.
//
// Backpressure, two layers: SUBMIT fails with "queue full" when the work
// queue is at capacity (bounded admission), and a streaming client whose
// pending output buffer exceeds max_client_buffer is disconnected (results
// live in the replay log and the checkpoint, so a slow client loses
// nothing it cannot recover by reconnecting and re-STREAMing).
//
// Shutdown. request_stop() is async-signal-safe (atomic flag + self-pipe
// write). The net loop stops accepting, cancels running campaigns (they
// stop at the next cell boundary with their checkpoint line flushed),
// joins the workers, closes every client, and unlinks the socket.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace fnr::service {

struct DaemonOptions {
  /// Unix-domain socket path clients connect to.
  std::string socket_path;
  /// Directory for per-campaign files: `<name>.submit.json` (the persisted
  /// submit frame), `<name>.jsonl` (checkpoint), `<name>.json` (merged
  /// report, written on completion). Must already exist.
  std::string workdir = ".";
  /// Campaign worker threads (concurrent campaigns in flight).
  unsigned workers = 2;
  /// Bounded work-queue capacity; SUBMIT is rejected when full.
  std::size_t queue_capacity = 8;
  /// Per-campaign trial-runner pool size (0 = hardware threads).
  unsigned threads = 0;
  /// Concurrent cells *within* one campaign (the executor's worker pool;
  /// 1 = sequential, 0 = hardware threads). Replay logs, checkpoints, and
  /// reports are byte-identical for every value, so this is purely a
  /// latency lever; it multiplies with `workers` campaigns in flight.
  unsigned jobs = 1;
  /// Per-client pending-output cap in bytes; a slower consumer is
  /// disconnected (and can recover by re-STREAMing).
  std::size_t max_client_buffer = 4u << 20;
  /// Cap on one wire frame's payload.
  std::uint32_t max_frame = 16u << 20;
  /// Daemon log lines (nullptr = silent).
  std::ostream* log = nullptr;
};

/// Runs the daemon until request_stop(). Blocks the calling thread; throws
/// CheckError when the socket cannot be set up. Construct, install signal
/// handlers pointing at request_stop, then run().
class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Serves until request_stop(); returns after the graceful drain.
  void run();

  /// Requests shutdown. Async-signal-safe: one atomic store and one
  /// self-pipe write.
  void request_stop() noexcept;

 private:
  struct Impl;
  Impl* impl_;  // raw pimpl: ~Daemon must stay out-of-line and noexcept
};

}  // namespace fnr::service
