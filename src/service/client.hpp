// Blocking client-side connection to an fnrd daemon: frame-at-a-time
// send/receive over the Unix-domain socket, with a poll-based receive
// timeout. Used by the fnrc CLI and the service tests; the daemon side
// never blocks, so all the waiting lives here.
#pragma once

#include <cstdint>
#include <string>

#include "net/framing.hpp"
#include "net/socket.hpp"

namespace fnr::service {

class Connection {
 public:
  /// Connects immediately; throws CheckError when the daemon is not
  /// listening.
  explicit Connection(const std::string& socket_path,
                      std::uint32_t max_frame = net::kDefaultMaxFrame);

  /// Sends one framed payload (blocking until fully written).
  void send(const std::string& payload);

  /// Receives the next frame payload. Throws CheckError on timeout, a
  /// framing violation, or the daemon closing the connection.
  [[nodiscard]] std::string recv(int timeout_ms = 60'000);

  /// Closes the socket early (e.g. to simulate a client disconnect
  /// mid-stream); further send/recv calls throw.
  void close();

 private:
  net::OwnedFd fd_;
  net::FrameReader reader_;
  std::uint32_t max_frame_;
};

}  // namespace fnr::service
