#include "service/protocol.hpp"

#include <sstream>

#include "util/check.hpp"
#include "util/json.hpp"

namespace fnr::service {

const char* to_string(Verb verb) noexcept {
  switch (verb) {
    case Verb::Submit: return "submit";
    case Verb::Status: return "status";
    case Verb::Stream: return "stream";
    case Verb::Cancel: return "cancel";
    case Verb::Resume: return "resume";
    case Verb::Report: return "report";
  }
  return "?";
}

Verb parse_verb(const std::string& name) {
  if (name == "submit") return Verb::Submit;
  if (name == "status") return Verb::Status;
  if (name == "stream") return Verb::Stream;
  if (name == "cancel") return Verb::Cancel;
  if (name == "resume") return Verb::Resume;
  if (name == "report") return Verb::Report;
  FNR_CHECK_MSG(false, "fnrd request: unknown verb '"
                           << name
                           << "'; expected submit, status, stream, cancel, "
                              "resume, or report");
  throw std::logic_error("unreachable");
}

bool valid_campaign_name(const std::string& name) {
  if (name.empty() || name.size() > 128 || name.front() == '.') return false;
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string serialize_request(const Request& request) {
  std::ostringstream os;
  os << "{\"verb\":\"" << to_string(request.verb) << "\"";
  if (!request.campaign.empty())
    os << ",\"campaign\":\"" << json_escape(request.campaign) << "\"";
  if (!request.spec_text.empty())
    os << ",\"spec\":\"" << json_escape(request.spec_text) << "\"";
  if (request.trials != 0) os << ",\"trials\":" << request.trials;
  if (request.batch != 0) os << ",\"batch\":" << request.batch;
  if (request.max_cells != 0) os << ",\"max_cells\":" << request.max_cells;
  os << "}";
  return os.str();
}

Request parse_request(const std::string& payload) {
  JsonCursor cursor(payload, "fnrd request");
  Request request;
  bool have_verb = false;
  cursor.expect('{');
  bool first = true;
  while (!cursor.peek_is('}')) {
    if (!first) cursor.expect(',');
    first = false;
    const std::string field = cursor.parse_string();
    cursor.expect(':');
    if (field == "verb") {
      request.verb = parse_verb(cursor.parse_string());
      have_verb = true;
    } else if (field == "campaign") {
      request.campaign = cursor.parse_string();
    } else if (field == "spec") {
      request.spec_text = cursor.parse_string();
    } else if (field == "trials") {
      request.trials = cursor.parse_uint64();
    } else if (field == "batch") {
      request.batch = cursor.parse_uint64();
    } else if (field == "max_cells") {
      request.max_cells = cursor.parse_uint64();
    } else {
      FNR_CHECK_MSG(false,
                    "fnrd request: unknown field '" << field << "'");
    }
  }
  cursor.expect('}');
  cursor.expect_end();
  FNR_CHECK_MSG(have_verb, "fnrd request: missing 'verb'");
  if (request.verb == Verb::Status) {
    // STATUS may address all campaigns (empty name); everything else
    // names exactly one.
    FNR_CHECK_MSG(request.campaign.empty() ||
                      valid_campaign_name(request.campaign),
                  "fnrd request: invalid campaign name");
  } else {
    FNR_CHECK_MSG(valid_campaign_name(request.campaign),
                  "fnrd request: '" << to_string(request.verb)
                                    << "' needs a campaign name matching "
                                       "[A-Za-z0-9._-]+ (no leading dot)");
  }
  FNR_CHECK_MSG(request.verb == Verb::Submit || request.spec_text.empty(),
                "fnrd request: only 'submit' carries a spec");
  FNR_CHECK_MSG(request.verb != Verb::Submit || !request.spec_text.empty(),
                "fnrd request: 'submit' needs a spec");
  return request;
}

std::string error_response(const std::string& message) {
  return "{\"type\":\"error\",\"message\":\"" + json_escape(message) + "\"}";
}

std::string submitted_response(const std::string& campaign,
                               std::uint64_t cells) {
  std::ostringstream os;
  os << "{\"type\":\"submitted\",\"campaign\":\"" << json_escape(campaign)
     << "\",\"cells\":" << cells << "}";
  return os.str();
}

std::string status_response(const std::string& campaign,
                            const std::string& state, std::uint64_t done,
                            std::uint64_t total) {
  std::ostringstream os;
  os << "{\"type\":\"status\",\"campaign\":\"" << json_escape(campaign)
     << "\",\"state\":\"" << state << "\",\"done\":" << done
     << ",\"total\":" << total << "}";
  return os.str();
}

std::string cell_response(const std::string& campaign, const std::string& key,
                          bool ok, const std::string& agg_json,
                          const std::string& error) {
  std::ostringstream os;
  os << "{\"type\":\"cell\",\"campaign\":\"" << json_escape(campaign)
     << "\",\"key\":\"" << key << "\",\"ok\":" << (ok ? "true" : "false");
  if (ok) {
    os << ",\"agg\":" << agg_json;
  } else {
    os << ",\"error\":\"" << json_escape(error) << "\"";
  }
  os << "}";
  return os.str();
}

std::string end_response(const std::string& campaign,
                         const std::string& state) {
  return "{\"type\":\"end\",\"campaign\":\"" + json_escape(campaign) +
         "\",\"state\":\"" + state + "\"}";
}

std::string report_response(const std::string& campaign,
                            const std::string& report_json) {
  return "{\"type\":\"report\",\"campaign\":\"" + json_escape(campaign) +
         "\",\"report\":" + report_json + "}";
}

std::string cancelled_response(const std::string& campaign) {
  return "{\"type\":\"cancelled\",\"campaign\":\"" + json_escape(campaign) +
         "\"}";
}

std::string resumed_response(const std::string& campaign) {
  return "{\"type\":\"resumed\",\"campaign\":\"" + json_escape(campaign) +
         "\"}";
}

}  // namespace fnr::service
