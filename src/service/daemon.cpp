#include "service/daemon.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "campaign/campaign.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"
#include "service/protocol.hpp"
#include "sweep/spec.hpp"
#include "util/check.hpp"

namespace fnr::service {

namespace {

enum class CampaignState { Queued, Running, Paused, Done, Failed, Cancelled };

const char* to_string(CampaignState state) noexcept {
  switch (state) {
    case CampaignState::Queued: return "queued";
    case CampaignState::Running: return "running";
    case CampaignState::Paused: return "paused";
    case CampaignState::Done: return "done";
    case CampaignState::Failed: return "failed";
    case CampaignState::Cancelled: return "cancelled";
  }
  return "?";
}

bool terminal(CampaignState state) noexcept {
  return state != CampaignState::Queued && state != CampaignState::Running;
}

/// Everything the daemon knows about one campaign. Guarded by Impl::mutex
/// (workers append frames and flip states; the net thread reads both).
struct CampaignInfo {
  std::string name;
  sweep::SweepSpec spec;
  Request request;  ///< the persisted submit request
  CampaignState state = CampaignState::Queued;
  bool resume = false;  ///< next run restores from the checkpoint
  /// Set by the worker for the duration of one run; CANCEL and the
  /// shutdown drain call cancel() through it (a relaxed atomic store).
  campaign::Campaign* active = nullptr;
  /// Replay log: one wire frame per finished cell, in execution order.
  /// STREAM replays a prefix and follows the tail; RESUME resets it (the
  /// resumed run re-emits restored cells through the same callback).
  std::vector<std::string> frames;
  std::uint64_t total = 0;   ///< grid size
  std::string report;        ///< merged report JSON once Done
  std::string error;         ///< CheckError text once Failed
};

/// One connected client in the net loop (single-threaded access).
struct Client {
  explicit Client(net::OwnedFd socket, std::uint32_t max_frame)
      : fd(std::move(socket)), reader(max_frame), writer(max_frame) {}
  net::OwnedFd fd;
  net::FrameReader reader;
  net::FrameWriter writer;
  std::string stream_campaign;  ///< empty = not subscribed
  std::size_t stream_next = 0;  ///< next replay-log index to deliver
  bool stream_ended = false;    ///< end frame already sent
  bool dead = false;
};

bool file_exists(const std::string& path) {
  return std::ifstream(path).good();
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  FNR_CHECK_MSG(in.good(), "cannot open '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  FNR_CHECK_MSG(out.good(), "cannot open '" << path << "' for writing");
  out << content;
  out.flush();
  FNR_CHECK_MSG(out.good(), "write to '" << path << "' failed");
}

}  // namespace

struct Daemon::Impl {
  explicit Impl(DaemonOptions opts) : options(std::move(opts)) {}

  DaemonOptions options;
  net::Pipe wake;
  std::atomic<bool> stop_requested{false};

  std::mutex mutex;
  std::condition_variable work_cv;
  std::map<std::string, std::unique_ptr<CampaignInfo>> registry;
  std::deque<CampaignInfo*> queue;
  bool stopping = false;
  std::vector<std::thread> workers;

  // --- small helpers ---------------------------------------------------------

  [[nodiscard]] std::string submit_path(const std::string& name) const {
    return options.workdir + "/" + name + ".submit.json";
  }
  [[nodiscard]] std::string checkpoint_path(const std::string& name) const {
    return options.workdir + "/" + name + ".jsonl";
  }
  [[nodiscard]] std::string report_path(const std::string& name) const {
    return options.workdir + "/" + name + ".json";
  }

  void log(const std::string& line) {
    if (options.log != nullptr) *options.log << "fnrd: " << line << std::endl;
  }

  // --- worker side -----------------------------------------------------------

  void worker_loop() {
    for (;;) {
      CampaignInfo* info = nullptr;
      {
        std::unique_lock lock(mutex);
        work_cv.wait(lock, [&] { return stopping || !queue.empty(); });
        if (stopping) return;  // drain: finish nothing new
        info = queue.front();
        queue.pop_front();
        info->state = CampaignState::Running;
      }
      run_campaign(info);
      net::wake_pipe(wake.wake.get());
    }
  }

  void run_campaign(CampaignInfo* info) {
    campaign::CampaignOptions copts;
    copts.threads = options.threads;
    copts.jobs = options.jobs;
    copts.checkpoint_path = checkpoint_path(info->name);
    copts.resume = info->resume;
    copts.max_cells = info->request.max_cells;
    copts.batch = info->request.batch;
    try {
      campaign::Campaign campaign(info->spec, std::move(copts));
      {
        std::lock_guard lock(mutex);
        info->active = &campaign;
        // A drain that started between dequeue and here must still stop
        // this run at its first cell boundary.
        if (stopping) campaign.cancel();
      }
      auto run = campaign.run([&](const campaign::CellResult& r) {
        std::lock_guard lock(mutex);
        info->frames.push_back(cell_response(info->name, r.cell.key(), r.ok,
                                             r.agg_json, r.error));
        net::wake_pipe(wake.wake.get());
      });
      std::string report;
      if (run.complete) report = campaign::to_json(info->spec, run.cells);
      std::lock_guard lock(mutex);
      info->active = nullptr;
      if (run.complete) {
        // The report file gets the exact bytes bench/sweep --out writes
        // for this spec — the byte-identity contract CI diffs.
        write_file(report_path(info->name), report + "\n");
        info->report = std::move(report);
        info->state = CampaignState::Done;
      } else if (run.cancelled) {
        info->state = CampaignState::Cancelled;
      } else {
        info->state = CampaignState::Paused;  // max_cells stop
      }
      log("campaign '" + info->name + "' -> " + to_string(info->state) +
          " (" + std::to_string(run.executed) + " executed, " +
          std::to_string(run.restored) + " restored)");
    } catch (const CheckError& error) {
      std::lock_guard lock(mutex);
      info->active = nullptr;
      info->state = CampaignState::Failed;
      info->error = error.what();
      log("campaign '" + info->name + "' failed: " + info->error);
    }
  }

  // --- request handling (net thread) -----------------------------------------

  /// Builds a ready-to-queue CampaignInfo from a submit request. Caller
  /// holds the mutex. Throws CheckError on a bad spec.
  std::unique_ptr<CampaignInfo> make_info(const Request& request,
                                          bool resume) {
    auto info = std::make_unique<CampaignInfo>();
    info->name = request.campaign;
    info->request = request;
    info->resume = resume;
    info->spec = sweep::parse_spec(request.spec_text);
    if (request.trials != 0) info->spec.trials = request.trials;
    info->total = sweep::expand(info->spec).size();
    return info;
  }

  void enqueue_locked(CampaignInfo* info) {
    FNR_CHECK_MSG(queue.size() < options.queue_capacity,
                  "queue full (" << options.queue_capacity
                                 << " campaigns waiting); retry later");
    info->state = CampaignState::Queued;
    queue.push_back(info);
    work_cv.notify_one();
  }

  void handle_submit(const Request& request, Client* client) {
    std::lock_guard lock(mutex);
    FNR_CHECK_MSG(!registry.contains(request.campaign),
                  "campaign '" << request.campaign
                               << "' already exists; use resume");
    FNR_CHECK_MSG(!file_exists(submit_path(request.campaign)),
                  "campaign '" << request.campaign
                               << "' is persisted from an earlier daemon "
                                  "run; use resume");
    auto info = make_info(request, /*resume=*/false);
    // Persist the exact submit frame first: once the client sees
    // "submitted", a daemon kill -9 must leave enough on disk for RESUME.
    write_file(submit_path(request.campaign),
               serialize_request(request) + "\n");
    CampaignInfo* raw = info.get();
    registry.emplace(request.campaign, std::move(info));
    enqueue_locked(raw);
    client->writer.enqueue(submitted_response(request.campaign, raw->total));
    log("submitted '" + request.campaign + "' (" +
        std::to_string(raw->total) + " cells)");
  }

  void handle_resume(const Request& request, Client* client,
                     std::vector<std::unique_ptr<Client>>& clients) {
    std::lock_guard lock(mutex);
    const auto it = registry.find(request.campaign);
    CampaignInfo* info = nullptr;
    if (it != registry.end()) {
      info = it->second.get();
      FNR_CHECK_MSG(terminal(info->state),
                    "campaign '" << request.campaign << "' is "
                                 << to_string(info->state)
                                 << "; cancel or wait before resuming");
      FNR_CHECK_MSG(info->state != CampaignState::Done,
                    "campaign '" << request.campaign
                                 << "' is already complete");
    } else {
      // Fresh daemon process: rebuild the campaign from the persisted
      // submit frame; the checkpoint makes every finished cell restore.
      FNR_CHECK_MSG(file_exists(submit_path(request.campaign)),
                    "unknown campaign '" << request.campaign << "'");
      Request original = parse_request([&] {
        std::string text = read_file(submit_path(request.campaign));
        while (!text.empty() && (text.back() == '\n' || text.back() == '\r'))
          text.pop_back();
        return text;
      }());
      auto rebuilt = make_info(original, /*resume=*/true);
      info = rebuilt.get();
      registry.emplace(request.campaign, std::move(rebuilt));
    }
    info->resume = true;
    // A submit-time max_cells was a deliberate pause point (CI's
    // deterministic "kill mid-campaign"); resuming means running to the
    // end, so it must not re-pause the campaign.
    info->request.max_cells = 0;
    // The resumed run re-emits restored cells through the cell callback,
    // so the replay log restarts from scratch — as must every subscriber's
    // position in it.
    info->frames.clear();
    for (auto& other : clients) {
      if (other->stream_campaign == request.campaign) {
        other->stream_next = 0;
        other->stream_ended = false;
      }
    }
    enqueue_locked(info);
    client->writer.enqueue(resumed_response(request.campaign));
    log("resumed '" + request.campaign + "'");
  }

  void handle_status(const Request& request, Client* client) {
    std::lock_guard lock(mutex);
    if (request.campaign.empty()) {
      // Daemon summary: how many campaigns are registered, how many are in
      // a terminal state.
      std::uint64_t settled = 0;
      for (const auto& [name, info] : registry)
        if (terminal(info->state)) ++settled;
      client->writer.enqueue(status_response(
          "*", "daemon", settled, registry.size()));
      return;
    }
    const auto it = registry.find(request.campaign);
    FNR_CHECK_MSG(it != registry.end(),
                  "unknown campaign '"
                      << request.campaign
                      << "' (not in this daemon's registry; resume a "
                         "persisted campaign first)");
    const CampaignInfo& info = *it->second;
    client->writer.enqueue(status_response(info.name, to_string(info.state),
                                           info.frames.size(), info.total));
  }

  void handle_stream(const Request& request, Client* client) {
    {
      std::lock_guard lock(mutex);
      FNR_CHECK_MSG(registry.contains(request.campaign),
                    "unknown campaign '" << request.campaign << "'");
    }
    client->stream_campaign = request.campaign;
    client->stream_next = 0;
    client->stream_ended = false;
    // Delivery happens in fan_out at the top of the next loop iteration —
    // the replay prefix and any frames that land meanwhile flow through
    // the same path, so nothing is duplicated or skipped.
  }

  void handle_cancel(const Request& request, Client* client) {
    std::lock_guard lock(mutex);
    const auto it = registry.find(request.campaign);
    FNR_CHECK_MSG(it != registry.end(),
                  "unknown campaign '" << request.campaign << "'");
    CampaignInfo& info = *it->second;
    if (info.state == CampaignState::Running) {
      info.active->cancel();  // state flips when the worker returns
    } else if (info.state == CampaignState::Queued) {
      std::erase(queue, &info);
      info.state = CampaignState::Cancelled;
    } else {
      FNR_CHECK_MSG(false, "campaign '" << request.campaign << "' is "
                                        << to_string(info.state)
                                        << ", nothing to cancel");
    }
    client->writer.enqueue(cancelled_response(request.campaign));
    log("cancel requested for '" + request.campaign + "'");
  }

  void handle_report(const Request& request, Client* client) {
    std::lock_guard lock(mutex);
    const auto it = registry.find(request.campaign);
    if (it != registry.end() && it->second->state == CampaignState::Done) {
      client->writer.enqueue(
          report_response(request.campaign, it->second->report));
      return;
    }
    // A completed campaign from an earlier daemon run still has its
    // report file even though the registry forgot it.
    FNR_CHECK_MSG(
        it == registry.end() && file_exists(report_path(request.campaign)),
        "campaign '" << request.campaign << "' has no completed report"
                     << (it != registry.end()
                             ? std::string(" (state ") +
                                   to_string(it->second->state) + ")"
                             : ""));
    std::string report = read_file(report_path(request.campaign));
    while (!report.empty() && report.back() == '\n') report.pop_back();
    client->writer.enqueue(report_response(request.campaign, report));
  }

  void handle_request(const std::string& payload, Client* client,
                      std::vector<std::unique_ptr<Client>>& clients) {
    try {
      const Request request = parse_request(payload);
      switch (request.verb) {
        case Verb::Submit: handle_submit(request, client); break;
        case Verb::Status: handle_status(request, client); break;
        case Verb::Stream: handle_stream(request, client); break;
        case Verb::Cancel: handle_cancel(request, client); break;
        case Verb::Resume: handle_resume(request, client, clients); break;
        case Verb::Report: handle_report(request, client); break;
      }
    } catch (const CheckError& error) {
      // A malformed or unserviceable *request* is the client's problem,
      // not the daemon's: answer with an error frame and keep serving.
      client->writer.enqueue(error_response(error.what()));
    }
  }

  // --- net loop --------------------------------------------------------------

  /// Delivers new replay-log frames (and the end frame once the campaign
  /// settles) to every subscribed client.
  void fan_out(std::vector<std::unique_ptr<Client>>& clients) {
    std::lock_guard lock(mutex);
    for (auto& client : clients) {
      if (client->stream_campaign.empty() || client->dead) continue;
      const auto it = registry.find(client->stream_campaign);
      if (it == registry.end()) continue;
      const CampaignInfo& info = *it->second;
      while (client->stream_next < info.frames.size())
        client->writer.enqueue(info.frames[client->stream_next++]);
      if (!client->stream_ended && terminal(info.state)) {
        client->writer.enqueue(end_response(info.name, to_string(info.state)));
        client->stream_ended = true;
      }
    }
  }

  void flush_client(Client* client) {
    if (client->dead) return;
    if (!client->writer.flush_to_fd(client->fd.get())) {
      client->dead = true;
      return;
    }
    // Backpressure: a consumer that cannot keep up with the stream loses
    // its connection, not its results — the replay log and the checkpoint
    // survive, so reconnect + STREAM recovers everything.
    if (client->writer.pending_bytes() > options.max_client_buffer) {
      log("disconnecting slow client (" +
          std::to_string(client->writer.pending_bytes()) +
          " bytes pending)");
      client->dead = true;
    }
  }

  void serve() {
    net::OwnedFd listener = net::listen_unix(options.socket_path);
    net::set_nonblocking(listener.get());
    log("listening on " + options.socket_path);

    std::vector<std::unique_ptr<Client>> clients;
    while (!stop_requested.load(std::memory_order_relaxed)) {
      fan_out(clients);
      for (auto& client : clients) flush_client(client.get());
      std::erase_if(clients,
                    [](const std::unique_ptr<Client>& c) { return c->dead; });

      std::vector<pollfd> fds;
      fds.push_back(pollfd{listener.get(), POLLIN, 0});
      fds.push_back(pollfd{wake.wait.get(), POLLIN, 0});
      for (const auto& client : clients) {
        short events = POLLIN;
        if (!client->writer.idle()) events |= POLLOUT;
        fds.push_back(pollfd{client->fd.get(), events, 0});
      }
      const int ready = ::poll(fds.data(), fds.size(), -1);
      if (ready < 0) continue;  // EINTR: re-check stop_requested

      if ((fds[1].revents & POLLIN) != 0) net::drain_pipe(wake.wait.get());

      if ((fds[0].revents & POLLIN) != 0) {
        for (;;) {
          const int accepted = ::accept(listener.get(), nullptr, nullptr);
          if (accepted < 0) break;
          net::set_nonblocking(accepted);
          clients.push_back(std::make_unique<Client>(
              net::OwnedFd(accepted), options.max_frame));
        }
      }

      // Only the clients that existed when poll() ran have revents; the
      // ones accepted just above wait for the next round.
      const std::size_t polled = fds.size() - 2;
      for (std::size_t i = 0; i < polled; ++i) {
        Client* client = clients[i].get();
        const short revents = fds[2 + i].revents;
        if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
            (revents & POLLIN) == 0) {
          client->dead = true;
          continue;
        }
        if ((revents & POLLIN) == 0) continue;
        char buffer[4096];
        for (;;) {
          const ssize_t got = ::read(client->fd.get(), buffer, sizeof(buffer));
          if (got > 0) {
            try {
              client->reader.feed(buffer, static_cast<std::size_t>(got));
              std::string payload;
              while (client->reader.next(&payload))
                handle_request(payload, client, clients);
            } catch (const CheckError& error) {
              // A framing violation (bad length prefix) poisons the byte
              // stream — there is no resynchronization point, so drop the
              // connection rather than guess.
              log(std::string("dropping client after framing error: ") +
                  error.what());
              client->dead = true;
            }
            if (client->dead) break;
            continue;
          }
          if (got == 0) {  // orderly EOF
            client->dead = true;
            break;
          }
          break;  // EAGAIN (or error — the next poll round reports it)
        }
      }
    }

    // Graceful drain: stop admitting, stop the workers' campaigns at their
    // next cell boundary (checkpoints flushed), join, then vanish.
    log("draining");
    {
      std::lock_guard lock(mutex);
      stopping = true;
      for (auto& [name, info] : registry)
        if (info->active != nullptr) info->active->cancel();
      work_cv.notify_all();
    }
    for (auto& worker : workers) worker.join();
    workers.clear();
    clients.clear();
    listener.reset();
    ::unlink(options.socket_path.c_str());
    log("stopped");
  }
};

Daemon::Daemon(DaemonOptions options) : impl_(new Impl(std::move(options))) {
  FNR_CHECK_MSG(!impl_->options.socket_path.empty(),
                "fnrd needs a socket path");
  FNR_CHECK_MSG(impl_->options.workers >= 1, "fnrd needs >= 1 worker");
  FNR_CHECK_MSG(impl_->options.queue_capacity >= 1,
                "fnrd needs queue capacity >= 1");
  impl_->wake = net::make_pipe();
}

Daemon::~Daemon() { delete impl_; }

void Daemon::run() {
  for (unsigned i = 0; i < impl_->options.workers; ++i)
    impl_->workers.emplace_back([this] { impl_->worker_loop(); });
  impl_->serve();
}

void Daemon::request_stop() noexcept {
  impl_->stop_requested.store(true, std::memory_order_relaxed);
  net::wake_pipe(impl_->wake.wake.get());
}

}  // namespace fnr::service
