#include "service/client.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

#include "util/check.hpp"

namespace fnr::service {

Connection::Connection(const std::string& socket_path,
                       std::uint32_t max_frame)
    : fd_(net::connect_unix(socket_path)),
      reader_(max_frame),
      max_frame_(max_frame) {}

void Connection::send(const std::string& payload) {
  FNR_CHECK_MSG(fd_.valid(), "fnrd connection is closed");
  const std::string frame = net::encode_frame(payload, max_frame_);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    const ssize_t wrote =
        ::write(fd_.get(), frame.data() + sent, frame.size() - sent);
    if (wrote < 0 && errno == EINTR) continue;
    FNR_CHECK_MSG(wrote > 0, "fnrd send: " << std::strerror(errno));
    sent += static_cast<std::size_t>(wrote);
  }
}

std::string Connection::recv(int timeout_ms) {
  FNR_CHECK_MSG(fd_.valid(), "fnrd connection is closed");
  std::string payload;
  while (!reader_.next(&payload)) {
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0 && errno == EINTR) continue;
    FNR_CHECK_MSG(ready > 0, "fnrd recv: timed out after "
                                 << timeout_ms << "ms waiting for a frame");
    char buffer[4096];
    const ssize_t got = ::read(fd_.get(), buffer, sizeof(buffer));
    if (got < 0 && errno == EINTR) continue;
    FNR_CHECK_MSG(got >= 0, "fnrd recv: " << std::strerror(errno));
    FNR_CHECK_MSG(got > 0, "fnrd recv: daemon closed the connection"
                               << (reader_.mid_frame() ? " mid-frame" : ""));
    reader_.feed(buffer, static_cast<std::size_t>(got));
  }
  return payload;
}

void Connection::close() { fd_.reset(); }

}  // namespace fnr::service
