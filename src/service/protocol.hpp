// The fnrd wire protocol: request/response JSON payloads carried in
// length-prefixed frames (net/framing.hpp).
//
// Requests are single JSON objects with a "verb" field:
//
//   {"verb":"submit","campaign":"smoke","spec":"<spec text>",
//    "trials":0,"batch":0,"max_cells":0}   // 0 fields may be omitted
//   {"verb":"status"[,"campaign":"smoke"]} // no campaign ⇒ all campaigns
//   {"verb":"stream","campaign":"smoke"}
//   {"verb":"cancel","campaign":"smoke"}
//   {"verb":"resume","campaign":"smoke"}
//   {"verb":"report","campaign":"smoke"}
//
// Responses are typed by a "type" field: "error", "submitted", "status",
// "cell" (one streamed result, aggregate bytes verbatim), "end" (stream
// complete, with the terminal state), "report" (the merged JSON verbatim),
// "cancelled", "resumed". STREAM first replays every already-finished cell,
// then delivers new cells as the workers finish them, then "end" — so a
// client that reconnects after a disconnect or a daemon restart always
// sees the full, deterministic result set.
//
// Spec text and error messages pass through json_escape (arbitrary bytes
// survive the wire); cell keys and aggregate JSON are emitted verbatim —
// they are already inside the no-escape subset, and their bytes are the
// determinism contract.
#pragma once

#include <cstdint>
#include <string>

namespace fnr::service {

enum class Verb { Submit, Status, Stream, Cancel, Resume, Report };

[[nodiscard]] const char* to_string(Verb verb) noexcept;

/// Parses a request verb. Throws CheckError on an unknown name.
[[nodiscard]] Verb parse_verb(const std::string& name);

/// One parsed client request.
struct Request {
  Verb verb = Verb::Status;
  std::string campaign;   ///< campaign name; may be empty for STATUS only
  std::string spec_text;  ///< SUBMIT only: the spec to parse and run
  std::uint64_t trials = 0;     ///< SUBMIT only: per-cell trial override
  std::uint64_t batch = 0;      ///< SUBMIT only: SoA batch size
  std::uint64_t max_cells = 0;  ///< SUBMIT only: stop after N cells (CI)
};

/// Campaign names become checkpoint/report file names in the daemon's
/// workdir, so they are restricted to [A-Za-z0-9._-] (no separators, no
/// traversal) and must not start with a dot.
[[nodiscard]] bool valid_campaign_name(const std::string& name);

/// Serializes a request to its wire JSON (the exact bytes SUBMIT persists
/// for RESUME after a daemon restart).
[[nodiscard]] std::string serialize_request(const Request& request);

/// Parses wire JSON into a Request. Throws CheckError on malformed JSON,
/// an unknown verb or field, a missing campaign on verbs that need one, or
/// an invalid campaign name.
[[nodiscard]] Request parse_request(const std::string& payload);

// --- response payload builders ----------------------------------------------

[[nodiscard]] std::string error_response(const std::string& message);
[[nodiscard]] std::string submitted_response(const std::string& campaign,
                                             std::uint64_t cells);
/// `state` is a CampaignState name (daemon.hpp); done/total count cells.
[[nodiscard]] std::string status_response(const std::string& campaign,
                                          const std::string& state,
                                          std::uint64_t done,
                                          std::uint64_t total);
/// One streamed cell: key verbatim, ok flag, then either the aggregate
/// bytes verbatim or the escaped error text.
[[nodiscard]] std::string cell_response(const std::string& campaign,
                                        const std::string& key, bool ok,
                                        const std::string& agg_json,
                                        const std::string& error);
[[nodiscard]] std::string end_response(const std::string& campaign,
                                       const std::string& state);
/// The merged report JSON, embedded verbatim under "report".
[[nodiscard]] std::string report_response(const std::string& campaign,
                                          const std::string& report_json);
[[nodiscard]] std::string cancelled_response(const std::string& campaign);
[[nodiscard]] std::string resumed_response(const std::string& campaign);

}  // namespace fnr::service
