// Mutable edge accumulator producing an immutable Graph.
//
// Generators work in index space [0, n); the ID space (naming regime) is
// attached at build() time. The builder rejects self-loops and silently
// deduplicates parallel edges, so generators may add an edge from both
// endpoints without bookkeeping.
#pragma once

#include <utility>
#include <vector>

#include "graph/graph.hpp"

namespace fnr::graph {

class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_vertices);

  /// Adds undirected edge {u, v}. Requires u != v and both < n.
  void add_edge(VertexIndex u, VertexIndex v);

  [[nodiscard]] std::size_t num_vertices() const noexcept { return n_; }

  /// Finalizes into a Graph with the given naming. `ids.ids.size()` must be
  /// n, IDs must be distinct and < ids.bound. The builder is consumed.
  [[nodiscard]] Graph build(IdSpace ids) &&;

  /// Finalizes with the tight identity naming (ID = index, n' = n).
  [[nodiscard]] Graph build_identity_ids() &&;

 private:
  std::size_t n_;
  std::vector<std::pair<VertexIndex, VertexIndex>> edges_;
};

}  // namespace fnr::graph
