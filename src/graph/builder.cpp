#include "graph/builder.hpp"

#include <algorithm>
#include <numeric>

namespace fnr::graph {

GraphBuilder::GraphBuilder(std::size_t num_vertices) : n_(num_vertices) {
  FNR_CHECK_MSG(num_vertices >= 1, "graph needs at least one vertex");
  FNR_CHECK_MSG(num_vertices <= static_cast<std::size_t>(kNoVertex),
                "too many vertices for 32-bit indices");
}

void GraphBuilder::add_edge(VertexIndex u, VertexIndex v) {
  FNR_CHECK_MSG(u != v, "self-loop at vertex " << u);
  FNR_CHECK_MSG(u < n_ && v < n_,
                "edge (" << u << ", " << v << ") out of range n=" << n_);
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

Graph GraphBuilder::build(IdSpace ids) && {
  FNR_CHECK_MSG(ids.ids.size() == n_,
                "ID space size " << ids.ids.size() << " != n=" << n_);

  // Deduplicate parallel edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  Graph g;
  g.offsets_.assign(n_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++g.offsets_[u + 1];
    ++g.offsets_[v + 1];
  }
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());
  g.adjacency_.resize(edges_.size() * 2);
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    g.adjacency_[cursor[u]++] = v;
    g.adjacency_[cursor[v]++] = u;
  }
  for (std::size_t v = 0; v < n_; ++v) {
    std::sort(g.adjacency_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]),
              g.adjacency_.begin() +
                  static_cast<std::ptrdiff_t>(g.offsets_[v + 1]));
  }

  g.min_degree_ = n_ > 0 ? g.degree(0) : 0;
  g.max_degree_ = 0;
  for (VertexIndex v = 0; v < n_; ++v) {
    const std::size_t d = g.degree(v);
    g.min_degree_ = std::min(g.min_degree_, d);
    g.max_degree_ = std::max(g.max_degree_, d);
  }

  g.id_to_index_.reserve(n_ * 2);
  for (VertexIndex v = 0; v < n_; ++v) {
    const VertexId id = ids.ids[v];
    FNR_CHECK_MSG(id < ids.bound,
                  "ID " << id << " >= bound n'=" << ids.bound);
    const auto [it, inserted] = g.id_to_index_.emplace(id, v);
    (void)it;
    FNR_CHECK_MSG(inserted, "duplicate vertex ID " << id);
  }
  g.id_space_ = std::move(ids);
  return g;
}

Graph GraphBuilder::build_identity_ids() && {
  IdSpace ids;
  ids.ids.resize(n_);
  std::iota(ids.ids.begin(), ids.ids.end(), VertexId{0});
  ids.bound = n_;
  ids.tight = true;
  return std::move(*this).build(std::move(ids));
}

}  // namespace fnr::graph
