// Graph families used by the experiments.
//
// Generators work in index space and return plain Graphs with identity
// naming by default; callers that need a specific naming regime rebuild via
// GraphBuilder + id_space helpers (see make_* overloads taking IdSpace).
// The three lower-bound families return the special vertices of the
// construction (Figures 1–3 of the paper) alongside the graph.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "graph/builder.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fnr::graph {

// --- elementary families ---------------------------------------------------

/// K_n.
[[nodiscard]] Graph make_complete(std::size_t n);

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph make_ring(std::size_t n);

/// Path P_n (n >= 2).
[[nodiscard]] Graph make_path(std::size_t n);

/// Star with `leaves` leaves; vertex 0 is the center.
[[nodiscard]] Graph make_star(std::size_t leaves);

/// rows x cols grid (4-neighborhood).
[[nodiscard]] Graph make_grid(std::size_t rows, std::size_t cols);

// --- random families --------------------------------------------------------

/// Erdős–Rényi G(n, p) via geometric edge skipping. Expected degree p(n-1).
[[nodiscard]] Graph make_erdos_renyi(std::size_t n, double p, Rng& rng);

/// Near-regular random graph: every vertex draws `out_degree` distinct
/// random partners; the union of those pairs is the edge set. Guarantees
/// min degree >= out_degree and concentrates all degrees near 2*out_degree,
/// so δ = Θ(Δ). This is the workhorse family for Theorem 1/2 sweeps where
/// the bound is governed by δ.
[[nodiscard]] Graph make_near_regular(std::size_t n, std::size_t out_degree,
                                      Rng& rng);

/// Near-regular base of parameter `base_out_degree` plus `num_hubs` vertices
/// adjacent to every other vertex. Yields δ ≈ base_out_degree + num_hubs and
/// Δ = n - 1: the family where δ and Δ are controlled independently
/// (used for the δ-sweep / crossover experiment E2).
[[nodiscard]] Graph make_hub_augmented(std::size_t n,
                                       std::size_t base_out_degree,
                                       std::size_t num_hubs, Rng& rng);

// --- structured families (scenario-engine topologies) -----------------------

/// rows x cols torus: the grid with wraparound in both dimensions. Requires
/// rows, cols >= 3 (smaller wraps would collapse into parallel edges).
/// Guarantees: connected, 4-regular (δ = Δ = 4).
[[nodiscard]] Graph make_torus(std::size_t rows, std::size_t cols);

/// d-dimensional hypercube Q_d: n = 2^d vertices, edges between words at
/// Hamming distance 1. Requires 1 <= dim <= 24.
/// Guarantees: connected, dim-regular (δ = Δ = dim).
[[nodiscard]] Graph make_hypercube(std::size_t dim);

// --- random families (realistic topologies) ---------------------------------

/// Barabási–Albert preferential attachment: seed clique K_{m+1}, then each
/// new vertex attaches `m` edges to distinct existing vertices chosen
/// proportionally to current degree. Requires n >= m + 2, m >= 1.
/// Guarantees: connected, simple, δ >= m.
[[nodiscard]] Graph make_barabasi_albert(std::size_t n, std::size_t m,
                                         Rng& rng);

/// Watts–Strogatz small world: ring of n vertices, each joined to its k
/// nearest neighbors per side; every long-range edge (offset >= 2) is
/// rewired with probability beta to a uniform non-adjacent target. The
/// offset-1 base cycle is never rewired, so connectivity survives any beta.
/// Requires 2*k + 1 <= n, beta in [0, 1].
/// Guarantees: connected, simple, δ >= 2; beta = 0 is the exact ring
/// lattice (2k-regular).
[[nodiscard]] Graph make_watts_strogatz(std::size_t n, std::size_t k,
                                        double beta, Rng& rng);

/// Random geometric graph: n uniform points in the unit square, an edge
/// wherever the Euclidean distance is <= radius. Connectivity is NOT
/// guaranteed (isolated vertices appear below the connectivity threshold
/// radius ~ sqrt(ln n / (pi n))); use make_random_geometric_connected when
/// the experiment needs one component.
/// Guarantees: simple; edge {u, v} if and only if dist(u, v) <= radius.
struct GeometricGraph {
  Graph graph;
  std::vector<std::array<double, 2>> points;  ///< index -> (x, y)
};
[[nodiscard]] GeometricGraph make_random_geometric(std::size_t n,
                                                   double radius, Rng& rng);

/// Random geometric graph patched to one component: after the radius pass,
/// the closest inter-component point pair is bridged until the graph is
/// connected (deterministic given the points).
/// Guarantees: connected, simple; the edge set is a superset of
/// make_random_geometric on the same points.
[[nodiscard]] GeometricGraph make_random_geometric_connected(std::size_t n,
                                                             double radius,
                                                             Rng& rng);

// --- lower-bound families (paper Figures 1-3) -------------------------------

/// Figure 1(a): two stars glued by a center-center edge. Agents start at the
/// two centers (adjacent). δ = 1, Δ = leaves_per_center + 1, n =
/// 2*leaves_per_center + 2. Hard instance of Theorem 3.
struct DoubleStar {
  Graph graph;
  VertexIndex center_a = 0;
  VertexIndex center_b = 0;
};
[[nodiscard]] DoubleStar make_double_star(std::size_t leaves_per_center);

/// Figure 1(b): the general-degree variant — each center is adjacent to the
/// other center and to one gateway vertex of each of `branches` cliques of
/// size `clique_size`. δ = clique_size - 1, Δ = branches + 1.
[[nodiscard]] DoubleStar make_double_star_cliques(std::size_t branches,
                                                  std::size_t clique_size);

/// Figure 2: two (n/2)-cliques; one edge removed inside each; the freed
/// endpoints joined across: (a_start, b_start) and (x1, x2) become the only
/// inter-clique edges. δ = Δ = n/2 - 1. Hard instance of Theorem 4 when
/// neighborhood IDs are hidden.
struct BridgedCliques {
  Graph graph;
  VertexIndex a_start = 0;
  VertexIndex b_start = 0;
  VertexIndex x1 = 0;
  VertexIndex x2 = 0;
};
[[nodiscard]] BridgedCliques make_bridged_cliques(std::size_t half);

/// Figure 3: two cliques of (n+1)/2 vertices sharing exactly one vertex.
/// Agents start at non-shared vertices, initial distance 2. Hard instance of
/// Theorem 5.
struct SharedVertexCliques {
  Graph graph;
  VertexIndex a_start = 0;
  VertexIndex b_start = 0;
  VertexIndex shared = 0;
};
[[nodiscard]] SharedVertexCliques make_shared_vertex_cliques(std::size_t half);

// --- renaming ---------------------------------------------------------------

/// Rebuilds `g` with a different ID space (same topology).
[[nodiscard]] Graph with_ids(const Graph& g, IdSpace ids);

/// Rebuilds `g` with uniformly permuted vertex *indices* (identity IDs on
/// the new indices). Port numbering follows indices, so this also
/// randomizes port order — use it to stop port-ordered strategies from
/// riding a construction's layout. `mapping[old_index]` gives the new index.
struct PermutedGraph {
  Graph graph;
  std::vector<VertexIndex> mapping;
};
[[nodiscard]] PermutedGraph permute_indices(const Graph& g, Rng& rng);

}  // namespace fnr::graph
