#include "graph/generators.hpp"

#include <cmath>
#include <numeric>
#include <unordered_set>

namespace fnr::graph {

Graph make_complete(std::size_t n) {
  FNR_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexIndex u = 0; u < n; ++u)
    for (VertexIndex v = u + 1; v < n; ++v) b.add_edge(u, v);
  return std::move(b).build_identity_ids();
}

Graph make_ring(std::size_t n) {
  FNR_CHECK(n >= 3);
  GraphBuilder b(n);
  for (VertexIndex v = 0; v < n; ++v)
    b.add_edge(v, static_cast<VertexIndex>((v + 1) % n));
  return std::move(b).build_identity_ids();
}

Graph make_path(std::size_t n) {
  FNR_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexIndex v = 0; v + 1 < n; ++v)
    b.add_edge(v, static_cast<VertexIndex>(v + 1));
  return std::move(b).build_identity_ids();
}

Graph make_star(std::size_t leaves) {
  FNR_CHECK(leaves >= 1);
  GraphBuilder b(leaves + 1);
  for (VertexIndex v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return std::move(b).build_identity_ids();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  FNR_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  GraphBuilder b(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexIndex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_erdos_renyi(std::size_t n, double p, Rng& rng) {
  FNR_CHECK(n >= 2);
  FNR_CHECK_MSG(p > 0.0 && p <= 1.0, "G(n,p) needs p in (0, 1]");
  GraphBuilder b(n);
  if (p >= 1.0) return make_complete(n);
  // Geometric skipping over the linearized upper triangle. Skips are
  // monotone, so the (row, col) decoding advances a cursor instead of
  // inverting the quadratic index formula.
  const double log1mp = std::log1p(-p);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;  // number of vertex pairs
  auto row_start = [n](std::uint64_t r) {
    return r * (n - 1) - r * (r - 1) / 2;
  };
  std::uint64_t pos = 0;
  std::uint64_t row = 0;
  while (true) {
    const double u = std::max(rng.uniform01(), 1e-300);
    pos += 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
    if (pos > total) break;
    const std::uint64_t k = pos - 1;
    while (row + 1 < n && row_start(row + 1) <= k) ++row;
    const std::uint64_t col = k - row_start(row) + row + 1;
    b.add_edge(static_cast<VertexIndex>(row), static_cast<VertexIndex>(col));
  }
  return std::move(b).build_identity_ids();
}

Graph make_near_regular(std::size_t n, std::size_t out_degree, Rng& rng) {
  FNR_CHECK(n >= 2);
  FNR_CHECK_MSG(out_degree >= 1 && out_degree < n,
                "out_degree must be in [1, n)");
  GraphBuilder b(n);
  std::unordered_set<VertexIndex> picked;
  for (VertexIndex u = 0; u < n; ++u) {
    picked.clear();
    while (picked.size() < out_degree) {
      const auto v = static_cast<VertexIndex>(rng.below(n));
      if (v == u || picked.contains(v)) continue;
      picked.insert(v);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_hub_augmented(std::size_t n, std::size_t base_out_degree,
                         std::size_t num_hubs, Rng& rng) {
  FNR_CHECK(n >= 4);
  FNR_CHECK_MSG(num_hubs < n, "need fewer hubs than vertices");
  FNR_CHECK_MSG(base_out_degree >= 1 && base_out_degree < n - num_hubs,
                "base_out_degree out of range");
  GraphBuilder b(n);
  // Hubs are the last `num_hubs` indices; adjacent to everything.
  const auto hub_start = static_cast<VertexIndex>(n - num_hubs);
  for (VertexIndex h = hub_start; h < n; ++h)
    for (VertexIndex v = 0; v < n; ++v)
      if (v != h && (v < hub_start || v > h)) b.add_edge(h, v);
  // Near-regular base among non-hub vertices.
  std::unordered_set<VertexIndex> picked;
  for (VertexIndex u = 0; u < hub_start; ++u) {
    picked.clear();
    while (picked.size() < base_out_degree) {
      const auto v = static_cast<VertexIndex>(rng.below(hub_start));
      if (v == u || picked.contains(v)) continue;
      picked.insert(v);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build_identity_ids();
}

DoubleStar make_double_star(std::size_t leaves_per_center) {
  FNR_CHECK(leaves_per_center >= 1);
  const std::size_t n = 2 * leaves_per_center + 2;
  GraphBuilder b(n);
  const VertexIndex center_a = 0;
  const auto center_b = static_cast<VertexIndex>(1);
  b.add_edge(center_a, center_b);
  // a's leaves: [2, 2+leaves); b's leaves: [2+leaves, n).
  for (std::size_t i = 0; i < leaves_per_center; ++i) {
    b.add_edge(center_a, static_cast<VertexIndex>(2 + i));
    b.add_edge(center_b, static_cast<VertexIndex>(2 + leaves_per_center + i));
  }
  return DoubleStar{std::move(b).build_identity_ids(), center_a, center_b};
}

DoubleStar make_double_star_cliques(std::size_t branches,
                                    std::size_t clique_size) {
  FNR_CHECK(branches >= 1);
  FNR_CHECK(clique_size >= 2);
  const std::size_t n = 2 + 2 * branches * clique_size;
  GraphBuilder b(n);
  const VertexIndex center_a = 0;
  const VertexIndex center_b = 1;
  b.add_edge(center_a, center_b);
  // Cliques are laid out consecutively after the two centers; the first
  // vertex of each clique is its gateway.
  VertexIndex next = 2;
  for (int side = 0; side < 2; ++side) {
    const VertexIndex center = side == 0 ? center_a : center_b;
    for (std::size_t br = 0; br < branches; ++br) {
      const VertexIndex gateway = next;
      for (std::size_t i = 0; i < clique_size; ++i)
        for (std::size_t j = i + 1; j < clique_size; ++j)
          b.add_edge(static_cast<VertexIndex>(next + i),
                     static_cast<VertexIndex>(next + j));
      b.add_edge(center, gateway);
      next = static_cast<VertexIndex>(next + clique_size);
    }
  }
  return DoubleStar{std::move(b).build_identity_ids(), center_a, center_b};
}

BridgedCliques make_bridged_cliques(std::size_t half) {
  FNR_CHECK_MSG(half >= 3, "bridged cliques need half >= 3");
  const std::size_t n = 2 * half;
  GraphBuilder b(n);
  // C1 = [0, half), C2 = [half, n).
  const VertexIndex a_start = 0;
  const VertexIndex x1 = 1;
  const auto b_start = static_cast<VertexIndex>(half);
  const auto x2 = static_cast<VertexIndex>(half + 1);
  for (int side = 0; side < 2; ++side) {
    const auto base = static_cast<VertexIndex>(side * half);
    for (std::size_t i = 0; i < half; ++i)
      for (std::size_t j = i + 1; j < half; ++j) {
        const auto u = static_cast<VertexIndex>(base + i);
        const auto v = static_cast<VertexIndex>(base + j);
        // Drop the (start, x) edge inside each clique.
        if (side == 0 && u == a_start && v == x1) continue;
        if (side == 1 && u == b_start && v == x2) continue;
        b.add_edge(u, v);
      }
  }
  b.add_edge(a_start, b_start);
  b.add_edge(x1, x2);
  return BridgedCliques{std::move(b).build_identity_ids(), a_start, b_start,
                        x1, x2};
}

SharedVertexCliques make_shared_vertex_cliques(std::size_t half) {
  FNR_CHECK_MSG(half >= 3, "shared-vertex cliques need half >= 3");
  const std::size_t n = 2 * half - 1;
  GraphBuilder b(n);
  // Shared vertex is index 0; clique A = {0} ∪ [1, half); clique B = {0} ∪
  // [half, n).
  const VertexIndex shared = 0;
  for (std::size_t i = 0; i < half; ++i)
    for (std::size_t j = i + 1; j < half; ++j)
      b.add_edge(static_cast<VertexIndex>(i), static_cast<VertexIndex>(j));
  for (std::size_t i = 0; i < half; ++i)
    for (std::size_t j = i + 1; j < half; ++j) {
      const auto u =
          i == 0 ? shared : static_cast<VertexIndex>(half - 1 + i);
      const auto v = static_cast<VertexIndex>(half - 1 + j);
      b.add_edge(u, v);
    }
  return SharedVertexCliques{std::move(b).build_identity_ids(),
                             /*a_start=*/1,
                             /*b_start=*/static_cast<VertexIndex>(half),
                             shared};
}

PermutedGraph permute_indices(const Graph& g, Rng& rng) {
  PermutedGraph out;
  out.mapping.resize(g.num_vertices());
  std::iota(out.mapping.begin(), out.mapping.end(), VertexIndex{0});
  shuffle(out.mapping, rng);
  GraphBuilder b(g.num_vertices());
  for (VertexIndex u = 0; u < g.num_vertices(); ++u)
    for (const VertexIndex v : g.neighbors(u))
      if (u < v) b.add_edge(out.mapping[u], out.mapping[v]);
  out.graph = std::move(b).build_identity_ids();
  return out;
}

Graph with_ids(const Graph& g, IdSpace ids) {
  GraphBuilder b(g.num_vertices());
  for (VertexIndex u = 0; u < g.num_vertices(); ++u)
    for (const VertexIndex v : g.neighbors(u))
      if (u < v) b.add_edge(u, v);
  return std::move(b).build(std::move(ids));
}

}  // namespace fnr::graph
