#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <unordered_set>

namespace fnr::graph {

Graph make_complete(std::size_t n) {
  FNR_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexIndex u = 0; u < n; ++u)
    for (VertexIndex v = u + 1; v < n; ++v) b.add_edge(u, v);
  return std::move(b).build_identity_ids();
}

Graph make_ring(std::size_t n) {
  FNR_CHECK(n >= 3);
  GraphBuilder b(n);
  for (VertexIndex v = 0; v < n; ++v)
    b.add_edge(v, static_cast<VertexIndex>((v + 1) % n));
  return std::move(b).build_identity_ids();
}

Graph make_path(std::size_t n) {
  FNR_CHECK(n >= 2);
  GraphBuilder b(n);
  for (VertexIndex v = 0; v + 1 < n; ++v)
    b.add_edge(v, static_cast<VertexIndex>(v + 1));
  return std::move(b).build_identity_ids();
}

Graph make_star(std::size_t leaves) {
  FNR_CHECK(leaves >= 1);
  GraphBuilder b(leaves + 1);
  for (VertexIndex v = 1; v <= leaves; ++v) b.add_edge(0, v);
  return std::move(b).build_identity_ids();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  FNR_CHECK(rows >= 1 && cols >= 1 && rows * cols >= 2);
  GraphBuilder b(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexIndex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(at(r, c), at(r, c + 1));
      if (r + 1 < rows) b.add_edge(at(r, c), at(r + 1, c));
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_erdos_renyi(std::size_t n, double p, Rng& rng) {
  FNR_CHECK(n >= 2);
  FNR_CHECK_MSG(p > 0.0 && p <= 1.0, "G(n,p) needs p in (0, 1]");
  GraphBuilder b(n);
  if (p >= 1.0) return make_complete(n);
  // Geometric skipping over the linearized upper triangle. Skips are
  // monotone, so the (row, col) decoding advances a cursor instead of
  // inverting the quadratic index formula.
  const double log1mp = std::log1p(-p);
  const std::uint64_t total =
      static_cast<std::uint64_t>(n) * (n - 1) / 2;  // number of vertex pairs
  auto row_start = [n](std::uint64_t r) {
    return r * (n - 1) - r * (r - 1) / 2;
  };
  std::uint64_t pos = 0;
  std::uint64_t row = 0;
  while (true) {
    const double u = std::max(rng.uniform01(), 1e-300);
    pos += 1 + static_cast<std::uint64_t>(std::floor(std::log(u) / log1mp));
    if (pos > total) break;
    const std::uint64_t k = pos - 1;
    while (row + 1 < n && row_start(row + 1) <= k) ++row;
    const std::uint64_t col = k - row_start(row) + row + 1;
    b.add_edge(static_cast<VertexIndex>(row), static_cast<VertexIndex>(col));
  }
  return std::move(b).build_identity_ids();
}

Graph make_near_regular(std::size_t n, std::size_t out_degree, Rng& rng) {
  FNR_CHECK(n >= 2);
  FNR_CHECK_MSG(out_degree >= 1 && out_degree < n,
                "out_degree must be in [1, n)");
  GraphBuilder b(n);
  std::unordered_set<VertexIndex> picked;
  for (VertexIndex u = 0; u < n; ++u) {
    picked.clear();
    while (picked.size() < out_degree) {
      const auto v = static_cast<VertexIndex>(rng.below(n));
      if (v == u || picked.contains(v)) continue;
      picked.insert(v);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_hub_augmented(std::size_t n, std::size_t base_out_degree,
                         std::size_t num_hubs, Rng& rng) {
  FNR_CHECK(n >= 4);
  FNR_CHECK_MSG(num_hubs < n, "need fewer hubs than vertices");
  FNR_CHECK_MSG(base_out_degree >= 1 && base_out_degree < n - num_hubs,
                "base_out_degree out of range");
  GraphBuilder b(n);
  // Hubs are the last `num_hubs` indices; adjacent to everything.
  const auto hub_start = static_cast<VertexIndex>(n - num_hubs);
  for (VertexIndex h = hub_start; h < n; ++h)
    for (VertexIndex v = 0; v < n; ++v)
      if (v != h && (v < hub_start || v > h)) b.add_edge(h, v);
  // Near-regular base among non-hub vertices.
  std::unordered_set<VertexIndex> picked;
  for (VertexIndex u = 0; u < hub_start; ++u) {
    picked.clear();
    while (picked.size() < base_out_degree) {
      const auto v = static_cast<VertexIndex>(rng.below(hub_start));
      if (v == u || picked.contains(v)) continue;
      picked.insert(v);
      b.add_edge(u, v);
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  FNR_CHECK_MSG(rows >= 3 && cols >= 3,
                "torus needs rows, cols >= 3 to stay simple");
  GraphBuilder b(rows * cols);
  auto at = [cols](std::size_t r, std::size_t c) {
    return static_cast<VertexIndex>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      b.add_edge(at(r, c), at(r, (c + 1) % cols));
      b.add_edge(at(r, c), at((r + 1) % rows, c));
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_hypercube(std::size_t dim) {
  FNR_CHECK_MSG(dim >= 1 && dim <= 24, "hypercube dim must be in [1, 24]");
  const std::size_t n = std::size_t{1} << dim;
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t bit = 0; bit < dim; ++bit) {
      const std::size_t u = v ^ (std::size_t{1} << bit);
      if (v < u)
        b.add_edge(static_cast<VertexIndex>(v), static_cast<VertexIndex>(u));
    }
  return std::move(b).build_identity_ids();
}

Graph make_barabasi_albert(std::size_t n, std::size_t m, Rng& rng) {
  FNR_CHECK_MSG(m >= 1, "attachment count m must be >= 1");
  FNR_CHECK_MSG(n >= m + 2, "Barabási–Albert needs n >= m + 2");
  GraphBuilder b(n);
  // One endpoint entry per degree unit: sampling a uniform slot is sampling
  // a vertex proportionally to its degree.
  std::vector<VertexIndex> slots;
  slots.reserve(2 * (m * (m + 1) / 2 + (n - m - 1) * m));
  for (VertexIndex u = 0; u <= m; ++u)
    for (VertexIndex v = u + 1; v <= m; ++v) {
      b.add_edge(u, v);
      slots.push_back(u);
      slots.push_back(v);
    }
  std::unordered_set<VertexIndex> picked;
  std::vector<VertexIndex> picks;  // in pick order: slot layout must not
                                   // depend on hash-set iteration order
  for (VertexIndex v = static_cast<VertexIndex>(m + 1); v < n; ++v) {
    picked.clear();
    picks.clear();
    while (picked.size() < m) {
      const VertexIndex target = slots[rng.below(slots.size())];
      if (picked.contains(target)) continue;  // attachments are distinct
      picked.insert(target);
      picks.push_back(target);
      b.add_edge(v, target);
    }
    // Publish the new edges only after all m picks: a vertex never attaches
    // to itself, and its own fresh degree does not bias its own picks.
    for (const VertexIndex target : picks) {
      slots.push_back(v);
      slots.push_back(target);
    }
  }
  return std::move(b).build_identity_ids();
}

Graph make_watts_strogatz(std::size_t n, std::size_t k, double beta,
                          Rng& rng) {
  FNR_CHECK_MSG(k >= 1, "ring lattice needs k >= 1 neighbors per side");
  FNR_CHECK_MSG(2 * k + 1 <= n, "ring lattice needs 2k + 1 <= n");
  FNR_CHECK_MSG(beta >= 0.0 && beta <= 1.0, "beta must be in [0, 1]");
  // Track adjacency so rewiring never creates a duplicate (the builder
  // would silently dedup it, quietly lowering the edge count).
  std::vector<std::unordered_set<VertexIndex>> adj(n);
  auto connect = [&](VertexIndex u, VertexIndex v) {
    adj[u].insert(v);
    adj[v].insert(u);
  };
  for (std::size_t v = 0; v < n; ++v)
    for (std::size_t j = 1; j <= k; ++j)
      connect(static_cast<VertexIndex>(v),
              static_cast<VertexIndex>((v + j) % n));
  for (std::size_t v = 0; v < n; ++v) {
    // Offset-1 edges (the base cycle) are exempt: they keep the graph
    // connected no matter how aggressively the long-range edges rewire.
    for (std::size_t j = 2; j <= k; ++j) {
      const auto u = static_cast<VertexIndex>((v + j) % n);
      if (!rng.bernoulli(beta)) continue;
      // A handful of rejection draws; on pathological (tiny, dense) inputs
      // keep the lattice edge rather than loop forever.
      for (int attempt = 0; attempt < 32; ++attempt) {
        const auto t = static_cast<VertexIndex>(rng.below(n));
        if (t == v || adj[v].contains(t)) continue;
        adj[v].erase(u);
        adj[u].erase(static_cast<VertexIndex>(v));
        connect(static_cast<VertexIndex>(v), t);
        break;
      }
    }
  }
  GraphBuilder b(n);
  for (std::size_t v = 0; v < n; ++v)
    for (const VertexIndex u : adj[v])
      if (v < u) b.add_edge(static_cast<VertexIndex>(v), u);
  return std::move(b).build_identity_ids();
}

namespace {

double squared_distance(const std::array<double, 2>& p,
                        const std::array<double, 2>& q) {
  const double dx = p[0] - q[0];
  const double dy = p[1] - q[1];
  return dx * dx + dy * dy;
}

std::vector<std::array<double, 2>> draw_points(std::size_t n, Rng& rng) {
  std::vector<std::array<double, 2>> points(n);
  for (auto& p : points) {
    p[0] = rng.uniform01();
    p[1] = rng.uniform01();
  }
  return points;
}

/// Uniform spatial grid over the unit square. Cell side is >= radius, so
/// every point within `radius` of p lives in the 3x3 cell block around p's
/// cell; the axis count is additionally capped near sqrt(n) so the grid
/// never allocates more cells than points. Buckets are CSR-packed in point
/// order (counting sort), which keeps every scan deterministic.
class PointGrid {
 public:
  PointGrid(const std::vector<std::array<double, 2>>& points, double radius)
      : points_(points) {
    const auto n = points.size();
    const auto sqrt_n = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(std::sqrt(static_cast<double>(n)))));
    // Clamp in double space BEFORE the integer cast: 1 / radius exceeds
    // the uint64 range for tiny (but valid) radii, and casting an
    // out-of-range double is UB.
    const double wanted =
        std::min(1.0 / radius, static_cast<double>(sqrt_n));
    per_axis_ = wanted < 1.0 ? 1 : static_cast<std::size_t>(wanted);
    cell_side_ = 1.0 / static_cast<double>(per_axis_);
    offsets_.assign(per_axis_ * per_axis_ + 1, 0);
    for (const auto& p : points_) ++offsets_[cell_index(p) + 1];
    for (std::size_t c = 1; c < offsets_.size(); ++c)
      offsets_[c] += offsets_[c - 1];
    slots_.resize(n);
    std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
    for (std::size_t i = 0; i < n; ++i)
      slots_[cursor[cell_index(points_[i])]++] = i;
  }

  [[nodiscard]] std::size_t per_axis() const noexcept { return per_axis_; }
  [[nodiscard]] double cell_side() const noexcept { return cell_side_; }

  [[nodiscard]] std::size_t axis_cell(double coord) const noexcept {
    const auto c = static_cast<std::size_t>(
        std::max(0.0, coord) * static_cast<double>(per_axis_));
    return std::min(c, per_axis_ - 1);
  }

  /// Calls visit(j) for every point in cell (cx, cy), in point order.
  template <typename Visit>
  void for_cell(std::size_t cx, std::size_t cy, Visit&& visit) const {
    const std::size_t cell = cy * per_axis_ + cx;
    for (std::size_t s = offsets_[cell]; s < offsets_[cell + 1]; ++s)
      visit(slots_[s]);
  }

 private:
  [[nodiscard]] std::size_t cell_index(
      const std::array<double, 2>& p) const noexcept {
    return axis_cell(p[1]) * per_axis_ + axis_cell(p[0]);
  }

  const std::vector<std::array<double, 2>>& points_;
  std::size_t per_axis_ = 1;
  double cell_side_ = 1.0;
  std::vector<std::size_t> offsets_;  ///< CSR offsets, one per grid cell
  std::vector<std::size_t> slots_;    ///< point indices packed by cell
};

std::vector<std::pair<VertexIndex, VertexIndex>> radius_edges(
    const std::vector<std::array<double, 2>>& points, double radius) {
  // Grid bucketing: each point only tests the 3x3 cell block around it, so
  // the scan is O(n + edges) in expectation instead of the old all-pairs
  // O(n^2). The (i < j) filter emits each pair exactly once, and the edge
  // set is identical to the all-pairs scan (the builder sorts + dedups, so
  // emission order is immaterial; we sort anyway for determinism of the
  // raw edge list handed to callers).
  std::vector<std::pair<VertexIndex, VertexIndex>> edges;
  const double r2 = radius * radius;
  const PointGrid grid(points, radius);
  for (std::size_t i = 0; i < points.size(); ++i) {
    const std::size_t cx = grid.axis_cell(points[i][0]);
    const std::size_t cy = grid.axis_cell(points[i][1]);
    const std::size_t x_lo = cx > 0 ? cx - 1 : 0;
    const std::size_t x_hi = std::min(cx + 1, grid.per_axis() - 1);
    const std::size_t y_lo = cy > 0 ? cy - 1 : 0;
    const std::size_t y_hi = std::min(cy + 1, grid.per_axis() - 1);
    for (std::size_t y = y_lo; y <= y_hi; ++y)
      for (std::size_t x = x_lo; x <= x_hi; ++x)
        grid.for_cell(x, y, [&](std::size_t j) {
          if (j <= i) return;
          if (squared_distance(points[i], points[j]) <= r2)
            edges.emplace_back(static_cast<VertexIndex>(i),
                               static_cast<VertexIndex>(j));
        });
  }
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Union-find over vertex indices (path halving + union by size).
class DisjointSets {
 public:
  explicit DisjointSets(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), VertexIndex{0});
  }
  VertexIndex find(VertexIndex v) {
    while (parent_[v] != v) {
      parent_[v] = parent_[parent_[v]];
      v = parent_[v];
    }
    return v;
  }
  bool unite(VertexIndex u, VertexIndex v) {
    u = find(u);
    v = find(v);
    if (u == v) return false;
    if (size_[u] < size_[v]) std::swap(u, v);
    parent_[v] = u;
    size_[u] += size_[v];
    return true;
  }

 private:
  std::vector<VertexIndex> parent_;
  std::vector<std::size_t> size_;
};

/// Globally closest pair of points in different components, minimizing
/// (distance², u, v) lexicographically with u < v — the same winner
/// (including tie-breaks) as the old all-pairs scan. Each point searches
/// expanding cell rings around itself and stops once the nearest possible
/// cell of the next ring is already farther than the best pair found, so
/// the scan is near-linear when components are spatially separated.
std::pair<VertexIndex, VertexIndex> closest_inter_component_pair(
    const std::vector<std::array<double, 2>>& points, const PointGrid& grid,
    DisjointSets& components) {
  double best = std::numeric_limits<double>::infinity();
  VertexIndex best_u = 0, best_v = 0;
  bool found = false;
  const std::size_t per_axis = grid.per_axis();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const VertexIndex root_i =
        components.find(static_cast<VertexIndex>(i));
    const std::size_t cx = grid.axis_cell(points[i][0]);
    const std::size_t cy = grid.axis_cell(points[i][1]);
    const std::size_t last_ring =
        std::max(std::max(cx, cy),
                 std::max(per_axis - 1 - cx, per_axis - 1 - cy));
    auto visit = [&](std::size_t x, std::size_t y) {
      grid.for_cell(x, y, [&](std::size_t j) {
        if (j == i) return;
        if (components.find(static_cast<VertexIndex>(j)) == root_i) return;
        const double d2 = squared_distance(points[i], points[j]);
        const auto u = static_cast<VertexIndex>(std::min(i, j));
        const auto v = static_cast<VertexIndex>(std::max(i, j));
        if (d2 < best || (d2 == best && (u < best_u ||
                                         (u == best_u && v < best_v)))) {
          best = d2;
          best_u = u;
          best_v = v;
          found = true;
        }
      });
    };
    for (std::size_t ring = 0; ring <= last_ring; ++ring) {
      // A point in a ring-r cell is at least (r - 1) cell sides away.
      if (found && ring >= 2) {
        const double min_d =
            static_cast<double>(ring - 1) * grid.cell_side();
        if (min_d * min_d > best) break;
      }
      const std::size_t x_lo = cx >= ring ? cx - ring : 0;
      const std::size_t x_hi = std::min(cx + ring, per_axis - 1);
      const std::size_t y_lo = cy >= ring ? cy - ring : 0;
      const std::size_t y_hi = std::min(cy + ring, per_axis - 1);
      for (std::size_t y = y_lo; y <= y_hi; ++y) {
        const bool edge_row =
            (cy >= ring && y == cy - ring) || y == cy + ring;
        if (edge_row) {
          for (std::size_t x = x_lo; x <= x_hi; ++x) visit(x, y);
        } else {
          if (cx >= ring && cx - ring == x_lo) visit(x_lo, y);
          if (cx + ring == x_hi) visit(x_hi, y);
        }
      }
    }
  }
  FNR_CHECK_MSG(found, "no inter-component pair exists");
  return {best_u, best_v};
}

}  // namespace

GeometricGraph make_random_geometric(std::size_t n, double radius, Rng& rng) {
  FNR_CHECK(n >= 2);
  FNR_CHECK_MSG(radius > 0.0, "geometric radius must be positive");
  GeometricGraph out;
  out.points = draw_points(n, rng);
  GraphBuilder b(n);
  for (const auto& [u, v] : radius_edges(out.points, radius)) b.add_edge(u, v);
  out.graph = std::move(b).build_identity_ids();
  return out;
}

GeometricGraph make_random_geometric_connected(std::size_t n, double radius,
                                               Rng& rng) {
  FNR_CHECK(n >= 2);
  FNR_CHECK_MSG(radius > 0.0, "geometric radius must be positive");
  GeometricGraph out;
  out.points = draw_points(n, rng);
  auto edges = radius_edges(out.points, radius);
  DisjointSets components(n);
  std::size_t num_components = n;
  for (const auto& [u, v] : edges)
    if (components.unite(u, v)) --num_components;
  // Bridge the globally closest inter-component pair until one component
  // remains; the points are fixed, so the patching is deterministic (and
  // picks the same pairs, tie-breaks included, as the historical all-pairs
  // scan — see closest_inter_component_pair).
  const PointGrid grid(out.points, radius);
  while (num_components > 1) {
    const auto [best_u, best_v] =
        closest_inter_component_pair(out.points, grid, components);
    edges.emplace_back(best_u, best_v);
    components.unite(best_u, best_v);
    --num_components;
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  out.graph = std::move(b).build_identity_ids();
  return out;
}

DoubleStar make_double_star(std::size_t leaves_per_center) {
  FNR_CHECK(leaves_per_center >= 1);
  const std::size_t n = 2 * leaves_per_center + 2;
  GraphBuilder b(n);
  const VertexIndex center_a = 0;
  const auto center_b = static_cast<VertexIndex>(1);
  b.add_edge(center_a, center_b);
  // a's leaves: [2, 2+leaves); b's leaves: [2+leaves, n).
  for (std::size_t i = 0; i < leaves_per_center; ++i) {
    b.add_edge(center_a, static_cast<VertexIndex>(2 + i));
    b.add_edge(center_b, static_cast<VertexIndex>(2 + leaves_per_center + i));
  }
  return DoubleStar{std::move(b).build_identity_ids(), center_a, center_b};
}

DoubleStar make_double_star_cliques(std::size_t branches,
                                    std::size_t clique_size) {
  FNR_CHECK(branches >= 1);
  FNR_CHECK(clique_size >= 2);
  const std::size_t n = 2 + 2 * branches * clique_size;
  GraphBuilder b(n);
  const VertexIndex center_a = 0;
  const VertexIndex center_b = 1;
  b.add_edge(center_a, center_b);
  // Cliques are laid out consecutively after the two centers; the first
  // vertex of each clique is its gateway.
  VertexIndex next = 2;
  for (int side = 0; side < 2; ++side) {
    const VertexIndex center = side == 0 ? center_a : center_b;
    for (std::size_t br = 0; br < branches; ++br) {
      const VertexIndex gateway = next;
      for (std::size_t i = 0; i < clique_size; ++i)
        for (std::size_t j = i + 1; j < clique_size; ++j)
          b.add_edge(static_cast<VertexIndex>(next + i),
                     static_cast<VertexIndex>(next + j));
      b.add_edge(center, gateway);
      next = static_cast<VertexIndex>(next + clique_size);
    }
  }
  return DoubleStar{std::move(b).build_identity_ids(), center_a, center_b};
}

BridgedCliques make_bridged_cliques(std::size_t half) {
  FNR_CHECK_MSG(half >= 3, "bridged cliques need half >= 3");
  const std::size_t n = 2 * half;
  GraphBuilder b(n);
  // C1 = [0, half), C2 = [half, n).
  const VertexIndex a_start = 0;
  const VertexIndex x1 = 1;
  const auto b_start = static_cast<VertexIndex>(half);
  const auto x2 = static_cast<VertexIndex>(half + 1);
  for (int side = 0; side < 2; ++side) {
    const auto base = static_cast<VertexIndex>(side * half);
    for (std::size_t i = 0; i < half; ++i)
      for (std::size_t j = i + 1; j < half; ++j) {
        const auto u = static_cast<VertexIndex>(base + i);
        const auto v = static_cast<VertexIndex>(base + j);
        // Drop the (start, x) edge inside each clique.
        if (side == 0 && u == a_start && v == x1) continue;
        if (side == 1 && u == b_start && v == x2) continue;
        b.add_edge(u, v);
      }
  }
  b.add_edge(a_start, b_start);
  b.add_edge(x1, x2);
  return BridgedCliques{std::move(b).build_identity_ids(), a_start, b_start,
                        x1, x2};
}

SharedVertexCliques make_shared_vertex_cliques(std::size_t half) {
  FNR_CHECK_MSG(half >= 3, "shared-vertex cliques need half >= 3");
  const std::size_t n = 2 * half - 1;
  GraphBuilder b(n);
  // Shared vertex is index 0; clique A = {0} ∪ [1, half); clique B = {0} ∪
  // [half, n).
  const VertexIndex shared = 0;
  for (std::size_t i = 0; i < half; ++i)
    for (std::size_t j = i + 1; j < half; ++j)
      b.add_edge(static_cast<VertexIndex>(i), static_cast<VertexIndex>(j));
  for (std::size_t i = 0; i < half; ++i)
    for (std::size_t j = i + 1; j < half; ++j) {
      const auto u =
          i == 0 ? shared : static_cast<VertexIndex>(half - 1 + i);
      const auto v = static_cast<VertexIndex>(half - 1 + j);
      b.add_edge(u, v);
    }
  return SharedVertexCliques{std::move(b).build_identity_ids(),
                             /*a_start=*/1,
                             /*b_start=*/static_cast<VertexIndex>(half),
                             shared};
}

PermutedGraph permute_indices(const Graph& g, Rng& rng) {
  PermutedGraph out;
  out.mapping.resize(g.num_vertices());
  std::iota(out.mapping.begin(), out.mapping.end(), VertexIndex{0});
  shuffle(out.mapping, rng);
  GraphBuilder b(g.num_vertices());
  for (VertexIndex u = 0; u < g.num_vertices(); ++u)
    for (const VertexIndex v : g.neighbors(u))
      if (u < v) b.add_edge(out.mapping[u], out.mapping[v]);
  out.graph = std::move(b).build_identity_ids();
  return out;
}

Graph with_ids(const Graph& g, IdSpace ids) {
  GraphBuilder b(g.num_vertices());
  for (VertexIndex u = 0; u < g.num_vertices(); ++u)
    for (const VertexIndex v : g.neighbors(u))
      if (u < v) b.add_edge(u, v);
  return std::move(b).build(std::move(ids));
}

}  // namespace fnr::graph
