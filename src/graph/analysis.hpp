// Structural analysis helpers (used by tests and experiment validation).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace fnr::graph {

/// Distance sentinel for unreachable vertices.
inline constexpr std::uint32_t kUnreachable = static_cast<std::uint32_t>(-1);

/// BFS distances from `source` (kUnreachable where disconnected).
[[nodiscard]] std::vector<std::uint32_t> bfs_distances(const Graph& g,
                                                       VertexIndex source);

/// Hop distance between u and v (kUnreachable if disconnected).
[[nodiscard]] std::uint32_t distance(const Graph& g, VertexIndex u,
                                     VertexIndex v);

[[nodiscard]] bool is_connected(const Graph& g);

/// |N+(u) ∩ N+(v)| — size of the closed-neighborhood intersection. The
/// α-heaviness predicate of Definition 2 is phrased over such intersections.
[[nodiscard]] std::size_t closed_neighborhood_intersection(const Graph& g,
                                                           VertexIndex u,
                                                           VertexIndex v);

/// Checks CSR invariants: sorted adjacency, symmetry, no loops/duplicates.
/// Returns true when all hold (tests assert on this).
[[nodiscard]] bool validate_structure(const Graph& g);

/// Checks Definition 3: `t_set` is (z, alpha, beta)-dense for the agent
/// start `z_start` — i.e. z_start ∈ T, every w ∈ T is within distance beta
/// of z_start, and every u ∈ N+(z_start) is alpha-heavy for T.
[[nodiscard]] bool is_dense_set(const Graph& g, VertexIndex z_start,
                                const std::vector<VertexIndex>& t_set,
                                double alpha, std::uint32_t beta);

}  // namespace fnr::graph
