#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>

namespace fnr::graph {

std::size_t Graph::port_to(VertexIndex v, VertexIndex u) const {
  const auto nbrs = neighbors(v);
  const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  FNR_CHECK_MSG(it != nbrs.end() && *it == u,
                "port_to: (" << v << ", " << u << ") is not an edge");
  return static_cast<std::size_t>(it - nbrs.begin());
}

bool Graph::has_edge(VertexIndex u, VertexIndex v) const {
  if (u >= num_vertices() || v >= num_vertices() || u == v) return false;
  // Search the smaller adjacency list.
  if (degree(u) > degree(v)) std::swap(u, v);
  const auto nbrs = neighbors(u);
  return std::binary_search(nbrs.begin(), nbrs.end(), v);
}

std::pair<VertexIndex, VertexIndex> Graph::edge_at_slot(
    std::uint64_t slot) const {
  FNR_CHECK_MSG(slot < adjacency_.size(),
                "slot " << slot << " out of range 2m=" << adjacency_.size());
  // Find the owner: last vertex whose offset is <= slot.
  const auto it =
      std::upper_bound(offsets_.begin(), offsets_.end(), slot) - 1;
  const auto owner =
      static_cast<VertexIndex>(it - offsets_.begin());
  return {owner, adjacency_[slot]};
}

VertexIndex Graph::index_of(VertexId id) const {
  const VertexIndex v = try_index_of(id);
  FNR_CHECK_MSG(v != kNoVertex, "no vertex with ID " << id);
  return v;
}

VertexIndex Graph::try_index_of(VertexId id) const noexcept {
  const auto it = id_to_index_.find(id);
  return it == id_to_index_.end() ? kNoVertex : it->second;
}

std::string Graph::describe() const {
  std::ostringstream os;
  os << "Graph(n=" << num_vertices() << ", m=" << num_edges()
     << ", delta=" << min_degree_ << ", Delta=" << max_degree_
     << ", id_bound=" << id_space_.bound
     << (id_space_.tight ? ", tight" : ", sparse") << ")";
  return os.str();
}

}  // namespace fnr::graph
