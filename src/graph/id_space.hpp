// Naming regimes for vertex identifiers (paper §2.1, §4.2).
//
// The main algorithm only needs distinct IDs bounded by a polynomial n';
// the whiteboard-free algorithm (Theorem 2) additionally needs tight naming
// n' = O(n). Both regimes are generated here so experiments can show which
// guarantees each algorithm actually uses.
#pragma once

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace fnr::graph {

/// ID = index; n' = n. Tight.
[[nodiscard]] IdSpace identity_ids(std::size_t n);

/// A uniformly random permutation of [0, n); n' = n. Tight, but the mapping
/// between IDs and graph structure is random.
[[nodiscard]] IdSpace shuffled_ids(std::size_t n, Rng& rng);

/// Tight naming with slack: distinct IDs drawn from [0, ceil(slack*n)).
/// slack must be >= 1. Models n' = O(n) without ID = index coincidences.
[[nodiscard]] IdSpace tight_ids(std::size_t n, double slack, Rng& rng);

/// Sparse polynomial naming: distinct IDs drawn from [0, n^exponent),
/// exponent > 1. Not tight — Theorem 2 must not be run under this regime.
[[nodiscard]] IdSpace sparse_ids(std::size_t n, double exponent, Rng& rng);

}  // namespace fnr::graph
