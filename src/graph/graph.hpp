// Immutable undirected graph with distinct vertex identifiers.
//
// The paper's model (§2.1): each vertex carries a distinct integer ID in
// [0, n'-1] with n >= n' ... n' = n^{O(1)}; agents know n'. Internally
// vertices are dense indices [0, n); the ID space is attached at build time
// (see id_space.hpp). Adjacency is CSR with per-vertex neighbor lists sorted
// by neighbor index — that order defines the local port numbering ˆP_v.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace fnr::graph {

/// Dense internal vertex index in [0, n).
using VertexIndex = std::uint32_t;

/// Externally visible vertex identifier in [0, n').
using VertexId = std::uint64_t;

/// Sentinel for "no vertex".
inline constexpr VertexIndex kNoVertex = static_cast<VertexIndex>(-1);

/// The naming regime attached to a graph (paper §2.1 and §4.2).
struct IdSpace {
  std::vector<VertexId> ids;  ///< index -> ID, all distinct, < bound
  VertexId bound = 0;         ///< n' : exclusive upper bound, known to agents
  bool tight = false;         ///< n' = O(n) (required by Theorem 2)
};

/// Immutable simple undirected graph. Construct via GraphBuilder.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_vertices() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept {
    return adjacency_.size() / 2;
  }

  [[nodiscard]] std::size_t degree(VertexIndex v) const {
    FNR_ASSERT(v < num_vertices());
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbors of v ordered by increasing neighbor index; position in this
  /// span is the local port number ˆP_v.
  [[nodiscard]] std::span<const VertexIndex> neighbors(VertexIndex v) const {
    FNR_ASSERT(v < num_vertices());
    return {adjacency_.data() + offsets_[v],
            adjacency_.data() + offsets_[v + 1]};
  }

  /// The neighbor behind port `port` of vertex v (ˆP_v(port)).
  [[nodiscard]] VertexIndex neighbor_at_port(VertexIndex v,
                                             std::size_t port) const {
    const auto nbrs = neighbors(v);
    FNR_CHECK_MSG(port < nbrs.size(),
                  "port " << port << " out of range for degree "
                          << nbrs.size());
    return nbrs[port];
  }

  /// Inverse port map ˆP_v^{-1}: the port of v leading to u; kNoVertex-free:
  /// requires (v, u) to be an edge.
  [[nodiscard]] std::size_t port_to(VertexIndex v, VertexIndex u) const;

  [[nodiscard]] bool has_edge(VertexIndex u, VertexIndex v) const;

  /// Decodes flat adjacency slot `slot` in [0, 2m) into the directed pair
  /// (owner, neighbor). Each undirected edge owns exactly two slots, so a
  /// uniform slot is a uniform directed edge (used for uniform placements).
  [[nodiscard]] std::pair<VertexIndex, VertexIndex> edge_at_slot(
      std::uint64_t slot) const;

  [[nodiscard]] std::size_t min_degree() const noexcept { return min_degree_; }
  [[nodiscard]] std::size_t max_degree() const noexcept { return max_degree_; }

  // --- identifier space -----------------------------------------------

  [[nodiscard]] VertexId id_of(VertexIndex v) const {
    FNR_ASSERT(v < num_vertices());
    return id_space_.ids[v];
  }
  /// Throws CheckError if the ID does not name a vertex.
  [[nodiscard]] VertexIndex index_of(VertexId id) const;
  /// kNoVertex if the ID does not name a vertex.
  [[nodiscard]] VertexIndex try_index_of(VertexId id) const noexcept;

  /// n' — the exclusive ID bound known to agents.
  [[nodiscard]] VertexId id_bound() const noexcept { return id_space_.bound; }
  [[nodiscard]] bool tight_ids() const noexcept { return id_space_.tight; }

  /// Human-readable one-line summary (n, m, δ, Δ, naming).
  [[nodiscard]] std::string describe() const;

 private:
  friend class GraphBuilder;

  std::vector<std::uint64_t> offsets_;   // size n+1
  std::vector<VertexIndex> adjacency_;   // size 2m, sorted per vertex
  IdSpace id_space_;
  std::unordered_map<VertexId, VertexIndex> id_to_index_;
  std::size_t min_degree_ = 0;
  std::size_t max_degree_ = 0;
};

}  // namespace fnr::graph
