#include "graph/analysis.hpp"

#include <algorithm>
#include <queue>
#include <unordered_set>

namespace fnr::graph {

std::vector<std::uint32_t> bfs_distances(const Graph& g, VertexIndex source) {
  FNR_CHECK(source < g.num_vertices());
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<VertexIndex> frontier;
  dist[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexIndex u = frontier.front();
    frontier.pop();
    for (const VertexIndex v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  return dist;
}

std::uint32_t distance(const Graph& g, VertexIndex u, VertexIndex v) {
  FNR_CHECK(u < g.num_vertices() && v < g.num_vertices());
  if (u == v) return 0;
  // Early-exit BFS.
  std::vector<std::uint32_t> dist(g.num_vertices(), kUnreachable);
  std::queue<VertexIndex> frontier;
  dist[u] = 0;
  frontier.push(u);
  while (!frontier.empty()) {
    const VertexIndex w = frontier.front();
    frontier.pop();
    for (const VertexIndex x : g.neighbors(w)) {
      if (dist[x] == kUnreachable) {
        dist[x] = dist[w] + 1;
        if (x == v) return dist[x];
        frontier.push(x);
      }
    }
  }
  return kUnreachable;
}

bool is_connected(const Graph& g) {
  if (g.num_vertices() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](std::uint32_t d) {
    return d == kUnreachable;
  });
}

std::size_t closed_neighborhood_intersection(const Graph& g, VertexIndex u,
                                             VertexIndex v) {
  FNR_CHECK(u < g.num_vertices() && v < g.num_vertices());
  // Merge-count over sorted N(u), N(v); then account for the closures.
  const auto nu = g.neighbors(u);
  const auto nv = g.neighbors(v);
  std::size_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < nu.size() && j < nv.size()) {
    if (nu[i] == nv[j]) {
      ++count;
      ++i;
      ++j;
    } else if (nu[i] < nv[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  // u itself: u ∈ N+(u) always; u ∈ N+(v) iff edge or u == v.
  if (u == v) return g.degree(u) + 1;
  if (g.has_edge(u, v)) count += 2;  // u and v each lie in both closures
  return count;
}

bool validate_structure(const Graph& g) {
  for (VertexIndex v = 0; v < g.num_vertices(); ++v) {
    const auto nbrs = g.neighbors(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == v) return false;                       // self loop
      if (i > 0 && nbrs[i - 1] >= nbrs[i]) return false;    // unsorted/dup
      if (nbrs[i] >= g.num_vertices()) return false;        // out of range
      if (!g.has_edge(nbrs[i], v)) return false;            // asymmetric
    }
  }
  return true;
}

bool is_dense_set(const Graph& g, VertexIndex z_start,
                  const std::vector<VertexIndex>& t_set, double alpha,
                  std::uint32_t beta) {
  const std::unordered_set<VertexIndex> t(t_set.begin(), t_set.end());
  if (!t.contains(z_start)) return false;

  const auto dist = bfs_distances(g, z_start);
  for (const VertexIndex w : t_set)
    if (dist[w] == kUnreachable || dist[w] > beta) return false;

  // Every u in N+(z_start) must be alpha-heavy for T: |T ∩ N+(u)| >= alpha.
  auto heavy = [&](VertexIndex u) {
    std::size_t hits = t.contains(u) ? 1 : 0;
    for (const VertexIndex w : g.neighbors(u))
      if (t.contains(w)) ++hits;
    return static_cast<double>(hits) >= alpha;
  };
  if (!heavy(z_start)) return false;
  for (const VertexIndex u : g.neighbors(z_start))
    if (!heavy(u)) return false;
  return true;
}

}  // namespace fnr::graph
