#include "graph/id_space.hpp"

#include <cmath>
#include <numeric>

namespace fnr::graph {

IdSpace identity_ids(std::size_t n) {
  IdSpace ids;
  ids.ids.resize(n);
  std::iota(ids.ids.begin(), ids.ids.end(), VertexId{0});
  ids.bound = n;
  ids.tight = true;
  return ids;
}

IdSpace shuffled_ids(std::size_t n, Rng& rng) {
  IdSpace ids = identity_ids(n);
  shuffle(ids.ids, rng);
  return ids;
}

namespace {

IdSpace distinct_ids_below(std::size_t n, VertexId bound, bool tight,
                           Rng& rng) {
  FNR_CHECK(bound >= n);
  IdSpace ids;
  ids.ids = sample_without_replacement(bound, n, rng);
  shuffle(ids.ids, rng);  // decorrelate ID magnitude from vertex index
  ids.bound = bound;
  ids.tight = tight;
  return ids;
}

}  // namespace

IdSpace tight_ids(std::size_t n, double slack, Rng& rng) {
  FNR_CHECK_MSG(slack >= 1.0, "tight naming needs slack >= 1");
  const auto bound =
      static_cast<VertexId>(std::ceil(slack * static_cast<double>(n)));
  return distinct_ids_below(n, std::max<VertexId>(bound, n), true, rng);
}

IdSpace sparse_ids(std::size_t n, double exponent, Rng& rng) {
  FNR_CHECK_MSG(exponent > 1.0, "sparse naming needs exponent > 1");
  const double raw = std::pow(static_cast<double>(n), exponent);
  // Cap to keep arithmetic in uint64 range even for adversarial exponents.
  const double capped = std::min(raw, 0x1.0p62);
  const auto bound = std::max<VertexId>(static_cast<VertexId>(capped), n);
  return distinct_ids_below(n, bound, false, rng);
}

}  // namespace fnr::graph
