// The program registry: the open, string-keyed catalogue of rendezvous
// strategies a scenario can run.
//
// The paper's experiments compare Main-Rendezvous against a family of
// baselines (random walks, Anderson–Weber-style symmetric strategies,
// wait-for-mommy variants), and related work (Fast Rendezvous with Advice;
// LSH-based rendezvous search) frames rendezvous as a space of
// interchangeable strategies evaluated on one harness. The registry is that
// space made concrete: each entry bundles a stable label, a description,
// per-role agent factories (seeker / marker / symmetric), a capability mask,
// a round-cap policy, and the parameters it accepts as `?key=value`
// suffixes. Everything downstream — scenario trials, the sweep grid, the
// perf suite's cell names, the bench CLIs — resolves programs through here,
// so adding a strategy is one registration in this file (or one
// register_program call anywhere), not a five-layer edit.
//
// Labels are stable identifiers: they name cells in sweep checkpoints,
// merged JSON, and BENCH_perf.json, so renaming one is a breaking change to
// recorded artifacts. The built-in labels and their registration order are
// pinned by tests/test_program_registry.cpp.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "core/rendezvous.hpp"
#include "graph/graph.hpp"
#include "scenario/scenario.hpp"
#include "sim/model.hpp"
#include "sim/view.hpp"
#include "util/rng.hpp"

namespace fnr::scenario {

/// What a program needs from the world and which scenario shapes it is
/// meaningful on. Grid expanders consult this to skip incompatible
/// (program, scenario) cells deterministically — capability masks replace
/// hand-maintained exclusion lists.
struct ProgramCaps {
  /// Runs only under a model with whiteboards (the Model is part of the
  /// registration; this flag documents the requirement for listings and
  /// lets validate() cross-check the two).
  bool needs_whiteboards = false;
  /// Requires tight naming n' = O(n) of the graph's ID space (Theorem 2).
  bool needs_tight_ids = false;
  /// Only valid on complete graphs (Anderson–Weber).
  bool needs_complete_graph = false;
  /// Meaningful only when some placement guarantee puts the agents in a
  /// shared neighborhood (the paper's strategies probe N+; dropped-anywhere
  /// agents would burn the full round cap on every trial).
  bool needs_shared_neighborhood = false;
  /// Tolerates k > 2 agents (extra agents run the marker role, or the
  /// symmetric program).
  bool supports_multi_agent = true;
  /// Meaningful under Gathering::All (k-way co-location of uncoordinated
  /// agents is a lottery, not a measurement).
  bool supports_gather_all = false;

  /// Compact "needs: …; supports: …" summary for --list output.
  [[nodiscard]] std::string describe() const;
};

class Program;

/// Everything an agent factory may consult when staffing one agent slot of
/// a scenario run. `rng` is this agent's split stream (streams are split
/// per agent in index order — the split happens whether or not the factory
/// uses it, which keeps randomized and deterministic programs on the same
/// seed schedule).
struct AgentBuild {
  const graph::Graph& graph;
  const core::Params& params;
  const Program& program;  ///< for parameter lookups (program.param(name))
  std::size_t index = 0;   ///< agent slot; 0 is the seeker role
  std::size_t num_agents = 2;
  Rng rng;
};

using AgentFactory =
    std::function<std::unique_ptr<sim::Agent>(AgentBuild&)>;

/// Generous failure round cap for one instance on `g` (before the scenario
/// layer scales it for Gathering::All and adds the wake-delay bound).
using RoundCapFn =
    std::function<std::uint64_t(const graph::Graph&, const core::Params&)>;

/// One registry entry. Asymmetric programs set `seeker` (agent 0) and
/// `marker` (agents 1..k-1); symmetric programs set only `symmetric`.
struct ProgramDef {
  std::string label;        ///< stable registry key (no '?', ',', '|', ws)
  std::string description;  ///< one line for --list output
  std::string paper_ref;    ///< provenance, e.g. "Theorem 1" or "§1.3 [6]"
  ProgramCaps caps;
  sim::Model model = sim::Model::full();  ///< execution model for the run
  AgentFactory seeker;
  AgentFactory marker;
  AgentFactory symmetric;
  RoundCapFn round_cap;
  /// Parameters accepted via "label?key=value" suffixes (name → default).
  /// Unknown override names are rejected by find_program.
  std::map<std::string, double> parameters;
  /// Set on programs that wrap one of the paper's core strategies. The perf
  /// suite measures exactly these (through the two-agent hot path) and
  /// names its cells with the registry label, so perf cells and sweep cells
  /// agree on naming.
  std::optional<core::Strategy> core_strategy;

  /// Throws CheckError on a malformed definition (empty/ill-formed label,
  /// missing factories or round_cap, caps inconsistent with the model).
  void validate() const;
};

/// A runnable program reference: a registry entry plus parsed parameter
/// overrides. Cheap to copy; valid as long as the process lives (entries
/// are never removed from the registry). This is the open replacement for
/// the old closed `enum class Program`.
class Program {
 public:
  /// Invalid until assigned from find_program / all_programs (keeps grid
  /// cells default-constructible). def() throws on an invalid handle.
  Program() = default;

  [[nodiscard]] bool valid() const noexcept { return def_ != nullptr; }
  [[nodiscard]] const ProgramDef& def() const;

  /// Canonical spec string: the base label, plus any overrides as a sorted
  /// "?key=value&key=value" suffix. This is the identity used in sweep cell
  /// keys and bench tables; a bare label stays byte-identical to the old
  /// enum's to_string form.
  [[nodiscard]] const std::string& label() const noexcept { return label_; }

  /// The effective value of a declared parameter (override, else default).
  /// Throws CheckError when the program declares no such parameter.
  [[nodiscard]] double param(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, double>& overrides() const noexcept {
    return overrides_;
  }

  friend bool operator==(const Program& a, const Program& b) noexcept {
    return a.def_ == b.def_ && a.overrides_ == b.overrides_;
  }

 private:
  friend Program make_program(const ProgramDef& def,
                              std::map<std::string, double> overrides);

  const ProgramDef* def_ = nullptr;
  std::map<std::string, double> overrides_;
  std::string label_;
};

/// The program's canonical label (mirrors the old enum's to_string).
[[nodiscard]] const std::string& to_string(const Program& program) noexcept;

// --- registry ----------------------------------------------------------------

/// All registered definitions, registration order. The first eight are the
/// built-ins (paper strategies, then baselines); their labels and order are
/// stable. (A deque so register_program never invalidates references or
/// Program handles.)
[[nodiscard]] const std::deque<ProgramDef>& all_program_defs();

/// One override-free handle per registered definition, registration order.
[[nodiscard]] std::vector<Program> all_programs();

/// Adds a program to the registry. Validates it; throws CheckError on a
/// duplicate label.
void register_program(ProgramDef def);

/// Whether `label` (a bare label, no '?' suffix) is registered.
[[nodiscard]] bool has_program(const std::string& label);

/// Resolves a program spec "label" or "label?key=value&key=value" to a
/// handle. Throws CheckError for an unknown label (enumerating the valid
/// label set) or an override the program does not declare.
[[nodiscard]] Program find_program(const std::string& spec);

// --- compatibility -----------------------------------------------------------

/// Whether running `program` on `scenario` is a meaningful measurement
/// (capability mask vs. agent count, gathering predicate, and placement
/// model). Grid expanders skip incompatible cells; run_scenario itself does
/// NOT enforce this — deliberately mis-matched runs (e.g. measuring how a
/// neighborhood strategy degrades when dropped anywhere) stay runnable.
[[nodiscard]] bool compatible(const Program& program, const Scenario& scenario);

/// Graph-level requirements (tight naming, completeness). run_scenario
/// throws on violation; benches use this to skip families up front.
[[nodiscard]] bool runnable_on(const ProgramDef& def, const graph::Graph& g);

/// Throwing form of runnable_on, naming the violated requirement (the two
/// share one predicate set, so execution and grid pruning cannot diverge).
void check_runnable(const ProgramDef& def, const graph::Graph& g);

/// Markdown-ish table of every registered program (label, capabilities,
/// description, paper reference) for the --list-programs CLIs.
void print_program_listing(std::ostream& os);

}  // namespace fnr::scenario
