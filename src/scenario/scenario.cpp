#include "scenario/scenario.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "util/table.hpp"

namespace fnr::scenario {

const char* to_string(PlacementModel placement) noexcept {
  switch (placement) {
    case PlacementModel::AdjacentPair: return "adjacent-pair";
    case PlacementModel::NeighborhoodCluster: return "neighborhood-cluster";
    case PlacementModel::RandomDistinct: return "random-distinct";
  }
  return "?";
}

const char* to_string(DelayModel delay) noexcept {
  switch (delay) {
    case DelayModel::None: return "none";
    case DelayModel::RandomUniform: return "random";
    case DelayModel::Adversarial: return "adversarial";
  }
  return "?";
}

void Scenario::validate() const {
  FNR_CHECK_MSG(!name.empty(), "scenario needs a name");
  FNR_CHECK_MSG(num_agents >= 2,
                "scenario '" << name << "' needs at least two agents");
  FNR_CHECK_MSG(
      placement != PlacementModel::AdjacentPair || num_agents == 2,
      "scenario '" << name << "': adjacent-pair placement is two-agent only");
  FNR_CHECK_MSG((delay == DelayModel::None) == (max_delay == 0),
                "scenario '" << name
                             << "': max_delay must be positive exactly when "
                                "a delay model is set");
  if (gathering.kind == sim::Gathering::Quorum) {
    FNR_CHECK_MSG(gathering.quorum >= 2,
                  "scenario '" << name << "': a quorum needs at least 2 "
                               "agents, got " << gathering.quorum);
    FNR_CHECK_MSG(gathering.quorum <= num_agents,
                  "scenario '" << name << "': quorum " << gathering.quorum
                               << " exceeds the " << num_agents
                               << "-agent population");
  }
  if (gathering.kind == sim::Gathering::Fraction) {
    FNR_CHECK_MSG(gathering.fraction > 0.0 && gathering.fraction <= 1.0,
                  "scenario '" << name << "': gathering fraction must be in "
                               "(0, 1], got " << gathering.fraction);
  }
}

std::string Scenario::describe() const {
  std::ostringstream os;
  os << "k=" << num_agents << " " << to_string(placement);
  if (delay == DelayModel::None) {
    os << ", sync";
  } else {
    os << ", delay<=" << max_delay << " (" << to_string(delay) << ")";
  }
  os << ", " << to_string(gathering);
  return os.str();
}

namespace {

std::deque<Scenario>& registry() {
  static std::deque<Scenario> scenarios = [] {
    std::deque<Scenario> builtin;
    // The paper's model. A zero-delay two-agent scenario must reproduce the
    // classic synchronous scheduler bit-for-bit (guarded by tests).
    builtin.push_back({"sync-pair", "the paper's model: 2 agents, adjacent, "
                       "synchronous wake-up",
                       2, PlacementModel::AdjacentPair, DelayModel::None, 0,
                       sim::Gathering::AnyPair});
    builtin.push_back({"delayed-pair", "adjacent pair, wake-up staggered "
                       "uniformly at random",
                       2, PlacementModel::AdjacentPair,
                       DelayModel::RandomUniform, 128,
                       sim::Gathering::AnyPair});
    builtin.push_back({"ambush-pair", "adjacent pair, partner sleeps the "
                       "full delay bound",
                       2, PlacementModel::AdjacentPair,
                       DelayModel::Adversarial, 128, sim::Gathering::AnyPair});
    builtin.push_back({"trio-neighborhood", "3 agents in one closed "
                       "neighborhood, synchronous",
                       3, PlacementModel::NeighborhoodCluster,
                       DelayModel::None, 0, sim::Gathering::AnyPair});
    builtin.push_back({"trio-delayed", "3 agents in one closed neighborhood, "
                       "random staggered wake-up",
                       3, PlacementModel::NeighborhoodCluster,
                       DelayModel::RandomUniform, 128,
                       sim::Gathering::AnyPair});
    builtin.push_back({"pair-anywhere", "2 agents dropped anywhere "
                       "(general rendezvous, not neighborhood)",
                       2, PlacementModel::RandomDistinct, DelayModel::None, 0,
                       sim::Gathering::AnyPair});
    builtin.push_back({"swarm-gather", "5 agents dropped anywhere; all must "
                       "stand on one vertex",
                       5, PlacementModel::RandomDistinct, DelayModel::None, 0,
                       sim::Gathering::All});
    builtin.push_back({"swarm-quorum", "12 agents dropped anywhere; any 4 on "
                       "one vertex succeed",
                       12, PlacementModel::RandomDistinct, DelayModel::None, 0,
                       sim::Gathering::quorum_of(4)});
    builtin.push_back({"swarm-fraction", "12 agents dropped anywhere; half "
                       "the swarm on one vertex succeeds",
                       12, PlacementModel::RandomDistinct, DelayModel::None, 0,
                       sim::Gathering::fraction_of(0.5)});
    for (const auto& scenario : builtin) scenario.validate();
    return builtin;
  }();
  return scenarios;
}

}  // namespace

const std::deque<Scenario>& all_scenarios() { return registry(); }

void register_scenario(Scenario scenario) {
  scenario.validate();
  FNR_CHECK_MSG(!has_scenario(scenario.name),
                "scenario '" << scenario.name << "' is already registered");
  registry().push_back(std::move(scenario));
}

bool has_scenario(const std::string& name) {
  const auto& scenarios = registry();
  return std::any_of(scenarios.begin(), scenarios.end(),
                     [&](const Scenario& s) { return s.name == name; });
}

const Scenario& find_scenario(const std::string& name) {
  for (const auto& scenario : registry())
    if (scenario.name == name) return scenario;
  std::ostringstream known;
  for (const auto& scenario : registry()) known << " " << scenario.name;
  FNR_CHECK_MSG(false,
                "unknown scenario '" << name << "'; known:" << known.str());
  throw std::logic_error("unreachable");  // FNR_CHECK_MSG(false) throws
}

void print_scenario_listing(std::ostream& os) {
  Table table({"scenario", "shape", "summary"});
  for (const auto& scenario : all_scenarios())
    table.add_row({scenario.name, scenario.describe(), scenario.summary});
  table.print(os);
}

namespace {

std::vector<graph::VertexIndex> draw_starts(const Scenario& scenario,
                                            const graph::Graph& g, Rng& rng) {
  const std::size_t k = scenario.num_agents;
  FNR_CHECK_MSG(g.num_vertices() >= k,
                "graph has " << g.num_vertices() << " vertices for " << k
                             << " agents");
  switch (scenario.placement) {
    case PlacementModel::AdjacentPair: {
      const auto pair = sim::random_adjacent_placement(g, rng);
      return {pair.a_start, pair.b_start};
    }
    case PlacementModel::NeighborhoodCluster: {
      FNR_CHECK_MSG(g.max_degree() + 1 >= k,
                    "no closed neighborhood fits " << k << " agents (Delta = "
                                                   << g.max_degree() << ")");
      // Uniform over the centers that can host the cluster.
      std::vector<graph::VertexIndex> centers;
      for (graph::VertexIndex v = 0; v < g.num_vertices(); ++v)
        if (g.degree(v) + 1 >= k) centers.push_back(v);
      const graph::VertexIndex center = choose(centers, rng);
      // k distinct members of N+(center); slot deg(center) encodes the
      // center itself.
      const auto slots =
          sample_without_replacement(g.degree(center) + 1, k, rng);
      std::vector<graph::VertexIndex> starts;
      starts.reserve(k);
      for (const auto slot : slots)
        starts.push_back(slot == g.degree(center)
                             ? center
                             : g.neighbor_at_port(center, slot));
      return starts;
    }
    case PlacementModel::RandomDistinct: {
      const auto picks = sample_without_replacement(g.num_vertices(), k, rng);
      std::vector<graph::VertexIndex> starts;
      starts.reserve(k);
      for (const auto pick : picks)
        starts.push_back(static_cast<graph::VertexIndex>(pick));
      return starts;
    }
  }
  FNR_CHECK_MSG(false, "unhandled placement model");
  return {};
}

std::vector<std::uint64_t> draw_delays(const Scenario& scenario, Rng& rng) {
  const std::size_t k = scenario.num_agents;
  switch (scenario.delay) {
    case DelayModel::None:
      return {};
    case DelayModel::RandomUniform: {
      std::vector<std::uint64_t> delays(k);
      for (auto& d : delays) d = rng.below(scenario.max_delay + 1);
      // Time starts when the first agent wakes.
      const auto earliest = *std::min_element(delays.begin(), delays.end());
      for (auto& d : delays) d -= earliest;
      return delays;
    }
    case DelayModel::Adversarial: {
      std::vector<std::uint64_t> delays(k, scenario.max_delay);
      delays[0] = 0;
      return delays;
    }
  }
  FNR_CHECK_MSG(false, "unhandled delay model");
  return {};
}

}  // namespace

sim::ScenarioPlacement draw_instance(const Scenario& scenario,
                                     const graph::Graph& g, Rng& rng) {
  scenario.validate();
  sim::ScenarioPlacement placement;
  placement.starts = draw_starts(scenario, g, rng);
  placement.wake_delays = draw_delays(scenario, rng);
  return placement;
}

}  // namespace fnr::scenario
